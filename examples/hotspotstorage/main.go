// Hotspot storage: the regime the paper's introduction motivates —
// input data confined to a subset of nodes (NAS/SAN-style storage) in a
// multi-rack cluster, where coarse-grained locality scheduling breaks
// down and fine-grained transmission costs matter. Half the cluster holds
// all input blocks; tasks on the other half always read remotely, and the
// scheduler's choice of *which* remote node decides rack-crossing volume.
package main

import (
	"fmt"
	"log"

	"mapsched"
)

func main() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 4
	cfg.Topology.NodesPerRack = 15

	fmt.Println("Terasort batch on 4 racks x 15 nodes; all blocks on the first 30 nodes")
	fmt.Printf("%-16s %10s %10s %14s %14s\n",
		"scheduler", "mean JCT", "max JCT", "local maps", "remote tasks")
	for _, k := range []mapsched.SchedulerKind{
		mapsched.SchedulerProbabilistic,
		mapsched.SchedulerCoupling,
		mapsched.SchedulerFair,
	} {
		sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Terasort), k,
			mapsched.WithSeed(3),
			mapsched.WithScale(6),
			mapsched.WithStorageSubset(30),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		cdf := res.JobCompletionCDF()
		fmt.Printf("%-16v %9.1fs %9.1fs %13.1f%% %13.1f%%\n",
			k, cdf.Mean(), cdf.Max(),
			res.MapLocality.PercentNode(), res.MapLocality.PercentRemote())
	}
	fmt.Println("\nWith storage concentrated on half the nodes, schedulers that only")
	fmt.Println("distinguish node/rack/off-rack lose to fine-grained transmission costs.")
}
