// Pmin tuning: reproduce the paper's threshold-selection procedure
// (Section III): "we ran 10 Wordcount jobs together several times with
// different P_min values and picked the highest P_min value at the time
// when all jobs finished successfully. Accordingly, we set P_min to 0.4."
//
// High thresholds make the scheduler reject so many slot offers that jobs
// stall past the deadline; the sweep finds the largest threshold that
// still completes the batch.
package main

import (
	"fmt"
	"log"

	"mapsched"
)

func main() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.MaxSimTime = 400 // deadline: a batch must finish within this horizon

	fmt.Println("Pmin sweep over the 10-job Wordcount batch (deadline 400s simulated)")
	fmt.Printf("%6s %12s %12s\n", "Pmin", "mean JCT", "unfinished")
	best := -1.0
	for _, pmin := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Wordcount),
			mapsched.SchedulerProbabilistic,
			mapsched.WithSeed(5),
			mapsched.WithScale(12),
			mapsched.WithPmin(pmin),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		mean := "-"
		if cdf := res.JobCompletionCDF(); cdf.N() > 0 {
			mean = fmt.Sprintf("%.1fs", cdf.Mean())
		}
		fmt.Printf("%6.1f %12s %12d\n", pmin, mean, res.Unfinished)
		if res.Unfinished == 0 && pmin > best {
			best = pmin
		}
	}
	fmt.Printf("\nhighest Pmin with all jobs finished: %.1f (the paper picked 0.4)\n", best)
}
