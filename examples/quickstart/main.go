// Quickstart: run the paper's 10-job Wordcount batch on a simulated
// 60-node cluster under the probabilistic network-aware scheduler and
// print the job-completion statistics.
package main

import (
	"fmt"
	"log"

	"mapsched"
)

func main() {
	cfg := mapsched.DefaultClusterConfig()

	sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Wordcount),
		mapsched.SchedulerProbabilistic,
		mapsched.WithSeed(1),
		mapsched.WithScale(6), // scale the 10-100 GB inputs down 6x
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	cdf := res.JobCompletionCDF()
	fmt.Printf("scheduler: %s\n", res.Scheduler)
	fmt.Printf("all %d jobs finished; makespan %.1fs\n", len(res.Jobs), res.Makespan)
	fmt.Printf("job completion time: mean %.1fs, p50 %.1fs, p90 %.1fs, max %.1fs\n",
		cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Max())
	fmt.Printf("map locality: %.1f%% of map tasks ran on a node holding their block\n",
		res.MapLocality.PercentNode())

	fmt.Println("\nper-job completion:")
	for _, j := range res.Jobs {
		fmt.Printf("  %-18s %6.1fs  (%d maps, %d reduces)\n",
			j.Name, j.Completion, j.NumMaps, j.NumReduces)
	}
}
