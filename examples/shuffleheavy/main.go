// Shuffle-heavy comparison: the scenario from the paper's introduction —
// shuffle-intensive analytics jobs on a busy shared cluster, where the
// placement of reduce tasks decides how much intermediate data crosses
// contended links. Runs the Wordcount batch (selectivity > 1) under all
// three schedulers with background cross-traffic and compares completion
// times, locality and network volume.
package main

import (
	"fmt"
	"log"

	"mapsched"
)

func main() {
	cfg := mapsched.DefaultClusterConfig()
	// A busy shared platform: other tenants' flows occupy parts of the
	// fabric, so effective per-node bandwidth is heterogeneous.
	kinds := []mapsched.SchedulerKind{
		mapsched.SchedulerProbabilistic,
		mapsched.SchedulerCoupling,
		mapsched.SchedulerFair,
	}

	fmt.Println("Wordcount batch (shuffle-heavy), 60 nodes, 30 cross-traffic flows")
	fmt.Printf("%-16s %10s %10s %10s %12s %14s\n",
		"scheduler", "mean JCT", "p90 JCT", "max JCT", "local maps", "shuffle GB")
	for _, k := range kinds {
		sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Wordcount), k,
			mapsched.WithSeed(7),
			mapsched.WithScale(6),
			mapsched.WithCrossTraffic(30),
			mapsched.WithCostMode(mapsched.ModeNetworkCondition),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		cdf := res.JobCompletionCDF()
		fmt.Printf("%-16v %9.1fs %9.1fs %9.1fs %11.1f%% %13.1f\n",
			k, cdf.Mean(), cdf.Quantile(0.9), cdf.Max(),
			res.MapLocality.PercentNode(), res.ShuffleRemoteBytes/1e9)
	}
	fmt.Println("\nLower completion times with comparable locality indicate better")
	fmt.Println("network-aware placement of reduce tasks (Section III-A of the paper).")
}
