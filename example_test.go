package mapsched_test

import (
	"fmt"

	"mapsched"
)

// Run the paper's Grep batch (scaled down) on a small cluster under the
// probabilistic network-aware scheduler.
func ExampleNew() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = 12

	sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Grep),
		mapsched.SchedulerProbabilistic,
		mapsched.WithSeed(1), mapsched.WithScale(40))
	if err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs finished: %d/%d\n", len(res.Jobs)-res.Unfinished, len(res.Jobs))
	fmt.Printf("every map task recorded: %v\n", res.MapLocality.Total() > 0)
	// Output:
	// jobs finished: 10/10
	// every map task recorded: true
}

// Compare the three schedulers of the paper's evaluation on one batch.
func ExampleNew_comparison() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = 12

	for _, k := range []mapsched.SchedulerKind{
		mapsched.SchedulerProbabilistic,
		mapsched.SchedulerCoupling,
		mapsched.SchedulerFair,
	} {
		sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Terasort), k,
			mapsched.WithSeed(1), mapsched.WithScale(40))
		if err != nil {
			panic(err)
		}
		res, err := sim.Run()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: %d jobs done\n", k, len(res.Jobs)-res.Unfinished)
	}
	// Output:
	// Probabilistic: 10 jobs done
	// Coupling: 10 jobs done
	// Fair: 10 jobs done
}

// Drive the placement decision service standalone: no simulation run,
// no simulated clock — the caller owns the control loop, asks for
// decisions with their Formula 1-5 breakdown, and applies cluster-state
// deltas explicitly.
func ExamplePlacementService() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4

	svc, err := mapsched.NewPlacementService(cfg,
		mapsched.Batch(mapsched.Wordcount)[:1],
		mapsched.WithSeed(1), mapsched.WithScale(40),
		mapsched.WithDeterministic())
	if err != nil {
		panic(err)
	}

	// Offer a free map slot on node 0 and commit the decision.
	d := svc.DecideMap(0, 0)
	fmt.Printf("map %d on node %d: draw=%s C=%.0f P=%.2f\n",
		d.Task, d.Node, d.Draw, d.C, d.P)
	if err := svc.Commit(d); err != nil {
		panic(err)
	}

	// The cluster changes under the service: node 3 goes offline.
	if err := svc.SetNodeOffline(3, true); err != nil {
		panic(err)
	}

	// Finish the running map; reduce decisions see its progress.
	if err := svc.Complete(d); err != nil {
		panic(err)
	}
	r := svc.DecideReduce(10, 1)
	fmt.Printf("reduce assigned: %v (draw=%s)\n", r.Assigned, r.Draw)
	fmt.Printf("deltas applied: %d\n", svc.Epoch())
	// Output:
	// map 0 on node 0: draw=local C=0 P=1.00
	// reduce assigned: true (draw=deterministic)
	// deltas applied: 3
}
