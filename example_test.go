package mapsched_test

import (
	"fmt"

	"mapsched"
)

// Run the paper's Grep batch (scaled down) on a small cluster under the
// probabilistic network-aware scheduler.
func ExampleRun() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = 12

	res, err := mapsched.Run(cfg, mapsched.Batch(mapsched.Grep),
		mapsched.SchedulerProbabilistic,
		mapsched.WithSeed(1), mapsched.WithScale(40))
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs finished: %d/%d\n", len(res.Jobs)-res.Unfinished, len(res.Jobs))
	fmt.Printf("every map task recorded: %v\n", res.MapLocality.Total() > 0)
	// Output:
	// jobs finished: 10/10
	// every map task recorded: true
}

// Compare the three schedulers of the paper's evaluation on one batch.
func ExampleRun_comparison() {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = 12

	for _, k := range []mapsched.SchedulerKind{
		mapsched.SchedulerProbabilistic,
		mapsched.SchedulerCoupling,
		mapsched.SchedulerFair,
	} {
		res, err := mapsched.Run(cfg, mapsched.Batch(mapsched.Terasort), k,
			mapsched.WithSeed(1), mapsched.WithScale(40))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: %d jobs done\n", k, len(res.Jobs)-res.Unfinished)
	}
	// Output:
	// Probabilistic: 10 jobs done
	// Coupling: 10 jobs done
	// Fair: 10 jobs done
}
