package mapsched

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openEventTypes are the event kinds only the open-system layer emits.
var openEventTypes = map[string]bool{
	"job_arrival":      true,
	"job_admit":        true,
	"job_reject":       true,
	"job_preempt":      true,
	"node_unblacklist": true,
}

// openDecisionStream runs an open-system scenario and returns its JSONL
// event log with flow_* events removed; when stripOpen is set the
// open-system event kinds are filtered too, leaving exactly the stream a
// closed-system run would produce.
func openDecisionStream(t *testing.T, stripOpen bool, opts ...Option) string {
	t.Helper()
	var buf bytes.Buffer
	log := NewJSONLSink(&buf)
	sim, err := New(smallConfig(), nil, SchedulerProbabilistic,
		append([]Option{WithObserver(log)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, line := range strings.SplitAfter(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if strings.HasPrefix(head.Type, "flow_") {
			continue
		}
		if stripOpen && openEventTypes[head.Type] {
			continue
		}
		out.WriteString(line)
	}
	return out.String()
}

// TestOpenSystemNestsClosedSystem proves the open-system layer nests the
// closed system: a single-tenant scripted arrival stream submitting the
// terasort batch at the exact instants the fixed path would reproduces
// the committed fixed-batch decision golden byte for byte (once the
// arrival/admission bookkeeping events, which the closed path by
// definition lacks, are stripped).
func TestOpenSystemNestsClosedSystem(t *testing.T) {
	defs := Batch(Terasort)
	plan := ArrivalPlan{}
	for i, d := range defs {
		// The fixed path submits job i at i × SubmitStagger (1 s).
		plan.Trace = append(plan.Trace, TraceArrival{At: float64(i), Def: d})
	}
	got := openDecisionStream(t, true, WithSeed(11), WithScale(30), WithArrivals(plan))
	want, err := os.ReadFile(filepath.Join("testdata", "kernel_golden", "terasort_prob_s11.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("open-system trace diverged from the fixed-batch golden:\n%s",
			firstDiff(string(want), got))
	}
}

// openGoldenOptions is the multi-tenant golden scenario: two Poisson
// tenants under a tight admission cap with preemption on and a short
// queue for the best-effort tenant, so the stream exercises every
// open-system event kind (arrival, admit, reject, preempt).
func openGoldenOptions() []Option {
	return []Option{
		WithSeed(5), WithScale(30),
		WithArrivals(ArrivalPlan{
			Horizon:   420,
			Warmup:    60,
			MaxActive: 2,
			Preempt:   true,
		}),
		WithTenants(
			Tenant{Name: "gold", Weight: 3, Rate: 0.06, Kinds: []Kind{Terasort, Grep}, MinGB: 10, MaxGB: 30},
			Tenant{Name: "be", Weight: 1, Rate: 0.12, Kinds: []Kind{Wordcount}, MinGB: 10, MaxGB: 30, QueueCap: 1},
		),
	}
}

// TestOpenSystemGoldenEventStream pins the multi-tenant open-system event
// stream byte for byte, covering the new event vocabulary end to end.
// Regenerate with -update-golden after intentional changes.
func TestOpenSystemGoldenEventStream(t *testing.T) {
	got := openDecisionStream(t, false, openGoldenOptions()...)
	for kind := range openEventTypes {
		if kind == "node_unblacklist" {
			continue // needs a fault plan; covered by the engine tests
		}
		if !strings.Contains(got, `"type":"`+kind+`"`) {
			t.Fatalf("golden scenario never emitted %s; scenario needs retuning", kind)
		}
	}
	path := filepath.Join("testdata", "kernel_golden", "opensys_multitenant_s5.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("open-system event stream diverged from golden %s:\n%s",
			path, firstDiff(string(want), got))
	}
}

// TestOpenSystemTenantMetrics checks the steady-state SLO accounting of
// the golden scenario: per-tenant quantiles populated, sane fairness
// index, conservation between arrivals and their outcomes.
func TestOpenSystemTenantMetrics(t *testing.T) {
	res, err := runSim(smallConfig(), nil, SchedulerProbabilistic, openGoldenOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OpenSystem {
		t.Fatal("OpenSystem flag not set")
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("%d tenant results", len(res.Tenants))
	}
	if res.JainFairness <= 0 || res.JainFairness > 1 {
		t.Fatalf("Jain index %v outside (0,1]", res.JainFairness)
	}
	if res.Preemptions == 0 {
		t.Fatal("preemption never fired in the golden scenario")
	}
	if res.RejectedJobs == 0 {
		t.Fatal("queue-cap rejection never fired in the golden scenario")
	}
	for _, tr := range res.Tenants {
		if tr.Arrived == 0 {
			t.Fatalf("tenant %s: no arrivals", tr.Name)
		}
		if tr.Admitted+tr.Rejected+tr.QueuedAtEnd != tr.Arrived {
			t.Fatalf("tenant %s: arrivals %d != admitted %d + rejected %d + queued %d",
				tr.Name, tr.Arrived, tr.Admitted, tr.Rejected, tr.QueuedAtEnd)
		}
		if tr.SteadyCompleted > 0 {
			if !(tr.JCTP50 <= tr.JCTP95 && tr.JCTP95 <= tr.JCTP99) {
				t.Fatalf("tenant %s: quantiles not monotone: %v %v %v",
					tr.Name, tr.JCTP50, tr.JCTP95, tr.JCTP99)
			}
			if tr.Throughput <= 0 {
				t.Fatalf("tenant %s: zero throughput with %d steady completions",
					tr.Name, tr.SteadyCompleted)
			}
		}
	}
	if res.SteadyMapUtilization <= 0 || res.SteadyMapUtilization > 1 {
		t.Fatalf("steady map utilization %v", res.SteadyMapUtilization)
	}
}

// TestOpenSystemTenantIsolation checks the forked-RNG contract: adding a
// tenant must not shift another tenant's arrival stream. The "gold"
// tenant's admitted job names are compared across a solo run and a run
// sharing the cluster with a second tenant.
func TestOpenSystemTenantIsolation(t *testing.T) {
	gold := Tenant{Name: "gold", Rate: 0.03, Kinds: []Kind{Grep}, MinGB: 10, MaxGB: 20}
	be := Tenant{Name: "be", Rate: 0.05, Kinds: []Kind{Wordcount}, MinGB: 10, MaxGB: 20}
	plan := ArrivalPlan{Horizon: 240}
	arrivalsOf := func(opts ...Option) []string {
		var names []string
		sink := ObserverFunc(func(e Event) {
			if e.Type == "job_arrival" && e.Reason == "gold" {
				names = append(names, e.Job)
			}
		})
		_, err := runSim(smallConfig(), nil, SchedulerProbabilistic,
			append([]Option{WithSeed(9), WithScale(30), WithObserver(sink)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return names
	}
	solo := arrivalsOf(WithArrivals(plan), WithTenants(gold))
	shared := arrivalsOf(WithArrivals(plan), WithTenants(gold, be))
	if len(solo) == 0 {
		t.Fatal("gold tenant generated no arrivals")
	}
	if strings.Join(solo, ";") != strings.Join(shared, ";") {
		t.Fatalf("gold arrivals shifted when be joined:\nsolo:   %v\nshared: %v", solo, shared)
	}
}
