package mapsched

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The kernel-speed pass (calendar queue, pooled events/flows/attempts,
// coalesced recomputes) is gated on the scheduler's decision stream staying
// bit-identical. The files under testdata/kernel_golden were recorded before
// the pass and pin every non-flow event (submissions, offers, assignments,
// skips, starts, finishes, speculation, faults) byte for byte. Flow events
// are excluded by design: coalescing legitimately thins same-instant
// flow_rate updates, but it must never move a decision.
//
// Regenerate with: go test -run TestKernelGoldenDecisionStreams -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/kernel_golden decision-stream files")

type goldenScenario struct {
	name string
	defs []JobDef
	kind SchedulerKind
	opts []Option
}

func goldenScenarios(t *testing.T) []goldenScenario {
	t.Helper()
	plan, err := ParseFaultPlan("crash:3@12;slow:5@5+40*3;link:7@4+30*0.2;replica:9@8;taskfail:0.05")
	if err != nil {
		t.Fatal(err)
	}
	return []goldenScenario{
		{"terasort_prob_s11", Batch(Terasort), SchedulerProbabilistic,
			[]Option{WithSeed(11), WithScale(30)}},
		{"wordcount_fair_s7", Batch(Wordcount), SchedulerFair,
			[]Option{WithSeed(7), WithScale(30)}},
		{"grep_coupling_s3", Batch(Grep), SchedulerCoupling,
			[]Option{WithSeed(3), WithScale(30), WithCrossTraffic(25)}},
		{"terasort_faulty_s11", Batch(Terasort), SchedulerProbabilistic,
			[]Option{WithSeed(11), WithScale(30), WithFaultPlan(plan)}},
	}
}

// decisionStream runs the scenario and returns the JSONL event log with all
// flow_* events removed, preserving the exact bytes of the remaining lines.
func decisionStream(t *testing.T, sc goldenScenario) string {
	t.Helper()
	var buf bytes.Buffer
	log := NewJSONLSink(&buf)
	opts := append([]Option{WithObserver(log)}, sc.opts...)
	sim, err := New(smallConfig(), sc.defs, sc.kind, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, line := range strings.SplitAfter(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if strings.HasPrefix(head.Type, "flow_") {
			continue
		}
		out.WriteString(line)
	}
	return out.String()
}

func TestKernelGoldenDecisionStreams(t *testing.T) {
	for _, sc := range goldenScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := decisionStream(t, sc)
			if got == "" {
				t.Fatal("empty decision stream")
			}
			path := filepath.Join("testdata", "kernel_golden", sc.name+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("decision stream diverged from pre-pass golden %s:\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure message.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "line counts differ: want " + itoa(len(wl)) + ", got " + itoa(len(gl))
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
