// Command mrsim runs one simulated MapReduce batch under a chosen
// task-level scheduler and prints per-job and aggregate results.
//
// Usage:
//
//	mrsim [-sched probabilistic|coupling|fair] [-workload wordcount|terasort|grep]
//	      [-scale N] [-seed N] [-nodes N] [-racks N] [-pmin P]
//	      [-mode hops|netcond] [-crosstraffic N] [-v]
//	      [-faults SPEC] [-hb-expiry SECONDS]
//	      [-trace FILE] [-events FILE] [-obs-summary]
//
// The -faults spec is semicolon-separated, e.g.
//
//	-faults 'crash:3@60;slow:7@30+120*2.5;link:4@10+40*0.1;taskfail:0.02'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mapsched"

	"mapsched/internal/metrics"
)

func main() {
	var (
		schedName = flag.String("sched", "probabilistic", "scheduler: probabilistic, coupling, fair")
		wlName    = flag.String("workload", "wordcount", "batch: wordcount, terasort, grep")
		scale     = flag.Int("scale", 6, "workload scale divisor")
		seed      = flag.Int64("seed", 1, "simulation seed")
		nodes     = flag.Int("nodes", 60, "nodes per rack")
		racks     = flag.Int("racks", 1, "number of racks")
		pmin      = flag.Float64("pmin", 0.4, "P_min threshold (probabilistic scheduler)")
		mode      = flag.String("mode", "netcond", "cost mode: hops or netcond")
		cross     = flag.Int("crosstraffic", 0, "background cross-traffic flows")
		faultSpec = flag.String("faults", "", "fault plan: crash:N@T; slow:N@T[+D]*F; link:N@T[+D]*F; replica:N@T; taskfail:P; attempts:N; blacklist:N")
		hbExpiry  = flag.Float64("hb-expiry", 0, "heartbeat-expiry window in seconds (0 = 10x heartbeat interval)")
		verbose   = flag.Bool("v", false, "print per-job rows")
		traceOut  = flag.String("trace", "", "write a JSON task timeline to this file")
		eventsOut = flag.String("events", "", "write a JSONL event log (scheduler decisions, tasks, flows) to this file")
		obsSum    = flag.Bool("obs-summary", false, "print streaming observer metrics (locality/skip rates, waits, link volume)")
	)
	flag.Parse()

	kind, err := schedulerKind(*schedName)
	if err != nil {
		fatal(err)
	}
	batch, err := workloadBatch(*wlName)
	if err != nil {
		fatal(err)
	}
	costMode := mapsched.ModeNetworkCondition
	if *mode == "hops" {
		costMode = mapsched.ModeHops
	} else if *mode != "netcond" {
		fatal(fmt.Errorf("unknown cost mode %q", *mode))
	}

	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = *nodes
	cfg.Topology.Racks = *racks

	opts := []mapsched.Option{
		mapsched.WithSeed(*seed),
		mapsched.WithScale(*scale),
		mapsched.WithPmin(*pmin),
		mapsched.WithCostMode(costMode),
		mapsched.WithCrossTraffic(*cross),
	}
	if *faultSpec != "" {
		plan, err := mapsched.ParseFaultPlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, mapsched.WithFaultPlan(plan))
	}
	if *hbExpiry > 0 {
		opts = append(opts, mapsched.WithHeartbeatExpiry(*hbExpiry))
	}

	sim, err := mapsched.New(cfg, batch, kind, opts...)
	if err != nil {
		fatal(err)
	}

	var eventLog *mapsched.JSONLSink
	var eventFile *os.File
	if *eventsOut != "" {
		eventFile, err = os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		eventLog = mapsched.NewJSONLSink(eventFile)
		if err := sim.Attach(eventLog); err != nil {
			fatal(err)
		}
	}
	var summary *mapsched.SummarySink
	if *obsSum {
		summary = mapsched.NewSummarySink()
		if err := sim.Attach(summary); err != nil {
			fatal(err)
		}
	}

	res, err := sim.Run()
	if err != nil {
		fatal(err)
	}
	tr := sim.Trace()

	if eventLog != nil {
		if err := eventLog.Flush(); err != nil {
			fatal(err)
		}
		if err := eventFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "event log written to %s\n", *eventsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d tasks)\n", *traceOut, len(tr.Tasks))
	}
	if summary != nil {
		fmt.Println(summary.String())
	}

	if *verbose {
		t := metrics.NewTable("Job", "Maps", "Reduces", "Completion", "Local maps")
		for _, j := range res.Jobs {
			comp := "unfinished"
			if j.Finished() {
				comp = metrics.Seconds(j.Completion)
			}
			t.AddRow(j.Name, j.NumMaps, j.NumReduces, comp,
				fmt.Sprintf("%.1f%%", j.MapLocality.PercentNode()))
		}
		fmt.Println(t.String())
	}

	cdf := res.JobCompletionCDF()
	fmt.Printf("scheduler:          %s\n", res.Scheduler)
	fmt.Printf("jobs:               %d (%d unfinished)\n", len(res.Jobs), res.Unfinished)
	fmt.Printf("makespan:           %s\n", metrics.Seconds(res.Makespan))
	fmt.Printf("job completion:     mean %s, median %s, max %s\n",
		metrics.Seconds(cdf.Mean()), metrics.Seconds(cdf.Quantile(0.5)), metrics.Seconds(cdf.Max()))
	fmt.Printf("map tasks:          %d, mean %s\n", len(res.MapTimes), metrics.Seconds(metrics.NewCDF(res.MapTimes).Mean()))
	fmt.Printf("reduce tasks:       %d, mean %s\n", len(res.ReduceTimes), metrics.Seconds(metrics.NewCDF(res.ReduceTimes).Mean()))
	fmt.Printf("map locality:       %.2f%% node, %.2f%% rack, %.2f%% remote\n",
		res.MapLocality.PercentNode(), res.MapLocality.PercentRack(), res.MapLocality.PercentRemote())
	fmt.Printf("slot utilization:   map %.2f, reduce %.2f\n", res.MapUtilization, res.ReduceUtilization)
	fmt.Printf("network volume:     map-in %.1f GB, shuffle %.1f GB remote / %.1f GB local\n",
		res.MapRemoteBytes/1e9, res.ShuffleRemoteBytes/1e9, res.ShuffleLocalBytes/1e9)
	if res.FailedJobs > 0 || res.AttemptFailures > 0 || res.RelaunchedMaps > 0 ||
		res.RelaunchedReduces > 0 || res.BlacklistedNodes > 0 {
		fmt.Printf("fault recovery:     %d failed jobs, %d attempt failures, %d maps + %d reduces relaunched, %d nodes blacklisted\n",
			res.FailedJobs, res.AttemptFailures, res.RelaunchedMaps, res.RelaunchedReduces, res.BlacklistedNodes)
	}
}

func schedulerKind(name string) (mapsched.SchedulerKind, error) {
	switch strings.ToLower(name) {
	case "probabilistic", "pna", "prob":
		return mapsched.SchedulerProbabilistic, nil
	case "coupling":
		return mapsched.SchedulerCoupling, nil
	case "fair":
		return mapsched.SchedulerFair, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q", name)
	}
}

func workloadBatch(name string) ([]mapsched.JobDef, error) {
	switch strings.ToLower(name) {
	case "wordcount", "wc":
		return mapsched.Batch(mapsched.Wordcount), nil
	case "terasort", "ts":
		return mapsched.Batch(mapsched.Terasort), nil
	case "grep":
		return mapsched.Batch(mapsched.Grep), nil
	case "all":
		return mapsched.TableII(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrsim:", err)
	os.Exit(1)
}
