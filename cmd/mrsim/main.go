// Command mrsim runs one simulated MapReduce batch under a chosen
// task-level scheduler and prints per-job and aggregate results.
//
// Usage:
//
//	mrsim [-sched probabilistic|coupling|fair] [-workload wordcount|terasort|grep]
//	      [-scale N] [-seed N] [-nodes N] [-racks N] [-pmin P]
//	      [-mode hops|netcond] [-crosstraffic N] [-v]
//	      [-faults SPEC] [-hb-expiry SECONDS]
//	      [-arrivals SPEC] [-tenants SPEC]
//	      [-trace FILE] [-events FILE] [-obs-summary]
//
// The -faults spec is semicolon-separated, e.g.
//
//	-faults 'crash:3@60;slow:7@30+120*2.5;link:4@10+40*0.1;taskfail:0.02'
//
// -arrivals switches from the fixed -workload batch to an open-system
// run with continuous Poisson arrivals over multi-tenant queues, e.g.
//
//	-arrivals 'horizon=600,warmup=60,maxactive=12,preempt=1' \
//	-tenants 'gold:weight=3,rate=0.05;besteffort:rate=0.02,cap=8'
//
// Exit codes: 0 on success, 1 on configuration or simulation errors,
// and 3 when the batch completed but one or more jobs failed
// permanently (Result.FailedJobs > 0) — so fault-sweep scripting can
// tell "the run broke" from "the run showed job loss".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mapsched"

	"mapsched/internal/metrics"
)

// exitFailedJobs is returned when the simulation finished but left
// permanently failed jobs behind.
const exitFailedJobs = 3

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges cut for testing: args are the command-line
// arguments after the program name, and the returned int is the exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schedName = fs.String("sched", "probabilistic", "scheduler: probabilistic, coupling, fair")
		wlName    = fs.String("workload", "wordcount", "batch: wordcount, terasort, grep")
		scale     = fs.Int("scale", 6, "workload scale divisor")
		seed      = fs.Int64("seed", 1, "simulation seed")
		nodes     = fs.Int("nodes", 60, "nodes per rack")
		racks     = fs.Int("racks", 1, "number of racks")
		pmin      = fs.Float64("pmin", 0.4, "P_min threshold (probabilistic scheduler)")
		mode      = fs.String("mode", "netcond", "cost mode: hops or netcond")
		cross     = fs.Int("crosstraffic", 0, "background cross-traffic flows")
		faultSpec = fs.String("faults", "", "fault plan: crash:N@T; slow:N@T[+D]*F; link:N@T[+D]*F; replica:N@T; taskfail:P; attempts:N; blacklist:N")
		arrSpec   = fs.String("arrivals", "", "open-system arrival plan: horizon=T,warmup=T,maxactive=N,preempt=0|1 (replaces -workload)")
		tenSpec   = fs.String("tenants", "", "open-system tenants: name:weight=W,rate=R,cap=N,min=GB,max=GB;... (requires -arrivals)")
		hbExpiry  = fs.Float64("hb-expiry", 0, "heartbeat-expiry window in seconds (0 = 10x heartbeat interval)")
		verbose   = fs.Bool("v", false, "print per-job rows")
		traceOut  = fs.String("trace", "", "write a JSON task timeline to this file")
		eventsOut = fs.String("events", "", "write a JSONL event log (scheduler decisions, tasks, flows) to this file")
		obsSum    = fs.Bool("obs-summary", false, "print streaming observer metrics (locality/skip rates, waits, link volume)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mrsim:", err)
		return 1
	}

	kind, err := schedulerKind(*schedName)
	if err != nil {
		return fail(err)
	}
	batch, err := workloadBatch(*wlName)
	if err != nil {
		return fail(err)
	}
	costMode := mapsched.ModeNetworkCondition
	if *mode == "hops" {
		costMode = mapsched.ModeHops
	} else if *mode != "netcond" {
		return fail(fmt.Errorf("unknown cost mode %q", *mode))
	}

	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = *nodes
	cfg.Topology.Racks = *racks

	opts := []mapsched.Option{
		mapsched.WithSeed(*seed),
		mapsched.WithScale(*scale),
		mapsched.WithPmin(*pmin),
		mapsched.WithCostMode(costMode),
		mapsched.WithCrossTraffic(*cross),
	}
	if *faultSpec != "" {
		plan, err := mapsched.ParseFaultPlan(*faultSpec)
		if err != nil {
			return fail(err)
		}
		opts = append(opts, mapsched.WithFaultPlan(plan))
	}
	if *hbExpiry > 0 {
		opts = append(opts, mapsched.WithHeartbeatExpiry(*hbExpiry))
	}
	if *arrSpec != "" {
		plan, err := mapsched.ParseArrivalPlan(*arrSpec)
		if err != nil {
			return fail(err)
		}
		opts = append(opts, mapsched.WithArrivals(plan))
		batch = nil // arrivals replace the fixed batch
	}
	if *tenSpec != "" {
		tenants, err := mapsched.ParseTenants(*tenSpec)
		if err != nil {
			return fail(err)
		}
		opts = append(opts, mapsched.WithTenants(tenants...))
	}

	sim, err := mapsched.New(cfg, batch, kind, opts...)
	if err != nil {
		return fail(err)
	}

	var eventLog *mapsched.JSONLSink
	var eventFile *os.File
	if *eventsOut != "" {
		eventFile, err = os.Create(*eventsOut)
		if err != nil {
			return fail(err)
		}
		eventLog = mapsched.NewJSONLSink(eventFile)
		if err := sim.Attach(eventLog); err != nil {
			return fail(err)
		}
	}
	var summary *mapsched.SummarySink
	if *obsSum {
		summary = mapsched.NewSummarySink()
		if err := sim.Attach(summary); err != nil {
			return fail(err)
		}
	}

	res, err := sim.Run()
	if err != nil {
		return fail(err)
	}
	tr := sim.Trace()

	if eventLog != nil {
		if err := eventLog.Flush(); err != nil {
			return fail(err)
		}
		if err := eventFile.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "event log written to %s\n", *eventsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "trace written to %s (%d tasks)\n", *traceOut, len(tr.Tasks))
	}
	if summary != nil {
		fmt.Fprintln(stdout, summary.String())
	}

	if *verbose {
		t := metrics.NewTable("Job", "Maps", "Reduces", "Completion", "Local maps")
		for _, j := range res.Jobs {
			comp := "unfinished"
			if j.Finished() {
				comp = metrics.Seconds(j.Completion)
			}
			t.AddRow(j.Name, j.NumMaps, j.NumReduces, comp,
				fmt.Sprintf("%.1f%%", j.MapLocality.PercentNode()))
		}
		fmt.Fprintln(stdout, t.String())
	}

	cdf := res.JobCompletionCDF()
	fmt.Fprintf(stdout, "scheduler:          %s\n", res.Scheduler)
	fmt.Fprintf(stdout, "jobs:               %d (%d unfinished)\n", len(res.Jobs), res.Unfinished)
	fmt.Fprintf(stdout, "makespan:           %s\n", metrics.Seconds(res.Makespan))
	fmt.Fprintf(stdout, "job completion:     mean %s, median %s, max %s\n",
		metrics.Seconds(cdf.Mean()), metrics.Seconds(cdf.Quantile(0.5)), metrics.Seconds(cdf.Max()))
	fmt.Fprintf(stdout, "map tasks:          %d, mean %s\n", len(res.MapTimes), metrics.Seconds(metrics.NewCDF(res.MapTimes).Mean()))
	fmt.Fprintf(stdout, "reduce tasks:       %d, mean %s\n", len(res.ReduceTimes), metrics.Seconds(metrics.NewCDF(res.ReduceTimes).Mean()))
	fmt.Fprintf(stdout, "map locality:       %.2f%% node, %.2f%% rack, %.2f%% remote\n",
		res.MapLocality.PercentNode(), res.MapLocality.PercentRack(), res.MapLocality.PercentRemote())
	fmt.Fprintf(stdout, "slot utilization:   map %.2f, reduce %.2f\n", res.MapUtilization, res.ReduceUtilization)
	fmt.Fprintf(stdout, "network volume:     map-in %.1f GB, shuffle %.1f GB remote / %.1f GB local\n",
		res.MapRemoteBytes/1e9, res.ShuffleRemoteBytes/1e9, res.ShuffleLocalBytes/1e9)
	if res.FailedJobs > 0 || res.AttemptFailures > 0 || res.RelaunchedMaps > 0 ||
		res.RelaunchedReduces > 0 || res.BlacklistedNodes > 0 {
		fmt.Fprintf(stdout, "fault recovery:     %d failed jobs, %d attempt failures, %d maps + %d reduces relaunched, %d nodes blacklisted\n",
			res.FailedJobs, res.AttemptFailures, res.RelaunchedMaps, res.RelaunchedReduces, res.BlacklistedNodes)
	}
	if res.OpenSystem {
		fmt.Fprintf(stdout, "open system:        %d preemptions, %d rejected, Jain fairness %.3f\n",
			res.Preemptions, res.RejectedJobs, res.JainFairness)
		fmt.Fprintf(stdout, "steady-state util:  map %.2f, reduce %.2f\n",
			res.SteadyMapUtilization, res.SteadyReduceUtilization)
		t := metrics.NewTable("Tenant", "Weight", "Arrived", "Admit/Rej/Pre", "Done", "JCT p50/p95/p99", "QDelay p95", "Jobs/s")
		for _, tr := range res.Tenants {
			jct, qd, thr := "-", "-", "-"
			if tr.SteadyCompleted > 0 {
				jct = fmt.Sprintf("%.0f/%.0f/%.0fs", tr.JCTP50, tr.JCTP95, tr.JCTP99)
				qd = fmt.Sprintf("%.1fs", tr.QueueDelayP95)
				thr = fmt.Sprintf("%.4f", tr.Throughput)
			}
			t.AddRow(tr.Name, tr.Weight, tr.Arrived,
				fmt.Sprintf("%d/%d/%d", tr.Admitted, tr.Rejected, tr.Preempted),
				tr.Completed, jct, qd, thr)
		}
		fmt.Fprintln(stdout, t.String())
	}
	if res.FailedJobs > 0 {
		fmt.Fprintf(stderr, "mrsim: %d jobs failed permanently (exit %d)\n", res.FailedJobs, exitFailedJobs)
		return exitFailedJobs
	}
	return 0
}

func schedulerKind(name string) (mapsched.SchedulerKind, error) {
	switch strings.ToLower(name) {
	case "probabilistic", "pna", "prob":
		return mapsched.SchedulerProbabilistic, nil
	case "coupling":
		return mapsched.SchedulerCoupling, nil
	case "fair":
		return mapsched.SchedulerFair, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q", name)
	}
}

func workloadBatch(name string) ([]mapsched.JobDef, error) {
	switch strings.ToLower(name) {
	case "wordcount", "wc":
		return mapsched.Batch(mapsched.Wordcount), nil
	case "terasort", "ts":
		return mapsched.Batch(mapsched.Terasort), nil
	case "grep":
		return mapsched.Batch(mapsched.Grep), nil
	case "all":
		return mapsched.TableII(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
