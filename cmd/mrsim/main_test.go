package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI exit-code contract: 0 for a clean
// batch, 1 for configuration errors, and the distinct exitFailedJobs
// when the simulation completes but jobs failed permanently — the
// signal fault-sweep scripting keys on.
func TestRunExitCodes(t *testing.T) {
	base := []string{"-nodes", "12", "-racks", "1", "-scale", "30", "-seed", "3", "-mode", "hops"}

	var out, errb bytes.Buffer
	if code := run(base, &out, &errb); code != 0 {
		t.Fatalf("clean run exited %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "makespan:") {
		t.Fatalf("summary missing from stdout: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-sched", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("bad scheduler exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown scheduler") {
		t.Fatalf("stderr missing reason: %s", errb.String())
	}

	// Exhausting the attempt cap fails jobs (same recipe the fault-sweep
	// tests pin at the library level) and must surface as exit 3.
	out.Reset()
	errb.Reset()
	args := append(append([]string{}, base...), "-faults", "taskfail:0.6;attempts:2")
	code := run(args, &out, &errb)
	if code != exitFailedJobs {
		t.Fatalf("failed-jobs run exited %d, want %d\nstdout: %s\nstderr: %s",
			code, exitFailedJobs, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "failed jobs") {
		t.Fatalf("fault-recovery line missing from stdout: %s", out.String())
	}
	if !strings.Contains(errb.String(), "failed permanently") {
		t.Fatalf("stderr missing the failed-jobs reason: %s", errb.String())
	}
}
