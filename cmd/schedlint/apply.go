package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// runApply reads `go vet -json` output (from the named files, or
// stdin when none are given), collects the suggested-fix text edits,
// and splices them into the source files. It returns the number of
// edits applied.
//
// The vet driver emits one JSON object per package — a tree of
// {"pkg": {"analyzer": [diagnostic...]}} — interleaved with
// "# pkgpath" comment lines; edits carry byte offsets into the
// diagnosed file. Overlapping edits to the same file are rejected
// rather than guessed at, and identical duplicates (the same fix
// reported for a package and its test variant) are applied once.
func runApply(args []string) (int, error) {
	var input io.Reader
	if len(args) == 0 {
		input = os.Stdin
	} else {
		var readers []io.Reader
		for _, name := range args {
			f, err := os.Open(name)
			if err != nil {
				return 0, err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		input = io.MultiReader(readers...)
	}
	edits, err := collectEdits(input)
	if err != nil {
		return 0, err
	}
	return applyEdits(edits)
}

type textEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

type suggestedFix struct {
	Message string     `json:"message"`
	Edits   []textEdit `json:"edits"`
}

type jsonDiagnostic struct {
	Posn           string         `json:"posn"`
	Message        string         `json:"message"`
	SuggestedFixes []suggestedFix `json:"suggested_fixes"`
}

// collectEdits parses the (comment-interleaved) JSON stream and
// returns the deduplicated edits grouped by file.
func collectEdits(r io.Reader) (map[string][]textEdit, error) {
	// Drop the "# pkgpath" progress lines the go command prints
	// between per-package JSON objects.
	var clean bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
			continue
		}
		clean.Write(sc.Bytes())
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	edits := map[string][]textEdit{}
	seen := map[textEdit]bool{}
	dec := json.NewDecoder(&clean)
	for {
		// pkg -> analyzer -> diagnostics (or an {"error": ...} object,
		// which fails the per-analyzer unmarshal and is skipped).
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing vet JSON: %w", err)
		}
		for _, pkg := range sortedKeys(tree) {
			analyzers := tree[pkg]
			for _, name := range sortedKeys(analyzers) {
				var diags []jsonDiagnostic
				if err := json.Unmarshal(analyzers[name], &diags); err != nil {
					continue
				}
				for _, d := range diags {
					for _, fix := range d.SuggestedFixes {
						for _, e := range fix.Edits {
							if e.Filename == "" || seen[e] {
								continue
							}
							seen[e] = true
							edits[e.Filename] = append(edits[e.Filename], e)
						}
					}
				}
			}
		}
	}
	return edits, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// applyEdits splices the edits into each file, last-to-first so the
// byte offsets stay valid, refusing files with overlapping edits.
func applyEdits(edits map[string][]textEdit) (int, error) {
	var files []string
	for name := range edits {
		files = append(files, name)
	}
	sort.Strings(files)

	applied := 0
	for _, name := range files {
		es := edits[name]
		sort.Slice(es, func(i, j int) bool { return es[i].Start > es[j].Start })
		for i := 1; i < len(es); i++ {
			if es[i].End > es[i-1].Start {
				return applied, fmt.Errorf("%s: overlapping suggested fixes at offsets %d and %d; apply manually",
					name, es[i].Start, es[i-1].Start)
			}
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return applied, err
		}
		for _, e := range es {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				return applied, fmt.Errorf("%s: suggested fix offsets [%d,%d) out of range (file changed since lint?)",
					name, e.Start, e.End)
			}
			var out []byte
			out = append(out, src[:e.Start]...)
			out = append(out, e.New...)
			out = append(out, src[e.End:]...)
			src = out
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return applied, err
		}
		applied += len(es)
	}
	return applied, nil
}
