package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestApplyFix feeds a hand-built `go vet -json` stream (with the
// go command's "# pkg" progress lines interleaved) through the
// -apply pipeline and checks the errcmp-style rewrite lands at the
// right byte offsets.
func TestApplyFix(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "cmp.go")
	src := "package p\n\nfunc f(err error) bool { return err == ErrBoom }\n"
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	start := strings.Index(src, "err == ErrBoom")
	end := start + len("err == ErrBoom")

	stream := fmt.Sprintf(`# p
{
	"p": {
		"errcmp": [
			{
				"posn": %q,
				"message": "sentinel error \"ErrBoom\" compared with ==",
				"suggested_fixes": [
					{
						"message": "replace == comparison with errors.Is(err, ErrBoom)",
						"edits": [
							{"filename": %q, "start": %d, "end": %d, "new": "errors.Is(err, ErrBoom)"}
						]
					}
				]
			}
		],
		"lockheld": {"error": "analyzer skipped"}
	}
}
`, file+":3:32", file, start, end)

	edits, err := collectEdits(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("collectEdits: %v", err)
	}
	n, err := applyEdits(edits)
	if err != nil {
		t.Fatalf("applyEdits: %v", err)
	}
	if n != 1 {
		t.Fatalf("applied %d edits, want 1", n)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nfunc f(err error) bool { return errors.Is(err, ErrBoom) }\n"
	if string(got) != want {
		t.Errorf("after apply:\n%s\nwant:\n%s", got, want)
	}
}

// TestApplyRejectsOverlap: overlapping fixes must refuse rather than
// corrupt the file.
func TestApplyRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	edits := map[string][]textEdit{file: {
		{Filename: file, Start: 2, End: 6, New: "a"},
		{Filename: file, Start: 4, End: 8, New: "b"},
	}}
	if _, err := applyEdits(edits); err == nil {
		t.Error("overlapping edits applied without error")
	}
}

// TestApplyDeduplicates: the same fix reported twice (package and
// test variant) is applied once.
func TestApplyDeduplicates(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	stream := fmt.Sprintf(`{"p":{"errcmp":[{"posn":"x","message":"m","suggested_fixes":[{"message":"f","edits":[{"filename":%q,"start":1,"end":2,"new":"Z"}]}]}]}}
{"p [p.test]":{"errcmp":[{"posn":"x","message":"m","suggested_fixes":[{"message":"f","edits":[{"filename":%q,"start":1,"end":2,"new":"Z"}]}]}]}}
`, file, file)
	edits, err := collectEdits(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	n, err := applyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("applied %d edits, want 1 after dedup", n)
	}
	got, _ := os.ReadFile(file)
	if string(got) != "aZc" {
		t.Errorf("file = %q, want aZc", got)
	}
}
