// Command schedlint is the repository's custom static-analysis suite,
// statically enforcing the simulator's determinism and cache
// invalidation contracts:
//
//	nodeterminism  no wall-clock reads, global math/rand draws, or
//	               map-iteration order escaping into simulation state
//	               or emitted output
//	epochbump      mutations of //lint:epoch-guarded fields (FlowNet
//	               capacities, HDFS replica sets) must bump an epoch
//	obsvocab       obs event emissions must use registered event-type
//	               constants, keeping the golden-JSONL schema closed
//	optflag        functional options guarded by set flags must write
//	               their flag (the WithCrossTraffic(0) bug class)
//
// It speaks the `go vet` tool protocol; run it through the driver:
//
//	go build -o bin/schedlint ./cmd/schedlint
//	go vet -vettool=bin/schedlint ./...
//
// or simply `make lint`. A file can suppress one analyzer with a
// file-level `//lint:allow <analyzer> [reason]` comment.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"mapsched/internal/lint"
)

func main() { unitchecker.Main(lint.Analyzers()...) }
