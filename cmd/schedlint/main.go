// Command schedlint is the repository's custom static-analysis suite,
// statically enforcing the simulator's determinism, cache
// invalidation, concurrency, and persistence contracts:
//
//	nodeterminism  no wall-clock reads, global math/rand draws, or
//	               map-iteration order escaping into simulation state
//	               or emitted output
//	epochbump      mutations of //lint:epoch-guarded fields (FlowNet
//	               capacities, HDFS replica sets) must bump an epoch
//	poolreset      //lint:pooled free-list release sites must reset
//	               every field not marked //lint:pooled-keep
//	obsvocab       obs event emissions must use registered event-type
//	               constants, keeping the golden-JSONL schema closed
//	optflag        functional options guarded by set flags must write
//	               their flag (the WithCrossTraffic(0) bug class)
//	lockheld       //lint:guarded fields only under their mutex,
//	               *Locked//lint:locked call-site discipline, and
//	               lock-scope escapes (goroutines, returned interior
//	               pointers, lost deferred close-outs)
//	snapshotfree   //lint:immutable-after-publish types admit writes
//	               only in constructors and //lint:publish sites
//	deltajournal   journal Op enums encoded, decode/apply switches
//	               exhaustive, Apply*/Update* deltas reach the
//	               //lint:journal-append helper
//	errcmp         //lint:sentinel errors compared with errors.Is,
//	               never == or identity switch (with suggested fix)
//
// It speaks the `go vet` tool protocol; run it through the driver:
//
//	go build -o bin/schedlint ./cmd/schedlint
//	go vet -vettool=bin/schedlint ./...
//
// or simply `make lint`. Passing -json through the driver emits
// machine-readable diagnostics (with byte-offset suggested fixes) for
// CI annotations:
//
//	go vet -vettool=bin/schedlint -json ./...
//
// and piping that JSON back into `schedlint -apply` splices the
// mechanical rewrites (errcmp's errors.Is suggestions) into the
// source files — this is what `make lint-fix` runs:
//
//	go vet -vettool=bin/schedlint -json ./... | bin/schedlint -apply
//
// A file can suppress one analyzer for the whole file with a
// `//lint:allow <analyzer> [reason]` comment; the v2 analyzers
// (lockheld, snapshotfree, deltajournal, errcmp) additionally scope
// an allow in a declaration's doc comment to that declaration alone.
package main

import (
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"mapsched/internal/lint"
)

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-apply" || os.Args[1] == "--apply") {
		n, err := runApply(os.Args[2:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint -apply:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "schedlint: applied %d suggested fix(es)\n", n)
		return
	}
	unitchecker.Main(lint.Analyzers()...)
}
