package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mapsched"
)

// recordEvents runs a small hop-cost probabilistic simulation and
// writes its JSONL event log to a temp file, returning the path.
func recordEvents(t *testing.T, opts ...mapsched.Option) string {
	t.Helper()
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	path := filepath.Join(t.TempDir(), "run.events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := mapsched.NewJSONLSink(f)
	all := append([]mapsched.Option{
		mapsched.WithSeed(5), mapsched.WithScale(40), mapsched.WithCostMode(mapsched.ModeHops),
	}, opts...)
	sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Grep), mapsched.SchedulerProbabilistic, all...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Attach(sink); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunVerdictExitCodes pins the CLI contract: 0 for a faithful
// stream, exitDiverged when decisions disagree, and exitNotReplayable
// with a one-line machine-readable stderr reason for streams outside
// the replayable envelope.
func TestRunVerdictExitCodes(t *testing.T) {
	flags := []string{"-workload", "grep", "-nodes", "4", "-racks", "2", "-scale", "40", "-seed", "5"}
	clean := recordEvents(t)

	var out, errb bytes.Buffer
	if code := run(append(append([]string{}, flags...), clean), &out, &errb); code != 0 {
		t.Fatalf("faithful stream exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "faithful") {
		t.Fatalf("verdict missing: %s", out.String())
	}

	// The wrong seed rebuilds different block placements: the stream
	// replays but the decisions diverge.
	out.Reset()
	errb.Reset()
	wrongSeed := []string{"-workload", "grep", "-nodes", "4", "-racks", "2", "-scale", "40", "-seed", "6", clean}
	if code := run(wrongSeed, &out, &errb); code != exitDiverged {
		t.Fatalf("diverging stream exited %d, want %d\nstdout: %s", code, exitDiverged, out.String())
	}

	// A fault recording moves slots outside the task lifecycle: rejected
	// with the distinct code and a machine-readable reason line.
	plan, err := mapsched.ParseFaultPlan("crash:1@10")
	if err != nil {
		t.Fatal(err)
	}
	faulty := recordEvents(t, mapsched.WithFaultPlan(plan), mapsched.WithReplication(2))
	out.Reset()
	errb.Reset()
	if code := run(append(append([]string{}, flags...), faulty), &out, &errb); code != exitNotReplayable {
		t.Fatalf("fault stream exited %d, want %d\nstdout: %s\nstderr: %s", code, exitNotReplayable, out.String(), errb.String())
	}
	line := strings.TrimSpace(errb.String())
	if !strings.HasPrefix(line, `mrreplay: status=not_replayable reason="`) || strings.Count(line, "\n") != 0 {
		t.Fatalf("stderr is not the one-line machine-readable rejection: %q", line)
	}

	// Usage errors stay on the conventional code 2.
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("missing argument exited %d, want 2", code)
	}
}
