// Command mrreplay re-derives the scheduler decisions of a recorded
// event log without running the simulation: it rebuilds the cluster and
// jobs from the same flags the recording ran with, feeds the logged
// task lifecycle back into the standalone placement decision service as
// state deltas, and checks every recorded map decision's task and
// C / C_avg / P breakdown bit-for-bit.
//
// Record with mrsim, then verify:
//
//	mrsim -sched probabilistic -mode hops -events run.events.jsonl \
//	      -workload wordcount -scale 12 -seed 1
//	mrreplay -workload wordcount -scale 12 -seed 1 run.events.jsonl
//
// Only hop-cost, fault-free, speculation-free probabilistic recordings
// are replayable; anything else is rejected rather than replayed wrong.
package main

import (
	"flag"
	"fmt"
	"os"

	"mapsched"
)

func main() {
	var (
		wlName = flag.String("workload", "wordcount", "batch the recording ran: wordcount, terasort, grep")
		scale  = flag.Int("scale", 6, "workload scale divisor of the recording")
		seed   = flag.Int64("seed", 1, "seed of the recording")
		nodes  = flag.Int("nodes", 60, "nodes per rack of the recording")
		racks  = flag.Int("racks", 1, "racks of the recording")
		pmin   = flag.Float64("pmin", 0.4, "P_min threshold of the recording")
		repl   = flag.Int("replication", 2, "HDFS replication factor of the recording")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrreplay [flags] run.events.jsonl")
		os.Exit(2)
	}

	var batch []mapsched.JobDef
	switch *wlName {
	case "wordcount":
		batch = mapsched.Batch(mapsched.Wordcount)
	case "terasort":
		batch = mapsched.Batch(mapsched.Terasort)
	case "grep":
		batch = mapsched.Batch(mapsched.Grep)
	default:
		fatal(fmt.Errorf("unknown workload %q", *wlName))
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, err := mapsched.ReadEventLog(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = *nodes
	cfg.Topology.Racks = *racks
	rep, err := mapsched.Replay(cfg, batch, events,
		mapsched.WithSeed(*seed),
		mapsched.WithScale(*scale),
		mapsched.WithPmin(*pmin),
		mapsched.WithReplication(*repl),
		mapsched.WithCostMode(mapsched.ModeHops),
	)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("events:        %d\n", rep.Events)
	fmt.Printf("state deltas:  %d\n", rep.Deltas)
	fmt.Printf("map decisions: %d re-derived\n", rep.MapDecisions)
	if rep.Ok() {
		fmt.Println("verdict:       faithful (every decision matches bit-for-bit)")
		return
	}
	fmt.Printf("verdict:       %d decisions disagree\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Printf("  %s\n", m)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrreplay:", err)
	os.Exit(1)
}
