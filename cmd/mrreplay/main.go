// Command mrreplay re-derives the scheduler decisions of a recorded
// event log without running the simulation: it rebuilds the cluster and
// jobs from the same flags the recording ran with, feeds the logged
// task lifecycle back into the standalone placement decision service as
// state deltas, and checks every recorded map decision's task and
// C / C_avg / P breakdown bit-for-bit.
//
// Record with mrsim, then verify:
//
//	mrsim -sched probabilistic -mode hops -events run.events.jsonl \
//	      -workload wordcount -scale 12 -seed 1
//	mrreplay -workload wordcount -scale 12 -seed 1 run.events.jsonl
//
// Only hop-cost, fault-free, speculation-free probabilistic recordings
// are replayable; anything else is rejected rather than replayed wrong.
//
// Exit codes: 0 when every decision matches, 1 on input or
// configuration errors, 2 on usage errors, 3 when the stream replays
// but decisions diverge, and 4 when the stream is outside the
// replayable envelope — rejected streams also print a single
// machine-readable line on stderr:
//
//	mrreplay: status=not_replayable reason="..."
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mapsched"
)

// Exit codes past the conventional 0/1/2: diverged decision streams and
// rejected (unreplayable) recordings are distinct, scriptable verdicts.
const (
	exitDiverged      = 3
	exitNotReplayable = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges cut for testing: args are the command-line
// arguments after the program name, and the returned int is the exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mrreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wlName = fs.String("workload", "wordcount", "batch the recording ran: wordcount, terasort, grep")
		scale  = fs.Int("scale", 6, "workload scale divisor of the recording")
		seed   = fs.Int64("seed", 1, "seed of the recording")
		nodes  = fs.Int("nodes", 60, "nodes per rack of the recording")
		racks  = fs.Int("racks", 1, "racks of the recording")
		pmin   = fs.Float64("pmin", 0.4, "P_min threshold of the recording")
		repl   = fs.Int("replication", 2, "HDFS replication factor of the recording")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mrreplay [flags] run.events.jsonl")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mrreplay:", err)
		return 1
	}

	var batch []mapsched.JobDef
	switch *wlName {
	case "wordcount":
		batch = mapsched.Batch(mapsched.Wordcount)
	case "terasort":
		batch = mapsched.Batch(mapsched.Terasort)
	case "grep":
		batch = mapsched.Batch(mapsched.Grep)
	default:
		return fail(fmt.Errorf("unknown workload %q", *wlName))
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	events, err := mapsched.ReadEventLog(f)
	f.Close()
	if err != nil {
		return fail(err)
	}

	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.NodesPerRack = *nodes
	cfg.Topology.Racks = *racks
	rep, err := mapsched.Replay(cfg, batch, events,
		mapsched.WithSeed(*seed),
		mapsched.WithScale(*scale),
		mapsched.WithPmin(*pmin),
		mapsched.WithReplication(*repl),
		mapsched.WithCostMode(mapsched.ModeHops),
	)
	if errors.Is(err, mapsched.ErrNotReplayable) {
		fmt.Fprintf(stderr, "mrreplay: status=not_replayable reason=%q\n", err)
		return exitNotReplayable
	}
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "events:        %d\n", rep.Events)
	fmt.Fprintf(stdout, "state deltas:  %d\n", rep.Deltas)
	fmt.Fprintf(stdout, "map decisions: %d re-derived\n", rep.MapDecisions)
	if rep.Ok() {
		fmt.Fprintln(stdout, "verdict:       faithful (every decision matches bit-for-bit)")
		return 0
	}
	fmt.Fprintf(stdout, "verdict:       %d decisions disagree\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Fprintf(stdout, "  %s\n", m)
	}
	return exitDiverged
}
