// Command mrtrace analyzes a JSON task timeline written by mrsim -trace:
// it prints per-job phase statistics, per-node occupancy, a locality
// summary, and an ASCII Gantt chart of cluster activity. It can fold in
// a JSONL event log written by mrsim -events (scheduler decisions with
// the C / C_avg / P breakdown, flow events) and export both views as a
// Chrome trace_event file for chrome://tracing or ui.perfetto.dev.
//
// Usage:
//
//	mrsim -sched probabilistic -trace run.json -events run.events.jsonl
//	mrtrace [-gantt] [-node N] [-events run.events.jsonl] [-chrome out.json] run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/trace"
)

func main() {
	var (
		gantt     = flag.Bool("gantt", false, "print an ASCII cluster activity chart")
		nodeFlag  = flag.Int("node", -1, "print the timeline of one node")
		eventsIn  = flag.String("events", "", "JSONL event log (mrsim -events) to summarize and fold into -chrome")
		chromeOut = flag.String("chrome", "", "write a Chrome trace_event file to this path")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrtrace [-gantt] [-node N] [-events log.jsonl] [-chrome out.json] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		fatal(err)
	}

	var events []obs.Event
	if *eventsIn != "" {
		ef, err := os.Open(*eventsIn)
		if err != nil {
			fatal(err)
		}
		events, err = obs.ReadJSONL(ef)
		ef.Close()
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("scheduler: %s\n", tr.Scheduler)
	start, end := tr.Span()
	fmt.Printf("span: %.1fs .. %.1fs (%d jobs, %d tasks)\n\n", start, end, len(tr.Jobs), len(tr.Tasks))

	printJobs(tr)
	printLocality(tr)
	printNodes(tr)

	if len(events) > 0 {
		printEvents(events)
	}
	if *nodeFlag >= 0 {
		printNodeTimeline(tr, *nodeFlag)
	}
	if *gantt {
		printGantt(tr)
	}
	if *chromeOut != "" {
		cf, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChromeWith(cf, events); err != nil {
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (%d tasks, %d events)\n",
			*chromeOut, len(tr.Tasks), len(events))
	}
}

// printEvents replays the event log through the streaming summary sink,
// reproducing exactly what a live -obs-summary run would have printed.
func printEvents(events []obs.Event) {
	sum := obs.NewSummary()
	for _, e := range events {
		sum.Observe(e)
	}
	fmt.Printf("event log: %d events\n", len(events))
	fmt.Println(sum.String())
}

func printJobs(tr *trace.Trace) {
	t := metrics.NewTable("Job", "Submit", "Finish", "Maps", "Reduces", "Map phase", "Reduce tail")
	for _, j := range tr.Jobs {
		var mapEnd, redEnd float64
		for _, task := range tr.Tasks {
			if task.Job != j.Name {
				continue
			}
			switch task.Kind {
			case "map":
				if task.Finish > mapEnd {
					mapEnd = task.Finish
				}
			case "reduce":
				if task.Finish > redEnd {
					redEnd = task.Finish
				}
			}
		}
		t.AddRow(j.Name, metrics.Seconds(j.Submit), metrics.Seconds(j.Finish),
			j.Maps, j.Reduces,
			metrics.Seconds(mapEnd-j.Submit), metrics.Seconds(redEnd-mapEnd))
	}
	fmt.Println(t.String())
}

func printLocality(tr *trace.Trace) {
	counts := map[string]map[string]int{"map": {}, "reduce": {}}
	for _, task := range tr.Tasks {
		counts[task.Kind][task.Locality]++
	}
	t := metrics.NewTable("Kind", "local node", "local rack", "remote")
	for _, kind := range []string{"map", "reduce"} {
		c := counts[kind]
		t.AddRow(kind, c["local node"], c["local rack"], c["remote"])
	}
	fmt.Println(t.String())
}

func printNodes(tr *trace.Trace) {
	type nodeStat struct {
		tasks int
		busy  float64
	}
	stats := map[int]*nodeStat{}
	for _, task := range tr.Tasks {
		st, ok := stats[task.Node]
		if !ok {
			st = &nodeStat{}
			stats[task.Node] = st
		}
		st.tasks++
		st.busy += task.Finish - task.Launch
	}
	ids := make([]int, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Top 10 busiest nodes.
	sort.Slice(ids, func(a, b int) bool { return stats[ids[a]].busy > stats[ids[b]].busy })
	if len(ids) > 10 {
		ids = ids[:10]
	}
	t := metrics.NewTable("Node", "Tasks", "Busy task-seconds")
	for _, id := range ids {
		t.AddRow(id, stats[id].tasks, fmt.Sprintf("%.1f", stats[id].busy))
	}
	fmt.Println("busiest nodes:")
	fmt.Println(t.String())
}

func printNodeTimeline(tr *trace.Trace, node int) {
	fmt.Printf("node %d timeline:\n", node)
	t := metrics.NewTable("Launch", "Finish", "Kind", "Job", "Index", "Locality")
	for _, task := range tr.NodeTimeline(node) {
		t.AddRow(metrics.Seconds(task.Launch), metrics.Seconds(task.Finish),
			task.Kind, task.Job, task.Index, task.Locality)
	}
	fmt.Println(t.String())
}

// printGantt renders cluster concurrency over time: one row per time
// bucket with map/reduce task counts as bars.
func printGantt(tr *trace.Trace) {
	start, end := tr.Span()
	if end <= start {
		return
	}
	const rows = 40
	step := (end - start) / rows
	fmt.Printf("cluster activity (each row %.1fs; #=10 maps, +=10 reduces):\n", step)
	for i := 0; i < rows; i++ {
		t0 := start + float64(i)*step
		t1 := t0 + step
		maps, reds := 0, 0
		for _, task := range tr.Tasks {
			if task.Launch < t1 && task.Finish > t0 {
				if task.Kind == "map" {
					maps++
				} else {
					reds++
				}
			}
		}
		fmt.Printf("%8.1fs |%s%s\n", t0,
			strings.Repeat("#", (maps+9)/10), strings.Repeat("+", (reds+9)/10))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrtrace:", err)
	os.Exit(1)
}
