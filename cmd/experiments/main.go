// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section III) on the simulated testbed.
//
// Usage:
//
//	experiments [-run all|tableII|fig3|fig4|fig5|fig6|tableIII|fig7|util|pmin|ablations|faultsweep|opensys|scale]
//	            [-scale N] [-seed N] [-pmin P] [-workers N] [-sizes N,N,...]
//
// -scale divides workload sizes and task counts; 1 reproduces Table II's
// exact task counts (slow), 3 is the canonical setting used for
// EXPERIMENTS.md, 12 is a quick smoke run. -workers bounds how many
// simulations run concurrently (default GOMAXPROCS); results are
// identical for any worker count since every simulation is independent
// and deterministic in its seed.
//
// Wall-clock timing below is progress reporting only and goes to
// stderr exclusively: stdout carries nothing but the deterministic
// experiment tables, so two runs with the same seed stay diffable.
//
//lint:allow nodeterminism wall-clock progress timing, stderr only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mapsched/internal/experiments"
	"mapsched/internal/metrics"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run")
		scale   = flag.Int("scale", 3, "workload scale divisor (1 = exact Table II counts)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		pmin    = flag.Float64("pmin", 0.4, "probability threshold P_min")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		sizes   = flag.String("sizes", "", "scale sweep cluster sizes, comma-separated node counts (multiples of 20; empty = 100,500,1000,2000,5000)")
	)
	flag.Parse()

	if *workers > 0 {
		experiments.SetMaxWorkers(*workers)
	}
	s := experiments.DefaultSetup()
	s.Workload.Scale = *scale
	s.Engine.Seed = *seed
	s.Pmin = *pmin

	grid, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if err := runExperiments(s, *run, grid); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// parseSizes turns "-sizes 100,500" into the sweep grid at 20 nodes per
// rack (the grid's fixed rack width); an empty string keeps the default.
func parseSizes(s string) ([]experiments.ScaleSize, error) {
	if s == "" {
		return nil, nil
	}
	var grid []experiments.ScaleSize
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -sizes entry %q: %w", part, err)
		}
		if n < 20 || n%20 != 0 {
			return nil, fmt.Errorf("-sizes entry %d must be a positive multiple of 20", n)
		}
		grid = append(grid, experiments.ScaleSize{Racks: n / 20, NodesPerRack: 20})
	}
	return grid, nil
}

func runExperiments(s experiments.Setup, which string, sizes []experiments.ScaleSize) error {
	// Static reports need no simulation.
	switch which {
	case "tableII":
		fmt.Println(experiments.TableIIReport())
		return nil
	case "fig3":
		fmt.Println(experiments.Fig3().Report())
		return nil
	case "pmin":
		return runPmin(s)
	case "ablations":
		return runAblations(s)
	case "models":
		pts, err := experiments.ModelComparison(s)
		if err != nil {
			return err
		}
		fmt.Println(renderPoints("models", "Probability-model comparison (Section V future work)", pts))
		return nil
	case "extended":
		pts, err := experiments.ExtendedComparison(s)
		if err != nil {
			return err
		}
		fmt.Println(renderPoints("extended", "Extended scheduler comparison (incl. LARTS, Capacity)", pts))
		return nil
	case "faults":
		pts, err := experiments.FaultTolerance(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FaultReport(pts))
		return nil
	case "faultsweep":
		pts, err := experiments.FaultSweep(s, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FaultSweepReport(pts))
		return nil
	case "opensys":
		start := time.Now()
		pts, err := experiments.OpenSweep(s, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "open-system sweep done in %s\n", time.Since(start).Truncate(time.Millisecond))
		fmt.Println(experiments.OpenSweepReport(pts))
		return nil
	case "scale":
		start := time.Now()
		pts, err := experiments.ScaleSweep(s, sizes)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scale sweep done in %s\n", time.Since(start).Truncate(time.Millisecond))
		fmt.Println(experiments.ScaleReport(pts))
		return nil
	case "jobpolicy":
		pts, err := experiments.JobPolicyComparison(s)
		if err != nil {
			return err
		}
		fmt.Println(renderPoints("jobpolicy", "Job-level policy: fair vs FIFO (Section II-A)", pts))
		return nil
	case "seeds":
		rep, err := experiments.SeedStudy(s, []int64{1, 2, 3, 4})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	case "analysis":
		rep, err := experiments.AnalysisReport(s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	}

	needCmp := map[string]bool{
		"all": true, "fig4": true, "fig5": true, "fig6": true,
		"tableIII": true, "fig7": true, "util": true,
	}
	if !needCmp[which] {
		return fmt.Errorf("unknown experiment %q", which)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running 3 schedulers x 3 batches at scale %d (seed %d)...\n",
		s.Workload.Scale, s.Engine.Seed)
	c, err := s.RunComparison()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simulation done in %s\n\n", time.Since(start).Truncate(time.Millisecond))

	emit := func(id string, rep experiments.Report) {
		if which == "all" || which == id {
			fmt.Println(rep)
		}
	}
	if which == "all" {
		fmt.Println(experiments.TableIIReport())
		fmt.Println(experiments.Fig3().Report())
	}
	emit("fig4", experiments.Fig4Report(c))
	emit("fig5", experiments.Fig5(c).Report())
	emit("fig6", experiments.Fig6Report(c))
	emit("tableIII", experiments.TableIII(c).Report())
	emit("fig7", experiments.Fig7(c).Report())
	emit("util", experiments.Utilization(c).Report())
	if which == "all" {
		if err := runPmin(s); err != nil {
			return err
		}
		if err := runAblations(s); err != nil {
			return err
		}
		pts, err := experiments.ModelComparison(s)
		if err != nil {
			return err
		}
		fmt.Println(renderPoints("models", "Probability-model comparison (Section V future work)", pts))
		ext, err := experiments.ExtendedComparison(s)
		if err != nil {
			return err
		}
		fmt.Println(renderPoints("extended", "Extended scheduler comparison (incl. LARTS, Capacity)", ext))
		fp, err := experiments.FaultTolerance(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FaultReport(fp))
		rep, err := experiments.AnalysisReport(s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}

func renderPoints(id, title string, pts []experiments.AblationPoint) experiments.Report {
	t := metrics.NewTable("Variant", "Mean JCT", "Max JCT", "Network GB", "Unfinished")
	for _, p := range pts {
		t.AddRow(p.Variant, fmt.Sprintf("%.1fs", p.MeanJCT), fmt.Sprintf("%.1fs", p.MaxJCT),
			fmt.Sprintf("%.1f", p.RemoteGB), p.Unfinished)
	}
	return experiments.Report{ID: id, Title: title, Body: t.String()}
}

func runPmin(s experiments.Setup) error {
	pts, err := experiments.PminSweep(s, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9})
	if err != nil {
		return err
	}
	fmt.Println(experiments.PminReport(pts))
	return nil
}

func runAblations(s experiments.Setup) error {
	reports, err := experiments.AblationReports(s)
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	return nil
}
