package mapsched

import (
	"fmt"

	"mapsched/internal/cluster"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// PlacementDecision is the full breakdown of one placement decision:
// the Formula 1–5 quantities (transmission cost C, expected cost C_avg,
// acceptance probability P against the P_min threshold), the draw
// outcome, and the delta epoch the decision observed. When Assigned is
// false the slot stays idle and Job/Task identify nothing.
type PlacementDecision struct {
	// Assigned reports whether a task was placed.
	Assigned bool
	// Job and Task identify the placed task; Kind is "map" or "reduce".
	Job  string
	Task int
	Kind string
	// Node is the node the slot was offered on.
	Node int

	// C, CAvg, P, PMin are the decision quantities of Formulas 1–5.
	C, CAvg, P, PMin float64
	// Draw names the outcome: "local", "local_fallback", "accept",
	// "deterministic", "below_pmin" or "decline".
	Draw string
	// Epoch is the service delta epoch the decision was computed at.
	Epoch uint64
}

// PlacementService is the paper's placement rule served standalone —
// no discrete-event engine, no simulated clock. It owns a synthetic
// cluster (topology, replicated block store, slot state) built from
// the public configuration and answers placement questions about the
// configured jobs while the caller drives cluster state through
// explicit deltas.
//
// Concurrency: the delta methods (Commit, Complete, SetNodeOffline,
// SetNodeBlacklisted, SetLinkFactor, LoseNodeReplicas) are safe for
// concurrent use. The decision methods form one session and must not
// be called concurrently with each other; concurrent decision sessions
// over one shared state are an internal-API feature (see
// internal/placement and DESIGN.md §15).
type PlacementService struct {
	svc       *placement.Service
	dec       *placement.Decider
	jobs      []*job.Job
	byName    map[string]*job.Job
	slowstart float64
	req       placement.Request
}

// NewPlacementService builds a standalone decision service for the
// given jobs on a synthetic cluster. The workload options (WithSeed,
// WithScale, WithReplication, WithStorageSubset) shape the cluster and
// its block placements exactly as New does; the scheduler options
// (WithPmin, WithEstimator, WithDeterministic, WithCostMode) configure
// the decision rule. Observers attached with WithObserver receive the
// decision events with their C / C_avg / P breakdown.
func NewPlacementService(cfg ClusterConfig, defs []JobDef, opts ...Option) (*PlacementService, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("mapsched: no jobs to place")
	}
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	specs, err := workload.Specs(defs, o.workloadOptions())
	if err != nil {
		return nil, err
	}

	topo, err := topology.NewCluster(sim.NewEngine(), cfg.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(o.seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	slots, err := cluster.New(topo.Size(), cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	svc, err := placement.NewService(placement.Deps{
		Net: topo, Store: store, Rate: topo, Slots: slots, Mode: cfg.CostMode,
	})
	if err != nil {
		return nil, err
	}

	stream := obs.NewStream()
	for _, ob := range o.observers {
		stream.Attach(ob)
	}
	pc := placement.DefaultConfig()
	pc.Pmin = o.pmin
	pc.Deterministic = o.deterministic
	if o.estimator != nil {
		pc.Estimator = o.estimator
	}
	p := &PlacementService{
		svc:       svc,
		dec:       placement.NewDecider(svc, pc, root.Fork("sched"), stream),
		byName:    make(map[string]*job.Job, len(specs)),
		slowstart: cfg.Slowstart,
	}
	rngJobs := root.Fork("jobs")
	for i, spec := range specs {
		j, err := job.New(job.ID(i+1), spec, store, rngJobs)
		if err != nil {
			return nil, err
		}
		p.jobs = append(p.jobs, j)
		p.byName[spec.Name] = j
	}
	return p, nil
}

// Epoch returns the number of state deltas applied so far.
func (p *PlacementService) Epoch() uint64 { return p.svc.Epoch() }

// requestAt refreshes the service's decision request for a new offer.
func (p *PlacementService) requestAt(now float64) *placement.Request {
	v := p.svc.Snapshot()
	p.req.Now = sim.Time(now)
	p.req.Jobs = p.jobs
	p.req.AvailMap, p.req.AvailReduce = v.AvailMap, v.AvailReduce
	p.req.Slowstart = p.slowstart
	return &p.req
}

// DecideMap runs Algorithm 1 for a free map slot on node at time now
// and returns the decision with its full breakdown. The decision does
// not change any state: call Commit to take it.
func (p *PlacementService) DecideMap(now float64, node int) PlacementDecision {
	m, out := p.dec.PlaceMap(p.requestAt(now), topology.NodeID(node))
	d := decisionOf(out, node, "map")
	if m != nil {
		d.Assigned, d.Job, d.Task = true, m.Job.Spec.Name, m.Index
	}
	return d
}

// DecideReduce runs Algorithm 2 for a free reduce slot on node at time
// now. Reduce decisions consume the jobs' current map progress, which
// advances through Complete.
func (p *PlacementService) DecideReduce(now float64, node int) PlacementDecision {
	r, out := p.dec.PlaceReduce(p.requestAt(now), topology.NodeID(node))
	d := decisionOf(out, node, "reduce")
	if r != nil {
		d.Assigned, d.Job, d.Task = true, r.Job.Spec.Name, r.Index
	}
	return d
}

// decisionOf copies an internal outcome into the public breakdown.
func decisionOf(out placement.Outcome, node int, kind string) PlacementDecision {
	return PlacementDecision{
		Kind: kind, Node: node,
		C: out.C, CAvg: out.CAvg, P: out.P, PMin: out.PMin,
		Draw: out.Draw, Epoch: out.Epoch,
	}
}

// task resolves a decision back to its task.
func (p *PlacementService) task(d PlacementDecision) (*job.Job, *job.MapTask, *job.ReduceTask, error) {
	if !d.Assigned {
		return nil, nil, nil, fmt.Errorf("mapsched: decision placed no task")
	}
	j := p.byName[d.Job]
	if j == nil {
		return nil, nil, nil, fmt.Errorf("mapsched: unknown job %q", d.Job)
	}
	if d.Kind == "map" {
		if d.Task < 0 || d.Task >= len(j.Maps) {
			return nil, nil, nil, fmt.Errorf("mapsched: job %q has no map %d", d.Job, d.Task)
		}
		return j, j.Maps[d.Task], nil, nil
	}
	if d.Task < 0 || d.Task >= len(j.Reduces) {
		return nil, nil, nil, fmt.Errorf("mapsched: job %q has no reduce %d", d.Job, d.Task)
	}
	return j, nil, j.Reduces[d.Task], nil
}

// Commit takes an assigned decision: the task starts running on the
// decision's node and the slot is acquired, as one delta.
func (p *PlacementService) Commit(d PlacementDecision) error {
	_, m, r, err := p.task(d)
	if err != nil {
		return err
	}
	n := topology.NodeID(d.Node)
	p.svc.Update(func() {
		if m != nil {
			if err = p.svc.Slots().Node(n).AcquireMap(); err == nil {
				m.State, m.Node = job.TaskRunning, n
			}
			return
		}
		if err = p.svc.Slots().Node(n).AcquireReduce(); err == nil {
			r.State, r.Node = job.TaskRunning, n
		}
	})
	return err
}

// Complete finishes a committed task: it is marked done and its slot
// released, as one delta.
func (p *PlacementService) Complete(d PlacementDecision) error {
	j, m, r, err := p.task(d)
	if err != nil {
		return err
	}
	n := topology.NodeID(d.Node)
	p.svc.Update(func() {
		if m != nil {
			if m.State != job.TaskRunning {
				err = fmt.Errorf("mapsched: map %d of %q is not running", d.Task, d.Job)
				return
			}
			m.State, m.Progress = job.TaskDone, 1
			j.DoneMaps++
			p.svc.Slots().Node(n).ReleaseMap()
			return
		}
		if r.State != job.TaskRunning {
			err = fmt.Errorf("mapsched: reduce %d of %q is not running", d.Task, d.Job)
			return
		}
		r.State = job.TaskDone
		j.DoneReds++
		p.svc.Slots().Node(n).ReleaseReduce()
	})
	return err
}

// checkNode bounds-checks a public node index.
func (p *PlacementService) checkNode(node int) error {
	if node < 0 || node >= p.svc.Slots().Size() {
		return fmt.Errorf("mapsched: node %d out of range", node)
	}
	return nil
}

// SetNodeOffline marks a node dead (offline=true) or revived: an
// offline node offers no slots and drops out of every candidate set.
func (p *PlacementService) SetNodeOffline(node int, offline bool) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	p.svc.ApplyNodeOffline(topology.NodeID(node), offline)
	return nil
}

// SetNodeBlacklisted marks a node as taking no new tasks (running ones
// keep their slots), or clears the mark.
func (p *PlacementService) SetNodeBlacklisted(node int, blacklisted bool) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	p.svc.ApplyNodeBlacklist(topology.NodeID(node), blacklisted)
	return nil
}

// SetLinkFactor rescales a node's host access link capacity (1 restores
// nominal); network-condition costs see the change immediately.
func (p *PlacementService) SetLinkFactor(node int, factor float64) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("mapsched: link factor %v must be positive", factor)
	}
	return p.svc.ApplyLinkFactor(topology.NodeID(node), factor)
}

// LoseNodeReplicas drops every block replica hosted on a node (it died
// with its disks) and returns how many were lost. Map costs reroute to
// the surviving replicas on the next decision.
func (p *PlacementService) LoseNodeReplicas(node int) (int, error) {
	if err := p.checkNode(node); err != nil {
		return 0, err
	}
	return p.svc.ApplyNodeReplicaLoss(topology.NodeID(node)), nil
}

// ReplayReport summarizes a Replay: how many recorded decisions were
// re-derived engine-free and which, if any, disagreed.
type ReplayReport = placement.ReplayReport

// Replay re-derives the map placement decisions of a recorded event
// log (a JSONLSink stream read back with ReadEventLog) without running
// the simulation: the cluster and jobs are rebuilt from the same
// configuration, defs and options the recording ran with, the recorded
// task lifecycle is fed back in as state deltas, and every recorded
// map decision's task and C / C_avg / P breakdown is recomputed and
// checked bit-for-bit.
//
// Supported recordings are hop-cost, fault-free, speculation-free runs
// (see internal/placement.Replay for why); others return an error.
func Replay(cfg ClusterConfig, defs []JobDef, events []Event, opts ...Option) (*ReplayReport, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	if cfg.CostMode != ModeHops {
		return nil, fmt.Errorf("mapsched: only hop-cost recordings are replayable")
	}
	specs, err := workload.Specs(defs, o.workloadOptions())
	if err != nil {
		return nil, err
	}
	pc := placement.DefaultConfig()
	pc.Pmin = o.pmin
	pc.Deterministic = o.deterministic
	if o.estimator != nil {
		pc.Estimator = o.estimator
	}
	return placement.Replay(placement.ReplayConfig{
		Topology:           cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Seed:               o.seed,
		Specs:              specs,
		Sched:              pc,
	}, events)
}
