package mapsched

import (
	"fmt"
	"io"

	"mapsched/internal/cluster"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// PlacementDecision is the full breakdown of one placement decision:
// the Formula 1–5 quantities (transmission cost C, expected cost C_avg,
// acceptance probability P against the P_min threshold), the draw
// outcome, and the delta epoch the decision observed. When Assigned is
// false the slot stays idle and Job/Task identify nothing.
type PlacementDecision struct {
	// Assigned reports whether a task was placed.
	Assigned bool
	// Job and Task identify the placed task; Kind is "map" or "reduce".
	Job  string
	Task int
	Kind string
	// Node is the node the slot was offered on.
	Node int

	// C, CAvg, P, PMin are the decision quantities of Formulas 1–5.
	C, CAvg, P, PMin float64
	// Draw names the outcome: "local", "local_fallback", "accept",
	// "deterministic", "below_pmin" or "decline".
	Draw string
	// Epoch is the service delta epoch the decision was computed at.
	Epoch uint64
}

// PlacementService is the paper's placement rule served standalone —
// no discrete-event engine, no simulated clock. It owns a synthetic
// cluster (topology, replicated block store, slot state) built from
// the public configuration and answers placement questions about the
// configured jobs while the caller drives cluster state through
// explicit deltas.
//
// Concurrency: the delta methods (Commit, Complete, SetNodeOffline,
// SetNodeBlacklisted, SetLinkFactor, LoseNodeReplicas) are safe for
// concurrent use. The decision methods form one session and must not
// be called concurrently with each other; concurrent decision sessions
// over one shared state are an internal-API feature (see
// internal/placement and DESIGN.md §15).
type PlacementService struct {
	svc       *placement.Service
	dec       *placement.Decider
	jobs      []*job.Job
	byName    map[string]*job.Job
	slowstart float64
	req       placement.Request
}

// placementParts is the deterministic base state both
// NewPlacementService and RecoverPlacementService build from: identical
// configuration and seed produce an identical base, which is what makes
// a checkpoint+journal recovery land on the same state as the original
// construction. The RNG forks are drawn in a fixed order (hdfs, sched,
// jobs) so every consumer sees the same streams either way.
type placementParts struct {
	deps   placement.Deps
	pc     placement.Config
	sched  *sim.RNG
	jobs   *sim.RNG
	stream *obs.Stream
	specs  []job.Spec
}

// buildPlacementParts validates the configuration and constructs the
// synthetic cluster, block store, slot state and RNG forks.
func buildPlacementParts(cfg ClusterConfig, defs []JobDef, o options) (*placementParts, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("mapsched: no jobs to place")
	}
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	specs, err := workload.Specs(defs, o.workloadOptions())
	if err != nil {
		return nil, err
	}
	topo, err := topology.NewCluster(sim.NewEngine(), cfg.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(o.seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	slots, err := cluster.New(topo.Size(), cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	stream := obs.NewStream()
	for _, ob := range o.observers {
		stream.Attach(ob)
	}
	pc := placement.DefaultConfig()
	pc.Pmin = o.pmin
	pc.Deterministic = o.deterministic
	if o.estimator != nil {
		pc.Estimator = o.estimator
	}
	return &placementParts{
		deps: placement.Deps{
			Net: topo, Store: store, Rate: topo, Slots: slots, Mode: cfg.CostMode,
		},
		pc:     pc,
		sched:  root.Fork("sched"),
		jobs:   root.Fork("jobs"),
		stream: stream,
		specs:  specs,
	}, nil
}

// buildJobs creates the job set, populating the block store — part of
// the deterministic base, so recovery must run it before restoring a
// checkpoint (the checkpoint's replica sets apply over these blocks).
func (parts *placementParts) buildJobs() ([]*job.Job, map[string]*job.Job, error) {
	jobs := make([]*job.Job, 0, len(parts.specs))
	byName := make(map[string]*job.Job, len(parts.specs))
	for i, spec := range parts.specs {
		j, err := job.New(job.ID(i+1), spec, parts.deps.Store, parts.jobs)
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, j)
		byName[spec.Name] = j
	}
	return jobs, byName, nil
}

// wire finishes a PlacementService around a constructed (or recovered)
// service and an already-built job set.
func (parts *placementParts) wire(svc *placement.Service, slowstart float64, jobs []*job.Job, byName map[string]*job.Job) *PlacementService {
	return &PlacementService{
		svc:       svc,
		dec:       placement.NewDecider(svc, parts.pc, parts.sched, parts.stream),
		jobs:      jobs,
		byName:    byName,
		slowstart: slowstart,
	}
}

// NewPlacementService builds a standalone decision service for the
// given jobs on a synthetic cluster. The workload options (WithSeed,
// WithScale, WithReplication, WithStorageSubset) shape the cluster and
// its block placements exactly as New does; the scheduler options
// (WithPmin, WithEstimator, WithDeterministic, WithCostMode) configure
// the decision rule. Observers attached with WithObserver receive the
// decision events with their C / C_avg / P breakdown. WithJournal
// attaches a crash-safe delta journal; see RecoverPlacementService.
func NewPlacementService(cfg ClusterConfig, defs []JobDef, opts ...Option) (*PlacementService, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	parts, err := buildPlacementParts(cfg, defs, o)
	if err != nil {
		return nil, err
	}
	svc, err := placement.NewService(parts.deps)
	if err != nil {
		return nil, err
	}
	jobs, byName, err := parts.buildJobs()
	if err != nil {
		return nil, err
	}
	p := parts.wire(svc, cfg.Slowstart, jobs, byName)
	// Jobs are created before the journal attaches: initial block
	// placement is part of the deterministic base a recovery rebuilds,
	// not a journaled delta.
	if o.journal != nil {
		if err := svc.StartJournal(o.journal); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Epoch returns the number of state deltas applied so far.
func (p *PlacementService) Epoch() uint64 { return p.svc.Epoch() }

// requestAt refreshes the service's decision request for a new offer.
func (p *PlacementService) requestAt(now float64) *placement.Request {
	v := p.svc.Snapshot()
	p.req.Now = sim.Time(now)
	p.req.Jobs = p.jobs
	p.req.AvailMap, p.req.AvailReduce = v.AvailMap, v.AvailReduce
	p.req.Slowstart = p.slowstart
	return &p.req
}

// DecideMap runs Algorithm 1 for a free map slot on node at time now
// and returns the decision with its full breakdown. The decision does
// not change any state: call Commit to take it.
func (p *PlacementService) DecideMap(now float64, node int) PlacementDecision {
	m, out := p.dec.PlaceMap(p.requestAt(now), topology.NodeID(node))
	d := decisionOf(out, node, "map")
	if m != nil {
		d.Assigned, d.Job, d.Task = true, m.Job.Spec.Name, m.Index
	}
	return d
}

// DecideReduce runs Algorithm 2 for a free reduce slot on node at time
// now. Reduce decisions consume the jobs' current map progress, which
// advances through Complete.
func (p *PlacementService) DecideReduce(now float64, node int) PlacementDecision {
	r, out := p.dec.PlaceReduce(p.requestAt(now), topology.NodeID(node))
	d := decisionOf(out, node, "reduce")
	if r != nil {
		d.Assigned, d.Job, d.Task = true, r.Job.Spec.Name, r.Index
	}
	return d
}

// decisionOf copies an internal outcome into the public breakdown.
func decisionOf(out placement.Outcome, node int, kind string) PlacementDecision {
	return PlacementDecision{
		Kind: kind, Node: node,
		C: out.C, CAvg: out.CAvg, P: out.P, PMin: out.PMin,
		Draw: out.Draw, Epoch: out.Epoch,
	}
}

// task resolves a decision back to its task.
func (p *PlacementService) task(d PlacementDecision) (*job.Job, *job.MapTask, *job.ReduceTask, error) {
	if !d.Assigned {
		return nil, nil, nil, fmt.Errorf("mapsched: decision placed no task")
	}
	j := p.byName[d.Job]
	if j == nil {
		return nil, nil, nil, fmt.Errorf("mapsched: unknown job %q", d.Job)
	}
	if d.Kind == "map" {
		if d.Task < 0 || d.Task >= len(j.Maps) {
			return nil, nil, nil, fmt.Errorf("mapsched: job %q has no map %d", d.Job, d.Task)
		}
		return j, j.Maps[d.Task], nil, nil
	}
	if d.Task < 0 || d.Task >= len(j.Reduces) {
		return nil, nil, nil, fmt.Errorf("mapsched: job %q has no reduce %d", d.Job, d.Task)
	}
	return j, nil, j.Reduces[d.Task], nil
}

// taskNote encodes the client half of a committed or completed
// decision into the journal annotation RecoverPlacementService parses
// back.
func taskNote(d PlacementDecision) string {
	return fmt.Sprintf("%q %d", d.Job, d.Task)
}

// slotKindOf maps a decision's kind to the slot it occupies.
func slotKindOf(m *job.MapTask) placement.SlotKind {
	if m == nil {
		return placement.ReduceSlot
	}
	return placement.MapSlot
}

// Commit takes an assigned decision: the task starts running on the
// decision's node and the slot is acquired, as one journaled delta.
// Committing a task that is not pending, or onto a node with no free
// slot (or offline/blacklisted), is rejected with a typed error and no
// state change.
func (p *PlacementService) Commit(d PlacementDecision) error {
	_, m, r, err := p.task(d)
	if err != nil {
		return err
	}
	n := topology.NodeID(d.Node)
	pre := func() error {
		st := job.TaskState(0)
		if m != nil {
			st = m.State
		} else {
			st = r.State
		}
		if st != job.TaskPending {
			return fmt.Errorf("mapsched: %s %d of %q is not pending", d.Kind, d.Task, d.Job)
		}
		return nil
	}
	fn := func() {
		if m != nil {
			m.State, m.Node = job.TaskRunning, n
		} else {
			r.State, r.Node = job.TaskRunning, n
		}
	}
	return p.svc.ApplySlotAcquireNoted(slotKindOf(m), n, taskNote(d), pre, fn)
}

// Complete finishes a committed task: it is marked done and its slot
// released, as one journaled delta. Completing a task that is not
// running is rejected with no state change.
func (p *PlacementService) Complete(d PlacementDecision) error {
	j, m, r, err := p.task(d)
	if err != nil {
		return err
	}
	n := topology.NodeID(d.Node)
	pre := func() error {
		if m != nil && m.State != job.TaskRunning {
			return fmt.Errorf("mapsched: map %d of %q is not running", d.Task, d.Job)
		}
		if m == nil && r.State != job.TaskRunning {
			return fmt.Errorf("mapsched: reduce %d of %q is not running", d.Task, d.Job)
		}
		return nil
	}
	fn := func() {
		if m != nil {
			m.State, m.Progress = job.TaskDone, 1
			j.DoneMaps++
		} else {
			r.State = job.TaskDone
			j.DoneReds++
		}
	}
	return p.svc.ApplySlotReleaseNoted(slotKindOf(m), n, taskNote(d), pre, fn)
}

// checkNode bounds-checks a public node index.
func (p *PlacementService) checkNode(node int) error {
	if node < 0 || node >= p.svc.Slots().Size() {
		return fmt.Errorf("mapsched: node %d out of range", node)
	}
	return nil
}

// SetNodeOffline marks a node dead (offline=true) or revived: an
// offline node offers no slots and drops out of every candidate set.
func (p *PlacementService) SetNodeOffline(node int, offline bool) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	return p.svc.ApplyNodeOffline(topology.NodeID(node), offline)
}

// SetNodeBlacklisted marks a node as taking no new tasks (running ones
// keep their slots), or clears the mark.
func (p *PlacementService) SetNodeBlacklisted(node int, blacklisted bool) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	return p.svc.ApplyNodeBlacklist(topology.NodeID(node), blacklisted)
}

// SetLinkFactor rescales a node's host access link capacity (1 restores
// nominal); network-condition costs see the change immediately.
func (p *PlacementService) SetLinkFactor(node int, factor float64) error {
	if err := p.checkNode(node); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("mapsched: link factor %v must be positive", factor)
	}
	return p.svc.ApplyLinkFactor(topology.NodeID(node), factor)
}

// LoseNodeReplicas drops every block replica hosted on a node (it died
// with its disks) and returns how many were lost. Map costs reroute to
// the surviving replicas on the next decision.
func (p *PlacementService) LoseNodeReplicas(node int) (int, error) {
	if err := p.checkNode(node); err != nil {
		return 0, err
	}
	return p.svc.ApplyNodeReplicaLoss(topology.NodeID(node))
}

// WriteCheckpoint writes a CRC-protected full-state snapshot of the
// service (slot usage, node health, link factors, replica sets, delta
// epoch) as one line to w. A checkpoint plus the journal records past
// its epoch is a complete RecoverPlacementService input; callers
// typically checkpoint periodically and rotate the journal at the same
// cut.
func (p *PlacementService) WriteCheckpoint(w io.Writer) error {
	return p.svc.WriteCheckpoint(w)
}

// PlacementRecovery reports how a RecoverPlacementService call rebuilt
// the service.
type PlacementRecovery struct {
	// Epoch is the recovered delta epoch; CheckpointEpoch the epoch the
	// checkpoint captured (0 without one).
	Epoch, CheckpointEpoch uint64
	// Applied and Skipped count journal records re-applied and records
	// already covered by the checkpoint.
	Applied, Skipped int
	// Tail is nil when the journal decoded cleanly; otherwise a typed
	// error (a truncated tail is the normal crash shape) and the state
	// recovered to the last valid record.
	Tail error
}

// RecoverPlacementService rebuilds a crashed placement service from the
// checkpoint and/or delta journal it wrote, given the same cfg, defs
// and options the original was built with (the deterministic base the
// durable state applies over). Task and job progress is restored from
// the journaled Commit/Complete annotations. Either reader may be nil.
//
// Pass WithJournal to resume journaling — appending to the original
// journal file is safe: the fresh begin marker logically truncates any
// damaged tail.
//
// The recovered service's cluster state and decision inputs are
// bit-identical to the crashed one's. The decision session itself
// restarts, which re-seeds the Bernoulli draw stream — so the
// post-recovery decision stream is guaranteed bit-identical to the
// uninterrupted run under WithDeterministic (no draws); with draws the
// decisions are identically distributed but may resolve differently.
func RecoverPlacementService(cfg ClusterConfig, defs []JobDef, checkpoint, journal io.Reader, opts ...Option) (*PlacementService, *PlacementRecovery, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	parts, err := buildPlacementParts(cfg, defs, o)
	if err != nil {
		return nil, nil, err
	}
	// The jobs (and their blocks) are the deterministic base the durable
	// state applies over: build them before restoring the checkpoint.
	jobs, byName, err := parts.buildJobs()
	if err != nil {
		return nil, nil, err
	}
	rec, err := placement.Recover(parts.deps, checkpoint, journal)
	if err != nil {
		return nil, nil, err
	}
	p := parts.wire(rec.Service, cfg.Slowstart, jobs, byName)
	// Replay the client half of the journaled deltas: the notes written
	// by Commit (acquire) and Complete (release) rebuild task states and
	// job progress in order. The slot half was already re-applied by
	// Recover.
	for _, note := range rec.Notes {
		var name string
		var idx int
		if _, err := fmt.Sscanf(note.Note, "%q %d", &name, &idx); err != nil {
			return nil, nil, fmt.Errorf("mapsched: seq %d: bad task note %q: %v", note.Seq, note.Note, err)
		}
		j := p.byName[name]
		if j == nil {
			return nil, nil, fmt.Errorf("mapsched: seq %d: note names unknown job %q", note.Seq, name)
		}
		var m *job.MapTask
		var r *job.ReduceTask
		switch {
		case note.Kind != "reduce" && idx >= 0 && idx < len(j.Maps):
			m = j.Maps[idx]
		case note.Kind == "reduce" && idx >= 0 && idx < len(j.Reduces):
			r = j.Reduces[idx]
		default:
			return nil, nil, fmt.Errorf("mapsched: seq %d: note names unknown %s task %d of %q", note.Seq, note.Kind, idx, name)
		}
		switch note.Op {
		case placement.OpAcquire:
			if m != nil {
				m.State, m.Node = job.TaskRunning, topology.NodeID(note.Node)
			} else {
				r.State, r.Node = job.TaskRunning, topology.NodeID(note.Node)
			}
		case placement.OpRelease:
			if m != nil {
				m.State, m.Progress = job.TaskDone, 1
				j.DoneMaps++
			} else {
				r.State = job.TaskDone
				j.DoneReds++
			}
		}
	}
	if o.journal != nil {
		if err := rec.Service.StartJournal(o.journal); err != nil {
			return nil, nil, err
		}
	}
	return p, &PlacementRecovery{
		Epoch:           rec.Epoch,
		CheckpointEpoch: rec.CheckpointEpoch,
		Applied:         rec.Applied,
		Skipped:         rec.Skipped,
		Tail:            rec.Tail,
	}, nil
}

// ErrNotReplayable marks recordings outside the replayable envelope
// (fault, speculation or network-condition streams): match with
// errors.Is to distinguish "this stream cannot be verified" from a
// malformed input.
var ErrNotReplayable = placement.ErrNotReplayable

// ReplayReport summarizes a Replay: how many recorded decisions were
// re-derived engine-free and which, if any, disagreed.
type ReplayReport = placement.ReplayReport

// Replay re-derives the map placement decisions of a recorded event
// log (a JSONLSink stream read back with ReadEventLog) without running
// the simulation: the cluster and jobs are rebuilt from the same
// configuration, defs and options the recording ran with, the recorded
// task lifecycle is fed back in as state deltas, and every recorded
// map decision's task and C / C_avg / P breakdown is recomputed and
// checked bit-for-bit.
//
// Supported recordings are hop-cost, fault-free, speculation-free runs
// (see internal/placement.Replay for why); others return an error.
func Replay(cfg ClusterConfig, defs []JobDef, events []Event, opts ...Option) (*ReplayReport, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	if cfg.CostMode != ModeHops {
		return nil, fmt.Errorf("mapsched: %w: only hop-cost recordings are replayable", ErrNotReplayable)
	}
	specs, err := workload.Specs(defs, o.workloadOptions())
	if err != nil {
		return nil, err
	}
	pc := placement.DefaultConfig()
	pc.Pmin = o.pmin
	pc.Deterministic = o.deterministic
	if o.estimator != nil {
		pc.Estimator = o.estimator
	}
	return placement.Replay(placement.ReplayConfig{
		Topology:           cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Seed:               o.seed,
		Specs:              specs,
		Sched:              pc,
	}, events)
}
