package mapsched_test

import (
	"testing"

	"mapsched"
)

// TestPlacementServiceLifecycle drives the standalone decision service
// through a decide → commit → complete cycle and its error paths.
func TestPlacementServiceLifecycle(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	svc, err := mapsched.NewPlacementService(cfg, mapsched.Batch(mapsched.Wordcount)[:2],
		mapsched.WithSeed(1), mapsched.WithScale(40))
	if err != nil {
		t.Fatal(err)
	}

	d := svc.DecideMap(0, 0)
	if !d.Assigned {
		t.Fatalf("first offer on an idle cluster declined: %+v", d)
	}
	if d.P < 0 || d.P > 1 || d.PMin != 0.4 {
		t.Fatalf("breakdown out of domain: %+v", d)
	}
	if err := svc.Commit(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Complete(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Complete(d); err == nil {
		t.Fatal("completing a finished task succeeded")
	}
	if err := svc.Commit(mapsched.PlacementDecision{}); err == nil {
		t.Fatal("committing an unassigned decision succeeded")
	}
	if err := svc.SetNodeOffline(99, true); err == nil {
		t.Fatal("offlining an unknown node succeeded")
	}
	if epoch := svc.Epoch(); epoch < 2 {
		t.Fatalf("epoch = %d after commit+complete, want >= 2", epoch)
	}

	// Re-offering must not hand out the finished task again.
	d2 := svc.DecideMap(1, 0)
	if d2.Assigned && d2.Job == d.Job && d2.Task == d.Task && d2.Kind == d.Kind {
		t.Fatal("finished task re-assigned")
	}
}

// TestReplayPublicRoundTrip records a simulation through the public API
// and replays its decision stream engine-free through the public API.
func TestReplayPublicRoundTrip(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4

	var events []mapsched.Event
	collect := mapsched.ObserverFunc(func(e mapsched.Event) { events = append(events, e) })
	opts := []mapsched.Option{mapsched.WithSeed(5), mapsched.WithScale(40)}
	sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Grep), mapsched.SchedulerProbabilistic,
		append(opts, mapsched.WithObserver(collect))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	rep, err := mapsched.Replay(cfg, mapsched.Batch(mapsched.Grep), events, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MapDecisions == 0 {
		t.Fatal("no map decisions replayed")
	}
	if !rep.Ok() {
		t.Fatalf("replay disagreed with the recording: %v", rep.Mismatches)
	}

	// Network-condition recordings are out of the replayable envelope.
	cfg.CostMode = mapsched.ModeNetworkCondition
	if _, err := mapsched.Replay(cfg, mapsched.Batch(mapsched.Grep), events, opts...); err == nil {
		t.Fatal("netcond replay accepted")
	}
}
