package mapsched_test

import (
	"bytes"
	"errors"
	"testing"

	"mapsched"
)

// TestPlacementServiceLifecycle drives the standalone decision service
// through a decide → commit → complete cycle and its error paths.
func TestPlacementServiceLifecycle(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	svc, err := mapsched.NewPlacementService(cfg, mapsched.Batch(mapsched.Wordcount)[:2],
		mapsched.WithSeed(1), mapsched.WithScale(40))
	if err != nil {
		t.Fatal(err)
	}

	d := svc.DecideMap(0, 0)
	if !d.Assigned {
		t.Fatalf("first offer on an idle cluster declined: %+v", d)
	}
	if d.P < 0 || d.P > 1 || d.PMin != 0.4 {
		t.Fatalf("breakdown out of domain: %+v", d)
	}
	if err := svc.Commit(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Complete(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Complete(d); err == nil {
		t.Fatal("completing a finished task succeeded")
	}
	if err := svc.Commit(mapsched.PlacementDecision{}); err == nil {
		t.Fatal("committing an unassigned decision succeeded")
	}
	if err := svc.SetNodeOffline(99, true); err == nil {
		t.Fatal("offlining an unknown node succeeded")
	}
	if epoch := svc.Epoch(); epoch < 2 {
		t.Fatalf("epoch = %d after commit+complete, want >= 2", epoch)
	}

	// Re-offering must not hand out the finished task again.
	d2 := svc.DecideMap(1, 0)
	if d2.Assigned && d2.Job == d.Job && d2.Task == d.Task && d2.Kind == d.Kind {
		t.Fatal("finished task re-assigned")
	}
}

// TestReplayPublicRoundTrip records a simulation through the public API
// and replays its decision stream engine-free through the public API.
func TestReplayPublicRoundTrip(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4

	var events []mapsched.Event
	collect := mapsched.ObserverFunc(func(e mapsched.Event) { events = append(events, e) })
	opts := []mapsched.Option{mapsched.WithSeed(5), mapsched.WithScale(40)}
	sim, err := mapsched.New(cfg, mapsched.Batch(mapsched.Grep), mapsched.SchedulerProbabilistic,
		append(opts, mapsched.WithObserver(collect))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	rep, err := mapsched.Replay(cfg, mapsched.Batch(mapsched.Grep), events, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MapDecisions == 0 {
		t.Fatal("no map decisions replayed")
	}
	if !rep.Ok() {
		t.Fatalf("replay disagreed with the recording: %v", rep.Mismatches)
	}

	// Network-condition recordings are out of the replayable envelope.
	cfg.CostMode = mapsched.ModeNetworkCondition
	if _, err := mapsched.Replay(cfg, mapsched.Batch(mapsched.Grep), events, opts...); err == nil {
		t.Fatal("netcond replay accepted")
	}
}

// TestPlacementServiceCrashRecovery journals a lived-in service through
// the public API, "crashes" it, and recovers from checkpoint + journal:
// the rebuilt service carries the same epoch and task progress, and
// under WithDeterministic its subsequent decision stream is
// bit-identical to the uninterrupted original's.
func TestPlacementServiceCrashRecovery(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	defs := mapsched.Batch(mapsched.Wordcount)[:2]
	opts := []mapsched.Option{mapsched.WithSeed(3), mapsched.WithScale(40), mapsched.WithDeterministic()}

	var journal bytes.Buffer
	svc, err := mapsched.NewPlacementService(cfg, defs, append(opts, mapsched.WithJournal(&journal))...)
	if err != nil {
		t.Fatal(err)
	}

	// Live a little: two committed tasks (one completed), a dead node, a
	// degraded link — every delta journaled.
	d1 := svc.DecideMap(0, 0)
	if !d1.Assigned {
		t.Fatalf("first offer declined: %+v", d1)
	}
	if err := svc.Commit(d1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Complete(d1); err != nil {
		t.Fatal(err)
	}
	var checkpoint bytes.Buffer
	if err := svc.WriteCheckpoint(&checkpoint); err != nil {
		t.Fatal(err)
	}
	d2 := svc.DecideMap(1, 1)
	if !d2.Assigned {
		t.Fatalf("second offer declined: %+v", d2)
	}
	if err := svc.Commit(d2); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetNodeOffline(5, true); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetLinkFactor(3, 0.5); err != nil {
		t.Fatal(err)
	}

	// Crash. Only cfg/defs/opts and the two byte streams survive.
	rec, rcv, err := mapsched.RecoverPlacementService(cfg, defs,
		bytes.NewReader(checkpoint.Bytes()), bytes.NewReader(journal.Bytes()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Tail != nil {
		t.Fatalf("clean journal recovered with tail error %v", rcv.Tail)
	}
	if rcv.Epoch != svc.Epoch() {
		t.Fatalf("recovered epoch %d, original at %d", rcv.Epoch, svc.Epoch())
	}
	if rcv.CheckpointEpoch == 0 || rcv.Skipped == 0 || rcv.Applied == 0 {
		t.Fatalf("recovery did not exercise checkpoint + journal: %+v", rcv)
	}

	// The journaled notes restored task progress: the running task can
	// complete, the finished one cannot restart.
	if err := rec.Complete(d2); err != nil {
		t.Fatalf("completing the recovered running task: %v", err)
	}
	if err := svc.Complete(d2); err != nil { // keep the original in lockstep
		t.Fatal(err)
	}
	if err := rec.Commit(d1); err == nil {
		t.Fatal("recovered service re-committed a finished task")
	}

	// Deterministic decisions must now match offer for offer.
	for node := 0; node < 8; node++ {
		want := svc.DecideMap(2, node)
		got := rec.DecideMap(2, node)
		if want != got {
			t.Fatalf("node %d: recovered decision %+v, original %+v", node, got, want)
		}
	}
}

// TestWithJournalRejectsNilWriter pins the option contract.
func TestWithJournalRejectsNilWriter(t *testing.T) {
	cfg := mapsched.DefaultClusterConfig()
	_, err := mapsched.NewPlacementService(cfg, mapsched.Batch(mapsched.Grep)[:1],
		mapsched.WithJournal(nil))
	if !errors.Is(err, mapsched.ErrInvalidOption) {
		t.Fatalf("WithJournal(nil) = %v, want ErrInvalidOption", err)
	}
}
