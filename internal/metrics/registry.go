package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically growing tally. The zero value is usable.
// Counter updates and reads are atomic (a float64 carried in a uint64
// CAS loop), so background goroutines — the placement service's
// invariant auditor — can tally next to a running simulation. Registry
// lookups are NOT synchronized: create counters before sharing them
// across goroutines.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are allowed for gauges-as-counters misuse,
// but the registry renders whatever the final value is).
func (c *Counter) Add(d float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current tally.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram is a streaming distribution summary: fixed bucket boundaries
// plus exact count/sum/min/max. It never stores samples, so observing is
// O(log buckets) and memory is constant — suitable for per-decision
// event streams of arbitrary length.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	n      int64
	sum    float64
	min    float64
	max    float64
}

// DefaultTimeBounds are bucket boundaries (seconds) suited to queue-wait
// and task-duration distributions at simulation scale.
var DefaultTimeBounds = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// NewHistogram builds a histogram over the given ascending upper bounds.
// With no bounds it still tracks count/sum/min/max exactly.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sample total.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed sample (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest observed sample (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile estimates the q-quantile from the buckets by linear
// interpolation within the containing bucket, clamped to the observed
// min/max. Empty histograms return NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := h.min
			if i > 0 {
				lo = math.Max(h.min, h.bounds[i-1])
			}
			hi := h.max
			if i < len(h.bounds) {
				hi = math.Min(h.max, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			// Infinite samples land in the unbounded overflow bucket and
			// poison the interpolation (Inf-Inf, 0*Inf); clamp so a
			// non-empty histogram always reports a value in [Min, Max].
			if math.IsNaN(v) || v > h.max {
				return h.max
			}
			if v < h.min {
				return h.min
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Registry is a named collection of counters and histograms. Lookups
// create on first use, so emission sites need no registration ceremony.
// Rendering is sorted by name, hence deterministic.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Render prints every counter and histogram as aligned text tables,
// sorted by name.
func (r *Registry) Render() string {
	var b strings.Builder
	if len(r.counters) > 0 {
		t := NewTable("Counter", "Value")
		for _, n := range r.CounterNames() {
			t.AddRow(n, r.counters[n].Value())
		}
		b.WriteString(t.String())
	}
	if len(r.hists) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		t := NewTable("Histogram", "N", "Mean", "p50", "p95", "Max")
		for _, n := range r.HistogramNames() {
			h := r.hists[n]
			t.AddRow(n, fmt.Sprintf("%d", h.N()), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
		}
		b.WriteString(t.String())
	}
	return b.String()
}
