package metrics

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCDF checks the distribution invariants on arbitrary byte-derived
// samples: At is monotone in [0,1], quantiles stay within the sample
// range, and the mean lies between min and max.
func FuzzCDF(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			vals = append(vals, float64(binary.LittleEndian.Uint16(data[i:])))
		}
		c := NewCDF(vals)
		if len(vals) == 0 {
			if c.At(1) != 0 {
				t.Fatal("empty CDF At != 0")
			}
			return
		}
		prev := -1.0
		for _, x := range []float64{-1, 0, 100, 1000, 70000} {
			p := c.At(x)
			if p < 0 || p > 1 || p < prev {
				t.Fatalf("At(%v) = %v broke monotonicity", x, p)
			}
			prev = p
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := c.Quantile(q)
			if v < c.Min() || v > c.Max() {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, c.Min(), c.Max())
			}
		}
		if m := c.Mean(); m < c.Min()-1e-9 || m > c.Max()+1e-9 {
			t.Fatalf("mean %v outside range", m)
		}
	})
}

// FuzzHistogramQuantile checks the bucket-interpolation invariants on
// arbitrary byte-derived samples, deliberately covering the unbounded
// overflow bucket: values far above the last bound (DefaultTimeBounds
// tops out at 1000, uint16 samples reach 65534) and the +Inf sentinel
// (encoded 65535). A non-empty histogram must report quantiles inside
// [Min, Max], never NaN, and monotone in q.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255})        // all +Inf
	f.Add([]byte{10, 0, 255, 255, 255, 250}) // small, +Inf, huge
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewHistogram(DefaultTimeBounds...)
		n := 0
		for i := 0; i+1 < len(data); i += 2 {
			raw := binary.LittleEndian.Uint16(data[i:])
			v := float64(raw)
			if raw == math.MaxUint16 {
				v = math.Inf(1)
			}
			h.Observe(v)
			n++
		}
		if n == 0 {
			if !math.IsNaN(h.Quantile(0.5)) {
				t.Fatal("empty histogram Quantile != NaN")
			}
			return
		}
		prev := math.Inf(-1)
		for _, q := range []float64{-1, 0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1, 2} {
			v := h.Quantile(q)
			if math.IsNaN(v) {
				t.Fatalf("Quantile(%v) = NaN on %d samples", q, n)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, h.Min(), h.Max())
			}
			if v < prev {
				t.Fatalf("Quantile(%v) = %v below Quantile of smaller q (%v)", q, v, prev)
			}
			prev = v
		}
	})
}

// FuzzTimeAvg checks that time-weighted averages of non-negative step
// functions stay within the observed value range.
func FuzzTimeAvg(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		var a TimeAvg
		now := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i+1 < len(data); i += 2 {
			now += float64(data[i]) / 8
			v := float64(data[i+1])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			a.Update(now, v)
		}
		if math.IsInf(lo, 1) {
			return // no samples
		}
		avg := a.Average(now + 1)
		if avg < lo-1e-9 || avg > hi+1e-9 {
			t.Fatalf("average %v outside [%v, %v]", avg, lo, hi)
		}
	})
}
