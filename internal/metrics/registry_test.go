package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Add(2.5)
	if c.Value() != 4.5 {
		t.Fatalf("counter %v", c.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Min()) {
		t.Fatal("empty histogram should report NaN")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.N() != 5 || h.Sum() != 16.5 {
		t.Fatalf("n=%d sum=%v", h.N(), h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 10 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if h.Mean() != 3.3 {
		t.Fatalf("mean=%v", h.Mean())
	}
	if q := h.Quantile(0); q != 0.5 {
		t.Fatalf("q0=%v", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("q1=%v", q)
	}
	// The median rank (2.5 of 5) lands in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("q0.5=%v outside its bucket", q)
	}
	// High quantiles are clamped to the observed max, not the +Inf bound.
	if q := h.Quantile(0.99); q > 10 {
		t.Fatalf("q0.99=%v exceeds max", q)
	}
}

func TestHistogramOverflowBucketQuantiles(t *testing.T) {
	// Every sample lands in the unbounded overflow bucket: all quantiles
	// must stay within the observed range, never the +Inf bound.
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{100, 200, 300} {
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if v := h.Quantile(q); v < 100 || v > 300 {
			t.Fatalf("q%v=%v outside [100, 300]", q, v)
		}
	}

	// Infinite samples poison the overflow-bucket interpolation with
	// Inf-Inf and 0*Inf; the quantile must clamp, not report NaN.
	inf := NewHistogram(1, 2, 5)
	inf.Observe(math.Inf(1))
	inf.Observe(math.Inf(1))
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if v := inf.Quantile(q); math.IsNaN(v) {
			t.Fatalf("q%v=NaN with infinite samples", q)
		}
	}

	// Mixed finite and infinite samples keep low quantiles finite and
	// within range.
	mix := NewHistogram(1, 2, 5)
	mix.Observe(1.5)
	mix.Observe(math.Inf(1))
	if v := mix.Quantile(0.25); math.IsNaN(v) || v < 1.5 {
		t.Fatalf("q0.25=%v with mixed samples", v)
	}
}

func TestHistogramNoBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(2)
	h.Observe(4)
	if h.N() != 2 || h.Mean() != 3 || h.Quantile(0.5) < 2 || h.Quantile(0.5) > 4 {
		t.Fatalf("boundless histogram: n=%d mean=%v", h.N(), h.Mean())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds accepted")
		}
	}()
	NewHistogram(2, 1)
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(3)
	if r.Counter("b").Value() != 1 {
		t.Fatal("counter identity lost")
	}
	r.Histogram("h", 1, 2).Observe(1.5)
	if r.Histogram("h").N() != 1 {
		t.Fatal("histogram identity lost")
	}
	if names := r.CounterNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("counter names %v", names)
	}
	if names := r.HistogramNames(); len(names) != 1 || names[0] != "h" {
		t.Fatalf("histogram names %v", names)
	}
	out := r.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "h") {
		t.Fatalf("render missing entries:\n%s", out)
	}
	// Deterministic rendering: same registry renders identically.
	if out != r.Render() {
		t.Fatal("render not deterministic")
	}
}
