package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, cs := range cases {
		if got := c.At(cs.x); math.Abs(got-cs.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Error("empty At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("empty CDF stats should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points != nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {1, 50},
	}
	for _, cs := range cases {
		if got := c.Quantile(cs.q); got != cs.want {
			t.Errorf("Quantile(%v) = %v, want %v", cs.q, got, cs.want)
		}
	}
}

func TestCDFStats(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.Min() != 1 || c.Max() != 3 || c.Mean() != 2 || c.N() != 3 {
		t.Fatalf("stats = %v %v %v %v", c.Min(), c.Max(), c.Mean(), c.N())
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewCDF mutated its input")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("points not monotone: %+v", pts)
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("last point F = %v, want 1", pts[len(pts)-1].F)
	}
	if got := c.Points(1); len(got) != 1 || got[0].F != 1 {
		t.Fatalf("Points(1) = %+v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64, probes []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		c := NewCDF(vals)
		sort.Float64s(probes)
		prev := -1.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			f := c.At(x)
			if f < 0 || f > 1 || f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeAvgConstant(t *testing.T) {
	var a TimeAvg
	a.Update(0, 5)
	if got := a.Average(10); got != 5 {
		t.Fatalf("constant average = %v, want 5", got)
	}
}

func TestTimeAvgStep(t *testing.T) {
	var a TimeAvg
	a.Update(0, 0)
	a.Update(5, 10) // 0 for 5s, then 10 for 5s
	if got := a.Average(10); got != 5 {
		t.Fatalf("step average = %v, want 5", got)
	}
}

func TestTimeAvgLateStart(t *testing.T) {
	var a TimeAvg
	a.Update(100, 4)
	if got := a.Average(200); got != 4 {
		t.Fatalf("late-start average = %v, want 4", got)
	}
	if got := a.Average(100); got != 0 {
		t.Fatalf("zero-window average = %v, want 0", got)
	}
}

func TestTimeAvgBackwardsPanics(t *testing.T) {
	var a TimeAvg
	a.Update(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards update did not panic")
		}
	}()
	a.Update(5, 2)
}

func TestTimeAvgEmptyIsZero(t *testing.T) {
	var a TimeAvg
	if a.Average(10) != 0 {
		t.Fatal("empty TimeAvg average != 0")
	}
}

func TestLocalityPercentages(t *testing.T) {
	l := LocalityCount{Node: 85, Rack: 10, Remote: 5}
	if l.Total() != 100 {
		t.Fatalf("Total = %d", l.Total())
	}
	if l.PercentNode() != 85 || l.PercentRack() != 10 || l.PercentRemote() != 5 {
		t.Fatalf("percentages = %v %v %v", l.PercentNode(), l.PercentRack(), l.PercentRemote())
	}
	var empty LocalityCount
	if empty.PercentNode() != 0 {
		t.Fatal("empty percent != 0")
	}
	l.Merge(LocalityCount{Node: 15, Rack: 0, Remote: 0})
	if l.Node != 100 || l.Total() != 115 {
		t.Fatalf("merge wrong: %+v", l)
	}
}

func TestLocalityPercentSumProperty(t *testing.T) {
	f := func(n, r, m uint16) bool {
		l := LocalityCount{Node: int(n), Rack: int(r), Remote: int(m)}
		if l.Total() == 0 {
			return l.PercentNode() == 0
		}
		sum := l.PercentNode() + l.PercentRack() + l.PercentRemote()
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 83); math.Abs(got-0.17) > 1e-12 {
		t.Fatalf("Reduction(100,83) = %v, want 0.17", got)
	}
	if got := Reduction(100, 120); math.Abs(got+0.2) > 1e-12 {
		t.Fatalf("Reduction(100,120) = %v, want -0.2", got)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("Reduction with zero base != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("JobID", "Time", "Pct")
	tb.AddRow("01", 123.456, 50.0)
	tb.AddRow("02", 7.0, 12.34)
	s := tb.String()
	if !strings.Contains(s, "JobID") || !strings.Contains(s, "123.46") {
		t.Fatalf("table output missing cells:\n%s", s)
	}
	if !strings.Contains(s, "50") {
		t.Fatalf("integral float not trimmed:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestFormatHelpers(t *testing.T) {
	if GB(10e9) != "10GB" {
		t.Fatalf("GB(10e9) = %q", GB(10e9))
	}
	if Seconds(3.14159) != "3.1s" {
		t.Fatalf("Seconds = %q", Seconds(3.14159))
	}
}

func TestCDFPointsMoreThanSamples(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points(10) over 2 samples = %d points", len(pts))
	}
	for _, p := range pts {
		if p.X != 1 && p.X != 2 {
			t.Fatalf("point %v not a sample value", p.X)
		}
	}
	if got := c.Points(0); got != nil {
		t.Fatal("Points(0) should be nil")
	}
}

func TestTableNoRows(t *testing.T) {
	tb := NewTable("A", "B")
	s := tb.String()
	if !strings.Contains(s, "A") {
		t.Fatal("empty table lost its header")
	}
}

func TestTableRowWiderThanHeader(t *testing.T) {
	tb := NewTable("A")
	tb.AddRow("x", "extra", "cols")
	s := tb.String()
	if !strings.Contains(s, "extra") || !strings.Contains(s, "cols") {
		t.Fatalf("wide row truncated:\n%s", s)
	}
}
