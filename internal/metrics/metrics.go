// Package metrics provides the statistics the paper's evaluation reports:
// empirical CDFs (Figs. 3–6), locality-class tallies (Table III, Fig. 7),
// and time-weighted utilization averages (Section III-A's resource
// utilization claim), plus small text-table helpers for the experiment
// harness output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over a sample.
// The zero value is an empty distribution.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts values into a CDF.
func NewCDF(values []float64) CDF {
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// N returns the sample size.
func (c CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x, in [0,1]. Empty CDFs return 0.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) by nearest-rank; empty CDFs
// return NaN.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Min returns the smallest sample (NaN when empty).
func (c CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample (NaN when empty).
func (c CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean (NaN when empty).
func (c CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}

// Point is one (x, F(x)) pair of a rendered CDF curve.
type Point struct {
	X float64
	F float64
}

// Points samples the CDF at n evenly spaced quantiles, suitable for
// printing a figure's series. n < 2 returns at most one point.
func (c CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 1 {
		return nil
	}
	if n == 1 {
		return []Point{{X: c.Max(), F: 1}}
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		x := c.Quantile(q)
		out = append(out, Point{X: x, F: c.At(x)})
	}
	return out
}

// Values returns the sorted underlying sample (shared slice; do not modify).
func (c CDF) Values() []float64 { return c.sorted }

// TimeAvg integrates a step function over (simulated) time and reports its
// time-weighted mean — used for slot-utilization accounting. The zero
// value starts integrating at t = 0 with value 0; call Update at every
// change point.
type TimeAvg struct {
	started  bool
	lastT    float64
	lastV    float64
	startT   float64
	integral float64
}

// Update records that the tracked quantity has value v from time t onward.
// Updates must be non-decreasing in t.
func (a *TimeAvg) Update(t, v float64) {
	if !a.started {
		a.started = true
		a.startT = t
		a.lastT = t
		a.lastV = v
		return
	}
	if t < a.lastT {
		panic(fmt.Sprintf("metrics: TimeAvg.Update at %v before %v", t, a.lastT))
	}
	a.integral += a.lastV * (t - a.lastT)
	a.lastT = t
	a.lastV = v
}

// Average returns the time-weighted mean over [start, t]. t must be >= the
// last update time. Returns 0 if the window is empty.
func (a *TimeAvg) Average(t float64) float64 {
	if !a.started || t <= a.startT {
		return 0
	}
	integral := a.integral + a.lastV*(t-a.lastT)
	return integral / (t - a.startT)
}

// LocalityCount tallies task placements by locality class.
type LocalityCount struct {
	Node   int // "local node" tasks
	Rack   int // "local rack" tasks
	Remote int
}

// Add increments the class chosen by the three-way flag pair.
func (l *LocalityCount) Total() int { return l.Node + l.Rack + l.Remote }

// PercentNode returns the local-node share in percent (0 when empty).
func (l *LocalityCount) PercentNode() float64 { return pct(l.Node, l.Total()) }

// PercentRack returns the local-rack share in percent.
func (l *LocalityCount) PercentRack() float64 { return pct(l.Rack, l.Total()) }

// PercentRemote returns the remote share in percent.
func (l *LocalityCount) PercentRemote() float64 { return pct(l.Remote, l.Total()) }

// Merge adds other's tallies into l.
func (l *LocalityCount) Merge(other LocalityCount) {
	l.Node += other.Node
	l.Rack += other.Rack
	l.Remote += other.Remote
}

func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) over the
// allocations: 1 when all shares are equal, approaching 1/n as a single
// share dominates. Empty or all-zero inputs return 0.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// Reduction returns the paper's Fig. 5 metric: (base − ours) / base, the
// fractional improvement of ours over base. Zero base yields 0.
func Reduction(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - ours) / base
}

// Table renders fixed-width text tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", width[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// GB formats a byte count in gigabytes for table output.
func GB(bytes float64) string { return fmt.Sprintf("%.0fGB", bytes/1e9) }

// Seconds formats a duration in seconds.
func Seconds(s float64) string { return fmt.Sprintf("%.1fs", s) }
