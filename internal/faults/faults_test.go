package faults

import (
	"strings"
	"testing"
)

func TestEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not empty")
	}
	// Policy knobs alone keep the plan empty: with no failure source they
	// can never fire.
	if !(Plan{MaxTaskAttempts: 2, BlacklistAfter: 1}).Empty() {
		t.Fatal("policy-only plan not empty")
	}
	for _, p := range []Plan{
		{Crashes: []NodeCrash{{Node: 1, At: 5}}},
		{Slowdowns: []NodeSlowdown{{Node: 1, At: 5, Factor: 2}}},
		{Links: []LinkDegrade{{Node: 1, At: 5, Factor: 0.5}}},
		{ReplicaLosses: []ReplicaLoss{{Node: 1, At: 5}}},
		{TaskFailProb: 0.1},
	} {
		if p.Empty() {
			t.Fatalf("plan %+v reported empty", p)
		}
	}
}

func TestDefaults(t *testing.T) {
	var p Plan
	if p.MaxAttempts() != DefaultMaxTaskAttempts {
		t.Fatalf("MaxAttempts = %d", p.MaxAttempts())
	}
	if p.BlacklistThreshold() != DefaultBlacklistAfter {
		t.Fatalf("BlacklistThreshold = %d", p.BlacklistThreshold())
	}
	p.MaxTaskAttempts, p.BlacklistAfter = 7, 9
	if p.MaxAttempts() != 7 || p.BlacklistThreshold() != 9 {
		t.Fatal("explicit settings not honoured")
	}
}

func TestValidate(t *testing.T) {
	good := Plan{
		Crashes:       []NodeCrash{{Node: 0, At: 10}, {Node: 3, At: 20}},
		Slowdowns:     []NodeSlowdown{{Node: 1, At: 5, Duration: 60, Factor: 2.5}},
		Links:         []LinkDegrade{{Node: 2, At: 5, Duration: 30, Factor: 0}, {Node: 2, At: 100, Factor: 0.25}},
		ReplicaLosses: []ReplicaLoss{{Node: 3, At: 15}},
		TaskFailProb:  0.05,
	}
	if err := good.Validate(4); err != nil {
		t.Fatal(err)
	}
	bad := []Plan{
		{Crashes: []NodeCrash{{Node: 4, At: 1}}},                         // out of range
		{Crashes: []NodeCrash{{Node: 1, At: -1}}},                        // negative time
		{Crashes: []NodeCrash{{Node: 1, At: 1}, {Node: 1, At: 2}}},       // duplicate
		{Slowdowns: []NodeSlowdown{{Node: 1, At: 1, Factor: 1}}},         // factor <= 1
		{Links: []LinkDegrade{{Node: 1, At: 1, Factor: 1.5}}},            // factor > 1
		{Links: []LinkDegrade{{Node: 1, At: 1, Factor: 0, Duration: 0}}}, // permanent severed link
		{ReplicaLosses: []ReplicaLoss{{Node: -1, At: 1}}},                // out of range
		{TaskFailProb: 1.5},                      // probability
		{TaskFailProb: 0.1, MaxTaskAttempts: -1}, // negative cap
		{TaskFailProb: 0.1, BlacklistAfter: -2},  // negative threshold
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("crash:3@60; slow:7@30+120*2.5; link:4@10+40*0.1; replica:2@5; taskfail:0.02; attempts:5; blacklist:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (NodeCrash{Node: 3, At: 60}) {
		t.Fatalf("crashes: %+v", p.Crashes)
	}
	if len(p.Slowdowns) != 1 || p.Slowdowns[0] != (NodeSlowdown{Node: 7, At: 30, Duration: 120, Factor: 2.5}) {
		t.Fatalf("slowdowns: %+v", p.Slowdowns)
	}
	if len(p.Links) != 1 || p.Links[0] != (LinkDegrade{Node: 4, At: 10, Duration: 40, Factor: 0.1}) {
		t.Fatalf("links: %+v", p.Links)
	}
	if len(p.ReplicaLosses) != 1 || p.ReplicaLosses[0] != (ReplicaLoss{Node: 2, At: 5}) {
		t.Fatalf("replica losses: %+v", p.ReplicaLosses)
	}
	if p.TaskFailProb != 0.02 || p.MaxTaskAttempts != 5 || p.BlacklistAfter != 2 {
		t.Fatalf("scalars: %+v", p)
	}

	// Permanent slowdown: no duration.
	p, err = ParseSpec("slow:1@10*3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Slowdowns[0].Duration != 0 || p.Slowdowns[0].Factor != 3 {
		t.Fatalf("permanent slowdown: %+v", p.Slowdowns[0])
	}

	if p, err := ParseSpec(""); err != nil || !p.Empty() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}

	for _, bad := range []string{
		"crash:3",         // no time
		"crash:3@60*2",    // crash with factor
		"slow:1@10",       // slow without factor
		"link:1@10",       // link without factor
		"replica:2@5*0.5", // replica with factor
		"taskfail:x",      // not a number
		"bogus:1@2",       // unknown kind
		"crash3@60",       // missing colon
		"crash:a@60",      // bad node
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}

	// A parsed plan round-trips through Validate.
	p, err = ParseSpec("crash:0@1;taskfail:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(0); err == nil || !strings.Contains(err.Error(), "outside cluster") {
		t.Fatalf("validate against empty cluster: %v", err)
	}
}
