package faults

import (
	"fmt"
	"testing"
)

// FuzzParsePlan hammers the fault-DSL parser: arbitrary input must
// never panic, must parse deterministically, and an accepted plan must
// survive Validate against a finite cluster without panicking either.
func FuzzParsePlan(f *testing.F) {
	f.Add("crash:3@60; slow:7@30+120*2.5; link:4@10+40*0.1; replica:2@5; taskfail:0.02; attempts:5; blacklist:2")
	f.Add("slow:1@10*3")
	f.Add("crash:0@1;taskfail:0.5")
	f.Add("")
	f.Add(";;;  ; ")
	f.Add("crash:3")
	f.Add("link:4@10+40*NaN")
	f.Add("taskfail:1e309")
	f.Add("CRASH:3@60")
	f.Add("slow:-1@-2+-3*-4")

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec)
		if err != nil {
			if !p.Empty() {
				t.Fatalf("rejected spec %q returned a non-empty plan %+v", spec, p)
			}
			return
		}
		again, err2 := ParseSpec(spec)
		if err2 != nil {
			t.Fatalf("spec %q parsed, then failed on re-parse: %v", spec, err2)
		}
		// Formatted comparison, not DeepEqual: the parser lets NaN
		// factors through to Validate, and NaN != NaN.
		if fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", again) {
			t.Fatalf("spec %q parses non-deterministically: %+v vs %+v", spec, p, again)
		}
		// Validation may reject (out-of-range nodes, bad domains) but
		// must never panic, whatever the parser let through.
		_ = p.Validate(8)
		_ = p.Validate(0)
	})
}
