// Package faults defines deterministic fault-injection plans for the
// simulation engine. A Plan scripts node crashes, transient node
// slowdowns, link degradations and block-replica losses at fixed
// simulated times, and configures the stochastic per-attempt task
// failure process together with the retry and blacklist policy the
// engine applies during recovery. Plans carry no randomness themselves:
// every stochastic decision (which attempts fail, when within the
// attempt) is drawn from the run's seeded RNG inside the engine, so a
// fixed (plan, seed) pair reproduces the run bit-for-bit, and the zero
// Plan injects nothing at all.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeCrash permanently kills a node at time At: its tasks die, its
// stored map outputs and block replicas become unavailable, and it stops
// heartbeating. The JobTracker reacts only after the heartbeat-expiry
// lag, exactly like a real TaskTracker loss.
type NodeCrash struct {
	Node int
	At   float64
}

// NodeSlowdown divides a node's compute rate by Factor during
// [At, At+Duration); Duration 0 makes the slowdown permanent. Running
// tasks on the node are stretched mid-flight, and restored on expiry.
// Factors are absolute against the node's base speed, not cumulative.
type NodeSlowdown struct {
	Node     int
	At       float64
	Duration float64
	Factor   float64 // > 1: compute rate divided by this
}

// LinkDegrade scales a node's access-link capacity (both directions) to
// Factor × nominal during [At, At+Duration). Factor 0 severs the link:
// flows across it stall at rate zero until the capacity is restored, so
// a severed link must carry a positive Duration or jobs could never
// terminate.
type LinkDegrade struct {
	Node     int
	At       float64
	Duration float64
	Factor   float64 // in [0, 1]
}

// ReplicaLoss removes every block replica stored on a node at time At —
// a disk loss without a crash. Map placement falls back to the surviving
// replicas; jobs whose unread blocks lose their last replica fail
// cleanly.
type ReplicaLoss struct {
	Node int
	At   float64
}

// Defaults for the retry and blacklist policy, mirroring Hadoop 1.x
// (mapred.map.max.attempts / mapred.max.tracker.failures).
const (
	DefaultMaxTaskAttempts = 4
	DefaultBlacklistAfter  = 3
)

// Plan is one run's complete fault script. The zero value is the empty
// plan: the engine guarantees a run under it is bit-identical to a run
// of an engine without the fault layer at the same seed.
type Plan struct {
	Crashes       []NodeCrash
	Slowdowns     []NodeSlowdown
	Links         []LinkDegrade
	ReplicaLosses []ReplicaLoss

	// TaskFailProb is the probability that any single task attempt fails
	// partway through, drawn per attempt from the run's seeded RNG.
	TaskFailProb float64

	// MaxTaskAttempts caps execution attempts per task; when a task
	// exhausts it, its job fails. Zero means DefaultMaxTaskAttempts.
	MaxTaskAttempts int

	// BlacklistAfter is the per-(job, node) attempt-failure count at
	// which the node is blacklisted out of the scheduler's candidate
	// sets. Zero means DefaultBlacklistAfter. At most half the cluster
	// is ever blacklisted.
	BlacklistAfter int
}

// Empty reports whether the plan injects nothing: no scripted faults and
// a zero task-failure probability. Retry/blacklist settings alone do not
// make a plan non-empty — with no failure source they are unreachable.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Slowdowns) == 0 && len(p.Links) == 0 &&
		len(p.ReplicaLosses) == 0 && p.TaskFailProb == 0
}

// MaxAttempts returns the effective per-task attempt cap.
func (p Plan) MaxAttempts() int {
	if p.MaxTaskAttempts <= 0 {
		return DefaultMaxTaskAttempts
	}
	return p.MaxTaskAttempts
}

// BlacklistThreshold returns the effective per-(job, node) failure count
// that blacklists a node.
func (p Plan) BlacklistThreshold() int {
	if p.BlacklistAfter <= 0 {
		return DefaultBlacklistAfter
	}
	return p.BlacklistAfter
}

// Validate reports whether the plan is usable on a cluster of n nodes.
func (p Plan) Validate(nodes int) error {
	checkNode := func(kind string, node int) error {
		if node < 0 || node >= nodes {
			return fmt.Errorf("faults: %s of node %d outside cluster of %d", kind, node, nodes)
		}
		return nil
	}
	crashed := make(map[int]bool)
	for _, c := range p.Crashes {
		if err := checkNode("crash", c.Node); err != nil {
			return err
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash of node %d at negative time", c.Node)
		}
		if crashed[c.Node] {
			return fmt.Errorf("faults: duplicate crash of node %d", c.Node)
		}
		crashed[c.Node] = true
	}
	for _, sl := range p.Slowdowns {
		if err := checkNode("slowdown", sl.Node); err != nil {
			return err
		}
		if sl.At < 0 || sl.Duration < 0 {
			return fmt.Errorf("faults: slowdown of node %d with negative time", sl.Node)
		}
		if sl.Factor <= 1 {
			return fmt.Errorf("faults: slowdown factor %v of node %d must exceed 1", sl.Factor, sl.Node)
		}
	}
	for _, l := range p.Links {
		if err := checkNode("link degrade", l.Node); err != nil {
			return err
		}
		if l.At < 0 || l.Duration < 0 {
			return fmt.Errorf("faults: link degrade of node %d with negative time", l.Node)
		}
		if l.Factor < 0 || l.Factor > 1 {
			return fmt.Errorf("faults: link factor %v of node %d outside [0,1]", l.Factor, l.Node)
		}
		if l.Factor == 0 && l.Duration == 0 {
			return fmt.Errorf("faults: permanent severed link on node %d would stall flows forever; give it a duration", l.Node)
		}
	}
	for _, r := range p.ReplicaLosses {
		if err := checkNode("replica loss", r.Node); err != nil {
			return err
		}
		if r.At < 0 {
			return fmt.Errorf("faults: replica loss of node %d at negative time", r.Node)
		}
	}
	if p.TaskFailProb < 0 || p.TaskFailProb > 1 {
		return fmt.Errorf("faults: task failure probability %v outside [0,1]", p.TaskFailProb)
	}
	if p.MaxTaskAttempts < 0 {
		return fmt.Errorf("faults: negative MaxTaskAttempts")
	}
	if p.BlacklistAfter < 0 {
		return fmt.Errorf("faults: negative BlacklistAfter")
	}
	return nil
}

// ParseSpec parses the command-line fault DSL: semicolon-separated
// entries of the forms
//
//	crash:NODE@AT
//	slow:NODE@AT[+DURATION]*FACTOR
//	link:NODE@AT[+DURATION]*FACTOR
//	replica:NODE@AT
//	taskfail:PROB
//	attempts:N
//	blacklist:N
//
// e.g. "crash:3@60;slow:7@30+120*2.5;link:4@10+40*0.1;taskfail:0.02".
// The returned plan is not yet validated against a cluster size; call
// Validate once the topology is known.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	for _, raw := range strings.Split(spec, ";") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return Plan{}, fmt.Errorf("faults: entry %q missing ':'", entry)
		}
		switch strings.ToLower(strings.TrimSpace(kind)) {
		case "crash":
			node, at, _, hasF, _, err := parseEvent(rest)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: crash %q: %w", rest, err)
			}
			if hasF {
				return Plan{}, fmt.Errorf("faults: crash %q takes no factor", rest)
			}
			p.Crashes = append(p.Crashes, NodeCrash{Node: node, At: at})
		case "slow":
			node, at, dur, hasF, factor, err := parseEvent(rest)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: slow %q: %w", rest, err)
			}
			if !hasF {
				return Plan{}, fmt.Errorf("faults: slow %q missing '*FACTOR'", rest)
			}
			p.Slowdowns = append(p.Slowdowns, NodeSlowdown{Node: node, At: at, Duration: dur, Factor: factor})
		case "link":
			node, at, dur, hasF, factor, err := parseEvent(rest)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: link %q: %w", rest, err)
			}
			if !hasF {
				return Plan{}, fmt.Errorf("faults: link %q missing '*FACTOR'", rest)
			}
			p.Links = append(p.Links, LinkDegrade{Node: node, At: at, Duration: dur, Factor: factor})
		case "replica":
			node, at, _, hasF, _, err := parseEvent(rest)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: replica %q: %w", rest, err)
			}
			if hasF {
				return Plan{}, fmt.Errorf("faults: replica %q takes no factor", rest)
			}
			p.ReplicaLosses = append(p.ReplicaLosses, ReplicaLoss{Node: node, At: at})
		case "taskfail":
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: taskfail %q: %w", rest, err)
			}
			p.TaskFailProb = v
		case "attempts":
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return Plan{}, fmt.Errorf("faults: attempts %q: %w", rest, err)
			}
			p.MaxTaskAttempts = v
		case "blacklist":
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return Plan{}, fmt.Errorf("faults: blacklist %q: %w", rest, err)
			}
			p.BlacklistAfter = v
		default:
			return Plan{}, fmt.Errorf("faults: unknown entry kind %q", kind)
		}
	}
	return p, nil
}

// parseEvent parses "NODE@AT", "NODE@AT+DURATION", "NODE@AT*FACTOR" or
// "NODE@AT+DURATION*FACTOR".
func parseEvent(s string) (node int, at, dur float64, hasFactor bool, factor float64, err error) {
	s = strings.TrimSpace(s)
	nodeStr, timing, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, 0, false, 0, fmt.Errorf("missing '@TIME'")
	}
	node, err = strconv.Atoi(strings.TrimSpace(nodeStr))
	if err != nil {
		return 0, 0, 0, false, 0, fmt.Errorf("node %q: %w", nodeStr, err)
	}
	if left, factorStr, found := strings.Cut(timing, "*"); found {
		hasFactor = true
		factor, err = strconv.ParseFloat(strings.TrimSpace(factorStr), 64)
		if err != nil {
			return 0, 0, 0, false, 0, fmt.Errorf("factor %q: %w", factorStr, err)
		}
		timing = left
	}
	atStr, durStr, hasDur := strings.Cut(timing, "+")
	at, err = strconv.ParseFloat(strings.TrimSpace(atStr), 64)
	if err != nil {
		return 0, 0, 0, false, 0, fmt.Errorf("time %q: %w", atStr, err)
	}
	if hasDur {
		dur, err = strconv.ParseFloat(strings.TrimSpace(durStr), 64)
		if err != nil {
			return 0, 0, 0, false, 0, fmt.Errorf("duration %q: %w", durStr, err)
		}
	}
	return node, at, dur, hasFactor, factor, nil
}
