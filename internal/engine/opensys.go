// Open-system mode: continuous job arrivals feeding per-tenant queues,
// weighted admission control, kill-and-requeue preemption and
// steady-state (warm-up-truncated) SLO metrics. The closed-system path
// is untouched when Config.Open is zero: no extra events are scheduled,
// no extra RNG streams are forked, and runs are bit-identical to those
// before the layer existed. Conversely a single-tenant arrival stream
// with no cap reproduces the fixed-batch path decision for decision —
// the equivalence tests pin both properties.
package engine

import (
	"fmt"
	"math"

	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
)

// Arrival is one job entering the open system. Streams are built by
// workload.BuildArrivals and converted by the façade; the engine only
// requires them sorted by At.
type Arrival struct {
	At     sim.Time
	Tenant string
	Spec   job.Spec
}

// TenantPolicy is the engine-side admission policy of one tenant.
type TenantPolicy struct {
	Name string
	// Weight is the admission share (0 means 1): the scheduler admits
	// the queued tenant with the smallest active/weight ratio, and
	// preemption enforces weighted floors of MaxActive.
	Weight float64
	// QueueCap bounds the pending queue; 0 means unbounded.
	QueueCap int
}

// weight returns the effective admission weight.
func (p TenantPolicy) weight() float64 {
	if p.Weight <= 0 {
		return 1
	}
	return p.Weight
}

// OpenSystem configures the open-system (continuous-arrival,
// multi-tenant) mode. The zero value disables it entirely.
type OpenSystem struct {
	// Arrivals is the time-sorted stream of jobs entering the system.
	Arrivals []Arrival
	// Tenants declares the admission policies. Tenants referenced by an
	// arrival but not declared here are auto-registered with weight 1
	// and an unbounded queue, in first-appearance order.
	Tenants []TenantPolicy
	// MaxActive caps concurrently admitted jobs; 0 means unbounded.
	MaxActive int
	// Preempt enables kill-and-requeue when a tenant with queued work
	// sits below its weighted floor share of MaxActive while another
	// runs above its ceiling. Requires MaxActive > 0.
	Preempt bool
	// Warmup truncates steady-state metrics: jobs arriving before this
	// instant are excluded from JCT, queue-delay and fairness samples.
	Warmup float64
}

// Enabled reports whether the open-system mode is on.
func (o OpenSystem) Enabled() bool { return len(o.Arrivals) > 0 }

// Validate reports whether the open-system configuration is usable.
func (o OpenSystem) Validate() error {
	if !o.Enabled() {
		if len(o.Tenants) > 0 {
			return fmt.Errorf("engine: open-system tenants without arrivals")
		}
		return nil
	}
	if o.MaxActive < 0 {
		return fmt.Errorf("engine: negative MaxActive %d", o.MaxActive)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("engine: negative warmup %v", o.Warmup)
	}
	if o.Preempt && o.MaxActive == 0 {
		return fmt.Errorf("engine: preemption requires MaxActive > 0")
	}
	seen := make(map[string]bool, len(o.Tenants))
	for _, t := range o.Tenants {
		if t.Name == "" {
			return fmt.Errorf("engine: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("engine: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 0 {
			return fmt.Errorf("engine: tenant %s: negative weight %v", t.Name, t.Weight)
		}
		if t.QueueCap < 0 {
			return fmt.Errorf("engine: tenant %s: negative queue cap %d", t.Name, t.QueueCap)
		}
	}
	for i, a := range o.Arrivals {
		if a.At < 0 {
			return fmt.Errorf("engine: arrival %d at negative time %v", i, a.At)
		}
		if i > 0 && a.At < o.Arrivals[i-1].At {
			return fmt.Errorf("engine: arrivals not sorted at %d", i)
		}
		if a.Tenant == "" {
			return fmt.Errorf("engine: arrival %d without tenant", i)
		}
		if a.Spec.Name == "" {
			return fmt.Errorf("engine: arrival %d without job name", i)
		}
	}
	return nil
}

// queuedJob is one pending entry of a tenant queue: a fresh spec, or a
// preempted job awaiting re-admission (j non-nil; its instantiated
// state — input blocks, task graph — survives the requeue).
type queuedJob struct {
	spec   job.Spec
	arrive sim.Time
	j      *job.Job
}

// tenantState is the engine-side runtime state of one tenant.
type tenantState struct {
	policy TenantPolicy
	queue  []queuedJob
	active int // admitted jobs currently in the system

	arrived   int
	admitted  int
	rejected  int
	preempted int
	completed int
	failed    int

	// Steady-state (post-warm-up) samples. JCT is the sojourn time
	// arrival→finish, queue delay is arrival→first admission.
	ssCompleted int
	jcts        []float64
	delays      []float64
}

// openJob tracks the tenancy of one admitted job.
type openJob struct {
	tenant *tenantState
	arrive sim.Time
	admit  sim.Time // first admission (preserved across requeues)
	seq    int      // admission sequence; preemption evicts the newest
}

// initOpen builds the open-system runtime state from the config.
// Tenants referenced only by arrivals are auto-registered in
// first-appearance order, so the tenant iteration order — which
// admission ties break on — is deterministic.
func (s *Simulation) initOpen() {
	if !s.cfg.Open.Enabled() {
		return
	}
	s.openOn = true
	s.openJobs = make(map[*job.Job]*openJob)
	s.tenantOf = make(map[string]*tenantState)
	for _, p := range s.cfg.Open.Tenants {
		t := &tenantState{policy: p}
		s.tenants = append(s.tenants, t)
		s.tenantOf[p.Name] = t
	}
	for _, a := range s.cfg.Open.Arrivals {
		if _, ok := s.tenantOf[a.Tenant]; !ok {
			t := &tenantState{policy: TenantPolicy{Name: a.Tenant}}
			s.tenants = append(s.tenants, t)
			s.tenantOf[a.Tenant] = t
		}
	}
}

// arrive handles one arrival instant: queue (or reject) the job, then
// let admission and, when enabled, the share rebalancer react.
func (s *Simulation) arrive(a Arrival) {
	s.arrivalsFired++
	t := s.tenantOf[a.Tenant]
	t.arrived++
	now := s.eng.Now()
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(now), Type: obs.JobArrival, Node: -1, Job: a.Spec.Name, Reason: t.policy.Name})
	}
	if cap := t.policy.QueueCap; cap > 0 && len(t.queue) >= cap {
		t.rejected++
		s.rejectedJobs++
		if s.obs.Enabled() {
			s.obs.Emit(obs.Event{T: float64(now), Type: obs.JobReject, Node: -1, Job: a.Spec.Name, Reason: "queue_full"})
		}
		return
	}
	t.queue = append(t.queue, queuedJob{spec: a.Spec, arrive: now})
	s.admitPending()
	if s.cfg.Open.Preempt {
		s.rebalanceShares()
	}
}

// admitPending drains tenant queues into the engine while admission
// capacity remains, always picking the queued tenant with the smallest
// active/weight ratio (ties break on declaration order).
func (s *Simulation) admitPending() {
	for {
		if max := s.cfg.Open.MaxActive; max > 0 && s.openActiveN >= max {
			return
		}
		t := s.pickTenant()
		if t == nil {
			return
		}
		q := t.queue[0]
		copy(t.queue, t.queue[1:])
		t.queue[len(t.queue)-1] = queuedJob{}
		t.queue = t.queue[:len(t.queue)-1]
		t.active++
		s.openActiveN++
		s.admitSeq++
		if q.j != nil {
			s.readmit(q, t)
		} else {
			s.admitNew(q, t)
		}
	}
}

// pickTenant returns the tenant with queued work and the smallest
// active/weight ratio, nil when every queue is empty. The comparison is
// cross-multiplied so no division is involved.
func (s *Simulation) pickTenant() *tenantState {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil ||
			float64(t.active)*best.policy.weight() < float64(best.active)*t.policy.weight() {
			best = t
		}
	}
	return best
}

// admitNew submits a queued spec to the engine. Job IDs continue past
// the fixed-spec range in admission order, so mixed closed+open runs
// never collide and a pure-open run numbers jobs exactly like the
// fixed-batch path would.
func (s *Simulation) admitNew(q queuedJob, t *tenantState) {
	s.openSubmitted++
	id := job.ID(len(s.specs) + s.openSubmitted)
	s.submit(id, q.spec)
	j := s.jobs[len(s.jobs)-1]
	now := s.eng.Now()
	t.admitted++
	delay := float64(now - q.arrive)
	if float64(q.arrive) >= s.cfg.Open.Warmup {
		t.delays = append(t.delays, delay)
	}
	s.openJobs[j] = &openJob{tenant: t, arrive: q.arrive, admit: now, seq: s.admitSeq}
	if s.obs.Enabled() {
		e := obs.Event{T: float64(now), Type: obs.JobAdmit, Node: -1, Job: j.Spec.Name, Reason: t.policy.Name}
		e.Wait = delay
		s.obs.Emit(e)
	}
}

// readmit reactivates a preempted job: its tasks are already reset to
// pending, so rejoining the active set is enough for the heartbeat
// offers to pick it back up. No RNG is consumed — the job keeps its
// instantiated input placement.
func (s *Simulation) readmit(q queuedJob, t *tenantState) {
	j := q.j
	s.active = append(s.active, j)
	s.stats[j.ID] = &jobStats{}
	info := s.openJobs[j]
	info.seq = s.admitSeq
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.JobAdmit, Node: -1, Job: j.Spec.Name, Reason: "requeued"})
	}
	// A job whose pending input lost its last replica while it sat
	// requeued can never run again; fail it now rather than idling to
	// the horizon (the active-set viability sweep cannot see parked jobs).
	for _, m := range j.Maps {
		if m.State == job.TaskPending && len(s.store.Replicas(m.Block)) == 0 {
			s.failJob(j, "input_lost")
			return
		}
	}
}

// rebalanceShares enforces weighted shares of the MaxActive admission
// slots by kill-and-requeue: while some tenant with queued work sits
// strictly below its floor share and another runs strictly above its
// ceiling, the newest admitted job of the worst offender is preempted
// and requeued at the front of its own queue. The floor/ceiling pair
// leaves the fair allocation itself untouched, so the loop cannot
// oscillate; the iteration guard bounds it at MaxActive evictions.
func (s *Simulation) rebalanceShares() {
	total := s.cfg.Open.MaxActive
	if total <= 0 {
		return
	}
	var sumW float64
	for _, t := range s.tenants {
		sumW += t.policy.weight()
	}
	for iter := 0; iter < total; iter++ {
		var starved *tenantState
		for _, t := range s.tenants {
			if len(t.queue) == 0 {
				continue
			}
			floor := math.Floor(float64(total) * t.policy.weight() / sumW)
			if float64(t.active) < floor {
				starved = t
				break
			}
		}
		if starved == nil {
			return
		}
		var offender *tenantState
		var worstOver float64
		for _, t := range s.tenants {
			ceil := math.Ceil(float64(total) * t.policy.weight() / sumW)
			if over := float64(t.active) - ceil; over > worstOver {
				worstOver = over
				offender = t
			}
		}
		if offender == nil {
			return
		}
		victim := s.newestActiveJob(offender)
		if victim == nil {
			return
		}
		s.preempt(victim, offender)
		s.admitPending()
	}
}

// newestActiveJob returns the offender's most recently admitted active
// job (the cheapest to lose: least sunk work on average).
func (s *Simulation) newestActiveJob(t *tenantState) *job.Job {
	var best *job.Job
	bestSeq := -1
	for _, j := range s.active {
		info := s.openJobs[j]
		if info == nil || info.tenant != t {
			continue
		}
		if info.seq > bestSeq {
			bestSeq = info.seq
			best = j
		}
	}
	return best
}

// preempt kills and requeues an admitted job: every running attempt is
// torn down exactly as failJob does, all task state (completed work
// included) resets to pending, and the job parks at the front of its
// tenant's queue for re-admission.
func (s *Simulation) preempt(j *job.Job, t *tenantState) {
	s.preemptions++
	t.preempted++
	for _, m := range j.Maps {
		if run := s.runningMaps[m]; run != nil {
			for _, a := range run.attempts {
				if !a.dead {
					s.killAttempt(a, !s.crashed[a.node])
				}
			}
			delete(s.runningMaps, m)
			s.releaseMapRun(run)
		}
		m.State = job.TaskPending
		m.Progress = 0
		m.Node = -1
	}
	j.DoneMaps = 0
	for _, r := range j.Reduces {
		if run := s.runningReds[r]; run != nil {
			for _, a := range run.attempts {
				if !a.dead {
					s.killRedAttempt(a, !s.crashed[a.node])
				}
			}
			delete(s.runningReds, r)
			s.releaseReduceRun(run)
		}
		r.State = job.TaskPending
		r.Node = -1
		r.ShuffledBytes = 0
		r.Locality = job.LocalityUnknown
	}
	j.DoneReds = 0
	delete(s.stats, j.ID)
	s.sampleUtil()
	for i, a := range s.active {
		if a == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	t.active--
	s.openActiveN--
	info := s.openJobs[j]
	t.queue = append(t.queue, queuedJob{})
	copy(t.queue[1:], t.queue)
	t.queue[0] = queuedJob{spec: j.Spec, arrive: info.arrive, j: j}
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.JobPreempt, Node: -1, Job: j.Spec.Name, Reason: "over_share"})
	}
}

// onJobEnd runs once when a job leaves the system for good (success or
// permanent failure): per-job fault bookkeeping is released, tenant
// accounting advances, and a freed admission slot pulls queued work in.
func (s *Simulation) onJobEnd(j *job.Job) {
	s.releaseJobFaultState(j)
	if !s.openOn {
		return
	}
	info := s.openJobs[j]
	if info == nil {
		return // a fixed-spec job of a mixed closed+open run
	}
	delete(s.openJobs, j)
	t := info.tenant
	t.active--
	s.openActiveN--
	if j.Failed {
		t.failed++
	} else {
		t.completed++
		if float64(info.arrive) >= s.cfg.Open.Warmup {
			t.ssCompleted++
			t.jcts = append(t.jcts, float64(j.Finished-info.arrive))
		}
	}
	s.admitPending()
}

// TenantResult summarizes one tenant of an open-system run. Quantiles
// are exact (nearest-rank over the retained steady-state samples), and
// JCT is the sojourn time arrival→finish, queueing included.
type TenantResult struct {
	Name   string
	Weight float64

	Arrived     int
	Admitted    int
	Rejected    int // turned away by a full queue
	Preempted   int // kill-and-requeue evictions
	Completed   int
	Failed      int
	QueuedAtEnd int // still pending when the run stopped

	// Steady-state SLO metrics over jobs arriving after the warm-up.
	SteadyCompleted int
	JCTMean         float64
	JCTP50          float64
	JCTP95          float64
	JCTP99          float64
	QueueDelayMean  float64
	QueueDelayP95   float64
	Throughput      float64 // steady-state completions per second

	steadyJCTs []float64 // retained samples backing Result.SteadyJCTs
}

// SteadyJCTs returns every tenant's steady-state sojourn times merged,
// in tenant declaration order (the aggregate p99 the bench guard holds).
func (r *Result) SteadyJCTs() []float64 {
	var out []float64
	for _, t := range r.Tenants {
		out = append(out, t.steadyJCTs...)
	}
	return out
}

// collectOpen folds the open-system state into the Result.
func (s *Simulation) collectOpen(res *Result, now float64) {
	res.OpenSystem = true
	res.Preemptions = s.preemptions
	res.RejectedJobs = s.rejectedJobs
	window := now - s.cfg.Open.Warmup
	shares := make([]float64, 0, len(s.tenants))
	for _, t := range s.tenants {
		tr := TenantResult{
			Name:            t.policy.Name,
			Weight:          t.policy.weight(),
			Arrived:         t.arrived,
			Admitted:        t.admitted,
			Rejected:        t.rejected,
			Preempted:       t.preempted,
			Completed:       t.completed,
			Failed:          t.failed,
			QueuedAtEnd:     len(t.queue),
			SteadyCompleted: t.ssCompleted,
			steadyJCTs:      append([]float64(nil), t.jcts...),
		}
		if len(t.jcts) > 0 {
			jct := metrics.NewCDF(t.jcts)
			tr.JCTMean = jct.Mean()
			tr.JCTP50 = jct.Quantile(0.5)
			tr.JCTP95 = jct.Quantile(0.95)
			tr.JCTP99 = jct.Quantile(0.99)
		}
		if len(t.delays) > 0 {
			delay := metrics.NewCDF(t.delays)
			tr.QueueDelayMean = delay.Mean()
			tr.QueueDelayP95 = delay.Quantile(0.95)
		}
		if window > 0 {
			tr.Throughput = float64(t.ssCompleted) / window
		}
		shares = append(shares, float64(t.ssCompleted)/t.policy.weight())
		res.Tenants = append(res.Tenants, tr)
	}
	res.JainFairness = metrics.JainIndex(shares)
	res.SteadyMapUtilization = s.utilMapSS.Average(now)
	res.SteadyReduceUtilization = s.utilRedSS.Average(now)
}
