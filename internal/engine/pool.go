// Free-list allocation of the engine's hot-path records: map/reduce
// attempts, runs, shuffle source buckets and fetch flights. A simulation
// churns through hundreds of thousands of these — one mapAttempt per map
// task attempt, one flight per shuffle fetch — and none outlive their
// task, so pooling turns the steady-state allocation rate to ~zero.
//
// Contract (enforced by the poolreset schedlint analyzer): every release
// function resets all fields of the record before putting it on the free
// list, except the bound callback closures, which deliberately persist —
// they capture only the pooled object's stable pointer and read its
// per-life fields at fire time, so one closure allocation serves every
// life of the object.
//
// Release safety: a record may be released only when nothing can call
// back into it. For attempts that means their sim events are off the
// queue (fired-and-nilled or removed here) and their flows are finished
// or cancelled; both are re-checked defensively below because a
// same-instant tie can leave a transient-failure timer queued after the
// attempt already won.
package engine

import (
	"mapsched/internal/job"
	"mapsched/internal/topology"
)

func (s *Simulation) newMapRun() *mapRun {
	if k := len(s.freeMapRuns); k > 0 {
		run := s.freeMapRuns[k-1]
		s.freeMapRuns[k-1] = nil
		s.freeMapRuns = s.freeMapRuns[:k-1]
		return run
	}
	return &mapRun{}
}

// releaseMapRun recycles a finished or reverted map run and all its
// attempts. Caller guarantees every attempt is dead or won.
func (s *Simulation) releaseMapRun(run *mapRun) {
	for _, att := range run.attempts {
		s.releaseMapAttempt(att)
	}
	//lint:pooled mapRun
	run.attempts = run.attempts[:0]
	s.freeMapRuns = append(s.freeMapRuns, run)
}

// newMapAttempt allocates a map attempt bound to its task and run. The
// three callbacks are allocated once per pooled object and survive
// recycling: they capture att alone and read att.m/att.run when they
// fire.
func (s *Simulation) newMapAttempt(m *job.MapTask, run *mapRun) *mapAttempt {
	var att *mapAttempt
	if k := len(s.freeMapAtts); k > 0 {
		att = s.freeMapAtts[k-1]
		s.freeMapAtts[k-1] = nil
		s.freeMapAtts = s.freeMapAtts[:k-1]
	} else {
		att = &mapAttempt{}
		att.fetchFn = func() {
			if att.dead {
				return
			}
			s.topo.Net().Release(att.fetch)
			att.fetch = nil
			att.fetchDone = true
			s.checkAttempt(att.m, att.run, att)
		}
		att.computeFn = func() {
			// The event just fired; drop the handle before anything can
			// Cancel a recycled event through it.
			att.computeEv = nil
			if att.dead {
				return
			}
			att.computeDone = true
			s.checkAttempt(att.m, att.run, att)
		}
		att.failFn = func() {
			att.failEv = nil
			s.failMapAttempt(att.m, att.run, att)
		}
	}
	att.m, att.run = m, run
	return att
}

// releaseMapAttempt detaches anything still pointing at the attempt and
// recycles it.
func (s *Simulation) releaseMapAttempt(att *mapAttempt) {
	if att.failEv != nil {
		s.eng.Remove(att.failEv)
	}
	if att.computeEv != nil {
		att.computeEv.Cancel()
		s.eng.Remove(att.computeEv)
	}
	if att.fetch != nil {
		if !att.fetch.Finished() {
			s.topo.Net().Cancel(att.fetch)
		}
		s.topo.Net().Release(att.fetch)
	}
	//lint:pooled mapAttempt
	*att = mapAttempt{fetchFn: att.fetchFn, computeFn: att.computeFn, failFn: att.failFn}
	s.freeMapAtts = append(s.freeMapAtts, att)
}

func (s *Simulation) newReduceRun() *reduceRun {
	if k := len(s.freeRedRuns); k > 0 {
		run := s.freeRedRuns[k-1]
		s.freeRedRuns[k-1] = nil
		s.freeRedRuns = s.freeRedRuns[:k-1]
		return run
	}
	return &reduceRun{}
}

// releaseReduceRun recycles a finished or reverted reduce run and all its
// attempts. Caller guarantees every attempt is dead or won and every
// in-flight fetch was cancelled (killRedAttempt clears flights; the
// winning attempt cannot have any).
func (s *Simulation) releaseReduceRun(run *reduceRun) {
	for _, att := range run.attempts {
		s.releaseRedAttempt(att)
	}
	//lint:pooled reduceRun
	run.attempts = run.attempts[:0]
	s.freeRedRuns = append(s.freeRedRuns, run)
}

// newRedAttempt allocates a reduce attempt bound to its task and run,
// reusing the shuffle-state maps of a previous life when pooled.
func (s *Simulation) newRedAttemptRecord(r *job.ReduceTask, run *reduceRun) *redAttempt {
	var att *redAttempt
	if k := len(s.freeRedAtts); k > 0 {
		att = s.freeRedAtts[k-1]
		s.freeRedAtts[k-1] = nil
		s.freeRedAtts = s.freeRedAtts[:k-1]
	} else {
		att = &redAttempt{
			pendingSrc: make(map[topology.NodeID]*srcBucket),
			flights:    make(map[*topology.Flow]*flight),
			got:        make(map[*job.MapTask]bool),
		}
		att.finishFn = func() {
			att.computeEv = nil
			s.finishReduce(att.r, att.run, att)
		}
		att.failCFn = func() {
			att.computeEv = nil
			s.failReduceAttempt(att.r, att.run, att)
		}
	}
	att.r, att.run = r, run
	return att
}

// releaseRedAttempt detaches and recycles a reduce attempt. Buckets still
// queued are released via the deterministic queue slice; the maps are
// cleared in place so their storage carries over to the next life.
func (s *Simulation) releaseRedAttempt(att *redAttempt) {
	if att.computeEv != nil {
		att.computeEv.Cancel()
		s.eng.Remove(att.computeEv)
		att.computeEv = nil
	}
	for _, src := range att.queue {
		if b, ok := att.pendingSrc[src]; ok {
			delete(att.pendingSrc, src)
			s.releaseBucket(b)
		}
	}
	for k := range att.pendingSrc {
		delete(att.pendingSrc, k)
	}
	for k := range att.flights {
		delete(att.flights, k)
	}
	for k := range att.got {
		delete(att.got, k)
	}
	//lint:pooled redAttempt
	att.r, att.run = nil, nil
	att.node = 0
	att.locality = 0
	att.launch = 0
	att.queue = att.queue[:0]
	att.shuffled = 0
	att.computing = false
	att.computeStart = 0
	att.computeDur = 0
	att.failFrac = 0
	att.dead = false
	s.freeRedAtts = append(s.freeRedAtts, att)
}

func (s *Simulation) newBucket() *srcBucket {
	if k := len(s.freeBuckets); k > 0 {
		b := s.freeBuckets[k-1]
		s.freeBuckets[k-1] = nil
		s.freeBuckets = s.freeBuckets[:k-1]
		return b
	}
	return &srcBucket{}
}

// releaseBucket recycles a shuffle source bucket. A bucket whose maps
// slice was moved into a flight has maps == nil; one drained in place
// keeps its storage.
func (s *Simulation) releaseBucket(b *srcBucket) {
	//lint:pooled srcBucket
	b.bytes = 0
	b.maps = b.maps[:0]
	s.freeBuckets = append(s.freeBuckets, b)
}

// newFlight allocates an in-flight shuffle fetch bound to its attempt.
// The completion callback is allocated once per pooled object: it
// captures fl alone and reads the per-life fields at fire time.
func (s *Simulation) newFlight(att *redAttempt) *flight {
	var fl *flight
	if k := len(s.freeFlights); k > 0 {
		fl = s.freeFlights[k-1]
		s.freeFlights[k-1] = nil
		s.freeFlights = s.freeFlights[:k-1]
	} else {
		fl = &flight{}
		fl.doneFn = func() {
			att := fl.att
			if att.dead {
				return
			}
			r, run := att.r, att.run
			delete(att.flights, fl.flow)
			att.shuffled += fl.bytes
			if r.Node == att.node {
				r.ShuffledBytes = att.shuffled
			}
			s.topo.Net().Release(fl.flow)
			s.releaseFlight(fl)
			s.pumpShuffle(r, run, att)
			s.maybeStartReduceCompute(r, run, att)
		}
	}
	fl.att = att
	return fl
}

// releaseFlight recycles a completed or aborted fetch flight. A flight
// whose maps slice was re-queued into a bucket has maps == nil; a
// normally completed one keeps its storage for the next life.
func (s *Simulation) releaseFlight(fl *flight) {
	//lint:pooled flight
	fl.att = nil
	fl.src = 0
	fl.bytes = 0
	fl.maps = fl.maps[:0]
	fl.flow = nil
	s.freeFlights = append(s.freeFlights, fl)
}
