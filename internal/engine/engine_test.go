package engine

import (
	"math"
	"testing"

	"mapsched/internal/cluster"
	"mapsched/internal/job"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// tinyConfig is a small cluster that keeps tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	return cfg
}

// tinySpecs builds a couple of small jobs.
func tinySpecs(t *testing.T) []job.Spec {
	t.Helper()
	o := workload.Options{Scale: 40, Replication: 2, SubmitStagger: 1}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Wordcount, InputGB: 10, Maps: 88, Reduces: 157},
		{JobID: "11", Kind: workload.Terasort, InputGB: 10, Maps: 143, Reduces: 190},
		{JobID: "21", Kind: workload.Grep, InputGB: 10, Maps: 87, Reduces: 148},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func builders() map[string]sched.Builder {
	return map[string]sched.Builder{
		"probabilistic": sched.NewProbabilistic(sched.DefaultProbabilisticConfig()),
		"coupling":      sched.NewCoupling(sched.DefaultCouplingConfig()),
		"fair":          sched.NewFairDelay(sched.DefaultFairDelayConfig()),
	}
}

func TestAllSchedulersCompleteSmallBatch(t *testing.T) {
	for name, b := range builders() {
		t.Run(name, func(t *testing.T) {
			s, err := New(tinyConfig(), tinySpecs(t), b)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Unfinished != 0 {
				t.Fatalf("%d jobs unfinished: %s", res.Unfinished, res)
			}
			if len(res.Jobs) != 3 {
				t.Fatalf("%d job results", len(res.Jobs))
			}
			wantMaps, wantReds := 0, 0
			for _, j := range s.Jobs() {
				wantMaps += j.NumMaps()
				wantReds += j.NumReduces()
			}
			if len(res.MapTimes) != wantMaps {
				t.Fatalf("%d map times, want %d", len(res.MapTimes), wantMaps)
			}
			if len(res.ReduceTimes) != wantReds {
				t.Fatalf("%d reduce times, want %d", len(res.ReduceTimes), wantReds)
			}
			for _, d := range res.MapTimes {
				if d <= 0 {
					t.Fatal("non-positive map task time")
				}
			}
			if res.Makespan <= 0 {
				t.Fatal("zero makespan")
			}
			if res.MapUtilization <= 0 || res.MapUtilization > 1 {
				t.Fatalf("map utilization %v outside (0,1]", res.MapUtilization)
			}
			if res.ReduceUtilization <= 0 || res.ReduceUtilization > 1 {
				t.Fatalf("reduce utilization %v outside (0,1]", res.ReduceUtilization)
			}
			// Locality tallies cover every task.
			if res.MapLocality.Total() != wantMaps {
				t.Fatalf("map locality covers %d of %d tasks", res.MapLocality.Total(), wantMaps)
			}
			if res.ReduceLocality.Total() != wantReds {
				t.Fatalf("reduce locality covers %d of %d tasks", res.ReduceLocality.Total(), wantReds)
			}
			// Completion ordering sane.
			for _, jr := range res.Jobs {
				if !jr.Finished() || jr.Completion <= 0 {
					t.Fatalf("job %s not finished: %+v", jr.Name, jr)
				}
				if jr.Finish < jr.Submit {
					t.Fatalf("job %s finished before submit", jr.Name)
				}
			}
		})
	}
}

func TestShuffleConservation(t *testing.T) {
	// Every reduce receives exactly the bytes its maps produced for it.
	s, err := New(tinyConfig(), tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		for _, r := range j.Reduces {
			want := r.ExpectedInput()
			if math.Abs(r.ShuffledBytes-want) > 1 {
				t.Fatalf("job %s reduce %d shuffled %v bytes, want %v",
					j.Spec.Name, r.Index, r.ShuffledBytes, want)
			}
		}
		for _, m := range j.Maps {
			if m.State != job.TaskDone {
				t.Fatalf("map %d of %s not done", m.Index, j.Spec.Name)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) *Result {
		cfg := tinyConfig()
		cfg.Seed = seed
		s, err := New(cfg, tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("same seed diverged: makespan %v vs %v, events %d vs %d",
			a.Makespan, b.Makespan, a.Events, b.Events)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Completion != b.Jobs[i].Completion {
			t.Fatalf("job %s completion diverged", a.Jobs[i].Name)
		}
	}
	c := run(8)
	if c.Makespan == a.Makespan && c.Events == a.Events {
		t.Log("warning: different seeds produced identical runs (possible but unlikely)")
	}
}

func TestHorizonAbort(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSimTime = 3 // far too short
	s, err := New(cfg, tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished == 0 {
		t.Fatal("all jobs finished within 10s horizon, expected abort")
	}
}

func TestCrossTrafficSlowsRun(t *testing.T) {
	base := func(ct int) float64 {
		cfg := tinyConfig()
		cfg.CrossTraffic = ct
		s, err := New(cfg, tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("unfinished jobs under cross traffic %d", ct)
		}
		return res.Makespan
	}
	quiet := base(0)
	busy := base(30)
	if busy <= quiet {
		t.Fatalf("cross traffic did not slow the run: %v vs %v", busy, quiet)
	}
}

func TestNetworkConditionModeRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.CostMode = 1 // core.ModeNetworkCondition
	s, err := New(cfg, tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished jobs in network-condition mode: %s", res)
	}
}

func TestConfigValidation(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.MapSlotsPerNode = 0 },
		func(c *Config) { c.ReduceSlotsPerNode = 0 },
		func(c *Config) { c.HeartbeatInterval = 0 },
		func(c *Config) { c.Slowstart = -0.1 },
		func(c *Config) { c.Slowstart = 1.5 },
		func(c *Config) { c.ShuffleParallelism = 0 },
		func(c *Config) { c.TaskOverhead = -1 },
		func(c *Config) { c.CrossTraffic = -1 },
		func(c *Config) { c.MaxSimTime = -5 },
	}
	for i, m := range mut {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	b := sched.NewFairDelay(sched.DefaultFairDelayConfig())
	if _, err := New(DefaultConfig(), nil, b); err == nil {
		t.Error("no specs accepted")
	}
	if _, err := New(DefaultConfig(), tinySpecs(t), nil); err == nil {
		t.Error("nil builder accepted")
	}
	bad := DefaultConfig()
	bad.HeartbeatInterval = -1
	if _, err := New(bad, tinySpecs(t), b); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	s, err := New(tinyConfig(), tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestSingleRackHasNoRemoteTasks(t *testing.T) {
	// The paper's testbed was one rack: Table III reports 0% remote.
	cfg := DefaultConfig()
	cfg.Topology.Racks = 1
	cfg.Topology.NodesPerRack = 8
	s, err := New(cfg, tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MapLocality.Remote != 0 || res.ReduceLocality.Remote != 0 {
		t.Fatalf("remote tasks in a single rack: map=%d reduce=%d",
			res.MapLocality.Remote, res.ReduceLocality.Remote)
	}
}

func TestResultHelpers(t *testing.T) {
	s, err := New(tinyConfig(), tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cdf := res.JobCompletionCDF()
	if cdf.N() != 3 {
		t.Fatalf("completion CDF over %d jobs", cdf.N())
	}
	if _, ok := res.JobByName("Wordcount_10GB"); !ok {
		t.Fatal("JobByName missed an existing job")
	}
	if _, ok := res.JobByName("nope"); ok {
		t.Fatal("JobByName found a phantom job")
	}
	tl := res.TaskLocality()
	if tl.Total() != res.MapLocality.Total()+res.ReduceLocality.Total() {
		t.Fatal("TaskLocality does not merge map+reduce")
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestReduceSpreadInvariantUnderProbabilistic(t *testing.T) {
	// Algorithm 2 line 1 (with its work-conserving relaxation when no
	// other candidate exists): the spread rule must sharply cut the number
	// of same-job reduce pairs that overlap in time on one node.
	// Use a workload with several concurrently-eligible jobs so the first
	// pass always has alternatives and the rule can bind.
	o := workload.Options{Scale: 10, Replication: 2, SubmitStagger: 0}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Wordcount, InputGB: 10, Maps: 88, Reduces: 157},
		{JobID: "11", Kind: workload.Terasort, InputGB: 10, Maps: 143, Reduces: 190},
		{JobID: "21", Kind: workload.Grep, InputGB: 10, Maps: 87, Reduces: 148},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}
	overlaps := func(spread bool) int {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.SpreadReduces = spread
		s, err := New(tinyConfig(), specs, sched.NewProbabilistic(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, j := range s.Jobs() {
			byNode := map[topology.NodeID][]*job.ReduceTask{}
			for _, r := range j.Reduces {
				byNode[r.Node] = append(byNode[r.Node], r)
			}
			for _, list := range byNode {
				for a := 0; a < len(list); a++ {
					for b := a + 1; b < len(list); b++ {
						ra, rb := list[a], list[b]
						if ra.Launch < rb.Finish && rb.Launch < ra.Finish {
							total++
						}
					}
				}
			}
		}
		return total
	}
	on, off := overlaps(true), overlaps(false)
	if on > off/2 {
		t.Fatalf("spread rule ineffective: %d overlapping pairs with rule, %d without", on, off)
	}
}

func TestUtilizationWindowEndsAtMakespan(t *testing.T) {
	// The horizon default (24h) must not dilute utilization of a run that
	// finishes in minutes.
	s, err := New(tinyConfig(), tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MapUtilization < 0.05 {
		t.Fatalf("map utilization %v suspiciously low — diluted window?", res.MapUtilization)
	}
}

var _ = sim.NewRNG // keep import for future test helpers

func TestResourceModeEndToEnd(t *testing.T) {
	// The YARN-style container mode (Section V future work) must complete
	// the same workload; with fungible capacity the map phase can use the
	// whole node when no reduces run.
	cfg := tinyConfig()
	cfg.ResourceMode = true
	s, err := New(cfg, tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("resource-mode run unfinished: %s", res)
	}
	// Idle-cluster container capacity exceeds the fixed slot split.
	m, r := s.state.TotalSlots()
	if m <= cfg.MapSlotsPerNode*s.state.Size() {
		t.Fatalf("container map capacity %d not above slot capacity", m)
	}
	_ = r
}

func TestResourceModeValidationInEngine(t *testing.T) {
	cfg := tinyConfig()
	cfg.ResourceMode = true
	cfg.NodeResources = cluster.Resources{} // invalid
	if _, err := New(cfg, tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig())); err == nil {
		t.Fatal("invalid resource config accepted")
	}
}
