// Fault injection and recovery: the engine-side half of internal/faults.
//
// A node crash is modelled in two stages. crashNode fires at the scripted
// fault time and is purely physical: attempts on the node stop, its
// heartbeats cease, and transfers touching it can no longer proceed — but
// the JobTracker's bookkeeping (slot counts, task states) is untouched,
// because it has no way to know yet. detectNode fires one heartbeat-expiry
// window later and is the JobTracker's reaction: slots are reclaimed, lost
// work is re-queued, block replicas are pruned and the node goes offline.
// All other faults (slowdowns, link degradations, replica losses,
// transient attempt failures) act immediately since they are either
// physical-only or locally observable.
package engine

import (
	"sort"

	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// scheduleFaults arms every scripted fault of the plan on the event heap.
// Called once from Run; an empty plan schedules nothing.
func (s *Simulation) scheduleFaults() {
	p := s.cfg.Faults
	for _, c := range p.Crashes {
		n := topology.NodeID(c.Node)
		s.eng.Schedule(sim.Time(c.At), func() { s.crashNode(n) })
	}
	for _, sl := range p.Slowdowns {
		n, factor := topology.NodeID(sl.Node), sl.Factor
		s.eng.Schedule(sim.Time(sl.At), func() { s.applySlowdown(n, factor) })
		if sl.Duration > 0 {
			s.eng.Schedule(sim.Time(sl.At+sl.Duration), func() { s.applySlowdown(n, 1) })
		}
	}
	for _, l := range p.Links {
		n, factor := topology.NodeID(l.Node), l.Factor
		s.eng.Schedule(sim.Time(l.At), func() { s.degradeLink(n, factor) })
		if l.Duration > 0 {
			s.eng.Schedule(sim.Time(l.At+l.Duration), func() { s.degradeLink(n, 1) })
		}
	}
	for _, rl := range p.ReplicaLosses {
		n := topology.NodeID(rl.Node)
		s.eng.Schedule(sim.Time(rl.At), func() { s.loseReplicas(n, "disk_lost") })
	}
}

// sortedRunningMaps returns the running map tasks in (job, index) order so
// fault handling iterates deterministically.
func sortedRunningMaps(running map[*job.MapTask]*mapRun) []*job.MapTask {
	out := make([]*job.MapTask, 0, len(running))
	for m := range running {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Job.ID != out[b].Job.ID {
			return out[a].Job.ID < out[b].Job.ID
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// sortedRunningReds returns the running reduce tasks in (job, index) order.
func sortedRunningReds(running map[*job.ReduceTask]*reduceRun) []*job.ReduceTask {
	out := make([]*job.ReduceTask, 0, len(running))
	for r := range running {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Job.ID != out[b].Job.ID {
			return out[a].Job.ID < out[b].Job.ID
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// crashNode kills node d physically. Attempts on d die without releasing
// their slots (the JobTracker still believes they run; the counts are
// parked in heldMap/heldRed until detection). Attempts elsewhere that were
// streaming data from d lose those transfers: map-input fetches restart
// from another replica, shuffle fetches re-queue until detection clears
// them. Finally the heartbeat-expiry timer is armed.
func (s *Simulation) crashNode(d topology.NodeID) {
	if s.crashed[d] {
		return
	}
	s.crashed[d] = true
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.NodeFail, Node: int(d)})
	}

	for _, m := range sortedRunningMaps(s.runningMaps) {
		run := s.runningMaps[m]
		srcLost := false
		for _, a := range run.attempts {
			if a.dead {
				continue
			}
			if a.node == d {
				s.killAttempt(a, false)
				s.heldMap[d]++
				continue
			}
			if a.fetchSrc == d && !a.fetchDone {
				if !s.restartMapFetch(m, run, a) {
					srcLost = true
				}
			}
		}
		// Only revert when a live tracker reported the loss; a task whose
		// every attempt sat on d is reverted at detection instead.
		if srcLost && run.liveAttempts() == 0 {
			s.revertMapTask(m, d, "source_lost")
		}
	}

	for _, r := range sortedRunningReds(s.runningReds) {
		for _, att := range s.runningReds[r].attempts {
			if att.dead {
				continue
			}
			if att.node == d {
				s.killRedAttempt(att, false)
				s.heldRed[d]++
				continue
			}
			s.reclaimCrashedFetches(att, d)
		}
	}

	s.eng.After(s.hbExpiry, func() { s.detectNode(d) })
}

// restartMapFetch re-streams a map attempt's input from the nearest live
// replica after its source crashed. When no replica survives the attempt
// is killed (reported by false); compute keeps its original schedule
// otherwise — the re-read overlaps it just like the first read did.
func (s *Simulation) restartMapFetch(m *job.MapTask, run *mapRun, att *mapAttempt) bool {
	if att.fetch != nil && !att.fetch.Finished() {
		s.topo.Net().Cancel(att.fetch)
		s.topo.Net().Release(att.fetch)
		att.fetch = nil
	}
	src, ok := s.aliveNearest(m.Block, att.node)
	if !ok {
		s.killAttempt(att, !s.crashed[att.node])
		s.sampleUtil()
		return false
	}
	if src != att.node {
		s.mapRemoteBytes += m.Size
	}
	att.fetchSrc = src
	att.fetch = s.topo.Transfer(src, att.node, m.Size, att.fetchFn)
	return true
}

// reclaimCrashedFetches aborts a reduce attempt's in-flight fetches from
// the crashed node d and re-queues their bytes under source d. pumpShuffle
// skips crashed sources, so the bytes stay pending (blocking the compute
// phase) until detection drops the bucket and re-executes the maps.
func (s *Simulation) reclaimCrashedFetches(att *redAttempt, d topology.NodeID) {
	var doomed []*topology.Flow
	for flow, fl := range att.flights {
		if fl.src == d {
			doomed = append(doomed, flow)
		}
	}
	if len(doomed) == 0 {
		return
	}
	sort.Slice(doomed, func(a, b int) bool {
		return att.flights[doomed[a]].bytes < att.flights[doomed[b]].bytes
	})
	for _, flow := range doomed {
		fl := att.flights[flow]
		s.topo.Net().Cancel(flow)
		s.topo.Net().Release(flow)
		delete(att.flights, flow)
		b, ok := att.pendingSrc[d]
		if !ok {
			b = s.newBucket()
			att.pendingSrc[d] = b
			att.queue = append(att.queue, d)
		}
		b.bytes += fl.bytes
		b.maps = append(b.maps, fl.maps...)
		s.releaseFlight(fl)
	}
}

// detectNode is the JobTracker's reaction once node d's heartbeats have
// been silent for the expiry window.
func (s *Simulation) detectNode(d topology.NodeID) {
	if s.dead[d] {
		return
	}
	s.dead[d] = true
	if s.obs.Enabled() {
		e := obs.Event{T: float64(s.eng.Now()), Type: obs.FailureDetected, Node: int(d)}
		e.Dur = s.hbExpiry
		s.obs.Emit(e)
	}

	// Reclaim the slots of attempts that died with the node.
	node := s.state.Node(d)
	for i := 0; i < s.heldMap[d]; i++ {
		node.ReleaseMap()
	}
	for i := 0; i < s.heldRed[d]; i++ {
		node.ReleaseReduce()
	}
	delete(s.heldMap, d)
	delete(s.heldRed, d)

	// Revert running map tasks whose every attempt died on d.
	for _, m := range sortedRunningMaps(s.runningMaps) {
		if s.runningMaps[m].liveAttempts() == 0 {
			s.revertMapTask(m, d, "attempt_lost")
		}
	}

	// Reduces: drop shuffle state sourced from d (the contributing maps
	// are re-executed below), revert tasks with no surviving attempt, and
	// re-point tasks whose canonical attempt died while a backup lives.
	for _, r := range sortedRunningReds(s.runningReds) {
		run := s.runningReds[r]
		for _, att := range run.attempts {
			if att.dead {
				continue
			}
			if b, ok := att.pendingSrc[d]; ok {
				delete(att.pendingSrc, d)
				for _, m := range b.maps {
					delete(att.got, m)
				}
				for i, src := range att.queue {
					if src == d {
						att.queue = append(att.queue[:i], att.queue[i+1:]...)
						break
					}
				}
			}
		}
		if run.liveAttempts() == 0 {
			s.revertReduceTask(r, run, d, "host_failed")
			continue
		}
		if r.Node == d {
			s.repointReduce(r, run)
		}
	}

	// Re-execute completed maps whose output lived on d and is still
	// needed by an unfinished reduce.
	for _, j := range s.active {
		for _, m := range j.Maps {
			if m.State != job.TaskDone || m.Node != d {
				continue
			}
			if !s.outputStillNeeded(j, m) {
				continue
			}
			m.State = job.TaskPending
			m.Progress = 0
			m.Node = -1
			j.DoneMaps--
			s.relaunchedMaps++
			if s.obs.Enabled() {
				e := s.taskEvent(obs.TaskRelaunch, d, m.Job, "map", m.Index)
				e.Reason = "output_lost"
				s.obs.Emit(e)
			}
		}
	}

	// Take the node out of the cluster and prune its block replicas; jobs
	// whose pending input lost its last replica fail here.
	node.SetOffline(true)
	s.sampleUtil()
	s.loseReplicas(d, "node_dead")
}

// revertMapTask returns a running map task to the pending pool after its
// attempts died.
func (s *Simulation) revertMapTask(m *job.MapTask, at topology.NodeID, reason string) {
	if run := s.runningMaps[m]; run != nil {
		delete(s.runningMaps, m)
		s.releaseMapRun(run)
	}
	m.State = job.TaskPending
	m.Progress = 0
	m.Node = -1
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskRelaunch, at, m.Job, "map", m.Index)
		e.Reason = reason
		s.obs.Emit(e)
	}
}

// revertReduceTask returns a running reduce task to the pending pool,
// killing any attempt still alive.
func (s *Simulation) revertReduceTask(r *job.ReduceTask, run *reduceRun, at topology.NodeID, reason string) {
	for _, att := range run.attempts {
		if !att.dead {
			s.killRedAttempt(att, !s.crashed[att.node])
		}
	}
	delete(s.runningReds, r)
	s.releaseReduceRun(run)
	r.State = job.TaskPending
	r.Node = -1
	r.ShuffledBytes = 0
	r.Locality = job.LocalityUnknown
	s.relaunchedReduces++
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskRelaunch, at, r.Job, "reduce", r.Index)
		e.Reason = reason
		s.obs.Emit(e)
	}
}

// repointReduce re-targets a reduce task's reported placement at its first
// surviving attempt (after the canonical one died).
func (s *Simulation) repointReduce(r *job.ReduceTask, run *reduceRun) {
	for _, att := range run.attempts {
		if !att.dead {
			r.Node = att.node
			r.Locality = att.locality
			r.ShuffledBytes = att.shuffled
			return
		}
	}
}

// killRedAttempt cancels a reduce attempt and releases its slot (when its
// node is still alive; crashed nodes release bookkeeping at detection).
func (s *Simulation) killRedAttempt(att *redAttempt, releaseSlot bool) {
	if att.dead {
		return
	}
	att.dead = true
	var flows []*topology.Flow
	for flow := range att.flights {
		flows = append(flows, flow)
	}
	sort.Slice(flows, func(a, b int) bool {
		fa, fb := att.flights[flows[a]], att.flights[flows[b]]
		if fa.bytes != fb.bytes {
			return fa.bytes < fb.bytes
		}
		return fa.src < fb.src
	})
	for _, flow := range flows {
		fl := att.flights[flow]
		s.topo.Net().Cancel(flow)
		s.topo.Net().Release(flow)
		delete(att.flights, flow)
		s.releaseFlight(fl)
	}
	if att.computeEv != nil {
		att.computeEv.Cancel()
		s.eng.Remove(att.computeEv)
		att.computeEv = nil
	}
	if releaseSlot {
		s.state.Node(att.node).ReleaseReduce()
	}
}

// failMapAttempt is a scripted transient failure of one map attempt: the
// attempt dies, the task reverts when no attempt survives, and the retry
// and blacklist tallies advance.
func (s *Simulation) failMapAttempt(m *job.MapTask, run *mapRun, att *mapAttempt) {
	if att.dead || m.State != job.TaskRunning || s.runningMaps[m] != run {
		return
	}
	// Reverting the task recycles the run and its attempts, so att must
	// not be read past that point.
	node := att.node
	s.killAttempt(att, !s.crashed[node])
	s.sampleUtil()
	s.attemptFailures++
	if s.obs.Enabled() {
		s.obs.Emit(s.taskEvent(obs.AttemptFail, node, m.Job, "map", m.Index))
	}
	if run.liveAttempts() == 0 {
		s.revertMapTask(m, node, "attempt_fail")
	}
	s.noteNodeFailure(m.Job, node)
	s.mapFails[m]++
	if s.mapFails[m] >= s.cfg.Faults.MaxAttempts() {
		s.failJob(m.Job, "map_attempts_exhausted")
	}
}

// failReduceAttempt is the reduce-side transient failure, scheduled at a
// fraction of the attempt's compute phase.
func (s *Simulation) failReduceAttempt(r *job.ReduceTask, run *reduceRun, att *redAttempt) {
	if att.dead || s.runningReds[r] != run {
		return
	}
	// Reverting the task recycles the run and its attempts, so att must
	// not be read past that point.
	node := att.node
	s.killRedAttempt(att, !s.crashed[node])
	s.sampleUtil()
	s.attemptFailures++
	if s.obs.Enabled() {
		s.obs.Emit(s.taskEvent(obs.AttemptFail, node, r.Job, "reduce", r.Index))
	}
	if run.liveAttempts() == 0 {
		s.revertReduceTask(r, run, node, "attempt_fail")
	} else if r.Node == node {
		s.repointReduce(r, run)
	}
	s.noteNodeFailure(r.Job, node)
	s.redFails[r]++
	if s.redFails[r] >= s.cfg.Faults.MaxAttempts() {
		s.failJob(r.Job, "reduce_attempts_exhausted")
	}
}

// noteNodeFailure tallies an attempt failure against (job, node) and
// blacklists the node at the threshold. A safety valve refuses to
// blacklist half the cluster or more, so a pathological fault plan cannot
// wedge the whole simulation. Blacklist entries are reference-counted by
// the jobs whose tallies crossed the threshold: the last holder's
// teardown releases the node (releaseJobFaultState), so a long-horizon
// arrival stream cannot accumulate stale entries until the half-cluster
// cap starts refusing blacklists of genuinely faulty nodes.
func (s *Simulation) noteNodeFailure(j *job.Job, n topology.NodeID) {
	key := failKey{job: j.ID, node: n}
	s.nodeFails[key]++
	threshold := s.cfg.Faults.BlacklistThreshold()
	if s.nodeFails[key] < threshold {
		return
	}
	if s.blacklist[n] {
		if s.nodeFails[key] == threshold {
			s.blacklistHolds[n]++ // this job now holds the entry too
		}
		return
	}
	if 2*(len(s.blacklist)+1) >= s.topo.Size() {
		return
	}
	s.blacklist[n] = true
	s.everBlacklisted++
	// Every active job already past the threshold holds the entry — not
	// just j: their tallies may have crossed while the cap refused the
	// blacklist, and they must keep the node out until they finish.
	holds := 0
	for _, a := range s.active {
		if s.nodeFails[failKey{job: a.ID, node: n}] >= threshold {
			holds++
		}
	}
	if holds == 0 {
		holds = 1 // j left the active set mid-teardown; count it anyway
	}
	s.blacklistHolds[n] = holds
	s.state.Node(n).SetBlacklisted(true)
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.NodeBlacklist, Node: int(n), Job: j.Spec.Name})
	}
}

// releaseJobFaultState frees the per-job fault bookkeeping once a job
// leaves the system for good: retry tallies, speculation stats, and the
// job's holds on blacklisted nodes — the last holder releases the node
// back into the candidate sets. Nodes are scanned by ID so the release
// order is deterministic.
func (s *Simulation) releaseJobFaultState(j *job.Job) {
	for _, m := range j.Maps {
		delete(s.mapFails, m)
	}
	for _, r := range j.Reduces {
		delete(s.redFails, r)
	}
	delete(s.stats, j.ID)
	threshold := s.cfg.Faults.BlacklistThreshold()
	for i := 0; i < s.topo.Size(); i++ {
		n := topology.NodeID(i)
		key := failKey{job: j.ID, node: n}
		count, ok := s.nodeFails[key]
		if !ok {
			continue
		}
		delete(s.nodeFails, key)
		if count < threshold || !s.blacklist[n] {
			continue
		}
		s.blacklistHolds[n]--
		if s.blacklistHolds[n] > 0 {
			continue
		}
		delete(s.blacklistHolds, n)
		delete(s.blacklist, n)
		s.state.Node(n).SetBlacklisted(false)
		if s.obs.Enabled() {
			s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.NodeUnblacklist, Node: int(n), Job: j.Spec.Name})
		}
	}
}

// failJob terminates j unsuccessfully: running tasks are torn down,
// pending work is abandoned, and the job leaves the active set with
// Failed set and Finished recording the failure time.
func (s *Simulation) failJob(j *job.Job, reason string) {
	if j.Failed || j.Done() {
		return
	}
	j.Failed = true
	j.Finished = s.eng.Now()
	for _, m := range j.Maps {
		if m.State != job.TaskRunning {
			continue
		}
		if run := s.runningMaps[m]; run != nil {
			for _, a := range run.attempts {
				if !a.dead {
					s.killAttempt(a, !s.crashed[a.node])
				}
			}
			delete(s.runningMaps, m)
			s.releaseMapRun(run)
		}
		m.State = job.TaskPending
		m.Progress = 0
		m.Node = -1
	}
	for _, r := range j.Reduces {
		if r.State != job.TaskRunning {
			continue
		}
		if run := s.runningReds[r]; run != nil {
			for _, a := range run.attempts {
				if !a.dead {
					s.killRedAttempt(a, !s.crashed[a.node])
				}
			}
			delete(s.runningReds, r)
			s.releaseReduceRun(run)
		}
		r.State = job.TaskPending
		r.Node = -1
		r.ShuffledBytes = 0
		r.Locality = job.LocalityUnknown
	}
	s.sampleUtil()
	for i, a := range s.active {
		if a == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	if s.obs.Enabled() {
		e := obs.Event{T: float64(s.eng.Now()), Type: obs.JobFail, Node: -1, Job: j.Spec.Name}
		e.Reason = reason
		e.Dur = float64(j.Finished - j.Submitted)
		s.obs.Emit(e)
	}
	s.onJobEnd(j)
}

// applySlowdown sets node n's compute rate to base/factor (factor 1
// restores the base) and stretches or shrinks the remaining compute time
// of every attempt running there mid-flight. Factors are absolute against
// the node's base speed, so overlapping slowdowns do not compound.
func (s *Simulation) applySlowdown(n topology.NodeID, factor float64) {
	if s.crashed[n] {
		return // a dead node cannot slow down further
	}
	old := s.speedOf[n]
	next := s.baseSpeed[n] / factor
	if next == old {
		return
	}
	s.speedOf[n] = next
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.NodeSlow, Node: int(n), Factor: factor})
	}
	now := s.eng.Now()
	ratio := old / next // > 1: remaining work takes longer

	for _, m := range sortedRunningMaps(s.runningMaps) {
		run := s.runningMaps[m]
		for _, a := range run.attempts {
			if a.dead || a.node != n || a.computeDone || a.computeEv == nil {
				continue
			}
			elapsed := float64(now - a.computeStart)
			remaining := a.computeDur - elapsed
			if remaining <= 0 {
				continue
			}
			a.computeEv.Cancel()
			s.eng.Remove(a.computeEv)
			remaining *= ratio
			a.computeDur = elapsed + remaining
			a.computeEv = s.eng.After(remaining, a.computeFn)
		}
	}
	for _, r := range sortedRunningReds(s.runningReds) {
		run := s.runningReds[r]
		for _, a := range run.attempts {
			if a.dead || a.node != n || !a.computing || a.computeEv == nil {
				continue
			}
			elapsed := float64(now - a.computeStart)
			remaining := a.computeDur - elapsed
			if remaining <= 0 {
				continue
			}
			a.computeEv.Cancel()
			s.eng.Remove(a.computeEv)
			remaining *= ratio
			a.computeDur = elapsed + remaining
			if a.failFrac > 0 {
				// The pending event was the scripted mid-compute failure at
				// failFrac × dur; keep it at the same progress point.
				fireIn := a.failFrac*a.computeDur - elapsed
				if fireIn < 0 {
					fireIn = 0
				}
				a.computeEv = s.eng.After(fireIn, a.failCFn)
			} else {
				a.computeEv = s.eng.After(remaining, a.finishFn)
			}
		}
	}
}

// degradeLink scales node n's access-link capacity to factor × nominal
// (factor 1 restores it). The flow network re-shares every flow and bumps
// its epoch, so network-condition cost caches invalidate exactly.
func (s *Simulation) degradeLink(n topology.NodeID, factor float64) {
	s.topo.SetHostLinkFactor(n, factor)
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.LinkDegrade, Node: int(n), Factor: factor})
	}
}

// loseReplicas drops every block replica stored on node n and fails any
// active job left with a pending map whose block has no replica anywhere.
func (s *Simulation) loseReplicas(n topology.NodeID, reason string) {
	lost := s.store.RemoveNodeReplicas(n)
	if lost == 0 {
		return
	}
	if s.obs.Enabled() {
		e := obs.Event{T: float64(s.eng.Now()), Type: obs.ReplicaLoss, Node: int(n)}
		e.Reason = reason
		s.obs.Emit(e)
	}
	s.checkInputViability()
}

// checkInputViability fails every active job holding a pending map whose
// block lost its last replica — such a map can never be scheduled again,
// so waiting for the horizon would only mask the loss.
func (s *Simulation) checkInputViability() {
	active := append([]*job.Job(nil), s.active...)
	for _, j := range active {
		for _, m := range j.Maps {
			if m.State != job.TaskPending {
				continue
			}
			if len(s.store.Replicas(m.Block)) == 0 {
				s.failJob(j, "input_lost")
				break
			}
		}
	}
}
