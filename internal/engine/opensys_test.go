package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mapsched/internal/faults"
	"mapsched/internal/obs"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// toEngineArrivals converts a workload arrival stream to the engine's
// representation (the same conversion the façade performs).
func toEngineArrivals(arr []workload.Arrival) []Arrival {
	out := make([]Arrival, len(arr))
	for i, a := range arr {
		out[i] = Arrival{At: sim.Time(a.At), Tenant: a.Tenant, Spec: a.Spec}
	}
	return out
}

// decisionJSONL runs the simulation with a JSONL sink attached and
// returns the stream minus flow_* and open-system bookkeeping events —
// the closed-system-comparable decision stream.
func decisionJSONL(t *testing.T, s *Simulation) (string, *Result) {
	t.Helper()
	var buf bytes.Buffer
	log := obs.NewJSONL(&buf)
	if err := s.Attach(log); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, line := range strings.SplitAfter(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(head.Type, "flow_"):
			continue
		case head.Type == "job_arrival" || head.Type == "job_admit" ||
			head.Type == "job_reject" || head.Type == "job_preempt" ||
			head.Type == "node_unblacklist":
			continue
		}
		out.WriteString(line)
	}
	return out.String(), res
}

// TestOpenArrivalsT0MatchFixedBatch is the engine-level nesting proof:
// a single-tenant arrival stream with every arrival at t = 0 produces
// the exact event stream and result of the fixed-batch path submitting
// the same specs at t = 0.
func TestOpenArrivalsT0MatchFixedBatch(t *testing.T) {
	o := workload.Options{Scale: 40, Replication: 2, SubmitStagger: 0}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Wordcount, InputGB: 10, Maps: 88, Reduces: 157},
		{JobID: "11", Kind: workload.Terasort, InputGB: 10, Maps: 143, Reduces: 190},
		{JobID: "21", Kind: workload.Grep, InputGB: 10, Maps: 87, Reduces: 148},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}

	fixed, err := New(tinyConfig(), specs, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	fixedStream, fixedRes := decisionJSONL(t, fixed)

	cfg := tinyConfig()
	arrivals := make([]Arrival, len(specs))
	for i, sp := range specs {
		arrivals[i] = Arrival{At: 0, Tenant: "default", Spec: sp}
	}
	cfg.Open = OpenSystem{Arrivals: arrivals}
	open, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	openStream, openRes := decisionJSONL(t, open)

	if fixedStream != openStream {
		t.Fatal("t=0 arrival stream diverged from the fixed-batch decision stream")
	}
	if fixedRes.Makespan != openRes.Makespan {
		t.Fatalf("makespan: fixed %v, open %v", fixedRes.Makespan, openRes.Makespan)
	}
	if len(fixedRes.Jobs) != len(openRes.Jobs) {
		t.Fatalf("jobs: fixed %d, open %d", len(fixedRes.Jobs), len(openRes.Jobs))
	}
	for i := range fixedRes.Jobs {
		if fixedRes.Jobs[i] != openRes.Jobs[i] {
			t.Fatalf("job %d differs:\nfixed: %+v\nopen:  %+v",
				i, fixedRes.Jobs[i], openRes.Jobs[i])
		}
	}
	if fixedRes.Events != openRes.Events {
		// The open path fires one arrival event per job where the fixed
		// path fires one submission event — counts must still agree.
		t.Fatalf("event counts: fixed %d, open %d", fixedRes.Events, openRes.Events)
	}
}

// longStream builds a 500-job single-tenant scripted arrival stream of
// small jobs, the long-horizon workload the state-release regression
// tests run under.
func longStream(t *testing.T, n int, gap float64) []Arrival {
	t.Helper()
	o := workload.Options{Scale: 4, Replication: 2, SubmitStagger: 0}
	plan := workload.ArrivalPlan{}
	for i := 0; i < n; i++ {
		plan.Trace = append(plan.Trace, workload.TraceArrival{
			At: float64(i) * gap,
			Def: workload.JobDef{
				JobID: fmt.Sprintf("%03d", i), Kind: workload.Wordcount,
				InputGB: 1, Maps: 4, Reduces: 2,
			},
		})
	}
	arr, err := workload.BuildArrivals(plan, nil, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	return toEngineArrivals(arr)
}

// TestBlacklistReleasedAcrossArrivalStream is the regression test for
// the unbounded blacklist accumulation bug: per-(job, node) failure
// tallies and the blacklist entries they justified used to survive job
// teardown forever, so a long arrival stream eventually tripped the
// half-cluster cap with entries belonging to long-finished jobs. After
// a 500-job stream under an aggressive failure plan, every per-job
// tally must be gone and every blacklist entry released.
func TestBlacklistReleasedAcrossArrivalStream(t *testing.T) {
	cfg := tinyConfig()
	cfg.Open = OpenSystem{Arrivals: longStream(t, 500, 3)}
	cfg.Faults = faults.Plan{TaskFailProb: 0.25, BlacklistAfter: 2, MaxTaskAttempts: 8}
	s, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs unfinished", res.Unfinished)
	}
	if res.BlacklistedNodes == 0 {
		t.Fatal("no node was ever blacklisted; the plan is too gentle to exercise the release path")
	}
	if n := len(s.nodeFails); n != 0 {
		t.Errorf("%d per-(job,node) failure tallies leaked", n)
	}
	if n := len(s.blacklist); n != 0 {
		t.Errorf("%d blacklist entries leaked past their jobs", n)
	}
	if n := len(s.blacklistHolds); n != 0 {
		t.Errorf("%d blacklist hold counts leaked", n)
	}
	if n := len(s.mapFails); n != 0 {
		t.Errorf("%d map retry tallies leaked", n)
	}
	if n := len(s.redFails); n != 0 {
		t.Errorf("%d reduce retry tallies leaked", n)
	}
	if n := len(s.stats); n != 0 {
		t.Errorf("%d speculation stats leaked", n)
	}
	if n := len(s.openJobs); n != 0 {
		t.Errorf("%d open-job records leaked", n)
	}
}

// TestUnblacklistRestoresCandidacy checks the release is visible to the
// scheduler: once the last holding job ends, the node's Blacklisted flag
// is off and a node_unblacklist event was emitted for it.
func TestUnblacklistRestoresCandidacy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Open = OpenSystem{Arrivals: longStream(t, 200, 3)}
	cfg.Faults = faults.Plan{TaskFailProb: 0.35, BlacklistAfter: 2, MaxTaskAttempts: 10}
	s, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	blk, unblk := 0, 0
	if err := s.Attach(obs.Func(func(e obs.Event) {
		switch e.Type {
		case obs.NodeBlacklist:
			blk++
		case obs.NodeUnblacklist:
			unblk++
		}
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if blk == 0 {
		t.Fatal("no blacklisting occurred")
	}
	if blk != unblk {
		t.Fatalf("%d blacklist events but %d releases", blk, unblk)
	}
	for i := 0; i < s.topo.Size(); i++ {
		if s.state.Node(topology.NodeID(i)).Blacklisted() {
			t.Fatalf("node %d still flagged blacklisted after the run", i)
		}
	}
}

// TestOpenSystemPoolReset verifies the pooled-record reset discipline
// under mid-run injection and preemption: after an open-system run in
// which jobs were admitted, preempted (tearing attempts down mid-life)
// and re-admitted across generations, every free-listed record must be
// fully reset per the pool.go contract.
func TestOpenSystemPoolReset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Open = OpenSystem{
		Arrivals:  longStream(t, 80, 2),
		Tenants:   []TenantPolicy{{Name: "default", Weight: 1}},
		MaxActive: 3,
		Preempt:   true,
	}
	cfg.Faults = faults.Plan{TaskFailProb: 0.1, BlacklistAfter: 3, MaxTaskAttempts: 8}
	s, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, att := range s.freeMapAtts {
		if att.m != nil || att.run != nil || att.fetch != nil ||
			att.computeEv != nil || att.failEv != nil || att.dead ||
			att.fetchDone || att.computeDone || att.computeDur != 0 {
			t.Fatalf("pooled mapAttempt %d not reset: %+v", i, att)
		}
		if att.fetchFn == nil || att.computeFn == nil || att.failFn == nil {
			t.Fatalf("pooled mapAttempt %d lost its bound callbacks", i)
		}
	}
	for i, att := range s.freeRedAtts {
		if att.r != nil || att.run != nil || att.computeEv != nil || att.dead ||
			att.computing || att.shuffled != 0 || att.failFrac != 0 ||
			len(att.pendingSrc) != 0 || len(att.flights) != 0 ||
			len(att.got) != 0 || len(att.queue) != 0 {
			t.Fatalf("pooled redAttempt %d not reset: %+v", i, att)
		}
		if att.finishFn == nil || att.failCFn == nil {
			t.Fatalf("pooled redAttempt %d lost its bound callbacks", i)
		}
	}
	for i, run := range s.freeMapRuns {
		if len(run.attempts) != 0 {
			t.Fatalf("pooled mapRun %d kept %d attempts", i, len(run.attempts))
		}
	}
	for i, run := range s.freeRedRuns {
		if len(run.attempts) != 0 {
			t.Fatalf("pooled reduceRun %d kept %d attempts", i, len(run.attempts))
		}
	}
	for i, b := range s.freeBuckets {
		if b.bytes != 0 || len(b.maps) != 0 {
			t.Fatalf("pooled bucket %d not reset: %+v", i, b)
		}
	}
}

// TestOpenSystemPoolStressRace runs several independent open-system
// simulations concurrently. Simulations share no state, so the race
// detector (make race) flags any pooled record or free list that
// accidentally escapes its owning simulation.
func TestOpenSystemPoolStressRace(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := tinyConfig()
			cfg.Seed = int64(g + 1)
			cfg.Open = OpenSystem{
				Arrivals:  longStream(t, 40, 2),
				MaxActive: 3,
				Preempt:   true,
			}
			cfg.Faults = faults.Plan{TaskFailProb: 0.15, BlacklistAfter: 2, MaxTaskAttempts: 8}
			s, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
			if err != nil {
				errs[g] = err
				return
			}
			_, errs[g] = s.Run()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestOpenSystemValidation exercises the config-domain errors.
func TestOpenSystemValidation(t *testing.T) {
	base := func() Config {
		cfg := tinyConfig()
		cfg.Open = OpenSystem{Arrivals: longStream(t, 2, 1)}
		return cfg
	}
	cases := []struct {
		name   string
		break_ func(*Config)
	}{
		{"preempt without cap", func(c *Config) { c.Open.Preempt = true }},
		{"negative warmup", func(c *Config) { c.Open.Warmup = -1 }},
		{"negative maxactive", func(c *Config) { c.Open.MaxActive = -2 }},
		{"unsorted arrivals", func(c *Config) {
			c.Open.Arrivals[0].At = c.Open.Arrivals[1].At + 5
		}},
		{"empty tenant name", func(c *Config) {
			c.Open.Tenants = []TenantPolicy{{Name: ""}}
		}},
		{"duplicate tenant", func(c *Config) {
			c.Open.Tenants = []TenantPolicy{{Name: "a"}, {Name: "a"}}
		}},
		{"tenants without arrivals", func(c *Config) {
			c.Open.Arrivals = nil
			c.Open.Tenants = []TenantPolicy{{Name: "a"}}
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.break_(&cfg)
		if _, err := New(cfg, nil, sched.NewProbabilistic(sched.DefaultProbabilisticConfig())); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
