package engine

import (
	"math"
	"testing"

	"mapsched/internal/job"
	"mapsched/internal/sched"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// faultSpecs builds a workload with enough tasks for failures and
// speculation to have something to hit, at replication 3 so two node
// failures can never orphan a block.
func faultSpecs(t *testing.T, jitter float64) []job.Spec {
	t.Helper()
	o := workload.Options{Scale: 20, Replication: 3, SubmitStagger: 1}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Wordcount, InputGB: 20, Maps: 160, Reduces: 169},
		{JobID: "11", Kind: workload.Terasort, InputGB: 20, Maps: 199, Reduces: 186},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		specs[i].Profile.ComputeJitter = jitter
	}
	return specs
}

func TestNodeFailureRecovery(t *testing.T) {
	cfg := tinyConfig() // 2 racks x 4 nodes
	cfg.Failures = []NodeFailure{{Node: 1, At: 8}, {Node: 5, At: 20}}
	s, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("jobs unfinished despite surviving replicas: %s", res)
	}
	// Shuffle conservation holds across re-executions.
	for _, j := range s.Jobs() {
		for _, r := range j.Reduces {
			if math.Abs(r.ShuffledBytes-r.ExpectedInput()) > 1 {
				t.Fatalf("reduce %d of %s shuffled %v, want %v",
					r.Index, j.Spec.Name, r.ShuffledBytes, r.ExpectedInput())
			}
			if r.State != job.TaskDone {
				t.Fatalf("reduce %d of %s not done", r.Index, j.Spec.Name)
			}
		}
	}
	// Dead nodes hold no slots.
	for _, n := range []topology.NodeID{1, 5} {
		node := s.state.Node(n)
		if !node.Offline() {
			t.Fatalf("node %d not offline", n)
		}
		if node.UsedMapSlots() != 0 || node.UsedReduceSlots() != 0 {
			t.Fatalf("node %d leaked slots after failure", n)
		}
	}
}

func TestNodeFailureBeforeAnyWork(t *testing.T) {
	cfg := tinyConfig()
	cfg.Failures = []NodeFailure{{Node: 0, At: 0}}
	s, err := New(cfg, faultSpecs(t, 0.1), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("failure at t=0 wedged the run: %s", res)
	}
}

func TestFailureValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Failures = []NodeFailure{{Node: 99, At: 1}}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range failure node accepted")
	}
	cfg = tinyConfig()
	cfg.Failures = []NodeFailure{{Node: 0, At: -1}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative failure time accepted")
	}
}

func TestFailureRelaunchAccounting(t *testing.T) {
	// Fail a node mid-run (t=8 sits inside the map/shuffle phase for every
	// seed; later instants can fall after the makespan): at least some
	// completed maps or running reduces should be relaunched across seeds.
	relaunches := 0
	for seed := int64(1); seed <= 3; seed++ {
		cfg := tinyConfig()
		cfg.Seed = seed
		cfg.Failures = []NodeFailure{{Node: 2, At: 8}}
		s, err := New(cfg, faultSpecs(t, 0.2), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("seed %d: unfinished", seed)
		}
		relaunches += res.RelaunchedMaps + res.RelaunchedReduces
	}
	if relaunches == 0 {
		t.Fatal("mid-run failures never forced a relaunch across 3 seeds")
	}
}

func TestSpeculationLaunchesAndWins(t *testing.T) {
	cfg := tinyConfig()
	cfg.Speculation = true
	cfg.SpecSlowdown = 1.25
	cfg.SpecMinCompleted = 2
	cfg.CrossTraffic = 12 // congested paths create genuine stragglers
	s, err := New(cfg, faultSpecs(t, 0.45), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished with speculation: %s", res)
	}
	if res.Speculated == 0 {
		t.Fatal("speculation never fired despite heavy jitter and congestion")
	}
	if res.SpecWins > res.Speculated {
		t.Fatalf("wins %d exceed launches %d", res.SpecWins, res.Speculated)
	}
	// Conservation still holds: backups must not double-deliver output.
	for _, j := range s.Jobs() {
		for _, r := range j.Reduces {
			if math.Abs(r.ShuffledBytes-r.ExpectedInput()) > 1 {
				t.Fatalf("speculation broke shuffle conservation for %s/%d",
					j.Spec.Name, r.Index)
			}
		}
	}
	// Slot accounting balanced.
	um, ur := s.state.UsedSlots()
	if um != 0 || ur != 0 {
		t.Fatalf("speculation leaked slots: %d/%d", um, ur)
	}
}

func TestSpeculationDeterminism(t *testing.T) {
	run := func() (float64, int) {
		cfg := tinyConfig()
		cfg.Speculation = true
		cfg.SpecSlowdown = 1.3
		cfg.SpecMinCompleted = 2
		cfg.Seed = 11
		s, err := New(cfg, faultSpecs(t, 0.4), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan, res.Speculated
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 || s1 != s2 {
		t.Fatalf("speculation broke determinism: (%v,%d) vs (%v,%d)", m1, s1, m2, s2)
	}
}

func TestSpeculationValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Speculation = true
	cfg.SpecSlowdown = 1.0
	if err := cfg.Validate(); err == nil {
		t.Error("SpecSlowdown <= 1 accepted")
	}
	cfg = tinyConfig()
	cfg.Speculation = true
	cfg.SpecSlowdown = 2
	cfg.SpecMinCompleted = 0
	if err := cfg.Validate(); err == nil {
		t.Error("SpecMinCompleted < 1 accepted")
	}
}

func TestSpeculationAndFailureTogether(t *testing.T) {
	cfg := tinyConfig()
	cfg.Speculation = true
	cfg.SpecSlowdown = 1.3
	cfg.SpecMinCompleted = 2
	cfg.Failures = []NodeFailure{{Node: 3, At: 12}}
	s, err := New(cfg, faultSpecs(t, 0.4), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("combined speculation+failure run unfinished: %s", res)
	}
	for _, j := range s.Jobs() {
		for _, r := range j.Reduces {
			if math.Abs(r.ShuffledBytes-r.ExpectedInput()) > 1 {
				t.Fatalf("conservation violated for %s/%d", j.Spec.Name, r.Index)
			}
		}
	}
}

func TestHeterogeneousNodesSlowTheRun(t *testing.T) {
	run := func(frac float64) float64 {
		cfg := tinyConfig()
		cfg.SlowNodeFraction = frac
		cfg.SlowFactor = 4
		s, err := New(cfg, faultSpecs(t, 0.1), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatal("unfinished")
		}
		return res.Makespan
	}
	uniform, het := run(0), run(0.4)
	if het <= uniform {
		t.Fatalf("slow nodes did not stretch the makespan: %v vs %v", het, uniform)
	}
}

func TestSpeculationHelpsOnHeterogeneousCluster(t *testing.T) {
	run := func(spec bool) float64 {
		cfg := tinyConfig()
		cfg.SlowNodeFraction = 0.25
		cfg.SlowFactor = 5
		cfg.Speculation = spec
		cfg.SpecSlowdown = 1.4
		cfg.SpecMinCompleted = 2
		s, err := New(cfg, faultSpecs(t, 0.15), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatal("unfinished")
		}
		if spec && res.Speculated == 0 {
			t.Fatal("speculation never fired on a heterogeneous cluster")
		}
		return res.Makespan
	}
	without, with := run(false), run(true)
	if with > without*1.05 {
		t.Fatalf("speculation made things worse: %v vs %v", with, without)
	}
}

func TestHeterogeneityValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.SlowNodeFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	cfg = tinyConfig()
	cfg.SlowNodeFraction = 0.5
	cfg.SlowFactor = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("speedup factor accepted as slowdown")
	}
}
