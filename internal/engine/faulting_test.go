package engine

import (
	"math"
	"testing"

	"mapsched/internal/faults"
	"mapsched/internal/obs"
	"mapsched/internal/sched"
)

type eventTap struct{ events []obs.Event }

func (t *eventTap) Observe(e obs.Event) { t.events = append(t.events, e) }

func (t *eventTap) ofType(k obs.Type) []obs.Event {
	var out []obs.Event
	for _, e := range t.events {
		if e.Type == k {
			out = append(out, e)
		}
	}
	return out
}

// TestDetectionLag: a crashed node is declared dead exactly one
// heartbeat-expiry window after the crash instant, not immediately.
func TestDetectionLag(t *testing.T) {
	cfg := tinyConfig()
	cfg.Faults.Crashes = []faults.NodeCrash{{Node: 1, At: 8}}
	cfg.HeartbeatExpiry = 5
	s, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tap := &eventTap{}
	if err := s.Attach(tap); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("jobs unfinished: %s", res)
	}
	crashes := tap.ofType(obs.NodeFail)
	if len(crashes) != 1 || crashes[0].T != 8 || crashes[0].Node != 1 {
		t.Fatalf("node_fail events = %+v, want one at t=8 on node 1", crashes)
	}
	detects := tap.ofType(obs.FailureDetected)
	if len(detects) != 1 || detects[0].Node != 1 {
		t.Fatalf("failure_detected events = %+v, want one on node 1", detects)
	}
	if got := detects[0].T; got != 13 {
		t.Fatalf("failure detected at t=%v, want crash+expiry = 13", got)
	}
	if detects[0].Dur != 5 {
		t.Fatalf("detection event carries lag %v, want 5", detects[0].Dur)
	}
}

// TestTransientFailuresRetryAndBlacklist: a high per-attempt failure rate
// with a low blacklist threshold must produce retries (attempt_fail
// events, relaunch counters) and blacklist at least one node — while
// never blacklisting half the cluster or losing a job.
func TestTransientFailuresRetryAndBlacklist(t *testing.T) {
	cfg := tinyConfig()
	cfg.Faults.TaskFailProb = 0.15
	cfg.Faults.MaxTaskAttempts = 50 // retries effectively unbounded
	cfg.Faults.BlacklistAfter = 2
	s, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tap := &eventTap{}
	if err := s.Attach(tap); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 || res.FailedJobs != 0 {
		t.Fatalf("recovery lost jobs: %s", res)
	}
	if res.AttemptFailures == 0 {
		t.Fatal("no attempt failures at 15% per-attempt probability")
	}
	if got := len(tap.ofType(obs.AttemptFail)); got != res.AttemptFailures {
		t.Fatalf("%d attempt_fail events, counter says %d", got, res.AttemptFailures)
	}
	n := cfg.Topology.Racks * cfg.Topology.NodesPerRack
	if res.BlacklistedNodes == 0 {
		t.Fatal("no node blacklisted despite threshold 2")
	}
	if 2*res.BlacklistedNodes >= n {
		t.Fatalf("blacklisted %d of %d nodes; guard must keep it under half", res.BlacklistedNodes, n)
	}
	if got := len(tap.ofType(obs.NodeBlacklist)); got != res.BlacklistedNodes {
		t.Fatalf("%d node_blacklist events, counter says %d", got, res.BlacklistedNodes)
	}
}

// TestSlowdownStretchesRun: slowing half the cluster must lengthen the
// makespan relative to the identical fault-free run, and the slowdown
// must be visible as paired node_slow events (onset and restore).
func TestSlowdownStretchesRun(t *testing.T) {
	base := tinyConfig()
	s, err := New(base, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := tinyConfig()
	for n := 0; n < 4; n++ {
		cfg.Faults.Slowdowns = append(cfg.Faults.Slowdowns,
			faults.NodeSlowdown{Node: n, At: 2, Duration: 100, Factor: 6})
	}
	s2, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tap := &eventTap{}
	if err := s2.Attach(tap); err != nil {
		t.Fatal(err)
	}
	slow, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if slow.Unfinished != 0 {
		t.Fatalf("jobs unfinished under slowdown: %s", slow)
	}
	if slow.Makespan <= clean.Makespan {
		t.Fatalf("makespan %v under 6x slowdown of half the cluster, clean run took %v",
			slow.Makespan, clean.Makespan)
	}
	evts := tap.ofType(obs.NodeSlow)
	if len(evts) != 8 {
		t.Fatalf("%d node_slow events, want 4 onsets + 4 restores", len(evts))
	}
	for _, e := range evts {
		if e.T == 2 && e.Factor != 6 {
			t.Fatalf("onset event carries factor %v, want 6", e.Factor)
		}
		if e.T == 102 && e.Factor != 1 {
			t.Fatalf("restore event carries factor %v, want 1", e.Factor)
		}
	}
}

// TestLinkDegradeSlowsRun: cutting access links to 10% for part of the
// run must lengthen the makespan; capacities must be restored after the
// window (observable via link_degrade event pairs).
func TestLinkDegradeSlowsRun(t *testing.T) {
	base := tinyConfig()
	s, err := New(base, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := tinyConfig()
	for n := 0; n < 4; n++ {
		cfg.Faults.Links = append(cfg.Faults.Links,
			faults.LinkDegrade{Node: n, At: 2, Duration: 60, Factor: 0.1})
	}
	s2, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tap := &eventTap{}
	if err := s2.Attach(tap); err != nil {
		t.Fatal(err)
	}
	degraded, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Unfinished != 0 {
		t.Fatalf("jobs unfinished under link degradation: %s", degraded)
	}
	if degraded.Makespan <= clean.Makespan {
		t.Fatalf("makespan %v with half the links at 10%%, clean run took %v",
			degraded.Makespan, clean.Makespan)
	}
	evts := tap.ofType(obs.LinkDegrade)
	if len(evts) != 8 {
		t.Fatalf("%d link_degrade events, want 4 onsets + 4 restores", len(evts))
	}
	restores := 0
	for _, e := range evts {
		if e.Factor == 1 {
			restores++
		}
	}
	if restores != 4 {
		t.Fatalf("%d restore events, want 4", restores)
	}
}

// TestAttemptCapFailsJobCleanly: with an attempt cap of 1 and a high
// transient-failure rate, some job must fail — explicitly, with a
// job_fail event, no unfinished leftovers, and shuffle conservation
// intact for the jobs that did finish.
func TestAttemptCapFailsJobCleanly(t *testing.T) {
	cfg := tinyConfig()
	cfg.Faults.TaskFailProb = 0.3
	cfg.Faults.MaxTaskAttempts = 1
	s, err := New(cfg, faultSpecs(t, 0.2), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tap := &eventTap{}
	if err := s.Attach(tap); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedJobs == 0 {
		t.Fatal("no job failed with a 30% attempt failure rate and cap 1")
	}
	if res.Unfinished != 0 {
		t.Fatalf("failed jobs left unfinished leftovers: %s", res)
	}
	if got := len(tap.ofType(obs.JobFail)); got != res.FailedJobs {
		t.Fatalf("%d job_fail events, counter says %d", got, res.FailedJobs)
	}
	for _, jr := range res.Jobs {
		if jr.Failed && jr.Finished() {
			t.Fatalf("job %s both failed and finished", jr.Name)
		}
	}
	for _, j := range s.Jobs() {
		if j.Failed {
			continue
		}
		for _, r := range j.Reduces {
			if math.Abs(r.ShuffledBytes-r.ExpectedInput()) > 1 {
				t.Fatalf("surviving job %s reduce %d shuffled %v, want %v",
					j.Spec.Name, r.Index, r.ShuffledBytes, r.ExpectedInput())
			}
		}
	}
}
