package engine

import (
	"fmt"

	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/trace"
)

// JobResult summarizes one job's execution.
type JobResult struct {
	Name       string
	InputBytes float64
	NumMaps    int
	NumReduces int
	Submit     float64
	Finish     float64 // 0 when unfinished at the horizon
	Completion float64 // Finish − Submit; 0 when unfinished
	Failed     bool    // terminated unsuccessfully by fault recovery

	MapLocality    metrics.LocalityCount
	ReduceLocality metrics.LocalityCount
	ShuffleBytes   float64 // total intermediate bytes the job moved
}

// Finished reports whether the job completed before the horizon.
func (r JobResult) Finished() bool { return r.Finish > 0 }

// Result aggregates everything a run produced.
type Result struct {
	Scheduler string
	Jobs      []JobResult

	MapTimes    []float64 // per-task running times (Fig. 6a)
	ReduceTimes []float64 // per-task running times (Fig. 6b)

	MapLocality    metrics.LocalityCount // aggregate (Table III)
	ReduceLocality metrics.LocalityCount

	MapUtilization    float64 // time-averaged busy map-slot fraction
	ReduceUtilization float64

	Makespan   float64 // finish of the last job
	Unfinished int     // jobs still running at the horizon
	Events     uint64  // simulator events executed

	// Network accounting: the transmission volumes the cost model tries to
	// minimize (counted at transfer initiation; transfers cancelled by a
	// node failure remain counted).
	MapRemoteBytes     float64 // map input fetched across the network
	ShuffleRemoteBytes float64 // intermediate data moved across the network
	ShuffleLocalBytes  float64 // intermediate data served locally

	// Fault-tolerance and speculation accounting.
	Speculated        int // backup map attempts launched
	SpecWins          int // backups that finished before the original
	SpeculatedReduces int // backup reduce attempts launched
	SpecReduceWins    int // reduce backups that finished first
	RelaunchedMaps    int // completed maps re-executed after node failures
	RelaunchedReduces int // running reduces restarted after node failures
	AttemptFailures   int // transient attempt failures injected
	BlacklistedNodes  int // cumulative blacklist entries over the run
	FailedJobs        int // jobs terminated unsuccessfully (not in Unfinished)

	// Open-system accounting (engine.Config.Open; zero otherwise).
	OpenSystem   bool
	Tenants      []TenantResult // declaration order
	JainFairness float64        // Jain index over weight-normalized steady completions
	Preemptions  int            // kill-and-requeue evictions
	RejectedJobs int            // arrivals turned away by full queues

	// Slot utilization averaged over the post-warm-up window only.
	SteadyMapUtilization    float64
	SteadyReduceUtilization float64
}

// CompletionTimes returns the completion time of every finished job
// (the Fig. 4 sample).
func (r *Result) CompletionTimes() []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.Finished() {
			out = append(out, j.Completion)
		}
	}
	return out
}

// JobCompletionCDF returns the CDF of finished-job completion times.
func (r *Result) JobCompletionCDF() metrics.CDF {
	return metrics.NewCDF(r.CompletionTimes())
}

// TaskLocality returns map+reduce locality tallies merged (Table III
// counts tasks of both kinds).
func (r *Result) TaskLocality() metrics.LocalityCount {
	l := r.MapLocality
	l.Merge(r.ReduceLocality)
	return l
}

// JobByName finds a job result; ok is false when absent.
func (r *Result) JobByName(name string) (JobResult, bool) {
	for _, j := range r.Jobs {
		if j.Name == name {
			return j, true
		}
	}
	return JobResult{}, false
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d jobs (%d unfinished), makespan %.1fs, map util %.2f, reduce util %.2f",
		r.Scheduler, len(r.Jobs), r.Unfinished, r.Makespan, r.MapUtilization, r.ReduceUtilization)
}

// Trace exports the run's task timeline (call after Run).
func (s *Simulation) Trace() *trace.Trace {
	return trace.FromJobs(s.sch.Name(), s.jobs)
}

// collect assembles the Result after the event loop stops.
func (s *Simulation) collect() *Result {
	res := &Result{
		Scheduler: s.sch.Name(),
		Events:    s.eng.Fired(),
	}
	now := float64(s.eng.Now())
	for _, j := range s.jobs {
		jr := JobResult{
			Name:       j.Spec.Name,
			InputBytes: j.Spec.InputBytes,
			NumMaps:    j.NumMaps(),
			NumReduces: j.NumReduces(),
			Submit:     float64(j.Submitted),
		}
		if j.Done() {
			jr.Finish = float64(j.Finished)
			jr.Completion = j.CompletionTime()
			if jr.Finish > res.Makespan {
				res.Makespan = jr.Finish
			}
		} else if j.Failed {
			// Failed jobs keep Finish 0 (Finished() is false) but are not
			// "unfinished": they terminated, just not successfully.
			jr.Failed = true
			res.FailedJobs++
		} else {
			res.Unfinished++
		}
		for _, m := range j.Maps {
			if m.State == job.TaskPending {
				continue
			}
			switch m.Locality {
			case job.LocalNode:
				jr.MapLocality.Node++
			case job.LocalRack:
				jr.MapLocality.Rack++
			case job.Remote:
				jr.MapLocality.Remote++
			}
			jr.ShuffleBytes += m.TotalOut()
		}
		for _, r := range j.Reduces {
			if r.State == job.TaskPending {
				continue
			}
			switch r.Locality {
			case job.LocalNode:
				jr.ReduceLocality.Node++
			case job.LocalRack:
				jr.ReduceLocality.Rack++
			case job.Remote:
				jr.ReduceLocality.Remote++
			}
		}
		res.MapLocality.Merge(jr.MapLocality)
		res.ReduceLocality.Merge(jr.ReduceLocality)
		res.Jobs = append(res.Jobs, jr)
	}
	res.MapTimes = s.mapTimes
	res.ReduceTimes = s.reduceTimes
	res.MapRemoteBytes = s.mapRemoteBytes
	res.ShuffleRemoteBytes = s.shuffleRemoteBytes
	res.ShuffleLocalBytes = s.shuffleLocalBytes
	res.Speculated = s.speculated
	res.SpecWins = s.specWins
	res.SpeculatedReduces = s.speculatedReds
	res.SpecReduceWins = s.specRedWins
	res.RelaunchedMaps = s.relaunchedMaps
	res.RelaunchedReduces = s.relaunchedReduces
	res.AttemptFailures = s.attemptFailures
	// Cumulative, not a point-in-time census: entries are released when
	// their last holding job tears down, so len(s.blacklist) at the end
	// of a healthy run is typically zero.
	res.BlacklistedNodes = s.everBlacklisted
	// Utilization is averaged over the busy window [0, makespan]; when the
	// run hit the horizon with work outstanding, average to the horizon.
	end := res.Makespan
	if res.Unfinished > 0 || end == 0 {
		end = now
	}
	res.MapUtilization = s.utilMap.Average(end)
	res.ReduceUtilization = s.utilReduce.Average(end)
	res.Unfinished += len(s.specs) - s.specsSubmitted // never-submitted jobs
	if s.openOn {
		// The same busy-window end bounds the steady-state averages: after
		// the queue drains the sim clock coasts to MaxSimTime, which would
		// dilute any rate or time-average computed against it.
		s.collectOpen(res, end)
	}
	return res
}
