package engine

import (
	"math"
	"testing"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/workload"
)

// TestRandomizedInvariants runs small randomized configurations under all
// three schedulers and checks global invariants:
//
//   - every job finishes within the horizon,
//   - every map and reduce task ends in TaskDone with sane timestamps,
//   - each reduce received exactly its expected shuffle input,
//   - the locality tallies cover every task and no remote tasks appear in
//     single-rack clusters,
//   - slot accounting returns to zero.
func TestRandomizedInvariants(t *testing.T) {
	rng := sim.NewRNG(2024)
	builders := []sched.Builder{
		sched.NewProbabilistic(sched.DefaultProbabilisticConfig()),
		sched.NewCoupling(sched.DefaultCouplingConfig()),
		sched.NewFairDelay(sched.DefaultFairDelayConfig()),
	}
	for trial := 0; trial < 6; trial++ {
		cfg := DefaultConfig()
		cfg.Topology.Racks = 1 + rng.Intn(3)
		cfg.Topology.NodesPerRack = 4 + rng.Intn(8)
		cfg.MapSlotsPerNode = 1 + rng.Intn(4)
		cfg.ReduceSlotsPerNode = 1 + rng.Intn(2)
		cfg.HeartbeatInterval = 0.5 + rng.Float64()*3
		cfg.Seed = rng.Int63()
		cfg.CrossTraffic = rng.Intn(5)

		o := workload.Options{
			Scale:         25 + rng.Intn(30),
			Replication:   1 + rng.Intn(3),
			SubmitStagger: rng.Float64() * 2,
		}
		defs := workload.TableII()
		// Pick a random subset of 4 jobs.
		perm := rng.Perm(len(defs))
		subset := []workload.JobDef{defs[perm[0]], defs[perm[1]], defs[perm[2]], defs[perm[3]]}
		specs, err := workload.Specs(subset, o)
		if err != nil {
			t.Fatal(err)
		}

		b := builders[trial%len(builders)]
		s, err := New(cfg, specs, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("trial %d (%s): %d unfinished", trial, res.Scheduler, res.Unfinished)
		}
		for _, j := range s.Jobs() {
			if !j.Done() {
				t.Fatalf("trial %d: job %s not done", trial, j.Spec.Name)
			}
			for _, m := range j.Maps {
				if m.State != job.TaskDone {
					t.Fatalf("trial %d: map %d state %v", trial, m.Index, m.State)
				}
				if m.Finish < m.Launch || m.Launch < j.Submitted {
					t.Fatalf("trial %d: map %d timestamps out of order", trial, m.Index)
				}
			}
			for _, r := range j.Reduces {
				if r.State != job.TaskDone {
					t.Fatalf("trial %d: reduce %d state %v", trial, r.Index, r.State)
				}
				if math.Abs(r.ShuffledBytes-r.ExpectedInput()) > 1 {
					t.Fatalf("trial %d: reduce %d shuffled %v, want %v",
						trial, r.Index, r.ShuffledBytes, r.ExpectedInput())
				}
			}
		}
		if got := res.MapLocality.Total(); got != totalMaps(s) {
			t.Fatalf("trial %d: locality covers %d of %d maps", trial, got, totalMaps(s))
		}
		if cfg.Topology.Racks == 1 && res.MapLocality.Remote != 0 {
			t.Fatalf("trial %d: remote maps in single rack", trial)
		}
		um, ur := s.state.UsedSlots()
		if um != 0 || ur != 0 {
			t.Fatalf("trial %d: %d map / %d reduce slots leaked", trial, um, ur)
		}
		if s.topo.Net().ActiveFlows() != cfg.CrossTraffic {
			t.Fatalf("trial %d: %d flows still active, want only the %d background ones",
				trial, s.topo.Net().ActiveFlows(), cfg.CrossTraffic)
		}
	}
}

func totalMaps(s *Simulation) int {
	n := 0
	for _, j := range s.Jobs() {
		n += j.NumMaps()
	}
	return n
}

// TestNetworkByteAccounting forces every map remote by storing all blocks
// on node 0 while giving node 0 no slots... (not expressible directly), so
// instead it checks consistency: remote + local shuffle bytes equal the
// total intermediate volume.
func TestNetworkByteAccounting(t *testing.T) {
	cfg := tinyConfig()
	s, err := New(cfg, tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, j := range s.Jobs() {
		for _, m := range j.Maps {
			want += m.TotalOut()
		}
	}
	got := res.ShuffleRemoteBytes + res.ShuffleLocalBytes
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("shuffle accounting: %v moved, %v produced", got, want)
	}
	if res.MapRemoteBytes < 0 {
		t.Fatal("negative map remote bytes")
	}
}

// TestHeartbeatIntervalAffectsGranularity checks that a coarser heartbeat
// cannot speed the batch up (it only delays offers).
func TestHeartbeatIntervalAffectsGranularity(t *testing.T) {
	run := func(hb float64) float64 {
		cfg := tinyConfig()
		cfg.HeartbeatInterval = hb
		s, err := New(cfg, tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatal("unfinished")
		}
		return res.Makespan
	}
	fine, coarse := run(0.5), run(10)
	if coarse < fine*0.9 {
		t.Fatalf("coarse heartbeat (%vs makespan) beat fine one (%vs) by >10%%", coarse, fine)
	}
}

// TestEventsCounterAdvances ensures Result.Events reflects simulator work.
func TestEventsCounterAdvances(t *testing.T) {
	s, err := New(tinyConfig(), tinySpecs(t), sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 100 {
		t.Fatalf("suspiciously few events: %d", res.Events)
	}
}

// TestForcedRemoteAccounting stores every block on one node while that
// node is heavily outnumbered by slots: most maps must fetch remotely and
// the MapRemoteBytes counter must reflect it.
func TestForcedRemoteAccounting(t *testing.T) {
	cfg := tinyConfig()
	o := workload.Options{
		Scale:         20,
		Replication:   1,
		SubmitStagger: 0,
		Placement:     hdfs.Subset{K: 1}, // all blocks on node 0
	}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Grep, InputGB: 10, Maps: 87, Reduces: 148},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, specs, sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatal("unfinished")
	}
	if res.MapRemoteBytes == 0 {
		t.Fatal("no remote map bytes despite single-node storage")
	}
	// Node 0 can host at most its slots; the rest ran remotely.
	if res.MapLocality.Node >= res.MapLocality.Total() {
		t.Fatal("all maps claimed to be local on single-node storage")
	}
}

// TestProgressVisibleToScheduler verifies that the heartbeat-time progress
// refresh exposes advancing d_read values during the map phase.
func TestProgressVisibleToScheduler(t *testing.T) {
	cfg := tinyConfig()
	s, err := New(cfg, tinySpecs(t), sched.NewFairDelay(sched.DefaultFairDelayConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// After the run every task is done, with Progress pinned to 1.
	for _, j := range s.Jobs() {
		for _, m := range j.Maps {
			if m.Progress != 1 {
				t.Fatalf("map %d progress %v after completion", m.Index, m.Progress)
			}
		}
	}
}
