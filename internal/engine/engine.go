// Package engine is the simulation driver: it wires the topology, block
// store, slot model and a task-level scheduler into a JobTracker that
// reacts to TaskTracker heartbeats, executes map/shuffle/reduce phases
// over the flow-level network, and collects the metrics the paper's
// evaluation reports. It also models two Hadoop mechanisms the paper's
// testbed had enabled: speculative execution of straggling map tasks and
// recovery from TaskTracker (node) failures, including re-execution of
// completed maps whose intermediate output was lost.
package engine

import (
	"fmt"
	"sort"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// NodeFailure schedules the permanent failure of a node at a simulated
// time: its tasks are killed, its stored map outputs become unavailable,
// and it stops heartbeating.
type NodeFailure struct {
	Node int
	At   float64
}

// Config describes one simulated cluster run.
type Config struct {
	// Topology is the physical cluster shape. The default mirrors the
	// paper's testbed: 60 nodes in one rack.
	Topology topology.Spec
	// MapSlotsPerNode and ReduceSlotsPerNode follow the paper's setup
	// ("4 map slots and 2 reduce slots per node").
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// HeartbeatInterval is the TaskTracker heartbeat period in seconds
	// (Hadoop 1.x default: 3 s).
	HeartbeatInterval float64
	// Slowstart is the map-progress fraction gating reduce launches.
	Slowstart float64
	// ShuffleParallelism bounds concurrent fetch flows per reduce task
	// (Hadoop's parallel copiers).
	ShuffleParallelism int
	// TaskOverhead is fixed per-task startup cost in seconds (JVM spawn,
	// task setup).
	TaskOverhead float64
	// Seed makes the whole run reproducible.
	Seed int64
	// CostMode selects hop-count or network-condition distances for the
	// cost model handed to the scheduler.
	CostMode core.Mode
	// CrossTraffic injects this many persistent background flows between
	// random node pairs, exercising the network-condition experiments.
	CrossTraffic int
	// MaxSimTime aborts the run at this simulated horizon (seconds); jobs
	// still unfinished are reported in Result.Unfinished. Zero means the
	// default of 24 simulated hours.
	MaxSimTime float64

	// Speculation enables backup execution of straggling map tasks: when
	// a map's attempt has been running longer than SpecSlowdown times the
	// job's mean completed-map duration (with at least SpecMinCompleted
	// completed maps for the estimate) and a slot has no other work, a
	// second attempt launches there; the first to finish wins.
	Speculation      bool
	SpecSlowdown     float64 // default 1.8
	SpecMinCompleted int     // default 3

	// Failures permanently kills nodes at the given times.
	Failures []NodeFailure

	// SlowNodeFraction marks this share of nodes (chosen deterministically
	// from the seed) as stragglers whose compute rates are divided by
	// SlowFactor — the hardware heterogeneity that motivates speculative
	// execution. Zero disables heterogeneity.
	SlowNodeFraction float64
	SlowFactor       float64 // default 2.5 when heterogeneity is on

	// ResourceMode replaces the Hadoop 1.x fixed slots with a YARN-style
	// container model (the paper's Section V future work): every node has
	// a resource capacity and each map/reduce task requests a container,
	// so the map/reduce split of a node's capacity is no longer static.
	ResourceMode    bool
	NodeResources   cluster.Resources // default 16384 MB / 16 vcores
	MapContainer    cluster.Resources // default 2048 MB / 2 vcores
	ReduceContainer cluster.Resources // default 4096 MB / 4 vcores
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Topology:           topology.DefaultSpec(),
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 2,
		HeartbeatInterval:  3,
		Slowstart:          0.05,
		ShuffleParallelism: 3,
		TaskOverhead:       1,
		Seed:               1,
		CostMode:           core.ModeHops,
		MaxSimTime:         86400,
		SpecSlowdown:       1.8,
		SpecMinCompleted:   3,
		NodeResources:      cluster.Resources{MemMB: 16384, VCores: 16},
		MapContainer:       cluster.Resources{MemMB: 2048, VCores: 2},
		ReduceContainer:    cluster.Resources{MemMB: 4096, VCores: 4},
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MapSlotsPerNode < 1 || c.ReduceSlotsPerNode < 1 {
		return fmt.Errorf("engine: slots per node must be >= 1")
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("engine: heartbeat interval must be positive")
	}
	if c.Slowstart < 0 || c.Slowstart > 1 {
		return fmt.Errorf("engine: slowstart %v outside [0,1]", c.Slowstart)
	}
	if c.ShuffleParallelism < 1 {
		return fmt.Errorf("engine: shuffle parallelism must be >= 1")
	}
	if c.TaskOverhead < 0 {
		return fmt.Errorf("engine: negative task overhead")
	}
	if c.CrossTraffic < 0 {
		return fmt.Errorf("engine: negative cross traffic")
	}
	if c.MaxSimTime < 0 {
		return fmt.Errorf("engine: negative horizon")
	}
	if c.SlowNodeFraction < 0 || c.SlowNodeFraction > 1 {
		return fmt.Errorf("engine: SlowNodeFraction %v outside [0,1]", c.SlowNodeFraction)
	}
	if c.SlowNodeFraction > 0 && c.SlowFactor != 0 && c.SlowFactor <= 1 {
		return fmt.Errorf("engine: SlowFactor %v must exceed 1", c.SlowFactor)
	}
	if c.Speculation {
		if c.SpecSlowdown <= 1 {
			return fmt.Errorf("engine: SpecSlowdown %v must exceed 1", c.SpecSlowdown)
		}
		if c.SpecMinCompleted < 1 {
			return fmt.Errorf("engine: SpecMinCompleted %d must be >= 1", c.SpecMinCompleted)
		}
	}
	n := c.Topology.Racks * c.Topology.NodesPerRack
	for _, f := range c.Failures {
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("engine: failure of node %d outside cluster of %d", f.Node, n)
		}
		if f.At < 0 {
			return fmt.Errorf("engine: failure at negative time")
		}
	}
	return nil
}

// mapAttempt is one execution attempt of a map task (there can be two
// when speculation fires).
type mapAttempt struct {
	node         topology.NodeID
	locality     job.Locality
	launch       sim.Time
	fetch        *topology.Flow
	fetchDone    bool
	computeStart sim.Time
	computeDur   float64
	computeEv    *sim.Event
	computeDone  bool
	dead         bool
}

// progress returns the attempt's compute progress in [0, 1).
func (a *mapAttempt) progress(now sim.Time) float64 {
	if a.dead || a.computeDur <= 0 {
		return 0
	}
	p := float64(now-a.computeStart) / a.computeDur
	if p < 0 {
		p = 0
	}
	if p > 0.999999 {
		p = 0.999999
	}
	return p
}

// mapRun is the engine-side execution state of a running map task.
type mapRun struct {
	attempts []*mapAttempt
}

// liveAttempts counts attempts that have not been killed.
func (r *mapRun) liveAttempts() int {
	n := 0
	for _, a := range r.attempts {
		if !a.dead {
			n++
		}
	}
	return n
}

// srcBucket aggregates queued shuffle bytes by source node, remembering
// which maps contributed (for failure recovery).
type srcBucket struct {
	bytes float64
	maps  []*job.MapTask
}

// flight is an in-progress shuffle fetch.
type flight struct {
	src   topology.NodeID
	bytes float64
	maps  []*job.MapTask
	flow  *topology.Flow
}

// reduceRun is the engine-side execution state of a running reduce task.
type reduceRun struct {
	pendingSrc map[topology.NodeID]*srcBucket
	queue      []topology.NodeID // FIFO of sources with pending bytes
	flights    map[*topology.Flow]*flight
	got        map[*job.MapTask]bool // output enqueued, fetched or in flight
	computing  bool
	computeEv  *sim.Event
}

// jobStats accumulates completed-map durations for speculation.
type jobStats struct {
	completed int
	totalDur  float64
}

// Simulation is one configured run.
type Simulation struct {
	cfg   Config
	eng   *sim.Engine
	topo  *topology.Cluster
	store *hdfs.Store
	state *cluster.State
	cost  *core.CostModel
	sch   sched.Scheduler
	obs   *obs.Stream

	rngEngine *sim.RNG
	rngJobs   *sim.RNG

	specs  []job.Spec
	jobs   []*job.Job
	active []*job.Job

	runningMaps map[*job.MapTask]*mapRun
	runningReds map[*job.ReduceTask]*reduceRun
	stats       map[job.ID]*jobStats
	dead        map[topology.NodeID]bool
	speedOf     []float64 // per-node compute-speed multiplier (1 = nominal)

	utilMap    metrics.TimeAvg
	utilReduce metrics.TimeAvg

	mapTimes    []float64
	reduceTimes []float64
	ran         bool

	mapRemoteBytes     float64 // map input fetched across the network
	shuffleRemoteBytes float64 // intermediate data moved across the network
	shuffleLocalBytes  float64 // intermediate data served from local disk

	speculated        int // backup attempts launched
	specWins          int // backups that finished first
	relaunchedMaps    int // done maps re-executed after node failure
	relaunchedReduces int // running reduces restarted after node failure
}

// New builds a simulation over the given job specs and scheduler builder.
func New(cfg Config, specs []job.Spec, builder sched.Builder) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: no job specs")
	}
	if builder == nil {
		return nil, fmt.Errorf("engine: nil scheduler builder")
	}
	if cfg.MaxSimTime == 0 {
		cfg.MaxSimTime = 86400
	}
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	topo, err := topology.NewCluster(eng, cfg.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	state, err := cluster.New(topo.Size(), cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	if cfg.ResourceMode {
		if err := state.EnableResources(cfg.NodeResources, cfg.MapContainer, cfg.ReduceContainer); err != nil {
			return nil, err
		}
	}
	cost, err := core.NewCostModel(topo, store, topo, cfg.CostMode)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:         cfg,
		eng:         eng,
		topo:        topo,
		store:       store,
		state:       state,
		cost:        cost,
		rngEngine:   root.Fork("engine"),
		rngJobs:     root.Fork("jobs"),
		specs:       specs,
		runningMaps: make(map[*job.MapTask]*mapRun),
		runningReds: make(map[*job.ReduceTask]*reduceRun),
		stats:       make(map[job.ID]*jobStats),
		dead:        make(map[topology.NodeID]bool),
		obs:         obs.NewStream(),
	}
	topo.Net().SetStream(s.obs)
	s.sch = builder(sched.Env{Net: topo, Cost: cost, RNG: root.Fork("sched"), Obs: s.obs})
	if s.sch == nil {
		return nil, fmt.Errorf("engine: builder returned nil scheduler")
	}
	// Heterogeneous node speeds: a deterministic subset of nodes computes
	// slower by SlowFactor.
	s.speedOf = make([]float64, topo.Size())
	for i := range s.speedOf {
		s.speedOf[i] = 1
	}
	if cfg.SlowNodeFraction > 0 {
		factor := cfg.SlowFactor
		if factor == 0 {
			factor = 2.5
		}
		hetRNG := root.Fork("heterogeneity")
		slow := int(cfg.SlowNodeFraction*float64(topo.Size()) + 0.5)
		for _, idx := range hetRNG.Perm(topo.Size())[:slow] {
			s.speedOf[idx] = 1 / factor
		}
	}
	return s, nil
}

// Cost exposes the cost model (for tests).
func (s *Simulation) Cost() *core.CostModel { return s.cost }

// Attach subscribes an observer to the simulation's event stream. It must
// be called before Run: attaching mid-run would see a stream missing its
// prefix, which defeats the reproducibility guarantee.
func (s *Simulation) Attach(o obs.Observer) error {
	if s.ran {
		return fmt.Errorf("engine: Attach after Run")
	}
	if o == nil {
		return fmt.Errorf("engine: Attach of nil observer")
	}
	s.obs.Attach(o)
	return nil
}

// taskEvent seeds a task-lifecycle observation.
func (s *Simulation) taskEvent(t obs.Type, node topology.NodeID, j *job.Job, kind string, index int) obs.Event {
	return obs.Event{
		T:    float64(s.eng.Now()),
		Type: t,
		Node: int(node),
		Job:  j.Spec.Name,
		Task: &obs.TaskRef{Kind: kind, Index: index},
	}
}

// Jobs exposes the instantiated jobs after Run, for invariant checks.
func (s *Simulation) Jobs() []*job.Job { return s.jobs }

// Run executes the simulation to completion (or the horizon) and returns
// the collected metrics. Run may be called once.
func (s *Simulation) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("engine: Run called twice")
	}
	s.ran = true

	// Background cross-traffic between distinct random pairs.
	for i := 0; i < s.cfg.CrossTraffic; i++ {
		src := topology.NodeID(s.rngEngine.Intn(s.topo.Size()))
		dst := topology.NodeID(s.rngEngine.Intn(s.topo.Size()))
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % s.topo.Size())
		}
		s.topo.InjectCrossTraffic(src, dst)
	}

	// Job submissions.
	for i := range s.specs {
		spec := s.specs[i]
		id := job.ID(i + 1)
		s.eng.Schedule(spec.Submit, func() { s.submit(id, spec) })
	}

	// Scheduled node failures.
	for _, f := range s.cfg.Failures {
		n := topology.NodeID(f.Node)
		s.eng.Schedule(sim.Time(f.At), func() { s.failNode(n) })
	}

	// Heartbeat chains, phase-offset per node so offers do not synchronize.
	interval := s.cfg.HeartbeatInterval
	for i := 0; i < s.topo.Size(); i++ {
		n := topology.NodeID(i)
		offset := interval * float64(i) / float64(s.topo.Size())
		s.eng.Schedule(sim.Time(offset), func() { s.heartbeat(n) })
	}

	s.utilMap.Update(0, 0)
	s.utilReduce.Update(0, 0)

	if _, err := s.eng.Run(sim.Time(s.cfg.MaxSimTime)); err != nil {
		return nil, err
	}
	return s.collect(), nil
}

// submit instantiates a job (placing its input blocks) and activates it.
func (s *Simulation) submit(id job.ID, spec job.Spec) {
	j, err := job.New(id, spec, s.store, s.rngJobs)
	if err != nil {
		// Specs are validated by the builders; a failure here is a
		// programming error worth stopping the simulation for.
		panic(fmt.Sprintf("engine: submit %s: %v", spec.Name, err))
	}
	j.Submitted = s.eng.Now()
	s.jobs = append(s.jobs, j)
	s.active = append(s.active, j)
	s.stats[j.ID] = &jobStats{}
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(j.Submitted), Type: obs.JobSubmit, Node: -1, Job: j.Spec.Name})
	}
}

// allDone reports whether every submitted job finished and no submissions
// remain.
func (s *Simulation) allDone() bool {
	return len(s.active) == 0 && len(s.jobs) == len(s.specs)
}

// heartbeat is one TaskTracker report: refresh progress, offer free slots
// to the scheduler, and reschedule.
func (s *Simulation) heartbeat(n topology.NodeID) {
	if s.allDone() || s.dead[n] {
		return // stop the chain
	}
	s.refreshProgress()
	node := s.state.Node(n)
	for node.FreeMapSlots() > 0 {
		ctx := s.buildCtx()
		m := s.sch.AssignMap(ctx, n)
		if m == nil {
			break
		}
		if !s.launchMap(m, n) {
			break // unschedulable right now (e.g. all replicas dead)
		}
	}
	// Speculative execution fills slots that have no pending work left.
	if s.cfg.Speculation {
		for node.FreeMapSlots() > 0 {
			if !s.trySpeculate(n) {
				break
			}
		}
	}
	for node.FreeReduceSlots() > 0 {
		ctx := s.buildCtx()
		r := s.sch.AssignReduce(ctx, n)
		if r == nil {
			break
		}
		s.launchReduce(r, n)
	}
	s.eng.After(s.cfg.HeartbeatInterval, func() { s.heartbeat(n) })
}

// buildCtx snapshots the scheduler-visible cluster state.
func (s *Simulation) buildCtx() *sched.Context {
	return &sched.Context{
		Now:              s.eng.Now(),
		Jobs:             s.active,
		AvailMapNodes:    s.state.AvailMapNodes(),
		AvailReduceNodes: s.state.AvailReduceNodes(),
		Slowstart:        s.cfg.Slowstart,
	}
}

// refreshProgress updates the Progress field of every running map task to
// the current instant, so the scheduler's estimator sees fresh d_read and
// A_jf values, exactly as heartbeat-reported counters would provide.
// With speculation a task's progress is that of its fastest attempt.
func (s *Simulation) refreshProgress() {
	now := s.eng.Now()
	for m, run := range s.runningMaps {
		best := 0.0
		for _, a := range run.attempts {
			if p := a.progress(now); p > best {
				best = p
			}
		}
		m.Progress = best
	}
}

// aliveNearest returns the closest live replica of the block, or ok=false
// when every replica's node has failed.
func (s *Simulation) aliveNearest(b hdfs.BlockID, from topology.NodeID) (topology.NodeID, bool) {
	best := topology.NodeID(-1)
	bestD := 0.0
	found := false
	for _, r := range s.store.Replicas(b) {
		if s.dead[r] {
			continue
		}
		d := s.topo.Distance(from, r)
		if !found || d < bestD {
			found = true
			bestD = d
			best = r
		}
	}
	return best, found
}

// launchMap starts map task m on node n. It reports false when the task
// cannot run (all replicas lost), leaving the task pending.
func (s *Simulation) launchMap(m *job.MapTask, n topology.NodeID) bool {
	if m.State != job.TaskPending {
		panic(fmt.Sprintf("engine: launching map %s/%d in state %v", m.Job.Spec.Name, m.Index, m.State))
	}
	if _, ok := s.aliveNearest(m.Block, n); !ok {
		return false
	}
	if err := s.state.Node(n).AcquireMap(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	m.State = job.TaskRunning
	m.Node = n
	m.Locality = s.cost.Locality(m, n)
	m.Launch = s.eng.Now()
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskStart, n, m.Job, "map", m.Index)
		e.Locality = m.Locality.String()
		e.Wait = float64(m.Launch - m.Job.Submitted)
		s.obs.Emit(e)
	}
	run := &mapRun{}
	s.runningMaps[m] = run
	s.startAttempt(m, run, n)
	return true
}

// startAttempt begins one execution attempt of m on node n: an input
// stream from the nearest live replica overlapped with the compute work.
func (s *Simulation) startAttempt(m *job.MapTask, run *mapRun, n topology.NodeID) {
	prof := m.Job.Spec.Profile
	att := &mapAttempt{
		node:     n,
		locality: s.cost.Locality(m, n),
		launch:   s.eng.Now(),
	}
	run.attempts = append(run.attempts, att)

	src, _ := s.aliveNearest(m.Block, n) // caller checked ok
	if src != n {
		s.mapRemoteBytes += m.Size
	}
	att.fetch = s.topo.Transfer(src, n, m.Size, func() {
		if att.dead {
			return
		}
		att.fetchDone = true
		s.checkAttempt(m, run, att)
	})
	att.computeStart = s.eng.Now()
	att.computeDur = s.cfg.TaskOverhead +
		s.rngEngine.Jitter(m.Size/(prof.MapRate*s.speedOf[n]), prof.ComputeJitter)
	att.computeEv = s.eng.After(att.computeDur, func() {
		if att.dead {
			return
		}
		att.computeDone = true
		s.checkAttempt(m, run, att)
	})
}

// checkAttempt completes the map when an attempt has both streamed its
// input and finished computing.
func (s *Simulation) checkAttempt(m *job.MapTask, run *mapRun, att *mapAttempt) {
	if att.fetchDone && att.computeDone && m.State == job.TaskRunning {
		s.winMap(m, run, att)
	}
}

// killAttempt cancels an attempt and releases its slot (when its node is
// still alive; dead nodes release bookkeeping in failNode).
func (s *Simulation) killAttempt(att *mapAttempt, releaseSlot bool) {
	if att.dead {
		return
	}
	att.dead = true
	if att.fetch != nil && !att.fetch.Finished() {
		s.topo.Net().Cancel(att.fetch)
	}
	if att.computeEv != nil {
		att.computeEv.Cancel()
		s.eng.Remove(att.computeEv)
		att.computeEv = nil
	}
	if releaseSlot {
		s.state.Node(att.node).ReleaseMap()
	}
}

// winMap completes a map task via the winning attempt: kills any backup,
// feeds the output to the running reduces and updates job state.
func (s *Simulation) winMap(m *job.MapTask, run *mapRun, winner *mapAttempt) {
	for _, a := range run.attempts {
		if a != winner {
			s.killAttempt(a, !s.dead[a.node])
			s.sampleUtil()
		}
	}
	if winner != run.attempts[0] {
		s.specWins++
		if s.obs.Enabled() {
			s.obs.Emit(s.taskEvent(obs.SpecWin, winner.node, m.Job, "map", m.Index))
		}
	}
	winner.dead = true // no further callbacks
	m.State = job.TaskDone
	m.Progress = 1
	m.Finish = s.eng.Now()
	m.Node = winner.node
	m.Locality = winner.locality
	delete(s.runningMaps, m)
	s.state.Node(winner.node).ReleaseMap()
	s.sampleUtil()
	s.mapTimes = append(s.mapTimes, float64(m.Finish-winner.launch))
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskFinish, winner.node, m.Job, "map", m.Index)
		e.Locality = m.Locality.String()
		e.Dur = float64(m.Finish - winner.launch)
		s.obs.Emit(e)
	}

	j := m.Job
	j.DoneMaps++
	if st := s.stats[j.ID]; st != nil {
		st.completed++
		st.totalDur += float64(m.Finish - winner.launch)
	}
	// Feed this map's partitions to every running reduce of the job.
	for _, r := range j.Reduces {
		if r.State != job.TaskRunning {
			continue
		}
		rrun := s.runningReds[r]
		if rrun == nil || rrun.computing {
			continue
		}
		if bytes := m.Out[r.Index]; bytes > 0 && !rrun.got[m] {
			s.enqueueFetch(rrun, m.Node, bytes, m)
		}
		s.pumpShuffle(r, rrun)
		s.maybeStartReduceCompute(r, rrun)
	}
}

// trySpeculate launches a backup attempt of the worst straggling map on
// node n; it reports whether one launched.
func (s *Simulation) trySpeculate(n topology.NodeID) bool {
	now := s.eng.Now()
	var worst *job.MapTask
	var worstRun *mapRun
	worstScore := s.cfg.SpecSlowdown
	for m, run := range s.runningMaps {
		if len(run.attempts) != 1 || run.attempts[0].dead {
			continue // already backed up
		}
		if run.attempts[0].node == n {
			continue // a backup on the same node cannot help
		}
		st := s.stats[m.Job.ID]
		if st == nil || st.completed < s.cfg.SpecMinCompleted {
			continue
		}
		avg := st.totalDur / float64(st.completed)
		if avg <= 0 {
			continue
		}
		score := float64(now-run.attempts[0].launch) / avg
		// Strict ordering with a deterministic tie-break (job, index) so
		// map-iteration order cannot influence the simulation.
		if score > worstScore ||
			(score == worstScore && worst != nil &&
				(m.Job.ID < worst.Job.ID || (m.Job.ID == worst.Job.ID && m.Index < worst.Index))) {
			worstScore = score
			worst = m
			worstRun = run
		}
	}
	if worst == nil {
		return false
	}
	if _, ok := s.aliveNearest(worst.Block, n); !ok {
		return false
	}
	if err := s.state.Node(n).AcquireMap(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	s.speculated++
	if s.obs.Enabled() {
		s.obs.Emit(s.taskEvent(obs.SpecStart, n, worst.Job, "map", worst.Index))
	}
	s.startAttempt(worst, worstRun, n)
	return true
}

// launchReduce starts reduce task r on node n and queues fetches for all
// already-finished maps.
func (s *Simulation) launchReduce(r *job.ReduceTask, n topology.NodeID) {
	if r.State != job.TaskPending {
		panic(fmt.Sprintf("engine: launching reduce %s/%d in state %v", r.Job.Spec.Name, r.Index, r.State))
	}
	if err := s.state.Node(n).AcquireReduce(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	r.State = job.TaskRunning
	r.Node = n
	r.Launch = s.eng.Now()
	r.Locality = s.reduceLocality(r.Job, n)
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskStart, n, r.Job, "reduce", r.Index)
		e.Locality = r.Locality.String()
		e.Wait = float64(r.Launch - r.Job.Submitted)
		s.obs.Emit(e)
	}
	run := &reduceRun{
		pendingSrc: make(map[topology.NodeID]*srcBucket),
		flights:    make(map[*topology.Flow]*flight),
		got:        make(map[*job.MapTask]bool),
	}
	s.runningReds[r] = run
	for _, m := range r.Job.Maps {
		if m.State == job.TaskDone {
			if bytes := m.Out[r.Index]; bytes > 0 {
				s.enqueueFetch(run, m.Node, bytes, m)
			}
		}
	}
	s.pumpShuffle(r, run)
	s.maybeStartReduceCompute(r, run)
}

// reduceLocality classifies a reduce placement: local node if the node
// already hosted a launched map of the job (it holds intermediate data),
// local rack if a launched map ran in the same rack, remote otherwise.
func (s *Simulation) reduceLocality(j *job.Job, n topology.NodeID) job.Locality {
	sameRack := false
	anyMap := false
	for _, m := range j.Maps {
		if m.State == job.TaskPending || m.Node < 0 {
			continue
		}
		anyMap = true
		if m.Node == n {
			return job.LocalNode
		}
		if s.topo.Rack(m.Node) == s.topo.Rack(n) {
			sameRack = true
		}
	}
	if sameRack {
		return job.LocalRack
	}
	if !anyMap {
		// No map launched yet: there is no data anywhere, so the placement
		// cannot be penalized; count it as local rack in a single-rack
		// cluster and remote otherwise only if multiple racks exist.
		if s.cfg.Topology.Racks == 1 {
			return job.LocalRack
		}
	}
	return job.Remote
}

// enqueueFetch adds a map's bytes from src to the reduce's shuffle queue,
// coalescing with bytes already queued from the same source.
func (s *Simulation) enqueueFetch(run *reduceRun, src topology.NodeID, bytes float64, m *job.MapTask) {
	b, ok := run.pendingSrc[src]
	if !ok {
		b = &srcBucket{}
		run.pendingSrc[src] = b
		run.queue = append(run.queue, src)
	}
	b.bytes += bytes
	b.maps = append(b.maps, m)
	run.got[m] = true
}

// pumpShuffle starts fetch flows up to the parallelism bound.
func (s *Simulation) pumpShuffle(r *job.ReduceTask, run *reduceRun) {
	for len(run.flights) < s.cfg.ShuffleParallelism && len(run.queue) > 0 {
		src := run.queue[0]
		run.queue = run.queue[1:]
		b, ok := run.pendingSrc[src]
		if !ok {
			continue // bucket was dropped by failure recovery
		}
		delete(run.pendingSrc, src)
		fl := &flight{src: src, bytes: b.bytes, maps: b.maps}
		if src == r.Node {
			s.shuffleLocalBytes += b.bytes
		} else {
			s.shuffleRemoteBytes += b.bytes
		}
		fl.flow = s.topo.Transfer(src, r.Node, b.bytes, func() {
			delete(run.flights, fl.flow)
			r.ShuffledBytes += fl.bytes
			s.pumpShuffle(r, run)
			s.maybeStartReduceCompute(r, run)
		})
		run.flights[fl.flow] = fl
	}
}

// maybeStartReduceCompute begins the sort/reduce phase once every map of
// the job finished and all fetches drained.
func (s *Simulation) maybeStartReduceCompute(r *job.ReduceTask, run *reduceRun) {
	if run.computing || !r.Job.MapsDone() || len(run.flights) > 0 || len(run.queue) > 0 || len(run.pendingSrc) > 0 {
		return
	}
	run.computing = true
	prof := r.Job.Spec.Profile
	dur := s.cfg.TaskOverhead +
		s.rngEngine.Jitter(r.ShuffledBytes/(prof.ReduceRate*s.speedOf[r.Node]), prof.ComputeJitter)
	run.computeEv = s.eng.After(dur, func() { s.finishReduce(r) })
}

// finishReduce completes a reduce task and possibly its job.
func (s *Simulation) finishReduce(r *job.ReduceTask) {
	r.State = job.TaskDone
	r.Finish = s.eng.Now()
	delete(s.runningReds, r)
	s.state.Node(r.Node).ReleaseReduce()
	s.sampleUtil()
	s.reduceTimes = append(s.reduceTimes, r.RunTime())
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskFinish, r.Node, r.Job, "reduce", r.Index)
		e.Locality = r.Locality.String()
		e.Dur = r.RunTime()
		s.obs.Emit(e)
	}

	j := r.Job
	j.DoneReds++
	if j.Done() {
		j.Finished = s.eng.Now()
		for i, a := range s.active {
			if a == j {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
		if s.obs.Enabled() {
			e := obs.Event{T: float64(j.Finished), Type: obs.JobFinish, Node: -1, Job: j.Spec.Name}
			e.Dur = float64(j.Finished - j.Submitted)
			s.obs.Emit(e)
		}
	}
}

// failNode kills a node permanently: running attempts and reduces on it
// die, completed map outputs stored there are re-executed when still
// needed, and the node stops offering slots and heartbeating.
func (s *Simulation) failNode(d topology.NodeID) {
	if s.dead[d] {
		return
	}
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(s.eng.Now()), Type: obs.NodeFail, Node: int(d)})
	}
	// Deterministic iteration over the running-task maps: sort by
	// (job, index) so flow cancellations happen in a reproducible order.
	reds := make([]*job.ReduceTask, 0, len(s.runningReds))
	for r := range s.runningReds {
		reds = append(reds, r)
	}
	sort.Slice(reds, func(a, b int) bool {
		if reds[a].Job.ID != reds[b].Job.ID {
			return reds[a].Job.ID < reds[b].Job.ID
		}
		return reds[a].Index < reds[b].Index
	})
	maps := make([]*job.MapTask, 0, len(s.runningMaps))
	for m := range s.runningMaps {
		maps = append(maps, m)
	}
	sort.Slice(maps, func(a, b int) bool {
		if maps[a].Job.ID != maps[b].Job.ID {
			return maps[a].Job.ID < maps[b].Job.ID
		}
		return maps[a].Index < maps[b].Index
	})

	// 1. Drop shuffle state sourced from the dead node in every running
	// reduce: queued buckets and in-flight fetches from d are lost, and
	// the contributing maps are no longer "got".
	for _, r := range reds {
		run := s.runningReds[r]
		if b, ok := run.pendingSrc[d]; ok {
			delete(run.pendingSrc, d)
			for _, m := range b.maps {
				delete(run.got, m)
			}
		}
		var doomed []*topology.Flow
		for flow, fl := range run.flights {
			if fl.src == d {
				doomed = append(doomed, flow)
			}
		}
		sort.Slice(doomed, func(a, b int) bool {
			return run.flights[doomed[a]].bytes < run.flights[doomed[b]].bytes
		})
		for _, flow := range doomed {
			fl := run.flights[flow]
			s.topo.Net().Cancel(flow)
			delete(run.flights, flow)
			for _, m := range fl.maps {
				delete(run.got, m)
			}
		}
	}

	// 2. Kill map attempts running on d; revert tasks left with no live
	// attempt.
	for _, m := range maps {
		run := s.runningMaps[m]
		changed := false
		for _, a := range run.attempts {
			if a.node == d && !a.dead {
				s.killAttempt(a, true) // slot released before going offline
				changed = true
			}
		}
		if changed && run.liveAttempts() == 0 {
			delete(s.runningMaps, m)
			m.State = job.TaskPending
			m.Progress = 0
			m.Node = -1
			if s.obs.Enabled() {
				e := s.taskEvent(obs.TaskRelaunch, d, m.Job, "map", m.Index)
				e.Reason = "attempt_lost"
				s.obs.Emit(e)
			}
		}
	}

	// 3. Kill reduces hosted on d: their partially-fetched data is lost.
	for _, r := range reds {
		if r.Node != d || r.State != job.TaskRunning {
			continue
		}
		run := s.runningReds[r]
		var flows []*topology.Flow
		for flow := range run.flights {
			flows = append(flows, flow)
		}
		sort.Slice(flows, func(a, b int) bool {
			return run.flights[flows[a]].bytes < run.flights[flows[b]].bytes
		})
		for _, flow := range flows {
			s.topo.Net().Cancel(flow)
		}
		if run.computeEv != nil {
			run.computeEv.Cancel()
			s.eng.Remove(run.computeEv)
		}
		delete(s.runningReds, r)
		s.state.Node(d).ReleaseReduce()
		r.State = job.TaskPending
		r.Node = -1
		r.ShuffledBytes = 0
		r.Locality = job.LocalityUnknown
		s.relaunchedReduces++
		if s.obs.Enabled() {
			e := s.taskEvent(obs.TaskRelaunch, d, r.Job, "reduce", r.Index)
			e.Reason = "host_failed"
			s.obs.Emit(e)
		}
	}

	// 4. Re-execute completed maps whose output lived on d and is still
	// needed by an unfinished reduce.
	for _, j := range s.active {
		for _, m := range j.Maps {
			if m.State != job.TaskDone || m.Node != d {
				continue
			}
			if !s.outputStillNeeded(j, m) {
				continue
			}
			m.State = job.TaskPending
			m.Progress = 0
			m.Node = -1
			j.DoneMaps--
			s.relaunchedMaps++
			if s.obs.Enabled() {
				e := s.taskEvent(obs.TaskRelaunch, d, m.Job, "map", m.Index)
				e.Reason = "output_lost"
				s.obs.Emit(e)
			}
		}
	}

	// 5. Take the node offline.
	s.dead[d] = true
	s.state.Node(d).SetOffline(true)
	s.sampleUtil()
}

// outputStillNeeded reports whether any unfinished reduce of j still needs
// map m's output (i.e. produces bytes for it and has not already fetched
// them).
func (s *Simulation) outputStillNeeded(j *job.Job, m *job.MapTask) bool {
	for _, r := range j.Reduces {
		if m.Out[r.Index] <= 0 {
			continue
		}
		switch r.State {
		case job.TaskDone:
			continue
		case job.TaskPending:
			return true
		case job.TaskRunning:
			run := s.runningReds[r]
			if run == nil || !run.got[m] {
				return true
			}
		}
	}
	return false
}

// sampleUtil records slot occupancy for the utilization time-averages.
func (s *Simulation) sampleUtil() {
	um, ur := s.state.UsedSlots()
	tm, tr := s.state.TotalSlots()
	now := float64(s.eng.Now())
	s.utilMap.Update(now, float64(um)/float64(tm))
	s.utilReduce.Update(now, float64(ur)/float64(tr))
}
