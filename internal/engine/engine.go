// Package engine is the simulation driver: it wires the topology, block
// store, slot model and a task-level scheduler into a JobTracker that
// reacts to TaskTracker heartbeats, executes map/shuffle/reduce phases
// over the flow-level network, and collects the metrics the paper's
// evaluation reports. It also models the Hadoop mechanisms the paper's
// testbed had enabled: speculative execution of straggling map and reduce
// tasks, and recovery from TaskTracker (node) failures with realistic
// detection semantics — a crashed node dies physically at the fault time
// (its tasks stop, its heartbeats cease) but the JobTracker reacts only
// after a heartbeat-expiry lag, then re-executes lost work, retries
// failed attempts up to a cap and blacklists repeat-offender nodes. The
// fault script itself lives in internal/faults.
package engine

import (
	"fmt"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/faults"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// NodeFailure schedules the permanent failure of a node at a simulated
// time: its tasks are killed, its stored map outputs become unavailable,
// and it stops heartbeating. It is the legacy spelling of
// faults.NodeCrash and follows the same detection-lag semantics.
type NodeFailure struct {
	Node int
	At   float64
}

// Config describes one simulated cluster run.
type Config struct {
	// Topology is the physical cluster shape. The default mirrors the
	// paper's testbed: 60 nodes in one rack.
	Topology topology.Spec
	// MapSlotsPerNode and ReduceSlotsPerNode follow the paper's setup
	// ("4 map slots and 2 reduce slots per node").
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// HeartbeatInterval is the TaskTracker heartbeat period in seconds
	// (Hadoop 1.x default: 3 s).
	HeartbeatInterval float64
	// Slowstart is the map-progress fraction gating reduce launches.
	Slowstart float64
	// ShuffleParallelism bounds concurrent fetch flows per reduce task
	// (Hadoop's parallel copiers).
	ShuffleParallelism int
	// TaskOverhead is fixed per-task startup cost in seconds (JVM spawn,
	// task setup).
	TaskOverhead float64
	// Seed makes the whole run reproducible.
	Seed int64
	// CostMode selects hop-count or network-condition distances for the
	// cost model handed to the scheduler.
	CostMode core.Mode
	// CrossTraffic injects this many persistent background flows between
	// random node pairs, exercising the network-condition experiments.
	CrossTraffic int
	// MaxSimTime aborts the run at this simulated horizon (seconds); jobs
	// still unfinished are reported in Result.Unfinished. Zero means the
	// default of 24 simulated hours.
	MaxSimTime float64

	// Speculation enables backup execution of straggling map tasks: when
	// a map's attempt has been running longer than SpecSlowdown times the
	// job's mean completed-map duration (with at least SpecMinCompleted
	// completed maps for the estimate) and a slot has no other work, a
	// second attempt launches there; the first to finish wins.
	Speculation      bool
	SpecSlowdown     float64 // default 1.8
	SpecMinCompleted int     // default 3

	// Failures permanently kills nodes at the given times. Equivalent to
	// listing the nodes in Faults.Crashes.
	Failures []NodeFailure

	// Faults is the deterministic fault-injection plan: scripted crashes,
	// slowdowns, link degradations and replica losses plus the transient
	// attempt-failure process and retry/blacklist policy. The zero plan
	// disables injection entirely and the run is bit-identical to one
	// without the fault layer.
	Faults faults.Plan

	// HeartbeatExpiry is how long after a node stops heartbeating the
	// JobTracker declares it dead and starts recovery (slot reclamation,
	// task re-execution, replica pruning). Zero means the Hadoop-style
	// default of 10 × HeartbeatInterval.
	HeartbeatExpiry float64

	// SlowNodeFraction marks this share of nodes (chosen deterministically
	// from the seed) as stragglers whose compute rates are divided by
	// SlowFactor — the hardware heterogeneity that motivates speculative
	// execution. Zero disables heterogeneity.
	SlowNodeFraction float64
	SlowFactor       float64 // default 2.5 when heterogeneity is on

	// Open configures the open-system mode: a continuous arrival stream
	// feeding per-tenant queues with weighted admission control and
	// optional kill-and-requeue preemption (DESIGN.md §18). The zero
	// value keeps the classic closed-system (fixed-batch) behavior and
	// the run is bit-identical to one before the layer existed.
	Open OpenSystem

	// ResourceMode replaces the Hadoop 1.x fixed slots with a YARN-style
	// container model (the paper's Section V future work): every node has
	// a resource capacity and each map/reduce task requests a container,
	// so the map/reduce split of a node's capacity is no longer static.
	ResourceMode    bool
	NodeResources   cluster.Resources // default 16384 MB / 16 vcores
	MapContainer    cluster.Resources // default 2048 MB / 2 vcores
	ReduceContainer cluster.Resources // default 4096 MB / 4 vcores
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Topology:           topology.DefaultSpec(),
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 2,
		HeartbeatInterval:  3,
		Slowstart:          0.05,
		ShuffleParallelism: 3,
		TaskOverhead:       1,
		Seed:               1,
		CostMode:           core.ModeHops,
		MaxSimTime:         86400,
		SpecSlowdown:       1.8,
		SpecMinCompleted:   3,
		NodeResources:      cluster.Resources{MemMB: 16384, VCores: 16},
		MapContainer:       cluster.Resources{MemMB: 2048, VCores: 2},
		ReduceContainer:    cluster.Resources{MemMB: 4096, VCores: 4},
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MapSlotsPerNode < 1 || c.ReduceSlotsPerNode < 1 {
		return fmt.Errorf("engine: slots per node must be >= 1")
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("engine: heartbeat interval must be positive")
	}
	if c.Slowstart < 0 || c.Slowstart > 1 {
		return fmt.Errorf("engine: slowstart %v outside [0,1]", c.Slowstart)
	}
	if c.ShuffleParallelism < 1 {
		return fmt.Errorf("engine: shuffle parallelism must be >= 1")
	}
	if c.TaskOverhead < 0 {
		return fmt.Errorf("engine: negative task overhead")
	}
	if c.CrossTraffic < 0 {
		return fmt.Errorf("engine: negative cross traffic")
	}
	if c.MaxSimTime < 0 {
		return fmt.Errorf("engine: negative horizon")
	}
	if c.SlowNodeFraction < 0 || c.SlowNodeFraction > 1 {
		return fmt.Errorf("engine: SlowNodeFraction %v outside [0,1]", c.SlowNodeFraction)
	}
	if c.SlowNodeFraction > 0 && c.SlowFactor != 0 && c.SlowFactor <= 1 {
		return fmt.Errorf("engine: SlowFactor %v must exceed 1", c.SlowFactor)
	}
	if c.Speculation {
		if c.SpecSlowdown <= 1 {
			return fmt.Errorf("engine: SpecSlowdown %v must exceed 1", c.SpecSlowdown)
		}
		if c.SpecMinCompleted < 1 {
			return fmt.Errorf("engine: SpecMinCompleted %d must be >= 1", c.SpecMinCompleted)
		}
	}
	if c.HeartbeatExpiry < 0 {
		return fmt.Errorf("engine: negative heartbeat expiry")
	}
	n := c.Topology.Racks * c.Topology.NodesPerRack
	failed := make(map[int]bool, len(c.Failures))
	for _, f := range c.Failures {
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("engine: failure of node %d outside cluster of %d", f.Node, n)
		}
		if f.At < 0 {
			return fmt.Errorf("engine: failure at negative time")
		}
		if failed[f.Node] {
			return fmt.Errorf("engine: duplicate failure of node %d", f.Node)
		}
		failed[f.Node] = true
	}
	if err := c.Faults.Validate(n); err != nil {
		return err
	}
	if err := c.Open.Validate(); err != nil {
		return err
	}
	return nil
}

// mapAttempt is one execution attempt of a map task (there can be two
// when speculation fires). Attempts are pooled (see pool.go): the bound
// callbacks persist across lives, everything else is per-life state.
type mapAttempt struct {
	m            *job.MapTask
	run          *mapRun
	node         topology.NodeID
	locality     job.Locality
	launch       sim.Time
	fetch        *topology.Flow
	fetchSrc     topology.NodeID // replica the input streams from
	fetchDone    bool
	computeStart sim.Time
	computeDur   float64
	computeEv    *sim.Event
	failEv       *sim.Event // scripted transient failure, if drawn
	computeDone  bool
	dead         bool

	fetchFn   func() //lint:pooled-keep bound once: input stream completion
	computeFn func() //lint:pooled-keep bound once: compute phase completion
	failFn    func() //lint:pooled-keep bound once: transient-failure timer
}

// progress returns the attempt's compute progress in [0, 1).
func (a *mapAttempt) progress(now sim.Time) float64 {
	if a.dead || a.computeDur <= 0 {
		return 0
	}
	p := float64(now-a.computeStart) / a.computeDur
	if p < 0 {
		p = 0
	}
	if p > 0.999999 {
		p = 0.999999
	}
	return p
}

// mapRun is the engine-side execution state of a running map task.
type mapRun struct {
	attempts []*mapAttempt
}

// liveAttempts counts attempts that have not been killed.
func (r *mapRun) liveAttempts() int {
	n := 0
	for _, a := range r.attempts {
		if !a.dead {
			n++
		}
	}
	return n
}

// srcBucket aggregates queued shuffle bytes by source node, remembering
// which maps contributed (for failure recovery).
type srcBucket struct {
	bytes float64
	maps  []*job.MapTask
}

// flight is an in-progress shuffle fetch. Flights are pooled (see
// pool.go): doneFn persists across lives.
type flight struct {
	att    *redAttempt
	src    topology.NodeID
	bytes  float64
	maps   []*job.MapTask
	flow   *topology.Flow
	doneFn func() //lint:pooled-keep bound once: fetch flow completion
}

// redAttempt is one execution attempt of a reduce task: its own shuffle
// state (sources, in-flight fetches, received bytes) and compute phase.
// There can be two attempts when reduce speculation fires. Attempts are
// pooled (see pool.go): the bound callbacks and the shuffle-state maps
// persist across lives.
type redAttempt struct {
	r            *job.ReduceTask
	run          *reduceRun
	node         topology.NodeID
	locality     job.Locality
	launch       sim.Time
	pendingSrc   map[topology.NodeID]*srcBucket
	queue        []topology.NodeID // FIFO of sources with pending bytes
	flights      map[*topology.Flow]*flight
	got          map[*job.MapTask]bool // output enqueued, fetched or in flight
	shuffled     float64               // intermediate bytes received so far
	computing    bool
	computeStart sim.Time
	computeDur   float64
	computeEv    *sim.Event
	failFrac     float64 // > 0: scripted transient failure at this compute fraction
	dead         bool

	finishFn func() //lint:pooled-keep bound once: compute phase completion
	failCFn  func() //lint:pooled-keep bound once: scripted mid-compute failure
}

// reduceRun is the engine-side execution state of a running reduce task.
type reduceRun struct {
	attempts []*redAttempt
}

// liveAttempts counts attempts that have not been killed.
func (r *reduceRun) liveAttempts() int {
	n := 0
	for _, a := range r.attempts {
		if !a.dead {
			n++
		}
	}
	return n
}

// jobStats accumulates completed-task durations for speculation.
type jobStats struct {
	completed    int
	totalDur     float64
	redCompleted int
	redTotalDur  float64
}

// Simulation is one configured run.
type Simulation struct {
	cfg   Config
	eng   *sim.Engine
	topo  *topology.Cluster
	store *hdfs.Store
	state *cluster.State
	cost  *core.CostModel
	place *placement.Service
	sch   sched.Scheduler
	obs   *obs.Stream

	rngEngine *sim.RNG
	rngJobs   *sim.RNG
	rngFaults *sim.RNG

	specs  []job.Spec
	jobs   []*job.Job
	active []*job.Job

	runningMaps map[*job.MapTask]*mapRun
	runningReds map[*job.ReduceTask]*reduceRun
	stats       map[job.ID]*jobStats
	speedOf     []float64 // per-node compute-speed multiplier (1 = nominal)
	baseSpeed   []float64 // speedOf before transient slowdowns (heterogeneity only)

	// Free lists for the pooled hot-path records (pool.go) and the
	// per-node heartbeat closures, allocated once instead of per beat.
	freeMapRuns []*mapRun
	freeMapAtts []*mapAttempt
	freeRedRuns []*reduceRun
	freeRedAtts []*redAttempt
	freeBuckets []*srcBucket
	freeFlights []*flight
	hbFns       []func()

	// ctx is the scheduler context reused across every offer; buildCtx
	// refreshes its fields in place so the per-offer snapshot allocates
	// nothing and the context's internal scratch buffers persist.
	ctx sched.Context

	// Failure state. crashed marks nodes physically dead at the fault
	// instant: their attempts stop and heartbeats cease, but the
	// JobTracker's bookkeeping is untouched. dead marks nodes whose
	// heartbeat-expiry lapsed: slots reclaimed, work re-queued, offline.
	crashed   map[topology.NodeID]bool
	dead      map[topology.NodeID]bool
	hbExpiry  float64
	heldMap   map[topology.NodeID]int // slots of crash-killed attempts awaiting detection
	heldRed   map[topology.NodeID]int
	mapFails  map[*job.MapTask]int // transient failures per task (attempt cap)
	redFails  map[*job.ReduceTask]int
	nodeFails map[failKey]int // per-(job, node) attempt failures (blacklist)
	blacklist map[topology.NodeID]bool
	// blacklistHolds counts, per blacklisted node, the active jobs whose
	// failure tally crossed the threshold; the last holder's teardown
	// releases the node back into the candidate sets (DESIGN.md §18).
	blacklistHolds  map[topology.NodeID]int
	everBlacklisted int // cumulative blacklist entries over the run

	// Open-system state (opensys.go). Zero/nil in closed-system runs.
	openOn         bool
	tenants        []*tenantState
	tenantOf       map[string]*tenantState
	openJobs       map[*job.Job]*openJob
	specsSubmitted int // fixed-path submissions fired so far
	openSubmitted  int // arrival-stream jobs instantiated so far
	arrivalsFired  int
	openActiveN    int // admitted open-system jobs currently in the system
	admitSeq       int
	preemptions    int
	rejectedJobs   int

	// Steady-state slot-utilization averages, tracked from the warm-up
	// instant on (open-system mode only).
	ssStarted            bool
	lastUtilM, lastUtilR float64
	utilMapSS            metrics.TimeAvg
	utilRedSS            metrics.TimeAvg

	utilMap    metrics.TimeAvg
	utilReduce metrics.TimeAvg

	mapTimes    []float64
	reduceTimes []float64
	ran         bool

	mapRemoteBytes     float64 // map input fetched across the network
	shuffleRemoteBytes float64 // intermediate data moved across the network
	shuffleLocalBytes  float64 // intermediate data served from local disk

	speculated        int // backup map attempts launched
	specWins          int // map backups that finished first
	speculatedReds    int // backup reduce attempts launched
	specRedWins       int // reduce backups that finished first
	relaunchedMaps    int // done maps re-executed after node failure
	relaunchedReduces int // running reduces restarted after node failure
	attemptFailures   int // transient attempt failures injected
}

// failKey indexes the per-(job, node) attempt-failure tallies.
type failKey struct {
	job  job.ID
	node topology.NodeID
}

// New builds a simulation over the given job specs and scheduler builder.
func New(cfg Config, specs []job.Spec, builder sched.Builder) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 && !cfg.Open.Enabled() {
		return nil, fmt.Errorf("engine: no job specs")
	}
	if builder == nil {
		return nil, fmt.Errorf("engine: nil scheduler builder")
	}
	if cfg.MaxSimTime == 0 {
		cfg.MaxSimTime = 86400
	}
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	topo, err := topology.NewCluster(eng, cfg.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	state, err := cluster.New(topo.Size(), cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	if cfg.ResourceMode {
		if err := state.EnableResources(cfg.NodeResources, cfg.MapContainer, cfg.ReduceContainer); err != nil {
			return nil, err
		}
	}
	cost, err := core.NewCostModel(topo, store, topo, cfg.CostMode)
	if err != nil {
		return nil, err
	}
	// The placement decision service wraps the simulation's live state;
	// the schedulers route every decision through Decider sessions
	// against it. It also installs the distance-class structure on the
	// cluster state (hop-mode costs collapse into rack classes, and the
	// state maintains per-class free-slot counts incrementally so the
	// schedulers' C_avg sums are O(classes) per offer). The engine keeps
	// its own cost model for locality tagging at task launch.
	place, err := placement.NewService(placement.Deps{
		Net:   topo,
		Store: store,
		Rate:  topo,
		Slots: state,
		Mode:  cfg.CostMode,
	})
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:         cfg,
		eng:         eng,
		topo:        topo,
		store:       store,
		state:       state,
		cost:        cost,
		place:       place,
		rngEngine:   root.Fork("engine"),
		rngJobs:     root.Fork("jobs"),
		specs:       specs,
		runningMaps: make(map[*job.MapTask]*mapRun),
		runningReds: make(map[*job.ReduceTask]*reduceRun),
		stats:       make(map[job.ID]*jobStats),
		crashed:     make(map[topology.NodeID]bool),
		dead:        make(map[topology.NodeID]bool),
		heldMap:     make(map[topology.NodeID]int),
		heldRed:     make(map[topology.NodeID]int),
		mapFails:    make(map[*job.MapTask]int),
		redFails:    make(map[*job.ReduceTask]int),
		nodeFails:   make(map[failKey]int),
		blacklist:   make(map[topology.NodeID]bool),
		obs:         obs.NewStream(),
	}
	s.blacklistHolds = make(map[topology.NodeID]int)
	s.initOpen()
	s.hbExpiry = cfg.HeartbeatExpiry
	if s.hbExpiry == 0 {
		s.hbExpiry = 10 * cfg.HeartbeatInterval
	}
	topo.Net().SetStream(s.obs)
	s.sch = builder(sched.Env{Place: place, RNG: root.Fork("sched"), Obs: s.obs})
	if s.sch == nil {
		return nil, fmt.Errorf("engine: builder returned nil scheduler")
	}
	// Heterogeneous node speeds: a deterministic subset of nodes computes
	// slower by SlowFactor.
	s.speedOf = make([]float64, topo.Size())
	for i := range s.speedOf {
		s.speedOf[i] = 1
	}
	if cfg.SlowNodeFraction > 0 {
		factor := cfg.SlowFactor
		if factor == 0 {
			factor = 2.5
		}
		hetRNG := root.Fork("heterogeneity")
		slow := int(cfg.SlowNodeFraction*float64(topo.Size()) + 0.5)
		for _, idx := range hetRNG.Perm(topo.Size())[:slow] {
			s.speedOf[idx] = 1 / factor
		}
	}
	s.baseSpeed = append([]float64(nil), s.speedOf...)
	// Forked last so the earlier streams (hdfs, engine, jobs, sched,
	// heterogeneity) see the exact seeds they saw before the fault layer
	// existed — the empty-plan bit-identity guarantee depends on it.
	s.rngFaults = root.Fork("faults")
	// One heartbeat closure per node for the lifetime of the run; the
	// heartbeat chain reschedules these instead of allocating a closure
	// per beat.
	s.hbFns = make([]func(), topo.Size())
	for i := range s.hbFns {
		n := topology.NodeID(i)
		s.hbFns[i] = func() { s.heartbeat(n) }
	}
	return s, nil
}

// Cost exposes the cost model (for tests).
func (s *Simulation) Cost() *core.CostModel { return s.cost }

// Placement exposes the placement decision service the schedulers decide
// against (for tests and tools).
func (s *Simulation) Placement() *placement.Service { return s.place }

// Attach subscribes an observer to the simulation's event stream. It must
// be called before Run: attaching mid-run would see a stream missing its
// prefix, which defeats the reproducibility guarantee.
func (s *Simulation) Attach(o obs.Observer) error {
	if s.ran {
		return fmt.Errorf("engine: Attach after Run")
	}
	if o == nil {
		return fmt.Errorf("engine: Attach of nil observer")
	}
	s.obs.Attach(o)
	return nil
}

// taskEvent seeds a task-lifecycle observation.
func (s *Simulation) taskEvent(t obs.Type, node topology.NodeID, j *job.Job, kind string, index int) obs.Event {
	return obs.Event{
		T:    float64(s.eng.Now()),
		Type: t,
		Node: int(node),
		Job:  j.Spec.Name,
		Task: &obs.TaskRef{Kind: kind, Index: index},
	}
}

// Jobs exposes the instantiated jobs after Run, for invariant checks.
func (s *Simulation) Jobs() []*job.Job { return s.jobs }

// Run executes the simulation to completion (or the horizon) and returns
// the collected metrics. Run may be called once.
func (s *Simulation) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("engine: Run called twice")
	}
	s.ran = true

	// Background cross-traffic between distinct random pairs.
	for i := 0; i < s.cfg.CrossTraffic; i++ {
		src := topology.NodeID(s.rngEngine.Intn(s.topo.Size()))
		dst := topology.NodeID(s.rngEngine.Intn(s.topo.Size()))
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % s.topo.Size())
		}
		s.topo.InjectCrossTraffic(src, dst)
	}

	// Job submissions. Open-system arrivals are scheduled from the same
	// loop position, so a pure-arrival run assigns its events the exact
	// sequence numbers a fixed-batch run would — the t=0 equivalence
	// guarantee depends on this.
	for i := range s.specs {
		spec := s.specs[i]
		id := job.ID(i + 1)
		s.eng.Schedule(spec.Submit, func() {
			s.specsSubmitted++
			s.submit(id, spec)
		})
	}
	for i := range s.cfg.Open.Arrivals {
		a := s.cfg.Open.Arrivals[i]
		s.eng.Schedule(a.At, func() { s.arrive(a) })
	}

	// Scheduled faults: legacy Failures and the fault plan both route
	// through crashNode, which kills the node physically and arms the
	// heartbeat-expiry timer for JobTracker-side recovery.
	for _, f := range s.cfg.Failures {
		n := topology.NodeID(f.Node)
		s.eng.Schedule(sim.Time(f.At), func() { s.crashNode(n) })
	}
	s.scheduleFaults()

	// Heartbeat chains, phase-offset per node so offers do not synchronize.
	interval := s.cfg.HeartbeatInterval
	for i := 0; i < s.topo.Size(); i++ {
		offset := interval * float64(i) / float64(s.topo.Size())
		s.eng.Schedule(sim.Time(offset), s.hbFns[i])
	}

	s.utilMap.Update(0, 0)
	s.utilReduce.Update(0, 0)

	if _, err := s.eng.Run(sim.Time(s.cfg.MaxSimTime)); err != nil {
		return nil, err
	}
	return s.collect(), nil
}

// submit instantiates a job (placing its input blocks) and activates it.
func (s *Simulation) submit(id job.ID, spec job.Spec) {
	j, err := job.New(id, spec, s.store, s.rngJobs)
	if err != nil {
		// Specs are validated by the builders; a failure here is a
		// programming error worth stopping the simulation for.
		panic(fmt.Sprintf("engine: submit %s: %v", spec.Name, err))
	}
	j.Submitted = s.eng.Now()
	s.jobs = append(s.jobs, j)
	s.active = append(s.active, j)
	s.stats[j.ID] = &jobStats{}
	if s.obs.Enabled() {
		s.obs.Emit(obs.Event{T: float64(j.Submitted), Type: obs.JobSubmit, Node: -1, Job: j.Spec.Name})
	}
}

// allDone reports whether every submitted job finished and no
// submissions, arrivals or queued work remain.
func (s *Simulation) allDone() bool {
	if len(s.active) > 0 || s.specsSubmitted < len(s.specs) {
		return false
	}
	if !s.openOn {
		return true
	}
	if s.arrivalsFired < len(s.cfg.Open.Arrivals) {
		return false
	}
	for _, t := range s.tenants {
		if len(t.queue) > 0 {
			return false
		}
	}
	return true
}

// heartbeat is one TaskTracker report: refresh progress, offer free slots
// to the scheduler, and reschedule.
func (s *Simulation) heartbeat(n topology.NodeID) {
	if s.allDone() || s.crashed[n] {
		return // stop the chain
	}
	s.refreshProgress()
	node := s.state.Node(n)
	for node.FreeMapSlots() > 0 {
		ctx := s.buildCtx()
		m := s.sch.AssignMap(ctx, n)
		if m == nil {
			break
		}
		if !s.launchMap(m, n) {
			break // unschedulable right now (e.g. all replicas dead)
		}
	}
	// Speculative execution fills slots that have no pending work left.
	if s.cfg.Speculation {
		for node.FreeMapSlots() > 0 {
			if !s.trySpeculate(n) {
				break
			}
		}
	}
	for node.FreeReduceSlots() > 0 {
		ctx := s.buildCtx()
		r := s.sch.AssignReduce(ctx, n)
		if r == nil {
			break
		}
		s.launchReduce(r, n)
	}
	if s.cfg.Speculation {
		for node.FreeReduceSlots() > 0 {
			if !s.trySpeculateReduce(n) {
				break
			}
		}
	}
	s.eng.After(s.cfg.HeartbeatInterval, s.hbFns[n])
}

// buildCtx snapshots the scheduler-visible cluster state into the
// simulation's single reused Context. Schedulers never retain the
// context beyond the Assign call, so in-place refresh is safe.
func (s *Simulation) buildCtx() *sched.Context {
	am, amCounts, amVer := s.state.AvailMap()
	ar, arCounts, arVer := s.state.AvailReduce()
	s.ctx.Now = s.eng.Now()
	s.ctx.Jobs = s.active
	s.ctx.AvailMap = core.Avail{Nodes: am, Counts: amCounts, Version: amVer}
	s.ctx.AvailReduce = core.Avail{Nodes: ar, Counts: arCounts, Version: arVer}
	s.ctx.Slowstart = s.cfg.Slowstart
	return &s.ctx
}

// refreshProgress updates the Progress field of every running map task to
// the current instant, so the scheduler's estimator sees fresh d_read and
// A_jf values, exactly as heartbeat-reported counters would provide.
// With speculation a task's progress is that of its fastest attempt.
func (s *Simulation) refreshProgress() {
	now := s.eng.Now()
	for m, run := range s.runningMaps {
		best := 0.0
		for _, a := range run.attempts {
			if p := a.progress(now); p > best {
				best = p
			}
		}
		m.Progress = best
	}
}

// aliveNearest returns the closest live replica of the block, or ok=false
// when every replica's node has crashed (replicas on crashed nodes are
// physically unreadable even before the JobTracker detects the failure).
func (s *Simulation) aliveNearest(b hdfs.BlockID, from topology.NodeID) (topology.NodeID, bool) {
	best := topology.NodeID(-1)
	bestD := 0.0
	found := false
	for _, r := range s.store.Replicas(b) {
		if s.crashed[r] {
			continue
		}
		d := s.topo.Distance(from, r)
		if !found || d < bestD {
			found = true
			bestD = d
			best = r
		}
	}
	return best, found
}

// launchMap starts map task m on node n. It reports false when the task
// cannot run (all replicas lost), leaving the task pending.
func (s *Simulation) launchMap(m *job.MapTask, n topology.NodeID) bool {
	if m.State != job.TaskPending {
		panic(fmt.Sprintf("engine: launching map %s/%d in state %v", m.Job.Spec.Name, m.Index, m.State))
	}
	if _, ok := s.aliveNearest(m.Block, n); !ok {
		return false
	}
	if err := s.state.Node(n).AcquireMap(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	m.State = job.TaskRunning
	m.Node = n
	m.Locality = s.cost.Locality(m, n)
	m.Launch = s.eng.Now()
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskStart, n, m.Job, "map", m.Index)
		e.Locality = m.Locality.String()
		e.Wait = float64(m.Launch - m.Job.Submitted)
		s.obs.Emit(e)
	}
	run := s.newMapRun()
	s.runningMaps[m] = run
	s.startAttempt(m, run, n)
	return true
}

// startAttempt begins one execution attempt of m on node n: an input
// stream from the nearest live replica overlapped with the compute work.
func (s *Simulation) startAttempt(m *job.MapTask, run *mapRun, n topology.NodeID) {
	prof := m.Job.Spec.Profile
	att := s.newMapAttempt(m, run)
	att.node = n
	att.locality = s.cost.Locality(m, n)
	att.launch = s.eng.Now()
	run.attempts = append(run.attempts, att)

	src, _ := s.aliveNearest(m.Block, n) // caller checked ok
	if src != n {
		s.mapRemoteBytes += m.Size
	}
	att.fetchSrc = src
	att.fetch = s.topo.Transfer(src, n, m.Size, att.fetchFn)
	att.computeStart = s.eng.Now()
	att.computeDur = s.cfg.TaskOverhead +
		s.rngEngine.Jitter(m.Size/(prof.MapRate*s.speedOf[n]), prof.ComputeJitter)
	att.computeEv = s.eng.After(att.computeDur, att.computeFn)
	// Transient attempt failure: a Bernoulli draw per attempt, failing at
	// a uniform point of the compute phase (always before the completion
	// event, so a selected attempt cannot win the task).
	if p := s.cfg.Faults.TaskFailProb; p > 0 && s.rngFaults.Bernoulli(p) {
		failAt := s.rngFaults.Float64() * att.computeDur
		att.failEv = s.eng.After(failAt, att.failFn)
	}
}

// checkAttempt completes the map when an attempt has both streamed its
// input and finished computing.
func (s *Simulation) checkAttempt(m *job.MapTask, run *mapRun, att *mapAttempt) {
	if att.fetchDone && att.computeDone && m.State == job.TaskRunning {
		s.winMap(m, run, att)
	}
}

// killAttempt cancels an attempt and releases its slot (when its node is
// still alive; crashed nodes release bookkeeping at failure detection).
func (s *Simulation) killAttempt(att *mapAttempt, releaseSlot bool) {
	if att.dead {
		return
	}
	att.dead = true
	if att.fetch != nil {
		if !att.fetch.Finished() {
			s.topo.Net().Cancel(att.fetch)
		}
		s.topo.Net().Release(att.fetch)
		att.fetch = nil
	}
	if att.computeEv != nil {
		att.computeEv.Cancel()
		s.eng.Remove(att.computeEv)
		att.computeEv = nil
	}
	if att.failEv != nil {
		s.eng.Remove(att.failEv)
		att.failEv = nil
	}
	if releaseSlot {
		s.state.Node(att.node).ReleaseMap()
	}
}

// winMap completes a map task via the winning attempt: kills any backup,
// feeds the output to the running reduces and updates job state.
func (s *Simulation) winMap(m *job.MapTask, run *mapRun, winner *mapAttempt) {
	for _, a := range run.attempts {
		if a != winner {
			s.killAttempt(a, !s.crashed[a.node])
			s.sampleUtil()
		}
	}
	if winner != run.attempts[0] {
		s.specWins++
		if s.obs.Enabled() {
			s.obs.Emit(s.taskEvent(obs.SpecWin, winner.node, m.Job, "map", m.Index))
		}
	}
	winner.dead = true // no further callbacks
	m.State = job.TaskDone
	m.Progress = 1
	m.Finish = s.eng.Now()
	m.Node = winner.node
	m.Locality = winner.locality
	delete(s.runningMaps, m)
	s.state.Node(winner.node).ReleaseMap()
	s.sampleUtil()
	s.mapTimes = append(s.mapTimes, float64(m.Finish-winner.launch))
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskFinish, winner.node, m.Job, "map", m.Index)
		e.Locality = m.Locality.String()
		e.Dur = float64(m.Finish - winner.launch)
		s.obs.Emit(e)
	}

	j := m.Job
	j.DoneMaps++
	if st := s.stats[j.ID]; st != nil {
		st.completed++
		st.totalDur += float64(m.Finish - winner.launch)
	}
	// Feed this map's partitions to every live attempt of the job's
	// running reduces.
	for _, r := range j.Reduces {
		if r.State != job.TaskRunning {
			continue
		}
		rrun := s.runningReds[r]
		if rrun == nil {
			continue
		}
		for _, att := range rrun.attempts {
			if att.dead || att.computing {
				continue
			}
			if bytes := m.Out[r.Index]; bytes > 0 && !att.got[m] {
				s.enqueueFetch(att, m.Node, bytes, m)
			}
			s.pumpShuffle(r, rrun, att)
			s.maybeStartReduceCompute(r, rrun, att)
		}
	}
	// Every attempt is dead (winner included) and detached; recycle the
	// run and its attempts.
	s.releaseMapRun(run)
}

// trySpeculate launches a backup attempt of the worst straggling map on
// node n; it reports whether one launched.
func (s *Simulation) trySpeculate(n topology.NodeID) bool {
	now := s.eng.Now()
	var worst *job.MapTask
	var worstRun *mapRun
	worstScore := s.cfg.SpecSlowdown
	for m, run := range s.runningMaps {
		if len(run.attempts) != 1 || run.attempts[0].dead {
			continue // already backed up
		}
		if run.attempts[0].node == n {
			continue // a backup on the same node cannot help
		}
		st := s.stats[m.Job.ID]
		if st == nil || st.completed < s.cfg.SpecMinCompleted {
			continue
		}
		avg := st.totalDur / float64(st.completed)
		if avg <= 0 {
			continue
		}
		score := float64(now-run.attempts[0].launch) / avg
		// Strict ordering with a deterministic tie-break (job, index) so
		// map-iteration order cannot influence the simulation.
		if score > worstScore ||
			(score == worstScore && worst != nil &&
				(m.Job.ID < worst.Job.ID || (m.Job.ID == worst.Job.ID && m.Index < worst.Index))) {
			worstScore = score
			worst = m
			worstRun = run
		}
	}
	if worst == nil {
		return false
	}
	if _, ok := s.aliveNearest(worst.Block, n); !ok {
		return false
	}
	if err := s.state.Node(n).AcquireMap(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	s.speculated++
	if s.obs.Enabled() {
		s.obs.Emit(s.taskEvent(obs.SpecStart, n, worst.Job, "map", worst.Index))
	}
	s.startAttempt(worst, worstRun, n)
	return true
}

// trySpeculateReduce launches a backup attempt of the worst straggling
// reduce on node n, reusing the map-speculation slowdown threshold
// against the job's mean completed-reduce duration; it reports whether
// one launched.
func (s *Simulation) trySpeculateReduce(n topology.NodeID) bool {
	now := s.eng.Now()
	var worst *job.ReduceTask
	var worstRun *reduceRun
	worstScore := s.cfg.SpecSlowdown
	for r, run := range s.runningReds {
		if len(run.attempts) != 1 || run.attempts[0].dead {
			continue // already backed up, or awaiting failure detection
		}
		if run.attempts[0].node == n {
			continue // a backup on the same node cannot help
		}
		st := s.stats[r.Job.ID]
		if st == nil || st.redCompleted < s.cfg.SpecMinCompleted {
			continue
		}
		avg := st.redTotalDur / float64(st.redCompleted)
		if avg <= 0 {
			continue
		}
		score := float64(now-run.attempts[0].launch) / avg
		// Strict ordering with a deterministic tie-break (job, index) so
		// map-iteration order cannot influence the simulation.
		if score > worstScore ||
			(score == worstScore && worst != nil &&
				(r.Job.ID < worst.Job.ID || (r.Job.ID == worst.Job.ID && r.Index < worst.Index))) {
			worstScore = score
			worst = r
			worstRun = run
		}
	}
	if worst == nil {
		return false
	}
	if err := s.state.Node(n).AcquireReduce(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	s.speculatedReds++
	if s.obs.Enabled() {
		s.obs.Emit(s.taskEvent(obs.SpecStart, n, worst.Job, "reduce", worst.Index))
	}
	// The backup re-fetches every finished map's output independently.
	att := s.newRedAttempt(worst, worstRun, n)
	worstRun.attempts = append(worstRun.attempts, att)
	s.enqueueDoneMaps(worst, att)
	s.pumpShuffle(worst, worstRun, att)
	s.maybeStartReduceCompute(worst, worstRun, att)
	return true
}

// launchReduce starts reduce task r on node n and queues fetches for all
// already-finished maps.
func (s *Simulation) launchReduce(r *job.ReduceTask, n topology.NodeID) {
	if r.State != job.TaskPending {
		panic(fmt.Sprintf("engine: launching reduce %s/%d in state %v", r.Job.Spec.Name, r.Index, r.State))
	}
	if err := s.state.Node(n).AcquireReduce(); err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	s.sampleUtil()
	r.State = job.TaskRunning
	r.Node = n
	r.Launch = s.eng.Now()
	r.Locality = s.reduceLocality(r.Job, n)
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskStart, n, r.Job, "reduce", r.Index)
		e.Locality = r.Locality.String()
		e.Wait = float64(r.Launch - r.Job.Submitted)
		s.obs.Emit(e)
	}
	run := s.newReduceRun()
	s.runningReds[r] = run
	att := s.newRedAttempt(r, run, n)
	run.attempts = append(run.attempts, att)
	s.enqueueDoneMaps(r, att)
	s.pumpShuffle(r, run, att)
	s.maybeStartReduceCompute(r, run, att)
}

// newRedAttempt builds one reduce execution attempt on node n, drawing
// its transient-failure fate when the fault plan has one.
func (s *Simulation) newRedAttempt(r *job.ReduceTask, run *reduceRun, n topology.NodeID) *redAttempt {
	att := s.newRedAttemptRecord(r, run)
	att.node = n
	att.locality = s.reduceLocality(r.Job, n)
	att.launch = s.eng.Now()
	if p := s.cfg.Faults.TaskFailProb; p > 0 && s.rngFaults.Bernoulli(p) {
		// Reduce compute duration is unknown until the shuffle drains, so
		// remember the failure point as a fraction of the eventual compute
		// phase. Strictly positive so the failure event fires mid-phase.
		att.failFrac = 0.05 + 0.9*s.rngFaults.Float64()
	}
	return att
}

// reduceLocality classifies a reduce placement: local node if the node
// already hosted a launched map of the job (it holds intermediate data),
// local rack if a launched map ran in the same rack, remote otherwise.
func (s *Simulation) reduceLocality(j *job.Job, n topology.NodeID) job.Locality {
	sameRack := false
	anyMap := false
	for _, m := range j.Maps {
		if m.State == job.TaskPending || m.Node < 0 {
			continue
		}
		anyMap = true
		if m.Node == n {
			return job.LocalNode
		}
		if s.topo.Rack(m.Node) == s.topo.Rack(n) {
			sameRack = true
		}
	}
	if sameRack {
		return job.LocalRack
	}
	if !anyMap {
		// No map launched yet: there is no data anywhere, so the placement
		// cannot be penalized; count it as local rack in a single-rack
		// cluster and remote otherwise only if multiple racks exist.
		if s.cfg.Topology.Racks == 1 {
			return job.LocalRack
		}
	}
	return job.Remote
}

// enqueueDoneMaps queues every finished map's output for a fresh reduce
// attempt. A finished map whose output node was already declared dead can
// never serve a fetch again — and no future detection sweep would clean a
// bucket queued under it — so its output counts as lost here: the map
// reverts to pending and its re-execution feeds this attempt on finish.
// Outputs on crashed-but-undetected nodes are queued normally; the
// JobTracker does not know yet, and the detection sweep reclaims them.
func (s *Simulation) enqueueDoneMaps(r *job.ReduceTask, att *redAttempt) {
	for _, m := range r.Job.Maps {
		if m.State != job.TaskDone {
			continue
		}
		bytes := m.Out[r.Index]
		if bytes <= 0 {
			continue
		}
		if s.dead[m.Node] {
			lostAt := m.Node
			m.State = job.TaskPending
			m.Progress = 0
			m.Node = -1
			r.Job.DoneMaps--
			s.relaunchedMaps++
			if s.obs.Enabled() {
				e := s.taskEvent(obs.TaskRelaunch, lostAt, m.Job, "map", m.Index)
				e.Reason = "output_lost"
				s.obs.Emit(e)
			}
			continue
		}
		s.enqueueFetch(att, m.Node, bytes, m)
	}
}

// enqueueFetch adds a map's bytes from src to a reduce attempt's shuffle
// queue, coalescing with bytes already queued from the same source.
func (s *Simulation) enqueueFetch(att *redAttempt, src topology.NodeID, bytes float64, m *job.MapTask) {
	b, ok := att.pendingSrc[src]
	if !ok {
		b = s.newBucket()
		att.pendingSrc[src] = b
		att.queue = append(att.queue, src)
	}
	b.bytes += bytes
	b.maps = append(b.maps, m)
	att.got[m] = true
}

// pumpShuffle starts fetch flows up to the parallelism bound for one
// reduce attempt.
func (s *Simulation) pumpShuffle(r *job.ReduceTask, run *reduceRun, att *redAttempt) {
	for len(att.flights) < s.cfg.ShuffleParallelism && len(att.queue) > 0 {
		// Sources whose TaskTracker crashed cannot serve a fetch, but the
		// JobTracker has not noticed yet: leave their entries queued
		// (blocking the compute phase) until failure detection drops them
		// and re-queues the contributing maps. Fetch from the first live
		// source instead.
		pick := -1
		for i, src := range att.queue {
			if !s.crashed[src] {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		src := att.queue[pick]
		att.queue = append(att.queue[:pick], att.queue[pick+1:]...)
		b, ok := att.pendingSrc[src]
		if !ok {
			continue // bucket was dropped by failure recovery
		}
		delete(att.pendingSrc, src)
		fl := s.newFlight(att)
		fl.src = src
		fl.bytes = b.bytes
		// The maps slice moves to the flight; the bucket must not keep an
		// alias or a recycled bucket would append into the flight's array.
		fl.maps = b.maps
		b.maps = nil
		s.releaseBucket(b)
		if src == att.node {
			s.shuffleLocalBytes += fl.bytes
		} else {
			s.shuffleRemoteBytes += fl.bytes
		}
		fl.flow = s.topo.Transfer(src, att.node, fl.bytes, fl.doneFn)
		att.flights[fl.flow] = fl
	}
}

// maybeStartReduceCompute begins an attempt's sort/reduce phase once every
// map of the job finished and its fetches drained.
func (s *Simulation) maybeStartReduceCompute(r *job.ReduceTask, run *reduceRun, att *redAttempt) {
	if att.dead || att.computing || !r.Job.MapsDone() ||
		len(att.flights) > 0 || len(att.queue) > 0 || len(att.pendingSrc) > 0 {
		return
	}
	att.computing = true
	prof := r.Job.Spec.Profile
	dur := s.cfg.TaskOverhead +
		s.rngEngine.Jitter(att.shuffled/(prof.ReduceRate*s.speedOf[att.node]), prof.ComputeJitter)
	att.computeStart = s.eng.Now()
	att.computeDur = dur
	if att.failFrac > 0 {
		// A transiently failing attempt never reaches completion; its
		// scripted failure fires partway through the compute phase.
		att.computeEv = s.eng.After(att.failFrac*dur, att.failCFn)
		return
	}
	att.computeEv = s.eng.After(dur, att.finishFn)
}

// finishReduce completes a reduce task via the winning attempt (killing
// any backup) and possibly finishes its job.
func (s *Simulation) finishReduce(r *job.ReduceTask, run *reduceRun, winner *redAttempt) {
	for _, a := range run.attempts {
		if a != winner && !a.dead {
			s.killRedAttempt(a, !s.crashed[a.node])
			s.sampleUtil()
		}
	}
	if winner != run.attempts[0] {
		s.specRedWins++
		if s.obs.Enabled() {
			s.obs.Emit(s.taskEvent(obs.SpecWin, winner.node, r.Job, "reduce", r.Index))
		}
	}
	winner.dead = true // no further callbacks
	r.State = job.TaskDone
	r.Finish = s.eng.Now()
	r.Node = winner.node
	r.Locality = winner.locality
	r.ShuffledBytes = winner.shuffled
	delete(s.runningReds, r)
	s.state.Node(winner.node).ReleaseReduce()
	s.sampleUtil()
	s.reduceTimes = append(s.reduceTimes, r.RunTime())
	if s.obs.Enabled() {
		e := s.taskEvent(obs.TaskFinish, r.Node, r.Job, "reduce", r.Index)
		e.Locality = r.Locality.String()
		e.Dur = r.RunTime()
		s.obs.Emit(e)
	}

	j := r.Job
	j.DoneReds++
	if st := s.stats[j.ID]; st != nil {
		st.redCompleted++
		st.redTotalDur += r.RunTime()
	}
	if j.Done() {
		j.Finished = s.eng.Now()
		for i, a := range s.active {
			if a == j {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
		if s.obs.Enabled() {
			e := obs.Event{T: float64(j.Finished), Type: obs.JobFinish, Node: -1, Job: j.Spec.Name}
			e.Dur = float64(j.Finished - j.Submitted)
			s.obs.Emit(e)
		}
		s.onJobEnd(j)
	}
	// Every attempt is dead (winner included) and detached; recycle the
	// run and its attempts.
	s.releaseReduceRun(run)
}

// outputStillNeeded reports whether any unfinished reduce of j still needs
// map m's output (i.e. produces bytes for it and some attempt has not
// already fetched them).
func (s *Simulation) outputStillNeeded(j *job.Job, m *job.MapTask) bool {
	for _, r := range j.Reduces {
		if m.Out[r.Index] <= 0 {
			continue
		}
		switch r.State {
		case job.TaskDone:
			continue
		case job.TaskPending:
			return true
		case job.TaskRunning:
			run := s.runningReds[r]
			if run == nil || run.liveAttempts() == 0 {
				return true
			}
			for _, att := range run.attempts {
				if !att.dead && !att.got[m] {
					return true
				}
			}
		}
	}
	return false
}

// sampleUtil records slot occupancy for the utilization time-averages.
// In open-system mode a second pair of averages starts at the warm-up
// instant, so steady-state utilization excludes the fill-up transient.
func (s *Simulation) sampleUtil() {
	um, ur := s.state.UsedSlots()
	tm, tr := s.state.TotalSlots()
	now := float64(s.eng.Now())
	vm := float64(um) / float64(tm)
	vr := float64(ur) / float64(tr)
	s.utilMap.Update(now, vm)
	s.utilReduce.Update(now, vr)
	if s.openOn {
		if !s.ssStarted && now >= s.cfg.Open.Warmup {
			s.ssStarted = true
			s.utilMapSS.Update(s.cfg.Open.Warmup, s.lastUtilM)
			s.utilRedSS.Update(s.cfg.Open.Warmup, s.lastUtilR)
		}
		if s.ssStarted {
			s.utilMapSS.Update(now, vm)
			s.utilRedSS.Update(now, vr)
		}
		s.lastUtilM, s.lastUtilR = vm, vr
	}
}
