// Package hdfs models a distributed block store in the style of the Hadoop
// Distributed File System: files are split into fixed-size blocks, each
// block is replicated onto several data nodes according to a placement
// policy, and the scheduler consults the store for replica locations
// (the L_lj indicator of the paper) and block sizes (B_j).
package hdfs

import (
	"fmt"
	"math"

	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// BlockID identifies a block within a Store.
type BlockID int

// Block is one replicated chunk of a file.
type Block struct {
	ID       BlockID
	Size     float64           // bytes (B_j in the paper)
	Replicas []topology.NodeID //lint:epoch-guarded replica locations feed cached cost rows; see Store.epoch
}

// PlacementPolicy chooses the data nodes holding a new block's replicas.
type PlacementPolicy interface {
	// Place returns repl distinct node IDs for a new block.
	Place(net topology.Network, rng *sim.RNG, repl int) []topology.NodeID
	// Name identifies the policy in logs and experiment output.
	Name() string
}

// Store holds blocks and per-node usage statistics.
type Store struct {
	net    topology.Network
	rng    *sim.RNG
	blocks []Block
	usage  []float64 // bytes stored per node (counting replicas)
	epoch  uint64    // bumped on every replica-set mutation after placement
}

// NewStore creates an empty store over the given network.
func NewStore(net topology.Network, rng *sim.RNG) *Store {
	return &Store{net: net, rng: rng, usage: make([]float64, net.Size())}
}

// AddFile splits totalBytes into blocks of blockSize (the final block may
// be smaller), places each with policy at the given replication factor,
// and returns the new block IDs. repl is clamped to the cluster size.
func (s *Store) AddFile(totalBytes, blockSize float64, repl int, policy PlacementPolicy) ([]BlockID, error) {
	if totalBytes <= 0 {
		return nil, fmt.Errorf("hdfs: file size %v must be positive", totalBytes)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size %v must be positive", blockSize)
	}
	if repl < 1 {
		return nil, fmt.Errorf("hdfs: replication factor %d must be >= 1", repl)
	}
	if repl > s.net.Size() {
		repl = s.net.Size()
	}
	// The epsilon forgives float error when totalBytes is an exact multiple
	// of blockSize computed as totalBytes/n (e.g. 50e9/490 blocks).
	nBlocks := int(math.Ceil(totalBytes/blockSize - 1e-9))
	if nBlocks < 1 {
		nBlocks = 1
	}
	ids := make([]BlockID, 0, nBlocks)
	remaining := totalBytes
	for b := 0; b < nBlocks; b++ {
		size := blockSize
		if remaining < blockSize {
			size = remaining
		}
		remaining -= size
		id, err := s.AddBlock(size, repl, policy)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// AddBlock places a single block and returns its ID.
func (s *Store) AddBlock(size float64, repl int, policy PlacementPolicy) (BlockID, error) {
	if policy == nil {
		policy = RackAware{}
	}
	if repl > s.net.Size() {
		repl = s.net.Size()
	}
	nodes := policy.Place(s.net, s.rng, repl)
	if len(nodes) != repl {
		return 0, fmt.Errorf("hdfs: policy %s returned %d replicas, want %d", policy.Name(), len(nodes), repl)
	}
	seen := make(map[topology.NodeID]struct{}, repl)
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= s.net.Size() {
			return 0, fmt.Errorf("hdfs: policy %s placed replica on invalid node %d", policy.Name(), n)
		}
		if _, dup := seen[n]; dup {
			return 0, fmt.Errorf("hdfs: policy %s placed two replicas on node %d", policy.Name(), n)
		}
		seen[n] = struct{}{}
		s.usage[n] += size
	}
	id := BlockID(len(s.blocks))
	s.blocks = append(s.blocks, Block{ID: id, Size: size, Replicas: nodes})
	return id, nil
}

// NumBlocks returns the number of blocks stored.
func (s *Store) NumBlocks() int { return len(s.blocks) }

// Block returns the block with the given ID.
func (s *Store) Block(id BlockID) Block { return s.blocks[id] }

// Size returns a block's size in bytes (B_j).
func (s *Store) Size(id BlockID) float64 { return s.blocks[id].Size }

// Replicas returns the nodes holding replicas of the block (L_lj = 1).
func (s *Store) Replicas(id BlockID) []topology.NodeID { return s.blocks[id].Replicas }

// HasReplica reports whether node n stores a replica of the block.
func (s *Store) HasReplica(id BlockID, n topology.NodeID) bool {
	for _, r := range s.blocks[id].Replicas {
		if r == n {
			return true
		}
	}
	return false
}

// Nearest returns the replica of id closest to from under the network's
// distance matrix, together with the distance (min over L_lj=1 of h_il).
func (s *Store) Nearest(id BlockID, from topology.NodeID) (topology.NodeID, float64) {
	best := topology.NodeID(-1)
	bestD := math.Inf(1)
	for _, r := range s.blocks[id].Replicas {
		d := s.net.Distance(from, r)
		if d < bestD {
			bestD = d
			best = r
		}
	}
	return best, bestD
}

// Epoch returns the replica-mutation counter. Replica sets are immutable
// between equal epochs, so caches keyed on replica locations (the core
// cost model's per-block rows) can invalidate exactly. Initial placement
// via AddBlock does not bump it: blocks are placed before any cache reads
// them.
func (s *Store) Epoch() uint64 { return s.epoch }

// AddReplica records a new replica of the block on node n — a
// re-replication or rebalance finishing after initial placement — and
// reports whether the replica set changed (false when n already holds
// one). The epoch bumps only on an actual addition.
func (s *Store) AddReplica(id BlockID, n topology.NodeID) bool {
	if int(n) < 0 || int(n) >= s.net.Size() {
		return false
	}
	b := &s.blocks[id]
	for _, r := range b.Replicas {
		if r == n {
			return false
		}
	}
	b.Replicas = append(b.Replicas, n)
	s.usage[n] += b.Size
	s.epoch++
	return true
}

// RemoveReplica deletes node n's replica of the block, preserving the
// order of the survivors, and reports whether one was removed. The epoch
// bumps only on an actual removal.
func (s *Store) RemoveReplica(id BlockID, n topology.NodeID) bool {
	b := &s.blocks[id]
	for i, r := range b.Replicas {
		if r == n {
			b.Replicas = append(b.Replicas[:i], b.Replicas[i+1:]...)
			s.usage[n] -= b.Size
			s.epoch++
			return true
		}
	}
	return false
}

// RemoveNodeReplicas deletes every replica stored on node n — the
// namenode's view after a datanode is declared dead, or a scripted
// replica-loss fault — and returns how many blocks lost a replica.
// Blocks left with no replicas stay in the store; readers observe an
// empty replica set and must fail or fall back.
func (s *Store) RemoveNodeReplicas(n topology.NodeID) int {
	lost := 0
	for i := range s.blocks {
		b := &s.blocks[i]
		for j, r := range b.Replicas {
			if r == n {
				b.Replicas = append(b.Replicas[:j], b.Replicas[j+1:]...)
				s.usage[n] -= b.Size
				lost++
				break
			}
		}
	}
	if lost > 0 {
		s.epoch++
	}
	return lost
}

// SetReplicas replaces block id's replica set with an exact copy of
// nodes, preserving their order — Nearest breaks distance ties by slice
// order, so restoring a checkpointed store must reproduce the order
// bit-for-bit, not just the membership. Usage statistics are adjusted
// and the epoch bumps. Out-of-range block or node IDs and duplicate
// nodes are rejected with the state unchanged.
func (s *Store) SetReplicas(id BlockID, nodes []topology.NodeID) error {
	if int(id) < 0 || int(id) >= len(s.blocks) {
		return fmt.Errorf("hdfs: no block %d", id)
	}
	seen := make(map[topology.NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= s.net.Size() {
			return fmt.Errorf("hdfs: replica on invalid node %d", n)
		}
		if _, dup := seen[n]; dup {
			return fmt.Errorf("hdfs: duplicate replica on node %d", n)
		}
		seen[n] = struct{}{}
	}
	b := &s.blocks[id]
	for _, r := range b.Replicas {
		s.usage[r] -= b.Size
	}
	b.Replicas = append(make([]topology.NodeID, 0, len(nodes)), nodes...)
	for _, r := range b.Replicas {
		s.usage[r] += b.Size
	}
	s.epoch++
	return nil
}

// Usage returns the bytes stored on node n across all replicas.
func (s *Store) Usage(n topology.NodeID) float64 { return s.usage[n] }

// UsageImbalance returns max/mean node usage; 1.0 is perfectly balanced.
// Returns 0 for an empty store.
func (s *Store) UsageImbalance() float64 {
	var sum, max float64
	for _, u := range s.usage {
		sum += u
		if u > max {
			max = u
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(s.usage))
	return max / mean
}

// RackAware is the default HDFS placement policy: the first replica on a
// uniformly random node, the second on a node in a different rack when the
// cluster has one, and further replicas on distinct random nodes preferring
// the second replica's rack.
type RackAware struct{}

// Name implements PlacementPolicy.
func (RackAware) Name() string { return "rack-aware" }

// Place implements PlacementPolicy.
func (RackAware) Place(net topology.Network, rng *sim.RNG, repl int) []topology.NodeID {
	n := net.Size()
	chosen := make([]topology.NodeID, 0, repl)
	used := make(map[topology.NodeID]struct{}, repl)
	pick := func(ok func(topology.NodeID) bool) bool {
		// Rejection-sample a few times, then fall back to a scan so the
		// policy terminates even when the predicate is rarely satisfiable.
		for t := 0; t < 16; t++ {
			c := topology.NodeID(rng.Intn(n))
			if _, dup := used[c]; !dup && ok(c) {
				chosen = append(chosen, c)
				used[c] = struct{}{}
				return true
			}
		}
		start := rng.Intn(n)
		for i := 0; i < n; i++ {
			c := topology.NodeID((start + i) % n)
			if _, dup := used[c]; !dup && ok(c) {
				chosen = append(chosen, c)
				used[c] = struct{}{}
				return true
			}
		}
		return false
	}
	any := func(topology.NodeID) bool { return true }

	// First replica: anywhere.
	pick(any)
	if repl >= 2 && len(chosen) == 1 {
		first := chosen[0]
		offRack := func(c topology.NodeID) bool { return net.Rack(c) != net.Rack(first) }
		if !pick(offRack) {
			pick(any) // single-rack cluster
		}
	}
	for len(chosen) < repl {
		if len(chosen) >= 2 {
			second := chosen[1]
			sameRack := func(c topology.NodeID) bool { return net.Rack(c) == net.Rack(second) }
			if pick(sameRack) {
				continue
			}
		}
		if !pick(any) {
			break
		}
	}
	return chosen
}

// Uniform places every replica on a distinct uniformly random node.
type Uniform struct{}

// Name implements PlacementPolicy.
func (Uniform) Name() string { return "uniform" }

// Place implements PlacementPolicy.
func (Uniform) Place(net topology.Network, rng *sim.RNG, repl int) []topology.NodeID {
	perm := rng.Perm(net.Size())
	out := make([]topology.NodeID, repl)
	for i := 0; i < repl; i++ {
		out[i] = topology.NodeID(perm[i])
	}
	return out
}

// Subset confines all replicas to the first K nodes, modelling storage
// concentrated on a subset of the cluster (the NAS/SAN scenario the paper
// motivates in the introduction). K is clamped to [repl, cluster size].
type Subset struct {
	K int
}

// Name implements PlacementPolicy.
func (p Subset) Name() string { return fmt.Sprintf("subset-%d", p.K) }

// Place implements PlacementPolicy.
func (p Subset) Place(net topology.Network, rng *sim.RNG, repl int) []topology.NodeID {
	k := p.K
	if k > net.Size() {
		k = net.Size()
	}
	if k < repl {
		k = repl
	}
	perm := rng.Perm(k)
	out := make([]topology.NodeID, repl)
	for i := 0; i < repl; i++ {
		out[i] = topology.NodeID(perm[i])
	}
	return out
}
