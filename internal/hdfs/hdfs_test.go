package hdfs

import (
	"math"
	"testing"
	"testing/quick"

	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

func testNet(t *testing.T, racks, perRack int) *topology.Cluster {
	t.Helper()
	spec := topology.DefaultSpec()
	spec.Racks = racks
	spec.NodesPerRack = perRack
	c, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddFileBlockCount(t *testing.T) {
	net := testNet(t, 1, 10)
	s := NewStore(net, sim.NewRNG(1))
	const blockSize = 128e6
	cases := []struct {
		bytes float64
		want  int
	}{
		{128e6, 1},
		{129e6, 2},
		{1280e6, 10},
		{1e6, 1},
		{127e6, 1},
		{383e6, 3},
	}
	for _, c := range cases {
		ids, err := s.AddFile(c.bytes, blockSize, 2, RackAware{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != c.want {
			t.Errorf("AddFile(%v): %d blocks, want %d", c.bytes, len(ids), c.want)
		}
		var total float64
		for _, id := range ids {
			total += s.Size(id)
			if s.Size(id) > blockSize {
				t.Errorf("block %d size %v exceeds block size", id, s.Size(id))
			}
		}
		if math.Abs(total-c.bytes) > 1 {
			t.Errorf("AddFile(%v): blocks sum to %v", c.bytes, total)
		}
	}
}

func TestAddFileValidation(t *testing.T) {
	net := testNet(t, 1, 4)
	s := NewStore(net, sim.NewRNG(1))
	if _, err := s.AddFile(0, 128e6, 2, nil); err == nil {
		t.Error("zero-size file accepted")
	}
	if _, err := s.AddFile(1e6, 0, 2, nil); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := s.AddFile(1e6, 128e6, 0, nil); err == nil {
		t.Error("zero replication accepted")
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	net := testNet(t, 1, 3)
	s := NewStore(net, sim.NewRNG(1))
	ids, err := s.AddFile(1e6, 128e6, 10, Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Replicas(ids[0])); got != 3 {
		t.Fatalf("replicas = %d, want clamped 3", got)
	}
}

func TestReplicasDistinct(t *testing.T) {
	net := testNet(t, 2, 5)
	s := NewStore(net, sim.NewRNG(42))
	for _, pol := range []PlacementPolicy{RackAware{}, Uniform{}, Subset{K: 4}} {
		for i := 0; i < 50; i++ {
			id, err := s.AddBlock(128e6, 3, pol)
			if err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
			reps := s.Replicas(id)
			seen := map[topology.NodeID]bool{}
			for _, r := range reps {
				if seen[r] {
					t.Fatalf("%s: duplicate replica on node %d", pol.Name(), r)
				}
				seen[r] = true
			}
		}
	}
}

func TestRackAwareSpansRacks(t *testing.T) {
	net := testNet(t, 3, 5)
	s := NewStore(net, sim.NewRNG(7))
	for i := 0; i < 100; i++ {
		id, err := s.AddBlock(128e6, 2, RackAware{})
		if err != nil {
			t.Fatal(err)
		}
		reps := s.Replicas(id)
		if net.Rack(reps[0]) == net.Rack(reps[1]) {
			t.Fatalf("block %d: both replicas in rack %d", id, net.Rack(reps[0]))
		}
	}
}

func TestRackAwareSingleRackStillWorks(t *testing.T) {
	net := testNet(t, 1, 5)
	s := NewStore(net, sim.NewRNG(7))
	id, err := s.AddBlock(128e6, 3, RackAware{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Replicas(id)) != 3 {
		t.Fatalf("replicas = %d, want 3", len(s.Replicas(id)))
	}
}

func TestSubsetConfinesReplicas(t *testing.T) {
	net := testNet(t, 1, 20)
	s := NewStore(net, sim.NewRNG(9))
	for i := 0; i < 50; i++ {
		id, err := s.AddBlock(64e6, 2, Subset{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Replicas(id) {
			if int(r) >= 5 {
				t.Fatalf("subset policy placed replica on node %d (limit 5)", r)
			}
		}
	}
}

func TestSubsetClampsKBelowRepl(t *testing.T) {
	net := testNet(t, 1, 10)
	s := NewStore(net, sim.NewRNG(9))
	id, err := s.AddBlock(64e6, 3, Subset{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Replicas(id)) != 3 {
		t.Fatalf("replicas = %d, want 3 (K clamped up to repl)", len(s.Replicas(id)))
	}
}

func TestHasReplicaAndNearest(t *testing.T) {
	net := testNet(t, 2, 4) // nodes 0-3 rack 0, 4-7 rack 1
	s := NewStore(net, sim.NewRNG(3))
	// Deterministic placement via a custom policy.
	id, err := s.AddBlock(128e6, 2, fixedPolicy{nodes: []topology.NodeID{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasReplica(id, 1) || !s.HasReplica(id, 5) {
		t.Fatal("HasReplica false for replica nodes")
	}
	if s.HasReplica(id, 0) {
		t.Fatal("HasReplica true for non-replica node")
	}
	// From node 1 itself: distance 0.
	if n, d := s.Nearest(id, 1); n != 1 || d != 0 {
		t.Fatalf("Nearest from replica = (%d, %v), want (1, 0)", n, d)
	}
	// From node 0 (rack 0): node 1 is same-rack (2), node 5 cross-rack (4).
	if n, d := s.Nearest(id, 0); n != 1 || d != 2 {
		t.Fatalf("Nearest from 0 = (%d, %v), want (1, 2)", n, d)
	}
	// From node 6 (rack 1): node 5 same-rack.
	if n, d := s.Nearest(id, 6); n != 5 || d != 2 {
		t.Fatalf("Nearest from 6 = (%d, %v), want (5, 2)", n, d)
	}
}

type fixedPolicy struct{ nodes []topology.NodeID }

func (p fixedPolicy) Name() string { return "fixed" }
func (p fixedPolicy) Place(topology.Network, *sim.RNG, int) []topology.NodeID {
	return p.nodes
}

func TestUsageAccounting(t *testing.T) {
	net := testNet(t, 1, 4)
	s := NewStore(net, sim.NewRNG(3))
	if _, err := s.AddBlock(100, 2, fixedPolicy{nodes: []topology.NodeID{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddBlock(50, 2, fixedPolicy{nodes: []topology.NodeID{0, 2}}); err != nil {
		t.Fatal(err)
	}
	if s.Usage(0) != 150 || s.Usage(1) != 100 || s.Usage(2) != 50 || s.Usage(3) != 0 {
		t.Fatalf("usage = %v %v %v %v", s.Usage(0), s.Usage(1), s.Usage(2), s.Usage(3))
	}
	// imbalance = max/mean = 150 / (300/4) = 2
	if got := s.UsageImbalance(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("UsageImbalance = %v, want 2", got)
	}
}

func TestUsageImbalanceEmpty(t *testing.T) {
	net := testNet(t, 1, 4)
	s := NewStore(net, sim.NewRNG(3))
	if got := s.UsageImbalance(); got != 0 {
		t.Fatalf("empty store imbalance = %v, want 0", got)
	}
}

func TestInvalidPoliciesRejected(t *testing.T) {
	net := testNet(t, 1, 4)
	s := NewStore(net, sim.NewRNG(3))
	if _, err := s.AddBlock(1, 2, fixedPolicy{nodes: []topology.NodeID{0, 0}}); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := s.AddBlock(1, 2, fixedPolicy{nodes: []topology.NodeID{0, 99}}); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if _, err := s.AddBlock(1, 2, fixedPolicy{nodes: []topology.NodeID{0}}); err == nil {
		t.Error("short replica list accepted")
	}
}

func TestPlacementPropertyDistinctAndInRange(t *testing.T) {
	// Property: for any cluster shape and replication factor, every policy
	// returns distinct, in-range nodes.
	f := func(racksRaw, perRackRaw, replRaw uint8, seed int64) bool {
		racks := 1 + int(racksRaw)%4
		perRack := 1 + int(perRackRaw)%8
		spec := topology.DefaultSpec()
		spec.Racks = racks
		spec.NodesPerRack = perRack
		net, err := topology.NewCluster(sim.NewEngine(), spec)
		if err != nil {
			return false
		}
		repl := 1 + int(replRaw)%3
		if repl > net.Size() {
			repl = net.Size()
		}
		rng := sim.NewRNG(seed)
		for _, pol := range []PlacementPolicy{RackAware{}, Uniform{}, Subset{K: 3}} {
			got := pol.Place(net, rng, repl)
			if len(got) != repl {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, n := range got {
				if int(n) < 0 || int(n) >= net.Size() || seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestPropertyNeverFartherThanAnyReplica(t *testing.T) {
	net := testNet(t, 3, 4)
	s := NewStore(net, sim.NewRNG(11))
	for i := 0; i < 30; i++ {
		id, err := s.AddBlock(1e6, 2, RackAware{})
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from < net.Size(); from++ {
			_, d := s.Nearest(id, topology.NodeID(from))
			for _, r := range s.Replicas(id) {
				if net.Distance(topology.NodeID(from), r) < d {
					t.Fatalf("Nearest missed a closer replica (block %d from %d)", id, from)
				}
			}
		}
	}
}
