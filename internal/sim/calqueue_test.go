package sim

import (
	"fmt"
	"testing"
)

// TestQueueCrossImplEquivalence is the randomized heap-vs-calendar proof:
// both implementations are driven with an identical, seeded stream of
// push / popMin / remove operations (including clustered and equal
// timestamps, far-future outliers, and Infinity) and must agree pop for
// pop. Pop order is the total order (at, seq), so agreement here means the
// engines built on top dispatch identically.
func TestQueueCrossImplEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := NewRNG(int64(1000 + trial))
			cal := newCalendarQueue()
			ref := &heapQueue{}
			var calLive, refLive []*Event
			seq := uint64(0)

			mkAt := func() Time {
				switch rng.Intn(10) {
				case 0: // equal-timestamp cluster
					return Time(float64(rng.Intn(4)))
				case 1: // far-future outlier
					return Time(1e12 * (1 + rng.Float64()))
				case 2: // beyond bucket arithmetic: overflow list
					return Infinity
				case 3, 4:
					// Grid-aligned timestamps: exact multiples of a width-like
					// quantum land exactly on bucket boundaries, where mixed
					// float arithmetic once parked events behind the cursor
					// (the rewind check and the bucket assignment disagreed by
					// one ulp at t = k·width).
					return Time(float64(rng.Intn(400)) * 0.245)
				default:
					return Time(100 * rng.Float64())
				}
			}

			for op := 0; op < 4000; op++ {
				switch r := rng.Float64(); {
				case r < 0.55:
					at := mkAt()
					a := &Event{at: at, seq: seq, index: -1, bucket: -1}
					b := &Event{at: at, seq: seq, index: -1, bucket: -1}
					seq++
					cal.push(a)
					ref.push(b)
					calLive = append(calLive, a)
					refLive = append(refLive, b)
				case r < 0.75 && len(calLive) > 0:
					i := rng.Intn(len(calLive))
					if !cal.remove(calLive[i]) {
						t.Fatalf("op %d: calendar remove failed for a queued event", op)
					}
					if !ref.remove(refLive[i]) {
						t.Fatalf("op %d: heap remove failed for a queued event", op)
					}
					calLive = append(calLive[:i], calLive[i+1:]...)
					refLive = append(refLive[:i], refLive[i+1:]...)
				default:
					a, b := cal.popMin(), ref.popMin()
					switch {
					case a == nil && b == nil:
					case a == nil || b == nil:
						t.Fatalf("op %d: one queue empty, the other not", op)
					case a.at != b.at || a.seq != b.seq:
						t.Fatalf("op %d: pop mismatch calendar(at=%v seq=%d) heap(at=%v seq=%d)",
							op, a.at, a.seq, b.at, b.seq)
					default:
						calLive = drop(calLive, a)
						refLive = drop(refLive, b)
					}
				}
				if cal.len() != ref.len() {
					t.Fatalf("op %d: len mismatch %d vs %d", op, cal.len(), ref.len())
				}
			}
			// Drain: the tails must match exactly too.
			for {
				a, b := cal.popMin(), ref.popMin()
				if a == nil && b == nil {
					break
				}
				if a == nil || b == nil || a.at != b.at || a.seq != b.seq {
					t.Fatal("drain mismatch between calendar and heap queues")
				}
			}
		})
	}
}

func drop(s []*Event, ev *Event) []*Event {
	for i, e := range s {
		if e == ev {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// TestEngineCrossImplEquivalence runs the same randomized engine workload
// (nested scheduling, cancels, removes, reschedules of caller-owned
// events) on both queue kinds and requires identical dispatch traces.
func TestEngineCrossImplEquivalence(t *testing.T) {
	trace := func(kind QueueKind, seed int64) []string {
		var out []string
		e := NewEngineWithQueue(kind)
		rng := NewRNG(seed)
		var owned [8]Event
		var pending []*Event
		var step func(id int)
		step = func(id int) {
			out = append(out, fmt.Sprintf("%d@%v", id, e.Now()))
			for i := 0; i < 2; i++ {
				switch rng.Intn(6) {
				case 0, 1:
					id := id*10 + i
					pending = append(pending, e.After(rng.Float64()*3, func() { step(id) }))
				case 2:
					if len(pending) > 0 {
						pending[rng.Intn(len(pending))].Cancel()
					}
				case 3:
					if len(pending) > 0 {
						j := rng.Intn(len(pending))
						e.Remove(pending[j])
						pending = append(pending[:j], pending[j+1:]...)
					}
				case 4:
					ow := &owned[rng.Intn(len(owned))]
					oid := id*100 + i
					e.Reschedule(ow, e.Now()+Time(rng.Float64()*2), func() { step(oid) })
				}
			}
		}
		e.SetEventLimit(20000)
		for i := 0; i < 5; i++ {
			i := i
			e.Schedule(Time(i)*0.1, func() { step(i) })
		}
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for seed := int64(1); seed <= 10; seed++ {
		cal := trace(QueueCalendar, seed)
		ref := trace(QueueHeap, seed)
		if len(cal) != len(ref) {
			t.Fatalf("seed %d: dispatch counts differ: %d vs %d", seed, len(cal), len(ref))
		}
		for i := range cal {
			if cal[i] != ref[i] {
				t.Fatalf("seed %d: dispatch %d differs: calendar %s, heap %s",
					seed, i, cal[i], ref[i])
			}
		}
	}
}

// TestCalendarFIFOWithinInstant pins the stable same-instant ordering the
// engine's determinism contract requires, through enough events to force
// calendar resizes.
func TestCalendarFIFOWithinInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
		// Interleave other instants so buckets stay mixed.
		e.Schedule(Time(float64(i)*0.01), func() {})
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("ran %d same-instant events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order not FIFO at %d: %v", i, v)
		}
	}
}

// TestRescheduleSemantics covers the caller-owned event contract: moving a
// pending event, reviving a cancelled one, and the new-seq FIFO placement.
func TestRescheduleSemantics(t *testing.T) {
	e := NewEngine()
	var order []string
	var ev Event
	e.Reschedule(&ev, 5, func() { order = append(order, "owned") })
	e.Reschedule(&ev, 2, func() { order = append(order, "moved") })
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after rescheduling the same event, want 1", e.Pending())
	}
	e.Schedule(2, func() { order = append(order, "later-seq") })
	// Rescheduling assigns a fresh seq: the owned event now ties at t=2
	// but must fire after the Schedule above.
	e.Reschedule(&ev, 2, func() { order = append(order, "moved-again") })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"later-seq", "moved-again"}
	if len(order) != len(want) || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}

	// A cancelled owned event is revived by Reschedule.
	ev.Cancel()
	e.Reschedule(&ev, e.Now()+1, func() { order = append(order, "revived") })
	if ev.Cancelled() {
		t.Fatal("Reschedule left the event cancelled")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if order[len(order)-1] != "revived" {
		t.Fatalf("revived event did not fire: %v", order)
	}

	// Remove detaches an owned event without recycling it.
	e.Reschedule(&ev, e.Now()+1, func() { t.Error("removed event fired") })
	e.Remove(&ev)
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Remove, want 0", e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestEventPoolReuseAfterCancel is the stale-callback guard: an event that
// was cancelled and reaped may be recycled into a new Schedule, and the
// old life's cancellation or callback must not leak into the new one.
func TestEventPoolReuseAfterCancel(t *testing.T) {
	e := NewEngine()
	stale := false
	ev := e.Schedule(1, func() { stale = true })
	ev.Cancel()
	if _, err := e.RunAll(); err != nil { // reaps + recycles ev
		t.Fatal(err)
	}
	ran := 0
	ev2 := e.Schedule(e.Now()+1, func() { ran++ })
	if ev2 != ev {
		t.Log("allocator did not reuse the event; pool path not exercised")
	}
	if ev2.Cancelled() {
		t.Fatal("recycled event started life cancelled")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Fatal("stale callback from the event's previous life fired")
	}
	if ran != 1 {
		t.Fatalf("recycled event fired %d times, want 1", ran)
	}
}

// TestCommitHooksRunPerDispatch verifies hook ordering and timing: after
// every dispatched callback, at the callback's timestamp.
func TestCommitHooksRunPerDispatch(t *testing.T) {
	e := NewEngine()
	var log []string
	e.AddCommitHook(func() { log = append(log, fmt.Sprintf("commit@%v", e.Now())) })
	e.Schedule(1, func() { log = append(log, "a") })
	e.Schedule(1, func() { log = append(log, "b") })
	e.Schedule(3, func() { log = append(log, "c") })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Run flushes hooks once on entry, then after every dispatch.
	want := []string{"commit@0", "a", "commit@1", "b", "commit@1", "c", "commit@3"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}
