// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, a priority event queue, and seeded random sources.
//
// All higher layers (network flows, heartbeats, task execution) are driven
// by events scheduled on a single *Engine. The engine is strictly
// single-threaded: callbacks run in timestamp order, ties broken by
// scheduling order, which makes every simulation bit-for-bit reproducible
// for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// Infinity is a time later than any event the simulator will ever fire.
const Infinity Time = Time(math.MaxFloat64)

// Event is a scheduled callback. The zero value is inert.
//
// Lifetime: an *Event returned by Schedule or After belongs to the engine.
// It may be read (At, Cancelled) and cancelled only until its callback runs
// or it is dropped from the queue (Remove, or a cancelled event reaped by
// Step); after that the engine recycles the object for a future Schedule
// and any retained pointer is stale. Callers that need a durable handle
// embed an Event value of their own and drive it with Reschedule/Remove —
// such caller-owned events are never recycled by the engine.
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break for equal timestamps
	fn     func()
	index  int // position in the heap / calendar bucket; -1 when not queued
	bucket int // calendar bucket; -1 when not queued, -2 in overflow
	cancel bool
	pooled bool // engine-owned: recycled after firing or removal
}

// UnqueuedEvent returns an Event value initialized as not-queued, ready
// for embedding in a caller-owned structure and driving with Reschedule.
// (The zero Event works too, but its queued-state fields only become
// meaningful after the first Reschedule.)
func UnqueuedEvent() Event { return Event{index: -1, bucket: -1} }

// At returns the simulated time the event fires at.
func (e *Event) At() Time { return e.at }

// Queued reports whether the event is currently in an engine's queue.
// Meaningful only for events initialized via engine APIs or UnqueuedEvent.
func (e *Event) Queued() bool { return e.index >= 0 }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventQueue is the pending-event set. Pop order is the total order
// (at, seq) ascending, so every implementation is pop-for-pop identical;
// cancelled events stay queued (and counted) until popped or removed.
type eventQueue interface {
	push(ev *Event)
	popMin() *Event // earliest (at, seq) event, nil if empty
	remove(ev *Event) bool
	len() int
}

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapQueue is the classic container/heap implementation, kept behind
// QueueHeap as the reference the calendar queue is equivalence-tested
// against.
type heapQueue []*Event

func (h heapQueue) Len() int           { return len(h) }
func (h heapQueue) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h heapQueue) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *heapQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *heapQueue) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (h *heapQueue) push(ev *Event) { heap.Push(h, ev) }

func (h *heapQueue) popMin() *Event {
	if len(*h) == 0 {
		return nil
	}
	return heap.Pop(h).(*Event)
}

func (h *heapQueue) remove(ev *Event) bool {
	if ev.index < 0 || ev.index >= len(*h) || (*h)[ev.index] != ev {
		return false
	}
	heap.Remove(h, ev.index)
	return true
}

func (h *heapQueue) len() int { return len(*h) }

// QueueKind selects the pending-event set implementation.
type QueueKind int

const (
	// QueueCalendar is the default: a self-resizing calendar queue with
	// amortized O(1) push/pop on the simulator's clustered timestamps.
	QueueCalendar QueueKind = iota
	// QueueHeap is the container/heap reference implementation.
	QueueHeap
)

// Engine is a discrete-event simulator. Create one with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64 // events executed (for diagnostics and loop guards)
	limit   uint64 // safety cap on executed events; 0 means unlimited
	running bool
	free    []*Event // recycled engine-owned events
	commits []func() // run after each dispatched callback returns
}

// NewEngine returns an engine with the clock at 0, using the calendar
// event queue.
func NewEngine() *Engine { return NewEngineWithQueue(QueueCalendar) }

// NewEngineWithQueue returns an engine using the given queue implementation.
// Decision streams are bit-identical across kinds; QueueHeap exists as the
// cross-implementation reference and escape hatch.
func NewEngineWithQueue(k QueueKind) *Engine {
	e := &Engine{}
	switch k {
	case QueueHeap:
		e.queue = &heapQueue{}
	default:
		e.queue = newCalendarQueue()
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventLimit caps the number of events Run will execute; exceeding the
// cap makes Run return an error. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been discarded). Commit hooks run
// first so that work deferred within the current instant — e.g. flow
// completions awaiting a coalesced rate recompute — is counted.
func (e *Engine) Pending() int {
	for _, c := range e.commits {
		c()
	}
	return e.queue.len()
}

// AddCommitHook registers fn to run after every dispatched event callback
// returns, still at the callback's timestamp. Deferred work that must
// complete before the clock can advance — coalesced flow-rate recomputes,
// batched observability emission — hangs off this hook. Hooks run in
// registration order and must not unregister.
func (e *Engine) AddCommitHook(fn func()) {
	if fn == nil {
		panic("sim: nil commit hook")
	}
	e.commits = append(e.commits, fn)
}

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it is always a logic error in a causal simulation.
// The returned event is engine-owned (see Event lifetime).
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	ev.index, ev.bucket = -1, -1
	ev.cancel, ev.pooled = false, true
	e.seq++
	e.queue.push(ev)
	return ev
}

// After queues fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.Schedule(e.now+Time(d), fn)
}

// Reschedule (re)queues the caller-owned event ev to fire fn at absolute
// time at, removing it from the queue first if currently pending and
// clearing any cancellation. It allocates nothing: hot paths embed an
// Event value and move it instead of scheduling fresh events. The event
// gets a new FIFO sequence number, exactly as if it had been cancelled and
// scheduled anew. Engine-owned events (returned by Schedule/After) must
// not be passed here.
func (e *Engine) Reschedule(ev *Event, at Time, fn func()) {
	e.RescheduleSeq(ev, at, e.seq, fn)
	e.seq++
}

// ReserveSeq consumes and returns the next FIFO sequence number without
// queueing anything. Callers that defer a Reschedule — e.g. the flow
// network's coalesced completion-event maintenance — reserve the sequence
// number at the moment non-deferred code would have called Reschedule,
// then apply it later with RescheduleSeq. Both the deferred event's
// same-instant tie-breaks and the numbering of every subsequently
// scheduled event then match the non-deferred execution exactly.
func (e *Engine) ReserveSeq() uint64 {
	s := e.seq
	e.seq++
	return s
}

// RescheduleSeq is Reschedule with an explicit FIFO sequence number,
// previously obtained from ReserveSeq; it does not consume a fresh one.
// Reusing a seq for two simultaneously queued events breaks the total
// order, so each reservation must be applied at most once.
func (e *Engine) RescheduleSeq(ev *Event, at Time, seq uint64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: reschedule with nil callback")
	}
	if ev.pooled {
		panic("sim: reschedule of an engine-owned event")
	}
	e.queue.remove(ev)
	ev.at, ev.seq, ev.fn = at, seq, fn
	ev.cancel = false
	e.queue.push(ev)
}

// Remove drops ev from the queue immediately (stronger than Cancel, which
// leaves the event queued but inert). Removing an unqueued event is a
// no-op. An engine-owned event is recycled by Remove; the caller must drop
// its pointer.
func (e *Engine) Remove(ev *Event) {
	if ev == nil {
		return
	}
	if e.queue.remove(ev) && ev.pooled {
		e.recycle(ev)
	}
}

// recycle resets a detached engine-owned event and returns it to the free
// list. The whole object is cleared: stale callbacks or cancel flags must
// never leak into the event's next life.
func (e *Engine) recycle(ev *Event) {
	//lint:pooled Event
	*ev = Event{index: -1, bucket: -1}
	e.free = append(e.free, ev)
}

// popLive pops the earliest pending event that has not been cancelled,
// reaping (and recycling) cancelled events along the way.
func (e *Engine) popLive() *Event {
	for {
		ev := e.queue.popMin()
		if ev == nil {
			return nil
		}
		if !ev.cancel {
			return ev
		}
		if ev.pooled {
			e.recycle(ev)
		}
	}
}

// dispatch advances the clock to ev, runs its callback, and then the
// commit hooks. Engine-owned events are recycled once the callback
// returns; by then every holder of the pointer has dropped it (the
// callback contract).
func (e *Engine) dispatch(ev *Event) {
	e.now = ev.at
	e.fired++
	fn := ev.fn
	if ev.pooled {
		e.recycle(ev)
	}
	fn()
	for _, c := range e.commits {
		c()
	}
}

// Step executes the single earliest pending event, skipping cancelled
// events. It reports whether an event ran. Commit hooks run before the
// pop: work deferred by calls made outside any event dispatch (e.g. flows
// started before the run) must materialize before the next event is
// chosen.
func (e *Engine) Step() bool {
	for _, c := range e.commits {
		c()
	}
	ev := e.popLive()
	if ev == nil {
		return false
	}
	e.dispatch(ev)
	return true
}

// Run executes events until the queue drains or the clock passes until.
// It returns the final clock value. If an event limit is set and exceeded,
// Run returns an error identifying the runaway.
func (e *Engine) Run(until Time) (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run called reentrantly at t=%v", e.now)
	}
	e.running = true
	defer func() { e.running = false }()
	// Materialize work deferred by calls made before the run (commit hooks
	// also run after every dispatch, so mid-run the queue is always
	// current).
	for _, c := range e.commits {
		c()
	}
	for {
		next := e.popLive()
		if next == nil {
			break
		}
		if next.at > until {
			// Too early to fire: put it back untouched (same seq, so the
			// FIFO order is preserved) and stop.
			e.queue.push(next)
			break
		}
		e.dispatch(next)
		if e.limit > 0 && e.fired > e.limit {
			return e.now, fmt.Errorf("sim: event limit %d exceeded at t=%v", e.limit, e.now)
		}
	}
	if until < Infinity && e.now < until && e.queue.len() == 0 {
		// Advance the clock to the horizon so periodic processes resumed
		// by the caller observe a consistent notion of "now".
		e.now = until
	}
	return e.now, nil
}

// RunAll executes events until the queue drains.
func (e *Engine) RunAll() (Time, error) { return e.Run(Infinity) }
