// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, a priority event queue, and seeded random sources.
//
// All higher layers (network flows, heartbeats, task execution) are driven
// by events scheduled on a single *Engine. The engine is strictly
// single-threaded: callbacks run in timestamp order, ties broken by
// scheduling order, which makes every simulation bit-for-bit reproducible
// for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// Infinity is a time later than any event the simulator will ever fire.
const Infinity Time = Time(math.MaxFloat64)

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break for equal timestamps
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
}

// At returns the simulated time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. Create one with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64 // events executed (for diagnostics and loop guards)
	limit   uint64 // safety cap on executed events; 0 means unlimited
	running bool
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventLimit caps the number of events Run will execute; exceeding the
// cap makes Run return an error. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it is always a logic error in a causal simulation.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.Schedule(e.now+Time(d), fn)
}

// Remove drops ev from the queue immediately (stronger than Cancel, which
// leaves the event queued but inert). Removing an unqueued event is a no-op.
func (e *Engine) Remove(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Step executes the single earliest pending event, skipping cancelled
// events. It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock passes until.
// It returns the final clock value. If an event limit is set and exceeded,
// Run returns an error identifying the runaway.
func (e *Engine) Run(until Time) (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run called reentrantly at t=%v", e.now)
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > until {
			break
		}
		e.Step()
		if e.limit > 0 && e.fired > e.limit {
			return e.now, fmt.Errorf("sim: event limit %d exceeded at t=%v", e.limit, e.now)
		}
	}
	if until < Infinity && e.now < until && len(e.queue) == 0 {
		// Advance the clock to the horizon so periodic processes resumed
		// by the caller observe a consistent notion of "now".
		e.now = until
	}
	return e.now, nil
}

// RunAll executes events until the queue drains.
func (e *Engine) RunAll() (Time, error) { return e.Run(Infinity) }

// peek returns the earliest live event without removing it, discarding
// cancelled events it encounters along the way.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancel {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
