package sim

import "math"

// calendarQueue is a self-resizing calendar queue (Brown 1988): pending
// events hash into buckets by ⌊at/width⌋ mod nb, and dequeue walks the
// buckets like the days of a circular calendar, taking only events that
// fall inside the current bucket's "year" window. With the width adapted
// to the observed event spacing, push, pop, and remove are amortized O(1)
// — versus O(log n) heap churn on the simulator's hot reschedule path.
//
// Determinism: the pop order is exactly the total order (at, seq), the
// same as the reference heap — the FIFO tie-break is applied when scanning
// a bucket, and equal timestamps always share a bucket. The
// cross-implementation equivalence test in calqueue_test.go checks this
// pop-for-pop on randomized schedules.
//
// Every boundary decision — bucket assignment, cursor rewind on push, and
// scan acceptance — is made with the SAME expression, year(t) =
// int64(t*invWidth). Mixing that with subtraction-based bounds like
// curTop-width is unsound: for timestamps on an exact bucket boundary the
// two float computations can disagree by one ulp, parking an event one
// bucket behind the cursor and popping a later event first.
//
// Events with timestamps too large for bucket arithmetic (in particular
// Infinity) live in an unordered overflow list that is only consulted when
// the calendar proper is empty.
type calendarQueue struct {
	buckets  [][]*Event
	mask     int     // len(buckets)-1; bucket count is a power of two
	width    float64 // seconds per bucket
	invWidth float64
	cur      int   // bucket the dequeue scan is at; == int(curYear) & mask
	curYear  int64 // year (bucket-width multiple) the scan is at
	nmain    int   // events in buckets
	overflow []*Event
}

const (
	calMinBuckets = 8
	// Timestamps at or beyond overflowYears bucket-widths overflow the
	// int64 year arithmetic and are parked in the overflow list.
	calOverflowYears = float64(1 << 62)
)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{width: 1, invWidth: 1}
	q.buckets = make([][]*Event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.setCursor(0)
	return q
}

// year maps a timestamp to its bucket-width multiple. This is the single
// source of truth for all boundary decisions.
func (q *calendarQueue) year(t float64) int64 {
	return int64(t * q.invWidth)
}

// setCursor points the dequeue scan at the bucket containing time t.
func (q *calendarQueue) setCursor(t float64) {
	q.curYear = q.year(t)
	q.cur = int(q.curYear) & q.mask
}

func (q *calendarQueue) len() int { return q.nmain + len(q.overflow) }

func (q *calendarQueue) push(ev *Event) {
	t := float64(ev.at)
	if t*q.invWidth >= calOverflowYears {
		ev.bucket = -2
		ev.index = len(q.overflow)
		q.overflow = append(q.overflow, ev)
		return
	}
	y := q.year(t)
	b := int(y) & q.mask
	ev.bucket = b
	ev.index = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], ev)
	q.nmain++
	if y < q.curYear {
		// Earlier than the current scan window: rewind the cursor so the
		// next dequeue finds it.
		q.curYear = y
		q.cur = b
	}
	if q.nmain > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calendarQueue) popMin() *Event {
	if q.nmain == 0 {
		return q.popOverflowMin()
	}
	// Walk the calendar from the cursor, taking the earliest event that
	// falls inside the advancing year window. Events with year == curYear
	// are exactly the events of bucket cur's current window (events with
	// earlier years cannot exist: pushes rewind the cursor, and the scan
	// only advances past a bucket after emptying its window).
	for i := 0; i <= q.mask; i++ {
		b := q.buckets[q.cur]
		best := -1
		for j, ev := range b {
			if q.year(float64(ev.at)) <= q.curYear && (best < 0 || eventLess(ev, b[best])) {
				best = j
			}
		}
		if best >= 0 {
			return q.take(q.cur, best)
		}
		q.cur = (q.cur + 1) & q.mask
		q.curYear++
	}
	// A full lap without a hit: the pending events are all far in the
	// future. Fall back to a direct search and jump the cursor there.
	bi, bj := -1, -1
	var bestEv *Event
	for i, b := range q.buckets {
		for j, ev := range b {
			if bestEv == nil || eventLess(ev, bestEv) {
				bestEv, bi, bj = ev, i, j
			}
		}
	}
	q.setCursor(float64(bestEv.at))
	return q.take(bi, bj)
}

// take swap-removes the event at bucket i slot j.
func (q *calendarQueue) take(i, j int) *Event {
	b := q.buckets[i]
	ev := b[j]
	last := len(b) - 1
	b[j] = b[last]
	b[j].index = j
	b[last] = nil
	q.buckets[i] = b[:last]
	ev.index, ev.bucket = -1, -1
	q.nmain--
	if q.nmain < len(q.buckets)/2 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

func (q *calendarQueue) popOverflowMin() *Event {
	if len(q.overflow) == 0 {
		return nil
	}
	best := 0
	for j, ev := range q.overflow {
		if eventLess(ev, q.overflow[best]) {
			best = j
		}
	}
	ev := q.overflow[best]
	q.removeOverflow(best)
	ev.index, ev.bucket = -1, -1
	return ev
}

func (q *calendarQueue) removeOverflow(j int) {
	last := len(q.overflow) - 1
	q.overflow[j] = q.overflow[last]
	q.overflow[j].index = j
	q.overflow[last] = nil
	q.overflow = q.overflow[:last]
}

func (q *calendarQueue) remove(ev *Event) bool {
	if ev.bucket == -2 {
		if ev.index < 0 || ev.index >= len(q.overflow) || q.overflow[ev.index] != ev {
			return false
		}
		q.removeOverflow(ev.index)
		ev.index, ev.bucket = -1, -1
		return true
	}
	if ev.bucket < 0 || ev.bucket > q.mask {
		return false
	}
	b := q.buckets[ev.bucket]
	if ev.index < 0 || ev.index >= len(b) || b[ev.index] != ev {
		return false
	}
	q.take(ev.bucket, ev.index)
	return true
}

// resize rebuilds the calendar with nb buckets and a width re-estimated
// from the current event spacing. Events keep their (at, seq) keys, so the
// pop order is unaffected; only the bucket layout changes.
func (q *calendarQueue) resize(nb int) {
	all := make([]*Event, 0, q.nmain)
	for _, b := range q.buckets {
		all = append(all, b...)
	}
	q.width = q.estimateWidth(all)
	q.invWidth = 1 / q.width
	q.buckets = make([][]*Event, nb)
	q.mask = nb - 1
	q.nmain = 0
	minAt := math.Inf(1)
	for _, ev := range all {
		if float64(ev.at) < minAt {
			minAt = float64(ev.at)
		}
	}
	if len(all) == 0 {
		minAt = 0
	}
	q.setCursor(minAt)
	for _, ev := range all {
		q.push(ev)
	}
}

// estimateWidth samples the queued events and returns a bucket width of a
// few times their average timestamp spacing, so a year-window bucket scan
// sees O(1) candidates. The sample stride is deterministic.
func (q *calendarQueue) estimateWidth(all []*Event) float64 {
	const maxSample = 64
	if len(all) < 2 {
		return q.width
	}
	stride := 1
	if len(all) > maxSample {
		stride = len(all) / maxSample
	}
	var sample []float64
	for i := 0; i < len(all); i += stride {
		sample = append(sample, float64(all[i].at))
	}
	if len(sample) < 2 {
		return q.width
	}
	// Insertion sort: the sample is tiny.
	for i := 1; i < len(sample); i++ {
		for j := i; j > 0 && sample[j] < sample[j-1]; j-- {
			sample[j], sample[j-1] = sample[j-1], sample[j]
		}
	}
	span := sample[len(sample)-1] - sample[0]
	if span <= 0 {
		return q.width
	}
	// The sample spans roughly the whole queue, so span/len(all) is the
	// average gap between adjacent queued events.
	w := 3 * span / float64(len(all))
	const minWidth = 1e-9
	if w < minWidth {
		w = minWidth
	}
	return w
}
