package sim

import "math/rand"

// RNG wraps a seeded deterministic random source. Each subsystem of a run
// should derive its own RNG via Fork so that adding draws in one subsystem
// never perturbs another.
type RNG struct {
	seed int64 // the seed this generator was created from (Fork input)
	r    *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator whose stream depends only on the
// parent seed and the label — not on how many values the parent has
// drawn, and not on fork order. The parent stream is not consumed.
func (g *RNG) Fork(label string) *RNG {
	// Mix the label into a child seed with an FNV-1a style fold, then fold
	// in the parent's stored seed the same way so distinct parents with
	// the same label produce distinct children.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= uint64(g.seed)
	h *= 1099511628211
	return NewRNG(int64(h))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Jitter returns base scaled by a uniform factor in [1-f, 1+f]. It is used
// for per-task execution-time wobble; f is clamped to [0, 1).
func (g *RNG) Jitter(base, f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = 0.999999
	}
	return base * (1 - f + 2*f*g.r.Float64())
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}
