package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: order = %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// After RunAll the engine has reaped (and may recycle) the cancelled
	// event, so ev must not be inspected past this point — that is the
	// documented Event lifetime.
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestRemove(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	e.Remove(ev)
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Remove, want 0", e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("removed event ran")
	}
	// Removing again, and removing nil, must be harmless.
	e.Remove(ev)
	e.Remove(nil)
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var ran []Time
	e.Schedule(1, func() { ran = append(ran, 1) })
	e.Schedule(10, func() { ran = append(ran, 10) })
	now, err := e.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want [1]", ran)
	}
	if now != 1 {
		t.Fatalf("Run(5) returned now = %v, want 1 (time of last event)", now)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Resume to completion.
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("after resume ran = %v, want both events", ran)
	}
}

func TestRunAdvancesToHorizonWhenDrained(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	now, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if now != 100 {
		t.Fatalf("Run(100) with drained queue returned %v, want 100", now)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	e.SetEventLimit(50)
	if _, err := e.RunAll(); err == nil {
		t.Fatal("runaway loop did not trip the event limit")
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func() {})
	ran := false
	e.Schedule(2, func() { ran = true })
	a.Cancel()
	if !e.Step() {
		t.Fatal("Step() = false with a live event pending")
	}
	if !ran {
		t.Fatal("Step executed the cancelled event instead of the live one")
	}
	if e.Step() {
		t.Fatal("Step() = true on an empty queue")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: for any set of timestamps, execution order is sorted —
	// under both queue implementations.
	for _, kind := range []QueueKind{QueueCalendar, QueueHeap} {
		f := func(stamps []uint16) bool {
			e := NewEngineWithQueue(kind)
			var got []Time
			for _, s := range stamps {
				at := Time(s)
				e.Schedule(at, func() { got = append(got, at) })
			}
			if _, err := e.RunAll(); err != nil {
				return false
			}
			for i := 1; i < len(got); i++ {
				if got[i] < got[i-1] {
					return false
				}
			}
			return len(got) == len(stamps)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("queue kind %v: %v", kind, err)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Child streams depend on the label.
	a := NewRNG(7).Fork("net")
	b := NewRNG(7).Fork("disk")
	same := true
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forks with different labels produced identical streams")
	}
	// Same label from same parent state is reproducible.
	c := NewRNG(7).Fork("net")
	d := NewRNG(7).Fork("net")
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("same-label forks diverged")
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter(100, 0.2) = %v out of [80,120]", v)
		}
	}
	if v := g.Jitter(50, -1); v != 50 {
		t.Fatalf("negative jitter factor should clamp to 0, got %v", v)
	}
	if v := g.Jitter(10, 5); v < 0 || v >= 20.001 {
		t.Fatalf("oversized jitter factor not clamped, got %v", v)
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestRNGBernoulliFrequency(t *testing.T) {
	g := NewRNG(99)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v, want ~0.3", p)
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 9)
		if v < 2 || v >= 9 {
			t.Fatalf("Uniform(2,9) = %v out of range", v)
		}
	}
}

func TestInfinityOrdering(t *testing.T) {
	if !(Time(1e18) < Infinity) {
		t.Fatal("Infinity is not later than large finite times")
	}
}

func TestRNGPermDeterministic(t *testing.T) {
	a := NewRNG(5).Perm(20)
	b := NewRNG(5).Perm(20)
	seen := make([]bool, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Perm not deterministic")
		}
		if a[i] < 0 || a[i] >= 20 || seen[a[i]] {
			t.Fatal("Perm not a permutation")
		}
		seen[a[i]] = true
	}
}

func TestRNGShuffleDeterministic(t *testing.T) {
	mk := func() []int {
		v := []int{0, 1, 2, 3, 4, 5, 6, 7}
		NewRNG(9).Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		return v
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic")
		}
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(13)
	var sumN, sumE float64
	const n = 50000
	for i := 0; i < n; i++ {
		sumN += g.NormFloat64()
		sumE += g.ExpFloat64()
	}
	if m := sumN / n; math.Abs(m) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", m)
	}
	if m := sumE / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", m)
	}
}

// TestRNGForkDoesNotConsumeParent pins the Fork contract the fault and
// scheduler subsystems rely on: deriving a child never advances the
// parent stream, so a subsystem that forks lazily mid-run cannot perturb
// draws elsewhere.
func TestRNGForkDoesNotConsumeParent(t *testing.T) {
	plain := NewRNG(99)
	forked := NewRNG(99)
	forked.Fork("a")
	forked.Fork("b").Fork("nested")
	for i := 0; i < 64; i++ {
		if plain.Int63() != forked.Int63() {
			t.Fatalf("draw %d differs: forking consumed the parent stream", i)
		}
	}
}

// TestRNGForkIgnoresParentDrawCount pins the other half of the contract:
// a child's stream depends only on (parent seed, label), not on how many
// values the parent drew first or in which order siblings were forked.
func TestRNGForkIgnoresParentDrawCount(t *testing.T) {
	fresh := NewRNG(7).Fork("sub")
	drained := NewRNG(7)
	for i := 0; i < 1000; i++ {
		drained.Float64()
	}
	late := drained.Fork("sub")
	for i := 0; i < 64; i++ {
		if fresh.Int63() != late.Int63() {
			t.Fatalf("draw %d differs: child stream depends on parent draw count", i)
		}
	}

	// Sibling fork order is equally irrelevant: "x" after "y" equals "x"
	// forked alone.
	xAfterY := func() *RNG {
		p := NewRNG(7)
		p.Fork("y")
		return p.Fork("x")
	}()
	xAlone := NewRNG(7).Fork("x")
	for i := 0; i < 64; i++ {
		if xAfterY.Int63() != xAlone.Int63() {
			t.Fatalf("draw %d differs: fork order changed a sibling's stream", i)
		}
	}
}
