// Package topology models the cluster network: node/rack structure, the
// hop-distance matrix H consumed by the paper's cost formulas, and a
// flow-level network simulator that assigns max-min fair bandwidth shares
// to concurrent transfers.
//
// Two concrete topologies are provided:
//
//   - Cluster: a hierarchical rack/core topology (hosts → top-of-rack →
//     core) matching the Palmetto testbed layout in Section III of the
//     paper. Transfers become flows across directed links with capacity
//     sharing, so the "network condition" (path transmission rate) emerges
//     from contention.
//   - Matrix: an arbitrary distance matrix, used for unit tests and for
//     reproducing the worked example of Fig. 2 exactly.
package topology

import (
	"fmt"

	"mapsched/internal/sim"
)

// NodeID identifies a data node (0-based, dense).
type NodeID int

// Network is the read-only view the scheduler's cost model needs: the
// distance matrix H and rack membership for locality classification.
type Network interface {
	// Size returns the number of data nodes.
	Size() int
	// Distance returns the entry h_ab of the distance matrix: 0 for a==b,
	// and a positive path length otherwise. Units are "hops" for the
	// default mode, or any consistent cost unit.
	Distance(a, b NodeID) float64
	// Rack returns the rack index of node a.
	Rack(a NodeID) int
}

// RateObserver reports the transmission rate (bytes/second) a new transfer
// from a to b would currently obtain. Section II-B-3 of the paper replaces
// h_ab with the inverse of this rate to make the cost bandwidth-aware.
type RateObserver interface {
	PathRate(a, b NodeID) float64
}

// Transferer starts data movements in simulated time.
type Transferer interface {
	// Transfer moves bytes from src to dst and invokes done on completion.
	// A transfer with src == dst is a local disk read. Zero-byte transfers
	// complete on the next event cycle.
	Transfer(src, dst NodeID, bytes float64, done func()) *Flow
}

// Spec configures a hierarchical Cluster topology.
type Spec struct {
	Racks         int     // number of racks (>= 1)
	NodesPerRack  int     // hosts per rack (>= 1)
	HostLinkBps   float64 // host <-> ToR capacity, bytes/second each direction
	TorUplinkBps  float64 // ToR <-> core capacity, bytes/second each direction
	DiskBps       float64 // local read bandwidth, bytes/second
	SameRackDist  float64 // H entry for two distinct hosts in one rack (default 2)
	CrossRackDist float64 // H entry for hosts in different racks (default 4)

	// CongestionAlpha models goodput degradation under flow concurrency
	// (TCP incast, interrupt and disk-seek overheads): a link carrying n
	// flows delivers capacity/(1 + alpha·(n−1)) in aggregate. Zero (the
	// default) gives ideal lossless sharing.
	CongestionAlpha float64
}

// DefaultSpec mirrors the paper's testbed shape: 60 nodes in a single rack
// with gigabit-class host links and a 10 GbE uplink.
func DefaultSpec() Spec {
	return Spec{
		Racks:         1,
		NodesPerRack:  60,
		HostLinkBps:   125e6,  // 1 Gb/s
		TorUplinkBps:  1250e6, // 10 Gb/s
		DiskBps:       400e6,  // local disk read
		SameRackDist:  2,
		CrossRackDist: 4,
	}
}

func (s *Spec) normalize() error {
	if s.Racks < 1 {
		return fmt.Errorf("topology: Racks = %d, need >= 1", s.Racks)
	}
	if s.NodesPerRack < 1 {
		return fmt.Errorf("topology: NodesPerRack = %d, need >= 1", s.NodesPerRack)
	}
	if s.HostLinkBps <= 0 {
		return fmt.Errorf("topology: HostLinkBps = %v, need > 0", s.HostLinkBps)
	}
	if s.TorUplinkBps <= 0 {
		return fmt.Errorf("topology: TorUplinkBps = %v, need > 0", s.TorUplinkBps)
	}
	if s.DiskBps <= 0 {
		return fmt.Errorf("topology: DiskBps = %v, need > 0", s.DiskBps)
	}
	if s.SameRackDist == 0 {
		s.SameRackDist = 2
	}
	if s.CrossRackDist == 0 {
		s.CrossRackDist = 4
	}
	if s.SameRackDist < 0 || s.CrossRackDist < 0 {
		return fmt.Errorf("topology: negative distances")
	}
	if s.CrossRackDist < s.SameRackDist {
		return fmt.Errorf("topology: CrossRackDist %v < SameRackDist %v",
			s.CrossRackDist, s.SameRackDist)
	}
	if s.CongestionAlpha < 0 {
		return fmt.Errorf("topology: negative CongestionAlpha")
	}
	return nil
}

// Cluster is a hierarchical host/ToR/core topology with a flow-level
// bandwidth-sharing network.
type Cluster struct {
	spec Spec
	n    int
	net  *FlowNet

	hostUp   []LinkID // host i -> its ToR
	hostDown []LinkID // ToR -> host i
	torUp    []LinkID // rack r ToR -> core
	torDown  []LinkID // core -> rack r ToR

	// pathBuf backs the slice path() returns. Every consumer either reads
	// it transiently (ProspectiveRate) or copies it (StartFlowBetween), so
	// one scratch array replaces a per-transfer allocation.
	pathBuf [4]LinkID

	classes *Classes // memoized rack-level class view, built on first use
}

var (
	_ Network        = (*Cluster)(nil)
	_ RateObserver   = (*Cluster)(nil)
	_ Transferer     = (*Cluster)(nil)
	_ ClassedNetwork = (*Cluster)(nil)
)

// NewCluster builds the topology and its flow network on eng.
func NewCluster(eng *sim.Engine, spec Spec) (*Cluster, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	c := &Cluster{
		spec: spec,
		n:    spec.Racks * spec.NodesPerRack,
		net:  NewFlowNet(eng),
	}
	c.net.SetCongestionAlpha(spec.CongestionAlpha)
	c.hostUp = make([]LinkID, c.n)
	c.hostDown = make([]LinkID, c.n)
	for i := 0; i < c.n; i++ {
		c.hostUp[i] = c.net.AddLink(spec.HostLinkBps)
		c.hostDown[i] = c.net.AddLink(spec.HostLinkBps)
	}
	c.torUp = make([]LinkID, spec.Racks)
	c.torDown = make([]LinkID, spec.Racks)
	for r := 0; r < spec.Racks; r++ {
		c.torUp[r] = c.net.AddLink(spec.TorUplinkBps)
		c.torDown[r] = c.net.AddLink(spec.TorUplinkBps)
	}
	return c, nil
}

// Size returns the number of hosts.
func (c *Cluster) Size() int { return c.n }

// Rack returns the rack index of node a.
func (c *Cluster) Rack(a NodeID) int { return int(a) / c.spec.NodesPerRack }

// Spec returns the configuration the cluster was built with.
func (c *Cluster) Spec() Spec { return c.spec }

// Distance returns the H-matrix entry between two hosts: 0 (same node),
// SameRackDist, or CrossRackDist.
func (c *Cluster) Distance(a, b NodeID) float64 {
	switch {
	case a == b:
		return 0
	case c.Rack(a) == c.Rack(b):
		return c.spec.SameRackDist
	default:
		return c.spec.CrossRackDist
	}
}

// path returns the directed links a transfer from a to b traverses.
// Same-node transfers have no network path. The returned slice is backed
// by a shared scratch buffer, valid until the next path() call; the flow
// network copies it into flow-owned storage.
func (c *Cluster) path(a, b NodeID) []LinkID {
	if a == b {
		return nil
	}
	if c.Rack(a) == c.Rack(b) {
		c.pathBuf[0], c.pathBuf[1] = c.hostUp[a], c.hostDown[b]
		return c.pathBuf[:2]
	}
	c.pathBuf[0], c.pathBuf[1] = c.hostUp[a], c.torUp[c.Rack(a)]
	c.pathBuf[2], c.pathBuf[3] = c.torDown[c.Rack(b)], c.hostDown[b]
	return c.pathBuf[:4]
}

// PathRate returns the max-min share a new flow from a to b would obtain
// right now, in bytes/second. For a == b it returns the disk bandwidth.
func (c *Cluster) PathRate(a, b NodeID) float64 {
	if a == b {
		return c.spec.DiskBps
	}
	return c.net.ProspectiveRate(c.path(a, b))
}

// Transfer moves bytes from src to dst. Remote transfers become flows in
// the shared network; local transfers are limited by disk bandwidth.
func (c *Cluster) Transfer(src, dst NodeID, bytes float64, done func()) *Flow {
	if src == dst {
		return c.net.LocalTransferAt(src, bytes, c.spec.DiskBps, done)
	}
	return c.net.StartFlowBetween(src, dst, c.path(src, dst), bytes, done)
}

// InjectCrossTraffic starts a permanent background flow between two hosts
// consuming bandwidth on their path; used by the network-condition
// experiments. It returns the flow so callers can cancel it.
func (c *Cluster) InjectCrossTraffic(src, dst NodeID) *Flow {
	if src == dst {
		return nil
	}
	return c.net.StartPersistentFlowBetween(src, dst, c.path(src, dst))
}

// SetHostLinkFactor scales node a's access-link capacity (both directions)
// to factor × the spec's nominal HostLinkBps. Factors are absolute, not
// cumulative: passing 1 restores the nominal capacity, 0 severs the link
// (flows across it stall until restored). Used by fault injection to model
// degraded host links; each call re-shares flows and bumps the epoch.
func (c *Cluster) SetHostLinkFactor(a NodeID, factor float64) {
	if factor < 0 {
		factor = 0
	}
	bps := c.spec.HostLinkBps * factor
	c.net.SetLinkCapacity(c.hostUp[a], bps)
	c.net.SetLinkCapacity(c.hostDown[a], bps)
}

// Net exposes the underlying flow network (for tests and metrics).
func (c *Cluster) Net() *FlowNet { return c.net }

// Epoch returns the flow network's rate-recomputation counter: PathRate
// observations are guaranteed unchanged between equal epochs, so derived
// cost caches can invalidate exactly.
func (c *Cluster) Epoch() uint64 { return c.net.Epoch() }
