package topology

import (
	"math"
	"testing"

	"mapsched/internal/sim"
)

func mustCluster(t *testing.T, eng *sim.Engine, spec Spec) *Cluster {
	t.Helper()
	c, err := NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultSpecShape(t *testing.T) {
	eng := sim.NewEngine()
	c := mustCluster(t, eng, DefaultSpec())
	if c.Size() != 60 {
		t.Fatalf("Size() = %d, want 60", c.Size())
	}
	for i := 0; i < c.Size(); i++ {
		if c.Rack(NodeID(i)) != 0 {
			t.Fatalf("node %d in rack %d, want 0 (single-rack spec)", i, c.Rack(NodeID(i)))
		}
	}
}

func TestClusterDistances(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 3
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	if d := c.Distance(0, 0); d != 0 {
		t.Fatalf("Distance(0,0) = %v, want 0", d)
	}
	if d := c.Distance(0, 3); d != spec.SameRackDist {
		t.Fatalf("same-rack distance = %v, want %v", d, spec.SameRackDist)
	}
	if d := c.Distance(0, 4); d != spec.CrossRackDist {
		t.Fatalf("cross-rack distance = %v, want %v", d, spec.CrossRackDist)
	}
	if c.Rack(3) != 0 || c.Rack(4) != 1 || c.Rack(11) != 2 {
		t.Fatalf("rack assignment wrong: %d %d %d", c.Rack(3), c.Rack(4), c.Rack(11))
	}
	// Symmetry.
	for a := 0; a < c.Size(); a++ {
		for b := 0; b < c.Size(); b++ {
			if c.Distance(NodeID(a), NodeID(b)) != c.Distance(NodeID(b), NodeID(a)) {
				t.Fatalf("distance not symmetric for (%d,%d)", a, b)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Spec{
		{Racks: 0, NodesPerRack: 1, HostLinkBps: 1, TorUplinkBps: 1, DiskBps: 1},
		{Racks: 1, NodesPerRack: 0, HostLinkBps: 1, TorUplinkBps: 1, DiskBps: 1},
		{Racks: 1, NodesPerRack: 1, HostLinkBps: 0, TorUplinkBps: 1, DiskBps: 1},
		{Racks: 1, NodesPerRack: 1, HostLinkBps: 1, TorUplinkBps: 0, DiskBps: 1},
		{Racks: 1, NodesPerRack: 1, HostLinkBps: 1, TorUplinkBps: 1, DiskBps: 0},
		{Racks: 1, NodesPerRack: 1, HostLinkBps: 1, TorUplinkBps: 1, DiskBps: 1,
			SameRackDist: 5, CrossRackDist: 2},
	}
	for i, s := range bad {
		if _, err := NewCluster(eng, s); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

func TestSingleFlowFullRate(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	var doneAt sim.Time
	c.Transfer(0, 1, 125e6, func() { doneAt = eng.Now() }) // 1 second at 1 Gb/s
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(doneAt)-1.0) > 1e-9 {
		t.Fatalf("single flow finished at %v, want 1.0s", doneAt)
	}
}

func TestTwoFlowsShareHostUplink(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	var t1, t2 sim.Time
	// Both flows leave node 0: they share its 125 MB/s uplink.
	c.Transfer(0, 1, 125e6, func() { t1 = eng.Now() })
	c.Transfer(0, 2, 125e6, func() { t2 = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Each gets 62.5 MB/s -> 2 seconds.
	if math.Abs(float64(t1)-2.0) > 1e-9 || math.Abs(float64(t2)-2.0) > 1e-9 {
		t.Fatalf("shared flows finished at %v and %v, want 2.0s each", t1, t2)
	}
}

func TestDepartureSpeedsUpRemainder(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	var tShort, tLong sim.Time
	c.Transfer(0, 1, 62.5e6, func() { tShort = eng.Now() }) // half the bytes
	c.Transfer(0, 2, 125e6, func() { tLong = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Short: 62.5 MB at 62.5 MB/s -> 1 s. Long: 62.5 MB in the first
	// second, then full 125 MB/s for the remaining 62.5 MB -> 1.5 s.
	if math.Abs(float64(tShort)-1.0) > 1e-9 {
		t.Fatalf("short flow finished at %v, want 1.0", tShort)
	}
	if math.Abs(float64(tLong)-1.5) > 1e-9 {
		t.Fatalf("long flow finished at %v, want 1.5", tLong)
	}
}

func TestCrossRackBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 30
	spec.TorUplinkBps = 250e6 // uplink fits only 2 host links
	c := mustCluster(t, eng, spec)

	// 4 flows from distinct rack-0 hosts to distinct rack-1 hosts share the
	// 250 MB/s ToR uplink: 62.5 MB/s each.
	times := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		c.Transfer(NodeID(i), NodeID(30+i), 62.5e6, func() { times[i] = eng.Now() })
	}
	if err := c.Net().CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		if math.Abs(float64(tt)-1.0) > 1e-9 {
			t.Fatalf("flow %d finished at %v, want 1.0", i, tt)
		}
	}
}

func TestLocalTransferUsesDisk(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.DiskBps = 400e6
	c := mustCluster(t, eng, spec)

	var at sim.Time
	c.Transfer(5, 5, 400e6, func() { at = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(at)-1.0) > 1e-9 {
		t.Fatalf("local read finished at %v, want 1.0", at)
	}
}

func TestZeroByteTransferCompletes(t *testing.T) {
	eng := sim.NewEngine()
	c := mustCluster(t, eng, DefaultSpec())
	ran := false
	c.Transfer(0, 1, 0, func() { ran = true })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero-byte transfer never completed")
	}
}

func TestPathRateReflectsContention(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	idle := c.PathRate(0, 1)
	if math.Abs(idle-125e6) > 1 {
		t.Fatalf("idle path rate = %v, want full host link (prospective share of 1 flow)", idle)
	}
	c.Transfer(0, 2, 1e9, nil) // busy uplink at node 0
	busy := c.PathRate(0, 1)
	if math.Abs(busy-62.5e6) > 1 {
		t.Fatalf("busy path rate = %v, want 62.5e6", busy)
	}
	// Unaffected pair keeps full rate.
	if r := c.PathRate(2, 3); math.Abs(r-125e6) > 1 {
		t.Fatalf("unrelated path rate = %v, want 125e6", r)
	}
	if r := c.PathRate(1, 1); r != spec.DiskBps {
		t.Fatalf("local path rate = %v, want disk %v", r, spec.DiskBps)
	}
}

func TestPersistentCrossTraffic(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c := mustCluster(t, eng, spec)

	bg := c.InjectCrossTraffic(0, 1)
	if bg == nil {
		t.Fatal("InjectCrossTraffic returned nil")
	}
	var at sim.Time
	c.Transfer(0, 2, 62.5e6, func() { at = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Shares node-0 uplink with the persistent flow: 62.5 MB/s -> 1 s.
	if math.Abs(float64(at)-1.0) > 1e-9 {
		t.Fatalf("transfer under cross-traffic finished at %v, want 1.0", at)
	}
	// Cancel and verify a new transfer gets the full link.
	c.Net().Cancel(bg)
	var at2 sim.Time
	start := eng.Now()
	c.Transfer(0, 2, 125e6, func() { at2 = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(at2-start)-1.0) > 1e-9 {
		t.Fatalf("post-cancel transfer took %v, want 1.0", at2-start)
	}
	if c.InjectCrossTraffic(3, 3) != nil {
		t.Fatal("self cross-traffic should be nil")
	}
}

func TestFeasibilityUnderRandomLoad(t *testing.T) {
	// Property: at every completion point, no link is oversubscribed, and
	// all flows eventually finish.
	rng := sim.NewRNG(123)
	for trial := 0; trial < 20; trial++ {
		eng := sim.NewEngine()
		spec := DefaultSpec()
		spec.Racks = 1 + rng.Intn(3)
		spec.NodesPerRack = 2 + rng.Intn(6)
		c := mustCluster(t, eng, spec)
		n := c.Size()
		total := 30
		finished := 0
		for i := 0; i < total; i++ {
			src := NodeID(rng.Intn(n))
			dst := NodeID(rng.Intn(n))
			bytes := rng.Uniform(1e6, 5e8)
			delay := rng.Uniform(0, 3)
			eng.Schedule(sim.Time(delay), func() {
				c.Transfer(src, dst, bytes, func() {
					finished++
					if err := c.Net().CheckFeasible(); err != nil {
						t.Error(err)
					}
				})
			})
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if finished != total {
			t.Fatalf("trial %d: %d/%d transfers finished", trial, finished, total)
		}
		if c.Net().ActiveFlows() != 0 {
			t.Fatalf("trial %d: %d flows still active after drain", trial, c.Net().ActiveFlows())
		}
	}
}

func TestFlowConservation(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 5
	c := mustCluster(t, eng, spec)
	rng := sim.NewRNG(7)
	var sent float64
	for i := 0; i < 50; i++ {
		b := rng.Uniform(1e5, 1e8)
		sent += b
		c.Transfer(NodeID(rng.Intn(10)), NodeID(rng.Intn(10)), b, nil)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	got := c.Net().BytesDelivered()
	if math.Abs(got-sent) > 1 {
		t.Fatalf("delivered %v bytes, sent %v", got, sent)
	}
}

func TestMatrixFig2Example(t *testing.T) {
	// The distance matrix from the paper's Fig. 2 worked example.
	eng := sim.NewEngine()
	h := [][]float64{
		{0, 10, 2, 6},
		{10, 0, 10, 4},
		{2, 10, 0, 6},
		{6, 4, 6, 0},
	}
	m, err := NewMatrix(eng, h, nil, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", m.Size())
	}
	if d := m.Distance(2, 0); d != 2 {
		t.Fatalf("Distance(2,0) = %v, want 2 (M1 on D3 to its block on D1)", d)
	}
	if d := m.Distance(1, 3); d != 4 {
		t.Fatalf("Distance(1,3) = %v, want 4", d)
	}
	var at sim.Time
	m.Transfer(0, 1, 100e6, func() { at = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(at)-1.0) > 1e-9 {
		t.Fatalf("matrix transfer finished at %v, want 1.0", at)
	}
}

func TestMatrixValidation(t *testing.T) {
	eng := sim.NewEngine()
	cases := []struct {
		name string
		h    [][]float64
		rk   []int
		bps  float64
		disk float64
	}{
		{"empty", nil, nil, 1, 1},
		{"ragged", [][]float64{{0, 1}, {1}}, nil, 1, 1},
		{"diag", [][]float64{{1}}, nil, 1, 1},
		{"negative", [][]float64{{0, -1}, {1, 0}}, nil, 1, 1},
		{"racklen", [][]float64{{0}}, []int{0, 1}, 1, 1},
		{"bps", [][]float64{{0}}, nil, 0, 1},
		{"disk", [][]float64{{0}}, nil, 1, 0},
	}
	for _, c := range cases {
		if _, err := NewMatrix(eng, c.h, c.rk, c.bps, c.disk); err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
	}
}

func TestProspectiveRateEmptyPath(t *testing.T) {
	n := NewFlowNet(sim.NewEngine())
	if r := n.ProspectiveRate(nil); r != 0 {
		t.Fatalf("ProspectiveRate(nil) = %v, want 0", r)
	}
}

func TestCancelFinishedFlowHarmless(t *testing.T) {
	eng := sim.NewEngine()
	c := mustCluster(t, eng, DefaultSpec())
	f := c.Transfer(0, 1, 1e6, nil)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !f.Finished() {
		t.Fatal("flow not finished after drain")
	}
	c.Net().Cancel(f) // must not panic or corrupt state
	c.Net().Cancel(nil)
	if err := c.Net().CheckFeasible(); err != nil {
		t.Fatal(err)
	}
}
