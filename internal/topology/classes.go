package topology

import "math"

// Classes is the equivalence-class view of a static distance matrix: nodes
// a and b are in one class when they are interchangeable for the cost
// formulas — every other node sees them at identical distances (in both
// directions) and they sit at a common positive intra-class distance. For
// the hierarchical Cluster topology the classes are exactly the racks, so
// sums over thousands of nodes collapse to a handful of per-class terms
// (compare Gupta & Lalitha's rack-level cost collapse and Zhao et al.'s
// per-locality-class aggregation).
//
// The d matrix is directional: d[a][b] is the distance from any member of
// class a to any *other* member of class b. The diagonal d[c][c] is the
// intra-class distance; for a singleton class it is +Inf, since no second
// member exists — consumers must skip classes whose effective member count
// is zero before multiplying, so the infinity never meets a zero.
type Classes struct {
	of   []int       // node -> class index
	d    [][]float64 // class x class distances, see above
	size []int       // members per class
	maxD float64     // largest finite entry of d
}

// Num returns the number of classes.
func (c *Classes) Num() int { return len(c.d) }

// Of returns the class index of node n.
func (c *Classes) Of(n NodeID) int { return c.of[n] }

// D returns the distance from a member of class a to any other member of
// class b (+Inf on the diagonal of a singleton class).
func (c *Classes) D(a, b int) float64 { return c.d[a][b] }

// Size returns the number of nodes in class a.
func (c *Classes) Size(a int) int { return c.size[a] }

// MaxDist returns the largest finite class distance — an upper bound on
// any single node-to-node distance, used to bound cost savings during
// candidate pruning.
func (c *Classes) MaxDist() float64 { return c.maxD }

// ClassedNetwork is implemented by networks whose static distance matrix
// collapses into equivalence classes. Classes may return nil when no
// consistent class structure exists (then per-node computation applies).
type ClassedNetwork interface {
	Network
	Classes() *Classes
}

// Classes returns the rack-level class structure of the hierarchical
// topology: every rack is one class, with SameRackDist inside a rack and
// CrossRackDist between racks. The result is built once and memoized.
func (c *Cluster) Classes() *Classes {
	if c.classes != nil {
		return c.classes
	}
	racks := c.spec.Racks
	cl := &Classes{
		of:   make([]int, c.n),
		d:    make([][]float64, racks),
		size: make([]int, racks),
	}
	for i := 0; i < c.n; i++ {
		cl.of[i] = c.Rack(NodeID(i))
		cl.size[cl.of[i]]++
	}
	intra := c.spec.SameRackDist
	if c.spec.NodesPerRack == 1 {
		intra = math.Inf(1) // singleton racks have no second member
	}
	for r := 0; r < racks; r++ {
		row := make([]float64, racks)
		for s := 0; s < racks; s++ {
			if r == s {
				row[s] = intra
			} else {
				row[s] = c.spec.CrossRackDist
			}
		}
		cl.d[r] = row
	}
	cl.maxD = maxFinite(cl.d)
	c.classes = cl
	return cl
}

// Classes derives the equivalence classes of the distance matrix on first
// use and memoizes the outcome; it returns nil when the matrix does not
// collapse (see DeriveClasses).
func (m *Matrix) Classes() *Classes {
	if !m.classTried {
		m.classes, _ = DeriveClasses(m)
		m.classTried = true
	}
	return m.classes
}

// DeriveClasses groups a network's nodes into equivalence classes by their
// distance profiles and verifies the grouping exhaustively: for every pair
// of distinct nodes the matrix entry must be positive and must equal the
// class-level distance in the matching direction. ok is false when the
// matrix has no consistent class structure (distinct intra-class
// distances, a zero or asymmetric profile entry) — callers then fall back
// to per-node computation. The derivation is O(n²·classes) and intended
// for construction time, not hot paths.
func DeriveClasses(net Network) (*Classes, bool) {
	n := net.Size()
	of := make([]int, n)
	var reps []NodeID // first member of each class, in node order
	for i := 0; i < n; i++ {
		ci := -1
		for k := 0; k < len(reps); k++ {
			if sameClass(net, NodeID(i), reps[k]) {
				ci = k
				break
			}
		}
		if ci < 0 {
			ci = len(reps)
			reps = append(reps, NodeID(i))
		}
		of[i] = ci
	}
	cl := &Classes{of: of, d: make([][]float64, len(reps)), size: make([]int, len(reps))}
	for i := 0; i < n; i++ {
		cl.size[of[i]]++
	}
	for a := range reps {
		row := make([]float64, len(reps))
		for b := range reps {
			if a == b {
				row[b] = intraDistance(net, of, a)
			} else {
				row[b] = net.Distance(reps[a], reps[b])
			}
		}
		cl.d[a] = row
	}
	// Exhaustive verification: the class matrix must reproduce every
	// pairwise distance, and distinct nodes must never be at distance <= 0
	// (zero would break the data-local shortcut used by pruning).
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i == k {
				continue
			}
			want := cl.d[of[i]][of[k]]
			got := net.Distance(NodeID(i), NodeID(k))
			if got <= 0 || got != want {
				return nil, false
			}
		}
	}
	cl.maxD = maxFinite(cl.d)
	return cl, true
}

// sameClass reports whether a and b have interchangeable distance
// profiles: symmetric positive distance to each other and identical
// distances (both directions) to every third node.
func sameClass(net Network, a, b NodeID) bool {
	if d := net.Distance(a, b); d <= 0 || d != net.Distance(b, a) {
		return false
	}
	n := net.Size()
	for k := 0; k < n; k++ {
		c := NodeID(k)
		if c == a || c == b {
			continue
		}
		if net.Distance(a, c) != net.Distance(b, c) || net.Distance(c, a) != net.Distance(c, b) {
			return false
		}
	}
	return true
}

// intraDistance returns the distance between two distinct members of class
// a, or +Inf for a singleton class.
func intraDistance(net Network, of []int, a int) float64 {
	first := NodeID(-1)
	for i := range of {
		if of[i] != a {
			continue
		}
		if first < 0 {
			first = NodeID(i)
			continue
		}
		return net.Distance(first, NodeID(i))
	}
	return math.Inf(1)
}

// maxFinite returns the largest finite entry of d (0 for an all-Inf
// degenerate matrix).
func maxFinite(d [][]float64) float64 {
	var max float64
	for _, row := range d {
		for _, v := range row {
			if !math.IsInf(v, 1) && v > max {
				max = v
			}
		}
	}
	return max
}
