package topology

import (
	"math"
	"testing"

	"mapsched/internal/sim"
)

func TestCongestionAlphaDegradesGoodput(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	spec.CongestionAlpha = 0.1
	c, err := NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Two flows on one uplink: aggregate goodput = cap/(1+0.1) and each
	// flow gets half of it.
	var t1, t2 sim.Time
	c.Transfer(0, 1, 62.5e6, func() { t1 = eng.Now() })
	c.Transfer(0, 2, 62.5e6, func() { t2 = eng.Now() })
	if err := c.Net().CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Each rate = (125e6/1.1)/2 = 56.82e6 -> 62.5e6 bytes in 1.1 s.
	want := 1.1
	if math.Abs(float64(t1)-want) > 1e-9 || math.Abs(float64(t2)-want) > 1e-9 {
		t.Fatalf("flows finished at %v, %v; want %v", t1, t2, want)
	}
}

func TestCongestionAlphaSingleFlowUnaffected(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	spec.CongestionAlpha = 0.5
	c, err := NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	c.Transfer(0, 1, 125e6, func() { at = eng.Now() })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(at)-1.0) > 1e-9 {
		t.Fatalf("lone flow finished at %v, want 1.0 (no self-penalty)", at)
	}
}

func TestCongestionAlphaValidation(t *testing.T) {
	spec := DefaultSpec()
	spec.CongestionAlpha = -0.1
	if _, err := NewCluster(sim.NewEngine(), spec); err == nil {
		t.Fatal("negative alpha accepted")
	}
	// SetCongestionAlpha clamps negatives rather than corrupting shares.
	n := NewFlowNet(sim.NewEngine())
	n.SetCongestionAlpha(-5)
	l := n.AddLink(100)
	if got := n.effCapacity(int(l), 10); got != 100 {
		t.Fatalf("clamped alpha still degrades capacity: %v", got)
	}
}

func TestProspectiveRateUnderAlpha(t *testing.T) {
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	spec.CongestionAlpha = 0.1
	c, err := NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	idle := c.PathRate(0, 1) // prospective single flow: full capacity
	if math.Abs(idle-125e6) > 1 {
		t.Fatalf("idle prospective rate = %v", idle)
	}
	c.Transfer(0, 2, 1e12, nil)
	busy := c.PathRate(0, 1) // 2 flows: (125e6/1.1)/2
	want := 125e6 / 1.1 / 2
	if math.Abs(busy-want) > 1 {
		t.Fatalf("busy prospective rate = %v, want %v", busy, want)
	}
}
