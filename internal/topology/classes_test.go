package topology

import (
	"math"
	"testing"

	"mapsched/internal/sim"
)

// TestClusterClassesAreRacks pins the hierarchical topology's class
// structure: one class per rack, SameRackDist on the diagonal,
// CrossRackDist elsewhere, and membership matching Rack().
func TestClusterClassesAreRacks(t *testing.T) {
	spec := DefaultSpec()
	spec.Racks = 3
	spec.NodesPerRack = 4
	c, err := NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Classes()
	if cl == nil || cl.Num() != 3 {
		t.Fatalf("Classes() = %v, want 3 classes", cl)
	}
	for i := 0; i < c.Size(); i++ {
		if cl.Of(NodeID(i)) != c.Rack(NodeID(i)) {
			t.Fatalf("node %d in class %d but rack %d", i, cl.Of(NodeID(i)), c.Rack(NodeID(i)))
		}
	}
	for a := 0; a < cl.Num(); a++ {
		if cl.Size(a) != 4 {
			t.Fatalf("class %d size %d, want 4", a, cl.Size(a))
		}
		for b := 0; b < cl.Num(); b++ {
			want := spec.CrossRackDist
			if a == b {
				want = spec.SameRackDist
			}
			if cl.D(a, b) != want {
				t.Fatalf("D(%d,%d) = %v, want %v", a, b, cl.D(a, b), want)
			}
		}
	}
	if cl.MaxDist() != spec.CrossRackDist {
		t.Fatalf("MaxDist = %v, want %v", cl.MaxDist(), spec.CrossRackDist)
	}
	if c.Classes() != cl {
		t.Fatal("Classes() not memoized")
	}
}

// TestClusterClassesSingletonRacks pins the singleton-class convention:
// with one node per rack no intra-class pair exists, so the diagonal is
// +Inf and MaxDist stays the largest finite entry.
func TestClusterClassesSingletonRacks(t *testing.T) {
	spec := DefaultSpec()
	spec.Racks = 3
	spec.NodesPerRack = 1
	c, err := NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Classes()
	for a := 0; a < cl.Num(); a++ {
		if !math.IsInf(cl.D(a, a), 1) {
			t.Fatalf("singleton intra-distance D(%d,%d) = %v, want +Inf", a, a, cl.D(a, a))
		}
	}
	if cl.MaxDist() != spec.CrossRackDist {
		t.Fatalf("MaxDist = %v, want finite %v", cl.MaxDist(), spec.CrossRackDist)
	}
}

// TestDeriveClassesMatchesCluster cross-checks the generic O(n²·classes)
// derivation against the closed-form rack structure.
func TestDeriveClassesMatchesCluster(t *testing.T) {
	spec := DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 3
	c, err := NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	derived, ok := DeriveClasses(c)
	if !ok {
		t.Fatal("rack topology did not derive classes")
	}
	direct := c.Classes()
	if derived.Num() != direct.Num() {
		t.Fatalf("derived %d classes, direct %d", derived.Num(), direct.Num())
	}
	for i := 0; i < c.Size(); i++ {
		if derived.Of(NodeID(i)) != direct.Of(NodeID(i)) {
			t.Fatalf("node %d: derived class %d, direct %d", i, derived.Of(NodeID(i)), direct.Of(NodeID(i)))
		}
	}
	for a := 0; a < direct.Num(); a++ {
		for b := 0; b < direct.Num(); b++ {
			if derived.D(a, b) != direct.D(a, b) {
				t.Fatalf("D(%d,%d): derived %v, direct %v", a, b, derived.D(a, b), direct.D(a, b))
			}
		}
	}
}

// TestMatrixClassesCollapse feeds a rack-shaped explicit matrix through
// Matrix.Classes and checks it collapses to the two racks (memoized).
func TestMatrixClassesCollapse(t *testing.T) {
	h := [][]float64{
		{0, 2, 4, 4},
		{2, 0, 4, 4},
		{4, 4, 0, 2},
		{4, 4, 2, 0},
	}
	m, err := NewMatrix(sim.NewEngine(), h, []int{0, 0, 1, 1}, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	cl := m.Classes()
	if cl == nil || cl.Num() != 2 {
		t.Fatalf("Classes() = %v, want 2 classes", cl)
	}
	if cl.D(0, 0) != 2 || cl.D(0, 1) != 4 || cl.D(1, 1) != 2 {
		t.Fatalf("class distances wrong: intra %v/%v inter %v", cl.D(0, 0), cl.D(1, 1), cl.D(0, 1))
	}
	if m.Classes() != cl {
		t.Fatal("Matrix.Classes not memoized")
	}
}

// TestMatrixClassesIrregular pins the behaviour on matrices without rack
// structure: an irregular matrix still derives (possibly singleton)
// classes whenever every pairwise distance is reproduced — the Fig. 2
// example collapses to {D1, D3} plus two singletons, since D1 and D3 have
// identical profiles — while a zero distance between distinct nodes
// (co-located endpoints, which would break the data-local shortcut) must
// yield nil so consumers fall back to per-node computation.
func TestMatrixClassesIrregular(t *testing.T) {
	h := [][]float64{
		{0, 10, 2, 6},
		{10, 0, 10, 4},
		{2, 10, 0, 6},
		{6, 4, 6, 0},
	}
	m, err := NewMatrix(sim.NewEngine(), h, nil, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	cl := m.Classes()
	if cl == nil || cl.Num() != 3 {
		t.Fatalf("fig2 matrix classes = %v, want 3 (D1+D3 merged)", cl)
	}
	if cl.Of(0) != cl.Of(2) || cl.Of(1) == cl.Of(3) || cl.Of(0) == cl.Of(1) {
		t.Fatalf("fig2 grouping wrong: of = [%d %d %d %d]", cl.Of(0), cl.Of(1), cl.Of(2), cl.Of(3))
	}
	// The derived matrix must reproduce every pairwise distance.
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			if i == k {
				continue
			}
			if got := cl.D(cl.Of(NodeID(i)), cl.Of(NodeID(k))); got != h[i][k] {
				t.Fatalf("class distance %d→%d = %v, want %v", i, k, got, h[i][k])
			}
		}
	}

	zero := [][]float64{
		{0, 0, 4, 4}, // nodes 0 and 1 at distance 0: no valid classes
		{0, 0, 4, 4},
		{4, 4, 0, 2},
		{4, 4, 2, 0},
	}
	zm, err := NewMatrix(sim.NewEngine(), zero, nil, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if cl := zm.Classes(); cl != nil {
		t.Fatalf("zero-distance matrix produced classes: %v", cl)
	}
}
