package topology

import (
	"fmt"
	"testing"

	"mapsched/internal/sim"
)

// poolCluster builds a small one-rack cluster for the pooling tests.
func poolCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	spec := DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	c, err := NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

// TestFlowReuseAfterCancel is the flow-level stale-callback guard: a
// cancelled-and-released Flow object may be recycled into a later
// Transfer, and nothing of the old life — its done callback, its queued
// completion event, its remaining bytes — may leak into the new one.
func TestFlowReuseAfterCancel(t *testing.T) {
	eng, c := poolCluster(t)
	staleFired := false
	old := c.Transfer(0, 1, 125e6, func() { staleFired = true })
	c.Net().Cancel(old)
	c.Net().Release(old)
	// The flush commit hook runs at the next step; give it one.
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}

	fired := 0
	var doneAt sim.Time
	fresh := c.Transfer(0, 1, 125e6, func() { fired++; doneAt = eng.Now() })
	if fresh != old {
		t.Log("allocator did not reuse the flow; pool path not exercised")
	}
	if fresh.Finished() {
		t.Fatal("recycled flow started life finished")
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if staleFired {
		t.Fatal("cancelled flow's done callback fired")
	}
	if fired != 1 {
		t.Fatalf("recycled flow's callback fired %d times, want 1", fired)
	}
	// A lone flow gets the full node-to-node path rate: the recycled
	// object must not have inherited the old life's progress.
	want := sim.Time(125e6 / c.PathRate(0, 1))
	if diff := float64(doneAt - want); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("recycled flow finished at %v, want %v", doneAt, want)
	}
}

// TestFlowReuseAfterMidTransferCancel cancels a flow mid-transfer (with
// its completion event queued at a concrete time) and reuses the object:
// the old completion event must not fire for the new life.
func TestFlowReuseAfterMidTransferCancel(t *testing.T) {
	eng, c := poolCluster(t)
	staleFired := false
	old := c.Transfer(0, 1, 125e6, func() { staleFired = true })
	eng.Schedule(0.25, func() {
		c.Net().Cancel(old)
		c.Net().Release(old)
	})
	fired := 0
	eng.Schedule(0.5, func() {
		fresh := c.Transfer(0, 1, 125e6, func() { fired++ })
		if fresh != old {
			t.Log("allocator did not reuse the flow; pool path not exercised")
		}
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if staleFired {
		t.Fatal("mid-transfer-cancelled flow's done callback fired")
	}
	if fired != 1 {
		t.Fatalf("flow started after cancel fired %d times, want 1", fired)
	}
}

// TestEagerCoalescedEquivalence drives the same randomized churn
// workload (overlapping transfers, mid-flight cancels, same-instant
// starts) in coalesced mode and in eager (pre-coalescing) mode and
// requires identical completion traces. Coalescing completion-event
// maintenance and emissions must be invisible to the decision stream.
func TestEagerCoalescedEquivalence(t *testing.T) {
	trace := func(eager bool, seed int64) []string {
		eng := sim.NewEngine()
		spec := DefaultSpec()
		spec.Racks = 2
		spec.NodesPerRack = 3
		c, err := NewCluster(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().SetEagerRecompute(eager)
		rng := sim.NewRNG(seed)
		var out []string
		var live []*Flow
		n := c.Size()
		var op func(id int)
		op = func(id int) {
			switch rng.Intn(5) {
			case 0, 1, 2: // start a transfer, sometimes zero-byte
				src, dst := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				if src == dst {
					dst = NodeID((int(dst) + 1) % n)
				}
				bytes := 0.0
				if rng.Intn(8) != 0 {
					bytes = 1e6 + 60e6*rng.Float64()
				}
				f := c.Transfer(src, dst, bytes, func() {
					out = append(out, fmt.Sprintf("done %d@%.9f", id, float64(eng.Now())))
				})
				live = append(live, f)
			case 3: // drop a random tracked flow: cancel it if still running
				if len(live) > 0 {
					i := rng.Intn(len(live))
					f := live[i]
					live = append(live[:i], live[i+1:]...)
					if !f.Finished() {
						out = append(out, fmt.Sprintf("cancel %d@%.9f", id, float64(eng.Now())))
						c.Net().Cancel(f)
					}
					// Ownership lives in this list alone (the done callback
					// does not Release), so the pointer is valid until here
					// and cannot be recycled into a later life we then
					// cancel by mistake.
					c.Net().Release(f)
				}
			}
			// Chain more churn at a future instant, occasionally at the
			// same instant to exercise same-instant coalescing.
			if id < 120 {
				d := 0.0
				if rng.Intn(3) != 0 {
					d = rng.Float64() * 0.3
				}
				eng.After(d, func() { op(id + 1) })
			}
		}
		eng.Schedule(0, func() { op(0) })
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		for _, f := range live {
			c.Net().Release(f)
		}
		return out
	}
	for seed := int64(1); seed <= 5; seed++ {
		coal := trace(false, seed)
		eager := trace(true, seed)
		if len(coal) != len(eager) {
			t.Fatalf("seed %d: trace lengths differ: coalesced %d, eager %d", seed, len(coal), len(eager))
		}
		for i := range coal {
			if coal[i] != eager[i] {
				t.Fatalf("seed %d: trace %d differs:\ncoalesced %s\neager     %s", seed, i, coal[i], eager[i])
			}
		}
	}
}

// TestCoalescedTieOrderMatchesEager pins the FIFO tie-break contract the
// randomized equivalence test is too coarse to hit: when a flow completion
// ties at the exact same instant with another completion and with an
// unrelated event scheduled mid-dispatch, the firing order must match the
// eager per-churn Reschedule stream. Coalesced maintenance gets this right
// only because fill reserves each completion's seq at churn time (see
// flushResched); before that reservation existed, the deferred Reschedule
// drew a post-dispatch seq and all three orderings here inverted.
func TestCoalescedTieOrderMatchesEager(t *testing.T) {
	run := func(eager bool) []string {
		eng := sim.NewEngine()
		n := NewFlowNet(eng)
		n.SetEagerRecompute(eager)
		l0 := n.AddLink(1) // 1 byte/s: byte counts below are seconds
		l1 := n.AddLink(1)
		var order []string
		eng.Schedule(0, func() {
			// z halves x's share; cancelling it restores x to full rate,
			// so x's LAST churn (and in eager mode its final seq) comes
			// after y's — despite x's smaller creation id.
			z := n.StartFlow([]LinkID{l0}, 1e9, nil)
			n.StartFlow([]LinkID{l0}, 8, func() { order = append(order, "x") })
			n.StartFlow([]LinkID{l1}, 8, func() { order = append(order, "y") })
			n.Cancel(z)
			n.Release(z)
			// Scheduled after every churn above: with per-churn seqs it
			// fires last among the t=8 ties; a flush-time Reschedule
			// would wrongly slot both completions after it.
			eng.After(8, func() { order = append(order, "after") })
		})
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"y", "x", "after"}
	for _, mode := range []bool{true, false} {
		got := run(mode)
		if len(got) != len(want) {
			t.Fatalf("eager=%v: fired %v, want %v", mode, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eager=%v: tie order %v, want %v", mode, got, want)
			}
		}
	}
}
