package topology

import (
	"math"
	"testing"

	"mapsched/internal/sim"
)

// mirrorNets builds two identical multi-rack clusters, one with the
// default incremental recompute and one forced to full recompute.
func mirrorNets(t *testing.T) (*sim.Engine, *Cluster, *sim.Engine, *Cluster) {
	t.Helper()
	spec := DefaultSpec()
	spec.Racks = 4
	spec.NodesPerRack = 15
	engA := sim.NewEngine()
	a, err := NewCluster(engA, spec)
	if err != nil {
		t.Fatal(err)
	}
	engB := sim.NewEngine()
	b, err := NewCluster(engB, spec)
	if err != nil {
		t.Fatal(err)
	}
	b.Net().SetForceFullRecompute(true)
	return engA, a, engB, b
}

// TestIncrementalRecomputeMatchesFull drives an identical random churn of
// transfers through an incremental and a full-recompute network and checks
// that completion order, counts and delivered bytes agree, and that the
// incremental path actually avoided full passes.
func TestIncrementalRecomputeMatchesFull(t *testing.T) {
	engA, a, engB, b := mirrorNets(t)

	type op struct {
		src, dst NodeID
		bytes    float64
	}
	rng := sim.NewRNG(7)
	var ops []op
	for i := 0; i < 400; i++ {
		src := NodeID(rng.Intn(a.Size()))
		dst := NodeID(rng.Intn(a.Size()))
		if src == dst {
			dst = NodeID((int(dst) + 1) % a.Size())
		}
		// Irregular sizes so no two flows finish at exactly the same time.
		ops = append(ops, op{src, dst, 1e5 + rng.Float64()*5e6})
	}

	run := func(eng *sim.Engine, c *Cluster) ([]float64, int64, float64) {
		var finishes []float64
		for _, o := range ops {
			oo := o
			c.Transfer(oo.src, oo.dst, oo.bytes, func() {
				finishes = append(finishes, float64(eng.Now()))
			})
			// Interleave processing so the live-flow population churns.
			if eng.Pending() > 64 {
				for i := 0; i < 32; i++ {
					eng.Step()
				}
			}
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if err := c.Net().CheckFeasible(); err != nil {
			t.Fatal(err)
		}
		return finishes, c.Net().Completed(), c.Net().BytesDelivered()
	}

	finA, cmplA, bytesA := run(engA, a)
	finB, cmplB, bytesB := run(engB, b)

	if cmplA != cmplB {
		t.Fatalf("completed flows: incremental %d, full %d", cmplA, cmplB)
	}
	if bytesA != bytesB {
		t.Fatalf("delivered bytes: incremental %v, full %v", bytesA, bytesB)
	}
	if len(finA) != len(finB) {
		t.Fatalf("callback counts differ: %d vs %d", len(finA), len(finB))
	}
	for i := range finA {
		// Rates are bit-identical; finish instants may differ by ulps
		// because the incremental path settles untouched flows lazily.
		if d := math.Abs(finA[i] - finB[i]); d > 1e-6*(1+math.Abs(finB[i])) {
			t.Fatalf("finish %d: incremental %v, full %v", i, finA[i], finB[i])
		}
	}
	if a.Net().IncrementalRecomputes() == 0 {
		t.Fatal("incremental path never engaged")
	}
	if b.Net().IncrementalRecomputes() != 0 {
		t.Fatal("forced-full network used the incremental path")
	}
	t.Logf("incremental: %d component passes, %d full passes (full-only: %d)",
		a.Net().IncrementalRecomputes(), a.Net().FullRecomputes(), b.Net().FullRecomputes())
}

// TestIncrementalRatesMatchFullAfterEachChurn compares the assigned rate
// of every live flow between the two paths after every start and finish —
// the shares themselves must be bit-identical, not just the outcomes.
func TestIncrementalRatesMatchFullAfterEachChurn(t *testing.T) {
	engA, a, engB, b := mirrorNets(t)

	rng := sim.NewRNG(11)
	var flowsA, flowsB []*Flow
	check := func(step int) {
		t.Helper()
		for i := range flowsA {
			fa, fb := flowsA[i], flowsB[i]
			if fa.Finished() != fb.Finished() {
				t.Fatalf("step %d flow %d: finished %v vs %v", step, i, fa.Finished(), fb.Finished())
			}
			if fa.Rate() != fb.Rate() {
				t.Fatalf("step %d flow %d: rate %v vs %v", step, i, fa.Rate(), fb.Rate())
			}
		}
	}
	for i := 0; i < 200; i++ {
		src := NodeID(rng.Intn(a.Size()))
		dst := NodeID(rng.Intn(a.Size()))
		if src == dst {
			dst = NodeID((int(dst) + 1) % a.Size())
		}
		bytes := 1e5 + rng.Float64()*2e6
		flowsA = append(flowsA, a.Transfer(src, dst, bytes, nil))
		flowsB = append(flowsB, b.Transfer(src, dst, bytes, nil))
		check(i)
		if engA.Pending() > 48 {
			for j := 0; j < 16; j++ {
				engA.Step()
				engB.Step()
			}
			check(i)
		}
		if pa, pb := a.PathRate(src, dst), b.PathRate(src, dst); pa != pb {
			t.Fatalf("step %d: PathRate %v vs %v", i, pa, pb)
		}
	}
	for engA.Step() {
		engB.Step()
	}
	check(-1)
}

// TestEpochAdvancesOnChurnOnly pins the cache-invalidation contract: the
// epoch moves exactly when flows start, finish or are cancelled, and
// stands still otherwise.
func TestEpochAdvancesOnChurnOnly(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", c.Epoch())
	}
	f := c.Transfer(0, 1, 1e6, nil)
	e1 := c.Epoch()
	if e1 == 0 {
		t.Fatal("epoch did not advance on flow start")
	}
	// Observations without churn must not move the epoch.
	_ = c.PathRate(2, 3)
	_ = c.Net().ProspectiveRate([]LinkID{0})
	if c.Epoch() != e1 {
		t.Fatal("epoch advanced without churn")
	}
	// Local transfers bypass the network entirely.
	c.Transfer(5, 5, 1e6, nil)
	if c.Epoch() != e1 {
		t.Fatal("epoch advanced on local transfer")
	}
	c.Net().Cancel(f)
	if c.Epoch() == e1 {
		t.Fatal("epoch did not advance on cancel")
	}
}
