package topology

import (
	"fmt"
	"math"
	"sort"

	"mapsched/internal/obs"
	"mapsched/internal/sim"
)

// LinkID identifies a directed link in a FlowNet.
type LinkID int

// Flow is a data transfer in progress. Exposed so callers can cancel
// persistent background flows; regular transfers complete on their own.
type Flow struct {
	id         int64 // creation order; makes event scheduling deterministic
	links      []LinkID
	total      float64 // original size in bytes
	remaining  float64 // bytes left; NaN-free, >= 0
	rate       float64 // current max-min share, bytes/second
	lastUpdate sim.Time
	done       func()
	doneEv     *sim.Event
	persistent bool
	finished   bool

	slots  []int   // position of this flow in each path link's flow list
	next   float64 // scratch rate assigned by the current filling pass
	frozen bool    // scratch flag for progressive filling
	visit  uint64  // scratch stamp for component discovery

	// Node endpoints for observability; -1 when the caller did not tag
	// the flow. announced suppresses flow_rate events until the
	// flow_start event (carrying the initial share) has been emitted.
	src, dst  NodeID
	announced bool
}

// Rate returns the flow's current bandwidth share in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed or been cancelled.
func (f *Flow) Finished() bool { return f.finished }

// link carries its active flows as a slice (swap-remove via Flow.slots):
// enumeration is the recompute hot loop, and slice iteration is several
// times cheaper than ranging a map. Order within the slice is arbitrary
// but immaterial — every consumer either sorts or commutes exactly.
type link struct {
	capacity float64 //lint:epoch-guarded rate shares derive from it; see FlowNet.epoch
	flows    []*Flow
}

// FlowNet is a flow-level network simulator: each active flow receives a
// max-min fair share of the capacity of every directed link on its path.
// Shares are recomputed whenever a flow starts or ends; by default only
// the connected component of flows sharing links with the churned flow is
// refilled (an exact decomposition of max-min fairness), with a fallback
// to a full recompute when the component covers most of the live flows.
type FlowNet struct {
	eng   *sim.Engine
	links []link
	// liveList holds in-flight flows in creation-id order (ids are issued
	// monotonically and flows are appended at start), so progressive
	// filling never has to sort it; finished flows are tombstoned and
	// compacted lazily. liveCount is the exact number of live entries.
	liveList  []*Flow
	liveCount int
	alpha     float64 //lint:epoch-guarded congestion inefficiency scales every effective capacity; see Spec.CongestionAlpha

	// epoch counts rate recomputations. Any quantity derived from link
	// occupancy or flow rates (ProspectiveRate, PathRate) is constant
	// between epochs, which lets higher layers cache derived costs with
	// exact invalidation.
	epoch uint64

	forceFull bool  // disable the incremental path (testing / comparison)
	fullRecs  int64 // full progressive-filling passes
	incRecs   int64 // component-local passes (avoided full recomputes)

	// Reusable scratch state, sized to len(links).
	remCap    []float64
	cnt       []int
	linkVisit []uint64
	visitID   uint64
	flowsBuf  []*Flow
	linksBuf  []int

	// stats
	started   int64
	completed int64
	bytesDone float64

	// obs receives flow_start / flow_rate / flow_finish events when a
	// sink is attached; a nil stream costs one comparison per churn.
	obs *obs.Stream
}

// NewFlowNet returns an empty network bound to eng.
func NewFlowNet(eng *sim.Engine) *FlowNet {
	return &FlowNet{eng: eng}
}

// SetCongestionAlpha sets the goodput-degradation coefficient: a link
// with n concurrent flows delivers capacity/(1 + alpha·(n−1)). Changing
// it re-shares every live flow and bumps the epoch — alpha scales every
// effective capacity, so costs cached against the previous epoch would
// otherwise survive stale. Setting the current value is a no-op.
func (n *FlowNet) SetCongestionAlpha(alpha float64) {
	if alpha < 0 {
		alpha = 0
	}
	if n.alpha == alpha {
		return
	}
	n.alpha = alpha
	n.recompute(nil)
}

// SetStream attaches the observability stream flow events are emitted
// on. A nil stream (the default) disables emission entirely.
func (n *FlowNet) SetStream(st *obs.Stream) { n.obs = st }

// flowEvent builds the observation for f. links are included only on
// flow_start (they never change afterwards).
func (n *FlowNet) flowEvent(t obs.Type, f *Flow, withLinks bool, reason string) obs.Event {
	info := &obs.FlowInfo{
		ID:         f.id,
		Src:        int(f.src),
		Dst:        int(f.dst),
		Bytes:      f.total,
		Rate:       f.rate,
		Persistent: f.persistent,
	}
	if withLinks {
		info.Links = make([]int, len(f.links))
		for i, l := range f.links {
			info.Links[i] = int(l)
		}
	}
	return obs.Event{
		T:      float64(n.eng.Now()),
		Type:   t,
		Node:   int(f.dst),
		Reason: reason,
		Flow:   info,
	}
}

// SetForceFullRecompute disables the incremental component-local recompute,
// running full progressive filling on every churn. Used by equivalence
// tests and benchmarks comparing the two paths.
func (n *FlowNet) SetForceFullRecompute(force bool) { n.forceFull = force }

// Epoch returns the rate-recomputation counter. Between equal epochs no
// link occupancy or flow rate has changed, so path-rate observations are
// guaranteed stable.
func (n *FlowNet) Epoch() uint64 { return n.epoch }

// FullRecomputes returns the number of full progressive-filling passes.
func (n *FlowNet) FullRecomputes() int64 { return n.fullRecs }

// IncrementalRecomputes returns the number of component-local passes,
// i.e. full recomputes avoided by the incremental path.
func (n *FlowNet) IncrementalRecomputes() int64 { return n.incRecs }

// effCapacity returns a link's aggregate goodput when carrying n flows.
func (n *FlowNet) effCapacity(l int, flows int) float64 {
	c := n.links[l].capacity
	if n.alpha == 0 || flows <= 1 {
		return c
	}
	return c / (1 + n.alpha*float64(flows-1))
}

// AddLink creates a directed link with the given capacity (bytes/second).
func (n *FlowNet) AddLink(capacity float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: link capacity %v must be positive", capacity))
	}
	n.links = append(n.links, link{capacity: capacity})
	n.remCap = append(n.remCap, 0)
	n.cnt = append(n.cnt, 0)
	n.linkVisit = append(n.linkVisit, 0)
	return LinkID(len(n.links) - 1)
}

// SetLinkCapacity replaces a link's capacity (bytes/second) and re-shares
// every flow, bumping the epoch so cost caches invalidate. Unlike AddLink,
// zero is allowed: flows crossing a zero-capacity link stall at rate zero
// (their completion events are parked) until capacity is restored, which
// models a severed link without detaching its flows. Negative values clamp
// to zero; setting the current capacity again is a no-op.
func (n *FlowNet) SetLinkCapacity(l LinkID, capacity float64) {
	if capacity < 0 {
		capacity = 0
	}
	if n.links[l].capacity == capacity {
		return
	}
	n.links[l].capacity = capacity
	n.recompute(nil)
}

// LinkCapacity returns a link's current capacity (bytes/second).
func (n *FlowNet) LinkCapacity(l LinkID) float64 { return n.links[l].capacity }

// LinkFlowCount returns the number of active flows on l.
func (n *FlowNet) LinkFlowCount(l LinkID) int { return len(n.links[l].flows) }

// ActiveFlows returns the number of in-flight flows.
func (n *FlowNet) ActiveFlows() int { return n.liveCount }

// Completed returns the number of flows that finished normally.
func (n *FlowNet) Completed() int64 { return n.completed }

// BytesDelivered returns total bytes carried by completed flows.
func (n *FlowNet) BytesDelivered() float64 { return n.bytesDone }

// StartFlow begins transferring bytes across the given path and calls done
// (if non-nil) at completion. Zero or negative sizes complete immediately
// via a zero-delay event so callbacks still run in event order.
func (n *FlowNet) StartFlow(path []LinkID, bytes float64, done func()) *Flow {
	return n.StartFlowBetween(-1, -1, path, bytes, done)
}

// StartFlowBetween is StartFlow with the flow tagged by its source and
// destination node, so flow events carry endpoints the FlowNet itself
// does not know about.
func (n *FlowNet) StartFlowBetween(src, dst NodeID, path []LinkID, bytes float64, done func()) *Flow {
	if len(path) == 0 {
		panic("topology: StartFlow with empty path; use LocalTransfer")
	}
	f := &Flow{id: n.started, links: path, total: bytes, remaining: bytes, done: done, lastUpdate: n.eng.Now(), src: src, dst: dst}
	n.started++
	if bytes <= 0 {
		f.finished = true
		n.completed++
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
		}
		n.eng.After(0, func() {
			if n.obs.Enabled() {
				n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, ""))
			}
			if done != nil {
				done()
			}
		})
		return f
	}
	n.attach(f)
	n.recompute(f)
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
	}
	f.announced = true
	return f
}

// StartPersistentFlow begins a background flow that never completes (until
// cancelled) and always consumes its fair share on the path.
func (n *FlowNet) StartPersistentFlow(path []LinkID) *Flow {
	return n.StartPersistentFlowBetween(-1, -1, path)
}

// StartPersistentFlowBetween is StartPersistentFlow with node endpoints
// attached for observability.
func (n *FlowNet) StartPersistentFlowBetween(src, dst NodeID, path []LinkID) *Flow {
	f := &Flow{id: n.started, links: path, remaining: math.Inf(1), persistent: true, lastUpdate: n.eng.Now(), src: src, dst: dst}
	n.started++
	n.attach(f)
	n.recompute(f)
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
	}
	f.announced = true
	return f
}

// LocalTransfer models a same-node disk read at the given bandwidth; it
// does not contend with network flows.
func (n *FlowNet) LocalTransfer(bytes, diskBps float64, done func()) *Flow {
	return n.LocalTransferAt(-1, bytes, diskBps, done)
}

// LocalTransferAt is LocalTransfer tagged with the node whose disk
// serves the read.
func (n *FlowNet) LocalTransferAt(node NodeID, bytes, diskBps float64, done func()) *Flow {
	if diskBps <= 0 {
		panic(fmt.Sprintf("topology: disk bandwidth %v must be positive", diskBps))
	}
	if bytes < 0 {
		bytes = 0
	}
	f := &Flow{total: bytes, remaining: bytes, rate: diskBps, lastUpdate: n.eng.Now(), src: node, dst: node}
	n.started++
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowStart, f, false, "local"))
	}
	n.eng.After(bytes/diskBps, func() {
		f.finished = true
		f.remaining = 0
		n.completed++
		n.bytesDone += bytes
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, "local"))
		}
		if done != nil {
			done()
		}
	})
	return f
}

// Cancel removes a flow (typically persistent cross-traffic) from the
// network without invoking its completion callback.
func (n *FlowNet) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	n.settle(f)
	f.finished = true
	n.detach(f)
	n.recompute(f)
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, "cancel"))
	}
}

// attach registers f on every link of its path and in the live list.
func (n *FlowNet) attach(f *Flow) {
	f.slots = make([]int, len(f.links))
	for i, l := range f.links {
		f.slots[i] = len(n.links[l].flows)
		n.links[l].flows = append(n.links[l].flows, f)
	}
	n.liveList = append(n.liveList, f)
	n.liveCount++
}

// detach removes f from its links (swap-remove, fixing the moved flow's
// slot) and drops its pending completion event. The live-list entry is
// tombstoned and reclaimed by the next compaction.
func (n *FlowNet) detach(f *Flow) {
	for i, l := range f.links {
		fl := n.links[l].flows
		last := len(fl) - 1
		if s := f.slots[i]; s != last {
			moved := fl[last]
			fl[s] = moved
			for k, ml := range moved.links {
				if ml == l {
					moved.slots[k] = s
					break
				}
			}
		}
		fl[last] = nil
		n.links[l].flows = fl[:last]
	}
	n.liveCount--
	if f.doneEv != nil {
		f.doneEv.Cancel()
		n.eng.Remove(f.doneEv)
		f.doneEv = nil
	}
}

// compactLive drops tombstoned (finished) flows from the live list,
// preserving creation order.
func (n *FlowNet) compactLive() {
	w := 0
	for _, f := range n.liveList {
		if !f.finished {
			n.liveList[w] = f
			w++
		}
	}
	for i := w; i < len(n.liveList); i++ {
		n.liveList[i] = nil
	}
	n.liveList = n.liveList[:w]
}

// settle charges progress made at the current rate since the last update.
func (n *FlowNet) settle(f *Flow) {
	now := n.eng.Now()
	if f.persistent {
		f.lastUpdate = now
		return
	}
	elapsed := float64(now - f.lastUpdate)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// recompute refreshes max-min fair shares after seed started or departed.
// Progressive filling decomposes exactly over connected components of the
// flow/link sharing graph, so only the component reachable from seed's
// path needs refilling; flows outside it keep their (unchanged) shares.
// A nil seed, a forced-full configuration, or a component covering most of
// the live flows falls back to a full pass over every loaded link.
func (n *FlowNet) recompute(seed *Flow) {
	n.epoch++
	if n.liveCount == 0 {
		n.compactLive()
		return
	}
	if n.forceFull || seed == nil {
		n.fullRecompute()
		return
	}

	// Discover the connected component of links and flows reachable from
	// the seed's path. The seed itself is included only if still attached.
	// When the component spans most of the network, component discovery
	// plus local filling saves nothing over a full pass, so discovery
	// aborts as soon as the component crosses half the live flows instead
	// of enumerating the rest.
	n.visitID++
	stamp := n.visitID
	compLinks := n.linksBuf[:0]
	compFlows := n.flowsBuf[:0]
	for _, l := range seed.links {
		if n.linkVisit[l] != stamp {
			n.linkVisit[l] = stamp
			compLinks = append(compLinks, int(l))
		}
	}
	for head := 0; head < len(compLinks) && 2*len(compFlows) < n.liveCount; head++ {
		for _, f := range n.links[compLinks[head]].flows {
			if f.visit == stamp {
				continue
			}
			f.visit = stamp
			compFlows = append(compFlows, f)
			for _, l := range f.links {
				if n.linkVisit[l] != stamp {
					n.linkVisit[l] = stamp
					compLinks = append(compLinks, int(l))
				}
			}
		}
	}
	n.linksBuf, n.flowsBuf = compLinks, compFlows

	if len(compFlows) == 0 {
		return // departed flow was alone on its path
	}
	if 2*len(compFlows) >= n.liveCount {
		n.fullRecompute()
		return
	}
	n.incRecs++
	if len(n.liveList) > 2*n.liveCount+16 {
		n.compactLive() // bound tombstone growth on incremental-only churn
	}

	// Deterministic orders: flows by creation id (event tie-breaks), links
	// ascending (bottleneck tie-breaks match the full pass).
	sort.Slice(compFlows, func(a, b int) bool { return compFlows[a].id < compFlows[b].id })
	sort.Ints(compLinks)
	n.fill(compLinks, compFlows)
}

// fullRecompute runs progressive filling over all live flows. The live
// list is already in creation-id order, so no sort is needed — just a
// compaction pass dropping finished flows.
func (n *FlowNet) fullRecompute() {
	n.fullRecs++
	n.compactLive()
	links := n.linksBuf[:0]
	for i := range n.links {
		if len(n.links[i].flows) > 0 {
			links = append(links, i)
		}
	}
	n.linksBuf = links
	n.fill(links, n.liveList)
}

// fill runs progressive filling (max-min fairness) over the given flows,
// whose link usage is exactly covered by links (ascending order), then
// reschedules the completion event of every flow whose share changed.
// Flows whose share is unchanged are left entirely alone: their pending
// event already fires at the correct absolute time, so skipping the
// settle/cancel/reschedule cycle saves the bulk of the heap traffic.
// Flows are handled in creation order so that simultaneous completions
// fire in a deterministic sequence.
func (n *FlowNet) fill(links []int, flows []*Flow) {
	for _, l := range links {
		n.cnt[l] = len(n.links[l].flows)
		n.remCap[l] = n.effCapacity(l, n.cnt[l])
	}
	for _, f := range flows {
		f.frozen = false
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Find the most constrained link among links carrying unfrozen
		// flows, compacting drained links out of the scan (preserving
		// ascending order so tie-breaks stay deterministic).
		best := -1
		bestShare := math.Inf(1)
		w := 0
		for _, l := range links {
			if n.cnt[l] == 0 {
				continue
			}
			links[w] = l
			w++
			share := n.remCap[l] / float64(n.cnt[l])
			if share < bestShare {
				bestShare = share
				best = l
			}
		}
		links = links[:w]
		if best < 0 {
			// No unfrozen flow crosses any link (cannot happen: every live
			// flow has a non-empty path), but guard against livelock.
			for _, f := range flows {
				if !f.frozen {
					f.next = 0
					f.frozen = true
				}
			}
			break
		}
		// Freeze every unfrozen flow on the bottleneck at the fair share.
		// The order of iteration is immaterial: every frozen flow gets
		// the same share, and the remCap/cnt updates commute exactly
		// (each round subtracts the same bestShare per crossing).
		for _, f := range n.links[best].flows {
			if f.frozen {
				continue
			}
			f.next = bestShare
			f.frozen = true
			unfrozen--
			for _, l := range f.links {
				n.remCap[l] -= bestShare
				if n.remCap[l] < 0 {
					n.remCap[l] = 0 // guard float error
				}
				n.cnt[l]--
			}
		}
	}

	// Apply changed shares: settle progress under the old rate, then
	// reschedule the completion under the new one. Physically remove stale
	// events so long shuffle phases do not bloat the event heap.
	emit := n.obs.Enabled()
	for _, f := range flows {
		if f.next == f.rate {
			continue
		}
		n.settle(f)
		f.rate = f.next
		if emit && f.announced {
			n.obs.Emit(n.flowEvent(obs.FlowRate, f, false, ""))
		}
		if f.doneEv != nil {
			f.doneEv.Cancel()
			n.eng.Remove(f.doneEv)
			f.doneEv = nil
		}
		if f.persistent {
			continue
		}
		if f.rate <= 0 {
			continue // will be rescheduled when contention clears
		}
		ff := f
		f.doneEv = n.eng.After(f.remaining/f.rate, func() { n.finish(ff) })
	}
}

// finish completes a flow and triggers its callback.
func (n *FlowNet) finish(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.remaining = 0
	n.completed++
	n.bytesDone += f.total
	n.detach(f)
	// Recompute before the callback so any transfers the callback starts
	// see post-departure shares.
	n.recompute(f)
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, ""))
	}
	if f.done != nil {
		f.done()
	}
}

// ProspectiveRate estimates the max-min share a new flow on path would
// receive: the minimum over path links of capacity/(flows+1). This is the
// "path transmission rate" observation of Section II-B-3.
func (n *FlowNet) ProspectiveRate(path []LinkID) float64 {
	rate := math.Inf(1)
	for _, l := range path {
		flows := len(n.links[l].flows) + 1
		r := n.effCapacity(int(l), flows) / float64(flows)
		if r < rate {
			rate = r
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// CheckFeasible verifies that no link is oversubscribed: the sum of flow
// rates on each link must not exceed its capacity (within tolerance).
// Used by property tests.
func (n *FlowNet) CheckFeasible() error {
	const tol = 1e-6
	for i := range n.links {
		var sum float64
		for _, f := range n.links[i].flows {
			sum += f.rate
		}
		cap := n.effCapacity(i, len(n.links[i].flows))
		if sum > cap*(1+tol) {
			return fmt.Errorf("link %d oversubscribed: %v > %v", i, sum, cap)
		}
	}
	return nil
}
