package topology

import (
	"fmt"
	"math"
	"sort"

	"mapsched/internal/sim"
)

// LinkID identifies a directed link in a FlowNet.
type LinkID int

// Flow is a data transfer in progress. Exposed so callers can cancel
// persistent background flows; regular transfers complete on their own.
type Flow struct {
	id         int64 // creation order; makes event scheduling deterministic
	links      []LinkID
	total      float64 // original size in bytes
	remaining  float64 // bytes left; NaN-free, >= 0
	rate       float64 // current max-min share, bytes/second
	lastUpdate sim.Time
	done       func()
	doneEv     *sim.Event
	persistent bool
	finished   bool
}

// Rate returns the flow's current bandwidth share in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed or been cancelled.
func (f *Flow) Finished() bool { return f.finished }

type link struct {
	capacity float64
	flows    map[*Flow]struct{}
}

// FlowNet is a flow-level network simulator: each active flow receives a
// max-min fair share of the capacity of every directed link on its path,
// and shares are recomputed whenever a flow starts or ends.
type FlowNet struct {
	eng   *sim.Engine
	links []link
	live  map[*Flow]struct{}
	alpha float64 // congestion inefficiency; see Spec.CongestionAlpha

	// stats
	started   int64
	completed int64
	bytesDone float64
}

// NewFlowNet returns an empty network bound to eng.
func NewFlowNet(eng *sim.Engine) *FlowNet {
	return &FlowNet{eng: eng, live: make(map[*Flow]struct{})}
}

// SetCongestionAlpha sets the goodput-degradation coefficient: a link
// with n concurrent flows delivers capacity/(1 + alpha·(n−1)).
func (n *FlowNet) SetCongestionAlpha(alpha float64) {
	if alpha < 0 {
		alpha = 0
	}
	n.alpha = alpha
}

// effCapacity returns a link's aggregate goodput when carrying n flows.
func (n *FlowNet) effCapacity(l int, flows int) float64 {
	c := n.links[l].capacity
	if n.alpha == 0 || flows <= 1 {
		return c
	}
	return c / (1 + n.alpha*float64(flows-1))
}

// AddLink creates a directed link with the given capacity (bytes/second).
func (n *FlowNet) AddLink(capacity float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: link capacity %v must be positive", capacity))
	}
	n.links = append(n.links, link{capacity: capacity, flows: make(map[*Flow]struct{})})
	return LinkID(len(n.links) - 1)
}

// LinkFlowCount returns the number of active flows on l.
func (n *FlowNet) LinkFlowCount(l LinkID) int { return len(n.links[l].flows) }

// ActiveFlows returns the number of in-flight flows.
func (n *FlowNet) ActiveFlows() int { return len(n.live) }

// Completed returns the number of flows that finished normally.
func (n *FlowNet) Completed() int64 { return n.completed }

// BytesDelivered returns total bytes carried by completed flows.
func (n *FlowNet) BytesDelivered() float64 { return n.bytesDone }

// StartFlow begins transferring bytes across the given path and calls done
// (if non-nil) at completion. Zero or negative sizes complete immediately
// via a zero-delay event so callbacks still run in event order.
func (n *FlowNet) StartFlow(path []LinkID, bytes float64, done func()) *Flow {
	if len(path) == 0 {
		panic("topology: StartFlow with empty path; use LocalTransfer")
	}
	f := &Flow{id: n.started, links: path, total: bytes, remaining: bytes, done: done, lastUpdate: n.eng.Now()}
	n.started++
	if bytes <= 0 {
		f.finished = true
		n.completed++
		n.eng.After(0, func() {
			if done != nil {
				done()
			}
		})
		return f
	}
	for _, l := range path {
		n.links[l].flows[f] = struct{}{}
	}
	n.live[f] = struct{}{}
	n.recompute()
	return f
}

// StartPersistentFlow begins a background flow that never completes (until
// cancelled) and always consumes its fair share on the path.
func (n *FlowNet) StartPersistentFlow(path []LinkID) *Flow {
	f := &Flow{id: n.started, links: path, remaining: math.Inf(1), persistent: true, lastUpdate: n.eng.Now()}
	for _, l := range path {
		n.links[l].flows[f] = struct{}{}
	}
	n.live[f] = struct{}{}
	n.started++
	n.recompute()
	return f
}

// LocalTransfer models a same-node disk read at the given bandwidth; it
// does not contend with network flows.
func (n *FlowNet) LocalTransfer(bytes, diskBps float64, done func()) *Flow {
	if diskBps <= 0 {
		panic(fmt.Sprintf("topology: disk bandwidth %v must be positive", diskBps))
	}
	if bytes < 0 {
		bytes = 0
	}
	f := &Flow{total: bytes, remaining: bytes, rate: diskBps, lastUpdate: n.eng.Now()}
	n.started++
	n.eng.After(bytes/diskBps, func() {
		f.finished = true
		f.remaining = 0
		n.completed++
		n.bytesDone += bytes
		if done != nil {
			done()
		}
	})
	return f
}

// Cancel removes a flow (typically persistent cross-traffic) from the
// network without invoking its completion callback.
func (n *FlowNet) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	n.settle(f)
	f.finished = true
	n.detach(f)
	n.recompute()
}

// detach removes f from its links and the live set and drops its pending
// completion event.
func (n *FlowNet) detach(f *Flow) {
	for _, l := range f.links {
		delete(n.links[l].flows, f)
	}
	delete(n.live, f)
	if f.doneEv != nil {
		f.doneEv.Cancel()
		n.eng.Remove(f.doneEv)
		f.doneEv = nil
	}
}

// settle charges progress made at the current rate since the last update.
func (n *FlowNet) settle(f *Flow) {
	now := n.eng.Now()
	if f.persistent {
		f.lastUpdate = now
		return
	}
	elapsed := float64(now - f.lastUpdate)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// recompute runs progressive filling (max-min fairness) over all live
// flows, then reschedules each flow's completion event. Flows are handled
// in creation order so that simultaneous completions fire in a
// deterministic sequence regardless of map iteration order.
func (n *FlowNet) recompute() {
	if len(n.live) == 0 {
		return
	}
	ordered := make([]*Flow, 0, len(n.live))
	for f := range n.live {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].id < ordered[b].id })

	// Settle progress under old rates before assigning new ones.
	for _, f := range ordered {
		n.settle(f)
	}

	// Progressive filling.
	remCap := make([]float64, len(n.links))
	cnt := make([]int, len(n.links))
	for i := range n.links {
		cnt[i] = len(n.links[i].flows)
		remCap[i] = n.effCapacity(i, cnt[i])
	}
	unfrozen := make(map[*Flow]struct{}, len(n.live))
	for f := range n.live {
		unfrozen[f] = struct{}{}
	}
	for len(unfrozen) > 0 {
		// Find the most constrained link among links carrying unfrozen flows.
		best := -1
		bestShare := math.Inf(1)
		for i := range n.links {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			// No unfrozen flow crosses any link (cannot happen: every live
			// flow has a non-empty path), but guard against livelock.
			for f := range unfrozen {
				f.rate = 0
				delete(unfrozen, f)
			}
			break
		}
		// Freeze every unfrozen flow on the bottleneck at the fair share.
		for f := range n.links[best].flows {
			if _, ok := unfrozen[f]; !ok {
				continue
			}
			f.rate = bestShare
			delete(unfrozen, f)
			for _, l := range f.links {
				remCap[l] -= bestShare
				if remCap[l] < 0 {
					remCap[l] = 0 // guard float error
				}
				cnt[l]--
			}
		}
	}

	// Reschedule completions under the new rates. Physically remove stale
	// events so long shuffle phases do not bloat the event heap.
	for _, f := range ordered {
		if f.doneEv != nil {
			f.doneEv.Cancel()
			n.eng.Remove(f.doneEv)
			f.doneEv = nil
		}
		if f.persistent {
			continue
		}
		if f.rate <= 0 {
			continue // will be rescheduled when contention clears
		}
		ff := f
		f.doneEv = n.eng.After(f.remaining/f.rate, func() { n.finish(ff) })
	}
}

// finish completes a flow and triggers its callback.
func (n *FlowNet) finish(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.remaining = 0
	n.completed++
	n.bytesDone += f.total
	n.detach(f)
	// Recompute before the callback so any transfers the callback starts
	// see post-departure shares.
	n.recompute()
	if f.done != nil {
		f.done()
	}
}

// ProspectiveRate estimates the max-min share a new flow on path would
// receive: the minimum over path links of capacity/(flows+1). This is the
// "path transmission rate" observation of Section II-B-3.
func (n *FlowNet) ProspectiveRate(path []LinkID) float64 {
	rate := math.Inf(1)
	for _, l := range path {
		flows := len(n.links[l].flows) + 1
		r := n.effCapacity(int(l), flows) / float64(flows)
		if r < rate {
			rate = r
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// CheckFeasible verifies that no link is oversubscribed: the sum of flow
// rates on each link must not exceed its capacity (within tolerance).
// Used by property tests.
func (n *FlowNet) CheckFeasible() error {
	const tol = 1e-6
	for i := range n.links {
		var sum float64
		for f := range n.links[i].flows {
			sum += f.rate
		}
		cap := n.effCapacity(i, len(n.links[i].flows))
		if sum > cap*(1+tol) {
			return fmt.Errorf("link %d oversubscribed: %v > %v", i, sum, cap)
		}
	}
	return nil
}
