package topology

import (
	"fmt"
	"math"
	"sort"

	"mapsched/internal/obs"
	"mapsched/internal/sim"
)

// LinkID identifies a directed link in a FlowNet.
type LinkID int

// flowKind distinguishes how a Flow completes.
type flowKind uint8

const (
	flowNet   flowKind = iota // attached to links, max-min shared
	flowZero                  // zero-byte transfer: completes next event cycle
	flowLocal                 // same-node disk read: fixed rate, no links
)

// Flow is a data transfer in progress. Exposed so callers can cancel
// persistent background flows; regular transfers complete on their own.
//
// Flow objects are pooled — see FlowNet.Release and maybeRecycle.
type Flow struct {
	id         int64    // creation order; makes event scheduling deterministic
	links      []LinkID // owned copy of the path; storage reused across lives
	total      float64  // original size in bytes
	remaining  float64  // bytes left; NaN-free, >= 0
	rate       float64  // current max-min share, bytes/second
	lastUpdate sim.Time
	done       func()
	doneEv     sim.Event // embedded completion event, rescheduled in place
	finishFn   func()    // bound once per object; survives pool reuse
	net        *FlowNet
	kind       flowKind
	persistent bool
	finished   bool

	// Pool/emission state.
	inLive       bool   // referenced by liveList (tombstoned until compacted)
	released     bool   // owner dropped its reference; recycle when safe
	pendingStart bool   // flow_start emission deferred to the next flush
	resched      bool   // queued for completion-event maintenance at flush
	doneSeq      uint64 // FIFO seq reserved at churn time for the deferred Reschedule

	slots  []int   // position of this flow in each path link's flow list
	next   float64 // scratch rate assigned by the current filling pass
	frozen bool    // scratch flag for progressive filling
	visit  uint64  // scratch stamp for component discovery

	// Node endpoints for observability; -1 when the caller did not tag
	// the flow. announced suppresses flow_rate events until the
	// flow_start event (carrying the initial share) has been emitted.
	src, dst  NodeID
	announced bool
}

// Rate returns the flow's current bandwidth share in bytes/second. Shares
// are recomputed eagerly at every churn, so the field is always current.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed or been cancelled.
func (f *Flow) Finished() bool { return f.finished }

// link carries its active flows as a slice (swap-remove via Flow.slots):
// enumeration is the recompute hot loop, and slice iteration is several
// times cheaper than ranging a map. Order within the slice is arbitrary
// but immaterial — every consumer either sorts or commutes exactly.
type link struct {
	capacity float64 //lint:epoch-guarded rate shares derive from it; see FlowNet.epoch
	flows    []*Flow
}

// FlowNet is a flow-level network simulator: each active flow receives a
// max-min fair share of the capacity of every directed link on its path.
//
// Shares are recomputed eagerly at every churn (flow start, finish,
// cancel, capacity change) — the settle arithmetic that charges progress
// at the old rate is float-associative-sensitive, so running the solver
// per churn keeps decision streams bit-identical with pre-optimization
// builds. What IS coalesced, per simulated instant, is everything the
// solver's results feed: completion-event queue maintenance (a flow whose
// share changes k times within one instant gets one Reschedule, not k
// cancel/reschedule round-trips — this was ~93% of all queue traffic) and
// flow_start/flow_rate observability emissions, both batched into the
// engine's commit hook at the end of the dispatching event.
type FlowNet struct {
	eng   *sim.Engine
	links []link
	// liveList holds in-flight flows in creation-id order (ids are issued
	// monotonically and flows are appended at start), so progressive
	// filling never has to sort it; finished flows are tombstoned and
	// compacted lazily. liveCount is the exact number of live entries.
	liveList  []*Flow
	liveCount int
	alpha     float64 //lint:epoch-guarded congestion inefficiency scales every effective capacity; see Spec.CongestionAlpha

	// epoch counts observable rate/occupancy changes. Any quantity derived
	// from link occupancy or flow rates (ProspectiveRate, PathRate) is
	// constant between epochs, which lets higher layers cache derived
	// costs with exact invalidation.
	epoch uint64

	forceFull bool  // disable the incremental path (testing / comparison)
	eager     bool  // per-churn queue ops and emissions, pre-coalescing style (testing)
	fullRecs  int64 // full progressive-filling passes
	incRecs   int64 // component-local passes (avoided full recomputes)

	// Coalescing state: flows whose completion event must be rescheduled
	// (or parked) for the current instant, and flows whose flow_start
	// emission is deferred until their first share is known.
	pendingResched []*Flow
	pendingStarts  []*Flow

	// freeFlows recycles Flow objects. A flow is recycled only once it is
	// finished, its owner has Released it, no liveList tombstone remains,
	// its completion event is off the queue, and no deferred maintenance
	// or emission mentions it — so a stale pointer can never observe or
	// cancel another transfer's state.
	freeFlows []*Flow

	// Reusable scratch state, sized to len(links).
	remCap    []float64
	cnt       []int
	linkVisit []uint64
	visitID   uint64
	flowsBuf  []*Flow
	linksBuf  []int

	// stats
	started   int64
	completed int64
	bytesDone float64

	// obs receives flow_start / flow_rate / flow_finish events when a
	// sink is attached; a nil stream costs one comparison per churn.
	obs *obs.Stream
}

// NewFlowNet returns an empty network bound to eng. Deferred completion
// rescheduling and emission batches ride eng's commit hook, firing at the
// end of each dispatched event.
func NewFlowNet(eng *sim.Engine) *FlowNet {
	n := &FlowNet{eng: eng}
	eng.AddCommitHook(n.Flush)
	return n
}

// SetCongestionAlpha sets the goodput-degradation coefficient: a link
// with n concurrent flows delivers capacity/(1 + alpha·(n−1)). Changing
// it re-shares every live flow and bumps the epoch — alpha scales every
// effective capacity, so costs cached against the previous epoch would
// otherwise survive stale. Setting the current value is a no-op.
func (n *FlowNet) SetCongestionAlpha(alpha float64) {
	if alpha < 0 {
		alpha = 0
	}
	if n.alpha == alpha {
		return
	}
	n.alpha = alpha
	n.mark(nil)
}

// SetStream attaches the observability stream flow events are emitted
// on. A nil stream (the default) disables emission entirely.
func (n *FlowNet) SetStream(st *obs.Stream) { n.obs = st }

// flowEvent builds the observation for f. links are included only on
// flow_start (they never change afterwards).
func (n *FlowNet) flowEvent(t obs.Type, f *Flow, withLinks bool, reason string) obs.Event {
	info := &obs.FlowInfo{
		ID:         f.id,
		Src:        int(f.src),
		Dst:        int(f.dst),
		Bytes:      f.total,
		Rate:       f.rate,
		Persistent: f.persistent,
	}
	if withLinks {
		info.Links = make([]int, len(f.links))
		for i, l := range f.links {
			info.Links[i] = int(l)
		}
	}
	return obs.Event{
		T:      float64(n.eng.Now()),
		Type:   t,
		Node:   int(f.dst),
		Reason: reason,
		Flow:   info,
	}
}

// SetForceFullRecompute disables the incremental component-local recompute,
// running full progressive filling on every churn. Used by equivalence
// tests and benchmarks comparing the two paths.
func (n *FlowNet) SetForceFullRecompute(force bool) { n.forceFull = force }

// SetEagerRecompute disables per-instant coalescing of completion-event
// maintenance and emissions: every fill performs its queue operations and
// flow_rate/flow_start emissions inline, exactly the pre-coalescing
// behavior. Used by equivalence tests proving the coalesced path leaves
// decision streams bit-identical.
func (n *FlowNet) SetEagerRecompute(eager bool) {
	n.Flush()
	n.eager = eager
}

// Epoch returns the rate-recomputation counter. Between equal epochs no
// link occupancy or flow rate has changed, so path-rate observations are
// guaranteed stable.
func (n *FlowNet) Epoch() uint64 { return n.epoch }

// FullRecomputes returns the number of full progressive-filling passes.
func (n *FlowNet) FullRecomputes() int64 { return n.fullRecs }

// IncrementalRecomputes returns the number of component-local passes,
// i.e. full recomputes avoided by the incremental path.
func (n *FlowNet) IncrementalRecomputes() int64 { return n.incRecs }

// effCapacity returns a link's aggregate goodput when carrying n flows.
func (n *FlowNet) effCapacity(l int, flows int) float64 {
	c := n.links[l].capacity
	if n.alpha == 0 || flows <= 1 {
		return c
	}
	return c / (1 + n.alpha*float64(flows-1))
}

// AddLink creates a directed link with the given capacity (bytes/second).
func (n *FlowNet) AddLink(capacity float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: link capacity %v must be positive", capacity))
	}
	n.links = append(n.links, link{capacity: capacity})
	n.remCap = append(n.remCap, 0)
	n.cnt = append(n.cnt, 0)
	n.linkVisit = append(n.linkVisit, 0)
	return LinkID(len(n.links) - 1)
}

// SetLinkCapacity replaces a link's capacity (bytes/second) and re-shares
// every flow, bumping the epoch so cost caches invalidate. Unlike AddLink,
// zero is allowed: flows crossing a zero-capacity link stall at rate zero
// (their completion events are parked) until capacity is restored, which
// models a severed link without detaching its flows. Negative values clamp
// to zero; setting the current capacity again is a no-op.
func (n *FlowNet) SetLinkCapacity(l LinkID, capacity float64) {
	if capacity < 0 {
		capacity = 0
	}
	if n.links[l].capacity == capacity {
		return
	}
	n.links[l].capacity = capacity
	n.mark(nil)
}

// LinkCapacity returns a link's current capacity (bytes/second).
func (n *FlowNet) LinkCapacity(l LinkID) float64 { return n.links[l].capacity }

// LinkFlowCount returns the number of active flows on l.
func (n *FlowNet) LinkFlowCount(l LinkID) int { return len(n.links[l].flows) }

// ActiveFlows returns the number of in-flight flows.
func (n *FlowNet) ActiveFlows() int { return n.liveCount }

// Completed returns the number of flows that finished normally.
func (n *FlowNet) Completed() int64 { return n.completed }

// BytesDelivered returns total bytes carried by completed flows.
func (n *FlowNet) BytesDelivered() float64 { return n.bytesDone }

// allocFlow returns a reset Flow (from the pool when possible) with a
// fresh creation id, its completion callback bound, and the path copied
// into owned storage.
func (n *FlowNet) allocFlow(src, dst NodeID, path []LinkID) *Flow {
	var f *Flow
	if k := len(n.freeFlows); k > 0 {
		f = n.freeFlows[k-1]
		n.freeFlows[k-1] = nil
		n.freeFlows = n.freeFlows[:k-1]
	} else {
		f = &Flow{net: n}
		f.doneEv = sim.UnqueuedEvent()
		ff := f
		f.finishFn = func() { ff.net.fire(ff) }
	}
	f.id = n.started
	n.started++
	f.links = append(f.links[:0], path...)
	f.lastUpdate = n.eng.Now()
	f.src, f.dst = src, dst
	return f
}

// Release tells the network the caller holds no more references to f and
// will never touch it again: once every other condition clears (flow
// finished, liveList tombstone compacted, completion event off the
// queue) the object is recycled into a future transfer. Calling Release
// on an unfinished flow is a contract violation and is ignored; not
// calling it merely forgoes reuse.
func (n *FlowNet) Release(f *Flow) {
	if f == nil || !f.finished || f.released {
		return
	}
	f.released = true
	n.maybeRecycle(f)
}

// maybeRecycle returns f to the pool when no reference to it can remain:
// the owner released it, it is off the liveList, its completion event is
// not queued, and no deferred maintenance or emission mentions it. The
// reset clears every field — a recycled flow must carry nothing of its
// previous life.
func (n *FlowNet) maybeRecycle(f *Flow) {
	if !f.released || !f.finished || f.inLive || f.pendingStart || f.resched || f.doneEv.Queued() {
		return
	}
	links, slots, finishFn, net := f.links[:0], f.slots[:0], f.finishFn, f.net
	//lint:pooled Flow
	*f = Flow{net: net, links: links, slots: slots, finishFn: finishFn}
	f.doneEv = sim.UnqueuedEvent()
	n.freeFlows = append(n.freeFlows, f)
}

// StartFlow begins transferring bytes across the given path and calls done
// (if non-nil) at completion. Zero or negative sizes complete immediately
// via a zero-delay event so callbacks still run in event order.
func (n *FlowNet) StartFlow(path []LinkID, bytes float64, done func()) *Flow {
	return n.StartFlowBetween(-1, -1, path, bytes, done)
}

// StartFlowBetween is StartFlow with the flow tagged by its source and
// destination node, so flow events carry endpoints the FlowNet itself
// does not know about.
func (n *FlowNet) StartFlowBetween(src, dst NodeID, path []LinkID, bytes float64, done func()) *Flow {
	if len(path) == 0 {
		panic("topology: StartFlow with empty path; use LocalTransfer")
	}
	f := n.allocFlow(src, dst, path)
	f.total, f.remaining, f.done = bytes, bytes, done
	if bytes <= 0 {
		f.kind = flowZero
		f.finished = true
		n.completed++
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
		}
		f.announced = true
		n.eng.Reschedule(&f.doneEv, n.eng.Now(), f.finishFn)
		return f
	}
	f.kind = flowNet
	n.attach(f)
	n.mark(f)
	if n.eager {
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
		}
		f.announced = true
	} else {
		f.pendingStart = true
		n.pendingStarts = append(n.pendingStarts, f)
	}
	return f
}

// StartPersistentFlow begins a background flow that never completes (until
// cancelled) and always consumes its fair share on the path.
func (n *FlowNet) StartPersistentFlow(path []LinkID) *Flow {
	return n.StartPersistentFlowBetween(-1, -1, path)
}

// StartPersistentFlowBetween is StartPersistentFlow with node endpoints
// attached for observability.
func (n *FlowNet) StartPersistentFlowBetween(src, dst NodeID, path []LinkID) *Flow {
	f := n.allocFlow(src, dst, path)
	f.kind = flowNet
	f.remaining = math.Inf(1)
	f.persistent = true
	n.attach(f)
	n.mark(f)
	if n.eager {
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
		}
		f.announced = true
	} else {
		f.pendingStart = true
		n.pendingStarts = append(n.pendingStarts, f)
	}
	return f
}

// LocalTransfer models a same-node disk read at the given bandwidth; it
// does not contend with network flows.
func (n *FlowNet) LocalTransfer(bytes, diskBps float64, done func()) *Flow {
	return n.LocalTransferAt(-1, bytes, diskBps, done)
}

// LocalTransferAt is LocalTransfer tagged with the node whose disk
// serves the read.
func (n *FlowNet) LocalTransferAt(node NodeID, bytes, diskBps float64, done func()) *Flow {
	if diskBps <= 0 {
		panic(fmt.Sprintf("topology: disk bandwidth %v must be positive", diskBps))
	}
	if bytes < 0 {
		bytes = 0
	}
	f := n.allocFlow(node, node, nil)
	f.kind = flowLocal
	f.total, f.remaining, f.done = bytes, bytes, done
	f.rate = diskBps
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowStart, f, false, "local"))
	}
	f.announced = true
	n.eng.Reschedule(&f.doneEv, n.eng.Now()+sim.Time(bytes/diskBps), f.finishFn)
	return f
}

// Cancel removes a flow (typically persistent cross-traffic) from the
// network without invoking its completion callback.
func (n *FlowNet) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	if f.kind == flowLocal {
		// Local reads never touched the shared network: stop the clock and
		// the completion event, nothing to re-share.
		n.settle(f)
		f.finished = true
		n.eng.Remove(&f.doneEv)
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, "cancel"))
		}
		n.maybeRecycle(f)
		return
	}
	n.settle(f)
	f.finished = true
	n.detach(f)
	n.mark(f)
	if n.obs.Enabled() {
		// A flow cancelled in its start instant has its start emission
		// still deferred; emit it first so the stream stays well-formed.
		if f.pendingStart {
			n.emitPendingStart(f)
		}
		n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, "cancel"))
	}
}

// emitPendingStart emits f's deferred flow_start immediately and removes
// it from the pending list. Only used on the rare cancel-in-start-instant
// path; normal starts are emitted in batch by Flush.
func (n *FlowNet) emitPendingStart(f *Flow) {
	n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
	f.announced = true
	f.pendingStart = false
	for i, p := range n.pendingStarts {
		if p == f {
			n.pendingStarts = append(n.pendingStarts[:i], n.pendingStarts[i+1:]...)
			break
		}
	}
}

// attach registers f on every link of its path and in the live list.
func (n *FlowNet) attach(f *Flow) {
	if cap(f.slots) < len(f.links) {
		f.slots = make([]int, len(f.links))
	} else {
		f.slots = f.slots[:len(f.links)]
	}
	for i, l := range f.links {
		f.slots[i] = len(n.links[l].flows)
		n.links[l].flows = append(n.links[l].flows, f)
	}
	n.liveList = append(n.liveList, f)
	f.inLive = true
	n.liveCount++
}

// detach removes f from its links (swap-remove, fixing the moved flow's
// slot) and drops its pending completion event. The live-list entry is
// tombstoned and reclaimed by the next compaction.
func (n *FlowNet) detach(f *Flow) {
	for i, l := range f.links {
		fl := n.links[l].flows
		last := len(fl) - 1
		if s := f.slots[i]; s != last {
			moved := fl[last]
			fl[s] = moved
			for k, ml := range moved.links {
				if ml == l {
					moved.slots[k] = s
					break
				}
			}
		}
		fl[last] = nil
		n.links[l].flows = fl[:last]
	}
	n.liveCount--
	n.eng.Remove(&f.doneEv)
}

// compactLive drops tombstoned (finished) flows from the live list,
// preserving creation order, and recycles the ones whose owners already
// released them.
func (n *FlowNet) compactLive() {
	w := 0
	for _, f := range n.liveList {
		if !f.finished {
			n.liveList[w] = f
			w++
			continue
		}
		f.inLive = false
		n.maybeRecycle(f)
	}
	for i := w; i < len(n.liveList); i++ {
		n.liveList[i] = nil
	}
	n.liveList = n.liveList[:w]
}

// settle charges progress made at the current rate since the last update.
func (n *FlowNet) settle(f *Flow) {
	now := n.eng.Now()
	if f.persistent {
		f.lastUpdate = now
		return
	}
	elapsed := float64(now - f.lastUpdate)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// mark records churn around seed (nil = a global change such as capacity
// or alpha), bumps the epoch, and reruns the share solver immediately.
// Only the solver's downstream effects — completion-event queue traffic
// and emissions — are deferred to the end of the instant; the rates and
// settlement arithmetic happen per churn, exactly as pre-coalescing
// builds, which is what keeps decision streams bit-identical.
func (n *FlowNet) mark(seed *Flow) {
	n.epoch++
	n.recompute(seed)
}

// Flush materializes the deferred per-instant work: one completion-event
// reschedule (or park) per touched flow, then the batch of deferred
// flow_start emissions. It is the engine's commit hook, running at the
// end of every dispatched event.
func (n *FlowNet) Flush() {
	if len(n.pendingResched) > 0 {
		n.flushResched()
	}

	// Announce the flows born this instant, in creation order, now that
	// their first share is known.
	if len(n.pendingStarts) > 0 {
		emit := n.obs.Enabled()
		for i, f := range n.pendingStarts {
			if emit {
				n.obs.Emit(n.flowEvent(obs.FlowStart, f, true, ""))
			}
			f.announced = true
			f.pendingStart = false
			n.pendingStarts[i] = nil
			n.maybeRecycle(f)
		}
		n.pendingStarts = n.pendingStarts[:0]
	}
}

// flushResched performs the coalesced completion-event maintenance: every
// flow whose share changed this instant gets exactly one queue operation,
// against its final rate but with the FIFO seq reserved at its last churn
// (see fill) — so same-instant tie-breaks are bit-identical to the eager
// per-churn Reschedule stream. The creation-id sort only fixes the order
// of the flow_rate emissions, which carry no seq of their own.
func (n *FlowNet) flushResched() {
	pend := n.pendingResched
	// Insertion sort by id: fills append in id order, so the list is
	// nearly sorted already and this is cheaper than sort.Slice.
	for i := 1; i < len(pend); i++ {
		for j := i; j > 0 && pend[j].id < pend[j-1].id; j-- {
			pend[j], pend[j-1] = pend[j-1], pend[j]
		}
	}
	emit := n.obs.Enabled()
	now := n.eng.Now()
	for i, f := range pend {
		pend[i] = nil
		f.resched = false
		if f.finished {
			// Finished or cancelled later in the same instant; its event is
			// already off the queue.
			n.maybeRecycle(f)
			continue
		}
		if emit && f.announced && !f.pendingStart {
			n.obs.Emit(n.flowEvent(obs.FlowRate, f, false, ""))
		}
		if f.persistent {
			continue
		}
		if f.rate <= 0 {
			// Park the completion until contention clears.
			n.eng.Remove(&f.doneEv)
			continue
		}
		n.eng.RescheduleSeq(&f.doneEv, now+sim.Time(f.remaining/f.rate), f.doneSeq, f.finishFn)
	}
	n.pendingResched = pend[:0]
}

// recompute refreshes max-min fair shares after seed started or departed.
// A nil seed, a forced-full configuration, or a component covering most of
// the live flows falls back to a full pass over every loaded link.
func (n *FlowNet) recompute(seed *Flow) {
	if n.liveCount == 0 {
		n.compactLive()
		return
	}
	if n.forceFull || seed == nil {
		n.fullRecompute()
		return
	}

	// Discover the connected component of links and flows reachable from
	// the seed's path. The seed itself is included only if still attached.
	// When the component spans most of the network, component discovery
	// plus local filling saves nothing over a full pass, so discovery
	// aborts as soon as the component crosses half the live flows instead
	// of enumerating the rest.
	n.visitID++
	stamp := n.visitID
	compLinks := n.linksBuf[:0]
	compFlows := n.flowsBuf[:0]
	for _, l := range seed.links {
		if n.linkVisit[l] != stamp {
			n.linkVisit[l] = stamp
			compLinks = append(compLinks, int(l))
		}
	}
	for head := 0; head < len(compLinks) && 2*len(compFlows) < n.liveCount; head++ {
		for _, f := range n.links[compLinks[head]].flows {
			if f.visit == stamp {
				continue
			}
			f.visit = stamp
			compFlows = append(compFlows, f)
			for _, l := range f.links {
				if n.linkVisit[l] != stamp {
					n.linkVisit[l] = stamp
					compLinks = append(compLinks, int(l))
				}
			}
		}
	}
	n.linksBuf, n.flowsBuf = compLinks, compFlows

	if len(compFlows) == 0 {
		return // departed flow was alone on its path
	}
	if 2*len(compFlows) >= n.liveCount {
		n.fullRecompute()
		return
	}
	n.incRecs++
	if len(n.liveList) > 2*n.liveCount+16 {
		n.compactLive() // bound tombstone growth on incremental-only churn
	}

	// Deterministic orders: flows by creation id (event tie-breaks), links
	// ascending (bottleneck tie-breaks match the full pass).
	sort.Slice(compFlows, func(a, b int) bool { return compFlows[a].id < compFlows[b].id })
	sort.Ints(compLinks)
	n.fill(compLinks, compFlows)
}

// fullRecompute runs progressive filling over all live flows. The live
// list is already in creation-id order, so no sort is needed — just a
// compaction pass dropping finished flows.
func (n *FlowNet) fullRecompute() {
	n.fullRecs++
	n.compactLive()
	links := n.linksBuf[:0]
	for i := range n.links {
		if len(n.links[i].flows) > 0 {
			links = append(links, i)
		}
	}
	n.linksBuf = links
	n.fill(links, n.liveList)
}

// fill runs progressive filling (max-min fairness) over the given flows,
// whose link usage is exactly covered by links (ascending order), then
// settles every flow whose share changed and records it for the coalesced
// completion-event maintenance at instant end (or, in eager mode,
// reschedules it inline). Flows whose share is unchanged are left entirely
// alone: their pending event already fires at the correct absolute time.
// Flows are handled in creation order so simultaneous completions fire in
// a deterministic sequence. The fill loop allocates nothing.
func (n *FlowNet) fill(links []int, flows []*Flow) {
	for _, l := range links {
		n.cnt[l] = len(n.links[l].flows)
		n.remCap[l] = n.effCapacity(l, n.cnt[l])
	}
	for _, f := range flows {
		f.frozen = false
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Find the most constrained link among links carrying unfrozen
		// flows, compacting drained links out of the scan (preserving
		// ascending order so tie-breaks stay deterministic).
		best := -1
		bestShare := math.Inf(1)
		w := 0
		for _, l := range links {
			if n.cnt[l] == 0 {
				continue
			}
			links[w] = l
			w++
			share := n.remCap[l] / float64(n.cnt[l])
			if share < bestShare {
				bestShare = share
				best = l
			}
		}
		links = links[:w]
		if best < 0 {
			// No unfrozen flow crosses any link (cannot happen: every live
			// flow has a non-empty path), but guard against livelock.
			for _, f := range flows {
				if !f.frozen {
					f.next = 0
					f.frozen = true
				}
			}
			break
		}
		// Freeze every unfrozen flow on the bottleneck at the fair share.
		// The order of iteration is immaterial: every frozen flow gets
		// the same share, and the remCap/cnt updates commute exactly
		// (each round subtracts the same bestShare per crossing).
		for _, f := range n.links[best].flows {
			if f.frozen {
				continue
			}
			f.next = bestShare
			f.frozen = true
			unfrozen--
			for _, l := range f.links {
				n.remCap[l] -= bestShare
				if n.remCap[l] < 0 {
					n.remCap[l] = 0 // guard float error
				}
				n.cnt[l]--
			}
		}
	}

	// Apply changed shares: settle progress under the old rate, then hand
	// the flow to the coalesced per-instant maintenance (one queue
	// operation per flow per instant, against its final rate). The settle
	// runs here, per fill, because charging progress is float-sensitive to
	// grouping: regrouping the decrements would drift completion times by
	// an ulp and break bit-identity with pre-coalescing builds.
	emit := n.obs.Enabled()
	now := n.eng.Now()
	for _, f := range flows {
		if f.next == f.rate {
			continue
		}
		n.settle(f)
		f.rate = f.next
		if !n.eager {
			if !f.resched {
				f.resched = true
				n.pendingResched = append(n.pendingResched, f)
			}
			// Reserve the completion event's FIFO slot now — at the exact
			// point the eager path calls Reschedule — even though the
			// queue operation is deferred to flushResched. Same-instant
			// ties (two flows completing together, or a completion tying
			// with an event scheduled later in this dispatch) and the seq
			// numbering of everything scheduled after this churn then
			// match the eager stream bit-for-bit. A later churn in the
			// same instant overwrites the reservation, exactly as eager's
			// re-Reschedule would assign a fresh seq.
			if !f.persistent && f.rate > 0 {
				f.doneSeq = n.eng.ReserveSeq()
			}
			continue
		}
		if emit && f.announced {
			n.obs.Emit(n.flowEvent(obs.FlowRate, f, false, ""))
		}
		if f.persistent {
			continue
		}
		if f.rate <= 0 {
			n.eng.Remove(&f.doneEv)
			continue
		}
		n.eng.Reschedule(&f.doneEv, now+sim.Time(f.remaining/f.rate), f.finishFn)
	}
}

// fire dispatches a flow's completion event according to its kind.
func (n *FlowNet) fire(f *Flow) {
	switch f.kind {
	case flowZero:
		// Counted complete at creation; only the emission and callback
		// were deferred to the next event cycle.
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, ""))
		}
		if f.done != nil {
			f.done()
		}
		n.maybeRecycle(f)
	case flowLocal:
		f.finished = true
		f.remaining = 0
		n.completed++
		n.bytesDone += f.total
		if n.obs.Enabled() {
			n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, "local"))
		}
		if f.done != nil {
			f.done()
		}
		n.maybeRecycle(f)
	default:
		n.finish(f)
	}
}

// finish completes a network flow and triggers its callback.
func (n *FlowNet) finish(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.remaining = 0
	n.completed++
	n.bytesDone += f.total
	n.detach(f)
	// Mark before the callback: occupancy changes and the refill must be
	// observable to any path-rate reading the callback makes.
	n.mark(f)
	if n.obs.Enabled() {
		n.obs.Emit(n.flowEvent(obs.FlowFinish, f, false, ""))
	}
	if f.done != nil {
		f.done()
	}
	n.maybeRecycle(f)
}

// ProspectiveRate estimates the max-min share a new flow on path would
// receive: the minimum over path links of capacity/(flows+1). This is the
// "path transmission rate" observation of Section II-B-3. It depends only
// on link occupancy, which churn updates immediately.
func (n *FlowNet) ProspectiveRate(path []LinkID) float64 {
	rate := math.Inf(1)
	for _, l := range path {
		flows := len(n.links[l].flows) + 1
		r := n.effCapacity(int(l), flows) / float64(flows)
		if r < rate {
			rate = r
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// CheckFeasible verifies that no link is oversubscribed: the sum of flow
// rates on each link must not exceed its capacity (within tolerance).
// Rates are recomputed eagerly at churn, so no flush is needed.
// Used by property tests.
func (n *FlowNet) CheckFeasible() error {
	const tol = 1e-6
	for i := range n.links {
		var sum float64
		for _, f := range n.links[i].flows {
			sum += f.rate
		}
		cap := n.effCapacity(i, len(n.links[i].flows))
		if sum > cap*(1+tol) {
			return fmt.Errorf("link %d oversubscribed: %v > %v", i, sum, cap)
		}
	}
	return nil
}
