package topology

import (
	"fmt"

	"mapsched/internal/sim"
)

// Matrix is a topology defined directly by a distance matrix H, as in the
// worked example of Fig. 2 of the paper. It supports transfers at a flat
// per-pair bandwidth without contention, so it is suitable for unit tests
// and cost-model validation rather than full contention studies.
type Matrix struct {
	h     [][]float64
	racks []int
	eng   *sim.Engine
	bps   float64
	disk  float64

	classes    *Classes // memoized class derivation (nil when none exists)
	classTried bool
}

var (
	_ Network        = (*Matrix)(nil)
	_ RateObserver   = (*Matrix)(nil)
	_ Transferer     = (*Matrix)(nil)
	_ ClassedNetwork = (*Matrix)(nil)
)

// NewMatrix builds a Matrix topology. h must be square with a zero
// diagonal and non-negative entries. racks assigns each node to a rack;
// pass nil to place every node in rack 0. bps is the point-to-point
// transfer bandwidth (bytes/second) and diskBps the local read bandwidth.
func NewMatrix(eng *sim.Engine, h [][]float64, racks []int, bps, diskBps float64) (*Matrix, error) {
	n := len(h)
	if n == 0 {
		return nil, fmt.Errorf("topology: empty distance matrix")
	}
	for i, row := range h {
		if len(row) != n {
			return nil, fmt.Errorf("topology: row %d has %d entries, want %d", i, len(row), n)
		}
		if row[i] != 0 {
			return nil, fmt.Errorf("topology: diagonal entry h[%d][%d] = %v, want 0", i, i, row[i])
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("topology: h[%d][%d] = %v is negative", i, j, v)
			}
		}
	}
	if racks == nil {
		racks = make([]int, n)
	}
	if len(racks) != n {
		return nil, fmt.Errorf("topology: %d rack labels for %d nodes", len(racks), n)
	}
	if bps <= 0 || diskBps <= 0 {
		return nil, fmt.Errorf("topology: bandwidths must be positive (bps=%v disk=%v)", bps, diskBps)
	}
	return &Matrix{h: h, racks: racks, eng: eng, bps: bps, disk: diskBps}, nil
}

// Size returns the number of nodes.
func (m *Matrix) Size() int { return len(m.h) }

// Distance returns h[a][b].
func (m *Matrix) Distance(a, b NodeID) float64 { return m.h[a][b] }

// Rack returns the rack label of node a.
func (m *Matrix) Rack(a NodeID) int { return m.racks[a] }

// PathRate returns the flat transfer bandwidth (disk bandwidth for a==b).
func (m *Matrix) PathRate(a, b NodeID) float64 {
	if a == b {
		return m.disk
	}
	return m.bps
}

// Epoch implements the epoch-observer contract for rate caching: Matrix
// path rates are flat constants, so the epoch never advances.
func (m *Matrix) Epoch() uint64 { return 0 }

// Transfer completes after bytes/rate seconds with no contention model.
func (m *Matrix) Transfer(src, dst NodeID, bytes float64, done func()) *Flow {
	rate := m.PathRate(src, dst)
	if bytes < 0 {
		bytes = 0
	}
	f := &Flow{remaining: bytes, rate: rate, lastUpdate: m.eng.Now()}
	m.eng.After(bytes/rate, func() {
		f.finished = true
		f.remaining = 0
		if done != nil {
			done()
		}
	})
	return f
}
