package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilStreamIsDisabled(t *testing.T) {
	var s *Stream
	if s.Enabled() {
		t.Fatal("nil stream enabled")
	}
	s.Attach(Func(func(Event) { t.Fatal("observer on nil stream") }))
	s.Emit(Event{Type: TaskAssign}) // must not panic
}

func TestStreamAttachEmit(t *testing.T) {
	s := NewStream()
	if s.Enabled() {
		t.Fatal("empty stream enabled")
	}
	s.Attach(nil) // ignored
	if s.Enabled() {
		t.Fatal("nil observer counted")
	}
	var got []Type
	s.Attach(Func(func(e Event) { got = append(got, e.Type) }))
	if !s.Enabled() {
		t.Fatal("stream with observer disabled")
	}
	s.Emit(Event{Type: TaskOffer})
	s.Emit(Event{Type: TaskAssign})
	if len(got) != 2 || got[0] != TaskOffer || got[1] != TaskAssign {
		t.Fatalf("got %v", got)
	}
}

func TestMultiFanOut(t *testing.T) {
	a, b := 0, 0
	m := Multi(Func(func(Event) { a++ }), nil, Func(func(Event) { b++ }))
	m.Observe(Event{})
	m.Observe(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	events := []Event{
		{T: 0, Type: JobSubmit, Node: -1, Job: "wc"},
		{T: 1.5, Type: TaskOffer, Node: 3, Job: "wc",
			Task:     &TaskRef{Kind: "map", Index: 0},
			Decision: &Decision{C: 0.8, CAvg: 1.2, P: 0.77, PMin: 0.4}},
		{T: 1.5, Type: TaskAssign, Node: 3, Job: "wc",
			Task: &TaskRef{Kind: "map", Index: 0}, Locality: "local rack",
			Decision: &Decision{C: 0.8, CAvg: 1.2, P: 0.77, PMin: 0.4, Draw: "accept"}},
		{T: 2, Type: FlowStart, Node: 3,
			Flow: &FlowInfo{ID: 7, Src: 1, Dst: 3, Bytes: 1e8, Rate: 125e6, Links: []int{2, 6}}},
		{T: 9, Type: JobFinish, Node: -1, Job: "wc", Dur: 9},
	}
	for _, e := range events {
		sink.Observe(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("%d lines, want %d", n, len(events))
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("%d events back, want %d", len(back), len(events))
	}
	if *back[1].Decision != *events[1].Decision {
		t.Fatalf("decision round trip: %+v", back[1].Decision)
	}
	if back[3].Flow.ID != 7 || len(back[3].Flow.Links) != 2 {
		t.Fatalf("flow round trip: %+v", back[3].Flow)
	}
	// Node 0 and index 0 must survive encoding (no omitempty on them).
	var zero bytes.Buffer
	z := NewJSONL(&zero)
	z.Observe(Event{Type: TaskStart, Node: 0, Job: "j", Task: &TaskRef{Kind: "map", Index: 0}})
	if err := z.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node":0`, `"index":0`} {
		if !strings.Contains(zero.String(), want) {
			t.Fatalf("zero values dropped: %s", zero.String())
		}
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t\":0}\nnot json\n")); err == nil {
		t.Fatal("bad line accepted")
	}
	events, err := ReadJSONL(strings.NewReader("\n  \n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank log: %v, %v", events, err)
	}
}

func TestSummaryCounts(t *testing.T) {
	s := NewSummary()
	feed := []Event{
		{Type: JobSubmit},
		{Type: TaskOffer, Task: &TaskRef{Kind: "map"}, Decision: &Decision{P: 0.9}},
		{Type: TaskAssign, Task: &TaskRef{Kind: "map"}, Locality: "local node"},
		{Type: TaskStart, Task: &TaskRef{Kind: "map"}, Locality: "local node", Wait: 2},
		{Type: TaskOffer, Task: &TaskRef{Kind: "map"}, Decision: &Decision{P: 0.3}},
		{Type: TaskSkip, Task: &TaskRef{Kind: "map"}, Reason: "below_pmin"},
		{Type: TaskAssign, Task: &TaskRef{Kind: "map"}, Locality: "local rack"},
		{Type: TaskStart, Task: &TaskRef{Kind: "map"}, Locality: "local rack", Wait: 4},
		{Type: TaskFinish, Task: &TaskRef{Kind: "map"}, Dur: 10},
		{Type: FlowStart, Flow: &FlowInfo{Src: 1, Dst: 2, Bytes: 100, Links: []int{0}}},
		{Type: FlowStart, Flow: &FlowInfo{Src: 2, Dst: 2, Bytes: 50}},
		{Type: FlowFinish, Flow: &FlowInfo{}},
		{Type: JobFinish, Dur: 30},
	}
	for _, e := range feed {
		s.Observe(e)
	}
	if got := s.SkipRate("map"); got != 1.0/3 {
		t.Fatalf("skip rate %v", got)
	}
	if got := s.LocalityHitRate("map"); got != 0.5 {
		t.Fatalf("locality hit rate %v", got)
	}
	r := s.Registry()
	if r.Counter("skips_map_below_pmin").Value() != 1 {
		t.Fatal("reason counter missing")
	}
	if r.Counter("flow_bytes_remote").Value() != 100 || r.Counter("flow_bytes_local").Value() != 50 {
		t.Fatalf("flow byte split: remote=%v local=%v",
			r.Counter("flow_bytes_remote").Value(), r.Counter("flow_bytes_local").Value())
	}
	if r.Counter("link_000_bytes").Value() != 100 {
		t.Fatal("per-link volume missing")
	}
	if h := r.Histogram("queue_wait_map_s"); h.N() != 2 || h.Mean() != 3 {
		t.Fatalf("queue wait histogram: n=%d mean=%v", h.N(), h.Mean())
	}
	if s.SkipRate("reduce") != 0 || s.LocalityHitRate("reduce") != 0 {
		t.Fatal("unobserved kind should report zero rates")
	}
	out := s.String()
	for _, want := range []string{"locality_hit_map", "skip_rate_map", "assigns_map", "queue_wait_map_s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %s:\n%s", want, out)
		}
	}
}
