// Package obs is the scheduler-decision observability layer: a typed
// event stream emitted by the simulation engine, the task-level
// schedulers and the flow network, with pluggable sinks (JSONL log,
// streaming metrics summary).
//
// Design constraints:
//
//   - Zero overhead when disabled. Every emission site is guarded by
//     Stream.Enabled() — a nil-receiver-safe check that compiles to two
//     comparisons — and builds the Event value only when a sink is
//     attached. With no observer the simulation runs the exact same
//     instruction stream as before the layer existed.
//   - No influence on decisions. Observers never touch the RNG, the
//     event queue or any scheduler state; a run with observers attached
//     is bit-identical to the same run without them.
//   - Deterministic. Events are emitted in simulation order, carry the
//     simulated timestamp, and serialize with a fixed field order, so a
//     fixed seed reproduces a byte-identical event log.
package obs

// Type enumerates the event kinds of the stream.
type Type string

// Event kinds. Scheduler decisions (task_offer / task_assign /
// task_skip) carry the Formula 1–5 breakdown in Decision; engine
// lifecycle events (job_*, task_start/finish, spec_*, node_fail,
// task_relaunch) describe execution; flow_* events trace the network.
const (
	JobSubmit    Type = "job_submit"
	JobFinish    Type = "job_finish"
	TaskOffer    Type = "task_offer"    // a candidate was costed for an offered slot
	TaskAssign   Type = "task_assign"   // the scheduler placed a task
	TaskSkip     Type = "task_skip"     // the scheduler declined the slot
	TaskStart    Type = "task_start"    // the engine launched the task
	TaskFinish   Type = "task_finish"   // the task completed
	SpecStart    Type = "spec_start"    // speculative backup attempt launched
	SpecWin      Type = "spec_win"      // the backup finished first
	NodeFail     Type = "node_fail"     // a node permanently failed (crash instant)
	TaskRelaunch Type = "task_relaunch" // a task re-queued by failure recovery
	FlowStart    Type = "flow_start"
	FlowRate     Type = "flow_rate" // a flow's max-min share changed
	FlowFinish   Type = "flow_finish"

	// Fault-injection and recovery events (internal/faults + engine).
	FailureDetected Type = "failure_detected" // heartbeat-expiry declared the node dead
	NodeSlow        Type = "node_slow"        // compute-rate degradation toggled
	LinkDegrade     Type = "link_degrade"     // a node's access-link capacity scaled
	AttemptFail     Type = "attempt_fail"     // a task attempt failed transiently
	NodeBlacklist   Type = "node_blacklist"   // repeat-offender node removed from offers
	ReplicaLoss     Type = "replica_loss"     // HDFS replicas removed from a node
	JobFail         Type = "job_fail"         // a job terminated unsuccessfully

	// Placement-service crash-safety events (internal/placement:
	// journal, recovery, invariant auditor; DESIGN.md §16).
	AuditPass      Type = "audit_pass"      // invariant audit found zero drift
	AuditDrift     Type = "audit_drift"     // invariant audit detected state drift (Reason lists it)
	JournalRecover Type = "journal_recover" // a service was rebuilt from checkpoint+journal

	// Open-system workload events (engine.Config.Open; DESIGN.md §18).
	// Reason carries the tenant name on job_arrival/job_admit.
	JobArrival      Type = "job_arrival"      // a job reached its tenant queue
	JobAdmit        Type = "job_admit"        // admission released a queued job (Wait = queueing delay)
	JobReject       Type = "job_reject"       // a full tenant queue turned the arrival away
	JobPreempt      Type = "job_preempt"      // kill-and-requeue reclaimed an over-share tenant's job
	NodeUnblacklist Type = "node_unblacklist" // the last holding job released a blacklisted node
)

// TaskRef identifies one task within its job.
type TaskRef struct {
	Kind  string `json:"kind"` // "map" or "reduce"
	Index int    `json:"index"`
}

// Decision is the Formula 1–5 breakdown behind one probabilistic
// scheduling decision: placement cost C (Formulas 1/3), average cost
// C_avg over available nodes, probability P = 1 − exp(−C_avg/C)
// (Formulas 4–5), the configured threshold P_min, and how the Bernoulli
// gate resolved. Baseline schedulers fill only the fields they use.
type Decision struct {
	C    float64 `json:"c"`
	CAvg float64 `json:"c_avg"`
	P    float64 `json:"p"`
	PMin float64 `json:"p_min"`
	// Draw records the gate outcome: "local" (C = 0, assigned
	// instantly), "accept"/"decline" (Bernoulli draw), "deterministic"
	// (ablation mode, no draw), "below_pmin" (threshold skip), or ""
	// on a task_offer event where the gate has not run yet.
	Draw string `json:"draw,omitempty"`
}

// FlowInfo describes a network flow event.
type FlowInfo struct {
	ID         int64   `json:"id"`
	Src        int     `json:"src"` // -1 when the flow is not node-tagged
	Dst        int     `json:"dst"`
	Bytes      float64 `json:"bytes"` // original transfer size; 0 for persistent flows
	Rate       float64 `json:"rate"`  // current share, bytes/second
	Links      []int   `json:"links,omitempty"`
	Persistent bool    `json:"persistent,omitempty"`
}

// Event is one observation. Fields not applicable to the event type are
// zero and, where the encoding allows, omitted.
type Event struct {
	T        float64   `json:"t"` // simulated time, seconds
	Type     Type      `json:"type"`
	Node     int       `json:"node"` // the node concerned; -1 when n/a
	Job      string    `json:"job,omitempty"`
	Task     *TaskRef  `json:"task,omitempty"`
	Locality string    `json:"locality,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	Wait     float64   `json:"wait,omitempty"`   // submit→launch queue wait (task_start)
	Dur      float64   `json:"dur,omitempty"`    // duration (task_finish, job_finish)
	Factor   float64   `json:"factor,omitempty"` // slowdown/degradation factor (node_slow, link_degrade)
	Decision *Decision `json:"decision,omitempty"`
	Flow     *FlowInfo `json:"flow,omitempty"`
}

// Observer consumes the event stream. Implementations must not mutate
// simulation state; they are called synchronously from the event loop.
type Observer interface {
	Observe(Event)
}

// Stream is the emission point shared by the engine, the schedulers and
// the flow network. A nil *Stream is valid and permanently disabled, so
// components that may run outside a full simulation (unit tests,
// benchmarks) need no special casing.
type Stream struct {
	obs []Observer
}

// NewStream returns an empty (disabled) stream.
func NewStream() *Stream { return &Stream{} }

// Attach adds a sink. Nil observers are ignored.
func (s *Stream) Attach(o Observer) {
	if s == nil || o == nil {
		return
	}
	s.obs = append(s.obs, o)
}

// Enabled reports whether any sink is attached. Emission sites guard on
// this before building an Event, keeping the disabled path free of
// allocations and field marshalling.
func (s *Stream) Enabled() bool { return s != nil && len(s.obs) > 0 }

// Emit delivers e to every attached sink in attach order.
func (s *Stream) Emit(e Event) {
	if s == nil {
		return
	}
	for _, o := range s.obs {
		o.Observe(e)
	}
}

// Multi fans one observer call out to several sinks.
func Multi(sinks ...Observer) Observer { return multi(sinks) }

type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		if o != nil {
			o.Observe(e)
		}
	}
}

// Func adapts a function to the Observer interface.
type Func func(Event)

// Observe implements Observer.
func (f Func) Observe(e Event) { f(e) }
