package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mapsched/internal/metrics"
)

// JSONL writes one JSON object per event to a writer. Encoding uses the
// Event struct's fixed field order, so a deterministic simulation
// produces a byte-identical log. The first encoding or write error is
// latched and returned by Flush; subsequent events are dropped.
type JSONL struct {
	w   *bufio.Writer
	err error
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Observe implements Observer.
func (j *JSONL) Observe(e Event) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("obs: encode event: %w", err)
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = fmt.Errorf("obs: write event: %w", err)
		return
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.err = fmt.Errorf("obs: write event: %w", err)
	}
}

// Flush drains the buffer and returns the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("obs: flush: %w", err)
	}
	return j.err
}

// ReadJSONL parses an event log written by the JSONL sink.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read events: %w", err)
	}
	return out, nil
}

// Summary is a streaming-metrics sink: it folds the event stream into a
// metrics.Registry of counters and histograms — locality hit rates,
// decision skip rates, queue waits, task durations, per-link and
// per-node-pair network volume — without retaining the events.
type Summary struct {
	reg *metrics.Registry
}

// NewSummary returns an empty summary sink.
func NewSummary() *Summary {
	return &Summary{reg: metrics.NewRegistry()}
}

// Registry exposes the underlying metrics for programmatic access.
func (s *Summary) Registry() *metrics.Registry { return s.reg }

// Observe implements Observer.
func (s *Summary) Observe(e Event) {
	r := s.reg
	kind := ""
	if e.Task != nil {
		kind = e.Task.Kind
	}
	switch e.Type {
	case JobSubmit:
		r.Counter("jobs_submitted").Inc()
	case JobFinish:
		r.Counter("jobs_finished").Inc()
		r.Histogram("job_completion_s", metrics.DefaultTimeBounds...).Observe(e.Dur)
	case TaskOffer:
		r.Counter("offers_" + kind).Inc()
		if e.Decision != nil {
			r.Histogram("offer_p_"+kind, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99).Observe(e.Decision.P)
		}
	case TaskAssign:
		r.Counter("assigns_" + kind).Inc()
		if e.Locality != "" {
			r.Counter("assigns_" + kind + "_" + localitySlug(e.Locality)).Inc()
		}
		if e.Reason != "" {
			r.Counter("assigns_" + kind + "_" + e.Reason).Inc()
		}
	case TaskSkip:
		r.Counter("skips_" + kind).Inc()
		if e.Reason != "" {
			r.Counter("skips_" + kind + "_" + e.Reason).Inc()
		}
	case TaskStart:
		r.Counter("starts_" + kind).Inc()
		if e.Locality != "" {
			r.Counter("starts_" + kind + "_" + localitySlug(e.Locality)).Inc()
		}
		r.Histogram("queue_wait_"+kind+"_s", metrics.DefaultTimeBounds...).Observe(e.Wait)
	case TaskFinish:
		r.Histogram("task_dur_"+kind+"_s", metrics.DefaultTimeBounds...).Observe(e.Dur)
	case SpecStart:
		r.Counter("speculations").Inc()
	case SpecWin:
		r.Counter("speculation_wins").Inc()
	case NodeFail:
		r.Counter("node_failures").Inc()
	case TaskRelaunch:
		r.Counter("relaunches_" + kind).Inc()
	case FlowStart:
		if e.Flow == nil {
			return
		}
		r.Counter("flows_started").Inc()
		r.Counter("flow_bytes").Add(e.Flow.Bytes)
		if e.Flow.Src >= 0 && e.Flow.Src == e.Flow.Dst {
			r.Counter("flow_bytes_local").Add(e.Flow.Bytes)
		} else {
			r.Counter("flow_bytes_remote").Add(e.Flow.Bytes)
		}
		for _, l := range e.Flow.Links {
			r.Counter(fmt.Sprintf("link_%03d_bytes", l)).Add(e.Flow.Bytes)
		}
	case FlowRate:
		r.Counter("flow_rate_changes").Inc()
	case FlowFinish:
		r.Counter("flows_finished").Inc()
	}
}

// localitySlug maps job.Locality strings ("local node") to counter-name
// fragments ("local_node").
func localitySlug(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}

// SkipRate returns skips/(assigns+skips) for the task kind ("map" or
// "reduce"); 0 when no decisions were observed.
func (s *Summary) SkipRate(kind string) float64 {
	a := s.reg.Counter("assigns_" + kind).Value()
	k := s.reg.Counter("skips_" + kind).Value()
	if a+k == 0 {
		return 0
	}
	return k / (a + k)
}

// LocalityHitRate returns the node-local share of launched tasks of the
// kind; 0 when none were observed. It counts task_start events (whose
// locality is the realized placement for both maps and reduces) rather
// than assignments, where reduce locality is not yet known.
func (s *Summary) LocalityHitRate(kind string) float64 {
	n := s.reg.Counter("starts_" + kind).Value()
	if n == 0 {
		return 0
	}
	return s.reg.Counter("starts_"+kind+"_local_node").Value() / n
}

// String renders the collected metrics plus the derived rates.
func (s *Summary) String() string {
	var b strings.Builder
	t := metrics.NewTable("Rate", "Value")
	for _, kind := range []string{"map", "reduce"} {
		t.AddRow("locality_hit_"+kind, fmt.Sprintf("%.3f", s.LocalityHitRate(kind)))
		t.AddRow("skip_rate_"+kind, fmt.Sprintf("%.3f", s.SkipRate(kind)))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	b.WriteString(s.reg.Render())
	return b.String()
}
