package sched

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/placement"
	"mapsched/internal/topology"
)

// CapacityConfig tunes the Capacity Scheduler baseline, reconstructed
// from the paper's description of it (Section IV): "it gives a higher
// priority to a job that can achieve higher data locality when assigning
// available slot resources in the map task allocation and delays reduce
// tasks to achieve data locality in the reduce task allocation".
type CapacityConfig struct {
	// JobPolicy orders jobs within the (single) queue; the real scheduler
	// runs FIFO inside each capacity queue.
	JobPolicy JobPolicy
	// ReduceWait bounds how many offers a reduce declines waiting for a
	// node that holds part of its input.
	ReduceWait int
}

// DefaultCapacityConfig returns the baseline settings.
func DefaultCapacityConfig() CapacityConfig {
	return CapacityConfig{JobPolicy: FIFOJobs, ReduceWait: 4}
}

// Capacity is the Capacity Scheduler baseline (single queue).
type Capacity struct {
	env   Env
	cfg   CapacityConfig
	dec   *placement.Decider
	waits map[*job.ReduceTask]int
}

// NewCapacity returns a Builder for the baseline.
func NewCapacity(cfg CapacityConfig) Builder {
	return func(env Env) Scheduler {
		dec := placement.NewDecider(env.Place, placement.Config{Naive: true}, env.RNG, env.Obs)
		return &Capacity{env: env, cfg: cfg, dec: dec, waits: make(map[*job.ReduceTask]int)}
	}
}

// Name implements Scheduler.
func (c *Capacity) Name() string {
	return fmt.Sprintf("capacity(%s,wait=%d)", c.cfg.JobPolicy, c.cfg.ReduceWait)
}

// AssignMap prioritizes the job that achieves the best locality on the
// offered node: any job with a node-local task wins (in queue order),
// then any with a rack-local task, then the head job's first pending map.
func (c *Capacity) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	jobs := orderJobs(ctx, c.cfg.JobPolicy, mapKind)
	if len(jobs) == 0 {
		return nil
	}
	var rackChoice *job.MapTask
	for _, j := range jobs {
		for _, m := range j.PendingMaps() {
			switch c.dec.Locality(m, node) {
			case job.LocalNode:
				return m
			case job.LocalRack:
				if rackChoice == nil {
					rackChoice = m
				}
			}
		}
	}
	if rackChoice != nil {
		return rackChoice
	}
	return jobs[0].PendingMaps()[0]
}

// AssignReduce delays each reduce until the offered node holds some of
// its input, up to the wait bound.
func (c *Capacity) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	for _, j := range orderJobs(ctx, c.cfg.JobPolicy, reduceKind) {
		pending := j.PendingReduces()
		if len(pending) == 0 {
			continue
		}
		rc := c.dec.NewReduceCoster(j, core.CurrentSize{})
		best := pending[0]
		bestOn := rc.OnNode(node, best.Index)
		for _, r := range pending[1:] {
			if v := rc.OnNode(node, r.Index); v > bestOn {
				bestOn = v
				best = r
			}
		}
		if bestOn > 0 || rc.TotalEstimated(best.Index) == 0 {
			delete(c.waits, best)
			return best
		}
		if c.waits[best] >= c.cfg.ReduceWait {
			delete(c.waits, best)
			return best
		}
		c.waits[best]++
		return nil
	}
	return nil
}
