package sched

import (
	"testing"

	"mapsched/internal/job"
	"mapsched/internal/topology"
)

func TestLARTSMapDelegatesToDelayScheduling(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{3}, 1)
	l := NewLARTS(DefaultLARTSConfig())(f.env).(*LARTS)
	if got := l.AssignMap(ctxFor(j), 3); got == nil {
		t.Fatal("LARTS declined a local map")
	}
}

func TestLARTSReducePrefersDataNode(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	// All of the reduce's input sits on node 2.
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	j.Maps[0].Progress = 1
	j.DoneMaps = 1
	l := NewLARTS(DefaultLARTSConfig())(f.env).(*LARTS)
	ctx := ctxFor(j)
	// The data node is accepted immediately.
	if got := l.AssignReduce(ctx, 2); got == nil {
		t.Fatal("LARTS declined the max-data node")
	}
	j.Reduces[0].State = job.TaskPending
	j.Reduces[0].Node = -1
	delete(l.waits, j.Reduces[0])
	// A dataless node is declined at first...
	if got := l.AssignReduce(ctx, 7); got != nil {
		t.Fatal("LARTS accepted a dataless node immediately")
	}
	// ...but the wait is bounded.
	accepted := false
	for i := 0; i < DefaultLARTSConfig().MaxWait+1; i++ {
		if l.AssignReduce(ctx, 7) != nil {
			accepted = true
			break
		}
	}
	if !accepted {
		t.Fatal("LARTS never fell back after MaxWait offers")
	}
}

func TestLARTSReduceNoDataYet(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	j.Maps[0].State = job.TaskRunning
	j.Maps[0].Node = 0
	j.Maps[0].Progress = 0 // launched but nothing read: no shuffle data known
	l := NewLARTS(DefaultLARTSConfig())(f.env).(*LARTS)
	ctx := ctxFor(j)
	ctx.Slowstart = 0
	if got := l.AssignReduce(ctx, 5); got == nil {
		t.Fatal("LARTS declined with no shuffle data known (nothing to wait for)")
	}
}

func TestCapacityMapLocalityPriority(t *testing.T) {
	f := newFixture(t)
	// Job 1 (head of FIFO queue) has its block on node 5 only; job 2 on
	// node 0. Offering node 0 must run job 2's local task despite FIFO.
	j1 := f.addJob(t, 1, []topology.NodeID{5}, 1)
	j2 := f.addJob(t, 2, []topology.NodeID{0}, 1)
	c := NewCapacity(DefaultCapacityConfig())(f.env).(*Capacity)
	got := c.AssignMap(ctxFor(j1, j2), 0)
	if got == nil || got.Job != j2 {
		t.Fatalf("capacity ignored the higher-locality job: %v", got)
	}
	// With no local candidate anywhere, the head job's task runs.
	got = c.AssignMap(ctxFor(j1, j2), 6) // rack 1; j1's block on node 5 is rack 1
	if got == nil {
		t.Fatal("capacity declined with rack-local candidates available")
	}
	if got.Job != j1 {
		t.Fatalf("rack-local priority broken: got job %d", got.Job.ID)
	}
}

func TestCapacityMapNeverIdlesSlots(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{5}, 1)
	c := NewCapacity(DefaultCapacityConfig())(f.env).(*Capacity)
	// Remote-only offer still assigns (no delay on the map side).
	if got := c.AssignMap(ctxFor(j), 0); got == nil {
		t.Fatal("capacity left a map slot idle")
	}
}

func TestCapacityReduceWaitsForData(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	j.Maps[0].Progress = 1
	j.DoneMaps = 1
	cfg := DefaultCapacityConfig()
	c := NewCapacity(cfg)(f.env).(*Capacity)
	ctx := ctxFor(j)
	// Node with data: immediate.
	if got := c.AssignReduce(ctx, 2); got == nil {
		t.Fatal("capacity declined the data node")
	}
	j.Reduces[0].State = job.TaskPending
	j.Reduces[0].Node = -1
	delete(c.waits, j.Reduces[0])
	// Dataless node: declines, then bounded fallback.
	declines := 0
	for i := 0; i < cfg.ReduceWait+2; i++ {
		if c.AssignReduce(ctx, 7) != nil {
			break
		}
		declines++
	}
	if declines == 0 {
		t.Fatal("capacity accepted a dataless node immediately")
	}
	if declines > cfg.ReduceWait {
		t.Fatalf("capacity waited %d offers, bound %d", declines, cfg.ReduceWait)
	}
}

func TestBaselineNames(t *testing.T) {
	f := newFixture(t)
	if NewLARTS(DefaultLARTSConfig())(f.env).Name() == "" {
		t.Fatal("LARTS unnamed")
	}
	if NewCapacity(DefaultCapacityConfig())(f.env).Name() == "" {
		t.Fatal("capacity unnamed")
	}
}
