package sched

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/placement"
	"mapsched/internal/topology"
)

// LARTSConfig tunes the LARTS baseline (Hammoud & Sakr, CloudCom'11),
// reconstructed from the paper's description: "a location-aware reduce
// task scheduler, which schedules the reduce tasks as close to their
// maximum amount of input data as possible and thus decreases the
// bandwidth cost during shuffling". Map scheduling follows delay
// scheduling, as in the original system (built on the Fair Scheduler).
type LARTSConfig struct {
	// Fair configures the map-side delay scheduling.
	Fair FairDelayConfig
	// MaxWait bounds how many offers a reduce declines while waiting for
	// the node holding the plurality of its input.
	MaxWait int
	// SweetSpotFraction accepts a node early when it already holds at
	// least this fraction of the reduce's current input.
	SweetSpotFraction float64
}

// DefaultLARTSConfig returns the baseline settings.
func DefaultLARTSConfig() LARTSConfig {
	return LARTSConfig{
		Fair:              DefaultFairDelayConfig(),
		MaxWait:           5,
		SweetSpotFraction: 0.25,
	}
}

// LARTS is the locality-aware reduce task scheduler baseline.
type LARTS struct {
	env   Env
	cfg   LARTSConfig
	dec   *placement.Decider
	maps  *FairDelay
	waits map[*job.ReduceTask]int
}

// NewLARTS returns a Builder for the baseline.
func NewLARTS(cfg LARTSConfig) Builder {
	return func(env Env) Scheduler {
		return &LARTS{
			env:   env,
			cfg:   cfg,
			dec:   placement.NewDecider(env.Place, placement.Config{Naive: true}, env.RNG, env.Obs),
			maps:  NewFairDelay(cfg.Fair)(env).(*FairDelay),
			waits: make(map[*job.ReduceTask]int),
		}
	}
}

// Name implements Scheduler.
func (l *LARTS) Name() string {
	return fmt.Sprintf("larts(wait=%d,sweet=%.2f)", l.cfg.MaxWait, l.cfg.SweetSpotFraction)
}

// AssignMap delegates to delay scheduling (LARTS only changes reduces).
func (l *LARTS) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	return l.maps.AssignMap(ctx, node)
}

// AssignReduce places each reduce as close to its largest input source as
// possible: it accepts the offered node when that node already holds a
// sweet-spot share of the reduce's current input or is the current
// maximum-data node, and otherwise waits a bounded number of offers.
func (l *LARTS) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	for _, j := range orderJobs(ctx, l.cfg.Fair.JobPolicy, reduceKind) {
		pending := j.PendingReduces()
		if len(pending) == 0 {
			continue
		}
		rc := l.dec.NewReduceCoster(j, core.CurrentSize{})
		// Consider the pending reduce with the most known input — its
		// placement matters most now.
		best := pending[0]
		bestVol := rc.TotalEstimated(best.Index)
		for _, r := range pending[1:] {
			if v := rc.TotalEstimated(r.Index); v > bestVol {
				bestVol = v
				best = r
			}
		}
		if bestVol == 0 {
			// No shuffle data known yet: any node is as good as any other.
			delete(l.waits, best)
			return best
		}
		// Accept when the node is (near-)optimal for this reduce.
		central, ok := rc.Centrality(best.Index, ctx.AvailReduce.Nodes)
		if ok && central == node {
			delete(l.waits, best)
			return best
		}
		if rc.OnNode(node, best.Index) >= l.cfg.SweetSpotFraction*bestVol {
			// The offered node already holds a significant share of the
			// reduce's input.
			delete(l.waits, best)
			return best
		}
		if l.waits[best] >= l.cfg.MaxWait {
			delete(l.waits, best)
			return best
		}
		l.waits[best]++
		return nil
	}
	return nil
}
