// Package sched implements the task-level schedulers compared in the
// paper's evaluation:
//
//   - Probabilistic: the paper's contribution (Algorithms 1–2) — cost-based
//     candidate selection with probabilistic assignment and a P_min gate.
//   - FairDelay: Hadoop 1.2.1's Fair Scheduler with Delay Scheduling for
//     map locality and random reduce placement.
//   - Coupling: Tan et al.'s Coupling Scheduler — probabilistic map launch
//     by locality degree, reduce launches paced by map progress and aimed
//     at the data-"centrality" node with a bounded wait.
//
// All schedulers share the same job-level policy (fair ordering, as in the
// paper's experiments; FIFO is available as an option) and are invoked by
// the engine at heartbeat time with one offered node.
package sched

import (
	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// Env carries the long-lived dependencies a scheduler needs.
type Env struct {
	Net  topology.Network
	Cost *core.CostModel
	RNG  *sim.RNG
	// Obs receives task_offer / task_assign / task_skip events carrying the
	// decision breakdown. A nil stream (the default outside a full
	// simulation) disables emission at the cost of one comparison.
	Obs *obs.Stream
}

// Context is the cluster snapshot for one assignment decision. The engine
// refreshes task progress (d_read, A_jf) before building it.
type Context struct {
	Now  sim.Time
	Jobs []*job.Job // submitted, unfinished jobs in submission order

	// AvailMap / AvailReduce snapshot the nodes that currently have at
	// least one free slot of the kind (the N_m and N_r sets of
	// Formulas 4–5), including the offered node, plus the optional
	// per-class counts and identity version the class-collapsed cost sums
	// consume (see core.Avail).
	AvailMap    core.Avail
	AvailReduce core.Avail

	// Slowstart is the map-progress fraction a job must reach before its
	// reduce tasks become schedulable (Hadoop's
	// mapred.reduce.slowstart.completed.maps, default 0.05).
	Slowstart float64

	// jobBuf and keyBuf are orderJobs scratch, reused across offers when
	// the engine reuses the Context object. Not for scheduler use: the
	// slice returned by orderJobs is valid only until the next call.
	jobBuf []*job.Job
	keyBuf []int
}

// Scheduler decides task placements when a node offers free slots.
// Returning nil leaves the slot idle until a later heartbeat.
type Scheduler interface {
	Name() string
	AssignMap(ctx *Context, node topology.NodeID) *job.MapTask
	AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask
}

// Builder constructs a scheduler bound to a simulation's environment.
type Builder func(Env) Scheduler

// JobPolicy orders jobs for task-level scheduling.
type JobPolicy int

// Job-level policies.
const (
	// FairJobs orders jobs by fewest running tasks of the requested kind
	// (Hadoop Fair Scheduler's equal-share special case, as used in the
	// paper's experiments), breaking ties by submission order.
	FairJobs JobPolicy = iota
	// FIFOJobs orders jobs strictly by submission order.
	FIFOJobs
)

// String names the policy.
func (p JobPolicy) String() string {
	if p == FIFOJobs {
		return "fifo"
	}
	return "fair"
}

// taskKind selects which running-task count fair ordering uses.
type taskKind int

const (
	mapKind taskKind = iota
	reduceKind
)

// orderJobs returns ctx.Jobs sorted under the policy for the given kind,
// considering only jobs that still have pending tasks of that kind. The
// returned slice is Context scratch: valid until the next orderJobs call
// on the same Context, never retained by schedulers. The fair-policy sort
// is a stable insertion sort on per-job keys computed once — identical
// ordering to a stable sort with a recomputing comparator, without the
// comparator closure or the O(n log n) task-list rescans.
func orderJobs(ctx *Context, policy JobPolicy, kind taskKind) []*job.Job {
	out := ctx.jobBuf[:0]
	for _, j := range ctx.Jobs {
		switch kind {
		case mapKind:
			if j.HasPendingMaps() {
				out = append(out, j)
			}
		case reduceKind:
			if j.HasPendingReduces() && reduceEligible(ctx, j) {
				out = append(out, j)
			}
		}
	}
	ctx.jobBuf = out
	if policy == FIFOJobs || len(out) < 2 {
		return out // ctx.Jobs is already in submission order
	}
	keys := ctx.keyBuf[:0]
	for _, j := range out {
		m, r := j.RunningTasks()
		if kind == mapKind {
			keys = append(keys, m)
		} else {
			keys = append(keys, r)
		}
	}
	ctx.keyBuf = keys
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && keys[k] < keys[k-1]; k-- {
			keys[k], keys[k-1] = keys[k-1], keys[k]
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// reduceEligible applies the slowstart gate: a job's reduces may launch
// only once enough map work has completed.
func reduceEligible(ctx *Context, j *job.Job) bool {
	return j.MapProgress() >= ctx.Slowstart
}
