// Package sched implements the task-level schedulers compared in the
// paper's evaluation:
//
//   - Probabilistic: the paper's contribution (Algorithms 1–2) — cost-based
//     candidate selection with probabilistic assignment and a P_min gate.
//   - FairDelay: Hadoop 1.2.1's Fair Scheduler with Delay Scheduling for
//     map locality and random reduce placement.
//   - Coupling: Tan et al.'s Coupling Scheduler — probabilistic map launch
//     by locality degree, reduce launches paced by map progress and aimed
//     at the data-"centrality" node with a bounded wait.
//
// All schedulers share the same job-level policy (fair ordering, as in the
// paper's experiments; FIFO is available as an option) and are invoked by
// the engine at heartbeat time with one offered node. Every scheduler
// routes its state reads and decisions through a placement.Decider session
// against the simulation's placement.Service — the schedulers are the
// decision service's first client.
package sched

import (
	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// Env carries the long-lived dependencies a scheduler needs.
type Env struct {
	// Place is the placement decision service wrapping the simulation's
	// network, block store and slot state; schedulers open Decider
	// sessions against it.
	Place *placement.Service
	RNG   *sim.RNG
	// Obs receives task_offer / task_assign / task_skip events carrying the
	// decision breakdown. A nil stream (the default outside a full
	// simulation) disables emission at the cost of one comparison.
	Obs *obs.Stream
}

// Context is the cluster snapshot for one assignment decision. The engine
// refreshes task progress (d_read, A_jf) before building it.
type Context struct {
	Now  sim.Time
	Jobs []*job.Job // submitted, unfinished jobs in submission order

	// AvailMap / AvailReduce snapshot the nodes that currently have at
	// least one free slot of the kind (the N_m and N_r sets of
	// Formulas 4–5), including the offered node, plus the optional
	// per-class counts and identity version the class-collapsed cost sums
	// consume (see core.Avail).
	AvailMap    core.Avail
	AvailReduce core.Avail

	// Slowstart is the map-progress fraction a job must reach before its
	// reduce tasks become schedulable (Hadoop's
	// mapred.reduce.slowstart.completed.maps, default 0.05).
	Slowstart float64

	// req is the placement.Request the Context is translated into on
	// every decision; its scratch buffers persist across offers when the
	// engine reuses the Context object.
	req placement.Request
}

// request refreshes the embedded placement request from the Context's
// public fields and returns it. The result aliases Context state: valid
// until the Context is rebuilt.
func (ctx *Context) request() *placement.Request {
	ctx.req.Now = ctx.Now
	ctx.req.Jobs = ctx.Jobs
	ctx.req.AvailMap = ctx.AvailMap
	ctx.req.AvailReduce = ctx.AvailReduce
	ctx.req.Slowstart = ctx.Slowstart
	return &ctx.req
}

// Scheduler decides task placements when a node offers free slots.
// Returning nil leaves the slot idle until a later heartbeat.
type Scheduler interface {
	Name() string
	AssignMap(ctx *Context, node topology.NodeID) *job.MapTask
	AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask
}

// Builder constructs a scheduler bound to a simulation's environment.
type Builder func(Env) Scheduler

// JobPolicy orders jobs for task-level scheduling; it lives in the
// placement package and is aliased here for the scheduler configs.
type JobPolicy = placement.JobPolicy

// Job-level policies.
const (
	// FairJobs orders jobs by fewest running tasks of the requested kind
	// (Hadoop Fair Scheduler's equal-share special case, as used in the
	// paper's experiments), breaking ties by submission order.
	FairJobs = placement.FairJobs
	// FIFOJobs orders jobs strictly by submission order.
	FIFOJobs = placement.FIFOJobs
)

// taskKind selects which running-task count fair ordering uses.
type taskKind = placement.TaskKind

const (
	mapKind    = placement.MapTasks
	reduceKind = placement.ReduceTasks
)

// orderJobs returns ctx.Jobs sorted under the policy for the given kind,
// considering only jobs that still have pending tasks of that kind; see
// placement.OrderJobs. The returned slice is Context scratch: valid until
// the next orderJobs call on the same Context, never retained by
// schedulers.
func orderJobs(ctx *Context, policy JobPolicy, kind taskKind) []*job.Job {
	return placement.OrderJobs(ctx.request(), policy, kind)
}
