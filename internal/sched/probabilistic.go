package sched

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/placement"
	"mapsched/internal/topology"
)

// ProbabilisticConfig tunes the paper's scheduler. It is the placement
// package's decision config: the scheduler is a thin engine adapter over
// a placement.Decider.
type ProbabilisticConfig = placement.Config

// DefaultProbabilisticConfig returns the paper's settings.
func DefaultProbabilisticConfig() ProbabilisticConfig {
	return placement.DefaultConfig()
}

// Probabilistic is the paper's probabilistic network-aware scheduler: an
// adapter routing the engine's slot offers through a placement.Decider
// session, which owns the cost caches and implements Algorithms 1–2.
type Probabilistic struct {
	env Env
	cfg ProbabilisticConfig
	dec *placement.Decider
}

// NewProbabilistic returns a Builder for the scheduler with the given
// configuration; zero-value estimator and policy fall back to the paper's
// defaults.
func NewProbabilistic(cfg ProbabilisticConfig) Builder {
	if cfg.Estimator == nil {
		cfg.Estimator = core.ProgressScaled{}
	}
	if cfg.Model == nil {
		cfg.Model = core.Exponential{}
	}
	return func(env Env) Scheduler {
		return &Probabilistic{
			env: env,
			cfg: cfg,
			dec: placement.NewDecider(env.Place, cfg, env.RNG, env.Obs),
		}
	}
}

// Decider exposes the underlying decision session (tests and tools).
func (p *Probabilistic) Decider() *placement.Decider { return p.dec }

// Name implements Scheduler.
func (p *Probabilistic) Name() string {
	n := "probabilistic"
	if p.cfg.Deterministic {
		n = "deterministic-cost"
	}
	if p.dec.Mode() == core.ModeNetworkCondition {
		n += "+netcond"
	}
	return fmt.Sprintf("%s(pmin=%.2f,est=%s,model=%s)", n, p.cfg.Pmin, p.cfg.Estimator.Name(), p.cfg.Model.Name())
}

// AssignMap implements Algorithm 1 on the offered node via the decision
// service; see placement.Decider.PlaceMap for the selection and gate
// semantics.
func (p *Probabilistic) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	m, _ := p.dec.PlaceMap(ctx.request(), node)
	return m
}

// AssignReduce implements Algorithm 2 on the offered node via the
// decision service; see placement.Decider.PlaceReduce.
func (p *Probabilistic) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	r, _ := p.dec.PlaceReduce(ctx.request(), node)
	return r
}
