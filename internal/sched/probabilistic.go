package sched

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// ProbabilisticConfig tunes the paper's scheduler.
type ProbabilisticConfig struct {
	// Pmin is the probability threshold below which a slot is skipped
	// (Algorithm 1 line 10 / Algorithm 2 line 11). The paper tunes it to
	// 0.4 on its testbed.
	Pmin float64
	// Estimator predicts I_jf for reduce cost computation; nil means the
	// paper's progress-scaled estimator.
	Estimator core.Estimator
	// JobPolicy orders jobs; the paper's experiments use fair ordering.
	JobPolicy JobPolicy
	// Deterministic replaces the Bernoulli draw with an unconditional
	// assignment whenever P ≥ Pmin. Used by the ablation of Section II-C's
	// design choice ("rather than assigning the task with the lowest
	// transmission cost instantly ... we use such a probability").
	Deterministic bool
	// SpreadReduces enforces Algorithm 2 line 1: at most one running
	// reduce task of a job per node. On by default via NewProbabilistic.
	SpreadReduces bool
	// Model converts (C_avg, C) into the assignment probability; nil means
	// the paper's exponential model (Formula 4). Section V calls the
	// exploration of alternative models out as future work.
	Model core.ProbabilityModel
	// Naive disables the incremental cost caches: map costs are evaluated
	// directly against the cost model and reduce costers are rebuilt from
	// scratch whenever they go stale. The cached path is bit-identical to
	// this one; the flag exists for the equivalence tests and benchmarks
	// that prove it.
	Naive bool
}

// DefaultProbabilisticConfig returns the paper's settings.
func DefaultProbabilisticConfig() ProbabilisticConfig {
	return ProbabilisticConfig{
		Pmin:          0.4,
		Estimator:     core.ProgressScaled{},
		JobPolicy:     FairJobs,
		SpreadReduces: true,
	}
}

// Probabilistic is the paper's probabilistic network-aware scheduler.
type Probabilistic struct {
	env Env
	cfg ProbabilisticConfig

	// costerCache memoizes per-job reduce costers for a short window:
	// heartbeat-reported progress moves slowly relative to the offer rate,
	// so rebuilding the O(maps x reduces) aggregation on every slot offer
	// only burns time (a real JobTracker caches these statistics too).
	// Entries of finished jobs are swept by sweep() so the cache cannot
	// grow past the set of live jobs.
	costerCache map[job.ID]costerEntry

	// sweptLen / sweptTail identify the job set the last sweep ran
	// against: the live list only ever appends strictly increasing job
	// IDs, so an unchanged (length, last ID) pair means the set itself is
	// unchanged and the sweep can be skipped.
	sweptLen  int
	sweptTail job.ID

	// mapCost evaluates Formula 1: a shared MapCoster on the cached path,
	// the direct cost model when cfg.Naive is set.
	mapCost core.MapCostEvaluator
	maps    *core.MapCoster // nil on the naive path
}

// costerEntry is one cached reduce coster with its last refresh time.
type costerEntry struct {
	at sim.Time
	rc *core.ReduceCoster
}

// costerMaxAge is how long a cached coster stays fresh, in simulated
// seconds.
const costerMaxAge = 1.0

// coster returns a fresh-enough reduce coster for j. A stale coster is
// brought up to date incrementally (or rebuilt from scratch on the naive
// path — the two are bit-identical, see core.ReduceCoster.Refresh).
func (p *Probabilistic) coster(j *job.Job, now sim.Time) *core.ReduceCoster {
	if e, ok := p.costerCache[j.ID]; ok {
		if float64(now-e.at) < costerMaxAge {
			return e.rc
		}
		if !p.cfg.Naive {
			e.rc.Refresh()
			p.costerCache[j.ID] = costerEntry{at: now, rc: e.rc}
			return e.rc
		}
	}
	rc := p.env.Cost.NewReduceCoster(j, p.cfg.Estimator)
	p.costerCache[j.ID] = costerEntry{at: now, rc: rc}
	return rc
}

// sweep evicts cached state of jobs that left the live set (finished or
// removed), fixing the per-completed-job leak of both the reduce-coster
// cache and the map-cost rows. Evicted jobs are never offered slots
// again, so eviction cannot change a scheduling decision. It runs on
// every job-set change — detected by the (length, tail ID) signature of
// the append-ordered live list, whose IDs strictly increase — rather than
// only when the cache outgrows the live set: under balanced churn (one
// job finishing as another arrives) the sizes stay equal while dead
// entries pile up.
func (p *Probabilistic) sweep(ctx *Context) {
	tail := job.ID(-1)
	if n := len(ctx.Jobs); n > 0 {
		tail = ctx.Jobs[n-1].ID
	}
	if len(ctx.Jobs) == p.sweptLen && tail == p.sweptTail && len(p.costerCache) <= len(ctx.Jobs) {
		return
	}
	p.sweptLen, p.sweptTail = len(ctx.Jobs), tail
	live := make(map[job.ID]struct{}, len(ctx.Jobs))
	for _, j := range ctx.Jobs {
		live[j.ID] = struct{}{}
	}
	for id, e := range p.costerCache {
		if _, ok := live[id]; !ok {
			if p.maps != nil {
				p.maps.Forget(e.rc.Job())
			}
			delete(p.costerCache, id)
		}
	}
}

// NewProbabilistic returns a Builder for the scheduler with the given
// configuration; zero-value estimator and policy fall back to the paper's
// defaults.
func NewProbabilistic(cfg ProbabilisticConfig) Builder {
	if cfg.Estimator == nil {
		cfg.Estimator = core.ProgressScaled{}
	}
	if cfg.Model == nil {
		cfg.Model = core.Exponential{}
	}
	return func(env Env) Scheduler {
		p := &Probabilistic{env: env, cfg: cfg, costerCache: make(map[job.ID]costerEntry)}
		if cfg.Naive {
			p.mapCost = env.Cost.Evaluator()
		} else {
			p.maps = env.Cost.NewMapCoster()
			p.mapCost = p.maps
		}
		return p
	}
}

// Name implements Scheduler.
func (p *Probabilistic) Name() string {
	n := "probabilistic"
	if p.cfg.Deterministic {
		n = "deterministic-cost"
	}
	if p.env.Cost.Mode() == core.ModeNetworkCondition {
		n += "+netcond"
	}
	return fmt.Sprintf("%s(pmin=%.2f,est=%s,model=%s)", n, p.cfg.Pmin, p.cfg.Estimator.Name(), p.cfg.Model.Name())
}

// AssignMap implements Algorithm 1 on the offered node. Candidate tasks
// come from the fair-ordered job queue: a data-local best candidate
// (P = 1) from the fairest job wins immediately; otherwise the
// highest-saving candidate across jobs faces the P_min threshold and the
// Bernoulli draw, and when that gate rejects it, the best data-local
// candidate found along the way (a small local task can be out-saved by a
// large remote one) is assigned instead — Algorithm 1's P = 1 rule never
// leaves the slot idle while a zero-cost placement exists. Scanning past
// the head job mirrors how Hadoop's job-level scheduler iterates jobs
// when the head job has nothing attractive for a node.
func (p *Probabilistic) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	p.sweep(ctx)
	var best, local core.Choice
	found, haveLocal := false, false
	for _, j := range orderJobs(ctx, p.cfg.JobPolicy, mapKind) {
		sel, ok := core.SelectMapTaskWith(p.mapCost, p.cfg.Model, j.PendingMaps(), node, ctx.AvailMap)
		if !ok {
			continue
		}
		c := sel.Best
		if c.Cost == 0 {
			// Data-local placement for the fairest job that has one:
			// assign instantly (Algorithm 1: P_mj = 1 when C = 0).
			if p.env.Obs.Enabled() {
				p.emitChoice(ctx, node, obs.TaskAssign, c,
					&obs.Decision{C: 0, CAvg: c.AvgCost, P: 1, PMin: p.cfg.Pmin, Draw: "local"}, "")
			}
			return c.MapTask
		}
		if sel.HasLocal() && !haveLocal {
			// Fallback from the fairest job that has a local candidate.
			local = sel.Local
			haveLocal = true
		}
		if !found || c.Saving() > best.Saving() {
			best = c
			found = true
		}
	}
	if !found {
		return nil
	}
	if t, ok := p.gate(ctx, node, best); ok {
		return t.MapTask
	}
	if haveLocal {
		if p.env.Obs.Enabled() {
			p.emitChoice(ctx, node, obs.TaskAssign, local,
				&obs.Decision{C: 0, CAvg: local.AvgCost, P: 1, PMin: p.cfg.Pmin, Draw: "local_fallback"}, "")
		}
		return local.MapTask
	}
	return nil
}

// gate runs the shared tail of Algorithms 1 and 2: the P_min threshold
// (lines 10-12 / 11-13) and the Bernoulli draw, emitting the offer /
// assign / skip events with the Formula 1-5 breakdown when a sink is
// attached. The Bernoulli draw consumes exactly the same RNG stream
// whether or not observers are attached. best.Prob already carries the
// configured model's probability — selection computes it exactly once.
func (p *Probabilistic) gate(ctx *Context, node topology.NodeID, best core.Choice) (core.Choice, bool) {
	prob := best.Prob
	emit := p.env.Obs.Enabled()
	if emit {
		p.emitChoice(ctx, node, obs.TaskOffer, best,
			&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: p.cfg.Pmin}, "")
	}
	if prob < p.cfg.Pmin {
		if emit {
			p.emitChoice(ctx, node, obs.TaskSkip, best,
				&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: p.cfg.Pmin, Draw: "below_pmin"}, "below_pmin")
		}
		return best, false // skip this node
	}
	if p.cfg.Deterministic || p.env.RNG.Bernoulli(prob) {
		if emit {
			draw := "accept"
			if p.cfg.Deterministic {
				draw = "deterministic"
			}
			p.emitChoice(ctx, node, obs.TaskAssign, best,
				&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: p.cfg.Pmin, Draw: draw}, "")
		}
		return best, true
	}
	if emit {
		p.emitChoice(ctx, node, obs.TaskSkip, best,
			&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: p.cfg.Pmin, Draw: "decline"}, "declined")
	}
	return best, false // Bernoulli declined: slot stays idle this round
}

// emitChoice publishes one decision event for the chosen candidate.
func (p *Probabilistic) emitChoice(ctx *Context, node topology.NodeID, t obs.Type, c core.Choice, d *obs.Decision, reason string) {
	kind, idx := "map", 0
	var j *job.Job
	if c.MapTask != nil {
		j, idx = c.MapTask.Job, c.MapTask.Index
	} else {
		kind, j, idx = "reduce", c.ReduceTask.Job, c.ReduceTask.Index
	}
	e := decisionEvent(t, ctx.Now, node, j, kind, idx)
	e.Decision = d
	e.Reason = reason
	if t == obs.TaskAssign && c.MapTask != nil {
		e.Locality = p.env.Cost.Locality(c.MapTask, node).String()
	}
	p.env.Obs.Emit(e)
}

// AssignReduce implements Algorithm 2 on the offered node, pooling
// candidates across the fair-ordered job queue like AssignMap.
func (p *Probabilistic) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	// The first pass honours Algorithm 2 line 1 (no second running reduce
	// of a job on one node); when that leaves the slot with no candidate
	// at all — e.g. the batch tail, where a single job's reduces outnumber
	// the cluster's nodes — a work-conserving second pass relaxes the
	// rule, as any deployed scheduler must for jobs with more reduces than
	// nodes.
	p.sweep(ctx)
	best, found := p.selectReduce(ctx, node, p.cfg.SpreadReduces)
	if !found && p.cfg.SpreadReduces {
		best, found = p.selectReduce(ctx, node, false)
	}
	if !found {
		return nil
	}
	if t, ok := p.gate(ctx, node, best); ok {
		return t.ReduceTask
	}
	return nil
}

func (p *Probabilistic) selectReduce(ctx *Context, node topology.NodeID, spread bool) (core.Choice, bool) {
	var best core.Choice
	found := false
	for _, j := range orderJobs(ctx, p.cfg.JobPolicy, reduceKind) {
		if spread && j.HasReduceOn(node) {
			continue // Algorithm 2 line 1
		}
		rc := p.coster(j, ctx.Now)
		c, ok := core.SelectReduceTask(rc, p.cfg.Model, j.PendingReduces(), node, ctx.AvailReduce)
		if !ok {
			continue
		}
		if !found || c.Saving() > best.Saving() {
			best = c
			found = true
		}
	}
	return best, found
}
