package sched

import (
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// decisionEvent seeds a scheduler-decision observation: the offered node,
// the job under consideration and the task (Index -1 when the decision
// concerns the job as a whole, e.g. a delay-scheduling skip).
func decisionEvent(t obs.Type, now sim.Time, node topology.NodeID, j *job.Job, kind string, index int) obs.Event {
	return obs.Event{
		T:    float64(now),
		Type: t,
		Node: int(node),
		Job:  j.Spec.Name,
		Task: &obs.TaskRef{Kind: kind, Index: index},
	}
}
