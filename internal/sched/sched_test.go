package sched

import (
	"testing"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/placement"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// fixture builds a 2-rack/4-node-per-rack cluster with a placement
// decision service and a deterministic RNG.
type fixture struct {
	net   *topology.Cluster
	store *hdfs.Store
	place *placement.Service
	env   Env
	rng   *sim.RNG
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 4
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	store := hdfs.NewStore(net, rng.Fork("hdfs"))
	state, err := cluster.New(net.Size(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	place, err := placement.NewService(placement.Deps{
		Net: net, Store: store, Rate: net, Slots: state, Mode: core.ModeHops,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{net: net, store: store, place: place, rng: rng}
	f.env = Env{Place: place, RNG: rng.Fork("sched")}
	return f
}

type placeAt struct{ nodes []topology.NodeID }

func (p placeAt) Name() string { return "fixed" }
func (p placeAt) Place(topology.Network, *sim.RNG, int) []topology.NodeID {
	return p.nodes
}

// addJob creates a job with one map per entry of blockNodes (each block
// replicated on exactly the given node) and nReduces reduce tasks.
func (f *fixture) addJob(t *testing.T, id job.ID, blockNodes []topology.NodeID, nReduces int) *job.Job {
	t.Helper()
	j := &job.Job{ID: id, Spec: job.Spec{
		Name: "test-job",
		Profile: job.Profile{
			Name: "test", MapSelectivity: 1, MapRate: 10e6, ReduceRate: 10e6,
		},
	}}
	for idx, n := range blockNodes {
		b, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{n}})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, nReduces)
		for i := range out {
			out[i] = 1e6
		}
		j.Maps = append(j.Maps, &job.MapTask{
			Job: j, Index: idx, Block: b, Size: 64e6, Out: out, OutputCurve: 1, Node: -1,
		})
	}
	for fi := 0; fi < nReduces; fi++ {
		j.Reduces = append(j.Reduces, &job.ReduceTask{Job: j, Index: fi, Node: -1})
	}
	return j
}

func allNodes(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func ctxFor(jobs ...*job.Job) *Context {
	return &Context{
		Jobs:        jobs,
		AvailMap:    core.NewAvail(allNodes(8)),
		AvailReduce: core.NewAvail(allNodes(8)),
		Slowstart:   0.05,
	}
}

func TestProbabilisticPrefersLocalMap(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{3, 5}, 2)
	p := NewProbabilistic(DefaultProbabilisticConfig())(f.env).(*Probabilistic)
	ctx := ctxFor(j)
	got := p.AssignMap(ctx, 3)
	if got == nil || got.Index != 0 {
		t.Fatalf("AssignMap(3) = %v, want the block-on-3 task", got)
	}
	got = p.AssignMap(ctx, 5)
	if got == nil || got.Index != 1 {
		t.Fatalf("AssignMap(5) = %v, want the block-on-5 task", got)
	}
}

func TestProbabilisticLocalFromLaterJobBeatsRemoteFromHead(t *testing.T) {
	f := newFixture(t)
	j1 := f.addJob(t, 1, []topology.NodeID{5}, 1) // fairest job, remote for node 0
	j2 := f.addJob(t, 2, []topology.NodeID{0}, 1) // later job, local on node 0
	// Make j1 "fairer" (fewer running): both have zero running; submission
	// order keeps j1 first.
	p := NewProbabilistic(DefaultProbabilisticConfig())(f.env).(*Probabilistic)
	got := p.AssignMap(ctxFor(j1, j2), 0)
	if got == nil || got.Job != j2 {
		t.Fatalf("node 0 should run the later job's local task, got %v", got)
	}
}

func TestProbabilisticDeterministicAlwaysAssigns(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{5}, 1) // remote for node 0
	cfg := DefaultProbabilisticConfig()
	cfg.Deterministic = true
	p := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	for i := 0; i < 10; i++ {
		if got := p.AssignMap(ctxFor(j), 0); got == nil {
			t.Fatal("deterministic variant declined a feasible assignment")
		}
		j.Maps[0].State = job.TaskPending // reset
	}
}

func TestProbabilisticBernoulliSometimesDeclines(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{5}, 1) // remote: P ≈ 0.6
	p := NewProbabilistic(DefaultProbabilisticConfig())(f.env).(*Probabilistic)
	assigned, declined := 0, 0
	for i := 0; i < 200; i++ {
		if got := p.AssignMap(ctxFor(j), 0); got != nil {
			assigned++
		} else {
			declined++
		}
	}
	if assigned == 0 || declined == 0 {
		t.Fatalf("Bernoulli gate degenerate: %d assigned, %d declined", assigned, declined)
	}
}

func TestProbabilisticPminSkipsExpensiveNode(t *testing.T) {
	f := newFixture(t)
	// Block on node 0 (rack 0). Offer a slot on node 4 (rack 1, distance 4)
	// while every rack-0 node also has free slots: the average cost is far
	// below node 4's cost, so P < Pmin and the node is skipped.
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	cfg := DefaultProbabilisticConfig()
	cfg.Pmin = 0.62 // above the cross-rack assignment probability
	p := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	ctx := ctxFor(j)
	ctx.AvailMap = core.NewAvail([]topology.NodeID{0, 1, 2, 3, 4})
	if got := p.AssignMap(ctx, 4); got != nil {
		t.Fatalf("expensive node accepted a task with P < Pmin: %v", got)
	}
	// The local node still assigns instantly.
	if got := p.AssignMap(ctx, 0); got == nil {
		t.Fatal("local node declined")
	}
}

func TestProbabilisticReduceSpread(t *testing.T) {
	f := newFixture(t)
	j1 := f.addJob(t, 1, []topology.NodeID{0, 1}, 4)
	j2 := f.addJob(t, 2, []topology.NodeID{2, 3}, 4)
	// Launch j1's maps so reduces have data and are eligible.
	for _, jj := range []*job.Job{j1, j2} {
		for _, m := range jj.Maps {
			m.State = job.TaskDone
			m.Node = topology.NodeID(m.Index)
			m.Progress = 1
		}
		jj.DoneMaps = len(jj.Maps)
	}
	// j1 already runs a reduce on node 6.
	j1.Reduces[0].State = job.TaskRunning
	j1.Reduces[0].Node = 6
	cfg := DefaultProbabilisticConfig()
	cfg.Deterministic = true // remove randomness from this test
	p := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	got := p.AssignReduce(ctxFor(j1, j2), 6)
	if got == nil {
		t.Fatal("node 6 got no reduce at all")
	}
	if got.Job == j1 {
		t.Fatalf("node 6 received a second running reduce of job 1 despite alternatives")
	}
	// With the rule disabled, job 1 (fair-first) may win the slot.
	cfg.SpreadReduces = false
	p2 := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	if got := p2.AssignReduce(ctxFor(j1, j2), 6); got == nil {
		t.Fatal("spread-off variant declined")
	}
}

func TestProbabilisticReduceSecondPassWhenOnlyJobBlocked(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 3)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 0
	j.Maps[0].Progress = 1
	j.DoneMaps = 1
	j.Reduces[0].State = job.TaskRunning
	j.Reduces[0].Node = 6
	cfg := DefaultProbabilisticConfig()
	cfg.Deterministic = true
	p := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	// Node 6 already runs a reduce of the only job: the work-conserving
	// second pass must still hand out a task.
	if got := p.AssignReduce(ctxFor(j), 6); got == nil {
		t.Fatal("second pass did not fire for the only eligible job")
	}
}

func TestSlowstartGatesReduces(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0, 1, 2, 3}, 2)
	ctx := ctxFor(j)
	ctx.Slowstart = 0.5
	p := NewProbabilistic(DefaultProbabilisticConfig())(f.env).(*Probabilistic)
	if got := p.AssignReduce(ctx, 0); got != nil {
		t.Fatalf("reduce launched before slowstart: %v", got)
	}
	// Finish half the maps.
	for i := 0; i < 2; i++ {
		j.Maps[i].State = job.TaskDone
		j.Maps[i].Node = topology.NodeID(i)
		j.Maps[i].Progress = 1
	}
	j.DoneMaps = 2
	assigned := false
	for i := 0; i < 20 && !assigned; i++ {
		assigned = p.AssignReduce(ctx, 0) != nil
		if assigned {
			break
		}
	}
	if !assigned {
		t.Fatal("reduce never launched after slowstart reached")
	}
}

func TestFairDelayPrefersLocalThenWaits(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{3}, 1)
	cfg := FairDelayConfig{NodeLocalSkips: 2, RackLocalSkips: 2, JobPolicy: FairJobs}
	fd := NewFairDelay(cfg)(f.env).(*FairDelay)
	ctx := ctxFor(j)
	// Local node: immediate.
	if got := fd.AssignMap(ctx, 3); got == nil {
		t.Fatal("local offer declined")
	}
	j.Maps[0].State = job.TaskPending
	// Non-local offers: first NodeLocalSkips offers are declined.
	if got := fd.AssignMap(ctx, 0); got != nil {
		t.Fatalf("offer 1 accepted before delay expired: %v", got)
	}
	if got := fd.AssignMap(ctx, 1); got != nil {
		t.Fatal("offer 2 accepted before delay expired")
	}
	// Delay expired: rack-local accepted (node 0 is in rack 0 with node 3).
	if got := fd.AssignMap(ctx, 0); got == nil {
		t.Fatal("rack-local offer declined after delay expiry")
	}
}

func TestFairDelayFallsBackToAnyNode(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	cfg := FairDelayConfig{NodeLocalSkips: 1, RackLocalSkips: 1, JobPolicy: FairJobs}
	fd := NewFairDelay(cfg)(f.env).(*FairDelay)
	ctx := ctxFor(j)
	// Offers from the other rack (node 7): declines until D1+D2 skips.
	if got := fd.AssignMap(ctx, 7); got != nil {
		t.Fatal("accepted before any skip")
	}
	if got := fd.AssignMap(ctx, 7); got != nil {
		t.Fatal("accepted before D1+D2 skips")
	}
	if got := fd.AssignMap(ctx, 7); got == nil {
		t.Fatal("never accepted a remote offer")
	}
}

func TestFairDelayReduceIsUnconstrained(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 3)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Progress = 1
	j.Maps[0].Node = 0
	j.DoneMaps = 1
	fd := NewFairDelay(DefaultFairDelayConfig())(f.env).(*FairDelay)
	if got := fd.AssignReduce(ctxFor(j), 5); got == nil {
		t.Fatal("fair reduce assignment declined a free slot")
	}
}

func TestCouplingLocalAlwaysLaunches(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{2}, 1)
	c := NewCoupling(DefaultCouplingConfig())(f.env).(*Coupling)
	if got := c.AssignMap(ctxFor(j), 2); got == nil {
		t.Fatal("coupling declined a local map")
	}
}

func TestCouplingRemoteIsProbabilistic(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{2}, 1)
	c := NewCoupling(DefaultCouplingConfig())(f.env).(*Coupling)
	assigned, declined := 0, 0
	for i := 0; i < 300; i++ {
		if got := c.AssignMap(ctxFor(j), 7); got != nil {
			assigned++
			j.Maps[0].State = job.TaskPending
		} else {
			declined++
		}
	}
	if assigned == 0 || declined == 0 {
		t.Fatalf("coupling remote gate degenerate: %d/%d", assigned, declined)
	}
	if assigned > declined {
		t.Fatalf("remote acceptance %d should be rarer than decline %d at PRemote=0.1", assigned, declined)
	}
}

func TestCouplingPacesReduces(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0, 1, 2, 3}, 4)
	c := NewCoupling(DefaultCouplingConfig())(f.env).(*Coupling)
	ctx := ctxFor(j)
	ctx.Slowstart = 0
	// No map progress: pacing allows ceil(0×4) = 0 reduces.
	if got := c.AssignReduce(ctx, 0); got != nil {
		t.Fatalf("coupling launched a reduce with zero map progress: %v", got)
	}
	// Half the maps done: allow 2 concurrent reduces.
	for i := 0; i < 2; i++ {
		j.Maps[i].State = job.TaskDone
		j.Maps[i].Node = topology.NodeID(i)
		j.Maps[i].Progress = 1
	}
	j.DoneMaps = 2
	launched := 0
	for n := 0; n < 8; n++ {
		if got := c.AssignReduce(ctx, topology.NodeID(n)); got != nil {
			got.State = job.TaskRunning
			got.Node = topology.NodeID(n)
			launched++
		}
	}
	if launched == 0 {
		t.Fatal("pacing never released a reduce")
	}
	if launched > 2 {
		t.Fatalf("pacing released %d reduces at 50%% map progress, want <= 2", launched)
	}
}

func TestCouplingCentralityWaitBound(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 0
	j.Maps[0].Progress = 1
	j.DoneMaps = 1
	cfg := DefaultCouplingConfig()
	cfg.MaxWaitRounds = 3
	c := NewCoupling(cfg)(f.env).(*Coupling)
	ctx := ctxFor(j)
	// Node 7 is not the centrality node (node 0 is, it has all the data).
	declines := 0
	for i := 0; i < 10; i++ {
		if got := c.AssignReduce(ctx, 7); got != nil {
			break
		}
		declines++
	}
	if declines == 0 {
		t.Fatal("coupling accepted a non-centrality node immediately")
	}
	if declines > cfg.MaxWaitRounds {
		t.Fatalf("coupling waited %d rounds, bound is %d", declines, cfg.MaxWaitRounds)
	}
}

func TestOrderJobsFairVsFIFO(t *testing.T) {
	f := newFixture(t)
	j1 := f.addJob(t, 1, []topology.NodeID{0, 1}, 1)
	j2 := f.addJob(t, 2, []topology.NodeID{2, 3}, 1)
	// j1 has one running map, j2 none: fair order puts j2 first.
	j1.Maps[0].State = job.TaskRunning
	ctx := ctxFor(j1, j2)
	fair := orderJobs(ctx, FairJobs, mapKind)
	if len(fair) != 2 || fair[0] != j2 {
		t.Fatalf("fair order = %v, want j2 first", ids(fair))
	}
	fifo := orderJobs(ctx, FIFOJobs, mapKind)
	if len(fifo) != 2 || fifo[0] != j1 {
		t.Fatalf("fifo order = %v, want submission order", ids(fifo))
	}
}

func ids(jobs []*job.Job) []job.ID {
	out := make([]job.ID, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func TestOrderJobsSkipsDrainedJobs(t *testing.T) {
	f := newFixture(t)
	j := f.addJob(t, 1, []topology.NodeID{0}, 1)
	j.Maps[0].State = job.TaskDone
	if got := orderJobs(ctxFor(j), FairJobs, mapKind); len(got) != 0 {
		t.Fatalf("job with no pending maps still offered: %v", ids(got))
	}
}

func TestSchedulerNames(t *testing.T) {
	f := newFixture(t)
	for _, b := range []Builder{
		NewProbabilistic(DefaultProbabilisticConfig()),
		NewCoupling(DefaultCouplingConfig()),
		NewFairDelay(DefaultFairDelayConfig()),
	} {
		if b(f.env).Name() == "" {
			t.Fatal("empty scheduler name")
		}
	}
	if FairJobs.String() != "fair" || FIFOJobs.String() != "fifo" {
		t.Fatal("policy names wrong")
	}
}

func TestNilEstimatorDefaults(t *testing.T) {
	f := newFixture(t)
	cfg := ProbabilisticConfig{Pmin: 0.4, SpreadReduces: true}
	p := NewProbabilistic(cfg)(f.env).(*Probabilistic)
	if p.cfg.Estimator == nil {
		t.Fatal("nil estimator not defaulted")
	}
}

// TestProbabilisticLocalFallbackWhenGateDeclines pins the Algorithm 1
// P = 1 rule when the maximum-saving candidate is remote: a large remote
// map out-saves a small data-local one, the gate rejects it (P < P_min),
// and the slot must still go to the local task instead of idling.
func TestProbabilisticLocalFallbackWhenGateDeclines(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultProbabilisticConfig()
	cfg.Pmin = 0.9 // above the remote candidate's P ≈ 0.75: gate always rejects
	s := NewProbabilistic(cfg)(f.env)

	// Map 0: 64 MB block on node 1 (same rack as the offered node 0, so
	// its saving C_avg−C = (2.75−2)·64e6 dominates). Map 1: 1 MB block on
	// node 0 itself (local, saving 2.75·1e6).
	j := f.addJob(t, 1, []topology.NodeID{1, 0}, 1)
	j.Maps[1].Size = 1e6

	got := s.AssignMap(ctxFor(j), 0)
	if got != j.Maps[1] {
		t.Fatalf("assigned %+v, want the data-local fallback map 1", got)
	}

	// Same offer on node 3 (no local candidate there): the gate rejection
	// must leave the slot idle.
	j2 := f.addJob(t, 2, []topology.NodeID{1, 0}, 1)
	if got := s.AssignMap(ctxFor(j2), 3); got != nil {
		t.Fatalf("assigned %+v on a node with no local candidate, want nil", got)
	}
}

// localOnly is a test probability model that only ever accepts data-local
// placements: P = 1 at zero cost, 0 otherwise.
type localOnly struct{}

func (localOnly) Name() string { return "local-only" }
func (localOnly) Prob(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	return 0
}

// TestProbabilisticUsesConfiguredModel pins satellite 3: the probability
// that gates an assignment is computed by cfg.Model, not hard-wired to
// the exponential formula. Under a model that zeroes every remote
// placement the scheduler must refuse a remote-only offer that the
// default model (deterministically) accepts.
func TestProbabilisticUsesConfiguredModel(t *testing.T) {
	f := newFixture(t)
	offer := topology.NodeID(3) // no replica on node 3: remote-only

	base := DefaultProbabilisticConfig()
	base.Deterministic = true // accept whenever P >= Pmin: no draw noise
	exp := NewProbabilistic(base)(f.env)
	j1 := f.addJob(t, 1, []topology.NodeID{0, 1}, 1)
	if got := exp.AssignMap(ctxFor(j1), offer); got == nil {
		t.Fatal("exponential model rejected a cheap remote placement")
	}

	strict := base
	strict.Model = localOnly{}
	lo := NewProbabilistic(strict)(f.env)
	j2 := f.addJob(t, 2, []topology.NodeID{0, 1}, 1)
	if got := lo.AssignMap(ctxFor(j2), offer); got != nil {
		t.Fatalf("local-only model assigned remote map %+v, want nil", got)
	}
	// The model must still pass data-local placements through (P = 1).
	j3 := f.addJob(t, 3, []topology.NodeID{offer}, 1)
	if got := lo.AssignMap(ctxFor(j3), offer); got != j3.Maps[0] {
		t.Fatalf("local-only model missed the local map, got %+v", got)
	}
}
