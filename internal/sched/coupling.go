package sched

import (
	"fmt"
	"math"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/topology"
)

// CouplingConfig tunes the Coupling Scheduler baseline (Tan et al.,
// INFOCOM'13), reconstructed from the paper's own description of it:
// probabilistic map launches on a coarse locality granularity, reduce
// launches paced by map progress and aimed at the data-"centrality" node,
// waiting at most MaxWaitRounds heartbeats before settling for the
// offered slot.
type CouplingConfig struct {
	// PLocal, PRack, PRemote are the launch probabilities for a map task
	// offered a slot at each locality degree — the "coarse granularity of
	// locations that differentiates data locations by local machines, the
	// same rack and different racks".
	PLocal, PRack, PRemote float64
	// MaxWaitRounds bounds how many offers a reduce task declines while
	// waiting for its centrality node ("can wait at most three rounds of
	// heartbeats before being assigned").
	MaxWaitRounds int
	// JobPolicy orders jobs.
	JobPolicy JobPolicy
}

// DefaultCouplingConfig returns the baseline settings.
func DefaultCouplingConfig() CouplingConfig {
	return CouplingConfig{
		PLocal:        1.0,
		PRack:         0.35,
		PRemote:       0.1,
		MaxWaitRounds: 3,
		JobPolicy:     FairJobs,
	}
}

// Coupling is the Coupling Scheduler baseline.
type Coupling struct {
	env   Env
	cfg   CouplingConfig
	dec   *placement.Decider
	waits map[*job.ReduceTask]int
}

// NewCoupling returns a Builder for the baseline.
func NewCoupling(cfg CouplingConfig) Builder {
	return func(env Env) Scheduler {
		dec := placement.NewDecider(env.Place, placement.Config{Naive: true}, env.RNG, env.Obs)
		return &Coupling{env: env, cfg: cfg, dec: dec, waits: make(map[*job.ReduceTask]int)}
	}
}

// Name implements Scheduler.
func (c *Coupling) Name() string {
	return fmt.Sprintf("coupling(wait=%d)", c.cfg.MaxWaitRounds)
}

// AssignMap launches a randomly picked pending map with a probability set
// by the offered node's locality degree for that task.
func (c *Coupling) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	for _, j := range orderJobs(ctx, c.cfg.JobPolicy, mapKind) {
		pending := j.PendingMaps()
		if len(pending) == 0 {
			continue
		}
		// Prefer a local task if one exists (any reasonable implementation
		// does); otherwise draw a random candidate and gate on locality.
		var m *job.MapTask
		for _, cand := range pending {
			if c.dec.Locality(cand, node) == job.LocalNode {
				m = cand
				break
			}
		}
		if m == nil {
			m = pending[c.dec.Intn(len(pending))]
		}
		loc := c.dec.Locality(m, node)
		var p float64
		switch loc {
		case job.LocalNode:
			p = c.cfg.PLocal
		case job.LocalRack:
			p = c.cfg.PRack
		default:
			p = c.cfg.PRemote
		}
		if c.dec.Bernoulli(p) {
			if c.env.Obs.Enabled() {
				e := decisionEvent(obs.TaskAssign, ctx.Now, node, j, "map", m.Index)
				e.Locality = loc.String()
				e.Decision = &obs.Decision{P: p, Draw: "accept"}
				c.env.Obs.Emit(e)
			}
			return m
		}
		if c.env.Obs.Enabled() {
			e := decisionEvent(obs.TaskSkip, ctx.Now, node, j, "map", m.Index)
			e.Locality = loc.String()
			e.Decision = &obs.Decision{P: p, Draw: "decline"}
			e.Reason = "locality_draw"
			c.env.Obs.Emit(e)
		}
		// Declined for this job: the job-level scheduler offers the slot
		// to the next job in fair order.
	}
	return nil
}

// emitReduce publishes a coupling reduce assignment and passes it through.
func (c *Coupling) emitReduce(ctx *Context, node topology.NodeID, r *job.ReduceTask, reason string) *job.ReduceTask {
	if c.env.Obs.Enabled() {
		e := decisionEvent(obs.TaskAssign, ctx.Now, node, r.Job, "reduce", r.Index)
		e.Reason = reason
		c.env.Obs.Emit(e)
	}
	return r
}

// AssignReduce paces reduce launches with map progress and places each
// launched reduce at the data-centrality node computed from the *current*
// intermediate sizes (the unscaled A_jf view the paper criticizes),
// falling back to the offered node after MaxWaitRounds declined offers.
func (c *Coupling) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	for _, j := range orderJobs(ctx, c.cfg.JobPolicy, reduceKind) {
		if j.HasReduceOn(node) {
			continue // the coupling scheduler also spreads reduces [5,15]
		}
		// Pacing: allow roughly MapProgress × NumReduces launched reduces.
		_, running := j.RunningTasks()
		launched := running + j.DoneReds
		allowed := int(math.Ceil(j.MapProgress() * float64(j.NumReduces())))
		if launched >= allowed {
			continue
		}
		pending := j.PendingReduces()
		if len(pending) == 0 {
			continue
		}
		// Choose the pending reduce with the largest current data volume —
		// the one whose placement matters most right now.
		rc := c.dec.NewReduceCoster(j, core.CurrentSize{})
		best := pending[0]
		bestVol := rc.TotalEstimated(best.Index)
		for _, r := range pending[1:] {
			if v := rc.TotalEstimated(r.Index); v > bestVol {
				bestVol = v
				best = r
			}
		}
		central, ok := rc.Centrality(best.Index, ctx.AvailReduce.Nodes)
		if !ok {
			continue
		}
		if central == node || bestVol == 0 {
			delete(c.waits, best)
			return c.emitReduce(ctx, node, best, "centrality")
		}
		// Not the centrality node: wait, up to the bound.
		if c.waits[best] >= c.cfg.MaxWaitRounds {
			delete(c.waits, best)
			return c.emitReduce(ctx, node, best, "wait_expired")
		}
		c.waits[best]++
		if c.env.Obs.Enabled() {
			e := decisionEvent(obs.TaskSkip, ctx.Now, node, j, "reduce", best.Index)
			e.Reason = "wait_centrality"
			c.env.Obs.Emit(e)
		}
		return nil
	}
	return nil
}
