package sched

import (
	"fmt"

	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/topology"
)

// FairDelayConfig tunes the Fair Scheduler baseline.
type FairDelayConfig struct {
	// NodeLocalSkips is how many scheduling opportunities a job forgoes
	// waiting for a node-local slot before accepting rack-local placement
	// (delay scheduling's D1, expressed in skipped offers).
	NodeLocalSkips int
	// RackLocalSkips is the additional wait before accepting any node (D2).
	RackLocalSkips int
	// JobPolicy orders jobs (the Fair Scheduler nests FIFO-in-pool too).
	JobPolicy JobPolicy
}

// DefaultFairDelayConfig is calibrated so the baseline reproduces its
// measured operating point in the paper (Table III: 85.59% node-local
// tasks on the testbed): a short per-job offer-skip budget, consistent
// with Hadoop 1.2.1's time-based locality delay at heartbeat cadence.
func DefaultFairDelayConfig() FairDelayConfig {
	return FairDelayConfig{NodeLocalSkips: 1, RackLocalSkips: 2, JobPolicy: FairJobs}
}

// FairDelay is Hadoop's Fair Scheduler with Delay Scheduling: map tasks
// wait a bounded number of offers for data-local slots; reduce tasks are
// placed on the first available slot with no locality consideration
// ("randomly selects a reduce task to be assigned to an available reduce
// slot").
type FairDelay struct {
	env   Env
	cfg   FairDelayConfig
	dec   *placement.Decider
	skips map[job.ID]int // consecutive offers the job declined for locality
}

// NewFairDelay returns a Builder for the baseline.
func NewFairDelay(cfg FairDelayConfig) Builder {
	return func(env Env) Scheduler {
		// Naive: the baseline only needs locality lookups and the shared
		// RNG stream from its session, not the incremental cost caches.
		dec := placement.NewDecider(env.Place, placement.Config{Naive: true}, env.RNG, env.Obs)
		return &FairDelay{env: env, cfg: cfg, dec: dec, skips: make(map[job.ID]int)}
	}
}

// Name implements Scheduler.
func (f *FairDelay) Name() string {
	return fmt.Sprintf("fair-delay(d1=%d,d2=%d)", f.cfg.NodeLocalSkips, f.cfg.RackLocalSkips)
}

// AssignMap implements delay scheduling: prefer a node-local task; if the
// job has been skipped long enough, fall back to rack-local, then any.
func (f *FairDelay) AssignMap(ctx *Context, node topology.NodeID) *job.MapTask {
	for _, j := range orderJobs(ctx, f.cfg.JobPolicy, mapKind) {
		pending := j.PendingMaps()
		var local, rack, any *job.MapTask
		for _, m := range pending {
			switch f.dec.Locality(m, node) {
			case job.LocalNode:
				if local == nil {
					local = m
				}
			case job.LocalRack:
				if rack == nil {
					rack = m
				}
			default:
				if any == nil {
					any = m
				}
			}
			if local != nil {
				break
			}
		}
		if local != nil {
			f.skips[j.ID] = 0
			return f.emitAssign(ctx, node, local, "")
		}
		skips := f.skips[j.ID]
		if skips >= f.cfg.NodeLocalSkips && rack != nil {
			f.skips[j.ID] = 0
			return f.emitAssign(ctx, node, rack, "delay_expired")
		}
		if skips >= f.cfg.NodeLocalSkips+f.cfg.RackLocalSkips {
			f.skips[j.ID] = 0
			if rack != nil {
				return f.emitAssign(ctx, node, rack, "delay_expired")
			}
			if any != nil {
				return f.emitAssign(ctx, node, any, "delay_expired")
			}
			return f.emitAssign(ctx, node, pending[0], "delay_expired")
		}
		// Skip this job for locality and let the next job try this slot.
		f.skips[j.ID]++
		if f.env.Obs.Enabled() {
			e := decisionEvent(obs.TaskSkip, ctx.Now, node, j, "map", -1)
			e.Reason = "delay"
			f.env.Obs.Emit(e)
		}
	}
	return nil
}

// emitAssign publishes the map assignment (with its realized locality)
// and passes the task through.
func (f *FairDelay) emitAssign(ctx *Context, node topology.NodeID, m *job.MapTask, reason string) *job.MapTask {
	if f.env.Obs.Enabled() {
		e := decisionEvent(obs.TaskAssign, ctx.Now, node, m.Job, "map", m.Index)
		e.Locality = f.dec.Locality(m, node).String()
		e.Reason = reason
		f.env.Obs.Emit(e)
	}
	return m
}

// AssignReduce launches the next pending reduce of the first eligible job
// with no placement preference.
func (f *FairDelay) AssignReduce(ctx *Context, node topology.NodeID) *job.ReduceTask {
	for _, j := range orderJobs(ctx, f.cfg.JobPolicy, reduceKind) {
		pending := j.PendingReduces()
		if len(pending) == 0 {
			continue
		}
		// "Randomly selects a reduce task": partitions are interchangeable
		// at this point, draw one uniformly.
		r := pending[f.dec.Intn(len(pending))]
		if f.env.Obs.Enabled() {
			e := decisionEvent(obs.TaskAssign, ctx.Now, node, j, "reduce", r.Index)
			e.Reason = "random"
			f.env.Obs.Emit(e)
		}
		return r
	}
	return nil
}
