package job

import (
	"math"
	"testing"
	"testing/quick"

	"mapsched/internal/hdfs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

func testProfile() Profile {
	return Profile{
		Name:              "test",
		MapSelectivity:    0.5,
		MapRate:           25e6,
		ReduceRate:        25e6,
		PartitionSkew:     0.5,
		SelectivityJitter: 0.1,
		OutputCurveSpread: 0.2,
		ComputeJitter:     0.1,
	}
}

func testStore(t *testing.T) *hdfs.Store {
	t.Helper()
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 5
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return hdfs.NewStore(net, sim.NewRNG(1))
}

func mustJob(t *testing.T, spec Spec) *Job {
	t.Helper()
	j, err := New(1, spec, testStore(t), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJobShape(t *testing.T) {
	j := mustJob(t, Spec{
		Name:       "wc",
		Profile:    testProfile(),
		InputBytes: 10 * 128e6,
		BlockSize:  128e6,
		NumReduces: 4,
	})
	if j.NumMaps() != 10 {
		t.Fatalf("NumMaps = %d, want 10", j.NumMaps())
	}
	if j.NumReduces() != 4 {
		t.Fatalf("NumReduces = %d, want 4", j.NumReduces())
	}
	for _, m := range j.Maps {
		if m.Size != 128e6 {
			t.Fatalf("map %d size %v, want 128e6", m.Index, m.Size)
		}
		if len(m.Out) != 4 {
			t.Fatalf("map %d has %d partitions", m.Index, len(m.Out))
		}
		if m.State != TaskPending {
			t.Fatalf("map %d state %v, want pending", m.Index, m.State)
		}
		if m.Node != -1 {
			t.Fatalf("map %d pre-assigned to node %d", m.Index, m.Node)
		}
	}
}

func TestIntermediateMatrixVolume(t *testing.T) {
	p := testProfile()
	p.SelectivityJitter = 0 // exact volume
	j := mustJob(t, Spec{
		Name:       "wc",
		Profile:    p,
		InputBytes: 8 * 128e6,
		BlockSize:  128e6,
		NumReduces: 5,
	})
	var total float64
	for _, m := range j.Maps {
		total += m.TotalOut()
	}
	want := 8 * 128e6 * p.MapSelectivity
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("Σ I_jf = %v, want %v", total, want)
	}
	// Reduce-side view agrees.
	var byReduce float64
	for _, r := range j.Reduces {
		byReduce += r.ExpectedInput()
	}
	if math.Abs(byReduce-total) > 1 {
		t.Fatalf("reduce-side sum %v != map-side sum %v", byReduce, total)
	}
}

func TestPartitionWeightsNormalized(t *testing.T) {
	rng := sim.NewRNG(5)
	for _, skew := range []float64{0, 0.3, 1, 2.5} {
		for _, n := range []int{1, 2, 7, 100} {
			w := partitionWeights(n, skew, rng)
			var sum float64
			for _, v := range w {
				if v < 0 {
					t.Fatalf("negative weight with skew %v", skew)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("weights sum %v (n=%d skew=%v)", sum, n, skew)
			}
		}
	}
}

func TestPartitionSkewConcentrates(t *testing.T) {
	rng := sim.NewRNG(5)
	flat := partitionWeights(50, 0, rng)
	skewed := partitionWeights(50, 2, rng)
	maxFlat, maxSkew := 0.0, 0.0
	for i := range flat {
		maxFlat = math.Max(maxFlat, flat[i])
		maxSkew = math.Max(maxSkew, skewed[i])
	}
	if maxSkew <= maxFlat {
		t.Fatalf("skewed max weight %v not above uniform %v", maxSkew, maxFlat)
	}
}

func TestCurrentOutProgressCurve(t *testing.T) {
	j := mustJob(t, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 128e6, BlockSize: 128e6, NumReduces: 2,
	})
	m := j.Maps[0]
	m.State = TaskRunning
	m.Progress = 0
	if got := m.CurrentOut(0); got != 0 {
		t.Fatalf("CurrentOut at progress 0 = %v, want 0", got)
	}
	m.Progress = 0.5
	half := m.CurrentOut(0)
	if half <= 0 || half >= m.Out[0] {
		t.Fatalf("CurrentOut at 0.5 = %v, want within (0, %v)", half, m.Out[0])
	}
	m.Progress = 1
	if got := m.CurrentOut(0); math.Abs(got-m.Out[0]) > 1e-6 {
		t.Fatalf("CurrentOut at 1 = %v, want %v", got, m.Out[0])
	}
	m.State = TaskDone
	m.Progress = 0.3 // stale progress must not matter once done
	if got := m.CurrentOut(0); got != m.Out[0] {
		t.Fatalf("done task CurrentOut = %v, want full %v", got, m.Out[0])
	}
}

func TestEstimatorIdentityWhenCurveIsOne(t *testing.T) {
	// With γ = 1, A_jf * B_j / d_read == I_jf at any progress — the
	// paper's estimator is exact for proportional output.
	j := mustJob(t, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 128e6, BlockSize: 128e6, NumReduces: 3,
	})
	m := j.Maps[0]
	m.OutputCurve = 1
	m.State = TaskRunning
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		m.Progress = p
		for f := range m.Out {
			est := m.CurrentOut(f) * m.Size / m.DRead()
			if math.Abs(est-m.Out[f]) > 1e-6*m.Out[f] {
				t.Fatalf("estimator at p=%v: %v, want %v", p, est, m.Out[f])
			}
		}
	}
}

func TestMapProgressAggregation(t *testing.T) {
	j := mustJob(t, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 4 * 128e6, BlockSize: 128e6, NumReduces: 2,
	})
	if p := j.MapProgress(); p != 0 {
		t.Fatalf("initial MapProgress = %v, want 0", p)
	}
	j.Maps[0].State = TaskDone
	j.DoneMaps = 1
	j.Maps[1].State = TaskRunning
	j.Maps[1].Progress = 0.5
	if p := j.MapProgress(); math.Abs(p-0.375) > 1e-9 {
		t.Fatalf("MapProgress = %v, want 0.375", p)
	}
	for _, m := range j.Maps {
		m.State = TaskDone
	}
	j.DoneMaps = 4
	if p := j.MapProgress(); p != 1 {
		t.Fatalf("final MapProgress = %v, want 1", p)
	}
	if !j.MapsDone() {
		t.Fatal("MapsDone() = false with all maps done")
	}
}

func TestPendingAndRunningViews(t *testing.T) {
	j := mustJob(t, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 3 * 128e6, BlockSize: 128e6, NumReduces: 3,
	})
	if len(j.PendingMaps()) != 3 || len(j.PendingReduces()) != 3 {
		t.Fatal("fresh job has wrong pending counts")
	}
	j.Maps[0].State = TaskRunning
	j.Reduces[1].State = TaskRunning
	if len(j.PendingMaps()) != 2 || len(j.PendingReduces()) != 2 {
		t.Fatal("pending views did not shrink")
	}
	m, r := j.RunningTasks()
	if m != 1 || r != 1 {
		t.Fatalf("RunningTasks = (%d,%d), want (1,1)", m, r)
	}
}

func TestHasReduceOn(t *testing.T) {
	j := mustJob(t, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 128e6, BlockSize: 128e6, NumReduces: 2,
	})
	if j.HasReduceOn(3) {
		t.Fatal("fresh job claims a reduce on node 3")
	}
	j.Reduces[0].State = TaskRunning
	j.Reduces[0].Node = 3
	if !j.HasReduceOn(3) {
		t.Fatal("running reduce on node 3 not detected")
	}
	j.Reduces[0].State = TaskDone
	if j.HasReduceOn(3) {
		t.Fatal("finished reduce still blocks node 3 (rule covers running reduces only)")
	}
	if j.HasReduceOn(4) {
		t.Fatal("phantom reduce on node 4")
	}
}

func TestJobValidation(t *testing.T) {
	store := testStore(t)
	rng := sim.NewRNG(3)
	good := Spec{Name: "ok", Profile: testProfile(), InputBytes: 1e6, BlockSize: 128e6, NumReduces: 1}
	if _, err := New(1, good, store, rng); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Name: "input", Profile: testProfile(), InputBytes: 0, BlockSize: 1, NumReduces: 1},
		{Name: "block", Profile: testProfile(), InputBytes: 1, BlockSize: 0, NumReduces: 1},
		{Name: "reduces", Profile: testProfile(), InputBytes: 1, BlockSize: 1, NumReduces: 0},
	}
	for _, s := range bad {
		if _, err := New(1, s, store, rng); err == nil {
			t.Errorf("spec %q accepted, want error", s.Name)
		}
	}
	badProfile := testProfile()
	badProfile.MapRate = 0
	if _, err := New(1, Spec{Name: "p", Profile: badProfile, InputBytes: 1, BlockSize: 1, NumReduces: 1}, store, rng); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestProfileValidation(t *testing.T) {
	mk := func(mut func(*Profile)) Profile {
		p := testProfile()
		mut(&p)
		return p
	}
	bad := []Profile{
		mk(func(p *Profile) { p.Name = "" }),
		mk(func(p *Profile) { p.MapSelectivity = -1 }),
		mk(func(p *Profile) { p.MapRate = 0 }),
		mk(func(p *Profile) { p.ReduceRate = -5 }),
		mk(func(p *Profile) { p.PartitionSkew = -0.1 }),
		mk(func(p *Profile) { p.SelectivityJitter = 1 }),
		mk(func(p *Profile) { p.OutputCurveSpread = -0.2 }),
		mk(func(p *Profile) { p.ComputeJitter = 2 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	if err := testProfile().Validate(); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
}

func TestDefaultReplicationIsTwo(t *testing.T) {
	store := testStore(t)
	j, err := New(1, Spec{
		Name: "wc", Profile: testProfile(),
		InputBytes: 128e6, BlockSize: 128e6, NumReduces: 1,
	}, store, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store.Replicas(j.Maps[0].Block)); got != 2 {
		t.Fatalf("default replication = %d, want 2", got)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: for any job, Σ_j Σ_f I_jf within jitter bounds of
	// input × selectivity, and every I_jf >= 0.
	f := func(blocks uint8, reduces uint8, seed int64) bool {
		nb := 1 + int(blocks)%20
		nr := 1 + int(reduces)%30
		store := hdfsStoreForQuick()
		p := testProfile()
		j, err := New(1, Spec{
			Name: "q", Profile: p,
			InputBytes: float64(nb) * 64e6, BlockSize: 64e6, NumReduces: nr,
		}, store, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		var total float64
		for _, m := range j.Maps {
			for _, v := range m.Out {
				if v < 0 {
					return false
				}
				total += v
			}
		}
		base := float64(nb) * 64e6 * p.MapSelectivity
		lo := base * (1 - p.SelectivityJitter - 1e-9)
		hi := base * (1 + p.SelectivityJitter + 1e-9)
		return total >= lo && total <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func hdfsStoreForQuick() *hdfs.Store {
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 5
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		panic(err)
	}
	return hdfs.NewStore(net, sim.NewRNG(1))
}

func TestTaskStateString(t *testing.T) {
	if TaskPending.String() != "pending" || TaskRunning.String() != "running" || TaskDone.String() != "done" {
		t.Fatal("TaskState strings wrong")
	}
	if TaskState(9).String() == "" {
		t.Fatal("unknown state has empty string")
	}
}

func TestLocalityString(t *testing.T) {
	cases := map[Locality]string{
		LocalNode:       "local node",
		LocalRack:       "local rack",
		Remote:          "remote",
		LocalityUnknown: "unknown",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}
