// Package job models MapReduce jobs: map tasks bound to input blocks,
// reduce tasks bound to key-space partitions, the intermediate-data matrix
// I (I_jf = bytes map j produces for reduce f), and the per-task progress
// counters (d_read, A_jf) that the paper's estimator consumes.
package job

import (
	"fmt"
	"math"

	"mapsched/internal/hdfs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// ID identifies a job within a simulation run.
type ID int

// TaskState is the lifecycle of a map or reduce task.
type TaskState int

// Task lifecycle states.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskDone
)

// String returns a short state label.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Locality classifies where a task ran relative to its data, for the
// Table III / Fig. 7 metrics.
type Locality int

// Locality classes in the paper's terminology.
const (
	LocalityUnknown Locality = iota
	LocalNode                // task on a node storing its data
	LocalRack                // task in the rack of a node storing its data
	Remote                   // neither
)

// String returns the paper's name for the class.
func (l Locality) String() string {
	switch l {
	case LocalNode:
		return "local node"
	case LocalRack:
		return "local rack"
	case Remote:
		return "remote"
	default:
		return "unknown"
	}
}

// Profile captures workload-class behaviour (Wordcount, Terasort, Grep...):
// how much intermediate data maps emit, how compute-heavy the phases are,
// and how uneven partitioning and per-task output rates are.
type Profile struct {
	Name string

	// MapSelectivity is intermediate bytes emitted per input byte.
	// Terasort ≈ 1, Wordcount < 1, Grep ≪ 1.
	MapSelectivity float64

	// MapRate and ReduceRate are per-slot processing rates in bytes/second
	// at the compute phase (input bytes for maps, shuffled bytes for
	// reduces).
	MapRate    float64
	ReduceRate float64

	// PartitionSkew shapes reduce-partition weights: 0 is uniform, larger
	// values concentrate intermediate data on fewer partitions
	// (weight_f ∝ (f+1)^-skew, shuffled).
	PartitionSkew float64

	// SelectivityJitter is the relative spread of per-map output volume
	// around MapSelectivity (uniform in [1-j, 1+j]).
	SelectivityJitter float64

	// OutputCurve is the exponent γ of the per-task output-progress curve
	// A_jf(p) = I_jf · p^γ where p = d_read/B_j. γ = 1 means output is
	// proportional to input read (the estimator becomes exact); γ drawn
	// per task in [1-c, 1+c] gives the estimator realistic error.
	OutputCurveSpread float64

	// ComputeJitter is the relative spread of per-task compute times.
	ComputeJitter float64
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("job: profile has no name")
	}
	if p.MapSelectivity < 0 {
		return fmt.Errorf("job: profile %s: negative selectivity", p.Name)
	}
	if p.MapRate <= 0 || p.ReduceRate <= 0 {
		return fmt.Errorf("job: profile %s: rates must be positive", p.Name)
	}
	if p.PartitionSkew < 0 {
		return fmt.Errorf("job: profile %s: negative partition skew", p.Name)
	}
	if p.SelectivityJitter < 0 || p.SelectivityJitter >= 1 {
		return fmt.Errorf("job: profile %s: selectivity jitter %v outside [0,1)", p.Name, p.SelectivityJitter)
	}
	if p.OutputCurveSpread < 0 || p.OutputCurveSpread >= 1 {
		return fmt.Errorf("job: profile %s: output curve spread %v outside [0,1)", p.Name, p.OutputCurveSpread)
	}
	if p.ComputeJitter < 0 || p.ComputeJitter >= 1 {
		return fmt.Errorf("job: profile %s: compute jitter %v outside [0,1)", p.Name, p.ComputeJitter)
	}
	return nil
}

// Spec describes a job to be created: its workload profile, input size and
// task counts.
type Spec struct {
	Name       string
	Profile    Profile
	InputBytes float64
	BlockSize  float64
	NumReduces int
	Submit     sim.Time
	// Placement decides where input blocks live; nil means hdfs.RackAware.
	Placement hdfs.PlacementPolicy
	// Replication is the HDFS replication factor (paper uses 2).
	Replication int
}

// MapTask is one map task M_j.
type MapTask struct {
	Job   *Job
	Index int
	Block hdfs.BlockID
	Size  float64 // B_j, bytes of input

	// Out[f] is I_jf: the bytes this map will have produced for reduce f
	// at completion. Fixed at job creation (ground truth); the scheduler
	// only ever sees progress-based views of it.
	Out []float64

	// OutputCurve is the exponent γ of this task's output-vs-input curve.
	OutputCurve float64

	// Runtime state, maintained by the engine.
	State    TaskState
	Node     topology.NodeID
	Locality Locality
	Launch   sim.Time
	Finish   sim.Time

	// Progress accounting: fraction of input consumed as of the engine's
	// last update, in [0,1]. d_read = Progress * Size.
	Progress float64
}

// TotalOut returns Σ_f I_jf.
func (m *MapTask) TotalOut() float64 {
	var s float64
	for _, v := range m.Out {
		s += v
	}
	return s
}

// DRead returns d_read^j: bytes of input consumed so far.
func (m *MapTask) DRead() float64 { return m.Progress * m.Size }

// CurrentOut returns A_jf: the bytes produced so far for reduce f, under
// the task's output curve.
func (m *MapTask) CurrentOut(f int) float64 {
	if m.State == TaskDone {
		return m.Out[f]
	}
	if m.Progress <= 0 {
		return 0
	}
	return m.Out[f] * math.Pow(m.Progress, m.OutputCurve)
}

// RunTime returns the task's duration; valid once done.
func (m *MapTask) RunTime() float64 { return float64(m.Finish - m.Launch) }

// ReduceTask is one reduce task R_f.
type ReduceTask struct {
	Job   *Job
	Index int

	State    TaskState
	Node     topology.NodeID
	Locality Locality
	Launch   sim.Time
	Finish   sim.Time

	// ShuffledBytes counts intermediate bytes received so far.
	ShuffledBytes float64
}

// ExpectedInput returns Σ_j I_jf — the ground-truth bytes this reduce will
// eventually receive (used for validation, not visible to schedulers).
func (r *ReduceTask) ExpectedInput() float64 {
	var s float64
	for _, m := range r.Job.Maps {
		s += m.Out[r.Index]
	}
	return s
}

// RunTime returns the task's duration; valid once done.
func (r *ReduceTask) RunTime() float64 { return float64(r.Finish - r.Launch) }

// Job is an instantiated MapReduce job.
type Job struct {
	ID      ID
	Spec    Spec
	Maps    []*MapTask
	Reduces []*ReduceTask

	Submitted sim.Time
	Finished  sim.Time
	DoneMaps  int
	DoneReds  int

	// Failed marks a job the engine terminated unsuccessfully — a task
	// exhausted its attempt budget, or every replica of an unread input
	// block was lost. A failed job is no longer scheduled; Done() stays
	// false and Finished records the failure time.
	Failed bool
}

// New instantiates a job: stores its input file, creates one map task per
// block, draws the intermediate matrix I, and creates the reduce tasks.
func New(id ID, spec Spec, store *hdfs.Store, rng *sim.RNG) (*Job, error) {
	if err := spec.Profile.Validate(); err != nil {
		return nil, err
	}
	if spec.InputBytes <= 0 {
		return nil, fmt.Errorf("job %s: input bytes %v must be positive", spec.Name, spec.InputBytes)
	}
	if spec.BlockSize <= 0 {
		return nil, fmt.Errorf("job %s: block size %v must be positive", spec.Name, spec.BlockSize)
	}
	if spec.NumReduces < 1 {
		return nil, fmt.Errorf("job %s: NumReduces = %d, need >= 1", spec.Name, spec.NumReduces)
	}
	repl := spec.Replication
	if repl == 0 {
		repl = 2
	}
	blocks, err := store.AddFile(spec.InputBytes, spec.BlockSize, repl, spec.Placement)
	if err != nil {
		return nil, fmt.Errorf("job %s: %w", spec.Name, err)
	}
	j := &Job{ID: id, Spec: spec, Submitted: spec.Submit}

	weights := partitionWeights(spec.NumReduces, spec.Profile.PartitionSkew, rng)
	for idx, b := range blocks {
		size := store.Size(b)
		sel := rng.Jitter(spec.Profile.MapSelectivity, spec.Profile.SelectivityJitter)
		total := size * sel
		out := make([]float64, spec.NumReduces)
		for f := range out {
			out[f] = total * weights[f]
		}
		curve := rng.Jitter(1.0, spec.Profile.OutputCurveSpread)
		j.Maps = append(j.Maps, &MapTask{
			Job:         j,
			Index:       idx,
			Block:       b,
			Size:        size,
			Out:         out,
			OutputCurve: curve,
			Node:        -1,
		})
	}
	for f := 0; f < spec.NumReduces; f++ {
		j.Reduces = append(j.Reduces, &ReduceTask{Job: j, Index: f, Node: -1})
	}
	return j, nil
}

// partitionWeights draws normalized reduce-partition weights: uniform for
// skew 0, otherwise ∝ rank^-skew with ranks shuffled so heavy partitions
// land on random indices.
func partitionWeights(n int, skew float64, rng *sim.RNG) []float64 {
	w := make([]float64, n)
	if skew == 0 {
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	perm := rng.Perm(n)
	var sum float64
	for i := 0; i < n; i++ {
		v := math.Pow(float64(i+1), -skew)
		w[perm[i]] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// NumMaps returns the number of map tasks.
func (j *Job) NumMaps() int { return len(j.Maps) }

// NumReduces returns the number of reduce tasks.
func (j *Job) NumReduces() int { return len(j.Reduces) }

// MapsDone reports whether every map task finished.
func (j *Job) MapsDone() bool { return j.DoneMaps == len(j.Maps) }

// Done reports whether the whole job finished.
func (j *Job) Done() bool {
	return j.MapsDone() && j.DoneReds == len(j.Reduces)
}

// MapProgress returns the fraction of map work completed, counting partial
// progress of running tasks, in [0,1]. Used by the Coupling scheduler to
// pace reduce launches.
func (j *Job) MapProgress() float64 {
	if len(j.Maps) == 0 {
		return 1
	}
	var p float64
	for _, m := range j.Maps {
		switch m.State {
		case TaskDone:
			p++
		case TaskRunning:
			p += m.Progress
		}
	}
	return p / float64(len(j.Maps))
}

// HasPendingMaps reports whether any map task is not yet launched,
// without materializing the slice PendingMaps would build.
func (j *Job) HasPendingMaps() bool {
	for _, m := range j.Maps {
		if m.State == TaskPending {
			return true
		}
	}
	return false
}

// HasPendingReduces reports whether any reduce task is not yet launched.
func (j *Job) HasPendingReduces() bool {
	for _, r := range j.Reduces {
		if r.State == TaskPending {
			return true
		}
	}
	return false
}

// PendingMaps returns map tasks not yet launched.
func (j *Job) PendingMaps() []*MapTask {
	var out []*MapTask
	for _, m := range j.Maps {
		if m.State == TaskPending {
			out = append(out, m)
		}
	}
	return out
}

// PendingReduces returns reduce tasks not yet launched.
func (j *Job) PendingReduces() []*ReduceTask {
	var out []*ReduceTask
	for _, r := range j.Reduces {
		if r.State == TaskPending {
			out = append(out, r)
		}
	}
	return out
}

// RunningTasks returns the number of currently running map and reduce tasks.
func (j *Job) RunningTasks() (maps, reduces int) {
	for _, m := range j.Maps {
		if m.State == TaskRunning {
			maps++
		}
	}
	for _, r := range j.Reduces {
		if r.State == TaskRunning {
			reduces++
		}
	}
	return maps, reduces
}

// HasReduceOn reports whether the job currently has a running reduce task
// on the node — Algorithm 2 line 1 forbids co-locating two simultaneously
// running reduces of one job (to limit I/O contention and downlink
// congestion). Finished reduces release the node: with ~190 reduces per
// job on 60 nodes the rule could not otherwise be satisfied.
func (j *Job) HasReduceOn(n topology.NodeID) bool {
	for _, r := range j.Reduces {
		if r.State == TaskRunning && r.Node == n {
			return true
		}
	}
	return false
}

// CompletionTime returns the job makespan (finish − submit); valid once done.
func (j *Job) CompletionTime() float64 { return float64(j.Finished - j.Submitted) }
