package workload

import (
	"math"
	"testing"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

func TestTableIIShape(t *testing.T) {
	defs := TableII()
	if len(defs) != 30 {
		t.Fatalf("TableII has %d rows, want 30", len(defs))
	}
	// Spot-check published values.
	if defs[0].Name() != "Wordcount_10GB" || defs[0].Maps != 88 || defs[0].Reduces != 157 {
		t.Fatalf("row 01 = %+v", defs[0])
	}
	if defs[9].Name() != "Wordcount_100GB" || defs[9].Maps != 930 {
		t.Fatalf("row 10 = %+v", defs[9])
	}
	if defs[19].Name() != "Terasort_100GB" || defs[19].Maps != 824 || defs[19].Reduces != 193 {
		t.Fatalf("row 20 = %+v", defs[19])
	}
	if defs[29].Name() != "Grep_100GB" || defs[29].Maps != 893 {
		t.Fatalf("row 30 = %+v", defs[29])
	}
	// Job IDs dense and ordered.
	for i, d := range defs {
		want := i + 1
		if d.JobID != twoDigit(want) {
			t.Fatalf("row %d JobID = %s", i, d.JobID)
		}
		if d.InputGB != (i%10+1)*10 {
			t.Fatalf("row %d InputGB = %d", i, d.InputGB)
		}
	}
}

func twoDigit(n int) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}

func TestBatchPartition(t *testing.T) {
	total := 0
	for _, k := range Kinds() {
		b := Batch(k)
		if len(b) != 10 {
			t.Fatalf("%v batch has %d jobs", k, len(b))
		}
		for _, d := range b {
			if d.Kind != k {
				t.Fatalf("%v batch contains %v job", k, d.Kind)
			}
		}
		total += len(b)
	}
	if total != 30 {
		t.Fatalf("batches cover %d jobs", total)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, k := range Kinds() {
		if err := ProfileFor(k).Validate(); err != nil {
			t.Errorf("%v profile invalid: %v", k, err)
		}
	}
}

func TestProfileShuffleOrdering(t *testing.T) {
	// Wordcount is shuffle-heavy, Terasort shuffles its input, Grep is
	// map-intensive — the premise of Fig. 3.
	wc := ProfileFor(Wordcount).MapSelectivity
	ts := ProfileFor(Terasort).MapSelectivity
	gr := ProfileFor(Grep).MapSelectivity
	if !(wc > ts && ts > gr) {
		t.Fatalf("selectivities not ordered: wc=%v ts=%v grep=%v", wc, ts, gr)
	}
	if ts != 1.0 {
		t.Fatalf("Terasort selectivity = %v, want exactly 1 (sort shuffles its input)", ts)
	}
}

func TestFig3ShuffleMix(t *testing.T) {
	// Qualitative shape of Fig. 3: a majority of jobs are shuffle-heavy
	// (> 50 GB at full scale), roughly a fifth exceed 100 GB, and a
	// map-intensive tail stays under 10 GB.
	defs := TableII()
	over50, over100, under10 := 0, 0, 0
	for _, d := range defs {
		s := d.ShuffleBytes()
		if s > 50e9 {
			over50++
		}
		if s > 100e9 {
			over100++
		}
		if s < 10e9 {
			under10++
		}
	}
	if over50 < 10 {
		t.Fatalf("only %d jobs over 50GB shuffle; want a large shuffle-heavy group", over50)
	}
	if over100 < 4 || over100 > 9 {
		t.Fatalf("%d jobs over 100GB shuffle; want roughly a fifth of 30", over100)
	}
	if under10 < 5 {
		t.Fatalf("only %d map-intensive jobs; want a visible tail", under10)
	}
}

func TestSpecScaling(t *testing.T) {
	d := JobDef{JobID: "01", Kind: Wordcount, InputGB: 10, Maps: 88, Reduces: 157}
	o := DefaultOptions()
	o.Scale = 4
	s, err := d.Spec(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumReduces != 40 { // ceil(157/4)
		t.Fatalf("scaled reduces = %d, want 40", s.NumReduces)
	}
	wantMaps := 22 // ceil(88/4)
	if got := int(math.Ceil(s.InputBytes / s.BlockSize)); got != wantMaps {
		t.Fatalf("scaled maps = %d, want %d", got, wantMaps)
	}
	if math.Abs(s.InputBytes-10e9/4) > 1 {
		t.Fatalf("scaled input = %v", s.InputBytes)
	}
	if float64(s.Submit) != 3*o.SubmitStagger {
		t.Fatalf("submit = %v, want %v", s.Submit, 3*o.SubmitStagger)
	}
}

func TestSpecScaleOneMatchesTable(t *testing.T) {
	// At scale 1 the instantiated job has exactly the published task
	// counts: this is the Table II reproduction.
	spec := topology.DefaultSpec()
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	o := DefaultOptions()
	o.Scale = 1
	for _, d := range []JobDef{TableII()[0], TableII()[14], TableII()[29]} {
		s, err := d.Spec(0, o)
		if err != nil {
			t.Fatal(err)
		}
		j, err := job.New(1, s, store, sim.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		if j.NumMaps() != d.Maps {
			t.Errorf("%s: %d maps, want %d", d.Name(), j.NumMaps(), d.Maps)
		}
		if j.NumReduces() != d.Reduces {
			t.Errorf("%s: %d reduces, want %d", d.Name(), j.NumReduces(), d.Reduces)
		}
	}
}

func TestSpecsWholeBatch(t *testing.T) {
	specs, err := Specs(Batch(Terasort), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 10 {
		t.Fatalf("%d specs", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Submit <= specs[i-1].Submit {
			t.Fatal("submission times not staggered")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Scale: 0, Replication: 2},
		{Scale: 1, Replication: 0},
		{Scale: 1, Replication: 2, SubmitStagger: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	d := TableII()[0]
	if _, err := d.Spec(0, Options{Scale: 0, Replication: 2}); err == nil {
		t.Error("Spec with bad options accepted")
	}
	if _, err := Specs(TableII(), Options{Scale: 0, Replication: 1}); err == nil {
		t.Error("Specs with bad options accepted")
	}
}

func TestScaleCountNeverZero(t *testing.T) {
	if scaleCount(1, 100) != 1 {
		t.Fatal("scaleCount floored to zero")
	}
	if scaleCount(100, 1) != 100 {
		t.Fatal("scale 1 changed count")
	}
	if scaleCount(10, 3) != 4 { // ceil
		t.Fatalf("scaleCount(10,3) = %d, want 4", scaleCount(10, 3))
	}
}

func TestKindString(t *testing.T) {
	if Wordcount.String() != "Wordcount" || Terasort.String() != "Terasort" || Grep.String() != "Grep" {
		t.Fatal("kind strings wrong")
	}
}

func TestExtendedProfilesValid(t *testing.T) {
	for _, k := range ExtendedKinds() {
		if err := ProfileFor(k).Validate(); err != nil {
			t.Errorf("%v profile invalid: %v", k, err)
		}
		if k.String() == "" {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
	if len(ExtendedKinds()) != 6 {
		t.Fatalf("extended suite has %d kinds", len(ExtendedKinds()))
	}
}

func TestExtendedProfileCharacter(t *testing.T) {
	// The extensions keep their intended workload character.
	if ProfileFor(PageRank).MapSelectivity <= 1 {
		t.Error("PageRank should be shuffle-heavy")
	}
	if ProfileFor(KMeans).MapSelectivity >= 0.05 {
		t.Error("KMeans should have a near-zero shuffle")
	}
	if ProfileFor(KMeans).MapRate >= ProfileFor(Grep).MapRate {
		t.Error("KMeans maps should be the most compute-bound")
	}
	if ProfileFor(Join).PartitionSkew <= ProfileFor(Terasort).PartitionSkew {
		t.Error("Join should have skewed keys")
	}
}

func TestMixedBatch(t *testing.T) {
	b := MixedBatch(20, 5, 50, 7)
	if len(b) != 20 {
		t.Fatalf("%d jobs", len(b))
	}
	kinds := map[Kind]bool{}
	for _, d := range b {
		if d.InputGB < 5 || d.InputGB > 50 {
			t.Fatalf("input %dGB out of range", d.InputGB)
		}
		if d.Maps < 1 || d.Reduces < 120 || d.Reduces > 200 {
			t.Fatalf("task counts out of range: %+v", d)
		}
		kinds[d.Kind] = true
	}
	if len(kinds) < 3 {
		t.Fatalf("mixed batch drew only %d kinds", len(kinds))
	}
	// Deterministic in the seed.
	b2 := MixedBatch(20, 5, 50, 7)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("MixedBatch not deterministic")
		}
	}
	if MixedBatch(0, 1, 2, 1) != nil {
		t.Fatal("zero-size batch should be nil")
	}
	// Degenerate bounds are clamped.
	one := MixedBatch(3, 0, -5, 2)
	for _, d := range one {
		if d.InputGB != 1 {
			t.Fatalf("clamped batch has %dGB", d.InputGB)
		}
	}
}

func TestMixedBatchRunsEndToEnd(t *testing.T) {
	defs := MixedBatch(4, 3, 10, 3)
	specs, err := Specs(defs, Options{Scale: 10, Replication: 2, SubmitStagger: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := s.Profile.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
