// Package workload defines the paper's evaluation workloads: the Table II
// job batches (10 Wordcount, 10 Terasort, 10 Grep jobs, 10–100 GB inputs)
// with their published map/reduce task counts, and the per-application
// behaviour profiles (selectivity, partition skew, compute rates) that
// yield the shuffle-size distribution of Fig. 3.
package workload

import (
	"fmt"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sim"
)

// Kind is an application class. The first three are the paper's
// evaluation workloads (Section III); the rest extend the suite with
// further BigDataBench-style applications for mixed-batch experiments.
type Kind int

// Application classes.
const (
	Wordcount Kind = iota
	Terasort
	Grep

	// Extended suite (not part of Table II).
	PageRank // iterative graph processing: shuffle-heavy with hot vertices
	KMeans   // CPU-bound clustering: tiny shuffle of centroids
	Join     // two-table equi-join: shuffle exceeding input
)

// String returns the application name as printed in Table II.
func (k Kind) String() string {
	switch k {
	case Wordcount:
		return "Wordcount"
	case Terasort:
		return "Terasort"
	case Grep:
		return "Grep"
	case PageRank:
		return "PageRank"
	case KMeans:
		return "KMeans"
	case Join:
		return "Join"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the paper's application classes in Table II order.
func Kinds() []Kind { return []Kind{Wordcount, Terasort, Grep} }

// ExtendedKinds lists every application class including the extensions.
func ExtendedKinds() []Kind {
	return []Kind{Wordcount, Terasort, Grep, PageRank, KMeans, Join}
}

// ProfileFor returns the behaviour profile of an application class.
//
// Selectivities are chosen to reproduce the shuffle-intensity mix of
// Fig. 3: Wordcount emits (word, count) pairs larger than its input
// (shuffle-heavy), Terasort shuffles exactly its input, and Grep emits
// only matching lines (map-intensive). Rates are per-slot processing
// rates; skew concentrates intermediate data on hot partitions for the
// text workloads while Terasort's range partitioner is balanced.
func ProfileFor(k Kind) job.Profile {
	switch k {
	case Wordcount:
		return job.Profile{
			Name:              "Wordcount",
			MapSelectivity:    2.2,
			MapRate:           45e6,
			ReduceRate:        200e6,
			PartitionSkew:     0.6,
			SelectivityJitter: 0.15,
			OutputCurveSpread: 0.25,
			ComputeJitter:     0.2,
		}
	case Terasort:
		return job.Profile{
			Name:              "Terasort",
			MapSelectivity:    1.0,
			MapRate:           80e6,
			ReduceRate:        250e6,
			PartitionSkew:     0,
			SelectivityJitter: 0.05,
			OutputCurveSpread: 0.1,
			ComputeJitter:     0.15,
		}
	case Grep:
		return job.Profile{
			Name:              "Grep",
			MapSelectivity:    0.05,
			MapRate:           120e6,
			ReduceRate:        150e6,
			PartitionSkew:     0.8,
			SelectivityJitter: 0.3,
			OutputCurveSpread: 0.3,
			ComputeJitter:     0.2,
		}
	case PageRank:
		return job.Profile{
			Name:              "PageRank",
			MapSelectivity:    1.8, // rank contributions per edge
			MapRate:           35e6,
			ReduceRate:        120e6,
			PartitionSkew:     1.2, // power-law vertex degrees
			SelectivityJitter: 0.2,
			OutputCurveSpread: 0.3,
			ComputeJitter:     0.25,
		}
	case KMeans:
		return job.Profile{
			Name:              "KMeans",
			MapSelectivity:    0.002, // only centroid partial sums
			MapRate:           15e6,  // distance computation dominates
			ReduceRate:        100e6,
			PartitionSkew:     0,
			SelectivityJitter: 0.05,
			OutputCurveSpread: 0.05,
			ComputeJitter:     0.15,
		}
	case Join:
		return job.Profile{
			Name:              "Join",
			MapSelectivity:    1.4, // tagged records of both relations
			MapRate:           55e6,
			ReduceRate:        90e6,
			PartitionSkew:     0.9, // skewed join keys
			SelectivityJitter: 0.25,
			OutputCurveSpread: 0.25,
			ComputeJitter:     0.2,
		}
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(k)))
	}
}

// JobDef is one row of Table II.
type JobDef struct {
	JobID   string // "01".."30"
	Kind    Kind
	InputGB int
	Maps    int // map task count as published
	Reduces int // reduce task count as published
}

// Name returns the Table II job name, e.g. "Wordcount_10GB".
func (d JobDef) Name() string { return fmt.Sprintf("%s_%dGB", d.Kind, d.InputGB) }

// tableII holds the published counts of Table II, in JobID order.
var tableII = []JobDef{
	{"01", Wordcount, 10, 88, 157},
	{"02", Wordcount, 20, 160, 169},
	{"03", Wordcount, 30, 278, 159},
	{"04", Wordcount, 40, 502, 169},
	{"05", Wordcount, 50, 490, 127},
	{"06", Wordcount, 60, 645, 187},
	{"07", Wordcount, 70, 598, 165},
	{"08", Wordcount, 80, 818, 291},
	{"09", Wordcount, 90, 837, 157},
	{"10", Wordcount, 100, 930, 197},
	{"11", Terasort, 10, 143, 190},
	{"12", Terasort, 20, 199, 186},
	{"13", Terasort, 30, 364, 131},
	{"14", Terasort, 40, 320, 149},
	{"15", Terasort, 50, 490, 189},
	{"16", Terasort, 60, 480, 193},
	{"17", Terasort, 70, 560, 178},
	{"18", Terasort, 80, 648, 184},
	{"19", Terasort, 90, 753, 171},
	{"20", Terasort, 100, 824, 193},
	{"21", Grep, 10, 87, 148},
	{"22", Grep, 20, 163, 174},
	{"23", Grep, 30, 188, 184},
	{"24", Grep, 40, 203, 158},
	{"25", Grep, 50, 285, 164},
	{"26", Grep, 60, 389, 137},
	{"27", Grep, 70, 578, 179},
	{"28", Grep, 80, 634, 178},
	{"29", Grep, 90, 815, 164},
	{"30", Grep, 100, 893, 184},
}

// TableII returns all 30 job definitions of the paper's Table II.
func TableII() []JobDef {
	out := make([]JobDef, len(tableII))
	copy(out, tableII)
	return out
}

// Batch returns the 10-job batch for one application class, as run in the
// paper ("we created 3 batches of jobs ... and run these 3 batches
// separately").
func Batch(k Kind) []JobDef {
	var out []JobDef
	for _, d := range tableII {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// Options shape how job definitions are instantiated as simulation specs.
type Options struct {
	// Scale divides input sizes and task counts by this factor, preserving
	// workload shape while keeping simulations tractable. 1 reproduces
	// Table II exactly.
	Scale int
	// Replication is the HDFS replication factor (paper: 2).
	Replication int
	// Placement decides block placement; nil means hdfs.RackAware.
	Placement hdfs.PlacementPolicy
	// SubmitStagger is the delay between consecutive job submissions in a
	// batch, in seconds. The paper submits each batch together; a small
	// stagger avoids an artificial all-at-once thundering herd.
	SubmitStagger float64
}

// DefaultOptions returns the settings used by the experiment harness.
func DefaultOptions() Options {
	return Options{Scale: 6, Replication: 2, SubmitStagger: 1}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Scale < 1 {
		return fmt.Errorf("workload: Scale = %d, need >= 1", o.Scale)
	}
	if o.Replication < 1 {
		return fmt.Errorf("workload: Replication = %d, need >= 1", o.Replication)
	}
	if o.SubmitStagger < 0 {
		return fmt.Errorf("workload: negative SubmitStagger")
	}
	return nil
}

// Spec converts one Table II row into a job.Spec at the given position in
// its batch. Map counts determine the block size (input/maps) so the
// generated job has exactly the scaled number of map tasks.
func (d JobDef) Spec(pos int, o Options) (job.Spec, error) {
	if err := o.Validate(); err != nil {
		return job.Spec{}, err
	}
	maps := scaleCount(d.Maps, o.Scale)
	reduces := scaleCount(d.Reduces, o.Scale)
	input := float64(d.InputGB) * 1e9 / float64(o.Scale)
	return job.Spec{
		Name:        d.Name(),
		Profile:     ProfileFor(d.Kind),
		InputBytes:  input,
		BlockSize:   input / float64(maps),
		NumReduces:  reduces,
		Submit:      sim.Time(float64(pos) * o.SubmitStagger),
		Placement:   o.Placement,
		Replication: o.Replication,
	}, nil
}

func scaleCount(n, scale int) int {
	s := (n + scale - 1) / scale
	if s < 1 {
		s = 1
	}
	return s
}

// Specs instantiates a whole batch of definitions in submission order.
func Specs(defs []JobDef, o Options) ([]job.Spec, error) {
	out := make([]job.Spec, 0, len(defs))
	for i, d := range defs {
		s, err := d.Spec(i, o)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ShuffleBytes returns the expected total intermediate volume of a
// definition (input × selectivity), the quantity plotted in Fig. 3.
func (d JobDef) ShuffleBytes() float64 {
	return float64(d.InputGB) * 1e9 * ProfileFor(d.Kind).MapSelectivity
}

// InputBytes returns the input volume in bytes.
func (d JobDef) InputBytes() float64 { return float64(d.InputGB) * 1e9 }

// MixedBatch synthesizes a batch of n jobs drawing uniformly from the
// extended application suite with input sizes in [minGB, maxGB],
// deterministically from the seed. Task counts follow the Table II
// pattern: one map per ~115 MB of input, reduces in the 120-200 range
// scaled by input share.
func MixedBatch(n int, minGB, maxGB int, seed int64) []JobDef {
	if n < 1 {
		return nil
	}
	if minGB < 1 {
		minGB = 1
	}
	if maxGB < minGB {
		maxGB = minGB
	}
	rng := sim.NewRNG(seed)
	kinds := ExtendedKinds()
	out := make([]JobDef, 0, n)
	for i := 0; i < n; i++ {
		gb := minGB + rng.Intn(maxGB-minGB+1)
		maps := int(float64(gb)*1e9/115e6) + rng.Intn(20)
		if maps < 1 {
			maps = 1
		}
		reduces := 120 + rng.Intn(81)
		out = append(out, JobDef{
			JobID:   fmt.Sprintf("M%02d", i+1),
			Kind:    kinds[rng.Intn(len(kinds))],
			InputGB: gb,
			Maps:    maps,
			Reduces: reduces,
		})
	}
	return out
}
