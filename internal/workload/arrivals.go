// Open-system workload generation: deterministic Poisson- and
// trace-driven job arrival streams over multiple tenants. The closed
// Table II batches submit everything up front and run to completion;
// an ArrivalPlan instead describes jobs entering the cluster over a
// horizon, the regime the engine's open-system mode (tenant queues,
// weighted admission, preemption) consumes.
//
// Determinism contract: every tenant draws from its own RNG stream,
// forked off the run seed by tenant name ("tenant:<name>"). Forking is
// label-based, not draw-count-based, so adding, removing or reordering
// a tenant never shifts another tenant's arrival times or job mix —
// the same property the engine's subsystem streams rely on.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mapsched/internal/job"
	"mapsched/internal/sim"
)

// Tenant describes one traffic source of an open-system run: its
// admission weight, its Poisson arrival rate and the job mix it draws.
type Tenant struct {
	// Name identifies the tenant; it keys the RNG fork and the engine's
	// per-tenant queue, so it must be unique within a plan.
	Name string
	// Weight is the tenant's admission share (default 1): admission
	// control picks the queued tenant with the smallest active/weight
	// ratio, and preemption enforces weighted floors of the active cap.
	Weight float64
	// Rate is the Poisson arrival intensity in jobs per simulated
	// second; 0 means the tenant only receives trace arrivals.
	Rate float64
	// Kinds is the application mix sampled uniformly per arrival; empty
	// means the paper's Table II trio (Wordcount, Terasort, Grep).
	Kinds []Kind
	// MinGB and MaxGB bound the uniform input-size draw; zero values
	// default to 10–50 GB (before Options.Scale).
	MinGB, MaxGB int
	// QueueCap bounds the tenant's pending queue; arrivals beyond it are
	// rejected by admission control. 0 means unbounded.
	QueueCap int
}

// weight returns the effective admission weight (unset means 1).
func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Validate reports whether the tenant definition is usable.
func (t Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("workload: tenant with empty name")
	}
	if strings.ContainsAny(t.Name, ";:,= \t") {
		return fmt.Errorf("workload: tenant name %q contains reserved characters", t.Name)
	}
	if t.Weight < 0 {
		return fmt.Errorf("workload: tenant %s: negative weight %v", t.Name, t.Weight)
	}
	if t.Rate < 0 {
		return fmt.Errorf("workload: tenant %s: negative rate %v", t.Name, t.Rate)
	}
	if t.MinGB < 0 || t.MaxGB < 0 || (t.MaxGB > 0 && t.MaxGB < t.MinGB) {
		return fmt.Errorf("workload: tenant %s: bad input-size range [%d,%d] GB", t.Name, t.MinGB, t.MaxGB)
	}
	if t.QueueCap < 0 {
		return fmt.Errorf("workload: tenant %s: negative queue cap %d", t.Name, t.QueueCap)
	}
	return nil
}

// sizeRange returns the effective input-size bounds in GB.
func (t Tenant) sizeRange() (int, int) {
	lo, hi := t.MinGB, t.MaxGB
	if lo == 0 && hi == 0 {
		lo, hi = 10, 50
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// kinds returns the effective application mix.
func (t Tenant) kinds() []Kind {
	if len(t.Kinds) > 0 {
		return t.Kinds
	}
	return Kinds()
}

// MeanServiceDemand estimates the expected per-job demand of one
// generated job of this tenant on each slot pool, in slot-seconds: map
// and reduce compute over the mean input size, averaged across the
// tenant's application mix, plus per-task overhead. When linkBps > 0
// the estimate also charges the time tasks hold their slot waiting on
// network transfers (remote map fetches, shuffle pulls) at that
// per-node bandwidth — on bandwidth-derated testbeds that term
// dominates compute. Experiments use the split to calibrate Poisson
// rates to a target load factor against whichever slot pool binds.
func (t Tenant) MeanServiceDemand(o Options, taskOverhead, linkBps float64) (mapSec, redSec float64) {
	lo, hi := t.sizeRange()
	meanGB := float64(lo+hi) / 2
	input := meanGB * 1e9 / float64(o.Scale)
	mix := t.kinds()
	for _, k := range mix {
		p := ProfileFor(k)
		maps := scaleCount(int(meanGB*1e9/115e6)+10, o.Scale)
		reduces := scaleCount(160, o.Scale)
		m := input/p.MapRate + taskOverhead*float64(maps)
		r := input*p.MapSelectivity/p.ReduceRate + taskOverhead*float64(reduces)
		if linkBps > 0 {
			// About half the maps fetch their input remotely; every
			// reduce pulls its full shuffle partition over the network.
			m += 0.5 * input / linkBps
			r += input * p.MapSelectivity / linkBps
		}
		mapSec += m
		redSec += r
	}
	n := float64(len(mix))
	return mapSec / n, redSec / n
}

// MeanServiceSeconds is the total of MeanServiceDemand: the expected
// per-job slot-seconds demand across both slot pools.
func (t Tenant) MeanServiceSeconds(o Options, taskOverhead, linkBps float64) float64 {
	m, r := t.MeanServiceDemand(o, taskOverhead, linkBps)
	return m + r
}

// TraceArrival is one scripted arrival of a trace-driven stream.
type TraceArrival struct {
	At     float64 // arrival instant, simulated seconds
	Tenant string  // empty means the plan's first tenant
	Def    JobDef  // instantiated with the plan's Options; Name is kept verbatim
}

// ArrivalPlan describes an open-system run: how long arrivals keep
// coming, how much of the start is discarded as warm-up, and how the
// admission layer is configured.
type ArrivalPlan struct {
	// Horizon bounds Poisson arrival generation, in simulated seconds.
	// Trace arrivals may land beyond it.
	Horizon float64
	// Warmup truncates steady-state metrics: jobs arriving before this
	// instant are excluded from JCT/queue-delay/fairness accounting.
	Warmup float64
	// MaxActive caps concurrently admitted jobs across all tenants;
	// 0 means unbounded (every arrival is admitted immediately).
	MaxActive int
	// Preempt enables kill-and-requeue preemption when a tenant exceeds
	// its weighted share of MaxActive. Requires MaxActive > 0.
	Preempt bool
	// Trace lists scripted arrivals merged with the Poisson streams.
	Trace []TraceArrival
}

// Validate reports whether the plan is usable.
func (p ArrivalPlan) Validate() error {
	if p.Horizon < 0 {
		return fmt.Errorf("workload: negative arrival horizon %v", p.Horizon)
	}
	if p.Warmup < 0 {
		return fmt.Errorf("workload: negative warmup %v", p.Warmup)
	}
	if p.MaxActive < 0 {
		return fmt.Errorf("workload: negative MaxActive %d", p.MaxActive)
	}
	if p.Preempt && p.MaxActive == 0 {
		return fmt.Errorf("workload: preemption requires MaxActive > 0")
	}
	for i, tr := range p.Trace {
		if tr.At < 0 {
			return fmt.Errorf("workload: trace arrival %d at negative time %v", i, tr.At)
		}
	}
	return nil
}

// Arrival is one job entering the open system: the instant, the tenant
// it bills to, and the fully instantiated spec.
type Arrival struct {
	At     float64
	Tenant string
	Spec   job.Spec
}

// BuildArrivals expands a plan into the deterministic, time-sorted
// arrival stream the engine consumes. Poisson streams draw from
// per-tenant forked RNGs (seed ⊕ "tenant:<name>"), so the stream of one
// tenant is independent of every other tenant's presence. Trace
// arrivals keep their JobDef names verbatim (so a single-tenant trace
// reproduces a closed batch exactly); Poisson arrivals get unique
// "<tenant>-<seq>_<kind>_<size>GB" names.
func BuildArrivals(plan ArrivalPlan, tenants []Tenant, seed int64, o Options) ([]Arrival, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default"}}
	}
	byName := make(map[string]Tenant, len(tenants))
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate tenant %q", t.Name)
		}
		byName[t.Name] = t
	}

	var out []Arrival
	// Trace arrivals first, in script order, so a same-instant tie
	// between a scripted and a generated arrival resolves to the script.
	for i, tr := range plan.Trace {
		name := tr.Tenant
		if name == "" {
			name = tenants[0].Name
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("workload: trace arrival %d names unknown tenant %q", i, name)
		}
		spec, err := tr.Def.Spec(0, o)
		if err != nil {
			return nil, err
		}
		spec.Submit = sim.Time(tr.At)
		out = append(out, Arrival{At: tr.At, Tenant: name, Spec: spec})
	}
	// Poisson streams per tenant, in declaration order.
	for _, t := range tenants {
		if t.Rate <= 0 || plan.Horizon <= 0 {
			continue
		}
		rng := sim.NewRNG(seed).Fork("tenant:" + t.Name)
		lo, hi := t.sizeRange()
		mix := t.kinds()
		at := rng.ExpFloat64() / t.Rate
		for seq := 1; at < plan.Horizon; seq++ {
			gb := lo + rng.Intn(hi-lo+1)
			maps := int(float64(gb)*1e9/115e6) + rng.Intn(20)
			if maps < 1 {
				maps = 1
			}
			def := JobDef{
				JobID:   fmt.Sprintf("%s-%03d", t.Name, seq),
				Kind:    mix[rng.Intn(len(mix))],
				InputGB: gb,
				Maps:    maps,
				Reduces: 120 + rng.Intn(81),
			}
			spec, err := def.Spec(0, o)
			if err != nil {
				return nil, err
			}
			spec.Name = fmt.Sprintf("%s-%03d_%s", t.Name, seq, def.Name())
			spec.Submit = sim.Time(at)
			out = append(out, Arrival{At: at, Tenant: t.Name, Spec: spec})
			at += rng.ExpFloat64() / t.Rate
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}

// ParseTenants parses the command-line tenant DSL: semicolon-separated
// tenants, each "name[:key=value,...]" with keys weight, rate, cap,
// min, max — e.g. "gold:weight=3,rate=0.05;best-effort:rate=0.02,cap=8".
func ParseTenants(spec string) ([]Tenant, error) {
	var out []Tenant
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		t := Tenant{Name: strings.TrimSpace(name)}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("workload: tenant %s: bad attribute %q (want key=value)", t.Name, kv)
				}
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("workload: tenant %s: bad %s value %q", t.Name, key, val)
				}
				switch key {
				case "weight":
					t.Weight = f
				case "rate":
					t.Rate = f
				case "cap":
					t.QueueCap = int(f)
				case "min":
					t.MinGB = int(f)
				case "max":
					t.MaxGB = int(f)
				default:
					return nil, fmt.Errorf("workload: tenant %s: unknown attribute %q", t.Name, key)
				}
			}
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty tenant spec")
	}
	return out, nil
}

// ParseArrivalPlan parses the command-line arrival DSL: comma-separated
// key=value pairs with keys horizon, warmup, maxactive, preempt — e.g.
// "horizon=600,warmup=60,maxactive=12,preempt=1".
func ParseArrivalPlan(spec string) (ArrivalPlan, error) {
	var p ArrivalPlan
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("workload: bad arrival attribute %q (want key=value)", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return p, fmt.Errorf("workload: bad %s value %q", key, val)
		}
		switch key {
		case "horizon":
			p.Horizon = f
		case "warmup":
			p.Warmup = f
		case "maxactive":
			p.MaxActive = int(f)
		case "preempt":
			p.Preempt = f != 0
		default:
			return p, fmt.Errorf("workload: unknown arrival attribute %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}
