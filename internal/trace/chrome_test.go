package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mapsched/internal/obs"
)

func TestWriteChrome(t *testing.T) {
	tr := FromJobs("prob", sampleJobs())
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(evs) != len(tr.Tasks) {
		t.Fatalf("%d events, want %d tasks", len(evs), len(tr.Tasks))
	}
	first := evs[0]
	if first["ph"] != "X" || first["cat"] != "map" {
		t.Fatalf("first event %v", first)
	}
	// Seconds become microseconds: the earliest sample map launches at t=1s.
	if first["ts"].(float64) != 1e6 {
		t.Fatalf("ts %v", first["ts"])
	}
	if !strings.Contains(buf.String(), `"locality":"local node"`) {
		t.Fatal("args missing locality")
	}
	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	if err := tr.WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export not deterministic")
	}
}

func TestWriteChromeWithEvents(t *testing.T) {
	tr := FromJobs("prob", sampleJobs())
	events := []obs.Event{
		{T: 2, Type: obs.TaskAssign, Node: 3, Job: "wc",
			Task:     &obs.TaskRef{Kind: "map", Index: 0},
			Decision: &obs.Decision{C: 0.8, CAvg: 1.2, P: 0.77, PMin: 0.4, Draw: "accept"}},
		{T: 2.5, Type: obs.FlowStart, Node: 3,
			Flow: &obs.FlowInfo{ID: 1, Src: 0, Dst: 3, Bytes: 5e8, Rate: 1e8}},
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeWith(&buf, events); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(evs) != len(tr.Tasks)+len(events) {
		t.Fatalf("%d events, want %d", len(evs), len(tr.Tasks)+len(events))
	}
	out := buf.String()
	for _, want := range []string{`"name":"task_assign"`, `"ph":"i"`, `"c_avg":1.2`, `"draw":"accept"`, `"name":"flow_start"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s", want)
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	tr := &Trace{Scheduler: "x"}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil || len(evs) != 0 {
		t.Fatalf("empty trace: %v %v", evs, err)
	}
}
