// Package trace exports simulation timelines as JSON for external
// analysis and visualization: one record per job and per task with
// placement, locality and phase timestamps.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mapsched/internal/job"
)

// Task is one executed task in the timeline.
type Task struct {
	Job      string  `json:"job"`
	Kind     string  `json:"kind"` // "map" or "reduce"
	Index    int     `json:"index"`
	Node     int     `json:"node"`
	Locality string  `json:"locality"`
	Launch   float64 `json:"launch"`
	Finish   float64 `json:"finish"`

	// Map-only: input bytes; reduce-only: shuffled bytes.
	Bytes float64 `json:"bytes"`
}

// Job is one job's summary in the timeline.
type Job struct {
	Name       string  `json:"name"`
	Submit     float64 `json:"submit"`
	Finish     float64 `json:"finish"` // 0 when unfinished
	Maps       int     `json:"maps"`
	Reduces    int     `json:"reduces"`
	InputBytes float64 `json:"inputBytes"`
}

// Trace is a whole run's timeline.
type Trace struct {
	Scheduler string `json:"scheduler"`
	Jobs      []Job  `json:"jobs"`
	Tasks     []Task `json:"tasks"`
}

// FromJobs builds a trace from the simulation's job objects after a run.
// Tasks still pending at the horizon are omitted.
func FromJobs(scheduler string, jobs []*job.Job) *Trace {
	t := &Trace{Scheduler: scheduler}
	for _, j := range jobs {
		t.Jobs = append(t.Jobs, Job{
			Name:       j.Spec.Name,
			Submit:     float64(j.Submitted),
			Finish:     float64(j.Finished),
			Maps:       j.NumMaps(),
			Reduces:    j.NumReduces(),
			InputBytes: j.Spec.InputBytes,
		})
		for _, m := range j.Maps {
			if m.State == job.TaskPending {
				continue
			}
			t.Tasks = append(t.Tasks, Task{
				Job:      j.Spec.Name,
				Kind:     "map",
				Index:    m.Index,
				Node:     int(m.Node),
				Locality: m.Locality.String(),
				Launch:   float64(m.Launch),
				Finish:   float64(m.Finish),
				Bytes:    m.Size,
			})
		}
		for _, r := range j.Reduces {
			if r.State == job.TaskPending {
				continue
			}
			t.Tasks = append(t.Tasks, Task{
				Job:      j.Spec.Name,
				Kind:     "reduce",
				Index:    r.Index,
				Node:     int(r.Node),
				Locality: r.Locality.String(),
				Launch:   float64(r.Launch),
				Finish:   float64(r.Finish),
				Bytes:    r.ShuffledBytes,
			})
		}
	}
	sort.Slice(t.Tasks, func(a, b int) bool {
		if t.Tasks[a].Launch != t.Tasks[b].Launch {
			return t.Tasks[a].Launch < t.Tasks[b].Launch
		}
		if t.Tasks[a].Job != t.Tasks[b].Job {
			return t.Tasks[a].Job < t.Tasks[b].Job
		}
		if t.Tasks[a].Kind != t.Tasks[b].Kind {
			return t.Tasks[a].Kind < t.Tasks[b].Kind
		}
		return t.Tasks[a].Index < t.Tasks[b].Index
	})
	return t
}

// WriteJSON writes the trace with stable formatting.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}

// Span returns the time range covered by the trace's tasks.
func (t *Trace) Span() (start, end float64) {
	first := true
	for _, task := range t.Tasks {
		if first || task.Launch < start {
			start = task.Launch
		}
		if first || task.Finish > end {
			end = task.Finish
		}
		first = false
	}
	return start, end
}

// NodeTimeline returns the tasks that ran on one node, in launch order.
func (t *Trace) NodeTimeline(node int) []Task {
	var out []Task
	for _, task := range t.Tasks {
		if task.Node == node {
			out = append(out, task)
		}
	}
	return out
}
