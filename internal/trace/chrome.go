package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mapsched/internal/obs"
)

// chromeEvent is one record of the Chrome trace_event format (the
// "JSON Array Format" consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// tid lanes within a node's process group. Tasks of the two kinds get
// separate lanes so overlapping map and reduce work stays readable.
const (
	laneMap = iota
	laneReduce
	laneEvents
)

// WriteChrome renders the trace as Chrome trace_event JSON: one process
// per node, one complete-event per executed task (map and reduce on
// separate lanes), with job, locality and bytes in args. Simulated
// seconds become trace microseconds 1:1 so second-scale simulations stay
// zoomable. Load the output in chrome://tracing or ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.WriteChromeWith(w, nil)
}

// WriteChromeWith is WriteChrome plus an observability event log rendered
// as instant markers on each node's event lane: scheduler decisions carry
// their C / C_avg / P breakdown in args, so clicking an assignment in the
// viewer shows why it happened.
func (t *Trace) WriteChromeWith(w io.Writer, events []obs.Event) error {
	evs := make([]chromeEvent, 0, len(t.Tasks)+len(events))
	for _, task := range t.Tasks {
		lane := laneMap
		if task.Kind == "reduce" {
			lane = laneReduce
		}
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("%s/%s/%d", task.Job, task.Kind, task.Index),
			Cat:  task.Kind,
			Ph:   "X",
			Ts:   task.Launch * 1e6,
			Dur:  (task.Finish - task.Launch) * 1e6,
			Pid:  task.Node,
			Tid:  lane,
			Args: map[string]any{
				"job":      task.Job,
				"locality": task.Locality,
				"bytes":    task.Bytes,
			},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: string(e.Type),
			Cat:  "obs",
			Ph:   "i",
			Ts:   e.T * 1e6,
			Pid:  e.Node,
			Tid:  laneEvents,
		}
		args := map[string]any{}
		if e.Job != "" {
			args["job"] = e.Job
		}
		if e.Task != nil {
			args["task"] = fmt.Sprintf("%s/%d", e.Task.Kind, e.Task.Index)
		}
		if e.Locality != "" {
			args["locality"] = e.Locality
		}
		if e.Reason != "" {
			args["reason"] = e.Reason
		}
		if e.Decision != nil {
			args["c"] = e.Decision.C
			args["c_avg"] = e.Decision.CAvg
			args["p"] = e.Decision.P
			args["p_min"] = e.Decision.PMin
			if e.Decision.Draw != "" {
				args["draw"] = e.Decision.Draw
			}
		}
		if e.Flow != nil {
			args["flow"] = e.Flow.ID
			args["bytes"] = e.Flow.Bytes
			args["rate"] = e.Flow.Rate
		}
		if len(args) > 0 {
			ce.Args = args
		}
		evs = append(evs, ce)
	}
	return writeChromeJSON(w, evs)
}

// writeChromeJSON emits the event array one record per line, keeping the
// output diffable and byte-deterministic (maps inside args are marshaled
// by encoding/json in sorted key order).
func writeChromeJSON(w io.Writer, evs []chromeEvent) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return fmt.Errorf("trace: chrome: %w", err)
	}
	for i, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: chrome: %w", err)
		}
		sep := ",\n"
		if i == len(evs)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return fmt.Errorf("trace: chrome: %w", err)
		}
	}
	if _, err := io.WriteString(w, "]\n"); err != nil {
		return fmt.Errorf("trace: chrome: %w", err)
	}
	return nil
}
