package trace

import (
	"bytes"
	"strings"
	"testing"

	"mapsched/internal/job"
)

func sampleJobs() []*job.Job {
	j := &job.Job{ID: 1, Spec: job.Spec{Name: "wc", InputBytes: 1e9}}
	j.Submitted = 1
	j.Finished = 100
	j.Maps = []*job.MapTask{
		{Job: j, Index: 0, Size: 5e8, State: job.TaskDone, Node: 3,
			Locality: job.LocalNode, Launch: 2, Finish: 10},
		{Job: j, Index: 1, Size: 5e8, State: job.TaskDone, Node: 1,
			Locality: job.LocalRack, Launch: 1, Finish: 12},
		{Job: j, Index: 2, Size: 5e8, State: job.TaskPending, Node: -1},
	}
	j.Reduces = []*job.ReduceTask{
		{Job: j, Index: 0, State: job.TaskDone, Node: 2,
			Locality: job.LocalRack, Launch: 5, Finish: 100, ShuffledBytes: 2e8},
	}
	return []*job.Job{j}
}

func TestFromJobsShape(t *testing.T) {
	tr := FromJobs("test-sched", sampleJobs())
	if tr.Scheduler != "test-sched" {
		t.Fatalf("scheduler = %q", tr.Scheduler)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].Name != "wc" || tr.Jobs[0].Maps != 3 {
		t.Fatalf("jobs = %+v", tr.Jobs)
	}
	// The pending map is omitted: 2 maps + 1 reduce.
	if len(tr.Tasks) != 3 {
		t.Fatalf("%d tasks, want 3", len(tr.Tasks))
	}
	// Sorted by launch time.
	for i := 1; i < len(tr.Tasks); i++ {
		if tr.Tasks[i].Launch < tr.Tasks[i-1].Launch {
			t.Fatal("tasks not sorted by launch")
		}
	}
	if tr.Tasks[0].Kind != "map" || tr.Tasks[0].Index != 1 {
		t.Fatalf("first task = %+v", tr.Tasks[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := FromJobs("s", sampleJobs())
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind": "map"`) {
		t.Fatalf("JSON missing fields:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheduler != tr.Scheduler || len(back.Tasks) != len(tr.Tasks) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Tasks[0] != tr.Tasks[0] {
		t.Fatalf("task mismatch: %+v vs %+v", back.Tasks[0], tr.Tasks[0])
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestSpanAndNodeTimeline(t *testing.T) {
	tr := FromJobs("s", sampleJobs())
	start, end := tr.Span()
	if start != 1 || end != 100 {
		t.Fatalf("span = [%v, %v], want [1, 100]", start, end)
	}
	node3 := tr.NodeTimeline(3)
	if len(node3) != 1 || node3[0].Index != 0 {
		t.Fatalf("node 3 timeline = %+v", node3)
	}
	if tl := tr.NodeTimeline(42); len(tl) != 0 {
		t.Fatalf("phantom node timeline: %+v", tl)
	}
	var empty Trace
	if s, e := empty.Span(); s != 0 || e != 0 {
		t.Fatalf("empty span = [%v, %v]", s, e)
	}
}
