package experiments

import (
	"reflect"
	"testing"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/job"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// runProbabilistic executes one batch under the probabilistic scheduler
// with the cost caches on or off and returns the full result plus the
// final per-task state.
func runProbabilistic(t *testing.T, mode core.Mode, wk workload.Kind, naive bool) (*engine.Result, []*job.Job) {
	t.Helper()
	s := DefaultSetup()
	s.Workload.Scale = 12
	s.Engine.Seed = 7
	s.Engine.CostMode = mode
	if mode == core.ModeHops {
		s.Engine.CrossTraffic = 0
	}
	specs, err := workload.Specs(workload.Batch(wk), s.Workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.DefaultProbabilisticConfig()
	cfg.Pmin = s.Pmin
	cfg.Naive = naive
	sim, err := engine.New(s.Engine, specs, sched.NewProbabilistic(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, sim.Jobs()
}

// TestOptimizedSchedulerMatchesNaive is the end-to-end equivalence proof
// for the incremental cost caches: under a fixed seed, the cached
// scheduler and the naive reference scheduler must make byte-identical
// scheduling decisions — same per-task placements, launch and finish
// instants, locality classes, event counts and aggregate metrics — for
// every workload batch, in both distance modes.
func TestOptimizedSchedulerMatchesNaive(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeHops, core.ModeNetworkCondition} {
		for _, wk := range workload.Kinds() {
			t.Run(mode.String()+"/"+wk.String(), func(t *testing.T) {
				t.Parallel()
				optRes, optJobs := runProbabilistic(t, mode, wk, false)
				refRes, refJobs := runProbabilistic(t, mode, wk, true)
				if !reflect.DeepEqual(optRes, refRes) {
					t.Fatalf("results diverge:\noptimized: %+v\nnaive:     %+v", optRes, refRes)
				}
				if len(optJobs) != len(refJobs) {
					t.Fatalf("job counts differ: %d vs %d", len(optJobs), len(refJobs))
				}
				for ji := range optJobs {
					a, b := optJobs[ji], refJobs[ji]
					for mi := range a.Maps {
						ma, mb := a.Maps[mi], b.Maps[mi]
						if ma.Node != mb.Node || ma.State != mb.State || ma.Launch != mb.Launch ||
							ma.Finish != mb.Finish || ma.Locality != mb.Locality {
							t.Fatalf("job %d map %d diverges: %+v vs %+v", ji, mi, ma, mb)
						}
					}
					for ri := range a.Reduces {
						ra, rb := a.Reduces[ri], b.Reduces[ri]
						if ra.Node != rb.Node || ra.State != rb.State || ra.Launch != rb.Launch ||
							ra.Finish != rb.Finish || ra.ShuffledBytes != rb.ShuffledBytes {
							t.Fatalf("job %d reduce %d diverges: %+v vs %+v", ji, ri, ra, rb)
						}
					}
				}
			})
		}
	}
}

// TestParallelComparisonIsDeterministic runs the full three-scheduler ×
// three-batch comparison twice through the parallel harness and requires
// byte-identical merged results: concurrency must not leak into any
// simulation.
func TestParallelComparisonIsDeterministic(t *testing.T) {
	s := DefaultSetup()
	s.Workload.Scale = 12
	s.Engine.Seed = 3
	a, err := s.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range SchedulerKinds() {
		if !reflect.DeepEqual(a.Results[k], b.Results[k]) {
			t.Fatalf("%v results differ between identical parallel runs", k)
		}
	}
}
