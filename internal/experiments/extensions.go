package experiments

import (
	"fmt"
	"math"

	"mapsched/internal/analysis"
	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/metrics"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// ModelComparison evaluates the alternative probability models the paper
// defers to future work (Section V: "we will further explore various
// probabilistic computation models for the probability determination and
// study their impacts on the job performance") on the Wordcount batch.
func ModelComparison(s Setup) ([]AblationPoint, error) {
	models := core.Models()
	return runParallel(len(models), func(i int) (AblationPoint, error) {
		m := models[i]
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.Model = m
		if m.Name() == "step" {
			// The step model gates everything above average cost; keep the
			// threshold semantics meaningful by disabling Pmin for it.
			cfg.Pmin = 0
		}
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(m.Name(), res), nil
	})
}

// ExtendedComparison runs the paper's three schedulers plus the two
// related-work baselines (LARTS, Capacity) on the Wordcount batch.
func ExtendedComparison(s Setup) ([]AblationPoint, error) {
	type entry struct {
		name string
		b    sched.Builder
	}
	entries := []entry{
		{"Probabilistic", s.BuilderFor(Probabilistic)},
		{"Coupling", s.BuilderFor(Coupling)},
		{"Fair", s.BuilderFor(Fair)},
		{"LARTS", sched.NewLARTS(sched.DefaultLARTSConfig())},
		{"Capacity", sched.NewCapacity(sched.DefaultCapacityConfig())},
	}
	return runParallel(len(entries), func(i int) (AblationPoint, error) {
		res, err := s.runVariant(entries[i].b)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("%s: %w", entries[i].name, err)
		}
		return pointFrom(entries[i].name, res), nil
	})
}

// FaultPoint is one scheduler's outcome with and without failures.
type FaultPoint struct {
	Scheduler         string
	BaselineJCT       float64
	FaultyJCT         float64
	RelaunchedMaps    int
	RelaunchedReduces int
	Unfinished        int
}

// FaultTolerance measures completion-time degradation under two node
// failures during the Wordcount batch, per scheduler. Replication is
// raised to 3 so no block can be orphaned.
func FaultTolerance(s Setup) ([]FaultPoint, error) {
	s.Workload.Replication = 3
	kinds := SchedulerKinds()
	return runParallel(len(kinds), func(i int) (FaultPoint, error) {
		k := kinds[i]
		// The baseline and the faulty run are independent: race them too.
		runs, err := runParallel(2, func(v int) (*engine.Result, error) {
			sp := s
			if v == 1 {
				n := s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack
				sp.Engine.Failures = []engine.NodeFailure{
					{Node: n / 3, At: 20},
					{Node: 2 * n / 3, At: 60},
				}
			}
			return sp.RunBatch(workload.Wordcount, sp.BuilderFor(k))
		})
		if err != nil {
			return FaultPoint{}, err
		}
		base, faulty := runs[0], runs[1]
		return FaultPoint{
			Scheduler:         k.String(),
			BaselineJCT:       base.JobCompletionCDF().Mean(),
			FaultyJCT:         faulty.JobCompletionCDF().Mean(),
			RelaunchedMaps:    faulty.RelaunchedMaps,
			RelaunchedReduces: faulty.RelaunchedReduces,
			Unfinished:        faulty.Unfinished,
		}, nil
	})
}

// FaultReport renders the fault-tolerance comparison.
func FaultReport(points []FaultPoint) Report {
	t := metrics.NewTable("Scheduler", "Mean JCT", "Mean JCT (2 failures)", "Degradation", "Relaunched", "Unfinished")
	for _, p := range points {
		deg := "-"
		if p.BaselineJCT > 0 && !math.IsNaN(p.FaultyJCT) {
			deg = fmt.Sprintf("%+.1f%%", 100*(p.FaultyJCT-p.BaselineJCT)/p.BaselineJCT)
		}
		t.AddRow(p.Scheduler,
			fmt.Sprintf("%.1fs", p.BaselineJCT),
			fmt.Sprintf("%.1fs", p.FaultyJCT),
			deg,
			fmt.Sprintf("%dm+%dr", p.RelaunchedMaps, p.RelaunchedReduces),
			p.Unfinished)
	}
	return Report{ID: "faults", Title: "Job completion under node failures (replication 3)", Body: t.String()}
}

// JobPolicyComparison runs the probabilistic task-level scheduler under
// the two job-level policies Section II-A names (the paper's experiments
// use the Fair Scheduler; FIFO is the alternative).
func JobPolicyComparison(s Setup) ([]AblationPoint, error) {
	pols := []sched.JobPolicy{sched.FairJobs, sched.FIFOJobs}
	return runParallel(len(pols), func(i int) (AblationPoint, error) {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.JobPolicy = pols[i]
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom("job-level "+pols[i].String(), res), nil
	})
}

// SeedStudy reruns each batch under each scheduler for several seeds and
// reports per-scheduler mean job completion times with their ranges —
// the robustness view a single-seed table hides.
func SeedStudy(s Setup, seeds []int64) (Report, error) {
	if len(seeds) == 0 {
		return Report{}, fmt.Errorf("experiments: no seeds")
	}
	t := metrics.NewTable("Batch", "Scheduler", "Mean JCT (seed mean)", "min..max over seeds")
	// Flatten the (batch, scheduler, seed) cube into one flat fan-out; the
	// table rows are then assembled in the original nesting order.
	type cellKey struct {
		wk workload.Kind
		k  SchedulerKind
	}
	var cells []cellKey
	for _, wk := range workload.Kinds() {
		for _, k := range SchedulerKinds() {
			cells = append(cells, cellKey{wk, k})
		}
	}
	means, err := runParallel(len(cells)*len(seeds), func(i int) (float64, error) {
		c, seed := cells[i/len(seeds)], seeds[i%len(seeds)]
		sp := s
		sp.Engine.Seed = seed
		res, err := sp.RunBatch(c.wk, sp.BuilderFor(c.k))
		if err != nil {
			return 0, err
		}
		return res.JobCompletionCDF().Mean(), nil
	})
	if err != nil {
		return Report{}, err
	}
	grand := map[SchedulerKind][]float64{}
	for ci, c := range cells {
		mean := means[ci*len(seeds) : (ci+1)*len(seeds)]
		cdf := metrics.NewCDF(mean)
		t.AddRow(c.wk.String(), c.k.String(),
			fmt.Sprintf("%.1fs", cdf.Mean()),
			fmt.Sprintf("%.1f..%.1f", cdf.Min(), cdf.Max()))
		grand[c.k] = append(grand[c.k], mean...)
	}
	var note string
	for _, k := range SchedulerKinds() {
		note += fmt.Sprintf("grand mean (%s): %.1fs  ", k, metrics.NewCDF(grand[k]).Mean())
	}
	return Report{
		ID:    "seeds",
		Title: fmt.Sprintf("Seed study over %d seeds (mean JCT per batch)", len(seeds)),
		Body:  t.String() + note + "\n",
	}, nil
}

// AnalysisReport renders the closed-form trade-off analysis of the
// probabilistic rule (the paper's Section V future work) for the
// single-rack scenario: one data-local candidate plus uniformly remote
// nodes, the placement distribution every map task in the testbed faces.
func AnalysisReport(nodes int) (Report, error) {
	if nodes < 2 {
		return Report{}, fmt.Errorf("experiments: need >= 2 nodes for the analysis")
	}
	// Costs in block-size units: 0 for the local node, 2 hops for the rest.
	costs := make([]float64, nodes)
	for i := 1; i < nodes; i++ {
		costs[i] = 2
	}
	pmins := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95}
	curve, err := analysis.TradeoffCurve(costs, core.Exponential{}, pmins)
	if err != nil {
		return Report{}, err
	}
	t := metrics.NewTable("Pmin", "E[cost]", "E[offers]", "Saving vs random")
	for _, p := range curve {
		ec, eo := "-", "starved"
		if !math.IsNaN(p.ExpectedCost) {
			ec = fmt.Sprintf("%.3f", p.ExpectedCost)
		}
		if !math.IsInf(p.ExpectedOffers, 1) {
			eo = fmt.Sprintf("%.2f", p.ExpectedOffers)
		}
		t.AddRow(fmt.Sprintf("%.2f", p.Pmin), ec, eo, fmt.Sprintf("%.1f%%", 100*p.Saving))
	}
	// The remote-acceptance breakpoint: above it the task only ever accepts
	// its single local node, so assignment delay jumps to ~n offers (and to
	// starvation for tasks with no local candidate at all — the reduce-side
	// regime that limits the feasible P_min in the sweep experiment).
	thr, err := analysis.StarvationPmin(costs[1:], core.Exponential{})
	if err != nil {
		return Report{}, err
	}
	note := fmt.Sprintf(
		"remote-acceptance breakpoint: Pmin > %.3f gates every non-local node\n"+
			"(uniform remote costs give P = 1-e^{-1} ≈ 0.632, matching the Pmin sweep:\n"+
			"tasks with a local candidate then wait ~n offers; tasks without one starve)\n", thr)
	return Report{
		ID:    "analysis",
		Title: fmt.Sprintf("Closed-form cost/delay trade-off (%d nodes, 1 local candidate)", nodes),
		Body:  t.String() + note,
	}, nil
}
