package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"mapsched/internal/workload"
)

// openTestPlan is the CI-sized open-system grid: a short horizon over a
// small cluster, big enough to queue and preempt, small enough to stay
// test-sized.
func openTestPlan() workload.ArrivalPlan {
	return workload.ArrivalPlan{Horizon: 120, Warmup: 30, MaxActive: 6, Preempt: true}
}

func openTestSetup() Setup {
	s := fastSetup()
	s.Workload.Scale = 40
	s.Engine.Topology.NodesPerRack = 12
	return s
}

func TestOpenSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("open-system sweep in -short mode")
	}
	rhos := []float64{0.6, 1.1}
	pts, err := OpenSweepAt(openTestSetup(), openTestPlan(), rhos)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(rhos) * len(SchedulerKinds()); len(pts) != want {
		t.Fatalf("%d sweep points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Arrived == 0 || p.Admitted == 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.SteadyDone > 0 && !(p.JCTP50 <= p.JCTP95 && p.JCTP95 <= p.JCTP99) {
			t.Fatalf("non-monotone JCT quantiles: %+v", p)
		}
		if p.Jain < 0 || p.Jain > 1 {
			t.Fatalf("Jain index %v outside [0,1]", p.Jain)
		}
	}
	// Same seed, same rho: the arrival stream is scheduler-independent.
	for i := 1; i < len(SchedulerKinds()); i++ {
		if pts[i].Arrived != pts[0].Arrived {
			t.Fatalf("arrivals differ across schedulers: %d vs %d", pts[i].Arrived, pts[0].Arrived)
		}
	}
	rep := OpenSweepReport(pts)
	if !strings.Contains(rep.Body, "Probabilistic") || !strings.Contains(rep.Body, "1.1") {
		t.Fatalf("open-system report malformed:\n%s", rep.Body)
	}
}

// TestOpenSweepWorkerInvariance pins the acceptance criterion that the
// sweep's output does not depend on the -workers fan-out: every cell is
// a self-contained deterministic simulation, its arrival stream depends
// only on the seed and tenant names, and results are assembled in grid
// order.
func TestOpenSweepWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("open-system sweep in -short mode")
	}
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	rhos := []float64{0.6, 1.1}
	var base []OpenSweepPoint
	var baseReport string
	for _, workers := range []int{1, 2, 4, 9} {
		SetMaxWorkers(workers)
		pts, err := OpenSweepAt(openTestSetup(), openTestPlan(), rhos)
		if err != nil {
			t.Fatal(err)
		}
		rep := OpenSweepReport(pts).Body
		if base == nil {
			base, baseReport = pts, rep
			continue
		}
		if !reflect.DeepEqual(base, pts) {
			t.Fatalf("open sweep depends on worker count (%d workers):\nbase: %+v\ngot:  %+v",
				workers, base, pts)
		}
		if rep != baseReport {
			t.Fatalf("rendered report depends on worker count (%d workers)", workers)
		}
	}
}

// TestCalibrateRatesScalesWithLoad checks the calibration contract:
// rates scale linearly in rho and split by admission weight relative to
// per-tenant service demand.
func TestCalibrateRatesScalesWithLoad(t *testing.T) {
	s := openTestSetup()
	lo := CalibrateRates(OpenTenants(), 0.5, s)
	hi := CalibrateRates(OpenTenants(), 1.0, s)
	for i := range lo {
		if lo[i].Rate <= 0 {
			t.Fatalf("tenant %s: non-positive rate %v", lo[i].Name, lo[i].Rate)
		}
		ratio := hi[i].Rate / lo[i].Rate
		if ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("tenant %s: rate not linear in rho: %v vs %v", lo[i].Name, lo[i].Rate, hi[i].Rate)
		}
	}
}
