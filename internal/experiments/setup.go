// Package experiments reproduces every table and figure of the paper's
// evaluation (Section III): Table II (workload), Fig. 3 (data-size CDFs),
// Fig. 4 (job completion CDFs), Fig. 5 (completion-time reductions),
// Fig. 6 (task running-time CDFs), Table III (locality mix), Fig. 7
// (locality vs input size), the P_min tuning sweep, the utilization
// comparison, and the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// SchedulerKind selects one of the three compared schedulers.
type SchedulerKind int

// The schedulers of Section III.
const (
	Probabilistic SchedulerKind = iota
	Coupling
	Fair
)

// String names the scheduler as in the paper's figures.
func (k SchedulerKind) String() string {
	switch k {
	case Probabilistic:
		return "Probabilistic"
	case Coupling:
		return "Coupling"
	case Fair:
		return "Fair"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// SchedulerKinds lists all three in the paper's presentation order.
func SchedulerKinds() []SchedulerKind {
	return []SchedulerKind{Probabilistic, Coupling, Fair}
}

// Setup bundles everything one experiment run needs.
type Setup struct {
	Engine   engine.Config
	Workload workload.Options
	// Pmin overrides the probabilistic scheduler threshold (paper: 0.4).
	Pmin float64
}

// DefaultSetup mirrors the paper's testbed at the default simulation
// scale: 60 single-rack nodes, 4 map + 2 reduce slots, replication 2,
// P_min 0.4, workloads scaled down by Options.Scale to stay tractable.
func DefaultSetup() Setup {
	cfg := engine.DefaultConfig()
	// The paper's testbed is severely bandwidth-bound (shared 1 GbE plus
	// slow local disks serving 6 task slots, background HPC traffic):
	// derate the per-node effective bandwidth so transmission cost — the
	// quantity the scheduler optimizes — dominates job time as it did
	// there.
	cfg.Topology.HostLinkBps = 40e6
	cfg.Topology.TorUplinkBps = 400e6
	cfg.Topology.DiskBps = 150e6
	// Scaled-down jobs have proportionally shorter tasks, so the heartbeat
	// (the scheduling granularity) is scaled down with them to keep the
	// offer cadence-to-task-duration ratio of the testbed.
	cfg.HeartbeatInterval = 1
	// Palmetto is a shared HPC platform: other tenants' traffic makes the
	// effective bandwidth of individual nodes heterogeneous and dynamic.
	// Persistent background flows reproduce that regime; the paper's
	// network-condition cost (Section II-B-3) is the mechanism that sees it.
	cfg.CrossTraffic = 40
	cfg.CostMode = core.ModeNetworkCondition
	return Setup{
		Engine:   cfg,
		Workload: workload.DefaultOptions(),
		Pmin:     0.4,
	}
}

// BuilderFor returns the scheduler builder for a kind under this setup.
func (s Setup) BuilderFor(k SchedulerKind) sched.Builder {
	switch k {
	case Probabilistic:
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		return sched.NewProbabilistic(cfg)
	case Coupling:
		return sched.NewCoupling(sched.DefaultCouplingConfig())
	case Fair:
		return sched.NewFairDelay(sched.DefaultFairDelayConfig())
	default:
		panic(fmt.Sprintf("experiments: unknown scheduler kind %d", int(k)))
	}
}

// RunBatch simulates one Table II batch (one application class) under one
// scheduler builder. This is the leaf of every experiment: it holds a
// worker-gate slot for the duration of the simulation, so any composite
// driver may fan out freely and still run at most SetMaxWorkers
// simulations at once.
func (s Setup) RunBatch(kind workload.Kind, b sched.Builder) (*engine.Result, error) {
	specs, err := workload.Specs(workload.Batch(kind), s.Workload)
	if err != nil {
		return nil, err
	}
	sim, err := engine.New(s.Engine, specs, b)
	if err != nil {
		return nil, err
	}
	sem := workerSem
	sem <- struct{}{}
	defer func() { <-sem }()
	return sim.Run()
}

// Merged aggregates the three separately-run batches of one scheduler, as
// the paper aggregates them into single CDFs.
type Merged struct {
	Scheduler   string
	Kind        SchedulerKind
	Jobs        []engine.JobResult
	MapTimes    []float64
	ReduceTimes []float64

	MapLocality    metrics.LocalityCount
	ReduceLocality metrics.LocalityCount

	MapUtilization    float64 // mean of the per-batch time-averages
	ReduceUtilization float64
	Makespan          float64 // max across batches
	Unfinished        int
}

// RunAllBatches runs the three batches separately (as in the paper), in
// parallel, and merges the results in batch order — identical to the
// sequential merge.
func (s Setup) RunAllBatches(k SchedulerKind) (*Merged, error) {
	kinds := workload.Kinds()
	results, err := runParallel(len(kinds), func(i int) (*engine.Result, error) {
		res, err := s.RunBatch(kinds[i], s.BuilderFor(k))
		if err != nil {
			return nil, fmt.Errorf("%v batch under %v: %w", kinds[i], k, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	m := &Merged{Kind: k}
	var utilM, utilR float64
	for _, res := range results {
		m.Scheduler = res.Scheduler
		m.Jobs = append(m.Jobs, res.Jobs...)
		m.MapTimes = append(m.MapTimes, res.MapTimes...)
		m.ReduceTimes = append(m.ReduceTimes, res.ReduceTimes...)
		m.MapLocality.Merge(res.MapLocality)
		m.ReduceLocality.Merge(res.ReduceLocality)
		utilM += res.MapUtilization
		utilR += res.ReduceUtilization
		if res.Makespan > m.Makespan {
			m.Makespan = res.Makespan
		}
		m.Unfinished += res.Unfinished
	}
	n := float64(len(workload.Kinds()))
	m.MapUtilization = utilM / n
	m.ReduceUtilization = utilR / n
	return m, nil
}

// CompletionTimes returns finished-job completion times across batches.
func (m *Merged) CompletionTimes() []float64 {
	var out []float64
	for _, j := range m.Jobs {
		if j.Finished() {
			out = append(out, j.Completion)
		}
	}
	return out
}

// JobCompletionCDF returns the Fig. 4 sample.
func (m *Merged) JobCompletionCDF() metrics.CDF {
	return metrics.NewCDF(m.CompletionTimes())
}

// TaskLocality merges map and reduce tallies (Table III).
func (m *Merged) TaskLocality() metrics.LocalityCount {
	l := m.MapLocality
	l.Merge(m.ReduceLocality)
	return l
}

// Comparison holds the full three-scheduler suite.
type Comparison struct {
	Setup   Setup
	Results map[SchedulerKind]*Merged
}

// RunComparison executes all three schedulers over all three batches,
// running the nine independent simulations in parallel.
func (s Setup) RunComparison() (*Comparison, error) {
	kinds := SchedulerKinds()
	merged, err := runParallel(len(kinds), func(i int) (*Merged, error) {
		return s.RunAllBatches(kinds[i])
	})
	if err != nil {
		return nil, err
	}
	c := &Comparison{Setup: s, Results: make(map[SchedulerKind]*Merged)}
	for i, k := range kinds {
		c.Results[k] = merged[i]
	}
	return c, nil
}

// JobPair returns the completion times of the same job under two
// schedulers; ok is false when either is missing or unfinished.
func (c *Comparison) JobPair(name string, a, b SchedulerKind) (ta, tb float64, ok bool) {
	ja, oka := findJob(c.Results[a].Jobs, name)
	jb, okb := findJob(c.Results[b].Jobs, name)
	if !oka || !okb || !ja.Finished() || !jb.Finished() {
		return 0, 0, false
	}
	return ja.Completion, jb.Completion, true
}

func findJob(jobs []engine.JobResult, name string) (engine.JobResult, bool) {
	for _, j := range jobs {
		if j.Name == name {
			return j, true
		}
	}
	return engine.JobResult{}, false
}

var _ = job.TaskDone // referenced by figures.go
