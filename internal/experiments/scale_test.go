package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// smokeGrid is the CI-sized scale sweep: big enough to cross a rack
// boundary and exercise the class-collapsed selection path, small enough
// to stay test-sized.
func smokeGrid() []ScaleSize {
	return []ScaleSize{{Racks: 2, NodesPerRack: 20}, {Racks: 4, NodesPerRack: 20}}
}

func TestScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep in -short mode")
	}
	pts, err := ScaleSweep(fastSetup(), smokeGrid())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(smokeGrid()) * len(SchedulerKinds()); len(pts) != want {
		t.Fatalf("%d scale points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Unfinished != 0 {
			t.Fatalf("%s at %d nodes left %d jobs unfinished", p.Scheduler, p.Nodes, p.Unfinished)
		}
		if p.MeanJCT <= 0 || p.Makespan <= 0 || p.Events == 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	rep := ScaleReport(pts)
	if !strings.Contains(rep.Body, "Probabilistic") || !strings.Contains(rep.Body, "80") {
		t.Fatalf("scale report malformed:\n%s", rep.Body)
	}
}

// TestScaleSweepWorkerInvariance pins the acceptance criterion that the
// sweep's output does not depend on the -workers fan-out: every cell is a
// self-contained deterministic simulation and results are assembled in
// grid order.
func TestScaleSweepWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep in -short mode")
	}
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	SetMaxWorkers(1)
	serial, err := ScaleSweep(fastSetup(), smokeGrid())
	if err != nil {
		t.Fatal(err)
	}
	SetMaxWorkers(4)
	parallel, err := ScaleSweep(fastSetup(), smokeGrid())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("scale sweep depends on worker count:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
