package experiments

import (
	"strings"
	"testing"
)

func TestModelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("model comparison in -short mode")
	}
	pts, err := ModelComparison(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d model points, want 4", len(pts))
	}
	names := map[string]bool{}
	for _, p := range pts {
		names[p.Variant] = true
		if p.Unfinished != 0 {
			t.Fatalf("model %s left %d jobs unfinished", p.Variant, p.Unfinished)
		}
		if p.MeanJCT <= 0 {
			t.Fatalf("model %s has mean JCT %v", p.Variant, p.MeanJCT)
		}
	}
	for _, want := range []string{"exponential", "linear", "rational(k=1)", "step"} {
		if !names[want] {
			t.Fatalf("missing model %s in %v", want, names)
		}
	}
}

func TestExtendedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("extended comparison in -short mode")
	}
	pts, err := ExtendedComparison(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d scheduler points, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Unfinished != 0 {
			t.Fatalf("%s left jobs unfinished", p.Variant)
		}
	}
}

func TestFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault tolerance in -short mode")
	}
	pts, err := FaultTolerance(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d fault points", len(pts))
	}
	for _, p := range pts {
		if p.Unfinished != 0 {
			t.Fatalf("%s did not recover from failures", p.Scheduler)
		}
		if p.BaselineJCT <= 0 || p.FaultyJCT <= 0 {
			t.Fatalf("%s has empty JCTs: %+v", p.Scheduler, p)
		}
	}
	rep := FaultReport(pts)
	if !strings.Contains(rep.Body, "Probabilistic") {
		t.Fatalf("fault report malformed:\n%s", rep.Body)
	}
}

func TestAnalysisReport(t *testing.T) {
	rep, err := AnalysisReport(60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "0.632") {
		t.Fatalf("analysis report missing the breakpoint:\n%s", rep.Body)
	}
	// Above the breakpoint only the local node accepts: zero expected cost
	// at ~n expected offers.
	if !strings.Contains(rep.Body, "60.00") || !strings.Contains(rep.Body, "100.0%") {
		t.Fatalf("analysis report missing the local-only regime:\n%s", rep.Body)
	}
	if _, err := AnalysisReport(1); err == nil {
		t.Fatal("single-node analysis accepted")
	}
}

func TestSeedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("seed study in -short mode")
	}
	s := fastSetup()
	rep, err := SeedStudy(s, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "grand mean") {
		t.Fatalf("seed study report malformed:\n%s", rep.Body)
	}
	if _, err := SeedStudy(s, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestJobPolicyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison in -short mode")
	}
	pts, err := JobPolicyComparison(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d policy points", len(pts))
	}
	for _, p := range pts {
		if p.Unfinished != 0 {
			t.Fatalf("%s left jobs unfinished", p.Variant)
		}
	}
}
