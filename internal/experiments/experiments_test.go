package experiments

import (
	"strings"
	"sync"
	"testing"

	"mapsched/internal/core"
	"mapsched/internal/workload"
)

// fastSetup shrinks the workload so the full suite stays test-sized.
func fastSetup() Setup {
	s := DefaultSetup()
	s.Workload.Scale = 30
	s.Engine.CrossTraffic = 10
	s.Engine.Topology.NodesPerRack = 20 // smaller cluster for test speed
	return s
}

var (
	cachedCmp     *Comparison
	cachedCmpErr  error
	cachedCmpOnce sync.Once
)

// fastComparison runs the full three-scheduler suite once per test binary.
func fastComparison(t *testing.T) *Comparison {
	t.Helper()
	cachedCmpOnce.Do(func() {
		cachedCmp, cachedCmpErr = fastSetup().RunComparison()
	})
	if cachedCmpErr != nil {
		t.Fatal(cachedCmpErr)
	}
	return cachedCmp
}

func TestTableIIReport(t *testing.T) {
	r := TableIIReport()
	if !strings.Contains(r.Body, "Wordcount_10GB") || !strings.Contains(r.Body, "930") {
		t.Fatalf("Table II body missing rows:\n%s", r.Body)
	}
	lines := strings.Count(r.Body, "\n")
	if lines < 32 { // header + separator + 30 rows
		t.Fatalf("Table II has %d lines", lines)
	}
}

func TestFig3Shape(t *testing.T) {
	f := Fig3()
	if f.Input.N() != 30 || f.Shuffle.N() != 30 {
		t.Fatalf("Fig3 over %d/%d jobs", f.Input.N(), f.Shuffle.N())
	}
	// All inputs within [10GB, 100GB].
	if f.Input.Min() != 10e9 || f.Input.Max() != 100e9 {
		t.Fatalf("input range [%v, %v]", f.Input.Min(), f.Input.Max())
	}
	// Map-intensive tail: some jobs below 10 GB shuffle.
	if f.Shuffle.At(10e9) == 0 {
		t.Fatal("no map-intensive jobs in shuffle CDF")
	}
	// Shuffle-heavy head: some jobs above 100 GB shuffle.
	if f.Shuffle.At(100e9) == 1 {
		t.Fatal("no shuffle-heavy jobs above 100GB")
	}
	if !strings.Contains(f.Report().Body, "CDF(shuffle)") {
		t.Fatal("Fig3 report missing column")
	}
}

func TestComparisonAndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison in -short mode")
	}
	c := fastComparison(t)
	for _, k := range SchedulerKinds() {
		m := c.Results[k]
		if m.Unfinished != 0 {
			t.Fatalf("%v: %d unfinished jobs", k, m.Unfinished)
		}
		if len(m.Jobs) != 30 {
			t.Fatalf("%v: %d job results", k, len(m.Jobs))
		}
		if m.JobCompletionCDF().N() != 30 {
			t.Fatalf("%v: completion CDF has %d entries", k, m.JobCompletionCDF().N())
		}
		if m.MapUtilization <= 0 || m.ReduceUtilization <= 0 {
			t.Fatalf("%v: zero utilization", k)
		}
	}

	// Fig. 4 report renders all schedulers.
	r4 := Fig4Report(c)
	for _, k := range SchedulerKinds() {
		if !strings.Contains(r4.Body, k.String()) {
			t.Fatalf("Fig4 missing %v:\n%s", k, r4.Body)
		}
	}

	// Fig. 5: paired reductions over all 30 jobs.
	f5 := Fig5(c)
	if f5.VsCoupling.N() != 30 || f5.VsFair.N() != 30 {
		t.Fatalf("Fig5 pairs: %d vs coupling, %d vs fair", f5.VsCoupling.N(), f5.VsFair.N())
	}
	if !strings.Contains(f5.Report().Body, "average reduction") {
		t.Fatal("Fig5 report missing summary")
	}

	// Fig. 6 report has both panels.
	r6 := Fig6Report(c)
	if !strings.Contains(r6.Body, "(a) Map tasks") || !strings.Contains(r6.Body, "(b) Reduce tasks") {
		t.Fatalf("Fig6 body:\n%s", r6.Body)
	}

	// Table III percentages are sane and sum to 100 per scheduler.
	t3 := TableIII(c)
	for _, k := range SchedulerKinds() {
		l := t3.Locality[k]
		sum := l.PercentNode() + l.PercentRack() + l.PercentRemote()
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("%v locality sums to %v", k, sum)
		}
		// Single-rack testbed: no remote tasks (paper Table III).
		if l.PercentRemote() != 0 {
			t.Fatalf("%v has remote tasks in a single rack", k)
		}
	}
	if !strings.Contains(t3.Report().Body, "% of local node tasks") {
		t.Fatal("Table III report malformed")
	}

	// Fig. 7 covers the ten input sizes.
	f7 := Fig7(c)
	if len(f7.Sizes) != 10 {
		t.Fatalf("Fig7 sizes = %v", f7.Sizes)
	}
	for _, k := range SchedulerKinds() {
		for _, gb := range f7.Sizes {
			p := f7.Percent[k][gb]
			if p < 0 || p > 100 {
				t.Fatalf("Fig7 %v@%dGB = %v", k, gb, p)
			}
		}
	}
	if !strings.Contains(f7.Report().Body, "10GB") {
		t.Fatal("Fig7 report missing rows")
	}

	// Utilization report.
	u := Utilization(c)
	if !strings.Contains(u.Report().Body, "reduce") {
		t.Fatal("utilization report malformed")
	}
}

func TestPminSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	s := fastSetup()
	pts, err := PminSweep(s, []float64{0.2, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d sweep points", len(pts))
	}
	rep := PminReport(pts)
	if !strings.Contains(rep.Body, "0.4") {
		t.Fatalf("sweep report:\n%s", rep.Body)
	}
}

func TestBuilderForAllKinds(t *testing.T) {
	s := DefaultSetup()
	for _, k := range SchedulerKinds() {
		if s.BuilderFor(k) == nil {
			t.Fatalf("nil builder for %v", k)
		}
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestDefaultSetupUsesPaperParameters(t *testing.T) {
	s := DefaultSetup()
	if s.Pmin != 0.4 {
		t.Fatalf("Pmin = %v, want the paper's 0.4", s.Pmin)
	}
	if s.Engine.MapSlotsPerNode != 4 || s.Engine.ReduceSlotsPerNode != 2 {
		t.Fatal("slot counts differ from the paper's 4+2")
	}
	if s.Engine.Topology.Racks*s.Engine.Topology.NodesPerRack != 60 {
		t.Fatal("cluster is not 60 nodes")
	}
	if s.Workload.Replication != 2 {
		t.Fatal("replication is not 2")
	}
	if s.Engine.CostMode != core.ModeNetworkCondition {
		t.Fatal("headline cost mode should include the network condition (Section II-B-3)")
	}
}

func TestAblationEstimatorVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	s := fastSetup()
	pts, err := AblationEstimator(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d estimator variants", len(pts))
	}
	names := map[string]bool{}
	for _, p := range pts {
		names[p.Variant] = true
		if p.Unfinished != 0 {
			t.Fatalf("%s left jobs unfinished", p.Variant)
		}
	}
	for _, want := range []string{"progress-scaled", "current-size", "oracle"} {
		if !names[want] {
			t.Fatalf("missing variant %s (have %v)", want, names)
		}
	}
}

func TestMultiRackOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multirack in -short mode")
	}
	s := fastSetup()
	pts, err := MultiRack(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d scheduler points", len(pts))
	}
	for _, p := range pts {
		if p.MeanJCT <= 0 {
			t.Fatalf("%s mean JCT %v", p.Variant, p.MeanJCT)
		}
	}
}

func TestJobPairLookup(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison in -short mode")
	}
	c := fastComparison(t)
	name := workload.TableII()[0].Name()
	ta, tb, ok := c.JobPair(name, Fair, Probabilistic)
	if !ok || ta <= 0 || tb <= 0 {
		t.Fatalf("JobPair(%s) = %v %v %v", name, ta, tb, ok)
	}
	if _, _, ok := c.JobPair("missing", Fair, Probabilistic); ok {
		t.Fatal("phantom job pair")
	}
}
