package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mapsched/internal/metrics"
	"mapsched/internal/workload"
)

// Report is one rendered experiment artifact.
type Report struct {
	ID    string // e.g. "tableII", "fig4"
	Title string
	Body  string
}

// String renders the report with its header.
func (r Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Body)
}

// TableIIReport regenerates Table II: the 30 jobs with their input sizes
// and task counts (at scale 1, i.e. exactly the published numbers).
func TableIIReport() Report {
	t := metrics.NewTable("JobID", "Job", "Map (#)", "Reduce (#)")
	for _, d := range workload.TableII() {
		t.AddRow(d.JobID, d.Name(), d.Maps, d.Reduces)
	}
	return Report{ID: "tableII", Title: "The description of the 30 jobs", Body: t.String()}
}

// Fig3Data holds the two CDFs of Fig. 3.
type Fig3Data struct {
	Input   metrics.CDF // job input sizes, bytes
	Shuffle metrics.CDF // job shuffle sizes, bytes
}

// Fig3 computes the input-size and shuffle-size CDFs over the Table II
// workload (at full scale, as the paper characterizes the workload).
func Fig3() Fig3Data {
	var in, sh []float64
	for _, d := range workload.TableII() {
		in = append(in, d.InputBytes())
		sh = append(sh, d.ShuffleBytes())
	}
	return Fig3Data{Input: metrics.NewCDF(in), Shuffle: metrics.NewCDF(sh)}
}

// Report renders Fig. 3 as a two-series CDF table.
func (f Fig3Data) Report() Report {
	t := metrics.NewTable("Size", "CDF(input)", "CDF(shuffle)")
	for _, gb := range []float64{10, 25, 50, 75, 100, 150, 200, 250} {
		x := gb * 1e9
		t.AddRow(metrics.GB(x), f.Input.At(x), f.Shuffle.At(x))
	}
	return Report{ID: "fig3", Title: "CDF of data size", Body: t.String()}
}

// cdfTable renders one CDF column per scheduler at common quantiles.
func cdfTable(c *Comparison, sample func(*Merged) []float64, unit string) string {
	t := metrics.NewTable(append([]string{"Quantile"}, schedulerNames(c)...)...)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0} {
		row := []any{fmt.Sprintf("p%.0f", q*100)}
		for _, k := range SchedulerKinds() {
			cdf := metrics.NewCDF(sample(c.Results[k]))
			row = append(row, fmt.Sprintf("%.1f%s", cdf.Quantile(q), unit))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func schedulerNames(c *Comparison) []string {
	names := make([]string, 0, len(SchedulerKinds()))
	for _, k := range SchedulerKinds() {
		names = append(names, k.String())
	}
	_ = c
	return names
}

// Fig4Report renders the job-completion-time CDFs per scheduler.
func Fig4Report(c *Comparison) Report {
	body := cdfTable(c, func(m *Merged) []float64 { return m.CompletionTimes() }, "s")
	var mean strings.Builder
	for _, k := range SchedulerKinds() {
		fmt.Fprintf(&mean, "mean(%s) = %.1fs  ", k, c.Results[k].JobCompletionCDF().Mean())
	}
	return Report{ID: "fig4", Title: "CDF of job completion time (replication 2)",
		Body: body + mean.String() + "\n"}
}

// Fig5Data holds the per-job completion-time reductions of Fig. 5.
type Fig5Data struct {
	VsCoupling metrics.CDF // (coupling − probabilistic)/coupling per job
	VsFair     metrics.CDF // (fair − probabilistic)/fair per job
}

// Fig5 computes the paired per-job reductions.
func Fig5(c *Comparison) Fig5Data {
	var vsC, vsF []float64
	for _, d := range workload.TableII() {
		name := d.Name()
		if tc, tp, ok := c.JobPair(name, Coupling, Probabilistic); ok {
			vsC = append(vsC, metrics.Reduction(tc, tp))
		}
		if tf, tp, ok := c.JobPair(name, Fair, Probabilistic); ok {
			vsF = append(vsF, metrics.Reduction(tf, tp))
		}
	}
	return Fig5Data{VsCoupling: metrics.NewCDF(vsC), VsFair: metrics.NewCDF(vsF)}
}

// AvgVsCoupling returns the mean reduction against the Coupling scheduler
// (the paper reports 17%).
func (f Fig5Data) AvgVsCoupling() float64 { return f.VsCoupling.Mean() }

// AvgVsFair returns the mean reduction against the Fair scheduler (the
// paper reports 46%).
func (f Fig5Data) AvgVsFair() float64 { return f.VsFair.Mean() }

// Report renders Fig. 5.
func (f Fig5Data) Report() Report {
	t := metrics.NewTable("Reduction", "CDF vs Coupling", "CDF vs Fair")
	for _, r := range []float64{-0.25, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75} {
		t.AddRow(fmt.Sprintf("%.0f%%", r*100),
			fmt.Sprintf("%.2f", f.VsCoupling.At(r)),
			fmt.Sprintf("%.2f", f.VsFair.At(r)))
	}
	extra := fmt.Sprintf("average reduction: %.1f%% vs coupling, %.1f%% vs fair\n",
		100*f.AvgVsCoupling(), 100*f.AvgVsFair())
	return Report{ID: "fig5", Title: "Reduction of job processing time", Body: t.String() + extra}
}

// Fig6Report renders the map-task and reduce-task running time CDFs.
func Fig6Report(c *Comparison) Report {
	maps := cdfTable(c, func(m *Merged) []float64 { return m.MapTimes }, "s")
	reds := cdfTable(c, func(m *Merged) []float64 { return m.ReduceTimes }, "s")
	return Report{ID: "fig6", Title: "CDF of task completion time",
		Body: "(a) Map tasks\n" + maps + "(b) Reduce tasks\n" + reds}
}

// TableIIIData holds the locality mix per scheduler.
type TableIIIData struct {
	Locality map[SchedulerKind]metrics.LocalityCount
}

// TableIII computes the Table III locality percentages over map+reduce
// tasks.
func TableIII(c *Comparison) TableIIIData {
	d := TableIIIData{Locality: make(map[SchedulerKind]metrics.LocalityCount)}
	for _, k := range SchedulerKinds() {
		d.Locality[k] = c.Results[k].TaskLocality()
	}
	return d
}

// Report renders Table III.
func (d TableIIIData) Report() Report {
	t := metrics.NewTable("", "Probabilistic", "Coupling", "Fair")
	row := func(label string, get func(metrics.LocalityCount) float64) {
		cells := []any{label}
		for _, k := range SchedulerKinds() {
			cells = append(cells, fmt.Sprintf("%.2f", get(d.Locality[k])))
		}
		t.AddRow(cells...)
	}
	row("% of local node tasks", func(l metrics.LocalityCount) float64 { return l.PercentNode() })
	row("% of local rack tasks", func(l metrics.LocalityCount) float64 { return l.PercentRack() })
	row("% of remote tasks", func(l metrics.LocalityCount) float64 { return l.PercentRemote() })
	return Report{ID: "tableIII", Title: "Details on data locality using the three schedulers", Body: t.String()}
}

// Fig7Data maps input size (GB) to percent node-local map tasks per
// scheduler.
type Fig7Data struct {
	Sizes   []int
	Percent map[SchedulerKind]map[int]float64
}

// Fig7 computes per-input-size map locality from per-job tallies.
func Fig7(c *Comparison) Fig7Data {
	d := Fig7Data{Percent: make(map[SchedulerKind]map[int]float64)}
	sizes := map[int]bool{}
	for _, k := range SchedulerKinds() {
		agg := map[int]*metrics.LocalityCount{}
		for _, jr := range c.Results[k].Jobs {
			gb := int(jr.InputBytes*float64(c.Setup.Workload.Scale)/1e9 + 0.5)
			sizes[gb] = true
			if agg[gb] == nil {
				agg[gb] = &metrics.LocalityCount{}
			}
			agg[gb].Merge(jr.MapLocality)
		}
		d.Percent[k] = map[int]float64{}
		for gb, l := range agg {
			d.Percent[k][gb] = l.PercentNode()
		}
	}
	for gb := range sizes {
		d.Sizes = append(d.Sizes, gb)
	}
	sort.Ints(d.Sizes)
	return d
}

// Report renders Fig. 7.
func (d Fig7Data) Report() Report {
	t := metrics.NewTable("Input", "Probabilistic", "Coupling", "Fair")
	for _, gb := range d.Sizes {
		row := []any{fmt.Sprintf("%dGB", gb)}
		for _, k := range SchedulerKinds() {
			row = append(row, fmt.Sprintf("%.1f%%", d.Percent[k][gb]))
		}
		t.AddRow(row...)
	}
	return Report{ID: "fig7", Title: "The percentage of map tasks with local data", Body: t.String()}
}

// UtilizationData holds the slot-utilization comparison (Section III-A's
// resource-utilization claim).
type UtilizationData struct {
	Map    map[SchedulerKind]float64
	Reduce map[SchedulerKind]float64
}

// Utilization extracts time-averaged slot utilization per scheduler.
func Utilization(c *Comparison) UtilizationData {
	d := UtilizationData{Map: map[SchedulerKind]float64{}, Reduce: map[SchedulerKind]float64{}}
	for _, k := range SchedulerKinds() {
		d.Map[k] = c.Results[k].MapUtilization
		d.Reduce[k] = c.Results[k].ReduceUtilization
	}
	return d
}

// Report renders the utilization comparison.
func (d UtilizationData) Report() Report {
	t := metrics.NewTable("Slots", "Probabilistic", "Coupling", "Fair")
	mapRow := []any{"map"}
	redRow := []any{"reduce"}
	for _, k := range SchedulerKinds() {
		mapRow = append(mapRow, fmt.Sprintf("%.2f", d.Map[k]))
		redRow = append(redRow, fmt.Sprintf("%.2f", d.Reduce[k]))
	}
	t.AddRow(mapRow...)
	t.AddRow(redRow...)
	return Report{ID: "util", Title: "Time-averaged slot utilization", Body: t.String()}
}

// PminPoint is one sweep sample.
type PminPoint struct {
	Pmin       float64
	MeanJCT    float64 // over finished jobs
	Unfinished int
}

// PminSweep reruns the Wordcount batch under the probabilistic scheduler
// for each threshold, reproducing the paper's tuning procedure ("ran 10
// Wordcount jobs together several times with different P_min values and
// picked the highest P_min value at the time when all jobs finished
// successfully").
func PminSweep(s Setup, values []float64) ([]PminPoint, error) {
	return runParallel(len(values), func(i int) (PminPoint, error) {
		sp := s
		sp.Pmin = values[i]
		// A tight horizon makes "jobs fail to finish" observable, as on
		// the real cluster; feasible thresholds finish well within it.
		sp.Engine.MaxSimTime = 1200 * float64(6) / float64(s.Workload.Scale)
		res, err := sp.RunBatch(workload.Wordcount, sp.BuilderFor(Probabilistic))
		if err != nil {
			return PminPoint{}, err
		}
		return PminPoint{
			Pmin:       values[i],
			MeanJCT:    res.JobCompletionCDF().Mean(),
			Unfinished: res.Unfinished,
		}, nil
	})
}

// PminReport renders the sweep and the chosen threshold.
func PminReport(points []PminPoint) Report {
	t := metrics.NewTable("Pmin", "Mean JCT", "Unfinished jobs")
	best := -1.0
	for _, p := range points {
		jct := "-"
		if p.MeanJCT == p.MeanJCT { // not NaN
			jct = fmt.Sprintf("%.1fs", p.MeanJCT)
		}
		t.AddRow(fmt.Sprintf("%.1f", p.Pmin), jct, p.Unfinished)
		if p.Unfinished == 0 && p.Pmin > best {
			best = p.Pmin
		}
	}
	note := fmt.Sprintf("highest Pmin with all jobs finished: %.1f (paper picks 0.4)\n", best)
	return Report{ID: "pmin", Title: "Pmin tuning sweep (10 Wordcount jobs)", Body: t.String() + note}
}
