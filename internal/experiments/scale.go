package experiments

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/metrics"
	"mapsched/internal/workload"
)

// ScaleSize is one rung of the cluster-size sweep: racks × nodes-per-rack
// gives the node count. Nodes-per-rack is held constant so the number of
// distance classes (racks) grows linearly with the cluster while staying
// two orders of magnitude below the node count — the regime the
// class-collapsed cost sums are built for.
type ScaleSize struct {
	Racks        int
	NodesPerRack int
}

// Nodes returns the cluster size of the rung.
func (z ScaleSize) Nodes() int { return z.Racks * z.NodesPerRack }

// ScaleSizes returns the default sweep grid, 100 → 5000 nodes at 20
// nodes per rack (the ROADMAP's production-scale north star).
func ScaleSizes() []ScaleSize {
	return []ScaleSize{
		{Racks: 5, NodesPerRack: 20},
		{Racks: 25, NodesPerRack: 20},
		{Racks: 50, NodesPerRack: 20},
		{Racks: 100, NodesPerRack: 20},
		{Racks: 250, NodesPerRack: 20},
	}
}

// ScalePoint is one (cluster size, scheduler) cell of the sweep.
type ScalePoint struct {
	Nodes        int
	Racks        int
	Scheduler    string
	MeanJCT      float64 // over finished jobs
	Makespan     float64
	NodeLocalPct float64 // map tasks reading their block locally
	Unfinished   int
	Events       uint64 // simulator events executed
}

// ScaleSweep runs the Wordcount batch under every scheduler across the
// cluster-size grid. Distances are hop-mode so the rack structure
// collapses into distance classes and the class-aggregated selection path
// carries the per-offer work; cross-traffic is off since background flows
// at thousands of nodes would swamp the run without informing the sweep.
// The workload is held fixed while the cluster grows (strong scaling):
// the sweep shows the schedulers' placement quality and the simulation's
// event volume as functions of cluster size, while the wall-clock
// trajectory of the selection path itself is measured by
// BenchmarkSelect_ClusterScale. All (size × scheduler) cells run in
// parallel and every simulation is self-contained, so the output is
// identical for any -workers count.
func ScaleSweep(s Setup, grid []ScaleSize) ([]ScalePoint, error) {
	if len(grid) == 0 {
		grid = ScaleSizes()
	}
	s.Engine.CostMode = core.ModeHops
	s.Engine.CrossTraffic = 0
	kinds := SchedulerKinds()
	return runParallel(len(grid)*len(kinds), func(i int) (ScalePoint, error) {
		z, k := grid[i/len(kinds)], kinds[i%len(kinds)]
		sp := s
		sp.Engine.Topology.Racks = z.Racks
		sp.Engine.Topology.NodesPerRack = z.NodesPerRack
		res, err := sp.RunBatch(workload.Wordcount, sp.BuilderFor(k))
		if err != nil {
			return ScalePoint{}, fmt.Errorf("%d nodes under %v: %w", z.Nodes(), k, err)
		}
		return ScalePoint{
			Nodes:        z.Nodes(),
			Racks:        z.Racks,
			Scheduler:    k.String(),
			MeanJCT:      res.JobCompletionCDF().Mean(),
			Makespan:     res.Makespan,
			NodeLocalPct: res.MapLocality.PercentNode(),
			Unfinished:   res.Unfinished,
			Events:       res.Events,
		}, nil
	})
}

// ScaleReport renders the sweep as a per-(size, scheduler) table.
func ScaleReport(points []ScalePoint) Report {
	t := metrics.NewTable("Nodes", "Racks", "Scheduler", "Mean JCT", "Makespan", "Node-local %", "Unfinished", "Events")
	for _, p := range points {
		t.AddRow(p.Nodes, p.Racks, p.Scheduler,
			fmt.Sprintf("%.1fs", p.MeanJCT), fmt.Sprintf("%.1fs", p.Makespan),
			fmt.Sprintf("%.1f", p.NodeLocalPct), p.Unfinished, p.Events)
	}
	return Report{
		ID:    "scale",
		Title: "Cluster-size sweep (Wordcount, hop distances, fixed workload)",
		Body:  t.String(),
	}
}
