package experiments

import (
	"fmt"
	"math"

	"mapsched/internal/engine"
	"mapsched/internal/metrics"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/workload"
)

// OpenLoadFactors is the default load grid of the open-system sweep:
// from a half-loaded cluster to nominal overload.
func OpenLoadFactors() []float64 { return []float64{0.5, 0.7, 0.9, 1.1} }

// OpenTenants returns the sweep's three-tenant mix: a heavy production
// tenant, a mixed analytics tenant and a capped best-effort tenant, so
// the sweep exercises weighted admission, preemption floors and
// queue-cap rejection together.
func OpenTenants() []workload.Tenant {
	return []workload.Tenant{
		{Name: "prod", Weight: 3, Kinds: []workload.Kind{workload.Terasort}, MinGB: 10, MaxGB: 40},
		{Name: "analytics", Weight: 2, Kinds: []workload.Kind{workload.Wordcount, workload.Grep}, MinGB: 10, MaxGB: 30},
		{Name: "besteffort", Weight: 1, Kinds: []workload.Kind{workload.Grep}, MinGB: 5, MaxGB: 20, QueueCap: 6},
	}
}

// OpenPlan returns the sweep's admission configuration: a fixed arrival
// horizon with a warm-up prefix discarded from steady-state metrics, an
// active-job cap sized to the cluster, and preemption on. The cap is
// generous (half the node count) so admission, not the cap, shapes
// throughput: scaled-down jobs carry few tasks each, and a tight cap
// would starve slots long before the cluster saturates.
func OpenPlan(nodes int) workload.ArrivalPlan {
	maxActive := nodes / 2
	if maxActive < 4 {
		maxActive = 4
	}
	return workload.ArrivalPlan{
		Horizon:   600,
		Warmup:    120,
		MaxActive: maxActive,
		Preempt:   true,
	}
}

// CalibrateRates sets each tenant's Poisson rate so the offered load is
// rho times the capacity of the cluster's binding slot pool, split
// across tenants by their admission weights. For each tenant the
// bottleneck is max(mapDemand/mapCapacity, reduceDemand/reduceCapacity)
// — per-job demand in slot-seconds over pool capacity in slot-seconds
// per second — and rate_t = rho * share_t / bottleneck_t, so when every
// tenant binds on the same pool that pool's offered load is exactly
// rho. Demand estimates include the time tasks hold slots waiting on
// the (possibly derated) network.
func CalibrateRates(tenants []workload.Tenant, rho float64, s Setup) []workload.Tenant {
	nodes := s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack
	mapCap := float64(nodes * s.Engine.MapSlotsPerNode)
	redCap := float64(nodes * s.Engine.ReduceSlotsPerNode)
	linkBps := s.Engine.Topology.HostLinkBps
	if s.Engine.Topology.DiskBps > 0 && s.Engine.Topology.DiskBps < linkBps {
		linkBps = s.Engine.Topology.DiskBps
	}
	// A busy node's link is shared by its concurrent transfers — the
	// shuffle pulls of its reduce slots plus a remote map fetch — so the
	// bandwidth one task sees is a fraction of the host link.
	linkBps /= float64(s.Engine.ReduceSlotsPerNode + 1)
	var sumW float64
	for _, t := range tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		sumW += w
	}
	out := make([]workload.Tenant, len(tenants))
	for i, t := range tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		mapSec, redSec := t.MeanServiceDemand(s.Workload, s.Engine.TaskOverhead, linkBps)
		bottleneck := mapSec / mapCap
		if r := redSec / redCap; r > bottleneck {
			bottleneck = r
		}
		t.Rate = rho * (w / sumW) / bottleneck
		out[i] = t
	}
	return out
}

// RunOpen is the open-system leaf: it expands the plan into the
// deterministic arrival stream, configures the engine's open-system
// mode and runs one simulation. Like RunBatch it holds a worker-gate
// slot for the duration, so composite sweeps fan out freely while at
// most SetMaxWorkers simulations execute at once.
func (s Setup) RunOpen(plan workload.ArrivalPlan, tenants []workload.Tenant, b sched.Builder) (*engine.Result, error) {
	arrivals, err := workload.BuildArrivals(plan, tenants, s.Engine.Seed, s.Workload)
	if err != nil {
		return nil, err
	}
	cfg := s.Engine
	open := engine.OpenSystem{
		MaxActive: plan.MaxActive,
		Preempt:   plan.Preempt,
		Warmup:    plan.Warmup,
	}
	for _, t := range tenants {
		open.Tenants = append(open.Tenants, engine.TenantPolicy{
			Name:     t.Name,
			Weight:   t.Weight,
			QueueCap: t.QueueCap,
		})
	}
	open.Arrivals = make([]engine.Arrival, len(arrivals))
	for i, a := range arrivals {
		open.Arrivals[i] = engine.Arrival{At: sim.Time(a.At), Tenant: a.Tenant, Spec: a.Spec}
	}
	cfg.Open = open
	run, err := engine.New(cfg, nil, b)
	if err != nil {
		return nil, err
	}
	sem := workerSem
	sem <- struct{}{}
	defer func() { <-sem }()
	return run.Run()
}

// OpenSweepPoint is one (load factor, scheduler) cell of the sweep.
type OpenSweepPoint struct {
	Rho       float64
	Scheduler string

	Arrived    int
	Admitted   int
	Rejected   int
	Preempted  int
	SteadyDone int

	JCTP50        float64 // steady-state job completion time quantiles
	JCTP95        float64
	JCTP99        float64
	QueueDelayP95 float64
	Jain          float64 // fairness over weight-normalized completions
	MapUtil       float64 // steady-state map-slot utilization
}

// OpenSweep runs the open-system workload under every scheduler across
// the load-factor grid, using the default OpenPlan for the setup's
// cluster size.
func OpenSweep(s Setup, rhos []float64) ([]OpenSweepPoint, error) {
	nodes := s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack
	return OpenSweepAt(s, OpenPlan(nodes), rhos)
}

// OpenSweepAt runs the open-system workload under every scheduler
// across the load-factor grid with an explicit admission plan. All
// (rho x scheduler) cells run in parallel; results are in grid order
// and identical for any worker count, since every simulation is
// self-contained and its arrival stream depends only on the seed and
// tenant names.
func OpenSweepAt(s Setup, plan workload.ArrivalPlan, rhos []float64) ([]OpenSweepPoint, error) {
	if len(rhos) == 0 {
		rhos = OpenLoadFactors()
	}
	kinds := SchedulerKinds()
	return runParallel(len(rhos)*len(kinds), func(i int) (OpenSweepPoint, error) {
		rho, k := rhos[i/len(kinds)], kinds[i%len(kinds)]
		tenants := CalibrateRates(OpenTenants(), rho, s)
		res, err := s.RunOpen(plan, tenants, s.BuilderFor(k))
		if err != nil {
			return OpenSweepPoint{}, fmt.Errorf("rho %.1f under %v: %w", rho, k, err)
		}
		p := OpenSweepPoint{
			Rho:       rho,
			Scheduler: k.String(),
			Preempted: res.Preemptions,
			Rejected:  res.RejectedJobs,
			Jain:      res.JainFairness,
			MapUtil:   res.SteadyMapUtilization,
		}
		var delays []float64
		for _, tr := range res.Tenants {
			p.Arrived += tr.Arrived
			p.Admitted += tr.Admitted
			p.SteadyDone += tr.SteadyCompleted
			if tr.SteadyCompleted > 0 {
				delays = append(delays, tr.QueueDelayP95)
			}
		}
		jcts := metrics.NewCDF(res.SteadyJCTs())
		if jcts.N() > 0 {
			p.JCTP50 = jcts.Quantile(0.50)
			p.JCTP95 = jcts.Quantile(0.95)
			p.JCTP99 = jcts.Quantile(0.99)
		}
		// Worst tenant's p95 queueing delay: the SLO the admission layer
		// is supposed to protect.
		for _, d := range delays {
			if d > p.QueueDelayP95 {
				p.QueueDelayP95 = d
			}
		}
		return p, nil
	})
}

// OpenSweepReport renders the sweep as a per-(rho, scheduler) table.
func OpenSweepReport(points []OpenSweepPoint) Report {
	t := metrics.NewTable("Rho", "Scheduler", "Arrived", "Admit/Rej/Pre", "SteadyDone", "JCT p50/p95/p99", "QDelay p95", "Jain", "Map util")
	for _, p := range points {
		jct := "-"
		if p.SteadyDone > 0 && !math.IsNaN(p.JCTP50) {
			jct = fmt.Sprintf("%.0f/%.0f/%.0fs", p.JCTP50, p.JCTP95, p.JCTP99)
		}
		t.AddRow(fmt.Sprintf("%.1f", p.Rho), p.Scheduler, p.Arrived,
			fmt.Sprintf("%d/%d/%d", p.Admitted, p.Rejected, p.Preempted),
			p.SteadyDone, jct, fmt.Sprintf("%.1fs", p.QueueDelayP95),
			fmt.Sprintf("%.3f", p.Jain), fmt.Sprintf("%.2f", p.MapUtil))
	}
	return Report{
		ID:    "opensys",
		Title: "Open-system multi-tenant sweep (3 tenants, weighted admission, preemption)",
		Body:  t.String(),
	}
}
