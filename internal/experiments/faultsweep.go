package experiments

import (
	"fmt"
	"math"

	"mapsched/internal/faults"
	"mapsched/internal/metrics"
	"mapsched/internal/workload"
)

// FaultIntensity is one rung of the fault-sweep grid: a named fault plan
// whose severity scales with the cluster size.
type FaultIntensity struct {
	Name string
	Plan func(nodes int) faults.Plan
}

// FaultIntensities returns the default sweep grid, from a fault-free
// baseline to a regime with concurrent crashes, slowdowns, degraded links,
// a replica loss and a noticeable transient-failure rate. Node indices are
// spread across the cluster so racks share the pain.
func FaultIntensities() []FaultIntensity {
	return []FaultIntensity{
		{Name: "none", Plan: func(nodes int) faults.Plan { return faults.Plan{} }},
		{Name: "light", Plan: func(nodes int) faults.Plan {
			return faults.Plan{
				Crashes:      []faults.NodeCrash{{Node: nodes / 3, At: 20}},
				TaskFailProb: 0.01,
			}
		}},
		{Name: "moderate", Plan: func(nodes int) faults.Plan {
			return faults.Plan{
				Crashes: []faults.NodeCrash{
					{Node: nodes / 3, At: 20},
					{Node: 2 * nodes / 3, At: 60},
				},
				Slowdowns: []faults.NodeSlowdown{
					{Node: nodes / 4, At: 10, Duration: 120, Factor: 3},
				},
				Links: []faults.LinkDegrade{
					{Node: nodes / 2, At: 15, Duration: 90, Factor: 0.2},
				},
				TaskFailProb: 0.03,
			}
		}},
		{Name: "heavy", Plan: func(nodes int) faults.Plan {
			return faults.Plan{
				Crashes: []faults.NodeCrash{
					{Node: nodes / 4, At: 15},
					{Node: nodes / 2, At: 40},
					{Node: 3 * nodes / 4, At: 70},
				},
				Slowdowns: []faults.NodeSlowdown{
					{Node: nodes/4 + 1, At: 10, Duration: 180, Factor: 4},
					{Node: nodes - 2, At: 30, Factor: 2.5},
				},
				Links: []faults.LinkDegrade{
					{Node: nodes/2 + 1, At: 10, Duration: 120, Factor: 0.1},
					{Node: nodes - 3, At: 50, Duration: 60, Factor: 0},
				},
				ReplicaLosses: []faults.ReplicaLoss{{Node: 1, At: 25}},
				TaskFailProb:  0.08,
			}
		}},
	}
}

// FaultSweepPoint is one (intensity, scheduler) cell of the sweep.
type FaultSweepPoint struct {
	Intensity         string
	Scheduler         string
	MeanJCT           float64 // over finished jobs
	Completed         int
	Failed            int
	Unfinished        int
	RelaunchedMaps    int
	RelaunchedReduces int
	AttemptFailures   int
	BlacklistedNodes  int
}

// FaultSweep runs the Wordcount batch under every scheduler across the
// fault-intensity grid. Replication is raised to 3 so a single crash
// cannot orphan input blocks (heavier rungs may still fail jobs — that is
// part of what the sweep measures). All (intensity × scheduler) cells run
// in parallel; results are in grid order and deterministic for any worker
// count, since every simulation is self-contained.
func FaultSweep(s Setup, grid []FaultIntensity) ([]FaultSweepPoint, error) {
	if len(grid) == 0 {
		grid = FaultIntensities()
	}
	s.Workload.Replication = 3
	kinds := SchedulerKinds()
	nodes := s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack
	return runParallel(len(grid)*len(kinds), func(i int) (FaultSweepPoint, error) {
		in, k := grid[i/len(kinds)], kinds[i%len(kinds)]
		sp := s
		sp.Engine.Faults = in.Plan(nodes)
		res, err := sp.RunBatch(workload.Wordcount, sp.BuilderFor(k))
		if err != nil {
			return FaultSweepPoint{}, fmt.Errorf("%s under %v: %w", in.Name, k, err)
		}
		return FaultSweepPoint{
			Intensity:         in.Name,
			Scheduler:         k.String(),
			MeanJCT:           res.JobCompletionCDF().Mean(),
			Completed:         len(res.Jobs) - res.FailedJobs - res.Unfinished,
			Failed:            res.FailedJobs,
			Unfinished:        res.Unfinished,
			RelaunchedMaps:    res.RelaunchedMaps,
			RelaunchedReduces: res.RelaunchedReduces,
			AttemptFailures:   res.AttemptFailures,
			BlacklistedNodes:  res.BlacklistedNodes,
		}, nil
	})
}

// FaultSweepReport renders the sweep as a per-(intensity, scheduler) table.
func FaultSweepReport(points []FaultSweepPoint) Report {
	t := metrics.NewTable("Intensity", "Scheduler", "Mean JCT", "Done/Failed/Unfin", "Relaunched", "Attempt fails", "Blacklisted")
	for _, p := range points {
		jct := "-"
		if p.Completed > 0 && !math.IsNaN(p.MeanJCT) {
			jct = fmt.Sprintf("%.1fs", p.MeanJCT)
		}
		t.AddRow(p.Intensity, p.Scheduler, jct,
			fmt.Sprintf("%d/%d/%d", p.Completed, p.Failed, p.Unfinished),
			fmt.Sprintf("%dm+%dr", p.RelaunchedMaps, p.RelaunchedReduces),
			p.AttemptFailures, p.BlacklistedNodes)
	}
	return Report{
		ID:    "faultsweep",
		Title: "Scheduler robustness across fault intensities (Wordcount, replication 3)",
		Body:  t.String(),
	}
}
