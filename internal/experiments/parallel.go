package experiments

import (
	"runtime"
	"sync"
)

// workerSem gates the number of simulations that run concurrently. The
// gate is acquired only at the leaf of every experiment (RunBatch, where
// a simulation actually executes), never by composite drivers such as
// RunComparison or SeedStudy: composite layers fan out with plain
// goroutines that block cheaply on the leaf gate, so arbitrarily nested
// fan-outs cannot deadlock on a held slot, and total CPU use stays
// bounded by the worker count.
var workerSem = make(chan struct{}, defaultWorkers())

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// SetMaxWorkers bounds the number of concurrently executing simulations
// (default: GOMAXPROCS). Call it before starting runs; changing it while
// experiments are in flight only affects runs that start afterwards.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workerSem = make(chan struct{}, n)
}

// runParallel evaluates fn(0..n-1) concurrently and returns the results
// in slot order, so output ordering is identical to a sequential loop.
// Each simulation is fully self-contained (own engine, RNG, topology),
// which is what makes concurrent execution result-identical to
// sequential execution. The first error by index wins.
func runParallel[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
