package experiments

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/hdfs"
	"mapsched/internal/metrics"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// AblationPoint is one variant's outcome on a fixed workload.
type AblationPoint struct {
	Variant    string
	MeanJCT    float64
	MaxJCT     float64
	RemoteGB   float64 // network bytes moved (map fetch + shuffle)
	Unfinished int
}

func pointFrom(variant string, res *engine.Result) AblationPoint {
	cdf := res.JobCompletionCDF()
	return AblationPoint{
		Variant:    variant,
		MeanJCT:    cdf.Mean(),
		MaxJCT:     cdf.Max(),
		RemoteGB:   (res.MapRemoteBytes + res.ShuffleRemoteBytes) / 1e9,
		Unfinished: res.Unfinished,
	}
}

func renderAblation(id, title string, points []AblationPoint) Report {
	t := metrics.NewTable("Variant", "Mean JCT", "Max JCT", "Network GB", "Unfinished")
	for _, p := range points {
		t.AddRow(p.Variant, fmt.Sprintf("%.1fs", p.MeanJCT), fmt.Sprintf("%.1fs", p.MaxJCT),
			fmt.Sprintf("%.1f", p.RemoteGB), p.Unfinished)
	}
	return Report{ID: id, Title: title, Body: t.String()}
}

// runVariant runs the Wordcount batch (the shuffle-heavy class where the
// estimator and cost model matter most) with a custom scheduler builder.
func (s Setup) runVariant(b sched.Builder) (*engine.Result, error) {
	return s.RunBatch(workload.Wordcount, b)
}

// AblationEstimator compares the paper's progress-scaled estimator against
// the Coupling-style current-size view and the unrealizable oracle
// (Section II-B-2's design choice).
func AblationEstimator(s Setup) ([]AblationPoint, error) {
	ests := []core.Estimator{core.ProgressScaled{}, core.CurrentSize{}, core.Oracle{}}
	return runParallel(len(ests), func(i int) (AblationPoint, error) {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.Estimator = ests[i]
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(ests[i].Name(), res), nil
	})
}

// AblationNetworkCondition compares hop-count distances against
// inverse-transmission-rate distances under background cross-traffic
// (Section II-B-3's design choice).
func AblationNetworkCondition(s Setup) ([]AblationPoint, error) {
	modes := []core.Mode{core.ModeHops, core.ModeNetworkCondition}
	return runParallel(len(modes), func(i int) (AblationPoint, error) {
		sp := s
		sp.Engine.CostMode = modes[i]
		sp.Engine.CrossTraffic = 20
		res, err := sp.runVariant(sp.BuilderFor(Probabilistic))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(modes[i].String(), res), nil
	})
}

// AblationDeterministic compares the probabilistic Bernoulli assignment
// against always assigning the minimum-cost candidate (Section II-C's
// "balance between transmission cost reduction and resource utilization").
func AblationDeterministic(s Setup) ([]AblationPoint, error) {
	dets := []bool{false, true}
	return runParallel(len(dets), func(i int) (AblationPoint, error) {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.Deterministic = dets[i]
		name := "probabilistic"
		if dets[i] {
			name = "deterministic"
		}
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(name, res), nil
	})
}

// AblationReduceSpread toggles Algorithm 2 line 1 (one running reduce of a
// job per node).
func AblationReduceSpread(s Setup) ([]AblationPoint, error) {
	spreads := []bool{true, false}
	return runParallel(len(spreads), func(i int) (AblationPoint, error) {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.SpreadReduces = spreads[i]
		name := "spread-on"
		if !spreads[i] {
			name = "spread-off"
		}
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(name, res), nil
	})
}

// MultiRack runs the three schedulers on a 4-rack topology with
// rack-spanning replicas — the regime the paper's introduction argues
// coarse-grained locality breaks in (replicas across racks, storage on a
// node subset).
func MultiRack(s Setup) ([]AblationPoint, error) {
	sp := s
	sp.Engine.Topology.Racks = 4
	sp.Engine.Topology.NodesPerRack = 15
	sp.Workload.Placement = hdfs.Subset{K: 30} // storage on half the nodes
	kinds := SchedulerKinds()
	return runParallel(len(kinds), func(i int) (AblationPoint, error) {
		res, err := sp.runVariant(sp.BuilderFor(kinds[i]))
		if err != nil {
			return AblationPoint{}, err
		}
		return pointFrom(kinds[i].String(), res), nil
	})
}

// AblationReports runs every ablation — each itself fanning its variants
// out — and renders them in the fixed presentation order.
func AblationReports(s Setup) ([]Report, error) {
	type entry struct {
		id, title string
		run       func(Setup) ([]AblationPoint, error)
	}
	entries := []entry{
		{"abl-estimator", "Estimator: progress-scaled vs current-size vs oracle", AblationEstimator},
		{"abl-netcond", "Distance: hop count vs inverse transmission rate (20 cross-traffic flows)", AblationNetworkCondition},
		{"abl-deterministic", "Assignment: probabilistic vs deterministic min-cost", AblationDeterministic},
		{"abl-spread", "Reduce spreading (Algorithm 2 line 1) on vs off", AblationReduceSpread},
		{"abl-multirack", "Multi-rack, storage-subset cluster (4 racks, Subset-30 placement)", MultiRack},
	}
	return runParallel(len(entries), func(i int) (Report, error) {
		e := entries[i]
		pts, err := e.run(s)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", e.id, err)
		}
		return renderAblation(e.id, e.title, pts), nil
	})
}
