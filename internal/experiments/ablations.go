package experiments

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/hdfs"
	"mapsched/internal/metrics"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// AblationPoint is one variant's outcome on a fixed workload.
type AblationPoint struct {
	Variant    string
	MeanJCT    float64
	MaxJCT     float64
	RemoteGB   float64 // network bytes moved (map fetch + shuffle)
	Unfinished int
}

func pointFrom(variant string, res *engine.Result) AblationPoint {
	cdf := res.JobCompletionCDF()
	return AblationPoint{
		Variant:    variant,
		MeanJCT:    cdf.Mean(),
		MaxJCT:     cdf.Max(),
		RemoteGB:   (res.MapRemoteBytes + res.ShuffleRemoteBytes) / 1e9,
		Unfinished: res.Unfinished,
	}
}

func renderAblation(id, title string, points []AblationPoint) Report {
	t := metrics.NewTable("Variant", "Mean JCT", "Max JCT", "Network GB", "Unfinished")
	for _, p := range points {
		t.AddRow(p.Variant, fmt.Sprintf("%.1fs", p.MeanJCT), fmt.Sprintf("%.1fs", p.MaxJCT),
			fmt.Sprintf("%.1f", p.RemoteGB), p.Unfinished)
	}
	return Report{ID: id, Title: title, Body: t.String()}
}

// runVariant runs the Wordcount batch (the shuffle-heavy class where the
// estimator and cost model matter most) with a custom scheduler builder.
func (s Setup) runVariant(b sched.Builder) (*engine.Result, error) {
	return s.RunBatch(workload.Wordcount, b)
}

// AblationEstimator compares the paper's progress-scaled estimator against
// the Coupling-style current-size view and the unrealizable oracle
// (Section II-B-2's design choice).
func AblationEstimator(s Setup) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, est := range []core.Estimator{core.ProgressScaled{}, core.CurrentSize{}, core.Oracle{}} {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.Estimator = est
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return nil, err
		}
		out = append(out, pointFrom(est.Name(), res))
	}
	return out, nil
}

// AblationNetworkCondition compares hop-count distances against
// inverse-transmission-rate distances under background cross-traffic
// (Section II-B-3's design choice).
func AblationNetworkCondition(s Setup) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, mode := range []core.Mode{core.ModeHops, core.ModeNetworkCondition} {
		sp := s
		sp.Engine.CostMode = mode
		sp.Engine.CrossTraffic = 20
		res, err := sp.runVariant(sp.BuilderFor(Probabilistic))
		if err != nil {
			return nil, err
		}
		out = append(out, pointFrom(mode.String(), res))
	}
	return out, nil
}

// AblationDeterministic compares the probabilistic Bernoulli assignment
// against always assigning the minimum-cost candidate (Section II-C's
// "balance between transmission cost reduction and resource utilization").
func AblationDeterministic(s Setup) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, det := range []bool{false, true} {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.Deterministic = det
		name := "probabilistic"
		if det {
			name = "deterministic"
		}
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return nil, err
		}
		out = append(out, pointFrom(name, res))
	}
	return out, nil
}

// AblationReduceSpread toggles Algorithm 2 line 1 (one running reduce of a
// job per node).
func AblationReduceSpread(s Setup) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, spread := range []bool{true, false} {
		cfg := sched.DefaultProbabilisticConfig()
		cfg.Pmin = s.Pmin
		cfg.SpreadReduces = spread
		name := "spread-on"
		if !spread {
			name = "spread-off"
		}
		res, err := s.runVariant(sched.NewProbabilistic(cfg))
		if err != nil {
			return nil, err
		}
		out = append(out, pointFrom(name, res))
	}
	return out, nil
}

// MultiRack runs the three schedulers on a 4-rack topology with
// rack-spanning replicas — the regime the paper's introduction argues
// coarse-grained locality breaks in (replicas across racks, storage on a
// node subset).
func MultiRack(s Setup) ([]AblationPoint, error) {
	sp := s
	sp.Engine.Topology.Racks = 4
	sp.Engine.Topology.NodesPerRack = 15
	sp.Workload.Placement = hdfs.Subset{K: 30} // storage on half the nodes
	var out []AblationPoint
	for _, k := range SchedulerKinds() {
		res, err := sp.runVariant(sp.BuilderFor(k))
		if err != nil {
			return nil, err
		}
		out = append(out, pointFrom(k.String(), res))
	}
	return out, nil
}

// AblationReports runs every ablation and renders them.
func AblationReports(s Setup) ([]Report, error) {
	var reports []Report
	type entry struct {
		id, title string
		run       func(Setup) ([]AblationPoint, error)
	}
	for _, e := range []entry{
		{"abl-estimator", "Estimator: progress-scaled vs current-size vs oracle", AblationEstimator},
		{"abl-netcond", "Distance: hop count vs inverse transmission rate (20 cross-traffic flows)", AblationNetworkCondition},
		{"abl-deterministic", "Assignment: probabilistic vs deterministic min-cost", AblationDeterministic},
		{"abl-spread", "Reduce spreading (Algorithm 2 line 1) on vs off", AblationReduceSpread},
		{"abl-multirack", "Multi-rack, storage-subset cluster (4 racks, Subset-30 placement)", MultiRack},
	} {
		pts, err := e.run(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		reports = append(reports, renderAblation(e.id, e.title, pts))
	}
	return reports, nil
}
