package epochbump_test

import (
	"testing"

	"mapsched/internal/lint/epochbump"
	"mapsched/internal/lint/linttest"
)

func TestEpochbump(t *testing.T) {
	linttest.Run(t, epochbump.Analyzer, "epoch")
}
