// Package epochbump implements the schedlint analyzer enforcing the
// cost-cache invalidation contract: every function that mutates
// epoch-guarded state must bump an epoch counter.
//
// The incremental cost caches (core.MapCoster / ReduceCoster) are only
// sound because the quantities they derive are constant between equal
// epochs: FlowNet bumps its epoch on every rate recomputation, and
// hdfs.Store bumps its epoch on every replica-set mutation. A mutation
// path that forgets the bump silently serves stale costs — the exact
// bug class this analyzer removes.
//
// Fields covered by the contract carry a `//lint:epoch-guarded` marker
// comment on their declaration (link.capacity and FlowNet.alpha in
// internal/topology, Block.Replicas in internal/hdfs). The analyzer
// then checks, per function and transitively through calls to other
// functions of the same package, that any write to a guarded field
// reaches an increment or assignment of a field named "epoch".
package epochbump

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "epochbump"

// Analyzer is the epochbump pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require functions mutating //lint:epoch-guarded fields to bump an epoch counter (directly or via an intra-package callee)",
	Run:  run,
}

// funcInfo accumulates per-function facts for the fixed-point pass.
type funcInfo struct {
	decl    *ast.FuncDecl
	writes  []guardedWrite // writes to guarded fields
	bumps   bool           // writes an epoch field directly
	callees []*types.Func  // same-package functions it calls
}

type guardedWrite struct {
	pos   ast.Node
	field *types.Var
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}

	guarded, epochs := collectFields(pass)
	if len(guarded) == 0 {
		return nil, nil
	}

	infos := map[*types.Func]*funcInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.FileAllows(f, Name) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = analyzeFunc(pass, fd, guarded, epochs)
			order = append(order, fn)
		}
	}

	// Propagate "bumps an epoch" backwards over the intra-package call
	// graph to a fixed point: a function bumps if it writes an epoch
	// field itself or calls any function that (transitively) does.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			info := infos[fn]
			if info.bumps {
				continue
			}
			for _, callee := range info.callees {
				if ci, ok := infos[callee]; ok && ci.bumps {
					info.bumps = true
					changed = true
					break
				}
			}
		}
	}

	for _, fn := range order {
		info := infos[fn]
		if info.bumps {
			continue
		}
		for _, w := range info.writes {
			pass.Reportf(w.pos.Pos(),
				"%s writes epoch-guarded field %q without bumping an epoch (directly or via a callee in this package); caches keyed on the epoch will serve stale values",
				fn.Name(), w.field.Name())
		}
	}
	return nil, nil
}

// collectFields gathers the //lint:epoch-guarded field objects and all
// fields named "epoch" declared in this package.
func collectFields(pass *analysis.Pass) (guarded, epochs map[*types.Var]bool) {
	guarded = map[*types.Var]bool{}
	epochs = map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mark := directive.IsEpochGuarded(field)
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if mark {
						guarded[v] = true
					}
					if name.Name == "epoch" {
						epochs[v] = true
					}
				}
			}
			return true
		})
	}
	return guarded, epochs
}

// analyzeFunc records the guarded-field writes, direct epoch bumps, and
// same-package callees of one function declaration (including any
// function literals it contains, which execute on its behalf).
func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded, epochs map[*types.Var]bool) *funcInfo {
	info := &funcInfo{decl: fd}
	note := func(lhs ast.Expr, at ast.Node) {
		// Peel index/deref/paren layers so element writes through a
		// guarded field (s.caps[i] = c) are seen too.
		for {
			switch e := lhs.(type) {
			case *ast.IndexExpr:
				lhs = e.X
				continue
			case *ast.StarExpr:
				lhs = e.X
				continue
			case *ast.ParenExpr:
				lhs = e.X
				continue
			}
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
		if !ok {
			return
		}
		if guarded[v] {
			info.writes = append(info.writes, guardedWrite{pos: at, field: v})
		}
		if epochs[v] {
			info.bumps = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs, n)
			}
		case *ast.IncDecStmt:
			note(n.X, n)
		case *ast.CallExpr:
			var id *ast.Ident
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id == nil {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
				info.callees = append(info.callees, fn)
			}
		}
		return true
	})
	return info
}
