// Package epoch exercises the epochbump analyzer: every write to a
// //lint:epoch-guarded field must reach an epoch bump, directly or
// through intra-package calls.
package epoch

type store struct {
	caps  []float64 //lint:epoch-guarded capacity changes invalidate cached rates
	alpha float64   //lint:epoch-guarded
	name  string    // unguarded
	epoch uint64
}

func (s *store) SetCapDirect(i int, c float64) {
	s.caps[i] = c
	s.epoch++
}

func (s *store) SetCapViaCallee(i int, c float64) {
	s.caps[i] = c
	s.invalidate()
}

func (s *store) SetCapTransitive(i int, c float64) {
	s.caps[i] = c
	s.refresh()
}

func (s *store) refresh()    { s.invalidate() }
func (s *store) invalidate() { s.epoch++ }

func (s *store) SetCapForgotten(i int, c float64) {
	s.caps[i] = c // want `SetCapForgotten writes epoch-guarded field "caps" without bumping an epoch`
}

func (s *store) SetAlphaForgotten(a float64) {
	if s.alpha == a {
		return
	}
	s.alpha = a // want `SetAlphaForgotten writes epoch-guarded field "alpha" without bumping an epoch`
}

func (s *store) SetAlpha(a float64) {
	s.alpha = a
	s.epoch++
}

func (s *store) Rename(n string) {
	s.name = n // unguarded fields need no bump
}

func (s *store) ReplaceCaps(cs []float64) {
	s.caps = cs // want `ReplaceCaps writes epoch-guarded field "caps" without bumping an epoch`
}

func (s *store) AppendCap(c float64) {
	s.caps = append(s.caps, c)
	s.epoch++
}
