// Package lint assembles the schedlint analyzer suite: the static
// contracts the simulator's determinism guarantees rest on. See
// DESIGN.md §12 for the invariant each analyzer encodes.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/epochbump"
	"mapsched/internal/lint/nodeterminism"
	"mapsched/internal/lint/obsvocab"
	"mapsched/internal/lint/optflag"
	"mapsched/internal/lint/poolreset"
)

// Analyzers returns the full schedlint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		epochbump.Analyzer,
		poolreset.Analyzer,
		obsvocab.Analyzer,
		optflag.Analyzer,
	}
}
