// Package lint assembles the schedlint analyzer suite: the static
// contracts the simulator's determinism, concurrency, and persistence
// guarantees rest on. See DESIGN.md §12 for the original determinism
// contracts and §17 for the concurrency/persistence vocabulary the v2
// analyzers enforce.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/deltajournal"
	"mapsched/internal/lint/epochbump"
	"mapsched/internal/lint/errcmp"
	"mapsched/internal/lint/lockheld"
	"mapsched/internal/lint/nodeterminism"
	"mapsched/internal/lint/obsvocab"
	"mapsched/internal/lint/optflag"
	"mapsched/internal/lint/poolreset"
	"mapsched/internal/lint/snapshotfree"
)

// Analyzers returns the full schedlint suite in a fixed order: the
// five determinism/cache contracts from PRs 4 and 6 first, then the
// four concurrency/persistence contracts added with the crash-safe
// placement service.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		epochbump.Analyzer,
		poolreset.Analyzer,
		obsvocab.Analyzer,
		optflag.Analyzer,
		lockheld.Analyzer,
		snapshotfree.Analyzer,
		deltajournal.Analyzer,
		errcmp.Analyzer,
	}
}
