// Package pool exercises the poolreset analyzer: every //lint:pooled
// release site must reset all fields of the named type, and free-list
// appends outside a marked release site are reported.
package pool

type record struct {
	id    int
	buf   []byte
	ready bool
	items map[int]bool // cleared in place; storage persists
	onFin func()       //lint:pooled-keep bound once, survives recycling
}

type pool struct {
	freeRecords []*record
	freeSlots   []int // not an object free list: plain values
}

// releaseFull resets every field individually; the delete loop counts as
// the reset of the persistent map, and onFin is keep-exempt.
func (p *pool) releaseFull(r *record) {
	for k := range r.items {
		delete(r.items, k)
	}
	//lint:pooled record
	r.id = 0
	r.buf = r.buf[:0]
	r.ready = false
	p.freeRecords = append(p.freeRecords, r)
}

// releaseWhole resets via a whole-struct store: all fields covered at
// once, persistent state rethreaded explicitly.
func (p *pool) releaseWhole(r *record) {
	//lint:pooled record
	*r = record{buf: r.buf[:0], items: r.items, onFin: r.onFin}
	p.freeRecords = append(p.freeRecords, r)
}

// releasepartial forgets buf and the items map.
func (p *pool) releasePartial(r *record) {
	//lint:pooled record // want `pooled record release does not reset field\(s\) buf, items`
	r.id = 0
	r.ready = false
	p.freeRecords = append(p.freeRecords, r)
}

// releaseUnmarked puts a record back without declaring itself a release
// site, dodging the reset check.
func (p *pool) releaseUnmarked(r *record) {
	r.id = 0
	p.freeRecords = append(p.freeRecords, r) // want `append to free list freeRecords in a function without a //lint:pooled reset marker`
}

// releaseTypo names a type that does not exist.
func (p *pool) releaseTypo(r *record) {
	//lint:pooled rekord // want `//lint:pooled names "rekord", which is not a type in this package`
	r.id = 0
	r.buf = nil
	r.ready = false
	p.freeRecords = append(p.freeRecords, r)
}

// trackSlot appends to a slice of plain ints whose name happens to start
// with "free": not an object free list, no marker needed.
func (p *pool) trackSlot(i int) {
	p.freeSlots = append(p.freeSlots, i)
}
