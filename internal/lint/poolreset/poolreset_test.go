package poolreset_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/poolreset"
)

func TestPoolreset(t *testing.T) {
	linttest.Run(t, poolreset.Analyzer, "pool")
}
