// Package poolreset implements the schedlint analyzer enforcing the
// free-list hygiene contract: every pooled object is fully reset before
// it is put back on a free list.
//
// The simulator pools its hot-path records (sim.Event, topology.Flow,
// the engine's attempt/run/bucket/flight records) to keep steady-state
// allocation near zero. Pooling is only sound when a release clears
// every field of the record: a recycled object carrying a stale event
// handle, callback, or half-cleared map silently corrupts a later,
// unrelated life — the nastiest bug class this codebase has, because
// the symptom appears far from the cause and only under reuse.
//
// Two directives drive the analyzer:
//
//	//lint:pooled <Type>
//
// as a standalone comment inside a function body marks that function as
// the release site for struct type <Type>. The analyzer then requires
// the function to reset every field of the type: a direct field
// assignment (x.f = 0, x.f = x.f[:0]), a whole-struct assignment
// (*x = Type{...}, which covers all fields at once), or an in-place map
// clear via delete(x.f, k) all count.
//
//	//lint:pooled-keep
//
// on a struct field declaration exempts the field: it deliberately
// persists across lives (bound-once callbacks, reusable map storage).
// The exemption is declaration-site on purpose — the field's comment is
// where the persistence contract is documented.
//
// The analyzer also closes the forgot-the-marker hole: any append to a
// free list (an identifier or field whose name is "free" or starts with
// "free", holding a slice of pointers) in a function without a
// //lint:pooled marker is reported, so a new release path cannot skip
// the contract by simply not declaring itself.
package poolreset

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "poolreset"

// Analyzer is the poolreset pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require //lint:pooled release functions to reset every field of the pooled type before the free-list put",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	keep := collectKeepFields(pass)
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.FileAllows(f, Name) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			markers := bodyMarkers(f, fd)
			for _, m := range markers {
				checkReset(pass, fd, m, keep)
			}
			if len(markers) == 0 {
				flagUnmarkedPuts(pass, fd)
			}
		}
	}
	return nil, nil
}

// marker is one //lint:pooled directive found inside a function body.
type marker struct {
	pos      token.Pos
	typeName string
}

// bodyMarkers returns the //lint:pooled markers positioned inside the
// function's body. Comments are not attached to statements in the AST,
// so they are matched by source range.
func bodyMarkers(f *ast.File, fd *ast.FuncDecl) []marker {
	var out []marker
	for _, cg := range f.Comments {
		if cg.Pos() < fd.Body.Pos() || cg.End() > fd.Body.End() {
			continue
		}
		for _, c := range cg.List {
			if name := directive.ParsePooled(c.Text); name != "" {
				out = append(out, marker{pos: c.Pos(), typeName: name})
			}
		}
	}
	return out
}

// collectKeepFields gathers the field objects carrying //lint:pooled-keep.
func collectKeepFields(pass *analysis.Pass) map[*types.Var]bool {
	keep := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !directive.IsPooledKeep(field) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						keep[v] = true
					}
				}
			}
			return true
		})
	}
	return keep
}

// checkReset verifies that the function resets every non-exempt field of
// the marker's type somewhere in its body.
func checkReset(pass *analysis.Pass, fd *ast.FuncDecl, m marker, keep map[*types.Var]bool) {
	obj, _ := pass.Pkg.Scope().Lookup(m.typeName).(*types.TypeName)
	if obj == nil {
		pass.Reportf(m.pos, "//lint:pooled names %q, which is not a type in this package", m.typeName)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(m.pos, "//lint:pooled names %q, which is not a struct type", m.typeName)
		return
	}
	want := map[*types.Var]bool{}
	var order []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if keep[fv] {
			continue
		}
		want[fv] = true
		order = append(order, fv)
	}

	covered := map[*types.Var]bool{}
	wholeStruct := false
	noteField := func(expr ast.Expr) {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok && want[v] {
			covered[v] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// *x = Type{...} (or any whole-value store) resets every
				// field in one statement.
				if tv, ok := pass.TypesInfo.Types[lhs]; ok && types.Identical(tv.Type, obj.Type()) {
					wholeStruct = true
					continue
				}
				noteField(lhs)
			}
		case *ast.CallExpr:
			// delete(x.f, k) clears a persistent map field in place; the
			// release loops count as the reset of that field.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				noteField(n.Args[0])
			}
		}
		return true
	})
	if wholeStruct {
		return
	}
	var missing []string
	for _, fv := range order {
		if !covered[fv] {
			missing = append(missing, fv.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(m.pos,
			"pooled %s release does not reset field(s) %s; a recycled object would carry state from its previous life (reset them, or mark deliberately persistent fields //lint:pooled-keep)",
			m.typeName, strings.Join(missing, ", "))
	}
}

// flagUnmarkedPuts reports free-list appends in functions that carry no
// //lint:pooled marker: a release path must declare itself so the reset
// check applies to it.
func flagUnmarkedPuts(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) < 2 {
			return true
		}
		dst := call.Args[0]
		if !isFreeListName(dst) || !isPtrSlice(pass, dst) {
			return true
		}
		pass.Reportf(call.Pos(),
			"append to free list %s in a function without a //lint:pooled reset marker; declare the release site so the full-reset check applies",
			exprName(dst))
		return true
	})
}

// isFreeListName matches the naming convention for pool free lists: an
// identifier or selector whose terminal name is "free" or "free"-prefixed.
func isFreeListName(expr ast.Expr) bool {
	name := exprName(expr)
	return name == "free" || strings.HasPrefix(name, "free")
}

func exprName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// isPtrSlice reports whether the expression is a slice of pointers — the
// shape of every object free list — so unrelated "free*" slices of plain
// values (e.g. free slot counts) do not trip the naming heuristic.
func isPtrSlice(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, isPtr := sl.Elem().Underlying().(*types.Pointer)
	return isPtr
}
