// Package djour exercises the journal symmetry contract, including
// the PR 8 regression class: a decode switch missing a newly added op
// constant, and a delta method that forgets to journal.
package djour

//lint:journal-ops
type Op uint8

const (
	OpAcquire Op = iota
	OpRelease
	OpOffline
	OpNoop // want `journal op "OpNoop" of "Op" is declared but never encoded`
)

type record struct {
	op  Op
	arg int
}

//lint:journaled
type svc struct {
	log []record
}

//lint:journal-append
func (s *svc) journal(op Op, arg int) {
	s.log = append(s.log, record{op: op, arg: arg})
}

func (s *svc) ApplyAcquire(n int) { s.journal(OpAcquire, n) }
func (s *svc) ApplyRelease(n int) { s.journal(OpRelease, n) }

// ApplyOffline reaches the append transitively through a helper.
func (s *svc) ApplyOffline(n int) { s.offline(n) }
func (s *svc) offline(n int)      { s.journal(OpOffline, n) }

func (s *svc) ApplyForgot(n int) { // want `delta method "ApplyForgot" of journaled type "svc" never reaches a //lint:journal-append helper`
	s.log = s.log[:0]
}

// Suppressed false positive: a read-only refresh has no delta to
// journal, recorded with a scoped allow.
//
//lint:allow deltajournal read-only refresh, no delta to journal
func (s *svc) UpdateView(n int) {}

// decode reproduces the PR 8 missing-decode-case bug class: OpNoop
// was added to the vocabulary but not here.
//
//lint:journal-exhaustive Op
func decode(r record) int {
	switch r.op { // want `journal-exhaustive switch over "Op" misses OpNoop`
	case OpAcquire:
		return 1
	case OpRelease:
		return 2
	case OpOffline:
		return 3
	}
	return 0
}

// apply legitimately skips OpNoop via the except clause.
//
//lint:journal-exhaustive Op except OpNoop
func apply(r record) int {
	switch r.op {
	case OpAcquire, OpRelease:
		return 1
	case OpOffline:
		return 2
	}
	return 0
}

//lint:journal-exhaustive Op
func noSwitch(r record) int { // want `noSwitch declares //lint:journal-exhaustive Op but contains no switch over it`
	return int(r.op)
}
