package deltajournal_test

import (
	"testing"

	"mapsched/internal/lint/deltajournal"
	"mapsched/internal/lint/linttest"
)

func TestDeltajournal(t *testing.T) { linttest.Run(t, deltajournal.Analyzer, "djour") }
