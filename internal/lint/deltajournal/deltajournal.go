// Package deltajournal implements the schedlint analyzer enforcing
// the journal symmetry contract (DESIGN.md §16): the crash-safe
// placement service is only recoverable if the journal op vocabulary
// and the delta vocabulary stay in lockstep. PR 8 made the "new delta
// added without journal/replay coverage" bug class possible — a new
// Apply* method that forgets to journal, or a new Op constant missing
// from the decode or replay switch, silently loses state on recovery.
// This analyzer closes all three gaps:
//
//   - Every constant of a type marked `//lint:journal-ops` must be
//     used somewhere outside decode switches — an op that only ever
//     appears in case clauses (or nowhere) has no encode path.
//   - Every function marked `//lint:journal-exhaustive <Type>
//     [except C1,C2]` must switch over the op type and cover every
//     constant not listed as an exception; a `default` clause does
//     not count as coverage.
//   - Every Apply*/Update* method of a type marked `//lint:journaled`
//     must reach (directly or through intra-package calls, resolved
//     to a fixed point like epochbump) a function marked
//     `//lint:journal-append`; read-only exceptions carry a scoped
//     `//lint:allow deltajournal` with a justification.
package deltajournal

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "deltajournal"

// Analyzer is the deltajournal pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require journal Op enums to be encoded, decode/apply switches to be exhaustive, and //lint:journaled delta methods to reach a //lint:journal-append helper",
	Run:  run,
}

type checker struct {
	pass      *analysis.Pass
	opsTypes  map[*types.TypeName]bool
	opConsts  map[*types.TypeName][]*types.Const // declaration order
	journaled map[*types.TypeName]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		opsTypes:  map[*types.TypeName]bool{},
		opConsts:  map[*types.TypeName][]*types.Const{},
		journaled: map[*types.TypeName]bool{},
	}
	c.collectTypes()
	if len(c.opsTypes) == 0 && len(c.journaled) == 0 {
		return nil, nil
	}
	c.collectConsts()
	c.checkEncodeCoverage()
	c.checkExhaustiveSwitches()
	c.checkDeltaMethods()
	return nil, nil
}

func (c *checker) files() []*ast.File {
	var out []*ast.File
	for _, f := range c.pass.Files {
		if scope.IsTestFile(c.pass, f) || directive.HeaderAllows(f, Name) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func (c *checker) collectTypes() {
	for _, f := range c.files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if directive.IsJournalOps(gd.Doc, ts.Doc, ts.Comment) {
					c.opsTypes[tn] = true
				}
				if directive.IsJournaled(gd.Doc, ts.Doc, ts.Comment) {
					c.journaled[tn] = true
				}
			}
		}
	}
}

// collectConsts gathers, in declaration order, the package's constants
// of each journal-ops type.
func (c *checker) collectConsts() {
	for _, f := range c.files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					cst, ok := c.pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					if tn := c.opsTypeOf(cst.Type()); tn != nil {
						c.opConsts[tn] = append(c.opConsts[tn], cst)
					}
				}
			}
		}
	}
}

func (c *checker) opsTypeOf(t types.Type) *types.TypeName {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if c.opsTypes[named.Obj()] {
		return named.Obj()
	}
	return nil
}

// checkEncodeCoverage flags op constants whose only uses are decode
// case clauses: they have no encode path, so the op can never reach
// the journal.
func (c *checker) checkEncodeCoverage() {
	inCase := map[*ast.Ident]bool{}
	encoded := map[*types.Const]bool{}
	for _, f := range c.files() {
		ast.Inspect(f, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ast.Inspect(e, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							inCase[id] = true
						}
						return true
					})
				}
			}
			return true
		})
	}
	for _, f := range c.files() {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inCase[id] {
				return true
			}
			cst, ok := c.pass.TypesInfo.Uses[id].(*types.Const)
			if !ok {
				return true
			}
			if c.opsTypeOf(cst.Type()) != nil {
				encoded[cst] = true
			}
			return true
		})
	}
	for tn, consts := range c.opConsts {
		for _, cst := range consts {
			if !encoded[cst] {
				c.pass.Reportf(cst.Pos(),
					"journal op %q of %q is declared but never encoded: its only uses are decode case clauses (or none at all)",
					cst.Name(), tn.Name())
			}
		}
	}
}

// checkExhaustiveSwitches verifies every //lint:journal-exhaustive
// function covers the full op vocabulary minus its exceptions.
func (c *checker) checkExhaustiveSwitches() {
	for _, f := range c.files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			typeName, except := directive.JournalExhaustive(fd.Doc)
			if typeName == "" || directive.DeclAllows(fd.Doc, Name) {
				continue
			}
			var target *types.TypeName
			for tn := range c.opsTypes {
				if tn.Name() == typeName {
					target = tn
					break
				}
			}
			if target == nil {
				c.pass.Reportf(fd.Name.Pos(),
					"//lint:journal-exhaustive names %q, which is not a //lint:journal-ops type in this package", typeName)
				continue
			}
			covered := map[*types.Const]bool{}
			var firstSwitch *ast.SwitchStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				if c.opsTypeOf(c.pass.TypesInfo.TypeOf(sw.Tag)) != target {
					return true
				}
				if firstSwitch == nil {
					firstSwitch = sw
				}
				for _, cc := range sw.Body.List {
					clause := cc.(*ast.CaseClause)
					for _, e := range clause.List {
						ast.Inspect(e, func(m ast.Node) bool {
							if id, ok := m.(*ast.Ident); ok {
								if cst, ok := c.pass.TypesInfo.Uses[id].(*types.Const); ok {
									covered[cst] = true
								}
							}
							return true
						})
					}
				}
				return true
			})
			if firstSwitch == nil {
				c.pass.Reportf(fd.Name.Pos(),
					"%s declares //lint:journal-exhaustive %s but contains no switch over it", fd.Name.Name, typeName)
				continue
			}
			excepted := map[string]bool{}
			for _, e := range except {
				excepted[e] = true
			}
			var missing []string
			for _, cst := range c.opConsts[target] {
				if !covered[cst] && !excepted[cst.Name()] {
					missing = append(missing, cst.Name())
				}
			}
			if len(missing) > 0 {
				c.pass.Reportf(firstSwitch.Pos(),
					"journal-exhaustive switch over %q misses %s; a recovered journal containing that op would be dropped",
					target.Name(), strings.Join(missing, ", "))
			}
		}
	}
}

// checkDeltaMethods requires every Apply*/Update* method of a
// //lint:journaled type to reach a //lint:journal-append helper,
// propagated to a fixed point over the intra-package call graph.
func (c *checker) checkDeltaMethods() {
	if len(c.journaled) == 0 {
		return
	}
	type funcInfo struct {
		decl    *ast.FuncDecl
		reaches bool
		callees []*types.Func
	}
	infos := map[*types.Func]*funcInfo{}
	var order []*types.Func
	for _, f := range c.files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{decl: fd, reaches: directive.IsJournalAppend(fd.Doc)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				}
				if id == nil {
					return true
				}
				if callee, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok && callee.Pkg() == c.pass.Pkg {
					info.callees = append(info.callees, callee)
				}
				return true
			})
			infos[fn] = info
			order = append(order, fn)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			info := infos[fn]
			if info.reaches {
				continue
			}
			for _, callee := range info.callees {
				if ci, ok := infos[callee]; ok && ci.reaches {
					info.reaches = true
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range order {
		info := infos[fn]
		fd := info.decl
		if info.reaches || fd.Recv == nil || directive.DeclAllows(fd.Doc, Name) {
			continue
		}
		name := fd.Name.Name
		if !strings.HasPrefix(name, "Apply") && !strings.HasPrefix(name, "Update") {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recvT := sig.Recv().Type()
		if p, ok := recvT.Underlying().(*types.Pointer); ok {
			recvT = p.Elem()
		}
		named, ok := recvT.(*types.Named)
		if !ok || !c.journaled[named.Obj()] {
			continue
		}
		c.pass.Reportf(fd.Name.Pos(),
			"delta method %q of journaled type %q never reaches a //lint:journal-append helper; the delta would be lost on recovery",
			name, named.Obj().Name())
	}
}
