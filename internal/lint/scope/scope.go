// Package scope decides which packages and files the schedlint
// analyzers apply to. The determinism contracts bind the simulation
// packages and the binaries built on them; the lint machinery itself,
// the examples, and test files are exempt.
package scope

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// module is the path prefix identifying this repository's packages.
// Packages outside the module (in particular the self-contained testdata
// packages the analyzer unit tests run on) are always in scope, so the
// analyzers can be exercised without recreating the module layout.
const module = "mapsched"

// PackageInScope reports whether the analyzers should lint the package
// with the given import path: everything in the module except the lint
// tooling itself and the illustrative examples, plus any non-module
// (testdata) package.
func PackageInScope(path string) bool {
	// go/types names external test packages "pkg_test" and unitchecker
	// may suffix the test variant; normalize before matching.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if path != module && !strings.HasPrefix(path, module+"/") {
		return true
	}
	switch {
	case strings.HasPrefix(path, module+"/internal/lint"),
		strings.HasPrefix(path, module+"/examples"),
		strings.HasPrefix(path, module+"/third_party"):
		return false
	}
	return true
}

// IsTestFile reports whether f was parsed from a _test.go file. The
// determinism contracts constrain simulation and emission code, not the
// tests asserting on it (which freely use maps, wall clocks and t.Logf).
func IsTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go")
}
