// Package nodeterminism implements the schedlint analyzer that keeps
// wall-clock time, the global math/rand stream, and unordered map
// iteration out of the simulation packages.
//
// The simulator's contract is byte-determinism: a fixed seed must
// reproduce a bit-identical event log and bit-identical experiment
// tables. Three bug classes silently break that contract:
//
//   - time.Now / time.Since smuggle wall-clock time into simulated
//     state or emitted output;
//   - package-level math/rand draws pull from the unseeded (Go 1.20+:
//     randomly seeded) global stream instead of the run's sim.RNG;
//   - `for range m` over a map observes Go's randomized iteration
//     order; appending to an outer slice or emitting events inside
//     such a loop captures that order unless the result is sorted
//     immediately afterwards.
//
// A file can opt out with a file-level `//lint:allow nodeterminism`
// directive — used by internal/sim/rng.go (the one sanctioned
// math/rand consumer, wrapping a seeded source) and by cmd binaries
// that print wall-clock progress to stderr.
package nodeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "nodeterminism"

// Analyzer is the nodeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "forbid wall-clock reads, global math/rand draws, and map-iteration order escaping into simulation state or output",
	Run:  run,
}

// forbiddenTime are the time package functions that read or depend on
// the wall clock. Duration constants and arithmetic remain fine.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the math/rand (and rand/v2) constructors that build
// explicitly seeded generators; every other package-level function
// draws from or reseeds the global stream.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// emitters are method names whose call inside a map-range loop pushes
// per-iteration data to an observer, writer or stream in map order.
var emitters = map[string]bool{
	"Emit": true, "Observe": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.FileAllows(f, Name) {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// blocks tracks the enclosing statement lists so a map-range loop can
	// look at the statements that follow it (the sort-after idiom).
	var blocks []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			blocks = append(blocks, n)
			for _, st := range n.List {
				ast.Inspect(st, walk)
			}
			blocks = blocks[:len(blocks)-1]
			return false
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, n, enclosing(blocks))
				}
			}
		}
		return true
	}
	ast.Inspect(f, walk)
}

func enclosing(blocks []*ast.BlockStmt) *ast.BlockStmt {
	if len(blocks) == 0 {
		return nil
	}
	return blocks[len(blocks)-1]
}

// pkgFunc returns the package path and name of the package-level
// function called by fun, or "" when fun is not one (methods,
// builtins, conversions, locals).
func pkgFunc(pass *analysis.Pass, fun ast.Expr) (pkg, name string) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := pkgFunc(pass, call.Fun)
	switch pkg {
	case "time":
		if forbiddenTime[name] {
			pass.Reportf(call.Pos(), "call to time.%s reads the wall clock in a deterministic package; use the simulation clock (sim.Engine.Now) or move the timing to a //lint:allow-annotated entry point", name)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[name] {
			pass.Reportf(call.Pos(), "call to global %s.%s draws from the unseeded process-wide stream; use the run's seeded *sim.RNG", pathBase(pkg), name)
		}
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// checkMapRange flags order-capturing operations inside a range over a
// map: appends (or string +=) to variables declared outside the loop
// whose result is not sorted in the statements following the loop, any
// emitter method call, fmt printing, and channel sends.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, parent *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkOrderCapturingAssign(pass, n, rng, parent)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration publishes values in nondeterministic map order; iterate sorted keys instead")
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod && emitters[sel.Sel.Name] {
					pass.Reportf(n.Pos(), "%s call inside map iteration emits in nondeterministic map order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
			if pkg, name := pkgFunc(pass, n.Fun); pkg == "fmt" && name != "Sprintf" && name != "Errorf" && name != "Sprint" && name != "Sprintln" {
				pass.Reportf(n.Pos(), "fmt.%s inside map iteration prints in nondeterministic map order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// checkOrderCapturingAssign handles `x = append(x, ...)` and `s += ...`
// targeting a variable declared outside the loop.
func checkOrderCapturingAssign(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, parent *ast.BlockStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	target := rootObject(pass, as.Lhs[0])
	if target == nil || declaredWithin(target, rng) {
		return
	}
	verb := ""
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(as.Rhs) == 1 && isAppendCall(pass, as.Rhs[0]) {
			verb = "append to"
		}
	case token.ADD_ASSIGN:
		if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				verb = "string concatenation into"
			}
		}
	}
	if verb == "" {
		return
	}
	if sortedAfter(pass, rng, parent, target) {
		return
	}
	pass.Reportf(as.Pos(), "%s %s inside map iteration captures nondeterministic map order; sort the result immediately after the loop or iterate sorted keys", verb, target.Name())
}

func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the variable an lvalue ultimately writes: the
// identifier itself, or the field object of a selector (appending to a
// struct field in map order is just as order-capturing).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return rootObject(pass, e.X)
	}
	return nil
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// sortedAfter reports whether a statement after rng in its enclosing
// block sorts the captured variable: a call to any sort.* or slices.*
// function that mentions the variable. This recognizes the canonical
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// idiom (and sort.Slice / slices.Sort / slices.SortFunc variants).
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, parent *ast.BlockStmt, obj types.Object) bool {
	if parent == nil {
		return false
	}
	idx := -1
	for i, st := range parent.List {
		if st == rng {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range parent.List[idx+1:] {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if pkg, _ := pkgFunc(pass, call.Fun); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
