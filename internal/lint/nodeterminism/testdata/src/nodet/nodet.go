// Package nodet exercises the nodeterminism analyzer: wall-clock
// reads, global math/rand draws, and map-iteration order escaping
// into collected or emitted output.
package nodet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func clock() time.Duration {
	t0 := time.Now()      // want `call to time\.Now reads the wall clock`
	time.Sleep(1)         // want `call to time\.Sleep reads the wall clock`
	return time.Since(t0) // want `call to time\.Since reads the wall clock`
}

func durationsAreFine() time.Duration {
	return 3 * time.Millisecond
}

// --- global math/rand ---

func globalDraws() {
	_ = rand.Intn(5)                   // want `call to global rand\.Intn draws from the unseeded process-wide stream`
	_ = rand.Float64()                 // want `call to global rand\.Float64 draws from the unseeded process-wide stream`
	rand.Shuffle(3, func(i, j int) {}) // want `call to global rand\.Shuffle`
}

func seededIsFine() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(5)
}

// --- map iteration order ---

func escapesOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration captures nondeterministic map order`
	}
	return keys
}

func sortedAfterIsFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceIsFine(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func innerAppendIsFine(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

type collector struct {
	items []string
}

func fieldEscape(c *collector, m map[string]int) {
	for k := range m {
		c.items = append(c.items, k) // want `append to items inside map iteration captures nondeterministic map order`
	}
}

func fieldSortedIsFine(c *collector, m map[string]int) {
	for k := range m {
		c.items = append(c.items, k)
	}
	sort.Strings(c.items)
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into s inside map iteration captures nondeterministic map order`
	}
	return s
}

type stream struct{}

func (stream) Emit(string)    {}
func (stream) Observe(string) {}

func emits(st stream, m map[string]int, ch chan string) {
	for k := range m {
		st.Emit(k)     // want `Emit call inside map iteration emits in nondeterministic map order`
		st.Observe(k)  // want `Observe call inside map iteration emits in nondeterministic map order`
		fmt.Println(k) // want `fmt\.Println inside map iteration prints in nondeterministic map order`
		ch <- k        // want `channel send inside map iteration publishes values in nondeterministic map order`
	}
}

func sprintfAloneIsFine(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(fmt.Sprintf("%s", k))
	}
	return n
}
