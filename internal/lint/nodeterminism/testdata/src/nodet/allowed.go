// This file opts out of the nodeterminism analyzer wholesale — the
// escape hatch used by the seeded RNG wrapper and by cmd binaries that
// print wall-clock progress to stderr.
//
//lint:allow nodeterminism file-scoped escape hatch under test
package nodet

import (
	"math/rand"
	"time"
)

func allowedWallClock() time.Time { return time.Now() }

func allowedGlobalDraw() int { return rand.Intn(10) }

func allowedMapEscape(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
