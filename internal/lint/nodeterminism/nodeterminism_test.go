package nodeterminism_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	linttest.Run(t, nodeterminism.Analyzer, "nodet")
}
