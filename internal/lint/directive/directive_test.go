package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"mapsched/internal/lint/directive"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow nodeterminism", []string{"nodeterminism"}},
		{"//lint:allow nodeterminism seeded RNG wrapper", []string{"nodeterminism"}},
		{"//lint:allow nodeterminism,epochbump", []string{"nodeterminism", "epochbump"}},
		{"//lint:allow a, b", []string{"a"}}, // names end at the first whitespace
		{"//lint:allow  obsvocab\treason words", []string{"obsvocab"}},
		{"//lint:allow ,,", nil},  // empty name list
		{"//lint:allow", nil},     // bare directive names nothing
		{"//lint:allowed x", nil}, // not the directive
		{"// lint:allow x", nil},  // space breaks the marker
		{"//lint:epoch-guarded", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		if got := directive.ParseAllow(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileAllows(t *testing.T) {
	doc := parse(t, "// Package p does things.\n//\n//lint:allow nodeterminism wall-clock progress\npackage p\n")
	if !directive.FileAllows(doc, "nodeterminism") {
		t.Error("doc-comment directive not recognized")
	}
	if directive.FileAllows(doc, "epochbump") {
		t.Error("directive leaked to an unnamed analyzer")
	}

	inner := parse(t, "package p\n\n//lint:allow optflag legacy shim\nfunc f() {}\n")
	if !directive.FileAllows(inner, "optflag") {
		t.Error("declaration-level directive not recognized")
	}

	plain := parse(t, "package p\n\n// no directives here\nfunc f() {}\n")
	if directive.FileAllows(plain, "nodeterminism") {
		t.Error("false positive on a plain comment")
	}
}

func TestHeaderAllows(t *testing.T) {
	header := parse(t, "// Package p does things.\n//\n//lint:allow lockheld test double\npackage p\n")
	if !directive.HeaderAllows(header, "lockheld") {
		t.Error("package doc directive not recognized")
	}

	// A declaration-level allow must NOT become file-wide under the
	// narrower header check — that is the whole point of scoping.
	inner := parse(t, "package p\n\n//lint:allow lockheld constructor\nfunc f() {}\n")
	if directive.HeaderAllows(inner, "lockheld") {
		t.Error("declaration-level allow leaked to the whole file")
	}
}

func TestGuardedMu(t *testing.T) {
	src := `package p

import "sync"

type s struct {
	mu sync.Mutex
	a  int //lint:guarded mu
	//lint:guarded mu protects the delta epoch
	b int
	c int //lint:epoch-guarded
	d int //lint:guardedish mu
}
`
	f := parse(t, src)
	want := map[string]string{"a": "mu", "b": "mu", "c": "", "d": ""}
	st := f.Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue
		}
		name := field.Names[0].Name
		if w, ok := want[name]; ok {
			if got := directive.GuardedMu(field); got != w {
				t.Errorf("GuardedMu(%s) = %q, want %q", name, got, w)
			}
		}
	}
}

func TestDeclAllowsAndLockedMu(t *testing.T) {
	src := `package p

//lint:allow lockheld escape hatch for embedded clients
func f() {}

//lint:locked mu
func g() {}

// plain doc
func h() {}
`
	f := parse(t, src)
	fd := func(i int) *ast.FuncDecl { return f.Decls[i].(*ast.FuncDecl) }
	if !directive.DeclAllows(fd(0).Doc, "lockheld") {
		t.Error("scoped allow not recognized")
	}
	if directive.DeclAllows(fd(0).Doc, "errcmp") {
		t.Error("scoped allow leaked to an unnamed analyzer")
	}
	if got := directive.LockedMu(fd(1).Doc); got != "mu" {
		t.Errorf("LockedMu = %q, want mu", got)
	}
	if got := directive.LockedMu(fd(2).Doc); got != "" {
		t.Errorf("LockedMu on plain doc = %q, want empty", got)
	}
}

func TestJournalDirectives(t *testing.T) {
	src := `package p

//lint:journal-ops
type Op string

//lint:journaled
type Svc struct{}

//lint:journal-append
func appendRec() {}

//lint:journal-exhaustive Op except OpBegin,OpNoop
func decode() {}

//lint:journal-exhaustive Op
func apply() {}
`
	f := parse(t, src)
	opDecl := f.Decls[0].(*ast.GenDecl)
	if !directive.IsJournalOps(opDecl.Doc) {
		t.Error("journal-ops marker not recognized")
	}
	svcDecl := f.Decls[1].(*ast.GenDecl)
	if !directive.IsJournaled(svcDecl.Doc) {
		t.Error("journaled marker not recognized")
	}
	if directive.IsJournalOps(svcDecl.Doc) {
		t.Error("journaled misread as journal-ops")
	}
	if !directive.IsJournalAppend(f.Decls[2].(*ast.FuncDecl).Doc) {
		t.Error("journal-append marker not recognized")
	}
	name, except := directive.JournalExhaustive(f.Decls[3].(*ast.FuncDecl).Doc)
	if name != "Op" || !reflect.DeepEqual(except, []string{"OpBegin", "OpNoop"}) {
		t.Errorf("JournalExhaustive = %q %v, want Op [OpBegin OpNoop]", name, except)
	}
	name, except = directive.JournalExhaustive(f.Decls[4].(*ast.FuncDecl).Doc)
	if name != "Op" || except != nil {
		t.Errorf("JournalExhaustive = %q %v, want Op []", name, except)
	}
}

func TestImmutablePublishSentinel(t *testing.T) {
	src := `package p

//lint:immutable-after-publish
type Avail struct{}

//lint:publish Avail republish under the write lock
func refresh() {}

//lint:sentinel
var errSentinel = nil
`
	f := parse(t, src)
	if !directive.IsImmutableAfterPublish(f.Decls[0].(*ast.GenDecl).Doc) {
		t.Error("immutable-after-publish marker not recognized")
	}
	if got := directive.PublishType(f.Decls[1].(*ast.FuncDecl).Doc); got != "Avail" {
		t.Errorf("PublishType = %q, want Avail", got)
	}
	if !directive.IsSentinel(f.Decls[2].(*ast.GenDecl).Doc) {
		t.Error("sentinel marker not recognized")
	}
	if directive.IsSentinel(f.Decls[0].(*ast.GenDecl).Doc) {
		t.Error("immutable marker misread as sentinel")
	}
}

func TestIsEpochGuarded(t *testing.T) {
	src := `package p

type s struct {
	a int //lint:epoch-guarded
	b int //lint:epoch-guarded capacity invalidation
	//lint:epoch-guarded
	c int
	d int // plain trailing comment
	e int //lint:epoch-guardedish
}
`
	f := parse(t, src)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": false, "e": false}
	st := f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	for _, field := range st.Fields.List {
		name := field.Names[0].Name
		if got := directive.IsEpochGuarded(field); got != want[name] {
			t.Errorf("IsEpochGuarded(%s) = %v, want %v", name, got, want[name])
		}
	}
}
