package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"mapsched/internal/lint/directive"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow nodeterminism", []string{"nodeterminism"}},
		{"//lint:allow nodeterminism seeded RNG wrapper", []string{"nodeterminism"}},
		{"//lint:allow nodeterminism,epochbump", []string{"nodeterminism", "epochbump"}},
		{"//lint:allow a, b", []string{"a"}}, // names end at the first whitespace
		{"//lint:allow  obsvocab\treason words", []string{"obsvocab"}},
		{"//lint:allow ,,", nil},  // empty name list
		{"//lint:allow", nil},     // bare directive names nothing
		{"//lint:allowed x", nil}, // not the directive
		{"// lint:allow x", nil},  // space breaks the marker
		{"//lint:epoch-guarded", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		if got := directive.ParseAllow(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileAllows(t *testing.T) {
	doc := parse(t, "// Package p does things.\n//\n//lint:allow nodeterminism wall-clock progress\npackage p\n")
	if !directive.FileAllows(doc, "nodeterminism") {
		t.Error("doc-comment directive not recognized")
	}
	if directive.FileAllows(doc, "epochbump") {
		t.Error("directive leaked to an unnamed analyzer")
	}

	inner := parse(t, "package p\n\n//lint:allow optflag legacy shim\nfunc f() {}\n")
	if !directive.FileAllows(inner, "optflag") {
		t.Error("declaration-level directive not recognized")
	}

	plain := parse(t, "package p\n\n// no directives here\nfunc f() {}\n")
	if directive.FileAllows(plain, "nodeterminism") {
		t.Error("false positive on a plain comment")
	}
}

func TestIsEpochGuarded(t *testing.T) {
	src := `package p

type s struct {
	a int //lint:epoch-guarded
	b int //lint:epoch-guarded capacity invalidation
	//lint:epoch-guarded
	c int
	d int // plain trailing comment
	e int //lint:epoch-guardedish
}
`
	f := parse(t, src)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": false, "e": false}
	st := f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	for _, field := range st.Fields.List {
		name := field.Names[0].Name
		if got := directive.IsEpochGuarded(field); got != want[name] {
			t.Errorf("IsEpochGuarded(%s) = %v, want %v", name, got, want[name])
		}
	}
}
