// Package directive parses the control comments understood by the
// schedlint analyzers:
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// suppresses every diagnostic of the named analyzers for the whole file
// containing the comment (the escape hatch for the seeded RNG wrapper in
// internal/sim/rng.go and the wall-clock progress printing in cmd/), and
//
//	//lint:epoch-guarded
//
// on a struct field declaration marks the field as covered by the
// epoch-invalidation contract: any function in the package that writes
// the field must (directly or through intra-package calls) bump an
// `epoch` counter, which the epochbump analyzer enforces, and
//
//	//lint:pooled <Type>
//
// as a standalone comment inside a function body marks the function as
// the free-list release site for struct type <Type>: the poolreset
// analyzer requires it to reset every field of the type, except fields
// whose declaration carries
//
//	//lint:pooled-keep
//
// marking state that deliberately persists across pooled lives (bound
// callbacks, reusable map/slice storage).
//
// The concurrency and persistence contracts (PR 9) add:
//
//	//lint:guarded <mu>
//
// on a struct field, naming the sibling mutex field that guards it: the
// lockheld analyzer requires every read or write to happen inside a
// Lock/RLock region of that mutex or inside a *Locked function, and
//
//	//lint:locked <mu>
//
// on a function declaration, asserting the function runs with the named
// guard held (the explicit form of the *Locked naming convention), and
//
//	//lint:immutable-after-publish
//
// on a type declaration, marking values of the type frozen once handed
// to readers: the snapshotfree analyzer admits field/element writes only
// in the type's constructors and in functions marked
//
//	//lint:publish <Type>
//
// (the republish sites — refreshLocked-style rebuilds that run before
// the value is visible to readers). The journal symmetry contract uses
//
//	//lint:journal-ops          on the journal op enum type
//	//lint:journaled            on the service type whose Apply*/Update*
//	                            methods must journal their deltas
//	//lint:journal-append       on the append helper those methods must
//	                            (transitively) reach
//	//lint:journal-exhaustive <Type> [except C1,C2,...]
//	                            on decode/apply switches that must cover
//	                            every op constant (minus the exceptions)
//
// and the error-comparison contract uses
//
//	//lint:sentinel
//
// on a package-level error var declaration (or a whole var block),
// marking sentinels that must be compared with errors.Is, never == —
// the errcmp analyzer enforces it and suggests the rewrite.
//
// Alongside the file-level //lint:allow, an allow directive in a
// function or method's doc comment suppresses the named analyzers for
// that declaration only (the scoped escape hatch for intentional
// contract exceptions like Service.Slots handing out interior state).
package directive

import (
	"go/ast"
	"strings"
)

const (
	allowPrefix       = "//lint:allow"
	guardMarker       = "//lint:epoch-guarded"
	pooledPrefix      = "//lint:pooled"
	keepMarker        = "//lint:pooled-keep"
	guardedPrefix     = "//lint:guarded"
	lockedPrefix      = "//lint:locked"
	immutableMarker   = "//lint:immutable-after-publish"
	publishPrefix     = "//lint:publish"
	journalOpsMarker  = "//lint:journal-ops"
	journaledMarker   = "//lint:journaled"
	journalAppendMark = "//lint:journal-append"
	journalExhPrefix  = "//lint:journal-exhaustive"
	sentinelMarker    = "//lint:sentinel"
)

// ParseAllow extracts the analyzer names from a single comment line. It
// returns nil when the comment is not an allow directive (including the
// malformed bare "//lint:allow" with no names). Names are separated by
// commas; anything after the first whitespace run following the name
// list is a free-form reason and is ignored.
func ParseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil
	}
	// Require a separator so "//lint:allowed" style comments don't match.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// FileAllows reports whether any comment in f suppresses the named
// analyzer for the whole file. The directive is file-level: it may sit
// in the package doc comment, above any declaration, or on its own line.
func FileAllows(f *ast.File, analyzer string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, n := range ParseAllow(c.Text) {
				if n == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// IsEpochGuarded reports whether a struct field declaration carries the
// //lint:epoch-guarded marker in its doc comment or trailing line
// comment.
func IsEpochGuarded(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if isGuardComment(c.Text) {
				return true
			}
		}
	}
	return false
}

func isGuardComment(text string) bool {
	rest, ok := strings.CutPrefix(text, guardMarker)
	if !ok {
		return false
	}
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}

// ParsePooled returns the type name of a //lint:pooled <Type> reset-site
// marker, or "" when the comment is not one. The marker must start the
// comment: prose that merely mentions the directive does not bind. A
// bare "//lint:pooled" with no type name returns "" too (malformed, and
// also how "//lint:pooled-keep" is excluded: '-' is not a separator).
func ParsePooled(text string) string {
	rest, ok := strings.CutPrefix(text, pooledPrefix)
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// IsPooledKeep reports whether a struct field declaration carries the
// //lint:pooled-keep marker in its doc comment or trailing line comment,
// exempting the field from the poolreset full-reset requirement.
func IsPooledKeep(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, keepMarker)
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':') {
				return true
			}
		}
	}
	return false
}

// prefixArg returns the first whitespace-separated argument of a
// "<prefix> <arg> [free-form reason]" directive comment, or "" when the
// comment is not that directive (including the malformed bare form —
// and, because '-' is not a separator, longer directives sharing the
// prefix never match).
func prefixArg(text, prefix string) string {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// hasMarker reports whether any comment of the groups is exactly the
// marker directive (optionally followed by a separator and free text).
func hasMarker(marker string, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, marker)
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':') {
				return true
			}
		}
	}
	return false
}

// DeclAllows reports whether a declaration's doc comment suppresses the
// named analyzer for that declaration only: the scoped form of
// //lint:allow, used where a contract is intentionally broken at one
// site (an escape-hatch accessor, a constructor that owns its receiver
// exclusively) rather than for a whole file.
func DeclAllows(doc *ast.CommentGroup, analyzer string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		for _, n := range ParseAllow(c.Text) {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// HeaderAllows reports whether the file's package doc comment
// suppresses the named analyzer for the whole file. The v2 analyzers
// (lockheld, snapshotfree, deltajournal, errcmp) use this narrower
// file-level check so that a declaration-level allow stays scoped to
// its declaration instead of silencing the file, as FileAllows does
// for the original suite.
func HeaderAllows(f *ast.File, analyzer string) bool {
	return DeclAllows(f.Doc, analyzer)
}

// GuardedMu returns the mutex field name a //lint:guarded <mu> marker on
// a struct field declaration names, or "" when the field carries none.
func GuardedMu(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if mu := prefixArg(c.Text, guardedPrefix); mu != "" {
				return mu
			}
		}
	}
	return ""
}

// LockedMu returns the guard a //lint:locked <mu> marker in a function's
// doc comment names, or "" when the function carries none.
func LockedMu(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if mu := prefixArg(c.Text, lockedPrefix); mu != "" {
			return mu
		}
	}
	return ""
}

// IsImmutableAfterPublish reports whether a type declaration carries the
// //lint:immutable-after-publish marker in the given comment groups
// (GenDecl doc, TypeSpec doc, or trailing line comment).
func IsImmutableAfterPublish(groups ...*ast.CommentGroup) bool {
	return hasMarker(immutableMarker, groups...)
}

// PublishType returns the type name a //lint:publish <Type> marker in a
// function's doc comment names, or "" when the function carries none.
func PublishType(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if t := prefixArg(c.Text, publishPrefix); t != "" {
			return t
		}
	}
	return ""
}

// IsJournalOps reports whether a type declaration carries the
// //lint:journal-ops marker.
func IsJournalOps(groups ...*ast.CommentGroup) bool {
	return hasMarker(journalOpsMarker, groups...)
}

// IsJournaled reports whether a type declaration carries the
// //lint:journaled marker.
func IsJournaled(groups ...*ast.CommentGroup) bool {
	return hasMarker(journaledMarker, groups...)
}

// IsJournalAppend reports whether a function declaration carries the
// //lint:journal-append marker in its doc comment.
func IsJournalAppend(doc *ast.CommentGroup) bool {
	return hasMarker(journalAppendMark, doc)
}

// JournalExhaustive returns the ops type name and exception list of a
// //lint:journal-exhaustive <Type> [except C1,C2] marker in a function's
// doc comment; typeName is "" when the function carries none.
func JournalExhaustive(doc *ast.CommentGroup) (typeName string, except []string) {
	if doc == nil {
		return "", nil
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, journalExhPrefix)
		if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		typeName = fields[0]
		if len(fields) >= 3 && fields[1] == "except" {
			for _, n := range strings.Split(fields[2], ",") {
				if n = strings.TrimSpace(n); n != "" {
					except = append(except, n)
				}
			}
		}
		return typeName, except
	}
	return "", nil
}

// IsSentinel reports whether a var declaration carries the
// //lint:sentinel marker in any of the given comment groups (the GenDecl
// doc covers a whole var block; a ValueSpec doc or trailing comment
// covers one var).
func IsSentinel(groups ...*ast.CommentGroup) bool {
	return hasMarker(sentinelMarker, groups...)
}
