// Package directive parses the control comments understood by the
// schedlint analyzers:
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// suppresses every diagnostic of the named analyzers for the whole file
// containing the comment (the escape hatch for the seeded RNG wrapper in
// internal/sim/rng.go and the wall-clock progress printing in cmd/), and
//
//	//lint:epoch-guarded
//
// on a struct field declaration marks the field as covered by the
// epoch-invalidation contract: any function in the package that writes
// the field must (directly or through intra-package calls) bump an
// `epoch` counter, which the epochbump analyzer enforces.
package directive

import (
	"go/ast"
	"strings"
)

const (
	allowPrefix = "//lint:allow"
	guardMarker = "//lint:epoch-guarded"
)

// ParseAllow extracts the analyzer names from a single comment line. It
// returns nil when the comment is not an allow directive (including the
// malformed bare "//lint:allow" with no names). Names are separated by
// commas; anything after the first whitespace run following the name
// list is a free-form reason and is ignored.
func ParseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil
	}
	// Require a separator so "//lint:allowed" style comments don't match.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// FileAllows reports whether any comment in f suppresses the named
// analyzer for the whole file. The directive is file-level: it may sit
// in the package doc comment, above any declaration, or on its own line.
func FileAllows(f *ast.File, analyzer string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, n := range ParseAllow(c.Text) {
				if n == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// IsEpochGuarded reports whether a struct field declaration carries the
// //lint:epoch-guarded marker in its doc comment or trailing line
// comment.
func IsEpochGuarded(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if isGuardComment(c.Text) {
				return true
			}
		}
	}
	return false
}

func isGuardComment(text string) bool {
	rest, ok := strings.CutPrefix(text, guardMarker)
	if !ok {
		return false
	}
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}
