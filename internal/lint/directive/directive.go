// Package directive parses the control comments understood by the
// schedlint analyzers:
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// suppresses every diagnostic of the named analyzers for the whole file
// containing the comment (the escape hatch for the seeded RNG wrapper in
// internal/sim/rng.go and the wall-clock progress printing in cmd/), and
//
//	//lint:epoch-guarded
//
// on a struct field declaration marks the field as covered by the
// epoch-invalidation contract: any function in the package that writes
// the field must (directly or through intra-package calls) bump an
// `epoch` counter, which the epochbump analyzer enforces, and
//
//	//lint:pooled <Type>
//
// as a standalone comment inside a function body marks the function as
// the free-list release site for struct type <Type>: the poolreset
// analyzer requires it to reset every field of the type, except fields
// whose declaration carries
//
//	//lint:pooled-keep
//
// marking state that deliberately persists across pooled lives (bound
// callbacks, reusable map/slice storage).
package directive

import (
	"go/ast"
	"strings"
)

const (
	allowPrefix  = "//lint:allow"
	guardMarker  = "//lint:epoch-guarded"
	pooledPrefix = "//lint:pooled"
	keepMarker   = "//lint:pooled-keep"
)

// ParseAllow extracts the analyzer names from a single comment line. It
// returns nil when the comment is not an allow directive (including the
// malformed bare "//lint:allow" with no names). Names are separated by
// commas; anything after the first whitespace run following the name
// list is a free-form reason and is ignored.
func ParseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil
	}
	// Require a separator so "//lint:allowed" style comments don't match.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// FileAllows reports whether any comment in f suppresses the named
// analyzer for the whole file. The directive is file-level: it may sit
// in the package doc comment, above any declaration, or on its own line.
func FileAllows(f *ast.File, analyzer string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, n := range ParseAllow(c.Text) {
				if n == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// IsEpochGuarded reports whether a struct field declaration carries the
// //lint:epoch-guarded marker in its doc comment or trailing line
// comment.
func IsEpochGuarded(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if isGuardComment(c.Text) {
				return true
			}
		}
	}
	return false
}

func isGuardComment(text string) bool {
	rest, ok := strings.CutPrefix(text, guardMarker)
	if !ok {
		return false
	}
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}

// ParsePooled returns the type name of a //lint:pooled <Type> reset-site
// marker, or "" when the comment is not one. The marker must start the
// comment: prose that merely mentions the directive does not bind. A
// bare "//lint:pooled" with no type name returns "" too (malformed, and
// also how "//lint:pooled-keep" is excluded: '-' is not a separator).
func ParsePooled(text string) string {
	rest, ok := strings.CutPrefix(text, pooledPrefix)
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// IsPooledKeep reports whether a struct field declaration carries the
// //lint:pooled-keep marker in its doc comment or trailing line comment,
// exempting the field from the poolreset full-reset requirement.
func IsPooledKeep(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, keepMarker)
			if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':') {
				return true
			}
		}
	}
	return false
}
