// Package linttest is a self-contained analysistest substitute: it
// runs one analyzer over a testdata package and checks the reported
// diagnostics against `// want` comments, using the same conventions
// as golang.org/x/tools/go/analysis/analysistest:
//
//	x := bad() // want `regexp matching the diagnostic`
//
// Multiple expectations on one line are multiple quoted regexps. The
// harness type-checks testdata with the source importer, so testdata
// packages may import the standard library — and, for the
// cross-package fact analyzers, sibling packages under the same
// testdata/src root: an import path that exists as a sibling
// directory is loaded from source, analyzed first (exporting its
// facts into an in-memory store), and its own // want comments are
// checked too. Facts are gob round-tripped at export, so a fact type
// that would not survive the real unitchecker wire format fails here
// first.
//
// (The real analysistest depends on go/packages and is not part of
// the vendored x/tools subset this repository builds against.)
package linttest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the package in testdata/src/<pkg> (and any sibling
// packages it imports), applies the analyzer to each in dependency
// order, and reports any mismatch between diagnostics and // want
// comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	Analyze(t, a, pkg)
}

// Analyze is Run returning the diagnostics and the FileSet, for tests
// that assert beyond messages (SuggestedFix edits, positions).
func Analyze(t *testing.T, a *analysis.Analyzer, pkg string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	h := newHarness(t, a, filepath.Join("testdata", "src"))
	h.load(pkg)
	checkExpectations(t, h.fset, h.allFiles(), h.diags)
	return h.diags, h.fset
}

// RunFiles is Run over an explicit directory with no sibling-package
// resolution (used by the directive tests to lint arbitrary fixtures).
func RunFiles(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	h := newHarness(t, a, "")
	h.loadDir("files", dir)
	return h.diags
}

// harness owns the shared FileSet, the loaded-package memo, and the
// in-memory fact store one Run call accumulates across packages.
type harness struct {
	t      *testing.T
	a      *analysis.Analyzer
	fset   *token.FileSet
	root   string // testdata/src root for sibling imports; "" disables
	std    types.Importer
	loaded map[string]*loadedPkg
	order  []string // load completion order, for allFiles determinism
	diags  []analysis.Diagnostic

	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
}

type loadedPkg struct {
	tpkg  *types.Package
	files []*ast.File
}

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

func newHarness(t *testing.T, a *analysis.Analyzer, root string) *harness {
	if len(a.Requires) > 0 {
		t.Fatalf("linttest: analyzer %s has Requires; this harness runs dependency-free analyzers only", a.Name)
	}
	fset := token.NewFileSet()
	return &harness{
		t:        t,
		a:        a,
		fset:     fset,
		root:     root,
		std:      importer.ForCompiler(fset, "source", nil),
		loaded:   map[string]*loadedPkg{},
		objFacts: map[objFactKey]analysis.Fact{},
		pkgFacts: map[pkgFactKey]analysis.Fact{},
	}
}

// Import resolves an import path during type checking: paths that
// exist as directories under the testdata/src root load (and analyze)
// the sibling fixture package; everything else falls through to the
// standard-library source importer.
func (h *harness) Import(path string) (*types.Package, error) {
	if h.root != "" {
		if dir := filepath.Join(h.root, path); dirExists(dir) {
			return h.load(path).tpkg, nil
		}
	}
	return h.std.Import(path)
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// load parses, type-checks, and analyzes the fixture package at
// <root>/<path>, memoized per path. Sibling imports are pulled in by
// the type checker through h.Import, so a dependency's analyzer run
// (and its exported facts) always completes before the importing
// package's run starts.
func (h *harness) load(path string) *loadedPkg {
	if lp, ok := h.loaded[path]; ok {
		return lp
	}
	return h.loadDir(path, filepath.Join(h.root, path))
}

func (h *harness) loadDir(path, dir string) *loadedPkg {
	t := h.t
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(h.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: h}
	tpkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		t.Fatalf("linttest: typecheck %s: %v", dir, err)
	}
	lp := &loadedPkg{tpkg: tpkg, files: files}
	h.loaded[path] = lp
	h.order = append(h.order, path)

	pass := &analysis.Pass{
		Analyzer:          h.a,
		Fset:              h.fset,
		Files:             files,
		Pkg:               tpkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          map[*analysis.Analyzer]interface{}{},
		Report:            func(d analysis.Diagnostic) { h.diags = append(h.diags, d) },
		ImportObjectFact:  h.importObjectFact,
		ExportObjectFact:  h.exportObjectFact,
		ImportPackageFact: h.importPackageFact,
		ExportPackageFact: func(fact analysis.Fact) { h.exportPackageFact(tpkg, fact) },
		AllObjectFacts:    h.allObjectFacts,
		AllPackageFacts:   h.allPackageFacts,
	}
	if _, err := h.a.Run(pass); err != nil {
		t.Fatalf("linttest: %s failed on %s: %v", h.a.Name, path, err)
	}
	return lp
}

func (h *harness) allFiles() []*ast.File {
	var files []*ast.File
	for _, path := range h.order {
		files = append(files, h.loaded[path].files...)
	}
	return files
}

// roundTrip gob-encodes the fact and decodes it into a fresh value of
// the same concrete type, mirroring the unitchecker wire format so a
// fact that would not serialize fails in the fixture suite.
func (h *harness) roundTrip(fact analysis.Fact) analysis.Fact {
	h.t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		h.t.Fatalf("linttest: fact %T does not gob-encode: %v", fact, err)
	}
	fresh := reflect.New(reflect.TypeOf(fact).Elem()).Interface().(analysis.Fact)
	if err := gob.NewDecoder(&buf).Decode(fresh); err != nil {
		h.t.Fatalf("linttest: fact %T does not gob-decode: %v", fact, err)
	}
	return fresh
}

func (h *harness) exportObjectFact(obj types.Object, fact analysis.Fact) {
	h.t.Helper()
	if obj == nil {
		h.t.Fatalf("linttest: ExportObjectFact(nil, %T)", fact)
	}
	h.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = h.roundTrip(fact)
}

func (h *harness) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	stored, ok := h.objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (h *harness) exportPackageFact(pkg *types.Package, fact analysis.Fact) {
	h.t.Helper()
	h.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}] = h.roundTrip(fact)
}

func (h *harness) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	stored, ok := h.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (h *harness) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, f := range h.objFacts {
		out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

func (h *harness) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for k, f := range h.pkgFacts {
		out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
	return out
}

// wantRE extracts the quoted or backquoted expectation patterns from a
// // want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[idx+len("// want "):], -1) {
					pat := m
					if pat[0] == '"' {
						unq, err := strconv.Unquote(pat)
						if err != nil {
							t.Fatalf("linttest: bad want pattern %s at %s: %v", pat, pos, err)
						}
						pat = unq
					} else {
						pat = pat[1 : len(pat)-1]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %s at %s: %v", pat, pos, err)
					}
					k := key{pos.Filename, pos.Line}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	got := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	var keys []key
	seen := map[key]bool{}
	for k := range want {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})

	for _, k := range keys {
		ws, gs := want[k], got[k]
		unmatched := append([]string(nil), gs...)
		for _, re := range ws {
			hit := -1
			for i, msg := range unmatched {
				if re.MatchString(msg) {
					hit = i
					break
				}
			}
			if hit < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %s)", k.file, k.line, re, fmtMsgs(gs))
				continue
			}
			unmatched = append(unmatched[:hit], unmatched[hit+1:]...)
		}
		for _, msg := range unmatched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

func fmtMsgs(msgs []string) string {
	if len(msgs) == 0 {
		return "none"
	}
	return fmt.Sprintf("%q", msgs)
}
