// Package linttest is a self-contained analysistest substitute: it
// runs one analyzer over a testdata package and checks the reported
// diagnostics against `// want` comments, using the same conventions
// as golang.org/x/tools/go/analysis/analysistest:
//
//	x := bad() // want `regexp matching the diagnostic`
//
// Multiple expectations on one line are multiple quoted regexps. The
// harness type-checks testdata with the source importer, so testdata
// packages may import the standard library but nothing else — which
// also keeps the analyzer contract tests hermetic (no module proxy,
// no go command).
//
// (The real analysistest depends on go/packages and is not part of
// the vendored x/tools subset this repository builds against.)
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the package in testdata/src/<pkg>, applies the analyzer,
// and reports any mismatch between diagnostics and // want comments as
// test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	diags, fset, files := runAnalyzer(t, a, dir)
	checkExpectations(t, fset, files, diags)
}

// RunFiles is Run over an explicit directory (used by the directive
// tests to lint arbitrary fixtures).
func RunFiles(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	diags, _, _ := runAnalyzer(t, a, dir)
	return diags
}

func runAnalyzer(t *testing.T, a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkgName := files[0].Name.Name
	tpkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if len(a.Requires) > 0 {
		t.Fatalf("linttest: analyzer %s has Requires; this harness runs dependency-free analyzers only", a.Name)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s failed: %v", a.Name, err)
	}
	return diags, fset, files
}

// wantRE extracts the quoted or backquoted expectation patterns from a
// // want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[idx+len("// want "):], -1) {
					pat := m
					if pat[0] == '"' {
						unq, err := strconv.Unquote(pat)
						if err != nil {
							t.Fatalf("linttest: bad want pattern %s at %s: %v", pat, pos, err)
						}
						pat = unq
					} else {
						pat = pat[1 : len(pat)-1]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %s at %s: %v", pat, pos, err)
					}
					k := key{pos.Filename, pos.Line}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	got := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	var keys []key
	seen := map[key]bool{}
	for k := range want {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})

	for _, k := range keys {
		ws, gs := want[k], got[k]
		unmatched := append([]string(nil), gs...)
		for _, re := range ws {
			hit := -1
			for i, msg := range unmatched {
				if re.MatchString(msg) {
					hit = i
					break
				}
			}
			if hit < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %s)", k.file, k.line, re, fmtMsgs(gs))
				continue
			}
			unmatched = append(unmatched[:hit], unmatched[hit+1:]...)
		}
		for _, msg := range unmatched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

func fmtMsgs(msgs []string) string {
	if len(msgs) == 0 {
		return "none"
	}
	return fmt.Sprintf("%q", msgs)
}
