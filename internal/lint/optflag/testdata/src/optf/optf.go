// Package optf exercises the optflag analyzer: option-shaped functions
// writing a set-flag-guarded field must also write the flag.
package optf

type options struct {
	seed     int64 // unguarded: no seedSet sibling
	cross    int
	crossSet bool
	mode     int
	modeSet  bool
	obs      []string
}

// Option is the usual functional-option shape.
type Option func(*options)

func WithSeed(s int64) Option {
	return func(o *options) { o.seed = s } // unguarded field, no flag required
}

func WithCross(n int) Option {
	return func(o *options) { o.cross = n; o.crossSet = true }
}

func WithCrossBroken(n int) Option {
	return func(o *options) { o.cross = n } // want `option sets "cross" but not its set flag "crossSet"`
}

func WithMode(m int) Option {
	return func(o *options) {
		o.modeSet = true
		o.mode = m // flag written first is still fine
	}
}

func WithModeBroken(m int) Option {
	return func(o *options) {
		o.mode = m // want `option sets "mode" but not its set flag "modeSet"`
	}
}

func WithObs(s string) Option {
	return func(o *options) { o.obs = append(o.obs, s) } // unguarded append-style option
}

// applyDefaults is a method, not an option: defaulting may write
// values without flags.
func (o *options) applyDefaults() {
	if !o.modeSet {
		o.mode = 7
	}
}

// resolve takes the struct but returns a value, so it is not
// option-shaped either.
func resolve(o *options) int {
	o.cross = 0
	return o.cross
}
