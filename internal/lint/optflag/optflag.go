// Package optflag implements the schedlint analyzer guarding the
// set-flag convention of functional options.
//
// The public API distinguishes "explicit zero value" from "not
// specified" by pairing option fields with boolean set flags
// (crossTraffic / crossTrafficSet and friends in the root package's
// options struct). PR 2 fixed a bug class where WithCrossTraffic(0)
// silently behaved like "unset" because the option closure wrote the
// value but not the flag; this analyzer makes that regression
// impossible: inside any option-shaped function (a func with exactly
// one parameter of a struct type that declares <field>/<field>Set
// pairs, and no results), a write to <field> must be accompanied by a
// write to <field>Set on the same receiver variable.
package optflag

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "optflag"

// Analyzer is the optflag pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require functional options that write a set-flag-guarded field to also write its set flag",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}

	pairs := collectPairs(pass)
	if len(pairs) == 0 {
		return nil, nil
	}

	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.FileAllows(f, Name) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftype, body = n.Type, n.Body
			case *ast.FuncLit:
				ftype, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !optionShaped(pass, ftype, pairs) {
				return true
			}
			checkOptionBody(pass, body, pairs)
			return true
		})
	}
	return nil, nil
}

// collectPairs maps each guarded option field to its boolean set flag:
// struct fields foo and fooSet (bool) declared side by side.
func collectPairs(pass *analysis.Pass) map[*types.Var]*types.Var {
	pairs := map[*types.Var]*types.Var{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fields := map[string]*types.Var{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						fields[name.Name] = v
					}
				}
			}
			for name, v := range fields {
				flag, ok := fields[name+"Set"]
				if !ok {
					continue
				}
				if b, ok := flag.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
					pairs[v] = flag
				}
			}
			return true
		})
	}
	return pairs
}

// optionShaped reports whether the function type is a functional
// option over a struct with guarded pairs: exactly one parameter whose
// (possibly pointed-to) struct declares at least one guarded field,
// and no results.
func optionShaped(pass *analysis.Pass, ftype *ast.FuncType, pairs map[*types.Var]*types.Var) bool {
	if ftype.Results != nil && len(ftype.Results.List) > 0 {
		return false
	}
	if ftype.Params == nil || len(ftype.Params.List) != 1 || len(ftype.Params.List[0].Names) > 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(ftype.Params.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, guarded := pairs[st.Field(i)]; guarded {
			return true
		}
	}
	return false
}

// fieldWrite is one assignment to a struct field inside an option body.
type fieldWrite struct {
	at    ast.Node
	recv  types.Object // the variable being written through
	field *types.Var
}

func checkOptionBody(pass *analysis.Pass, body *ast.BlockStmt, pairs map[*types.Var]*types.Var) {
	var writes []fieldWrite
	note := func(lhs ast.Expr, at ast.Node) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
		if !ok {
			return
		}
		writes = append(writes, fieldWrite{at: at, recv: pass.TypesInfo.ObjectOf(base), field: v})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs, n)
			}
		case *ast.IncDecStmt:
			note(n.X, n)
		}
		return true
	})

	for _, w := range writes {
		flag, guarded := pairs[w.field]
		if !guarded {
			continue
		}
		ok := false
		for _, other := range writes {
			if other.field == flag && other.recv == w.recv {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(w.at.Pos(),
				"option sets %q but not its set flag %q; an explicit zero value will be indistinguishable from \"not specified\" (the WithCrossTraffic(0) bug class)",
				w.field.Name(), flag.Name())
		}
	}
}
