package optflag_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/optflag"
)

func TestOptflag(t *testing.T) {
	linttest.Run(t, optflag.Analyzer, "optf")
}
