// Package snapclient mutates snap.Avail from outside its package:
// the diagnostics depend on the immutable fact exported by snap, and
// even constructor-shaped helpers here are flagged — foreign packages
// construct through composite literals or snap's own constructors.
package snapclient

import "snap"

func mutate(a *snap.Avail) {
	a.Version = 2 // want `write to field "Version" of immutable-after-publish type "Avail"`
}

func fresh(n int) *snap.Avail {
	a := &snap.Avail{Nodes: make([]int, n)}
	a.Version = n // want `write to field "Version" of immutable-after-publish type "Avail"`
	return a
}

func replaceWhole(h *hold, a snap.Avail) {
	h.current = a // replacing the published value wholesale is fine
}

type hold struct{ current snap.Avail }
