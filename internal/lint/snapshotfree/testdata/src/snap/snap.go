// Package snap exercises the snapshotfree contract: constructors and
// //lint:publish sites may write, everything else may not, and value
// copies only protect scalar fields — never slice elements.
package snap

//lint:immutable-after-publish
type Avail struct {
	Nodes   []int
	Version int
}

// NewAvail is a constructor: declared in Avail's package and returns
// *Avail, so its writes are initialization, not mutation.
func NewAvail(n int) *Avail {
	a := &Avail{Nodes: make([]int, n)}
	for i := range a.Nodes {
		a.Nodes[i] = i
	}
	a.Version = 1
	return a
}

type holder struct{ avail *Avail }

// refreshLocked rebuilds the snapshot before republishing it.
//
//lint:publish Avail the rebuild runs under the writer lock before readers see it
func (h *holder) refreshLocked(n int) {
	h.avail.Version = n
}

func (h *holder) badWrite(n int) {
	h.avail.Version = n // want `write to field "Version" of immutable-after-publish type "Avail"`
}

func (h *holder) badElem(i, v int) {
	h.avail.Nodes[i] = v // want `element write through field "Nodes" of immutable-after-publish type "Avail"`
}

// Suppressed false positive: a scalar write into a plain value copy
// touches memory private to this frame.
func bump(a Avail) int {
	a.Version++
	return a.Version
}

// ...but an element write through a value copy still aliases the
// published backing array.
func badCopyElem(a Avail, v int) {
	a.Nodes[0] = v // want `element write through field "Nodes" of immutable-after-publish type "Avail"`
}

// Scoped escape hatch with a justification.
//
//lint:allow snapshotfree fixture-only teardown helper
func scrub(a *Avail) {
	a.Version = 0
}
