package snapshotfree_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/snapshotfree"
)

func TestSnapshotfree(t *testing.T) { linttest.Run(t, snapshotfree.Analyzer, "snap") }

// TestSnapshotfreeCrossPackage checks the immutable marker follows
// snap.Avail into an importing package via the exported fact.
func TestSnapshotfreeCrossPackage(t *testing.T) {
	linttest.Run(t, snapshotfree.Analyzer, "snapclient")
}
