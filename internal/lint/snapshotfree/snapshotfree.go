// Package snapshotfree implements the schedlint analyzer enforcing
// the published-snapshot immutability contract (DESIGN.md §15): types
// annotated `//lint:immutable-after-publish` (core.Avail, the
// placement View, the published AvailMap/AvailReduce) are handed to
// concurrent readers by pointer or by shallow copy, so once published
// they must never be written again — a reader-side field or element
// write races every other reader.
//
// Writes into a value of a marked type are admitted only in:
//
//   - the type's constructors — functions declared in the type's own
//     package with the type (or a pointer to it) among their results;
//   - republish sites annotated `//lint:publish <Type>` — the
//     refreshLocked-style rebuilds that run before the new value is
//     visible to readers;
//   - functions carrying a scoped `//lint:allow snapshotfree`.
//
// A scalar field write through a plain local value copy is also
// allowed (the copy is private), but an element write through a field
// is always flagged: copying the struct copies the slice and map
// headers, so the copy still aliases the published backing arrays —
// the exact trap this analyzer exists to catch.
//
// The marker is exported as a fact on the type, so client packages of
// core and placement inherit the contract.
package snapshotfree

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "snapshotfree"

// immutableFact marks a type as immutable-after-publish for importing
// packages.
type immutableFact struct{}

func (*immutableFact) AFact()         {}
func (*immutableFact) String() string { return "immutable-after-publish" }

// Analyzer is the snapshotfree pass.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "forbid field/element writes to //lint:immutable-after-publish types outside constructors and //lint:publish republish sites",
	Run:       run,
	FactTypes: []analysis.Fact{new(immutableFact)},
}

type checker struct {
	pass      *analysis.Pass
	immutable map[*types.TypeName]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{pass: pass, immutable: map[*types.TypeName]bool{}}
	c.collect()
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.HeaderAllows(f, Name) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

// collect gathers this package's marked types and exports the facts.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		if scope.IsTestFile(c.pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !directive.IsImmutableAfterPublish(gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					c.immutable[tn] = true
					c.pass.ExportObjectFact(tn, &immutableFact{})
				}
			}
		}
	}
}

// immutableTypeOf resolves an expression type (through pointers) to a
// marked named type, consulting imported facts for foreign types.
func (c *checker) immutableTypeOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if c.immutable[tn] {
		return tn
	}
	if tn.Pkg() != nil && tn.Pkg() != c.pass.Pkg {
		if c.pass.ImportObjectFact(tn, new(immutableFact)) {
			return tn
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if directive.DeclAllows(fd.Doc, Name) {
		return
	}
	// owned: immutable types this function may legitimately write —
	// the types it constructs (result types declared in this package)
	// plus the one named by a //lint:publish marker.
	owned := map[*types.TypeName]bool{}
	if fd.Type.Results != nil {
		for _, res := range fd.Type.Results.List {
			if tn := c.immutableTypeOf(c.pass.TypesInfo.TypeOf(res.Type)); tn != nil && tn.Pkg() == c.pass.Pkg {
				owned[tn] = true
			}
		}
	}
	publish := directive.PublishType(fd.Doc)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkTarget(lhs, owned, publish)
			}
		case *ast.IncDecStmt:
			c.checkTarget(n.X, owned, publish)
		}
		return true
	})
}

// checkTarget inspects one assignment target: index/pointer layers
// are peeled (remembering whether the write goes through an element),
// and the final selector's base type decides whether the write lands
// inside a marked type.
func (c *checker) checkTarget(lhs ast.Expr, owned map[*types.TypeName]bool, publish string) {
	sawIndex := false
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			sawIndex = true
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tn := c.immutableTypeOf(c.pass.TypesInfo.TypeOf(sel.X))
	if tn == nil || owned[tn] || publish == tn.Name() {
		return
	}
	if sawIndex {
		c.pass.Reportf(sel.Pos(),
			"element write through field %q of immutable-after-publish type %q; published snapshots are shared with concurrent readers (a value copy still aliases the backing array)",
			sel.Sel.Name, tn.Name())
		return
	}
	if isLocalValue(c.pass, sel.X) {
		return // scalar write into a private value copy
	}
	c.pass.Reportf(sel.Pos(),
		"write to field %q of immutable-after-publish type %q outside a constructor or //lint:publish site",
		sel.Sel.Name, tn.Name())
}

// isLocalValue reports whether the expression is a plain local
// variable holding the struct by value — a private copy whose scalar
// fields are safe to write.
func isLocalValue(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	// Package-level vars are shared; only function-scoped copies pass.
	return v.Parent() != pass.Pkg.Scope()
}
