// Package errnoimp proves the errors.Is rewrite ships an `"errors"`
// import insertion when the fixed file has no errors import — without
// it the applied fix would not compile.
package errnoimp

import "fmt"

//lint:sentinel
var ErrGone = fmt.Errorf("gone")

func check(err error) bool {
	return err == ErrGone // want `sentinel error "ErrGone" compared with ==`
}
