// Package errclient compares errc's exported sentinels: the
// diagnostics depend on the facts exported by the errc run.
package errclient

import (
	"errors"

	"errc"
)

func bad(err error) bool {
	return err == errc.ErrBoom // want `sentinel error "ErrBoom" compared with ==`
}

func good(err error) bool {
	return errors.Is(err, errc.ErrBoom)
}
