// Package errc exercises the sentinel comparison contract: marked
// errors must go through errors.Is, identity comparison is flagged
// with a mechanical rewrite.
package errc

import "errors"

//lint:sentinel
var ErrBoom = errors.New("boom")

//lint:sentinel the whole block is the conflict hierarchy
var (
	ErrA = errors.New("a")
	ErrB = errors.New("b")
)

func check(err error) bool {
	if err == ErrBoom { // want `sentinel error "ErrBoom" compared with ==`
		return true
	}
	if ErrA != err { // want `sentinel error "ErrA" compared with !=`
		return false
	}
	return errors.Is(err, ErrBoom)
}

func sw(err error) int {
	switch err {
	case ErrA: // want `sentinel error "ErrA" in identity switch`
		return 1
	case ErrB: // want `sentinel error "ErrB" in identity switch`
		return 2
	}
	return 0
}

// Suppressed false positive: identity really is intended here, with
// the justification recorded in the scoped allow.
//
//lint:allow errcmp comparing against the canonical instance on purpose
func isCanonical(err error) bool {
	return err == ErrBoom
}

// errInternal carries no marker: identity comparison is fine.
var errInternal = errors.New("unmarked")

func unmarked(err error) bool { return err == errInternal }
