package errcmp_test

import (
	"strings"
	"testing"

	"mapsched/internal/lint/errcmp"
	"mapsched/internal/lint/linttest"
)

func TestErrcmp(t *testing.T) {
	diags, _ := linttest.Analyze(t, errcmp.Analyzer, "errc")

	// The == and != comparisons must carry mechanical rewrites with
	// the exact errors.Is text the fix applier will splice in.
	fixes := map[string]bool{}
	for _, d := range diags {
		for _, f := range d.SuggestedFixes {
			for _, e := range f.TextEdits {
				fixes[string(e.NewText)] = true
			}
		}
	}
	for _, want := range []string{
		"errors.Is(err, ErrBoom)",
		"!errors.Is(err, ErrA)",
	} {
		if !fixes[want] {
			t.Errorf("no suggested fix with text %q (got %v)", want, keys(fixes))
		}
	}

	// Identity switches are report-only: no structural autofix.
	for _, d := range diags {
		if strings.Contains(d.Message, "identity switch") && len(d.SuggestedFixes) > 0 {
			t.Errorf("identity-switch diagnostic unexpectedly carries a fix: %s", d.Message)
		}
	}
}

func TestErrcmpCrossPackage(t *testing.T) { linttest.Run(t, errcmp.Analyzer, "errclient") }

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestErrcmpImportInsertion: a fix applied to a file without an
// `"errors"` import must also insert one, or the rewrite would not
// compile after `schedlint -apply`.
func TestErrcmpImportInsertion(t *testing.T) {
	diags, _ := linttest.Analyze(t, errcmp.Analyzer, "errnoimp")
	if len(diags) != 1 || len(diags[0].SuggestedFixes) != 1 {
		t.Fatalf("want exactly one diagnostic with one fix, got %+v", diags)
	}
	var haveImport bool
	for _, e := range diags[0].SuggestedFixes[0].TextEdits {
		if strings.Contains(string(e.NewText), `"errors"`) && e.Pos == e.End {
			haveImport = true
		}
	}
	if !haveImport {
		t.Errorf("fix carries no errors-import insertion: %+v", diags[0].SuggestedFixes[0].TextEdits)
	}
}
