// Package errcmp implements the schedlint analyzer enforcing the
// sentinel-error comparison contract: error variables annotated
// `//lint:sentinel` (the ErrDeltaConflict hierarchy, ErrNotReplayable,
// ErrDeciderInvalid, ErrInvalidOption) must be compared with
// errors.Is, never `==`/`!=` or an identity switch. The placement
// errors deliberately wrap — ErrStaleSlot and friends carry
// ErrDeltaConflict in their chain — so an identity comparison that
// happens to pass today silently stops matching the moment a call
// site adds context with fmt.Errorf("...: %w", err).
//
// `==`/`!=` comparisons get an analysis.SuggestedFix rewriting to
// errors.Is(x, Sentinel) / !errors.Is(x, Sentinel), applied
// mechanically by `make lint-fix` (the fix does not manage imports;
// a file comparing sentinels invariably imports "errors" already).
// Identity switches are reported per case without an autofix — the
// rewrite to an if/else chain is structural.
//
// The marker is exported as a fact on each sentinel var, so client
// packages comparing placement's exported sentinels inherit the
// contract.
package errcmp

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "errcmp"

// sentinelFact marks an error var as an errors.Is-only sentinel for
// importing packages.
type sentinelFact struct{}

func (*sentinelFact) AFact()         {}
func (*sentinelFact) String() string { return "sentinel" }

// Analyzer is the errcmp pass.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "require //lint:sentinel errors to be compared with errors.Is, never == or identity switch, with a suggested rewrite",
	Run:       run,
	FactTypes: []analysis.Fact{new(sentinelFact)},
}

type checker struct {
	pass      *analysis.Pass
	sentinels map[*types.Var]bool
	// file is the file currently being checked; the suggested fix
	// consults its import table so the errors.Is rewrite can carry an
	// `"errors"` import insertion when the file lacks one.
	file *ast.File
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{pass: pass, sentinels: map[*types.Var]bool{}}
	c.collect()
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.HeaderAllows(f, Name) {
			continue
		}
		c.file = f
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if !directive.DeclAllows(fd.Doc, Name) {
					c.checkFunc(fd)
				}
			}
		}
	}
	return nil, nil
}

// collect gathers this package's marked sentinel vars and exports the
// facts. A //lint:sentinel on a var block's doc covers every var in
// the block; on a ValueSpec it covers that spec alone.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		if scope.IsTestFile(c.pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			blockMarked := directive.IsSentinel(gd.Doc)
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if !blockMarked && !directive.IsSentinel(vs.Doc, vs.Comment) {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.sentinels[v] = true
						c.pass.ExportObjectFact(v, &sentinelFact{})
					}
				}
			}
		}
	}
}

// sentinel resolves an expression to a marked sentinel var, consulting
// imported facts for other packages' sentinels.
func (c *checker) sentinel(e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if c.sentinels[v] {
		return v
	}
	if v.Pkg() != nil && v.Pkg() != c.pass.Pkg {
		if c.pass.ImportObjectFact(v, new(sentinelFact)) {
			return v
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				c.checkCompare(n)
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			for _, cc := range n.Body.List {
				clause := cc.(*ast.CaseClause)
				for _, e := range clause.List {
					if v := c.sentinel(e); v != nil {
						c.pass.Reportf(e.Pos(),
							"sentinel error %q in identity switch; wrapped errors never match — rewrite as an if/else chain using errors.Is",
							v.Name())
					}
				}
			}
		}
		return true
	})
}

func (c *checker) checkCompare(be *ast.BinaryExpr) {
	x, s := be.X, be.Y
	v := c.sentinel(s)
	if v == nil {
		v = c.sentinel(x)
		if v == nil {
			return
		}
		x, s = s, x
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	rewrite := fmt.Sprintf("errors.Is(%s, %s)", render(c.pass.Fset, x), render(c.pass.Fset, s))
	if be.Op == token.NEQ {
		rewrite = "!" + rewrite
	}
	c.pass.Report(analysis.Diagnostic{
		Pos: be.Pos(),
		End: be.End(),
		Message: fmt.Sprintf(
			"sentinel error %q compared with %s; wrapped errors escape identity comparison — use %s",
			v.Name(), op, rewrite),
		SuggestedFixes: []analysis.SuggestedFix{{
			Message: fmt.Sprintf("replace %s comparison with %s", op, rewrite),
			TextEdits: append([]analysis.TextEdit{{
				Pos:     be.Pos(),
				End:     be.End(),
				NewText: []byte(rewrite),
			}}, c.importFix()...),
		}},
	})
}

// importFix returns the extra edit that inserts an `"errors"` import
// when the current file has none — without it the errors.Is rewrite
// would not compile. The spec is inserted at its sorted position in
// the file's first import block (identical insertions across multiple
// diagnostics in one file deduplicate at apply time); a file with no
// import declaration gets a fresh one after the package clause.
func (c *checker) importFix() []analysis.TextEdit {
	f := c.file
	if f == nil {
		return nil
	}
	var block *ast.GenDecl
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gd.Specs {
			if is, ok := spec.(*ast.ImportSpec); ok && is.Path.Value == `"errors"` {
				return nil
			}
		}
		if block == nil {
			block = gd
		}
	}
	if block == nil {
		pos := f.Name.End()
		return []analysis.TextEdit{{Pos: pos, End: pos, NewText: []byte("\n\nimport \"errors\"")}}
	}
	if !block.Lparen.IsValid() {
		// Single-spec form: grow it into its own line after the decl.
		pos := block.End()
		return []analysis.TextEdit{{Pos: pos, End: pos, NewText: []byte("\nimport \"errors\"")}}
	}
	for _, spec := range block.Specs {
		is, ok := spec.(*ast.ImportSpec)
		if !ok || is.Path.Value < `"errors"` {
			continue
		}
		return []analysis.TextEdit{{Pos: is.Pos(), End: is.Pos(), NewText: []byte("\"errors\"\n\t")}}
	}
	last := block.Specs[len(block.Specs)-1]
	return []analysis.TextEdit{{Pos: last.End(), End: last.End(), NewText: []byte("\n\t\"errors\"")}}
}

func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
