// Package obsvocab implements the schedlint analyzer that keeps the
// observability event vocabulary closed.
//
// The golden-JSONL determinism tests and every downstream consumer of
// the event stream (summary sinks, chrome-trace export, experiment
// audits) key on obs.Type values. The vocabulary is the set of
// constants declared in internal/obs; a raw string literal used where
// such a "vocabulary type" is expected either silently invents a new
// event kind (schema drift the goldens cannot catch until much later)
// or shadows an existing constant by value. Both must be written as
// the registered constant.
//
// The rule is generic: a vocabulary type is any defined string type
// whose declaring package also declares constants of that type. String
// literals with such a final type are reported everywhere except in
// the constant declarations themselves.
package obsvocab

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "obsvocab"

// Analyzer is the obsvocab pass.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require registered event-type constants (not raw string literals) wherever a closed vocabulary type is expected",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	vocabCache := map[*types.TypeName][]*types.Const{}
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.FileAllows(f, Name) {
			continue
		}
		checkFile(pass, f, vocabCache)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File, cache map[*types.TypeName][]*types.Const) {
	// Constant declarations define the vocabulary; their literals are the
	// one place raw strings belong.
	var constRanges [][2]token.Pos
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			constRanges = append(constRanges, [2]token.Pos{gd.Pos(), gd.End()})
		}
	}
	inConst := func(p token.Pos) bool {
		for _, r := range constRanges {
			if p >= r[0] && p < r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || inConst(lit.Pos()) {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		tn, consts := vocabType(tv.Type, cache)
		if tn == nil {
			return true
		}
		if c := matching(consts, tv.Value); c != nil {
			pass.Reportf(lit.Pos(), "string literal %s used as %s; use the registered constant %s",
				lit.Value, typeString(tn), constName(pass, c))
		} else {
			pass.Reportf(lit.Pos(), "string literal %s is not a registered %s constant; declare it in %s or use an existing constant",
				lit.Value, typeString(tn), declSite(tn))
		}
		return true
	})
}

// vocabType reports whether t is a closed vocabulary type: a defined
// string type whose declaring package also declares constants of it.
// It returns the type name and those constants.
func vocabType(t types.Type, cache map[*types.TypeName][]*types.Const) (*types.TypeName, []*types.Const) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return nil, nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil, nil
	}
	if consts, ok := cache[tn]; ok {
		return vocabResult(tn, consts)
	}
	var consts []*types.Const
	sc := tn.Pkg().Scope()
	for _, name := range sc.Names() {
		if c, ok := sc.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	cache[tn] = consts
	return vocabResult(tn, consts)
}

func vocabResult(tn *types.TypeName, consts []*types.Const) (*types.TypeName, []*types.Const) {
	if len(consts) == 0 {
		return nil, nil // a plain string type, not a vocabulary
	}
	return tn, consts
}

func matching(consts []*types.Const, v constant.Value) *types.Const {
	if v == nil {
		return nil
	}
	for _, c := range consts {
		if constant.Compare(c.Val(), token.EQL, v) {
			return c
		}
	}
	return nil
}

func constName(pass *analysis.Pass, c *types.Const) string {
	if c.Pkg() != nil && c.Pkg() != pass.Pkg {
		return fmt.Sprintf("%s.%s", c.Pkg().Name(), c.Name())
	}
	return c.Name()
}

func typeString(tn *types.TypeName) string {
	if tn.Pkg() != nil {
		return fmt.Sprintf("%s.%s", tn.Pkg().Name(), tn.Name())
	}
	return tn.Name()
}

func declSite(tn *types.TypeName) string {
	if tn.Pkg() != nil {
		return tn.Pkg().Path()
	}
	return "its declaring package"
}
