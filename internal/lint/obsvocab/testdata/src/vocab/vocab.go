// Package vocab exercises the obsvocab analyzer: string literals must
// not stand in for registered constants of a closed vocabulary type.
package vocab

type Kind string

const (
	KindStart  Kind = "start"
	KindFinish Kind = "finish"
)

// Plain string types with no constants are not a vocabulary.
type label string

type event struct {
	K    Kind
	Note label
	Text string
}

func sink(event) {}

func constantsAreFine() {
	sink(event{K: KindStart})
	sink(event{K: KindFinish, Note: "free-form", Text: "free-form"})
}

func literals() {
	sink(event{K: "start"})   // want `string literal "start" used as vocab\.Kind; use the registered constant KindStart`
	sink(event{K: "mystery"}) // want `string literal "mystery" is not a registered vocab\.Kind constant`
}

func comparisons(e event) bool {
	return e.K == "finish" // want `string literal "finish" used as vocab\.Kind; use the registered constant KindFinish`
}

func conversions() Kind {
	return Kind("start") // want `string literal "start" used as vocab\.Kind; use the registered constant KindStart`
}

func switches(e event) int {
	switch e.K {
	case KindStart:
		return 1
	case "finish": // want `string literal "finish" used as vocab\.Kind; use the registered constant KindFinish`
		return 2
	}
	return 0
}

func mapKeys() map[Kind]bool {
	return map[Kind]bool{
		KindStart: true,
		"zzz":     true, // want `string literal "zzz" is not a registered vocab\.Kind constant`
	}
}
