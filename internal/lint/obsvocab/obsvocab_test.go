package obsvocab_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/obsvocab"
)

func TestObsvocab(t *testing.T) {
	linttest.Run(t, obsvocab.Analyzer, "vocab")
}
