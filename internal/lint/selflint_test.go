package lint_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfLint builds the schedlint vet tool and runs it over the
// whole repository: the analyzers must pass clean on the codebase
// whose invariants they encode (the no-false-positive check on real
// code, and the gate that keeps future PRs honest). This is the same
// invocation `make lint` and CI use.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module and re-typechecks every package")
	}

	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	moduleDir := strings.TrimSpace(string(root))

	bin := filepath.Join(t.TempDir(), "schedlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/schedlint")
	build.Dir = moduleDir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building schedlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = moduleDir
	var buf bytes.Buffer
	vet.Stdout = &buf
	vet.Stderr = &buf
	if err := vet.Run(); err != nil {
		t.Fatalf("schedlint found violations in the repository:\n%s", buf.String())
	}
	if s := strings.TrimSpace(buf.String()); s != "" {
		t.Errorf("schedlint produced unexpected output on a clean repo:\n%s", s)
	}
}
