package lint_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mapsched/internal/lint"
)

// TestSuiteComposition pins the analyzer roster and its order: nine
// analyzers, the determinism/cache contracts first, then the
// concurrency/persistence contracts. A new analyzer (or a dropped
// one) must show up here deliberately.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"nodeterminism",
		"epochbump",
		"poolreset",
		"obsvocab",
		"optflag",
		"lockheld",
		"snapshotfree",
		"deltajournal",
		"errcmp",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestSelfLint builds the schedlint vet tool and runs it over the
// whole repository: the nine analyzers must pass clean on the
// codebase whose invariants they encode (the no-false-positive check
// on real code, and the gate that keeps future PRs honest). This is
// the same invocation `make lint` and CI use.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module and re-typechecks every package")
	}

	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	moduleDir := strings.TrimSpace(string(root))

	bin := filepath.Join(t.TempDir(), "schedlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/schedlint")
	build.Dir = moduleDir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building schedlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = moduleDir
	var buf bytes.Buffer
	vet.Stdout = &buf
	vet.Stderr = &buf
	if err := vet.Run(); err != nil {
		t.Fatalf("schedlint found violations in the repository:\n%s", buf.String())
	}
	if s := strings.TrimSpace(buf.String()); s != "" {
		t.Errorf("schedlint produced unexpected output on a clean repo:\n%s", s)
	}
}
