// Package lockclient imports lockdep and misuses its guarded state:
// every diagnostic here depends on facts exported by the lockdep run.
package lockclient

import "lockdep"

func bad(s *lockdep.Store) {
	s.Count++      // want `write to guarded field "Count" without "Mu" write-locked`
	s.Apply(1)     // want `call to "Apply" requires "Mu" held`
	s.AddLocked(2) // want `call to "AddLocked" without a lock held`
}

func good(s *lockdep.Store) {
	s.Mu.Lock()
	s.Count++
	s.Apply(1)
	s.AddLocked(2)
	s.Mu.Unlock()
}

func leak(s *lockdep.Store) int {
	n := s.Count // want `read of guarded field "Count" without "Mu" held`
	return n
}
