// Package lockdep declares a guarded store; the lockclient fixture
// checks that the contract follows the exported fields and functions
// into an importing package via facts.
package lockdep

import "sync"

type Store struct {
	Mu    sync.Mutex
	Count int //lint:guarded Mu
}

//lint:locked Mu
func (s *Store) Apply(n int) { s.Count += n }

// AddLocked runs under the caller's lock by naming convention.
func (s *Store) AddLocked(n int) { s.Count += n }
