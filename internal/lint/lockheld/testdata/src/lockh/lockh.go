// Package lockh exercises the lockheld contracts inside one package:
// guarded-field access, *Locked and //lint:locked call sites, lock
// scope escapes, and the deferred close-out bug class.
package lockh

import "sync"

type table struct{ n int }

type svc struct {
	mu    sync.RWMutex
	epoch uint64 //lint:guarded mu
	slots *table //lint:guarded mu
}

func (s *svc) good() {
	s.mu.Lock()
	s.epoch++
	s.mu.Unlock()
}

func (s *svc) goodDefer() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

func (s *svc) bad() {
	s.epoch++ // want `write to guarded field "epoch" without "mu" write-locked`
}

func (s *svc) badReadAfterUnlock() uint64 {
	s.mu.RLock()
	e := s.epoch
	s.mu.RUnlock()
	return e + s.epoch // want `read of guarded field "epoch" without "mu" held`
}

func (s *svc) badWriteUnderRead() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.epoch++ // want `write to guarded field "epoch" under read lock "mu"; the write lock is required`
}

func (s *svc) earlyReturn(fail bool) uint64 {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return 0
	}
	e := s.epoch
	s.mu.Unlock()
	return e
}

// bumpLocked is exempt inside by the naming convention; its call
// sites are what the analyzer checks.
func (s *svc) bumpLocked() { s.epoch++ }

func (s *svc) callers() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
	s.bumpLocked() // want `call to "bumpLocked" without a lock held`
}

//lint:locked mu
func (s *svc) apply(n uint64) { s.epoch = n }

func (s *svc) callAnnotated() {
	s.apply(1) // want `call to "apply" requires "mu" held`
	s.mu.Lock()
	s.apply(2)
	s.mu.Unlock()
}

func (s *svc) escapeGo() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { // want `goroutine launched while "s.mu" is held`
		_ = s.epoch // want `read of guarded field "epoch" without "mu" held`
	}()
}

func (s *svc) escapeReturn() *table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.slots // want `returning guarded field "slots" escapes the "mu" lock scope`
}

// A function literal invoked at its call site runs under the
// caller's locks (sort comparators, immediate calls): no diagnostic.
func (s *svc) inPlaceLiteral() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return func() uint64 { return s.epoch }()
}

// A stored closure outlives the lock region: walked lock-free.
func (s *svc) storedLiteral() func() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return func() uint64 {
		return s.epoch // want `read of guarded field "epoch" without "mu" held`
	}
}

type outcome struct{ code int }

func fill(o *outcome) { o.code = 1 }

func badCloseOut() outcome {
	var out outcome
	defer fill(&out) // want `deferred call writes &out but the results are unnamed`
	return out
}

func goodCloseOut() (out outcome) {
	defer fill(&out)
	return out
}

// Suppressed false positive: the constructor owns s exclusively until
// it returns, so unguarded writes are fine under a scoped allow.
//
//lint:allow lockheld constructor: s is not shared until returned
func newSvc() *svc {
	s := &svc{}
	s.epoch = 1
	return s
}
