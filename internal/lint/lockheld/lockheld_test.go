package lockheld_test

import (
	"testing"

	"mapsched/internal/lint/linttest"
	"mapsched/internal/lint/lockheld"
)

func TestLockheld(t *testing.T) { linttest.Run(t, lockheld.Analyzer, "lockh") }

// TestLockheldCrossPackage loads lockclient, which pulls in and
// analyzes lockdep first; the diagnostics in the client all depend on
// the dep's exported guarded/locked facts.
func TestLockheldCrossPackage(t *testing.T) { linttest.Run(t, lockheld.Analyzer, "lockclient") }
