// Package lockheld implements the schedlint analyzer enforcing the
// placement service's lock discipline (DESIGN.md §15): the Service is
// a writer-applies-deltas / concurrent-readers-decide structure whose
// mutable interior — epoch counter, journal writer, slot table, store
// — is only coherent under Service.mu. The convention that encodes
// this ("helpers that assume the lock are named *Locked, everything
// else locks for itself") was enforced only by review; this analyzer
// makes it checkable.
//
// Contract vocabulary (see the directive package):
//
//   - A struct field annotated `//lint:guarded <mu>` may be read only
//     while the sibling mutex <mu> is held (Lock or RLock), and
//     written only while write-locked — or inside a function exempted
//     below.
//   - A function named `*Locked` asserts it runs with its caller's
//     lock: its body is exempt, and every call to it must happen with
//     some lock held (or from another exempt function).
//   - A function annotated `//lint:locked <mu>` is the explicit form:
//     its body is checked as if <mu> were write-held, and call sites
//     must hold a mutex field named <mu>.
//   - `//lint:allow lockheld <reason>` on a declaration exempts that
//     one function (constructors that own their receiver exclusively,
//     audited escape-hatch accessors).
//
// Lock state is tracked positionally through each function body:
// mu.Lock()/RLock() opens a region keyed on the rendered receiver
// path ("s.mu", "d.svc.mu"), Unlock()/RUnlock() closes it, a deferred
// unlock keeps the region open to the end of the body, and branches
// are walked with copies so an early-return unlock does not leak into
// the fall-through path. Function literals run with the lock state of
// their call site when invoked in place (sort comparators, immediate
// calls) and with no locks otherwise (stored or returned closures).
//
// The analyzer also flags lock-scope escapes:
//
//   - goroutines launched while a lock is held (the lock does not
//     extend into the goroutine body, which is walked lock-free);
//   - guarded reference-typed fields returned while the guard is held
//     — the interior pointer outlives the deferred unlock, handing
//     callers unsynchronized state (the Service.Slots()/Store()
//     escape hatches this PR audits);
//   - the PR 7 close-out bug class: `defer f(..., &v)` paired with
//     `return v` from a function with unnamed results — the deferred
//     write lands after the result is copied and never reaches the
//     caller.
//
// Guarded-field and locked-function markers are exported as Facts, so
// the contracts follow types across package boundaries into their
// clients (engine, replay, the mapsched façade).
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mapsched/internal/lint/directive"
	"mapsched/internal/lint/scope"
)

// Name is the analyzer name recognized by //lint:allow directives.
const Name = "lockheld"

// guardedFact marks a struct field as protected by the sibling mutex
// field named Mu. Exported so the contract follows the field into
// importing packages.
type guardedFact struct{ Mu string }

func (*guardedFact) AFact()           {}
func (f *guardedFact) String() string { return "guarded:" + f.Mu }

// lockedFact marks a function annotated //lint:locked <mu>; call
// sites in other packages import it to learn the requirement (the
// *Locked naming convention needs no fact — the name travels).
type lockedFact struct{ Mu string }

func (*lockedFact) AFact()           {}
func (f *lockedFact) String() string { return "locked:" + f.Mu }

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "enforce //lint:guarded field access under the named mutex, *Locked//lint:locked call-site discipline, and lock-scope escape rules",
	Run:       run,
	FactTypes: []analysis.Fact{new(guardedFact), new(lockedFact)},
}

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Var]string  // field -> guard mutex name
	locked  map[*types.Func]string // annotated func -> required mutex name
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.PackageInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:    pass,
		guarded: map[*types.Var]string{},
		locked:  map[*types.Func]string{},
	}
	c.collect()
	for _, f := range pass.Files {
		if scope.IsTestFile(pass, f) || directive.HeaderAllows(f, Name) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

// collect gathers this package's guarded fields and annotated locked
// functions and exports them as facts for importing packages.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		if scope.IsTestFile(c.pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := directive.GuardedMu(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guarded[v] = mu
						c.pass.ExportObjectFact(v, &guardedFact{Mu: mu})
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mu := directive.LockedMu(fd.Doc)
			if mu == "" {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.locked[fn] = mu
				c.pass.ExportObjectFact(fn, &lockedFact{Mu: mu})
			}
		}
	}
}

// guardOf returns the guard mutex name of a field, consulting local
// markers first and imported facts for fields of other packages.
func (c *checker) guardOf(v *types.Var) string {
	if v == nil || !v.IsField() {
		return ""
	}
	if mu, ok := c.guarded[v]; ok {
		return mu
	}
	if v.Pkg() != nil && v.Pkg() != c.pass.Pkg {
		var f guardedFact
		if c.pass.ImportObjectFact(v, &f) {
			return f.Mu
		}
	}
	return ""
}

// lockReq returns the lock requirement of a callee: mu == "" with
// ok == true means "any lock held" (the *Locked naming convention),
// a non-empty mu names the specific mutex field.
func (c *checker) lockReq(fn *types.Func) (mu string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if mu, ok := c.locked[fn]; ok {
		return mu, true
	}
	if strings.HasSuffix(fn.Name(), "Locked") {
		return "", true
	}
	if fn.Pkg() != c.pass.Pkg {
		var f lockedFact
		if c.pass.ImportObjectFact(fn, &f) {
			return f.Mu, true
		}
	}
	return "", false
}

type deferredPtr struct {
	v   *types.Var
	pos token.Pos
}

// walker carries the per-function state of one positional walk.
type walker struct {
	c        *checker
	pass     *analysis.Pass
	wildcard bool // *Locked body: every guard is presumed held

	syncLits map[*ast.FuncLit]bool // literals invoked at their call site
	deferred []deferredPtr         // &local handed to a deferred call
	defSeen  map[*types.Var]bool
	returned map[*types.Var]bool // locals returned by value
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if directive.DeclAllows(fd.Doc, Name) {
		return
	}
	w := &walker{
		c:        c,
		pass:     c.pass,
		wildcard: strings.HasSuffix(fd.Name.Name, "Locked"),
		syncLits: map[*ast.FuncLit]bool{},
		defSeen:  map[*types.Var]bool{},
		returned: map[*types.Var]bool{},
	}
	held := map[string]byte{}
	if mu, ok := c.locked[fn]; ok && mu != "" {
		// The annotation asserts the caller write-holds <mu>; check the
		// body under that assumption, keyed on the receiver when there
		// is one.
		key := mu
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			key = fd.Recv.List[0].Names[0].Name + "." + mu
		}
		held[key] = 'w'
	}
	w.stmts(fd.Body.List, held)

	// PR 7 close-out bug class: a deferred call that writes through a
	// pointer to a local which is then returned by value from a
	// function with unnamed results — the deferred write lands after
	// the result was copied.
	if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 && !hasNamedResults(fd.Type.Results) {
		for _, d := range w.deferred {
			if w.returned[d.v] {
				c.pass.Reportf(d.pos,
					"deferred call writes &%s but the results are unnamed; the deferred write is lost when the return value is copied",
					d.v.Name())
			}
		}
	}
}

func hasNamedResults(results *ast.FieldList) bool {
	for _, f := range results.List {
		if len(f.Names) > 0 {
			return true
		}
	}
	return false
}

// exprPath renders a selector chain ("s", "d.svc") for lock-region
// keys; "" when the expression is not a plain path.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if b := exprPath(e.X); b != "" {
			return b + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	}
	return ""
}

// lockOp recognizes a sync mutex method call and returns the rendered
// receiver path and the method name.
func (w *walker) lockOp(e ast.Expr) (key, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprPath(sel.X), fn.Name(), true
	}
	return "", "", false
}

func copyHeld(held map[string]byte) map[string]byte {
	out := make(map[string]byte, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// heldFor reports whether the guard mutex <mu> of an access with the
// given base path is held (write-held when needWrite).
func heldFor(held map[string]byte, base, mu string, needWrite bool) bool {
	if base != "" {
		kind, ok := held[base+"."+mu]
		return ok && (!needWrite || kind == 'w')
	}
	for key, kind := range held {
		if (key == mu || strings.HasSuffix(key, "."+mu)) && (!needWrite || kind == 'w') {
			return true
		}
	}
	return false
}

func (w *walker) stmts(list []ast.Stmt, held map[string]byte) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]byte) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, method, ok := w.lockOp(s.X); ok {
			if key == "" {
				return
			}
			switch method {
			case "Lock":
				held[key] = 'w'
			case "RLock":
				held[key] = 'r'
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.writeTarget(lhs, held)
		}
		for _, rhs := range s.Rhs {
			w.expr(rhs, held)
		}
	case *ast.IncDecStmt:
		w.writeTarget(s.X, held)
	case *ast.DeferStmt:
		w.deferStmt(s, held)
	case *ast.GoStmt:
		w.goStmt(s, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.returnEscape(r, held)
			w.expr(r, held)
			if id, ok := r.(*ast.Ident); ok {
				if v, ok := w.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && !v.IsField() {
					w.returned[v] = true
				}
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		inner := copyHeld(held)
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				w.writeTarget(s.Key, held)
			}
			if s.Value != nil {
				w.writeTarget(s.Value, held)
			}
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Tag, held)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				w.expr(e, held)
			}
			w.stmts(clause.Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			w.stmts(clause.Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			inner := copyHeld(held)
			if clause.Comm != nil {
				w.stmt(clause.Comm, inner)
			}
			w.stmts(clause.Body, inner)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// deferStmt: a deferred unlock keeps the region open to the end of
// the body; any other deferred call is checked with the lock state at
// the defer site (deferred close-outs run before the deferred unlock
// in the usual Lock-then-defer pattern), and &local arguments are
// recorded for the close-out check.
func (w *walker) deferStmt(s *ast.DeferStmt, held map[string]byte) {
	if _, method, ok := w.lockOp(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
		return
	}
	w.expr(s.Call, held)
	for _, arg := range s.Call.Args {
		u, ok := arg.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		id, ok := u.X.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := w.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && !v.IsField() && !w.defSeen[v] {
			w.defSeen[v] = true
			w.deferred = append(w.deferred, deferredPtr{v: v, pos: s.Pos()})
		}
	}
}

// goStmt: the goroutine body does not inherit the launcher's locks —
// launching one inside a lock region is itself a scope escape, the
// arguments are evaluated under the current locks, and the body (or
// named callee) is checked lock-free.
func (w *walker) goStmt(s *ast.GoStmt, held map[string]byte) {
	if len(held) > 0 && !w.wildcard {
		keys := make([]string, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.pass.Reportf(s.Pos(),
			"goroutine launched while %q is held; the lock does not cover the goroutine body", keys[0])
	}
	for _, arg := range s.Call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, map[string]byte{})
			continue
		}
		w.expr(arg, held)
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.stmts(fl.Body.List, map[string]byte{})
		return
	}
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X, held)
	}
	w.callCheck(s.Call, map[string]byte{})
}

// expr checks guarded reads and callee lock requirements in an
// expression evaluated under the given lock state. Function literals
// invoked at their call site (immediate calls, comparator arguments)
// run under the caller's locks; literals in any other position are
// stored or returned closures and are walked lock-free.
func (w *walker) expr(e ast.Expr, held map[string]byte) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := map[string]byte{}
			if w.syncLits[n] {
				inner = copyHeld(held)
			}
			w.stmts(n.Body.List, inner)
			return false
		case *ast.CallExpr:
			w.callCheck(n, held)
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				w.syncLits[fl] = true
			}
			for _, a := range n.Args {
				if fl, ok := a.(*ast.FuncLit); ok {
					w.syncLits[fl] = true
				}
			}
		case *ast.SelectorExpr:
			w.readCheck(n, held)
		}
		return true
	})
}

func (w *walker) readCheck(sel *ast.SelectorExpr, held map[string]byte) {
	v, ok := w.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return
	}
	mu := w.c.guardOf(v)
	if mu == "" || w.wildcard {
		return
	}
	if heldFor(held, exprPath(sel.X), mu, false) {
		return
	}
	w.pass.Reportf(sel.Pos(), "read of guarded field %q without %q held", v.Name(), mu)
}

// writeTarget checks an assignment target: index and pointer layers
// are peeled so element writes through a guarded field count, index
// operands and the base path are still read-checked.
func (w *walker) writeTarget(lhs ast.Expr, held map[string]byte) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			w.expr(x.Index, held)
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	v, isVar := w.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if isVar {
		if mu := w.c.guardOf(v); mu != "" && !w.wildcard {
			base := exprPath(sel.X)
			switch {
			case heldFor(held, base, mu, true):
				// write-locked: fine
			case heldFor(held, base, mu, false):
				w.pass.Reportf(sel.Pos(),
					"write to guarded field %q under read lock %q; the write lock is required", v.Name(), mu)
			default:
				w.pass.Reportf(sel.Pos(),
					"write to guarded field %q without %q write-locked", v.Name(), mu)
			}
		}
	}
	w.expr(sel.X, held)
}

// callCheck enforces the *Locked//lint:locked call-site discipline.
func (w *walker) callCheck(call *ast.CallExpr, held map[string]byte) {
	var id *ast.Ident
	var base ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		base = fun.X
	default:
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	mu, required := w.c.lockReq(fn)
	if !required || w.wildcard {
		return
	}
	if mu == "" {
		if len(held) > 0 {
			return
		}
		w.pass.Reportf(call.Pos(),
			"call to %q without a lock held (*Locked functions run under their caller's lock)", fn.Name())
		return
	}
	// The annotated guard is a mutex on the callee's receiver: for a
	// method call s.apply(...) the matching region key is "s.<mu>".
	basePath := ""
	if base != nil {
		basePath = exprPath(base)
	}
	if heldFor(held, basePath, mu, false) {
		return
	}
	w.pass.Reportf(call.Pos(),
		"call to %q requires %q held (//lint:locked %s)", fn.Name(), mu, mu)
}

// returnEscape flags returning a guarded reference-typed field while
// its guard is held: the interior pointer outlives the deferred
// unlock and hands the caller unsynchronized state.
func (w *walker) returnEscape(r ast.Expr, held map[string]byte) {
	if w.wildcard {
		return
	}
	e := r
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	v, ok := w.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return
	}
	mu := w.c.guardOf(v)
	if mu == "" || !isRefType(v.Type()) {
		return
	}
	if !heldFor(held, exprPath(sel.X), mu, false) {
		return // unguarded read: readCheck reports it
	}
	w.pass.Reportf(sel.Pos(),
		"returning guarded field %q escapes the %q lock scope; return a copy or add a scoped //lint:allow %s with a justification",
		v.Name(), mu, Name)
}

func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
