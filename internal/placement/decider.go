package placement

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// Config tunes the paper's probabilistic placement rule.
type Config struct {
	// Pmin is the probability threshold below which a slot is skipped
	// (Algorithm 1 line 10 / Algorithm 2 line 11). The paper tunes it to
	// 0.4 on its testbed.
	Pmin float64
	// Estimator predicts I_jf for reduce cost computation; nil means the
	// paper's progress-scaled estimator.
	Estimator core.Estimator
	// JobPolicy orders jobs; the paper's experiments use fair ordering.
	JobPolicy JobPolicy
	// Deterministic replaces the Bernoulli draw with an unconditional
	// assignment whenever P ≥ Pmin. Used by the ablation of Section II-C's
	// design choice ("rather than assigning the task with the lowest
	// transmission cost instantly ... we use such a probability").
	Deterministic bool
	// SpreadReduces enforces Algorithm 2 line 1: at most one running
	// reduce task of a job per node. On by default via DefaultConfig.
	SpreadReduces bool
	// Model converts (C_avg, C) into the assignment probability; nil means
	// the paper's exponential model (Formula 4). Section V calls the
	// exploration of alternative models out as future work.
	Model core.ProbabilityModel
	// Naive disables the incremental cost caches: map costs are evaluated
	// directly against the cost model and reduce costers are rebuilt from
	// scratch whenever they go stale. The cached path is bit-identical to
	// this one; the flag exists for the equivalence tests and benchmarks
	// that prove it.
	Naive bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Pmin:          0.4,
		Estimator:     core.ProgressScaled{},
		JobPolicy:     FairJobs,
		SpreadReduces: true,
	}
}

// JobPolicy orders jobs for task-level scheduling.
type JobPolicy int

// Job-level policies.
const (
	// FairJobs orders jobs by fewest running tasks of the requested kind
	// (Hadoop Fair Scheduler's equal-share special case, as used in the
	// paper's experiments), breaking ties by submission order.
	FairJobs JobPolicy = iota
	// FIFOJobs orders jobs strictly by submission order.
	FIFOJobs
)

// String names the policy.
func (p JobPolicy) String() string {
	if p == FIFOJobs {
		return "fifo"
	}
	return "fair"
}

// TaskKind selects which running-task count fair ordering uses.
type TaskKind int

// Task kinds for job ordering.
const (
	MapTasks TaskKind = iota
	ReduceTasks
)

// Request is the decision input for one slot offer: the live job set
// with its progress state, the availability snapshots (the N_m / N_r of
// Formulas 4–5, normally taken from Service.Snapshot), and the time the
// staleness of cached reduce costers is judged against. The embedded
// scratch buffers are reused across calls when the caller reuses the
// Request object, so a Request is single-client like the Decider.
type Request struct {
	Now  sim.Time
	Jobs []*job.Job // submitted, unfinished jobs in submission order

	// AvailMap / AvailReduce snapshot the nodes that currently have at
	// least one free slot of the kind, including the offered node, plus
	// the optional per-class counts and identity version the
	// class-collapsed cost sums consume (see core.Avail).
	AvailMap    core.Avail
	AvailReduce core.Avail

	// Slowstart is the map-progress fraction a job must reach before its
	// reduce tasks become schedulable (Hadoop's
	// mapred.reduce.slowstart.completed.maps, default 0.05).
	Slowstart float64

	// jobBuf and keyBuf are OrderJobs scratch, reused across offers when
	// the caller reuses the Request object. The slice returned by
	// OrderJobs is valid only until the next call.
	jobBuf []*job.Job
	keyBuf []int
}

// OrderJobs returns req.Jobs sorted under the policy for the given kind,
// considering only jobs that still have pending tasks of that kind. The
// returned slice is Request scratch: valid until the next OrderJobs call
// on the same Request, never retained by callers. The fair-policy sort
// is a stable insertion sort on per-job keys computed once — identical
// ordering to a stable sort with a recomputing comparator, without the
// comparator closure or the O(n log n) task-list rescans.
func OrderJobs(req *Request, policy JobPolicy, kind TaskKind) []*job.Job {
	out := req.jobBuf[:0]
	for _, j := range req.Jobs {
		switch kind {
		case MapTasks:
			if j.HasPendingMaps() {
				out = append(out, j)
			}
		case ReduceTasks:
			if j.HasPendingReduces() && reduceEligible(req, j) {
				out = append(out, j)
			}
		}
	}
	req.jobBuf = out
	if policy == FIFOJobs || len(out) < 2 {
		return out // req.Jobs is already in submission order
	}
	keys := req.keyBuf[:0]
	for _, j := range out {
		m, r := j.RunningTasks()
		if kind == MapTasks {
			keys = append(keys, m)
		} else {
			keys = append(keys, r)
		}
	}
	req.keyBuf = keys
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && keys[k] < keys[k-1]; k-- {
			keys[k], keys[k-1] = keys[k-1], keys[k]
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// reduceEligible applies the slowstart gate: a job's reduces may launch
// only once enough map work has completed.
func reduceEligible(req *Request, j *job.Job) bool {
	return j.MapProgress() >= req.Slowstart
}

// Outcome is the full decision breakdown for one placement request —
// the same C / C_avg / P / P_min / draw vocabulary the observer stream
// emits, plus the consistency markers of the concurrent contract.
type Outcome struct {
	// C, CAvg, P, PMin are the Formula 1–5 terms behind the decision;
	// zero-valued when no candidate was found.
	C, CAvg, P, PMin float64
	// Draw records how the decision resolved: "local", "local_fallback",
	// "accept", "deterministic", "below_pmin", "decline", or "" when no
	// candidate existed.
	Draw string
	// Epoch is the Service delta epoch the decision was computed at.
	Epoch uint64
	// Torn reports that the availability versions or delta epoch moved
	// while the decision held the read lock — impossible under the
	// locking contract, asserted by the concurrent stress test.
	Torn bool
	// Err is non-nil when the decision could not run at all — today only
	// ErrDeciderInvalid, from a Decider whose cost model failed to
	// build. No candidate was considered and no randomness consumed.
	Err error
}

// Decider is one client's decision session against a Service: it owns
// the per-client cost model (whose class-collapse scratch buffers make
// it single-threaded), the incremental map/reduce cost caches, the RNG
// consumed by the Bernoulli gate, and the observer stream decisions are
// emitted to. A Decider is NOT safe for concurrent use; run one per
// deciding goroutine. Decisions hold the Service read lock end to end,
// so any number of Deciders decide concurrently against one Service
// while Apply* deltas serialize against them.
//
// rng and stream may be nil: a nil rng restricts the Decider to
// deterministic gates and gate-free evaluation (EvaluateMap), a nil
// stream disables emission.
type Decider struct {
	svc *Service
	cfg Config
	rng *sim.RNG
	obs *obs.Stream

	// err marks an invalid Decider (cost-model construction failed);
	// decision methods return it through Outcome.Err.
	err error

	cost *core.CostModel

	// costerCache memoizes per-job reduce costers for a short window:
	// heartbeat-reported progress moves slowly relative to the offer rate,
	// so rebuilding the O(maps x reduces) aggregation on every slot offer
	// only burns time (a real JobTracker caches these statistics too).
	// Entries of finished jobs are swept by sweep() so the cache cannot
	// grow past the set of live jobs.
	costerCache map[job.ID]costerEntry

	// sweptLen / sweptTail identify the job set the last sweep ran
	// against: the live list only ever appends strictly increasing job
	// IDs, so an unchanged (length, last ID) pair means the set itself is
	// unchanged and the sweep can be skipped.
	sweptLen  int
	sweptTail job.ID

	// mapCost evaluates Formula 1: a per-Decider MapCoster on the cached
	// path, the direct cost model when cfg.Naive is set.
	mapCost core.MapCostEvaluator
	maps    *core.MapCoster // nil on the naive path
}

// costerEntry is one cached reduce coster with its last refresh time.
type costerEntry struct {
	at sim.Time
	rc *core.ReduceCoster
}

// costerMaxAge is how long a cached coster stays fresh, in simulated
// seconds.
const costerMaxAge = 1.0

// NewDecider opens a decision session against svc. Zero-value estimator
// and model fall back to the paper's defaults.
func NewDecider(svc *Service, cfg Config, rng *sim.RNG, stream *obs.Stream) *Decider {
	if cfg.Estimator == nil {
		cfg.Estimator = core.ProgressScaled{}
	}
	if cfg.Model == nil {
		cfg.Model = core.Exponential{}
	}
	d := &Decider{
		svc:         svc,
		cfg:         cfg,
		rng:         rng,
		obs:         stream,
		costerCache: make(map[job.ID]costerEntry),
	}
	// Opening a session reads shared state (the store's distance epoch,
	// link factors), so it takes the service read lock: sessions may open
	// while delta writers are running.
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	// The Service constructor validated the same inputs, so this cannot
	// fail today; each Decider gets its own model because the
	// class-collapse scratch buffers inside are single-threaded. Should
	// it ever fail, the Decider is invalid: decisions surface
	// ErrDeciderInvalid through Outcome.Err instead of panicking.
	cost, err := core.NewCostModel(svc.net, svc.store, svc.rate, svc.mode)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrDeciderInvalid, err)
		return d
	}
	d.cost = cost
	if cfg.Naive {
		d.mapCost = cost.Evaluator()
	} else {
		d.maps = cost.NewMapCoster()
		d.mapCost = d.maps
	}
	return d
}

// Err reports why the Decider is invalid (nil for a usable one).
func (d *Decider) Err() error { return d.err }

// Config returns the decision configuration the session runs under.
func (d *Decider) Config() Config { return d.cfg }

// Mode returns the service's distance interpretation.
func (d *Decider) Mode() core.Mode { return d.svc.mode }

// Intn draws from the session RNG (baseline schedulers share the
// session's stream so decision traces stay reproducible).
func (d *Decider) Intn(n int) int { return d.rng.Intn(n) }

// Bernoulli draws from the session RNG with success probability p.
func (d *Decider) Bernoulli(p float64) bool { return d.rng.Bernoulli(p) }

// Locality classifies where m would run relative to its input replicas.
func (d *Decider) Locality(m *job.MapTask, node topology.NodeID) job.Locality {
	d.svc.mu.RLock()
	defer d.svc.mu.RUnlock()
	return d.cost.Locality(m, node)
}

// NewReduceCoster builds a fresh, uncached reduce coster for j (the
// baseline schedulers' path; the probabilistic path caches via
// PlaceReduce). The returned coster reads shared service state and is
// therefore for single-threaded (embedded) use only.
func (d *Decider) NewReduceCoster(j *job.Job, est core.Estimator) *core.ReduceCoster {
	d.svc.mu.RLock()
	defer d.svc.mu.RUnlock()
	return d.cost.NewReduceCoster(j, est)
}

// coster returns a fresh-enough reduce coster for j. A stale coster is
// brought up to date incrementally (or rebuilt from scratch on the naive
// path — the two are bit-identical, see core.ReduceCoster.Refresh).
func (d *Decider) coster(j *job.Job, now sim.Time) *core.ReduceCoster {
	if e, ok := d.costerCache[j.ID]; ok {
		if float64(now-e.at) < costerMaxAge {
			return e.rc
		}
		if !d.cfg.Naive {
			e.rc.Refresh()
			d.costerCache[j.ID] = costerEntry{at: now, rc: e.rc}
			return e.rc
		}
	}
	rc := d.cost.NewReduceCoster(j, d.cfg.Estimator)
	d.costerCache[j.ID] = costerEntry{at: now, rc: rc}
	return rc
}

// sweep evicts cached state of jobs that left the live set (finished or
// removed), fixing the per-completed-job leak of both the reduce-coster
// cache and the map-cost rows. Evicted jobs are never offered slots
// again, so eviction cannot change a scheduling decision. It runs on
// every job-set change — detected by the (length, tail ID) signature of
// the append-ordered live list, whose IDs strictly increase — rather than
// only when the cache outgrows the live set: under balanced churn (one
// job finishing as another arrives) the sizes stay equal while dead
// entries pile up.
func (d *Decider) sweep(req *Request) {
	tail := job.ID(-1)
	if n := len(req.Jobs); n > 0 {
		tail = req.Jobs[n-1].ID
	}
	if len(req.Jobs) == d.sweptLen && tail == d.sweptTail && len(d.costerCache) <= len(req.Jobs) {
		return
	}
	d.sweptLen, d.sweptTail = len(req.Jobs), tail
	live := make(map[job.ID]struct{}, len(req.Jobs))
	for _, j := range req.Jobs {
		live[j.ID] = struct{}{}
	}
	for id, e := range d.costerCache {
		if _, ok := live[id]; !ok {
			if d.maps != nil {
				d.maps.Forget(e.rc.Job())
			}
			delete(d.costerCache, id)
		}
	}
}

// consistency captures the markers the torn-snapshot check compares.
type consistency struct {
	mapV, reduceV uint64
	epoch         uint64
}

// observeLocked reads the consistency markers; caller holds the read
// lock.
func (d *Decider) observeLocked() consistency {
	mv, rv := d.svc.slots.Versions()
	return consistency{mapV: mv, reduceV: rv, epoch: d.svc.epoch}
}

// finishLocked closes out a decision's Outcome under the read lock:
// re-read the markers and flag a torn read if anything moved.
func (d *Decider) finishLocked(start consistency, out *Outcome) {
	end := d.observeLocked()
	out.Epoch = end.epoch
	out.Torn = end != start
}

// mapScan is the result of Algorithm 1's candidate scan over the
// fair-ordered job queue, before the P_min / Bernoulli gate.
type mapScan struct {
	best, local      core.Choice
	found, haveLocal bool
	// instant marks a data-local best candidate from the fairest job
	// that has one: Algorithm 1 assigns it immediately (P = 1 when
	// C = 0) without consulting the gate.
	instant bool
}

// scanMaps runs the candidate scan on the offered node. Candidate tasks
// come from the fair-ordered job queue: a data-local best candidate
// (P = 1) from the fairest job stops the scan; otherwise the
// highest-saving candidate across jobs is kept for the gate along with
// the first data-local fallback found (a small local task can be
// out-saved by a large remote one). Scanning past the head job mirrors
// how Hadoop's job-level scheduler iterates jobs when the head job has
// nothing attractive for a node.
func (d *Decider) scanMaps(req *Request, node topology.NodeID) mapScan {
	d.sweep(req)
	var s mapScan
	for _, j := range OrderJobs(req, d.cfg.JobPolicy, MapTasks) {
		sel, ok := core.SelectMapTaskWith(d.mapCost, d.cfg.Model, j.PendingMaps(), node, req.AvailMap)
		if !ok {
			continue
		}
		c := sel.Best
		if c.Cost == 0 {
			// Data-local placement for the fairest job that has one:
			// assign instantly (Algorithm 1: P_mj = 1 when C = 0).
			s.best, s.found, s.instant = c, true, true
			return s
		}
		if sel.HasLocal() && !s.haveLocal {
			// Fallback from the fairest job that has a local candidate.
			s.local = sel.Local
			s.haveLocal = true
		}
		if !s.found || c.Saving() > s.best.Saving() {
			s.best = c
			s.found = true
		}
	}
	return s
}

// Evaluation is the gate-free view of one map decision: what the
// candidate scan concluded before any randomness. The replay driver
// uses it to re-derive recorded decision breakdowns without consuming
// an RNG stream.
type Evaluation struct {
	// Best is the highest-saving candidate (or the instant data-local
	// winner when InstantLocal is set); valid when HasBest.
	Best core.Choice
	// Local is the first data-local fallback candidate; valid when
	// HasLocal. Never set when InstantLocal is.
	Local core.Choice
	// HasBest / HasLocal report which candidates exist.
	HasBest, HasLocal bool
	// InstantLocal marks a zero-cost best from the fairest job: assigned
	// immediately with P = 1, no gate.
	InstantLocal bool
}

// EvaluateMap runs Algorithm 1's candidate scan for a map slot offer on
// node, without the P_min / Bernoulli gate and without emitting events.
// It consumes no randomness, so it can be interleaved freely with
// recorded decision streams.
func (d *Decider) EvaluateMap(req *Request, node topology.NodeID) Evaluation {
	if d.err != nil {
		return Evaluation{}
	}
	d.svc.mu.RLock()
	defer d.svc.mu.RUnlock()
	s := d.scanMaps(req, node)
	return Evaluation{
		Best:         s.best,
		Local:        s.local,
		HasBest:      s.found,
		HasLocal:     s.haveLocal,
		InstantLocal: s.instant,
	}
}

// PlaceMap implements Algorithm 1 on the offered node: the candidate
// scan (see scanMaps), then the P_min threshold and Bernoulli draw for
// the highest-saving candidate. When the gate rejects it, the best
// data-local candidate found along the way is assigned instead —
// Algorithm 1's P = 1 rule never leaves the slot idle while a zero-cost
// placement exists. Returns the chosen task (nil when the slot stays
// idle) and the full decision breakdown.
func (d *Decider) PlaceMap(req *Request, node topology.NodeID) (m *job.MapTask, out Outcome) {
	if d.err != nil {
		out.Err = d.err
		return nil, out
	}
	d.svc.mu.RLock()
	defer d.svc.mu.RUnlock()
	start := d.observeLocked()
	// out is a named return: the deferred close-out must write the
	// Outcome the caller receives, not a by-value copy.
	defer d.finishLocked(start, &out)
	s := d.scanMaps(req, node)
	if s.instant {
		c := s.best
		out.C, out.CAvg, out.P, out.PMin, out.Draw = 0, c.AvgCost, 1, d.cfg.Pmin, "local"
		if d.obs.Enabled() {
			d.emitChoice(req, node, obs.TaskAssign, c,
				&obs.Decision{C: 0, CAvg: c.AvgCost, P: 1, PMin: d.cfg.Pmin, Draw: "local"}, "")
		}
		return c.MapTask, out
	}
	if !s.found {
		return nil, out
	}
	if t, ok := d.gate(req, node, s.best, &out); ok {
		return t.MapTask, out
	}
	if s.haveLocal {
		out.C, out.CAvg, out.P, out.PMin, out.Draw = 0, s.local.AvgCost, 1, d.cfg.Pmin, "local_fallback"
		if d.obs.Enabled() {
			d.emitChoice(req, node, obs.TaskAssign, s.local,
				&obs.Decision{C: 0, CAvg: s.local.AvgCost, P: 1, PMin: d.cfg.Pmin, Draw: "local_fallback"}, "")
		}
		return s.local.MapTask, out
	}
	return nil, out
}

// gate runs the shared tail of Algorithms 1 and 2: the P_min threshold
// (lines 10-12 / 11-13) and the Bernoulli draw, emitting the offer /
// assign / skip events with the Formula 1-5 breakdown when a sink is
// attached. The Bernoulli draw consumes exactly the same RNG stream
// whether or not observers are attached. best.Prob already carries the
// configured model's probability — selection computes it exactly once.
func (d *Decider) gate(req *Request, node topology.NodeID, best core.Choice, out *Outcome) (core.Choice, bool) {
	prob := best.Prob
	out.C, out.CAvg, out.P, out.PMin = best.Cost, best.AvgCost, prob, d.cfg.Pmin
	emit := d.obs.Enabled()
	if emit {
		d.emitChoice(req, node, obs.TaskOffer, best,
			&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: d.cfg.Pmin}, "")
	}
	if prob < d.cfg.Pmin {
		out.Draw = "below_pmin"
		if emit {
			d.emitChoice(req, node, obs.TaskSkip, best,
				&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: d.cfg.Pmin, Draw: "below_pmin"}, "below_pmin")
		}
		return best, false // skip this node
	}
	if d.cfg.Deterministic || d.rng.Bernoulli(prob) {
		draw := "accept"
		if d.cfg.Deterministic {
			draw = "deterministic"
		}
		out.Draw = draw
		if emit {
			d.emitChoice(req, node, obs.TaskAssign, best,
				&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: d.cfg.Pmin, Draw: draw}, "")
		}
		return best, true
	}
	out.Draw = "decline"
	if emit {
		d.emitChoice(req, node, obs.TaskSkip, best,
			&obs.Decision{C: best.Cost, CAvg: best.AvgCost, P: prob, PMin: d.cfg.Pmin, Draw: "decline"}, "declined")
	}
	return best, false // Bernoulli declined: slot stays idle this round
}

// emitChoice publishes one decision event for the chosen candidate.
func (d *Decider) emitChoice(req *Request, node topology.NodeID, t obs.Type, c core.Choice, dec *obs.Decision, reason string) {
	kind, idx := "map", 0
	var j *job.Job
	if c.MapTask != nil {
		j, idx = c.MapTask.Job, c.MapTask.Index
	} else {
		kind, j, idx = "reduce", c.ReduceTask.Job, c.ReduceTask.Index
	}
	e := obs.Event{
		T:    float64(req.Now),
		Type: t,
		Node: int(node),
		Job:  j.Spec.Name,
		Task: &obs.TaskRef{Kind: kind, Index: idx},
	}
	e.Decision = dec
	e.Reason = reason
	if t == obs.TaskAssign && c.MapTask != nil {
		e.Locality = d.cost.Locality(c.MapTask, node).String()
	}
	d.obs.Emit(e)
}

// PlaceReduce implements Algorithm 2 on the offered node, pooling
// candidates across the fair-ordered job queue like PlaceMap.
func (d *Decider) PlaceReduce(req *Request, node topology.NodeID) (r *job.ReduceTask, out Outcome) {
	// The first pass honours Algorithm 2 line 1 (no second running reduce
	// of a job on one node); when that leaves the slot with no candidate
	// at all — e.g. the batch tail, where a single job's reduces outnumber
	// the cluster's nodes — a work-conserving second pass relaxes the
	// rule, as any deployed scheduler must for jobs with more reduces than
	// nodes.
	if d.err != nil {
		out.Err = d.err
		return nil, out
	}
	d.svc.mu.RLock()
	defer d.svc.mu.RUnlock()
	start := d.observeLocked()
	defer d.finishLocked(start, &out)
	d.sweep(req)
	best, found := d.selectReduce(req, node, d.cfg.SpreadReduces)
	if !found && d.cfg.SpreadReduces {
		best, found = d.selectReduce(req, node, false)
	}
	if !found {
		return nil, out
	}
	if t, ok := d.gate(req, node, best, &out); ok {
		return t.ReduceTask, out
	}
	return nil, out
}

func (d *Decider) selectReduce(req *Request, node topology.NodeID, spread bool) (core.Choice, bool) {
	var best core.Choice
	found := false
	for _, j := range OrderJobs(req, d.cfg.JobPolicy, ReduceTasks) {
		if spread && j.HasReduceOn(node) {
			continue // Algorithm 2 line 1
		}
		rc := d.coster(j, req.Now)
		c, ok := core.SelectReduceTask(rc, d.cfg.Model, j.PendingReduces(), node, req.AvailReduce)
		if !ok {
			continue
		}
		if !found || c.Saving() > best.Saving() {
			best = c
			found = true
		}
	}
	return best, found
}
