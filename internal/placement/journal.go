// Delta journal: a deterministic, versioned, CRC-protected JSONL log of
// every delta applied through the Service, plus full-state checkpoints.
// Together they make the service crash-safe: Recover rebuilds a Service
// whose epoch, availability snapshots and subsequent decision stream
// are bit-identical to the uninterrupted run (see recover.go and the
// kill/restart chaos harness in chaos.go).
//
// Wire format. One record per line, each line a small envelope:
//
//	{"crc":"<8 hex digits>","rec":{...}}
//
// The CRC is IEEE CRC-32 over the exact bytes of the "rec" value, so a
// single flipped bit anywhere in the record fails verification. The
// first record of every journal segment is a "begin" marker carrying
// the epoch the journal attached at; every subsequent record carries
// seq = the service epoch after applying it, forming a gap-free chain.
// A later "begin" with seq <= the current chain position logically
// truncates the records after it — that is how a recovered service
// appends to the same journal after a crash discarded a damaged tail.
//
// Checkpoints use the same envelope, one line for the whole state.
package placement

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"mapsched/internal/hdfs"
	"mapsched/internal/topology"
)

// Op names a journal record's delta kind. The deltajournal analyzer
// enforces that every constant of this enum is encoded somewhere and
// covered by every //lint:journal-exhaustive decode/replay switch.
//
//lint:journal-ops
type Op string

// Journal record ops: one per entry in the Service delta vocabulary,
// plus the begin marker.
const (
	OpBegin           Op = "begin"
	OpAcquire         Op = "acquire"
	OpRelease         Op = "release"
	OpReplicaAdd      Op = "replica_add"
	OpReplicaLoss     Op = "replica_loss"
	OpNodeReplicaLoss Op = "node_replica_loss"
	OpOffline         Op = "offline"
	OpBlacklist       Op = "blacklist"
	OpLinkFactor      Op = "link_factor"
	OpUpdate          Op = "update"
)

// recordVersion is the journal wire-format version this build writes
// and accepts.
const recordVersion = 1

// Record is one journal entry. Fields beyond V/Seq/Op are populated per
// op; omitempty only ever drops zero values, which decode back to zero,
// so round-trips are exact.
type Record struct {
	V   int    `json:"v"`
	Seq uint64 `json:"seq"`
	Op  Op     `json:"op"`

	Kind  string  `json:"kind,omitempty"`  // acquire/release: "map" | "reduce"
	Node  int     `json:"node,omitempty"`  // node deltas: the node ID
	Block int     `json:"block,omitempty"` // replica_add/replica_loss: the block ID
	On    bool    `json:"on,omitempty"`    // offline/blacklist: the new flag value
	F     float64 `json:"f,omitempty"`     // link_factor: the factor
	Note  string  `json:"note,omitempty"`  // opaque client annotation, surfaced by Recover
}

// slotKind maps the record's kind string back to the SlotKind.
func (r *Record) slotKind() SlotKind {
	if r.Kind == "reduce" {
		return ReduceSlot
	}
	return MapSlot
}

// LinkState is one rescaled host link in a checkpoint (factor != 1).
type LinkState struct {
	Node   int     `json:"node"`
	Factor float64 `json:"factor"`
}

// Checkpoint is a full-state snapshot of a Service: everything needed
// to rebuild its scheduler-visible state over the same base deps. The
// replica slices preserve exact order — Nearest breaks distance ties by
// slice order, so order is decision-relevant.
type Checkpoint struct {
	V          int         `json:"v"`
	Epoch      uint64      `json:"epoch"`
	Nodes      int         `json:"nodes"`
	UsedMap    []int       `json:"used_map"`
	UsedReduce []int       `json:"used_reduce"`
	Offline    []int       `json:"offline,omitempty"`
	Blacklist  []int       `json:"blacklist,omitempty"`
	Links      []LinkState `json:"links,omitempty"`
	Replicas   [][]int     `json:"replicas"`
}

// envelope is the CRC wrapper around every journal/checkpoint line.
type envelope struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// sealLine appends the enveloped, newline-terminated encoding of rec to
// buf.
func sealLine(buf *bytes.Buffer, rec any) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(buf, `{"crc":"%08x","rec":`, crc32.ChecksumIEEE(body))
	buf.Write(body)
	buf.WriteString("}\n")
	return nil
}

// openLine verifies one enveloped line and returns the raw record
// bytes. json.Unmarshal fills the RawMessage with the verbatim input
// slice, so the CRC check covers the exact bytes that were written.
func openLine(line []byte) (json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("bad envelope: %v", err)
	}
	var want uint32
	if _, err := fmt.Sscanf(env.CRC, "%08x", &want); err != nil || len(env.CRC) != 8 {
		return nil, fmt.Errorf("bad crc field %q", env.CRC)
	}
	if got := crc32.ChecksumIEEE(env.Rec); got != want {
		return nil, fmt.Errorf("crc mismatch: %08x != %08x", got, want)
	}
	return env.Rec, nil
}

// journalWriter appends sealed records to the underlying writer. Any
// append failure is sticky: once an append fails the journal can no
// longer promise a complete delta history, so every later append (and
// hence every later delta) fails with ErrJournalBroken.
type journalWriter struct {
	w   io.Writer
	buf bytes.Buffer
	err error
}

// append seals and writes one record.
func (j *journalWriter) append(rec *Record) error {
	if j.err != nil {
		return j.err
	}
	j.buf.Reset()
	if err := sealLine(&j.buf, rec); err != nil {
		j.err = fmt.Errorf("%w: %v", ErrJournalBroken, err)
		return j.err
	}
	if _, err := j.w.Write(j.buf.Bytes()); err != nil {
		j.err = fmt.Errorf("%w: %v", ErrJournalBroken, err)
		return j.err
	}
	return nil
}

// DecodedJournal is the result of decoding a journal stream: the valid
// record prefix in order, the seq of the last valid record, and the
// typed tail verdict.
type DecodedJournal struct {
	// Records holds the decoded delta records (begin markers are
	// consumed by the chain logic, not returned). A begin marker that
	// rewinds the chain drops the records it supersedes.
	Records []Record
	// Epoch is the seq of the last valid record (or the attach epoch of
	// the last begin marker, if later).
	Epoch uint64
	// Err is nil for a clean journal; otherwise it wraps
	// ErrTruncatedTail (damage on the final line — the crash shape) or
	// ErrCorruptRecord (damage with valid-looking lines after it, or a
	// broken seq chain). Records/Epoch still hold the valid prefix.
	Err error
	// ValidBytes is the byte length of the valid line prefix (every
	// line consumed without damage, including begin markers). A
	// recovering writer truncates its journal file to this length
	// before appending — damaged bytes must not stay in the middle of
	// the stream, or the next decode would stop at them.
	ValidBytes int64
}

// DecodeJournal reads a journal stream and returns the longest valid
// prefix. It never panics on malformed input — damage is reported
// through DecodedJournal.Err — and returns a non-nil error only when
// the underlying reader fails.
//
//lint:journal-exhaustive Op
func DecodeJournal(r io.Reader) (*DecodedJournal, error) {
	dec := &DecodedJournal{}
	cr := &countingReader{r: r}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	// Split on bare '\n' without the \r-stripping of bufio.ScanLines:
	// writers never emit \r, and exact tokens keep the ValidBytes
	// accounting exact (a stray \r is damage, not line decoration).
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			return i + 1, data[:i], nil
		}
		if atEOF && len(data) > 0 {
			return len(data), data, nil
		}
		return 0, nil, nil
	})
	started := false
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		lineBytes := int64(len(raw)) + 1 // sealLine always terminates with \n
		if len(bytes.TrimSpace(raw)) == 0 {
			dec.Err = tailError(sc, fmt.Errorf("line %d: empty", line))
			return dec, nil
		}
		body, err := openLine(raw)
		if err != nil {
			dec.Err = tailError(sc, fmt.Errorf("line %d: %v", line, err))
			return dec, nil
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			dec.Err = tailError(sc, fmt.Errorf("line %d: bad record: %v", line, err))
			return dec, nil
		}
		if rec.V != recordVersion {
			dec.Err = tailError(sc, fmt.Errorf("line %d: unknown version %d", line, rec.V))
			return dec, nil
		}
		switch rec.Op {
		case OpBegin:
			if started && rec.Seq > dec.Epoch {
				dec.Err = tailError(sc, fmt.Errorf("line %d: begin at seq %d ahead of chain at %d", line, rec.Seq, dec.Epoch))
				return dec, nil
			}
			// A begin marker logically truncates everything after its
			// epoch: the writer recovered to that epoch and re-attached.
			for len(dec.Records) > 0 && dec.Records[len(dec.Records)-1].Seq > rec.Seq {
				dec.Records = dec.Records[:len(dec.Records)-1]
			}
			dec.Epoch = rec.Seq
			started = true
		case OpAcquire, OpRelease, OpReplicaAdd, OpReplicaLoss, OpNodeReplicaLoss,
			OpOffline, OpBlacklist, OpLinkFactor, OpUpdate:
			if started && rec.Seq != dec.Epoch+1 {
				dec.Err = tailError(sc, fmt.Errorf("line %d: seq %d breaks chain at %d", line, rec.Seq, dec.Epoch))
				return dec, nil
			}
			started = true
			dec.Epoch = rec.Seq
			dec.Records = append(dec.Records, rec)
		default:
			dec.Err = tailError(sc, fmt.Errorf("line %d: unknown op %q", line, rec.Op))
			return dec, nil
		}
		dec.ValidBytes += lineBytes
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			dec.Err = fmt.Errorf("%w: line %d: record too long", ErrCorruptRecord, line+1)
			return dec, nil
		}
		return dec, err
	}
	// A valid final line without a trailing newline (writers always add
	// one, but decoders must not trust input) would overcount by one.
	if dec.ValidBytes > cr.n {
		dec.ValidBytes = cr.n
	}
	return dec, nil
}

// countingReader tracks how many bytes the scanner consumed, bounding
// ValidBytes for inputs whose final line lacks a newline.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// tailError classifies damage at the current scan position: damage on
// the final line is the crash shape (truncated tail); damage with more
// lines after it is corruption.
func tailError(sc *bufio.Scanner, detail error) error {
	if sc.Scan() {
		return fmt.Errorf("%w: %v", ErrCorruptRecord, detail)
	}
	return fmt.Errorf("%w: %v", ErrTruncatedTail, detail)
}

// WriteCheckpoint writes a full-state snapshot of the service as a
// single CRC-protected line. A checkpoint plus the journal suffix past
// its epoch is a complete recovery input; callers typically checkpoint
// periodically and rotate the journal at the same cut.
func (s *Service) WriteCheckpoint(w io.Writer) error {
	s.mu.RLock()
	cp := Checkpoint{
		V:     recordVersion,
		Epoch: s.epoch,
		Nodes: s.slots.Size(),
	}
	cp.UsedMap = make([]int, cp.Nodes)
	cp.UsedReduce = make([]int, cp.Nodes)
	for i := 0; i < cp.Nodes; i++ {
		n := s.slots.Node(topology.NodeID(i))
		cp.UsedMap[i] = n.UsedMapSlots()
		cp.UsedReduce[i] = n.UsedReduceSlots()
		if n.Offline() {
			cp.Offline = append(cp.Offline, i)
		}
		if n.Blacklisted() {
			cp.Blacklist = append(cp.Blacklist, i)
		}
	}
	for i, f := range s.linkFactors {
		if f != 1 {
			cp.Links = append(cp.Links, LinkState{Node: i, Factor: f})
		}
	}
	cp.Replicas = make([][]int, s.store.NumBlocks())
	for b := range cp.Replicas {
		reps := s.store.Replicas(hdfs.BlockID(b))
		row := make([]int, len(reps))
		for j, r := range reps {
			row[j] = int(r)
		}
		cp.Replicas[b] = row
	}
	s.mu.RUnlock()

	var buf bytes.Buffer
	if err := sealLine(&buf, &cp); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeCheckpoint reads and verifies a checkpoint written by
// WriteCheckpoint. All damage is reported as ErrBadCheckpoint — a
// checkpoint restores as a whole or not at all.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	body, err := openLine(bytes.TrimSpace(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if cp.V != recordVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadCheckpoint, cp.V)
	}
	if cp.Nodes < 1 || len(cp.UsedMap) != cp.Nodes || len(cp.UsedReduce) != cp.Nodes {
		return nil, fmt.Errorf("%w: inconsistent node counts", ErrBadCheckpoint)
	}
	return &cp, nil
}

// StartJournal attaches a delta journal: every subsequent delta is
// appended to w (inside the write lock, so records are totally ordered
// and seq-contiguous) before it is applied. The first record is a begin
// marker carrying the current epoch. Journaling a service that is also
// mutated behind its back (embedded engine use) records only the deltas
// applied through the Service — standalone services get the complete
// history Recover needs.
//
// If an append ever fails, the journal is broken: the failing delta and
// every later one are rejected with ErrJournalBroken (the state did not
// change), until StopJournal or a fresh StartJournal.
func (s *Service) StartJournal(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &journalWriter{w: w}
	if err := j.append(&Record{V: recordVersion, Seq: s.epoch, Op: OpBegin}); err != nil {
		return err
	}
	s.journal = j
	return nil
}

// StopJournal detaches the journal (if any); subsequent deltas are no
// longer recorded.
func (s *Service) StopJournal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = nil
}

// journalLocked appends one delta record under the write lock, stamping
// the seq the epoch will hold after the delta applies. It is called
// after validation and before mutation: a failed append rejects the
// delta with the state untouched. Every Apply*/Update* delta method
// must reach this helper (the deltajournal analyzer proves it).
//
//lint:journal-append
func (s *Service) journalLocked(rec Record) error {
	if s.journal == nil {
		return nil
	}
	rec.V = recordVersion
	rec.Seq = s.epoch + 1
	return s.journal.append(&rec)
}
