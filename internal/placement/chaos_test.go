package placement_test

// The chaos harness test lives beside the replay round-trip test: it
// records a real probabilistic run with the engine, then kills and
// recovers the engine-free decision service across the stream.

import (
	"testing"

	"mapsched/internal/obs"
	"mapsched/internal/placement"
)

// chaosConfig records the shared workload and wraps it for KillRestart.
func chaosConfig(t *testing.T) placement.ChaosConfig {
	t.Helper()
	cfg, specs, events := record(t, nil)
	return placement.ChaosConfig{
		Replay: placement.ReplayConfig{
			Topology:           cfg.Topology,
			MapSlotsPerNode:    cfg.MapSlotsPerNode,
			ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
			Seed:               cfg.Seed,
			Specs:              specs,
			Sched:              placement.DefaultConfig(),
		},
		Events:          events,
		Kills:           24, // acceptance floor is 20 randomized kill points
		CheckpointEvery: 16,
		Seed:            5,
	}
}

// TestKillRestartConvergence is the acceptance run: two dozen randomized
// kill/recover cycles over a recorded workload, every re-derived decision
// byte-identical to its pre-crash line, final state byte-identical to the
// uninterrupted run, zero drift after every recovery.
func TestKillRestartConvergence(t *testing.T) {
	cfg := chaosConfig(t)
	rep, err := placement.KillRestart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations; first: %s", len(rep.Violations), rep.Violations[0])
	}
	if len(rep.Kills) < 20 {
		t.Fatalf("harness ran %d kills, acceptance needs >= 20", len(rep.Kills))
	}
	if rep.Decisions == 0 {
		t.Fatal("workload recorded no map decisions to converge on")
	}
	if rep.Rederived == 0 {
		t.Fatal("no decision was ever derived twice: the kills missed every convergence window")
	}
	for _, k := range rep.Kills {
		if k.Resumed > k.Event {
			t.Fatalf("kill@%d resumed at %d, past the kill point", k.Event, k.Resumed)
		}
		if k.RecoveredEpoch < k.CheckpointEpoch {
			t.Fatalf("kill@%d recovered to epoch %d behind its checkpoint %d", k.Event, k.RecoveredEpoch, k.CheckpointEpoch)
		}
	}
	t.Log(rep)
}

// TestKillRestartSurvivesTamper turns on journal damage: truncated tails,
// duplicated and reordered records rotate across the kills, each must be
// classified correctly and recovery must still converge. One
// journal_recover event reaches the obs stream per kill.
func TestKillRestartSurvivesTamper(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Tamper = true
	stream := obs.NewStream()
	recovers := 0
	stream.Attach(obs.Func(func(e obs.Event) {
		if e.Type == obs.JournalRecover {
			recovers++
		}
	}))
	cfg.Stream = stream

	rep, err := placement.KillRestart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations; first: %s", len(rep.Violations), rep.Violations[0])
	}
	if recovers != len(rep.Kills) {
		t.Fatalf("stream saw %d journal_recover events for %d kills", recovers, len(rep.Kills))
	}
	seen := map[placement.TamperMode]int{}
	for _, k := range rep.Kills {
		seen[k.Tamper]++
	}
	for _, m := range []placement.TamperMode{placement.TamperTruncate, placement.TamperDuplicate, placement.TamperReorder} {
		if seen[m] == 0 {
			t.Fatalf("damage rotation never exercised %s (saw %v)", m, seen)
		}
	}
	t.Logf("%s; tamper mix %v", rep, seen)
}
