package placement

import (
	"errors"
	"fmt"
)

// ErrDeltaConflict is the base of the defensive delta contract: every
// Apply* rejection — a delta that contradicts the service's current
// state — wraps it, so callers can match the whole family with a single
// errors.Is(err, ErrDeltaConflict) while still distinguishing the
// specific conflict. A rejected delta mutates nothing: the epoch, the
// availability snapshots and the per-class counts are exactly as they
// were before the call. Compare with errors.Is, never ==: every
// member wraps this base, so identity comparison silently misses the
// wrapped forms.
//
//lint:sentinel
var ErrDeltaConflict = errors.New("placement: delta conflicts with current state")

// Specific delta-contract violations. Each wraps ErrDeltaConflict
// and is returned wrapped again with call-site context, so callers
// must match with errors.Is.
//
//lint:sentinel
var (
	// ErrUnknownNode rejects a delta naming a node outside the cluster.
	ErrUnknownNode = fmt.Errorf("%w: unknown node", ErrDeltaConflict)
	// ErrUnknownBlock rejects a replica delta naming a block the store
	// does not hold.
	ErrUnknownBlock = fmt.Errorf("%w: unknown block", ErrDeltaConflict)
	// ErrNoFreeSlot rejects a duplicate acquire: the node has no free
	// slot of the requested kind left.
	ErrNoFreeSlot = fmt.Errorf("%w: no free slot", ErrDeltaConflict)
	// ErrSlotNotHeld rejects a release without a matching acquire.
	ErrSlotNotHeld = fmt.Errorf("%w: slot not held", ErrDeltaConflict)
	// ErrNodeUnavailable rejects an acquire on an offline or blacklisted
	// node: such nodes offer no slots.
	ErrNodeUnavailable = fmt.Errorf("%w: node unavailable", ErrDeltaConflict)
	// ErrUnknownLink rejects a link delta the network cannot express
	// (the topology does not support runtime link rescaling).
	ErrUnknownLink = fmt.Errorf("%w: unknown link", ErrDeltaConflict)
	// ErrBadLinkFactor rejects a non-finite or negative link factor.
	ErrBadLinkFactor = fmt.Errorf("%w: bad link factor", ErrDeltaConflict)
)

// Journal and recovery errors. Returned wrapped with detail; match
// with errors.Is.
//
//lint:sentinel
var (
	// ErrCorruptRecord reports a damaged record with valid records after
	// it (CRC mismatch, malformed JSON, unknown op/version, or a broken
	// seq chain in the middle of the journal). Decoding stops at the last
	// valid record before the damage.
	ErrCorruptRecord = errors.New("placement: corrupt journal record")
	// ErrTruncatedTail reports a damaged or incomplete final record — the
	// expected shape after a crash mid-append. Everything before it
	// decoded cleanly and recovery proceeds from the last valid record.
	ErrTruncatedTail = errors.New("placement: truncated journal tail")
	// ErrBadCheckpoint reports an unusable checkpoint: damaged envelope,
	// or state that contradicts the base deps it is being restored onto.
	// Checkpoints are all-or-nothing; there is no partial restore.
	ErrBadCheckpoint = errors.New("placement: bad checkpoint")
	// ErrJournalBroken reports that a journal append failed; the journal
	// is marked broken and every subsequent delta is rejected, because a
	// service that cannot record its deltas can no longer promise
	// recoverability.
	ErrJournalBroken = errors.New("placement: journal broken")
)

// ErrNotReplayable reports an event stream outside the replay envelope
// (fault, speculation or ModeNetworkCondition streams; see Replay).
//
//lint:sentinel
var ErrNotReplayable = errors.New("placement: stream not replayable")

// ErrDeciderInvalid reports a Decider whose cost model could not be
// built from the service's deps; its decision methods surface it
// through Outcome.Err instead of deciding.
//
//lint:sentinel
var ErrDeciderInvalid = errors.New("placement: decider invalid")
