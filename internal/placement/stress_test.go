package placement

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mapsched/internal/core"
	"mapsched/internal/job"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// TestConcurrentReadersUnderDeltas is the writer/reader contract under
// the race detector: one writer applies the full delta vocabulary in a
// tight loop while N readers, each with their own Decider, keep
// deciding. Every decision must observe an untorn snapshot (slot
// versions and delta epoch stable across the decision) and the epochs a
// reader observes must never move backwards.
func TestConcurrentReadersUnderDeltas(t *testing.T) {
	f := newFixture(t)

	// A pool of jobs with pending maps on every node so each decision
	// does real cost work against the store the writer is mutating.
	var jobs []*job.Job
	for id := job.ID(1); id <= 4; id++ {
		jobs = append(jobs, f.addJob(t, id, allNodes(8), 2))
	}
	// A dedicated block for the writer's replica add/loss churn.
	churn, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers    = 4
		iterations = 2000
	)
	var (
		stop      atomic.Bool
		decisions atomic.Int64
		wg        sync.WaitGroup
	)

	// Fork the reader RNGs before the goroutines start: forking shares
	// the parent stream and is not itself part of the concurrency
	// contract.
	rngs := make([]*sim.RNG, readers)
	for i := range rngs {
		rngs[i] = f.rng.Fork("reader")
	}

	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < iterations; i++ {
			n := topology.NodeID(i % 8)
			if err := f.svc.ApplySlotAcquire(MapSlot, n); err == nil {
				f.svc.ApplySlotRelease(MapSlot, n)
			}
			if err := f.svc.ApplySlotAcquire(ReduceSlot, n); err == nil {
				f.svc.ApplySlotRelease(ReduceSlot, n)
			}
			switch i % 4 {
			case 0:
				f.svc.ApplyReplicaAdd(churn, topology.NodeID(1+i%7))
			case 1:
				f.svc.ApplyNodeReplicaLoss(topology.NodeID(1 + i%7))
			case 2:
				f.svc.ApplyNodeOffline(n, true)
				f.svc.ApplyNodeOffline(n, false)
			case 3:
				f.svc.ApplyNodeBlacklist(n, i%8 == 3)
				f.svc.ApplyNodeBlacklist(n, false)
				if err := f.svc.ApplyLinkFactor(n, 0.5+float64(i%2)); err != nil {
					panic(err)
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := NewDecider(f.svc, DefaultConfig(), rngs[r], nil)
			req := &Request{Slowstart: 0.05}
			var lastEpoch uint64
			for i := 0; !stop.Load() || i < 100; i++ {
				v := f.svc.Snapshot()
				if v.Epoch < lastEpoch {
					t.Errorf("reader %d: snapshot epoch went backwards (%d < %d)", r, v.Epoch, lastEpoch)
					return
				}
				req.Now = sim.Time(i)
				req.Jobs = jobs
				req.AvailMap, req.AvailReduce = v.AvailMap, v.AvailReduce
				node := topology.NodeID(i % 8)
				var out Outcome
				if i%3 == 2 {
					_, out = d.PlaceReduce(req, node)
				} else {
					_, out = d.PlaceMap(req, node)
				}
				if out.Torn {
					t.Errorf("reader %d: decision %d observed a torn snapshot", r, i)
					return
				}
				if out.Epoch < v.Epoch {
					t.Errorf("reader %d: decision epoch %d behind snapshot epoch %d", r, out.Epoch, v.Epoch)
					return
				}
				lastEpoch = out.Epoch
				decisions.Add(1)
			}
		}(r)
	}

	wg.Wait()
	if n := decisions.Load(); n < readers*100 {
		t.Fatalf("readers made only %d decisions", n)
	}
	if f.svc.Epoch() == 0 {
		t.Fatal("writer applied no deltas")
	}
}

// TestAuditorUnderDeltaChurn is the auditor-vs-writer-vs-reader stress
// contract under the race detector: the background auditor rebuilds the
// state from scratch while a journaling writer churns the full delta
// vocabulary and readers keep deciding. Every audit must come back
// clean (the writer only uses the public delta methods, so there is no
// drift to find) and every decision untorn.
func TestAuditorUnderDeltaChurn(t *testing.T) {
	f := newFixture(t)
	jobs := []*job.Job{f.addJob(t, 1, allNodes(8), 2)}
	churn, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	var journal syncBuffer
	if err := f.svc.StartJournal(&journal); err != nil {
		t.Fatal(err)
	}

	var audits atomic.Int64
	stopAuditor := f.svc.StartAuditor(AuditorConfig{
		Interval: time.Microsecond, // audit as hot as the scheduler allows
		OnReport: func(r AuditReport) {
			audits.Add(1)
			if !r.Clean() {
				t.Errorf("auditor found drift in a delta-only run: %s", r)
			}
		},
	})
	defer stopAuditor()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the journaling writer
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 1500; i++ {
			n := topology.NodeID(i % 8)
			if err := f.svc.ApplySlotAcquire(MapSlot, n); err == nil {
				f.svc.ApplySlotRelease(MapSlot, n)
			}
			switch i % 3 {
			case 0:
				f.svc.ApplyReplicaAdd(churn, topology.NodeID(1+i%7))
			case 1:
				f.svc.ApplyNodeReplicaLoss(topology.NodeID(1 + i%7))
			case 2:
				f.svc.ApplyLinkFactor(n, 0.5+float64(i%2))
			}
		}
	}()
	// Fork before spawning: forking shares the parent stream and is not
	// part of the concurrency contract.
	readerRNGs := []*sim.RNG{f.rng.Fork("audit-reader"), f.rng.Fork("audit-reader")}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := NewDecider(f.svc, DefaultConfig(), readerRNGs[r], nil)
			req := &Request{Slowstart: 0.05}
			for i := 0; !stop.Load() || i < 50; i++ {
				v := f.svc.Snapshot()
				req.Now = sim.Time(i)
				req.Jobs = jobs
				req.AvailMap, req.AvailReduce = v.AvailMap, v.AvailReduce
				if _, out := d.PlaceMap(req, topology.NodeID(i%8)); out.Torn {
					t.Errorf("reader %d: torn snapshot under auditor churn", r)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	stopAuditor()
	if audits.Load() == 0 {
		t.Fatal("auditor never ran")
	}
	// The synchronous hook agrees once the churn is over, and the journal
	// the writer kept is a faithful recovery input.
	if a := f.svc.Audit(); !a.Clean() {
		t.Fatalf("final audit: %s", a)
	}
	f2 := newFixture(t) // same seed state: same job blocks, same churn block
	f2.addJob(t, 1, allNodes(8), 2)
	if _, err := f2.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{0}}); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(Deps{Net: f2.net, Store: f2.store, Rate: f2.net, Slots: f2.slots, Mode: core.ModeHops},
		nil, bytes.NewReader(journal.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tail != nil || rec.Epoch != f.svc.Epoch() {
		t.Fatalf("journal written under churn recovered to epoch %d (tail %v), writer at %d", rec.Epoch, rec.Tail, f.svc.Epoch())
	}
	if a := rec.Service.Audit(); !a.Clean() {
		t.Fatalf("post-recovery drift: %s", a)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the service serializes
// journal writes under its own lock, but the test also reads the buffer
// afterwards and the race detector wants the handoff explicit.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestEvaluateUnderDeltas drives the gate-free evaluation path (the
// replay client) concurrently with a delta writer; it shares the same
// read-lock guarantee as the deciding path.
func TestEvaluateUnderDeltas(t *testing.T) {
	f := newFixture(t)
	jobs := []*job.Job{f.addJob(t, 1, allNodes(8), 1)}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 1000; i++ {
			n := topology.NodeID(i % 8)
			if err := f.svc.ApplySlotAcquire(MapSlot, n); err == nil {
				f.svc.ApplySlotRelease(MapSlot, n)
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := DefaultConfig()
			cfg.Deterministic = true
			d := NewDecider(f.svc, cfg, nil, nil) // evaluation needs no RNG
			req := &Request{}
			for i := 0; !stop.Load() || i < 50; i++ {
				v := f.svc.Snapshot()
				req.Now = sim.Time(i)
				req.Jobs = jobs
				req.AvailMap, req.AvailReduce = v.AvailMap, v.AvailReduce
				e := d.EvaluateMap(req, topology.NodeID(i%8))
				if !e.HasBest && !e.InstantLocal {
					t.Errorf("evaluation lost all candidates mid-churn")
					return
				}
			}
		}()
	}
	wg.Wait()
}
