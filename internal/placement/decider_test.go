package placement

import (
	"testing"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// fixture builds a 2-rack/4-node-per-rack cluster with a decision
// service and a deterministic RNG.
type fixture struct {
	net   *topology.Cluster
	store *hdfs.Store
	slots *cluster.State
	svc   *Service
	rng   *sim.RNG
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 4
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	store := hdfs.NewStore(net, rng.Fork("hdfs"))
	slots, err := cluster.New(net.Size(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Deps{Net: net, Store: store, Rate: net, Slots: slots, Mode: core.ModeHops})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: net, store: store, slots: slots, svc: svc, rng: rng}
}

func (f *fixture) decider(cfg Config) *Decider {
	return NewDecider(f.svc, cfg, f.rng.Fork("sched"), nil)
}

type placeAt struct{ nodes []topology.NodeID }

func (p placeAt) Name() string { return "fixed" }
func (p placeAt) Place(topology.Network, *sim.RNG, int) []topology.NodeID {
	return p.nodes
}

// addJob creates a job with one map per entry of blockNodes (each block
// replicated on exactly the given node) and nReduces reduce tasks.
func (f *fixture) addJob(t testing.TB, id job.ID, blockNodes []topology.NodeID, nReduces int) *job.Job {
	t.Helper()
	j := &job.Job{ID: id, Spec: job.Spec{
		Name: "test-job",
		Profile: job.Profile{
			Name: "test", MapSelectivity: 1, MapRate: 10e6, ReduceRate: 10e6,
		},
	}}
	for idx, n := range blockNodes {
		b, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{n}})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, nReduces)
		for i := range out {
			out[i] = 1e6
		}
		j.Maps = append(j.Maps, &job.MapTask{
			Job: j, Index: idx, Block: b, Size: 64e6, Out: out, OutputCurve: 1, Node: -1,
		})
	}
	for fi := 0; fi < nReduces; fi++ {
		j.Reduces = append(j.Reduces, &job.ReduceTask{Job: j, Index: fi, Node: -1})
	}
	return j
}

func allNodes(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func reqFor(jobs ...*job.Job) *Request {
	return &Request{
		Jobs:        jobs,
		AvailMap:    core.NewAvail(allNodes(8)),
		AvailReduce: core.NewAvail(allNodes(8)),
		Slowstart:   0.05,
	}
}

func finishMaps(j *job.Job) *job.Job {
	for _, m := range j.Maps {
		m.State = job.TaskDone
		m.Node = topology.NodeID(m.Index)
		m.Progress = 1
	}
	j.DoneMaps = len(j.Maps)
	return j
}

// TestSweepEvictsUnderBalancedChurn pins the sweep trigger: the coster
// cache must drop a departed job as soon as the live set changes, even
// when one job leaves exactly as another arrives so the cache size never
// exceeds the live-set size (the leak the old "cache > live" trigger
// missed).
func TestSweepEvictsUnderBalancedChurn(t *testing.T) {
	f := newFixture(t)
	d := f.decider(DefaultConfig())

	j1 := finishMaps(f.addJob(t, 1, []topology.NodeID{0}, 2))
	j2 := finishMaps(f.addJob(t, 2, []topology.NodeID{1}, 2))
	d.PlaceReduce(reqFor(j1, j2), 0)
	if len(d.costerCache) != 2 {
		t.Fatalf("cache holds %d jobs after first offer, want 2", len(d.costerCache))
	}

	// Balanced churn: j1 leaves, j3 arrives, live size stays 2.
	j3 := finishMaps(f.addJob(t, 3, []topology.NodeID{2}, 2))
	d.PlaceReduce(reqFor(j2, j3), 1)
	if _, dead := d.costerCache[j1.ID]; dead {
		t.Fatal("departed job survived a balanced-churn sweep")
	}
	for id := range d.costerCache {
		if id != j2.ID && id != j3.ID {
			t.Fatalf("cache holds unknown job %d", id)
		}
	}

	// And again: every job-set change sweeps, not just size excursions.
	j4 := finishMaps(f.addJob(t, 4, []topology.NodeID{3}, 2))
	d.PlaceReduce(reqFor(j3, j4), 2)
	if _, dead := d.costerCache[j2.ID]; dead {
		t.Fatal("departed job survived the second balanced-churn sweep")
	}
}

// TestPlaceMapOutcomeBreakdown checks the Outcome mirrors the decision:
// a data-local candidate is assigned instantly with P = 1, and a remote
// candidate under a prohibitive P_min is refused with the full breakdown.
func TestPlaceMapOutcomeBreakdown(t *testing.T) {
	f := newFixture(t)
	d := f.decider(DefaultConfig())
	j := f.addJob(t, 1, []topology.NodeID{3}, 1)

	m, out := d.PlaceMap(reqFor(j), 3)
	if m == nil || m.Index != 0 {
		t.Fatalf("PlaceMap(3) = %v, want the block-on-3 task", m)
	}
	if out.Draw != "local" || out.C != 0 || out.P != 1 {
		t.Fatalf("local outcome = %+v, want draw=local C=0 P=1", out)
	}
	if out.Torn {
		t.Fatal("single-threaded decision reported a torn snapshot")
	}

	strict := DefaultConfig()
	strict.Pmin = 1.1 // no probability passes: every remote offer skips
	ds := f.decider(strict)
	j2 := f.addJob(t, 2, []topology.NodeID{3}, 1)
	m, out = ds.PlaceMap(reqFor(j2), 0)
	if m != nil {
		t.Fatalf("PlaceMap under Pmin=1.1 assigned %v, want nil", m)
	}
	if out.Draw != "below_pmin" || out.C == 0 || out.P >= 1.1 {
		t.Fatalf("gated outcome = %+v, want draw=below_pmin with C>0", out)
	}
	if out.PMin != 1.1 {
		t.Fatalf("outcome PMin = %v, want 1.1", out.PMin)
	}
}

// TestEvaluateMapMatchesPlaceMap checks the gate-free evaluation returns
// the same candidate and breakdown the deciding path uses, and consumes
// no randomness doing it.
func TestEvaluateMapMatchesPlaceMap(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Deterministic = true // placing must not consume RNG either
	d := f.decider(cfg)
	j := f.addJob(t, 1, []topology.NodeID{5}, 1) // remote for node 0

	ev := d.EvaluateMap(reqFor(j), 0)
	if !ev.HasBest || ev.InstantLocal {
		t.Fatalf("evaluation = %+v, want a non-local best", ev)
	}
	m, out := d.PlaceMap(reqFor(j), 0)
	if m != ev.Best.MapTask {
		t.Fatalf("PlaceMap chose %v, evaluation predicted %v", m, ev.Best.MapTask)
	}
	if out.C != ev.Best.Cost || out.CAvg != ev.Best.AvgCost || out.P != ev.Best.Prob {
		t.Fatalf("outcome %+v disagrees with evaluation %+v", out, ev.Best)
	}
}

// TestServiceDeltasMoveEpochAndAvail checks the delta vocabulary: slot,
// replica, offline/blacklist and link deltas bump the epoch and keep the
// availability snapshots materialized and consistent.
func TestServiceDeltasMoveEpochAndAvail(t *testing.T) {
	f := newFixture(t)
	base := f.svc.Epoch()
	v0 := f.svc.Snapshot()
	if len(v0.AvailMap.Nodes) != 8 || len(v0.AvailReduce.Nodes) != 8 {
		t.Fatalf("fresh service avail = %d/%d nodes, want 8/8", len(v0.AvailMap.Nodes), len(v0.AvailReduce.Nodes))
	}

	if err := f.svc.ApplySlotAcquire(ReduceSlot, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.ApplySlotAcquire(ReduceSlot, 2); err != nil {
		t.Fatal(err)
	}
	v := f.svc.Snapshot()
	if len(v.AvailReduce.Nodes) != 7 {
		t.Fatalf("after filling node 2's reduce slots: %d avail, want 7", len(v.AvailReduce.Nodes))
	}
	f.svc.ApplySlotRelease(ReduceSlot, 2)
	if n := len(f.svc.Snapshot().AvailReduce.Nodes); n != 8 {
		t.Fatalf("after release: %d avail, want 8", n)
	}

	f.svc.ApplyNodeOffline(5, true)
	f.svc.ApplyNodeBlacklist(6, true)
	v = f.svc.Snapshot()
	if len(v.AvailMap.Nodes) != 6 {
		t.Fatalf("after offline+blacklist: %d map-avail, want 6", len(v.AvailMap.Nodes))
	}
	f.svc.ApplyNodeOffline(5, false)
	f.svc.ApplyNodeBlacklist(6, false)

	id, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if added, err := f.svc.ApplyReplicaAdd(id, 4); err != nil || !added {
		t.Fatalf("ApplyReplicaAdd of a new replica: added=%v err=%v", added, err)
	}
	if added, err := f.svc.ApplyReplicaAdd(id, 4); err != nil || added {
		t.Fatalf("duplicate ApplyReplicaAdd: added=%v err=%v", added, err)
	}
	if removed, err := f.svc.ApplyReplicaLoss(id, 1); err != nil || !removed {
		t.Fatalf("ApplyReplicaLoss of an existing replica: removed=%v err=%v", removed, err)
	}
	if got := f.store.Replicas(id); len(got) != 1 || got[0] != 4 {
		t.Fatalf("replicas after add+loss = %v, want [4]", got)
	}
	if n, err := f.svc.ApplyNodeReplicaLoss(4); err != nil || n != 1 {
		t.Fatalf("ApplyNodeReplicaLoss(4) removed %d replicas (err %v), want 1", n, err)
	}

	if err := f.svc.ApplyLinkFactor(3, 0.5); err != nil {
		t.Fatal(err)
	}
	if f.svc.Epoch() <= base {
		t.Fatalf("epoch %d did not advance past %d", f.svc.Epoch(), base)
	}
}
