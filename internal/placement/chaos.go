// Kill/restart chaos harness: drive a recorded workload through the
// decision service, kill the process state at randomized points, recover
// from the checkpoint + journal, and prove the recovered service is
// bit-identical to the uninterrupted run — same epochs, same decision
// stream, same final state, zero invariant drift. The harness also
// injects journal damage (truncated tails, duplicated and reordered
// records) and checks the decoder classifies and survives each shape.
package placement

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"mapsched/internal/obs"
	"mapsched/internal/sim"
)

// TamperMode names a shape of journal damage the harness injects before
// a recovery.
type TamperMode string

// Tamper modes. Truncate cuts bytes mid-record off the tail (the crash
// shape); duplicate and reorder damage the middle of the stream, which
// the seq chain must catch as corruption.
const (
	TamperNone      TamperMode = "none"
	TamperTruncate  TamperMode = "truncate"
	TamperDuplicate TamperMode = "duplicate"
	TamperReorder   TamperMode = "reorder"
)

// ChaosConfig drives KillRestart.
type ChaosConfig struct {
	// Replay reconstructs the recorded cluster (see ReplayConfig).
	Replay ReplayConfig
	// Events is the recorded stream (the replay envelope applies:
	// hop-mode, fault-free, speculation-free probabilistic runs).
	Events []obs.Event
	// Kills is the number of randomized kill/recover cycles (default 20).
	Kills int
	// CheckpointEvery checkpoints after every Nth delta (default 16).
	CheckpointEvery uint64
	// Seed seeds the chaos RNG (kill points, damage sites); the harness
	// forks it under the "chaos" label, so runs are deterministic per
	// seed.
	Seed int64
	// Tamper rotates journal damage across kills (none, truncate,
	// duplicate, reorder). Off, every kill recovers a clean journal.
	Tamper bool
	// Stream, when non-nil, receives one journal_recover event per
	// recovery.
	Stream *obs.Stream
}

// ChaosKill describes one kill/recover cycle.
type ChaosKill struct {
	// Event is the stream index the service was killed before.
	Event int
	// Tamper is the damage injected ("none" also when the mode found no
	// eligible site in a too-short journal).
	Tamper TamperMode
	// RecoveredEpoch and CheckpointEpoch are the recovery's landing
	// points; Applied and Skipped count journal records past and inside
	// the checkpoint.
	RecoveredEpoch, CheckpointEpoch uint64
	Applied, Skipped                int
	// Resumed is the stream index the replay resumed from (re-deriving
	// [Resumed, Event) a second time — the convergence window).
	Resumed int
}

// ChaosReport is the harness verdict.
type ChaosReport struct {
	// Kills lists every kill/recover cycle in stream order.
	Kills []ChaosKill
	// Decisions counts the recorded map decisions of the workload;
	// Rederived counts decisions derived a second time after a recovery
	// and checked for convergence.
	Decisions, Rederived int
	// Violations lists every failed assertion: decision divergence,
	// decision/recording mismatch, invariant drift, wrong damage
	// verdict, or final-state divergence. Empty on success.
	Violations []string
}

// Ok reports whether every assertion held.
func (r *ChaosReport) Ok() bool { return len(r.Violations) == 0 }

// String summarizes the run.
func (r *ChaosReport) String() string {
	if r.Ok() {
		return fmt.Sprintf("chaos: %d kills, %d decisions (%d re-derived), all converged", len(r.Kills), r.Decisions, r.Rederived)
	}
	return fmt.Sprintf("chaos: %d kills, %d violations: %s", len(r.Kills), len(r.Violations), r.Violations[0])
}

// KillRestart runs the kill/restart chaos protocol:
//
//  1. Replay the recorded stream uninterrupted, collecting every derived
//     decision and the final service state (the reference).
//  2. Replay it again with a journal attached, killing the service at
//     Kills randomized stream positions. At each kill the in-memory
//     service and replayer are discarded; only the "disk" survives — the
//     journal bytes (optionally tampered) and the latest checkpoint.
//  3. Recover from disk, audit for drift, rebuild the client half of the
//     state by replaying the stream prefix the recovery covers, and
//     resume. Decisions between the recovered epoch and the kill point
//     are derived twice — pre-crash and post-recovery — and must agree
//     bit-for-bit.
//  4. After the full stream, the chaos run's decision stream and final
//     checkpoint must equal the reference's byte-for-byte.
//
// Recoveries alternate between appending to the surviving journal (after
// truncating it to its valid prefix — exercising the begin-marker rewind)
// and rotating: fresh checkpoint, fresh journal (the checkpoint-cut
// discipline). A journal that recovered behind its checkpoint must
// rotate, since its chain can no longer reach the checkpoint epoch.
//
// All randomness comes from a deterministic fork of Seed: the same
// config reproduces the same kills, the same damage and the same report.
func KillRestart(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Kills <= 0 {
		cfg.Kills = 20
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 16
	}
	events := cfg.Events
	if len(events) < 2 {
		return nil, fmt.Errorf("placement: chaos: stream too short (%d events)", len(events))
	}

	// 1. Reference: the uninterrupted run.
	refLines := make(map[int]string, 64)
	refD, err := newReplayDeps(cfg.Replay)
	if err != nil {
		return nil, err
	}
	refSvc, err := NewService(refD.deps)
	if err != nil {
		return nil, err
	}
	ref := newReplayer(cfg.Replay, events, refD, refSvc)
	ref.onDecision = func(i int, line string) { refLines[i] = line }
	for i := range events {
		if err := ref.step(i); err != nil {
			return nil, err
		}
	}
	if !ref.rep.Ok() {
		return nil, fmt.Errorf("placement: chaos: recording does not replay cleanly: %s", ref.rep.Mismatches[0])
	}
	var refState bytes.Buffer
	if err := refSvc.WriteCheckpoint(&refState); err != nil {
		return nil, err
	}

	rep := &ChaosReport{Decisions: len(refLines)}
	violate := func(format string, args ...any) {
		if len(rep.Violations) < maxMismatches {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Kill schedule: distinct randomized stream positions (never 0 — the
	// journal must exist before the first kill).
	rng := sim.NewRNG(cfg.Seed).Fork("chaos")
	killSet := make(map[int]bool, cfg.Kills)
	for tries := 0; tries < 64*cfg.Kills && len(killSet) < cfg.Kills && len(killSet) < len(events)-1; tries++ {
		killSet[1+rng.Intn(len(events)-1)] = true
	}
	kills := make([]int, 0, len(killSet))
	for i := range killSet {
		kills = append(kills, i)
	}
	sort.Ints(kills)
	modes := []TamperMode{TamperNone, TamperTruncate, TamperDuplicate, TamperReorder}

	// 2. The chaos run.
	journal := &bytes.Buffer{}
	var cpBytes []byte // latest checkpoint; nil before the first
	d, err := newReplayDeps(cfg.Replay)
	if err != nil {
		return nil, err
	}
	svc, err := NewService(d.deps)
	if err != nil {
		return nil, err
	}
	if err := svc.StartJournal(journal); err != nil {
		return nil, err
	}
	r := newReplayer(cfg.Replay, events, d, svc)
	lines := make(map[int]string, len(refLines))
	converge := func(i int, line string) {
		if prev, ok := lines[i]; ok {
			rep.Rederived++
			if prev != line {
				violate("event %d: post-recovery decision %q, pre-crash decision %q", i, line, prev)
			}
		}
		lines[i] = line
	}
	r.onDecision = converge
	deltaIdx := make(map[uint64]int, 64) // delta epoch -> stream index of its event
	lastEpoch := uint64(0)
	nextKill := 0

	for i := 0; i < len(events); i++ {
		if nextKill < len(kills) && i == kills[nextKill] {
			mode := TamperNone
			if cfg.Tamper {
				mode = modes[nextKill%len(modes)]
			}

			// Kill: the service and replayer die; the disk survives,
			// possibly damaged.
			jb, damaged := tamperJournal(journal.Bytes(), mode, rng)
			if !damaged {
				mode = TamperNone
			}

			// Decode first to learn where recovery will land, so the
			// client-state prefix replay below knows where to stop.
			dec, err := DecodeJournal(bytes.NewReader(jb))
			if err != nil {
				return nil, err
			}
			cpEpoch := uint64(0)
			if cpBytes != nil {
				cp, err := DecodeCheckpoint(bytes.NewReader(cpBytes))
				if err != nil {
					return nil, err
				}
				cpEpoch = cp.Epoch
			}
			recEpoch := dec.Epoch
			if cpEpoch > recEpoch {
				recEpoch = cpEpoch
			}
			switch {
			case mode == TamperNone:
				if dec.Err != nil {
					violate("kill@%d: undamaged journal decoded with %v", i, dec.Err)
				}
			case mode == TamperTruncate:
				if !errors.Is(dec.Err, ErrTruncatedTail) {
					violate("kill@%d: truncated journal classified %v, want ErrTruncatedTail", i, dec.Err)
				}
			default:
				if !errors.Is(dec.Err, ErrCorruptRecord) {
					violate("kill@%d: %s damage classified %v, want ErrCorruptRecord", i, mode, dec.Err)
				}
			}

			// Rebuild the client half: fresh deps, replay the stream
			// prefix the recovery covers in statesOnly mode (jobs, tasks
			// and blocks reconstruct deterministically from the seed).
			resumeIdx := 0
			if recEpoch > 0 {
				idx, ok := deltaIdx[recEpoch]
				if !ok {
					return nil, fmt.Errorf("placement: chaos: no stream event recorded for delta epoch %d", recEpoch)
				}
				resumeIdx = idx + 1
			}
			d2, err := newReplayDeps(cfg.Replay)
			if err != nil {
				return nil, err
			}
			r2 := newReplayer(cfg.Replay, events, d2, nil)
			r2.rep = r.rep // mismatch accounting spans recoveries
			for p := 0; p < resumeIdx; p++ {
				if err := r2.step(p); err != nil {
					return nil, err
				}
			}

			// Recover the service half from disk.
			var cpr io.Reader
			if cpBytes != nil {
				cpr = bytes.NewReader(cpBytes)
			}
			rcv, err := Recover(d2.deps, cpr, bytes.NewReader(jb))
			if err != nil {
				return nil, err
			}
			if rcv.Epoch != recEpoch {
				violate("kill@%d: recovered to epoch %d, decode predicted %d", i, rcv.Epoch, recEpoch)
			}
			if a := rcv.Service.Audit(); !a.Clean() {
				violate("kill@%d: post-recovery drift: %s", i, a)
			}
			if cfg.Stream.Enabled() {
				cfg.Stream.Emit(obs.Event{Type: obs.JournalRecover, Node: -1,
					Reason: fmt.Sprintf("kill@%d tamper=%s epoch=%d applied=%d skipped=%d", i, mode, rcv.Epoch, rcv.Applied, rcv.Skipped)})
			}

			// Resume journaling. A journal that recovered behind its
			// checkpoint must rotate; otherwise alternate between
			// appending past the valid prefix (begin-marker rewind) and
			// rotating at a fresh checkpoint cut.
			if rcv.Epoch > dec.Epoch || nextKill%2 == 1 {
				var cp bytes.Buffer
				if err := rcv.Service.WriteCheckpoint(&cp); err != nil {
					return nil, err
				}
				cpBytes = append([]byte(nil), cp.Bytes()...)
				journal = &bytes.Buffer{}
			} else {
				journal = bytes.NewBuffer(append([]byte(nil), jb[:rcv.JournalValidBytes]...))
			}
			if err := rcv.Service.StartJournal(journal); err != nil {
				return nil, err
			}

			rep.Kills = append(rep.Kills, ChaosKill{
				Event: i, Tamper: mode,
				RecoveredEpoch: rcv.Epoch, CheckpointEpoch: rcv.CheckpointEpoch,
				Applied: rcv.Applied, Skipped: rcv.Skipped, Resumed: resumeIdx,
			})

			r2.attach(rcv.Service)
			r2.onDecision = converge
			r = r2
			lastEpoch = rcv.Epoch
			nextKill++
			i = resumeIdx - 1 // loop increment resumes at resumeIdx
			continue
		}

		if err := r.step(i); err != nil {
			return nil, err
		}
		if e := r.svc.Epoch(); e > lastEpoch {
			deltaIdx[e] = i
			lastEpoch = e
			if e%cfg.CheckpointEvery == 0 {
				var cp bytes.Buffer
				if err := r.svc.WriteCheckpoint(&cp); err != nil {
					return nil, err
				}
				cpBytes = append(cpBytes[:0], cp.Bytes()...)
			}
		}
	}

	// 3. Verdicts: replay fidelity, decision-stream identity, final-state
	// identity, zero drift.
	for _, m := range r.rep.Mismatches {
		violate("replay mismatch: %s", m)
	}
	for i := 0; i < len(events); i++ {
		want, inRef := refLines[i]
		got, inRun := lines[i]
		if inRef != inRun || want != got {
			violate("event %d: final decision %q, reference %q", i, got, want)
		}
	}
	var finalState bytes.Buffer
	if err := r.svc.WriteCheckpoint(&finalState); err != nil {
		return nil, err
	}
	if !bytes.Equal(finalState.Bytes(), refState.Bytes()) {
		violate("final service state diverges from the uninterrupted run")
	}
	if a := r.svc.Audit(); !a.Clean() {
		violate("final drift: %s", a)
	}
	return rep, nil
}

// tamperJournal damages a copy of the journal bytes per mode, reporting
// whether damage was actually injected (short journals may offer no
// eligible site). Eligible sites are chosen so the damage class is
// deterministic: truncation always cuts mid-record; duplication and
// reordering always break the seq chain with valid lines after the
// break.
func tamperJournal(jb []byte, mode TamperMode, rng *sim.RNG) ([]byte, bool) {
	out := append([]byte(nil), jb...)
	switch mode {
	case TamperTruncate:
		// Cut 2..len-1 bytes off the final record: at least the closing
		// brace goes (cutting only the newline would leave a valid line),
		// at least one byte stays (a clean full-line cut is not damage).
		if len(out) == 0 {
			return out, false
		}
		start := bytes.LastIndexByte(out[:len(out)-1], '\n') + 1
		lineLen := len(out) - start
		if lineLen < 3 {
			return out, false
		}
		cut := 2 + rng.Intn(lineLen-2)
		return out[:len(out)-cut], true

	case TamperDuplicate:
		// Duplicate a non-final delta record in place: the copy's seq
		// repeats, breaking the chain with lines still following.
		// (Duplicating a begin marker would legally rewind, not corrupt.)
		lines := journalLines(out)
		var elig []int
		for i := 0; i+1 < len(lines); i++ {
			if !isBeginLine(lines[i]) {
				elig = append(elig, i)
			}
		}
		if len(elig) == 0 {
			return out, false
		}
		k := elig[rng.Intn(len(elig))]
		dup := make([][]byte, 0, len(lines)+1)
		dup = append(dup, lines[:k+1]...)
		dup = append(dup, lines[k])
		dup = append(dup, lines[k+1:]...)
		return joinLines(dup), true

	case TamperReorder:
		// Swap two adjacent delta records: the earlier position now
		// carries the later seq, breaking the chain mid-stream.
		lines := journalLines(out)
		var elig []int
		for i := 0; i+1 < len(lines); i++ {
			if !isBeginLine(lines[i]) && !isBeginLine(lines[i+1]) {
				elig = append(elig, i)
			}
		}
		if len(elig) == 0 {
			return out, false
		}
		k := elig[rng.Intn(len(elig))]
		lines[k], lines[k+1] = lines[k+1], lines[k]
		return joinLines(lines), true
	}
	return out, false
}

// journalLines splits journal bytes into lines without trailing
// newlines; joinLines is its inverse (every line newline-terminated).
func journalLines(jb []byte) [][]byte {
	lines := bytes.Split(jb, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

func joinLines(lines [][]byte) []byte {
	var out bytes.Buffer
	for _, l := range lines {
		out.Write(l)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// isBeginLine detects begin markers without decoding (the encoder writes
// compact JSON, so the op field appears verbatim).
func isBeginLine(line []byte) bool {
	return bytes.Contains(line, []byte(`"op":"begin"`))
}
