package placement

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/topology"
)

// TestAuditCleanUnderDeltas runs the full delta vocabulary and audits
// after every step: the incremental state must never drift from the
// from-scratch rebuild.
func TestAuditCleanUnderDeltas(t *testing.T) {
	f, b1, _ := journalFixture(t)
	if a := f.svc.Audit(); !a.Clean() || a.Checks < 6 {
		t.Fatalf("fresh service: %s (checks=%d)", a, a.Checks)
	}
	steps := journalScript(t, f, b1)
	a := f.svc.Audit()
	if !a.Clean() {
		t.Fatalf("after %d deltas: %s", steps, a)
	}
	if a.Epoch != f.svc.Epoch() {
		t.Fatalf("audit ran at epoch %d, service at %d", a.Epoch, f.svc.Epoch())
	}
}

// TestAuditDetectsDrift corrupts the incremental state behind the
// service's back and checks the auditor reports it: mutating a block's
// replica slice directly bypasses the store's usage bookkeeping (the
// epoch-guarded mutation contract the schedlint analyzers enforce at
// compile time — the auditor is its runtime backstop).
func TestAuditDetectsDrift(t *testing.T) {
	f, b1, _ := journalFixture(t)
	f.store.Replicas(b1)[0] = 5 // moves the replica, usage stats not updated
	a := f.svc.Audit()
	if a.Clean() {
		t.Fatal("auditor missed behind-the-back replica mutation")
	}
	found := false
	for _, d := range a.Drift {
		if strings.Contains(d, "store usage") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift report %v does not name the store usage", a.Drift)
	}

	// A duplicated replica is a validity drift, not just a usage drift.
	f2, _, _ := journalFixture(t)
	wide, err := f2.store.AddBlock(64e6, 2, placeAt{nodes: []topology.NodeID{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	reps := f2.store.Replicas(wide)
	reps[1] = reps[0]
	a2 := f2.svc.Audit()
	found = false
	for _, d := range a2.Drift {
		if strings.Contains(d, "duplicate replica") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift report %v does not flag the duplicate replica", a2.Drift)
	}
}

// TestStartAuditorReportsThroughSinks runs the background auditor
// against clean and drifted states and checks all three sinks: the
// OnReport hook, the metrics counters and the obs stream.
func TestStartAuditorReportsThroughSinks(t *testing.T) {
	f, b1, _ := journalFixture(t)
	reg := metrics.NewRegistry()
	stream := obs.NewStream()
	var mu sync.Mutex
	var events []obs.Event
	stream.Attach(obs.Func(func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}))

	reports := make(chan AuditReport, 16)
	stop := f.svc.StartAuditor(AuditorConfig{
		Interval: time.Millisecond,
		Stream:   stream,
		Metrics:  reg,
		OnReport: func(r AuditReport) {
			select {
			case reports <- r:
			default:
			}
		},
	})
	r := <-reports
	if !r.Clean() {
		t.Fatalf("clean service audited dirty: %s", r)
	}

	// Inject drift and wait for the auditor to see it. Update gives the
	// mutation the write lock (so the injection itself is race-free) but
	// still bypasses the store's usage bookkeeping.
	f.svc.Update(func() { f.store.Replicas(b1)[0] = 5 })
	deadline := time.After(5 * time.Second)
	for {
		select {
		case r = <-reports:
		case <-deadline:
			t.Fatal("auditor never reported the injected drift")
		}
		if !r.Clean() {
			stop()
			goto done
		}
	}
done:
	if reg.Counter("placement_audit_pass").Value() < 1 {
		t.Fatal("no audit_pass counted")
	}
	if reg.Counter("placement_audit_drift").Value() < 1 {
		t.Fatal("no audit_drift counted")
	}
	mu.Lock()
	defer mu.Unlock()
	var sawPass, sawDrift bool
	for _, e := range events {
		switch e.Type {
		case obs.AuditPass:
			sawPass = true
		case obs.AuditDrift:
			sawDrift = true
			if e.Reason == "" {
				t.Fatal("audit_drift event carries no reason")
			}
		}
	}
	if !sawPass || !sawDrift {
		t.Fatalf("stream saw pass=%v drift=%v, want both", sawPass, sawDrift)
	}
}
