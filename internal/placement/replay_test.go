package placement_test

// The replay round-trip lives in an external test package so it can run
// the full engine (engine imports sched imports placement) as the
// recording side, then drive the engine-free Replay path against the
// captured stream.

import (
	"strings"
	"testing"

	"mapsched/internal/engine"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/placement"
	"mapsched/internal/sched"
	"mapsched/internal/workload"
)

// collector retains every emitted event in stream order.
type collector struct {
	events []obs.Event
}

func (c *collector) Observe(e obs.Event) { c.events = append(c.events, e) }

func replaySpecs(t *testing.T) []job.Spec {
	t.Helper()
	o := workload.Options{Scale: 40, Replication: 2, SubmitStagger: 1}
	defs := []workload.JobDef{
		{JobID: "01", Kind: workload.Wordcount, InputGB: 10, Maps: 88, Reduces: 157},
		{JobID: "11", Kind: workload.Terasort, InputGB: 10, Maps: 143, Reduces: 190},
		{JobID: "21", Kind: workload.Grep, InputGB: 10, Maps: 87, Reduces: 148},
	}
	specs, err := workload.Specs(defs, o)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// record runs a probabilistic simulation on a small cluster and returns
// its configuration plus the captured event stream.
func record(t *testing.T, mutate func(*engine.Config)) (engine.Config, []job.Spec, []obs.Event) {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Topology.Racks = 2
	cfg.Topology.NodesPerRack = 4
	cfg.Seed = 11
	if mutate != nil {
		mutate(&cfg)
	}
	specs := replaySpecs(t)
	s, err := engine.New(cfg, specs, sched.NewProbabilistic(sched.DefaultProbabilisticConfig()))
	if err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	if err := s.Attach(col); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("recording run left %d jobs unfinished", res.Unfinished)
	}
	return cfg, specs, col.events
}

// TestReplayRoundTrip is the tentpole's engine-free client check: every
// map placement decision the simulation recorded must be re-derivable,
// bit-for-bit, from the event stream and the seed alone.
func TestReplayRoundTrip(t *testing.T) {
	cfg, specs, events := record(t, nil)
	rep, err := placement.Replay(placement.ReplayConfig{
		Topology:           cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Seed:               cfg.Seed,
		Specs:              specs,
		Sched:              placement.DefaultConfig(),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MapDecisions == 0 {
		t.Fatal("recording carried no map decisions to verify")
	}
	if rep.Deltas == 0 {
		t.Fatal("replay applied no lifecycle deltas")
	}
	if !rep.Ok() {
		t.Fatalf("%d of %d re-derived decisions disagree with the recording; first: %s",
			len(rep.Mismatches), rep.MapDecisions, rep.Mismatches[0])
	}
	t.Logf("replayed %d events: %d deltas, %d map decisions verified", rep.Events, rep.Deltas, rep.MapDecisions)
}

// TestReplayDivergenceIsDetected guards the verifier itself: replaying a
// stream against the wrong seed reconstructs different block placements,
// and the report must say so rather than silently passing.
func TestReplayDivergenceIsDetected(t *testing.T) {
	cfg, specs, events := record(t, nil)
	rep, err := placement.Replay(placement.ReplayConfig{
		Topology:           cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Seed:               cfg.Seed + 1, // wrong cluster
		Specs:              specs,
		Sched:              placement.DefaultConfig(),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("replay against the wrong seed reported a faithful stream")
	}
}

// TestReplayRejectsFaultStreams pins the supported envelope: streams with
// slot churn outside the recorded task lifecycle are refused, not
// replayed wrong.
func TestReplayRejectsFaultStreams(t *testing.T) {
	cfg, specs, events := record(t, nil)
	// Splice a speculation launch into an otherwise clean recording: the
	// tiny jobs above never straggle, so fabricate the event the fault and
	// speculation machinery would emit.
	tampered := append(append([]obs.Event{}, events[:len(events)/2]...),
		obs.Event{Type: obs.SpecStart, Job: specs[0].Name})
	tampered = append(tampered, events[len(events)/2:]...)
	_, err := placement.Replay(placement.ReplayConfig{
		Topology:           cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Seed:               cfg.Seed,
		Specs:              specs,
		Sched:              placement.DefaultConfig(),
	}, tampered)
	if err == nil {
		t.Fatal("replay accepted a speculation stream")
	}
	if !strings.Contains(err.Error(), "not replayable") {
		t.Fatalf("unexpected error: %v", err)
	}
}
