package placement

import (
	"bytes"
	"errors"
	"testing"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// journalFixture is a fixture with two pre-placed blocks — the base
// state a recovery rebuilds over. Both sides of a recovery test build
// one from the same seed, so their base states are identical.
func journalFixture(t testing.TB) (*fixture, hdfs.BlockID, hdfs.BlockID) {
	t.Helper()
	f := newFixture(t)
	b1, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{7}})
	if err != nil {
		t.Fatal(err)
	}
	return f, b1, b2
}

// journalScript applies a fixed delta sequence covering the full
// vocabulary and returns the delta count.
func journalScript(t testing.TB, f *fixture, b1 hdfs.BlockID) int {
	t.Helper()
	steps := []func() error{
		func() error { return f.svc.ApplySlotAcquire(MapSlot, 0) },
		func() error { return f.svc.ApplySlotAcquireNoted(MapSlot, 0, `"job-a" 3`, nil, nil) },
		func() error { return f.svc.ApplySlotAcquire(ReduceSlot, 1) },
		func() error { return f.svc.ApplySlotRelease(MapSlot, 0) },
		func() error { return f.svc.ApplyNodeOffline(5, true) },
		func() error { return f.svc.ApplyNodeBlacklist(6, true) },
		func() error { return f.svc.ApplyLinkFactor(3, 0.5) },
		func() error { _, err := f.svc.ApplyReplicaAdd(b1, 4); return err },
		func() error { _, err := f.svc.ApplyReplicaLoss(b1, 0); return err },
		func() error { _, err := f.svc.ApplyNodeReplicaLoss(4); return err },
		func() error { return f.svc.UpdateNoted("client-note", func() {}) },
		func() error { return f.svc.ApplyNodeOffline(5, false) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("script step %d: %v", i, err)
		}
	}
	return len(steps)
}

// recoveryDeps builds fresh deps in the journalFixture base state.
func recoveryDeps(t testing.TB) Deps {
	t.Helper()
	f, _, _ := journalFixture(t)
	return Deps{Net: f.net, Store: f.store, Rate: f.net, Slots: f.slots, Mode: core.ModeHops}
}

// fingerprint reduces a service's full recoverable state to bytes: two
// services with equal fingerprints restore and decide identically.
func fingerprint(t testing.TB, s *Service) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalRoundTrip pins the wire format: every delta becomes one
// CRC-protected record, seqs chain gap-free from the begin marker, and
// the decoder returns exactly what was written.
func TestJournalRoundTrip(t *testing.T) {
	f, b1, _ := journalFixture(t)
	var buf bytes.Buffer
	if err := f.svc.StartJournal(&buf); err != nil {
		t.Fatal(err)
	}
	n := journalScript(t, f, b1)

	dec, err := DecodeJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Err != nil {
		t.Fatalf("clean journal decoded with damage: %v", dec.Err)
	}
	if len(dec.Records) != n {
		t.Fatalf("decoded %d records, wrote %d deltas", len(dec.Records), n)
	}
	if dec.Epoch != f.svc.Epoch() || dec.Epoch != uint64(n) {
		t.Fatalf("journal epoch %d, service epoch %d, deltas %d", dec.Epoch, f.svc.Epoch(), n)
	}
	for i, r := range dec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if dec.ValidBytes != int64(buf.Len()) {
		t.Fatalf("ValidBytes %d, journal length %d", dec.ValidBytes, buf.Len())
	}
	if dec.Records[1].Note != `"job-a" 3` || dec.Records[10].Note != "client-note" {
		t.Fatalf("notes did not round-trip: %q / %q", dec.Records[1].Note, dec.Records[10].Note)
	}
}

// TestRecoverFromJournalOnly rebuilds a service from the journal alone
// and checks the result is bit-identical: same epoch, same full state
// fingerprint, zero drift.
func TestRecoverFromJournalOnly(t *testing.T) {
	f, b1, _ := journalFixture(t)
	var buf bytes.Buffer
	if err := f.svc.StartJournal(&buf); err != nil {
		t.Fatal(err)
	}
	n := journalScript(t, f, b1)

	rec, err := Recover(recoveryDeps(t), nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tail != nil {
		t.Fatalf("clean journal recovered with tail verdict %v", rec.Tail)
	}
	if rec.Epoch != f.svc.Epoch() {
		t.Fatalf("recovered epoch %d, original %d", rec.Epoch, f.svc.Epoch())
	}
	if rec.Applied != n || rec.Skipped != 0 {
		t.Fatalf("applied %d skipped %d, want %d/0", rec.Applied, rec.Skipped, n)
	}
	if len(rec.Notes) != 2 || rec.Notes[0].Note != `"job-a" 3` || rec.Notes[1].Note != "client-note" {
		t.Fatalf("surfaced notes %+v, want the acquire and update notes in order", rec.Notes)
	}
	if !bytes.Equal(fingerprint(t, rec.Service), fingerprint(t, f.svc)) {
		t.Fatal("recovered state fingerprint diverges from the original")
	}
	if a := rec.Service.Audit(); !a.Clean() {
		t.Fatalf("post-recovery drift: %s", a)
	}
}

// TestRecoverFromCheckpointAndJournal checkpoints mid-sequence: records
// at or below the checkpoint epoch are skipped, the rest re-apply, and
// the result is bit-identical.
func TestRecoverFromCheckpointAndJournal(t *testing.T) {
	f, b1, _ := journalFixture(t)
	var journal bytes.Buffer
	if err := f.svc.StartJournal(&journal); err != nil {
		t.Fatal(err)
	}
	// Three deltas, checkpoint, three more.
	if err := f.svc.ApplySlotAcquire(MapSlot, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.ApplySlotAcquireNoted(MapSlot, 0, `"job-a" 3`, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.ApplyNodeOffline(5, true); err != nil {
		t.Fatal(err)
	}
	var cp bytes.Buffer
	if err := f.svc.WriteCheckpoint(&cp); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.ApplyLinkFactor(3, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.ApplyReplicaAdd(b1, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.UpdateNoted("post-cp", func() {}); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(recoveryDeps(t), bytes.NewReader(cp.Bytes()), bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointEpoch != 3 || rec.Skipped != 3 || rec.Applied != 3 {
		t.Fatalf("cpEpoch=%d skipped=%d applied=%d, want 3/3/3", rec.CheckpointEpoch, rec.Skipped, rec.Applied)
	}
	// Notes surface for the whole journal, checkpoint-covered records
	// included: the checkpoint restores service state only, so clients
	// rebuild theirs from the full note stream.
	if len(rec.Notes) != 2 || rec.Notes[0].Note != `"job-a" 3` || rec.Notes[1].Note != "post-cp" {
		t.Fatalf("surfaced notes %+v, want the in-checkpoint and post-checkpoint notes in order", rec.Notes)
	}
	if !bytes.Equal(fingerprint(t, rec.Service), fingerprint(t, f.svc)) {
		t.Fatal("recovered state fingerprint diverges from the original")
	}
	if a := rec.Service.Audit(); !a.Clean() {
		t.Fatalf("post-recovery drift: %s", a)
	}
}

// TestJournalDamage pins the decoder's damage taxonomy: damage on the
// final line is a truncated tail, damage mid-stream (including seq-chain
// breaks from duplicated or reordered records) is corruption, and either
// way the valid prefix decodes and recovery lands on it without a panic.
func TestJournalDamage(t *testing.T) {
	f, b1, _ := journalFixture(t)
	var buf bytes.Buffer
	if err := f.svc.StartJournal(&buf); err != nil {
		t.Fatal(err)
	}
	n := journalScript(t, f, b1)
	clean := buf.Bytes()
	lines := journalLines(clean)
	if len(lines) != n+1 { // begin marker + one line per delta
		t.Fatalf("journal has %d lines, want %d", len(lines), n+1)
	}

	cases := []struct {
		name    string
		mangle  func() []byte
		want    error
		records int
	}{
		{"truncated_tail", func() []byte {
			return clean[:len(clean)-5]
		}, ErrTruncatedTail, n - 1},
		{"corrupt_middle_byte", func() []byte {
			out := append([]byte(nil), clean...)
			off := 0
			for _, l := range lines[:4] {
				off += len(l) + 1
			}
			out[off+len(lines[4])-3] ^= 0x01 // inside line 4's rec payload
			return out
		}, ErrCorruptRecord, 3},
		{"duplicated_record", func() []byte {
			dup := append([][]byte{}, lines[:4]...)
			dup = append(dup, lines[3])
			dup = append(dup, lines[4:]...)
			return joinLines(dup)
		}, ErrCorruptRecord, 3},
		{"reordered_records", func() []byte {
			swapped := append([][]byte{}, lines...)
			swapped[2], swapped[3] = swapped[3], swapped[2]
			return joinLines(swapped)
		}, ErrCorruptRecord, 1},
		{"garbage", func() []byte {
			return []byte("not a journal\nstill not\n")
		}, ErrCorruptRecord, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			damaged := tc.mangle()
			dec, err := DecodeJournal(bytes.NewReader(damaged))
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(dec.Err, tc.want) {
				t.Fatalf("verdict %v, want %v", dec.Err, tc.want)
			}
			if len(dec.Records) != tc.records {
				t.Fatalf("decoded %d records, want %d", len(dec.Records), tc.records)
			}
			if int(dec.ValidBytes) > len(damaged) {
				t.Fatalf("ValidBytes %d exceeds input %d", dec.ValidBytes, len(damaged))
			}

			// Recovery over the damage: lands on the last valid record,
			// reports the verdict, zero drift. Never panics.
			rec, err := Recover(recoveryDeps(t), nil, bytes.NewReader(damaged))
			if err != nil {
				t.Fatal(err)
			}
			if (rec.Tail == nil) != (dec.Err == nil) || rec.Epoch != dec.Epoch {
				t.Fatalf("recovery tail=%v epoch=%d, decode err=%v epoch=%d", rec.Tail, rec.Epoch, dec.Err, dec.Epoch)
			}
			if a := rec.Service.Audit(); !a.Clean() {
				t.Fatalf("post-recovery drift: %s", a)
			}
		})
	}
}

// TestJournalResumeAfterDamage is the append-after-crash protocol: trim
// the damaged journal to its valid prefix, recover, re-attach to the
// same bytes (fresh begin marker), keep applying. The combined journal
// must decode cleanly to the full post-crash history.
func TestJournalResumeAfterDamage(t *testing.T) {
	f, b1, _ := journalFixture(t)
	var buf bytes.Buffer
	if err := f.svc.StartJournal(&buf); err != nil {
		t.Fatal(err)
	}
	n := journalScript(t, f, b1)
	damaged := buf.Bytes()[:buf.Len()-5] // crash mid-append of the last record

	rec, err := Recover(recoveryDeps(t), nil, bytes.NewReader(damaged))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rec.Tail, ErrTruncatedTail) || rec.Epoch != uint64(n-1) {
		t.Fatalf("tail=%v epoch=%d, want truncated tail at epoch %d", rec.Tail, rec.Epoch, n-1)
	}

	resumed := bytes.NewBuffer(append([]byte(nil), damaged[:rec.JournalValidBytes]...))
	if err := rec.Service.StartJournal(resumed); err != nil {
		t.Fatal(err)
	}
	if err := rec.Service.ApplySlotAcquire(MapSlot, 2); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJournal(bytes.NewReader(resumed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Err != nil {
		t.Fatalf("resumed journal decoded with damage: %v", dec.Err)
	}
	if dec.Epoch != uint64(n) || len(dec.Records) != n {
		t.Fatalf("resumed journal epoch %d with %d records, want %d/%d", dec.Epoch, len(dec.Records), n, n)
	}
}

// TestJournalBrokenIsSticky pins the broken-journal contract: when an
// append fails, the delta is rejected with the state untouched, and so
// is every later delta until the journal is detached.
func TestJournalBrokenIsSticky(t *testing.T) {
	f, _, _ := journalFixture(t)
	w := &failAfter{n: 1} // the begin marker succeeds, the first delta fails
	if err := f.svc.StartJournal(w); err != nil {
		t.Fatal(err)
	}
	before := f.svc.Epoch()
	err := f.svc.ApplySlotAcquire(MapSlot, 0)
	if !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("delta after write failure: %v, want ErrJournalBroken", err)
	}
	if f.svc.Epoch() != before {
		t.Fatal("rejected delta moved the epoch")
	}
	if got := f.svc.Snapshot(); len(got.AvailMap.Nodes) != 8 {
		t.Fatal("rejected delta changed availability")
	}
	if err := f.svc.ApplySlotAcquire(ReduceSlot, 1); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("journal breakage not sticky: %v", err)
	}
	f.svc.StopJournal()
	if err := f.svc.ApplySlotAcquire(MapSlot, 0); err != nil {
		t.Fatalf("delta after StopJournal: %v", err)
	}
}

// failAfter accepts n writes then fails forever.
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n > 0 {
		w.n--
		return len(p), nil
	}
	return 0, errors.New("disk full")
}

// TestRecoverRejectsBadCheckpoints pins the all-or-nothing checkpoint
// contract and the journal-gap check.
func TestRecoverRejectsBadCheckpoints(t *testing.T) {
	if _, err := Recover(recoveryDeps(t), bytes.NewReader([]byte("junk")), nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("garbage checkpoint: %v, want ErrBadCheckpoint", err)
	}

	// A checkpoint from a bigger cluster contradicts the deps.
	big := newFixtureSized(t, 4) // 4 racks => 16 nodes
	var cp bytes.Buffer
	if err := big.svc.WriteCheckpoint(&cp); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(recoveryDeps(t), bytes.NewReader(cp.Bytes()), nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong-cluster checkpoint: %v, want ErrBadCheckpoint", err)
	}

	// A journal that starts past the restore point has lost deltas.
	f, _, _ := journalFixture(t)
	if err := f.svc.ApplySlotAcquire(MapSlot, 0); err != nil { // not journaled
		t.Fatal(err)
	}
	var journal bytes.Buffer
	if err := f.svc.StartJournal(&journal); err != nil {
		t.Fatal(err)
	}
	if err := f.svc.ApplySlotAcquire(MapSlot, 1); err != nil { // seq 2
		t.Fatal(err)
	}
	if _, err := Recover(recoveryDeps(t), nil, bytes.NewReader(journal.Bytes())); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("gapped journal: %v, want ErrBadCheckpoint", err)
	}
}

// newFixtureSized builds a fixture with the given rack count (the
// standard fixture is 2 racks of 4).
func newFixtureSized(t testing.TB, racks int) *fixture {
	t.Helper()
	spec := topology.DefaultSpec()
	spec.Racks = racks
	spec.NodesPerRack = 4
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	store := hdfs.NewStore(net, rng.Fork("hdfs"))
	slots, err := cluster.New(net.Size(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Deps{Net: net, Store: store, Rate: net, Slots: slots, Mode: core.ModeHops})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: net, store: store, slots: slots, svc: svc, rng: rng}
}

// TestDeciderInvalidSurfacesThroughOutcome pins the decider panic fix: a
// decider whose cost model cannot build reports ErrDeciderInvalid
// through Err() and Outcome.Err instead of panicking, and consumes no
// randomness.
func TestDeciderInvalidSurfacesThroughOutcome(t *testing.T) {
	f := newFixture(t)
	bad := &Service{net: f.net, store: nil, rate: f.net, slots: f.slots, mode: core.ModeHops}
	d := NewDecider(bad, DefaultConfig(), nil, nil)
	if !errors.Is(d.Err(), ErrDeciderInvalid) {
		t.Fatalf("Err() = %v, want ErrDeciderInvalid", d.Err())
	}
	m, out := d.PlaceMap(&Request{}, 0)
	if m != nil || !errors.Is(out.Err, ErrDeciderInvalid) {
		t.Fatalf("PlaceMap on invalid decider: task=%v err=%v", m, out.Err)
	}
	r, out := d.PlaceReduce(&Request{}, 0)
	if r != nil || !errors.Is(out.Err, ErrDeciderInvalid) {
		t.Fatalf("PlaceReduce on invalid decider: task=%v err=%v", r, out.Err)
	}
	if e := d.EvaluateMap(&Request{}, 0); e.HasBest || e.InstantLocal {
		t.Fatalf("EvaluateMap on invalid decider returned candidates: %+v", e)
	}
}

// FuzzDecodeJournal hammers the decoder with arbitrary bytes: it must
// never panic, never return records off a broken seq chain, never claim
// more valid bytes than the input holds, and its valid prefix must
// re-decode cleanly to the same records.
func FuzzDecodeJournal(fz *testing.F) {
	f, b1, _ := journalFixture(fz)
	var buf bytes.Buffer
	if err := f.svc.StartJournal(&buf); err != nil {
		fz.Fatal(err)
	}
	journalScript(fz, f, b1)
	clean := buf.Bytes()
	fz.Add(append([]byte(nil), clean...))
	fz.Add(append([]byte(nil), clean[:len(clean)-7]...))
	fz.Add([]byte(`{"crc":"00000000","rec":{"v":1,"seq":0,"op":"begin"}}` + "\n"))
	fz.Add([]byte("{}\n{}\n"))
	fz.Add([]byte(""))

	fz.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("reader error from in-memory input: %v", err)
		}
		if dec.ValidBytes < 0 || dec.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside input length %d", dec.ValidBytes, len(data))
		}
		for i := 1; i < len(dec.Records); i++ {
			if dec.Records[i].Seq != dec.Records[i-1].Seq+1 {
				t.Fatalf("records %d/%d break the seq chain: %d -> %d",
					i-1, i, dec.Records[i-1].Seq, dec.Records[i].Seq)
			}
		}
		if n := len(dec.Records); n > 0 && dec.Records[n-1].Seq != dec.Epoch {
			t.Fatalf("epoch %d disagrees with last record seq %d", dec.Epoch, dec.Records[n-1].Seq)
		}
		re, err := DecodeJournal(bytes.NewReader(data[:dec.ValidBytes]))
		if err != nil {
			t.Fatal(err)
		}
		if re.Err != nil {
			t.Fatalf("valid prefix re-decoded with damage: %v", re.Err)
		}
		if len(re.Records) != len(dec.Records) || re.Epoch != dec.Epoch {
			t.Fatalf("valid prefix re-decode: %d records epoch %d, first pass %d/%d",
				len(re.Records), re.Epoch, len(dec.Records), dec.Epoch)
		}
	})
}
