// Background invariant auditor: rebuild the service's derived state —
// availability membership, per-class free-slot counts, store usage —
// from scratch and diff it against the incrementally maintained state.
// The runtime analogue of the schedlint epoch contracts: the static
// analyzers prove mutation sites bump the right epochs, the auditor
// proves the incremental bookkeeping still equals ground truth while
// the service runs.
//
// The wall clock below paces the opt-in background auditor only; audit
// results never feed a simulated decision or any deterministic output.
//
//lint:allow nodeterminism background auditor cadence is wall-clock, results never feed decisions
package placement

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"mapsched/internal/hdfs"
	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/topology"
)

// AuditReport is the result of one synchronous invariant audit.
type AuditReport struct {
	// Epoch is the delta epoch the audit ran at.
	Epoch uint64
	// Checks counts the invariant groups evaluated.
	Checks int
	// Drift lists every detected divergence between the incremental
	// state and the from-scratch rebuild; empty means zero drift.
	Drift []string
}

// Clean reports whether the audit found zero drift.
func (r AuditReport) Clean() bool { return len(r.Drift) == 0 }

// String renders the report for logs and test failures.
func (r AuditReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("audit@%d: clean (%d checks)", r.Epoch, r.Checks)
	}
	return fmt.Sprintf("audit@%d: %d drift(s): %s", r.Epoch, len(r.Drift), strings.Join(r.Drift, "; "))
}

// usageEps is the relative tolerance for recomputed store usage: byte
// totals are float64 sums whose grouping differs between incremental
// add/subtract and a from-scratch sum.
const usageEps = 1e-6

// Audit rebuilds the derived state from scratch under the write lock
// and diffs it against the incremental state: slot-usage ranges,
// availability-set membership, per-class free-slot counts, replica-set
// validity, store usage statistics and link factors. It is synchronous
// and safe to call concurrently with deciders and delta writers (it
// serializes as one writer turn; the epoch does not move).
func (s *Service) Audit() AuditReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := AuditReport{Epoch: s.epoch}
	drift := func(format string, args ...any) {
		r.Drift = append(r.Drift, fmt.Sprintf(format, args...))
	}
	size := s.slots.Size()

	// 1. Slot usage within capacity on every node (fixed-slot mode; the
	// container model bounds usage through its own headroom check).
	r.Checks++
	for i := 0; i < size; i++ {
		n := s.slots.Node(topology.NodeID(i))
		if n.UsedMapSlots() < 0 || (!n.ResourceMode() && n.UsedMapSlots() > n.MapSlots) {
			drift("node %d: used map slots %d outside [0,%d]", i, n.UsedMapSlots(), n.MapSlots)
		}
		if n.UsedReduceSlots() < 0 || (!n.ResourceMode() && n.UsedReduceSlots() > n.ReduceSlots) {
			drift("node %d: used reduce slots %d outside [0,%d]", i, n.UsedReduceSlots(), n.ReduceSlots)
		}
	}

	// 2+3. Availability membership and per-class counts, rebuilt from
	// per-node free-slot ground truth.
	r.Checks += 2
	s.auditAvailLocked(&r, "map", s.slots.AvailMapNodes(), func(n topology.NodeID) bool {
		return s.slots.Node(n).FreeMapSlots() > 0
	}, drift)
	s.auditAvailLocked(&r, "reduce", s.slots.AvailReduceNodes(), func(n topology.NodeID) bool {
		return s.slots.Node(n).FreeReduceSlots() > 0
	}, drift)

	// 4. Replica sets valid: every replica on a known node, no
	// duplicates within a block.
	r.Checks++
	seen := make(map[topology.NodeID]struct{}, 8)
	for b := 0; b < s.store.NumBlocks(); b++ {
		clear(seen)
		for _, rep := range s.store.Replicas(hdfs.BlockID(b)) {
			if int(rep) < 0 || int(rep) >= size {
				drift("block %d: replica on unknown node %d", b, rep)
				continue
			}
			if _, dup := seen[rep]; dup {
				drift("block %d: duplicate replica on node %d", b, rep)
			}
			seen[rep] = struct{}{}
		}
	}

	// 5. Store usage statistics equal a from-scratch sum over replicas
	// (the coster-cache input for storage-balance diagnostics).
	r.Checks++
	usage := make([]float64, size)
	for b := 0; b < s.store.NumBlocks(); b++ {
		blk := s.store.Block(hdfs.BlockID(b))
		for _, rep := range blk.Replicas {
			if int(rep) >= 0 && int(rep) < size {
				usage[rep] += blk.Size
			}
		}
	}
	for i := 0; i < size; i++ {
		got := s.store.Usage(topology.NodeID(i))
		want := usage[i]
		if diff := math.Abs(got - want); diff > usageEps*math.Max(1, math.Abs(want)) {
			drift("node %d: store usage %g, recomputed %g", i, got, want)
		}
	}

	// 6. Link factors finite and non-negative.
	r.Checks++
	for i, f := range s.linkFactors {
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			drift("node %d: link factor %v", i, f)
		}
	}
	return r
}

// auditAvailLocked checks one slot kind's published availability
// snapshot and per-class counts against ground truth. Caller holds the
// write lock and guarantees the snapshots are materialized
// (refreshLocked ran after the last delta).
func (s *Service) auditAvailLocked(r *AuditReport, kind string, snapshot []topology.NodeID, free func(topology.NodeID) bool, drift func(string, ...any)) {
	want := make([]topology.NodeID, 0, len(snapshot))
	for i := 0; i < s.slots.Size(); i++ {
		if n := topology.NodeID(i); free(n) {
			want = append(want, n)
		}
	}
	match := len(want) == len(snapshot)
	if match {
		for i := range want {
			if want[i] != snapshot[i] {
				match = false
				break
			}
		}
	}
	if !match {
		drift("%s avail snapshot %v, recomputed %v", kind, snapshot, want)
	}

	var counts []int
	if kind == "map" {
		_, counts, _ = s.slots.AvailMap()
	} else {
		_, counts, _ = s.slots.AvailReduce()
	}
	if counts == nil || s.classes == nil {
		return
	}
	wantCounts := make([]int, s.classes.Num())
	for _, n := range want {
		wantCounts[s.classes.Of(n)]++
	}
	if len(counts) != len(wantCounts) {
		drift("%s avail has %d classes, topology %d", kind, len(counts), len(wantCounts))
		return
	}
	for c := range counts {
		if counts[c] != wantCounts[c] {
			drift("%s avail class %d count %d, recomputed %d", kind, c, counts[c], wantCounts[c])
		}
	}
}

// AuditorConfig tunes StartAuditor.
type AuditorConfig struct {
	// Interval paces the background audits (default 1s).
	Interval time.Duration
	// Stream, when non-nil, receives an audit_pass or audit_drift event
	// per audit (audit_drift carries the drift list in Reason).
	Stream *obs.Stream
	// Metrics, when non-nil, tallies placement_audit_pass and
	// placement_audit_drift counters.
	Metrics *metrics.Registry
	// OnReport, when non-nil, receives every report (tests, logging).
	OnReport func(AuditReport)
}

// StartAuditor runs Audit in a background goroutine at the configured
// interval, reporting through the configured sinks, until the returned
// stop function is called (stop blocks until the goroutine exits; it is
// safe to call once). Audits serialize with delta writers and deciders
// through the service lock, so the auditor is race-free against both.
func (s *Service) StartAuditor(cfg AuditorConfig) (stop func()) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	var pass, fail *metrics.Counter
	if cfg.Metrics != nil {
		pass = cfg.Metrics.Counter("placement_audit_pass")
		fail = cfg.Metrics.Counter("placement_audit_drift")
	}
	report := func() {
		r := s.Audit()
		if r.Clean() {
			if pass != nil {
				pass.Inc()
			}
			if cfg.Stream.Enabled() {
				cfg.Stream.Emit(obs.Event{Type: obs.AuditPass, Node: -1})
			}
		} else {
			if fail != nil {
				fail.Inc()
			}
			if cfg.Stream.Enabled() {
				cfg.Stream.Emit(obs.Event{Type: obs.AuditDrift, Node: -1, Reason: strings.Join(r.Drift, "; ")})
			}
		}
		if cfg.OnReport != nil {
			cfg.OnReport(r)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				report()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
